"""Accelerator engine: epochs, snapshots, deltas, AOT DML."""

import pytest

from repro.accelerator import AcceleratorEngine, DeltaBuffer
from repro.catalog import Catalog, Column, TableLocation, TableSchema
from repro.sql import parse_statement
from repro.sql.types import DOUBLE, INTEGER, VarcharType


@pytest.fixture
def setup():
    catalog = Catalog()
    engine = AcceleratorEngine(catalog, slice_count=2, chunk_rows=32)
    schema = TableSchema(
        [
            Column("ID", INTEGER, nullable=False),
            Column("REGION", VarcharType(4)),
            Column("V", DOUBLE),
        ]
    )
    descriptor = catalog.create_table(
        "T", schema, location=TableLocation.ACCELERATOR_ONLY
    )
    engine.create_storage(descriptor)
    engine.bulk_insert(
        "T", [(i, "EU" if i % 2 else "US", float(i)) for i in range(100)]
    )
    return catalog, engine


def count(engine, **kwargs):
    __, rows = engine.execute_select(
        parse_statement("SELECT COUNT(*) FROM t"), **kwargs
    )
    return rows[0][0]


class TestEpochs:
    def test_each_write_batch_bumps_epoch(self, setup):
        __, engine = setup
        before = engine.current_epoch
        engine.bulk_insert("T", [(1000, "EU", 0.0)])
        assert engine.current_epoch == before + 1

    def test_old_snapshot_is_stable(self, setup):
        __, engine = setup
        epoch = engine.current_epoch
        engine.bulk_insert("T", [(1000, "EU", 0.0)])
        assert count(engine, snapshot_epoch=epoch) == 100
        assert count(engine) == 101

    def test_delete_respects_snapshots(self, setup):
        __, engine = setup
        epoch = engine.current_epoch
        engine.delete_where(parse_statement("DELETE FROM t WHERE id < 50"))
        assert count(engine, snapshot_epoch=epoch) == 100
        assert count(engine) == 50


class TestDml:
    def test_autocommit_insert(self, setup):
        __, engine = setup
        engine.insert_into("T", [(500, "AP", 1.0)])
        assert count(engine) == 101

    def test_delete_where_predicate(self, setup):
        __, engine = setup
        deleted = engine.delete_where(
            parse_statement("DELETE FROM t WHERE region = 'EU'")
        )
        assert deleted == 50
        assert count(engine) == 50

    def test_update_where(self, setup):
        __, engine = setup
        updated = engine.update_where(
            parse_statement("UPDATE t SET v = v * 10 WHERE id < 10")
        )
        assert updated == 10
        __, rows = engine.execute_select(
            parse_statement("SELECT SUM(v) FROM t WHERE id < 10")
        )
        assert rows[0][0] == 450.0

    def test_update_preserves_untouched_columns(self, setup):
        __, engine = setup
        engine.update_where(parse_statement("UPDATE t SET v = 0 WHERE id = 3"))
        __, rows = engine.execute_select(
            parse_statement("SELECT region, v FROM t WHERE id = 3")
        )
        assert rows == [("EU", 0.0)]

    def test_delete_nothing(self, setup):
        __, engine = setup
        assert engine.delete_where(
            parse_statement("DELETE FROM t WHERE id > 9999")
        ) == 0


class TestDeltaVisibility:
    """The paper's Sec. 2 transaction-context requirements."""

    def test_own_uncommitted_insert_visible(self, setup):
        __, engine = setup
        epoch = engine.current_epoch
        delta = DeltaBuffer("T")
        engine.insert_into("T", [(999, "EU", 1.0)], delta=delta)
        own = count(engine, snapshot_epoch=epoch, deltas={"T": delta})
        others = count(engine, snapshot_epoch=epoch)
        assert own == 101
        assert others == 100

    def test_own_uncommitted_delete_visible(self, setup):
        __, engine = setup
        epoch = engine.current_epoch
        delta = DeltaBuffer("T")
        engine.delete_where(
            parse_statement("DELETE FROM t WHERE id < 10"),
            snapshot_epoch=epoch,
            delta=delta,
        )
        assert count(engine, snapshot_epoch=epoch, deltas={"T": delta}) == 90
        assert count(engine, snapshot_epoch=epoch) == 100

    def test_delete_own_uncommitted_insert(self, setup):
        __, engine = setup
        epoch = engine.current_epoch
        delta = DeltaBuffer("T")
        engine.insert_into("T", [(999, "EU", 1.0)], delta=delta)
        deleted = engine.delete_where(
            parse_statement("DELETE FROM t WHERE id = 999"),
            snapshot_epoch=epoch,
            delta=delta,
        )
        assert deleted == 1
        assert count(engine, snapshot_epoch=epoch, deltas={"T": delta}) == 100

    def test_update_own_uncommitted_insert(self, setup):
        __, engine = setup
        epoch = engine.current_epoch
        delta = DeltaBuffer("T")
        engine.insert_into("T", [(999, "EU", 1.0)], delta=delta)
        engine.update_where(
            parse_statement("UPDATE t SET v = 42 WHERE id = 999"),
            snapshot_epoch=epoch,
            delta=delta,
        )
        __, rows = engine.execute_select(
            parse_statement("SELECT v FROM t WHERE id = 999"),
            snapshot_epoch=epoch,
            deltas={"T": delta},
        )
        assert rows == [(42.0,)]

    def test_commit_applies_delta_atomically(self, setup):
        __, engine = setup
        epoch = engine.current_epoch
        delta = DeltaBuffer("T")
        engine.insert_into("T", [(999, "EU", 1.0)], delta=delta)
        engine.delete_where(
            parse_statement("DELETE FROM t WHERE id < 5"),
            snapshot_epoch=epoch,
            delta=delta,
        )
        engine.apply_delta(delta)
        assert count(engine) == 96

    def test_discarding_delta_is_a_rollback(self, setup):
        __, engine = setup
        epoch = engine.current_epoch
        delta = DeltaBuffer("T")
        engine.insert_into("T", [(999, "EU", 1.0)], delta=delta)
        # Simply never applying the buffer = rollback.
        assert count(engine) == 100
        assert engine.current_epoch == epoch

    def test_update_of_base_row_in_delta(self, setup):
        __, engine = setup
        epoch = engine.current_epoch
        delta = DeltaBuffer("T")
        engine.update_where(
            parse_statement("UPDATE t SET v = -1 WHERE id = 7"),
            snapshot_epoch=epoch,
            delta=delta,
        )
        __, rows = engine.execute_select(
            parse_statement("SELECT v FROM t WHERE id = 7"),
            snapshot_epoch=epoch,
            deltas={"T": delta},
        )
        assert rows == [(-1.0,)]
        # Base unchanged for other snapshots until apply.
        __, rows = engine.execute_select(
            parse_statement("SELECT v FROM t WHERE id = 7"),
            snapshot_epoch=epoch,
        )
        assert rows == [(7.0,)]


class TestReplicationApply:
    def test_apply_insert_update_delete(self, setup):
        catalog, engine = setup
        schema = catalog.table("T").schema
        from repro.db2.changelog import ChangeRecord

        records = [
            ChangeRecord(1, 1, "T", "INSERT", after=(200, "AP", 5.0)),
            ChangeRecord(2, 1, "T", "UPDATE",
                         before=(0, "US", 0.0), after=(0, "US", 99.0)),
            ChangeRecord(3, 1, "T", "DELETE", before=(1, "EU", 1.0)),
        ]
        engine.apply_changes("T", records)
        assert count(engine) == 100  # +1 insert, -1 delete
        __, rows = engine.execute_select(
            parse_statement("SELECT v FROM t WHERE id = 0")
        )
        assert rows == [(99.0,)]

    def test_apply_missing_row_raises(self, setup):
        __, engine = setup
        from repro.db2.changelog import ChangeRecord
        from repro.errors import ReplicationError

        record = ChangeRecord(
            1, 1, "T", "DELETE", before=(12345, "XX", 0.0)
        )
        with pytest.raises(ReplicationError):
            engine.apply_changes("T", [record])


class TestInstrumentation:
    def test_zone_map_skips_counted(self, setup):
        __, engine = setup
        engine.execute_select(
            parse_statement("SELECT COUNT(*) FROM t WHERE id BETWEEN 1 AND 3")
        )
        assert engine.chunks_skipped > 0

    def test_zone_maps_disabled_scans_everything(self, setup):
        __, engine = setup
        engine.zone_maps_enabled = False
        before = engine.chunks_skipped
        engine.execute_select(
            parse_statement("SELECT COUNT(*) FROM t WHERE id BETWEEN 1 AND 3")
        )
        assert engine.chunks_skipped == before

    def test_simulated_busy_time_accumulates(self, setup):
        __, engine = setup
        before = engine.simulated_busy_seconds
        engine.execute_select(parse_statement("SELECT COUNT(*) FROM t"))
        assert engine.simulated_busy_seconds > before

"""Multi-session stress: concurrent AOT writers, readers, and OLTP.

One connection per thread (connections are not thread-safe; the engines
are). Invariants checked after the storm: no lost updates, counts add
up, snapshots never tore.
"""

import threading

import pytest

from repro import AcceleratedDatabase

THREADS = 4
ROUNDS = 25


@pytest.fixture
def db():
    return AcceleratedDatabase(slice_count=2, chunk_rows=128)


def run_threads(workers):
    errors: list[BaseException] = []

    def guard(fn):
        def inner():
            try:
                fn()
            except BaseException as error:  # pragma: no cover - surfaced below
                errors.append(error)

        return inner

    threads = [threading.Thread(target=guard(fn)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors[0]


class TestAotConcurrency:
    def test_concurrent_aot_inserters(self, db):
        admin = db.connect()
        admin.execute("CREATE TABLE S (WORKER INTEGER, N INTEGER) IN ACCELERATOR")

        def writer(worker_id):
            def work():
                conn = db.connect()
                for round_no in range(ROUNDS):
                    conn.execute(
                        f"INSERT INTO S VALUES ({worker_id}, {round_no})"
                    )

            return work

        run_threads([writer(i) for i in range(THREADS)])
        counts = admin.execute(
            "SELECT worker, COUNT(*) FROM s GROUP BY worker ORDER BY worker"
        ).rows
        assert counts == [(i, ROUNDS) for i in range(THREADS)]

    def test_concurrent_transactions_with_rollbacks(self, db):
        admin = db.connect()
        admin.execute("CREATE TABLE S (WORKER INTEGER) IN ACCELERATOR")

        def writer(worker_id):
            def work():
                conn = db.connect()
                for round_no in range(ROUNDS):
                    conn.execute("BEGIN")
                    conn.execute(f"INSERT INTO S VALUES ({worker_id})")
                    if round_no % 2:
                        conn.execute("ROLLBACK")
                    else:
                        conn.execute("COMMIT")

            return work

        run_threads([writer(i) for i in range(THREADS)])
        total = admin.execute("SELECT COUNT(*) FROM s").scalar()
        # Only even rounds committed.
        assert total == THREADS * ((ROUNDS + 1) // 2)

    def test_readers_see_consistent_snapshots_during_writes(self, db):
        """Rows are inserted in atomic pairs; a reader must never observe
        an odd count (a torn write batch)."""
        admin = db.connect()
        admin.execute("CREATE TABLE PAIRS (A INTEGER) IN ACCELERATOR")
        stop = threading.Event()
        observed_odd = []

        def writer():
            conn = db.connect()
            for i in range(ROUNDS * 2):
                conn.execute(f"INSERT INTO PAIRS VALUES ({i}), ({i})")
            stop.set()

        def reader():
            conn = db.connect()
            while not stop.is_set():
                count = conn.execute("SELECT COUNT(*) FROM pairs").scalar()
                if count % 2:
                    observed_odd.append(count)

        run_threads([writer, reader, reader])
        assert not observed_odd

    def test_mixed_db2_and_aot_sessions(self, db):
        admin = db.connect()
        admin.execute(
            "CREATE TABLE LEDGER (ID INTEGER NOT NULL PRIMARY KEY, V DOUBLE)"
        )
        rows = ", ".join(f"({i}, 0.0)" for i in range(THREADS))
        admin.execute(f"INSERT INTO LEDGER VALUES {rows}")
        admin.execute("CREATE TABLE EVENTS (W INTEGER) IN ACCELERATOR")

        def worker(worker_id):
            def work():
                conn = db.connect()
                for __ in range(ROUNDS):
                    conn.execute("BEGIN")
                    conn.execute(
                        f"UPDATE ledger SET v = v + 1 WHERE id = {worker_id}"
                    )
                    conn.execute(f"INSERT INTO EVENTS VALUES ({worker_id})")
                    conn.execute("COMMIT")

            return work

        run_threads([worker(i) for i in range(THREADS)])
        ledger_total = admin.execute("SELECT SUM(v) FROM ledger").scalar()
        event_total = admin.execute("SELECT COUNT(*) FROM events").scalar()
        assert ledger_total == THREADS * ROUNDS
        assert event_total == THREADS * ROUNDS

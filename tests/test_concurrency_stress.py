"""Multi-session stress: concurrent AOT writers, readers, and OLTP.

One connection per thread (connections are not thread-safe; the engines
are). Invariants checked after the storm: no lost updates, counts add
up, snapshots never tore, WLM admission slots never leak.

Volume is environment-tunable so CI can run an elevated pass:
``STRESS_THREADS`` / ``STRESS_ROUNDS`` override the defaults.
"""

import os
import threading

import pytest

from repro import AcceleratedDatabase

THREADS = int(os.environ.get("STRESS_THREADS", "4"))
ROUNDS = int(os.environ.get("STRESS_ROUNDS", "25"))


@pytest.fixture
def db():
    return AcceleratedDatabase(slice_count=2, chunk_rows=128)


def run_threads(workers):
    errors: list[BaseException] = []

    def guard(fn):
        def inner():
            try:
                fn()
            except BaseException as error:  # pragma: no cover - surfaced below
                errors.append(error)

        return inner

    threads = [threading.Thread(target=guard(fn)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors[0]


class TestAotConcurrency:
    def test_concurrent_aot_inserters(self, db):
        admin = db.connect()
        admin.execute("CREATE TABLE S (WORKER INTEGER, N INTEGER) IN ACCELERATOR")

        def writer(worker_id):
            def work():
                conn = db.connect()
                for round_no in range(ROUNDS):
                    conn.execute(
                        f"INSERT INTO S VALUES ({worker_id}, {round_no})"
                    )

            return work

        run_threads([writer(i) for i in range(THREADS)])
        counts = admin.execute(
            "SELECT worker, COUNT(*) FROM s GROUP BY worker ORDER BY worker"
        ).rows
        assert counts == [(i, ROUNDS) for i in range(THREADS)]

    def test_concurrent_transactions_with_rollbacks(self, db):
        admin = db.connect()
        admin.execute("CREATE TABLE S (WORKER INTEGER) IN ACCELERATOR")

        def writer(worker_id):
            def work():
                conn = db.connect()
                for round_no in range(ROUNDS):
                    conn.execute("BEGIN")
                    conn.execute(f"INSERT INTO S VALUES ({worker_id})")
                    if round_no % 2:
                        conn.execute("ROLLBACK")
                    else:
                        conn.execute("COMMIT")

            return work

        run_threads([writer(i) for i in range(THREADS)])
        total = admin.execute("SELECT COUNT(*) FROM s").scalar()
        # Only even rounds committed.
        assert total == THREADS * ((ROUNDS + 1) // 2)

    def test_readers_see_consistent_snapshots_during_writes(self, db):
        """Rows are inserted in atomic pairs; a reader must never observe
        an odd count (a torn write batch)."""
        admin = db.connect()
        admin.execute("CREATE TABLE PAIRS (A INTEGER) IN ACCELERATOR")
        stop = threading.Event()
        observed_odd = []

        def writer():
            conn = db.connect()
            for i in range(ROUNDS * 2):
                conn.execute(f"INSERT INTO PAIRS VALUES ({i}), ({i})")
            stop.set()

        def reader():
            conn = db.connect()
            while not stop.is_set():
                count = conn.execute("SELECT COUNT(*) FROM pairs").scalar()
                if count % 2:
                    observed_odd.append(count)

        run_threads([writer, reader, reader])
        assert not observed_odd

    def test_mixed_db2_and_aot_sessions(self, db):
        admin = db.connect()
        admin.execute(
            "CREATE TABLE LEDGER (ID INTEGER NOT NULL PRIMARY KEY, V DOUBLE)"
        )
        rows = ", ".join(f"({i}, 0.0)" for i in range(THREADS))
        admin.execute(f"INSERT INTO LEDGER VALUES {rows}")
        admin.execute("CREATE TABLE EVENTS (W INTEGER) IN ACCELERATOR")

        def worker(worker_id):
            def work():
                conn = db.connect()
                for __ in range(ROUNDS):
                    conn.execute("BEGIN")
                    conn.execute(
                        f"UPDATE ledger SET v = v + 1 WHERE id = {worker_id}"
                    )
                    conn.execute(f"INSERT INTO EVENTS VALUES ({worker_id})")
                    conn.execute("COMMIT")

            return work

        run_threads([worker(i) for i in range(THREADS)])
        ledger_total = admin.execute("SELECT SUM(v) FROM ledger").scalar()
        event_total = admin.execute("SELECT COUNT(*) FROM events").scalar()
        assert ledger_total == THREADS * ROUNDS
        assert event_total == THREADS * ROUNDS


SERVICE_CLASSES = ("INTERACTIVE", "SYSDEFAULT", "ANALYTICS", "BATCH")


def _assert_gates_quiesced(db):
    """No lost slots: every admission path returned what it took."""
    for gate in db.wlm.gates.values():
        snapshot = gate.snapshot()
        assert snapshot["slots_in_use"] == 0
        assert snapshot["queued"] == 0
        assert snapshot["admitted"] + snapshot["bypassed"] == (
            snapshot["releases"]
        )
        for name, stats in gate.class_stats().items():
            assert stats.running == 0, (gate.engine, name)
            assert stats.queued == 0, (gate.engine, name)


class TestWlmStorm:
    """Mixed-priority admission storms through tiny gates."""

    @pytest.fixture
    def wdb(self):
        db = AcceleratedDatabase(
            slice_count=2,
            chunk_rows=128,
            wlm_enabled=True,
            wlm_db2_slots=2,
            wlm_accelerator_slots=2,
            wlm_max_queue_seconds=30.0,
        )
        db.wlm.cheap_rows = 0  # force real admission for every statement
        return db

    def test_mixed_priority_storm_is_starvation_free(self, wdb):
        """Every class — including lowest-priority BATCH behind a
        2-slot gate — finishes its full workload; shed statements are
        retryable and eventually admitted; no slot leaks."""
        from repro.errors import StatementShedError

        admin = wdb.connect()
        admin.execute(
            "CREATE TABLE STORM (W INTEGER, N INTEGER) IN ACCELERATOR"
        )

        def worker(worker_id):
            service_class = SERVICE_CLASSES[worker_id % len(SERVICE_CLASSES)]

            def work():
                conn = wdb.connect()
                done = 0
                attempts = 0
                while done < ROUNDS:
                    attempts += 1
                    assert attempts < ROUNDS * 2000, (
                        f"{service_class} starved after {attempts} attempts"
                    )
                    try:
                        conn.execute(
                            f"INSERT INTO STORM VALUES ({worker_id}, {done})",
                            service_class=service_class,
                        )
                    except StatementShedError as error:
                        assert error.retryable
                        continue
                    done += 1

            return work

        run_threads([worker(i) for i in range(THREADS)])
        counts = admin.execute(
            "SELECT W, COUNT(*) FROM STORM GROUP BY W ORDER BY W"
        ).rows
        assert counts == [(i, ROUNDS) for i in range(THREADS)]
        _assert_gates_quiesced(wdb)

    def test_timeouts_under_contention_never_corrupt_state(self, wdb):
        """Whole-table updates racing tiny statement budgets: each
        statement either applies completely or not at all, so the sum
        stays a multiple of the row count."""
        from repro.errors import StatementShedError, StatementTimeoutError

        table_rows = 1500  # above the 1024-row DML checkpoint cadence
        admin = wdb.connect()
        admin.execute("CREATE TABLE TMO (ID INTEGER, V DOUBLE)")
        for base in range(0, table_rows, 500):
            rows = ", ".join(f"({i}, 0.0)" for i in range(base, base + 500))
            admin.execute(f"INSERT INTO TMO VALUES {rows}")

        outcomes = {"ok": 0, "timed_out": 0}
        outcomes_lock = threading.Lock()

        def worker(worker_id):
            service_class = SERVICE_CLASSES[worker_id % len(SERVICE_CLASSES)]

            def work():
                conn = wdb.connect()
                done = 0
                while done < ROUNDS:
                    # Tight budgets on some rounds: the statement may
                    # expire during target selection or a lock wait.
                    timeout = 0.002 if done % 2 else None
                    try:
                        conn.execute(
                            "UPDATE TMO SET V = V + 1",
                            service_class=service_class,
                            timeout_seconds=timeout,
                        )
                        with outcomes_lock:
                            outcomes["ok"] += 1
                    except StatementTimeoutError:
                        with outcomes_lock:
                            outcomes["timed_out"] += 1
                    except StatementShedError:
                        continue
                    done += 1

            return work

        run_threads([worker(i) for i in range(THREADS)])
        total = admin.execute("SELECT SUM(V) FROM TMO").scalar()
        count = admin.execute("SELECT COUNT(*) FROM TMO").scalar()
        assert count == table_rows
        # Atomicity: the total is exactly (successful updates) x rows —
        # a timed-out statement contributed nothing.
        assert total == outcomes["ok"] * table_rows
        assert outcomes["ok"] + outcomes["timed_out"] == THREADS * ROUNDS
        assert wdb.wlm.statements_timed_out == outcomes["timed_out"]
        _assert_gates_quiesced(wdb)

"""Per-operator profiler: EXPLAIN ANALYZE, feedback store, slow-query log."""

import json

import pytest
from hypothesis import given, settings

from repro.errors import ProcedureError, SqlError
from repro.federation.system import AcceleratedDatabase
from repro.obs.export import (
    export_json,
    profile_to_dict,
    profiles_payload,
    qerror_summary,
    trace_phase_breakdown,
)
from repro.obs.profile import q_error
from tests.test_query_fuzz import random_query


def make_db(**kwargs):
    defaults = dict(offload_row_threshold=0, cooldown_seconds=3600.0)
    defaults.update(kwargs)
    return AcceleratedDatabase(**defaults)


def accelerated_items(db, rows=40):
    conn = db.connect()
    conn.execute("CREATE TABLE ITEMS (ID INTEGER, G INTEGER, V DOUBLE)")
    values = ", ".join(f"({i}, {i % 4}, {float(i)})" for i in range(rows))
    conn.execute(f"INSERT INTO ITEMS VALUES {values}")
    db.add_table_to_accelerator("ITEMS")
    return conn


def analyze_sections(result):
    """Split an EXPLAIN ANALYZE grid into per-execution sections."""
    sections = []
    for row in result.rows:
        if str(row[0]).startswith("execution ["):
            sections.append([row])
        else:
            sections[-1].append(row)
    return sections


class TestQError:
    def test_exact_estimate_is_one(self):
        assert q_error(10, 10) == 1.0

    def test_symmetric(self):
        assert q_error(10, 100) == q_error(100, 10) == 10.0

    def test_zero_rows_is_finite(self):
        assert q_error(0, 0) == 1.0
        assert q_error(50, 0) == 50.0
        assert q_error(0, 50) == 50.0


class TestExplainAnalyze:
    def test_accelerator_query_reports_every_operator(self):
        db = make_db()
        conn = accelerated_items(db)
        result = conn.execute(
            "EXPLAIN ANALYZE SELECT G, COUNT(*) FROM ITEMS "
            "WHERE V > 5 GROUP BY G ORDER BY G"
        )
        assert result.columns == [
            "OPERATOR", "ENGINE", "ACTUAL_ROWS", "ESTIMATED_ROWS",
            "Q_ERROR", "WALL_MS", "DETAIL",
        ]
        sections = analyze_sections(result)
        assert len(sections) == 1
        header, *operators = sections[0]
        assert header[1] == "ACCELERATOR"
        names = [str(row[0]).strip().split(" ")[0] for row in operators]
        for operator in ("Sort", "Aggregate", "Scan"):
            assert operator in names
        for row in operators:
            __, engine, actual, estimated, qerr, wall_ms, __ = row
            assert engine == "ACCELERATOR"
            assert actual >= 0 and estimated >= 1
            assert qerr >= 1.0
            assert wall_ms >= 0.0
        scan = next(r for r in operators if "Scan" in str(r[0]))
        assert scan[2] > 0  # the filter kept some rows

    def test_db2_query_reports_every_operator(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.set_acceleration("NONE")
        result = conn.execute(
            "EXPLAIN ANALYZE SELECT ID FROM ITEMS WHERE ID < 5 "
            "ORDER BY ID FETCH FIRST 3 ROWS ONLY"
        )
        (section,) = analyze_sections(result)
        header, *operators = section
        assert header[1] == "DB2"
        limit = next(r for r in operators if "Limit" in str(r[0]))
        assert limit[2] == 3  # actual rows through the Limit

    def test_failback_produces_two_sections(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.set_acceleration("ENABLE WITH FAILBACK")
        with db.faults.forced("accelerator", kind="crash"):
            result = conn.execute("EXPLAIN ANALYZE SELECT SUM(V) FROM ITEMS")
        sections = analyze_sections(result)
        assert len(sections) == 2
        crashed, reran = sections
        assert crashed[0][1] == "ACCELERATOR"
        assert "error=AcceleratorCrashError" in crashed[0][0]
        assert reran[0][1] == "DB2"
        assert "failback re-execution" in crashed[0][0] + reran[0][0]
        # The re-execution carries full stats for every operator.
        for row in reran[1:]:
            assert row[4] >= 1.0

    def test_zero_row_query_has_finite_q_error(self):
        db = make_db()
        conn = accelerated_items(db)
        result = conn.execute(
            "EXPLAIN ANALYZE SELECT ID FROM ITEMS WHERE V > 1000000"
        )
        (section,) = analyze_sections(result)
        for row in section[1:]:
            assert row[4] == row[4]  # not NaN
            assert row[4] < float("inf")

    def test_analyze_actually_executes(self):
        db = make_db()
        conn = accelerated_items(db)
        before = len(db.statement_history)
        conn.execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM ITEMS")
        assert len(db.statement_history) > before
        assert db.profiler.last() is not None

    def test_analyze_rejects_non_queries(self):
        db = make_db()
        conn = accelerated_items(db)
        with pytest.raises(SqlError):
            conn.execute("EXPLAIN ANALYZE DELETE FROM ITEMS")

    def test_analyze_works_with_profiler_disabled(self):
        """EXPLAIN ANALYZE force-profiles its statement even when the
        always-on profiler has been turned off."""
        db = make_db(profiling_enabled=False)
        conn = accelerated_items(db)
        conn.execute("SELECT COUNT(*) FROM ITEMS")
        assert db.profiler.last() is None  # disabled: nothing retained
        result = conn.execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM ITEMS")
        (section,) = analyze_sections(result)
        assert len(section) > 1

    def test_plain_explain_renders_the_plan_tree(self):
        db = make_db()
        conn = accelerated_items(db)
        result = conn.execute(
            "EXPLAIN SELECT G, COUNT(*) FROM ITEMS WHERE V > 5 GROUP BY G"
        )
        plan_lines = [str(v) for k, v in result.rows if k == "PLAN"]
        assert any("Aggregate" in line for line in plan_lines)
        assert any("Scan" in line and "ITEMS" in line for line in plan_lines)
        # Shared formatter: EXPLAIN ANALYZE spells operators identically.
        analyzed = conn.execute(
            "EXPLAIN ANALYZE SELECT G, COUNT(*) FROM ITEMS "
            "WHERE V > 5 GROUP BY G"
        )
        analyzed_ops = {str(r[0]) for r in analyzed.rows[1:]}
        assert set(plan_lines) <= analyzed_ops


class TestByteIdentity:
    SQL = (
        "SELECT G, COUNT(*) AS N, SUM(V) FROM ITEMS "
        "WHERE V > 3 GROUP BY G ORDER BY G"
    )

    def test_profiled_results_identical_to_unprofiled(self):
        profiled = make_db(profiling_enabled=True)
        plain = make_db(profiling_enabled=False)
        rows = {}
        for db in (profiled, plain):
            conn = accelerated_items(db)
            rows[db.profiler.enabled] = conn.execute(self.SQL).rows
        assert rows[True] == rows[False]
        assert profiled.profiler.last() is not None
        assert plain.profiler.last() is None


class TestFeedbackStore:
    def test_repeated_executions_accumulate(self):
        db = make_db()
        conn = accelerated_items(db)
        for _ in range(3):
            conn.execute("SELECT ID FROM ITEMS WHERE V > 5 ORDER BY ID")
        entries = db.profiler.feedback.entries()
        assert entries
        assert all(e.executions == 3 for e in entries)
        scans = [e for e in entries if e.operator == "Scan"]
        assert len(scans) == 1
        assert scans[0].actual_total == 3 * scans[0].last_actual

    def test_same_statement_same_fingerprint(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.execute("select id from items where v > 5 order by id")
        conn.execute("SELECT ID   FROM ITEMS WHERE V > 5 ORDER BY ID")
        fingerprints = {e.fingerprint for e in db.profiler.feedback.entries()}
        assert len(fingerprints) == 1

    def test_errored_attempt_does_not_feed_store(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.set_acceleration("ENABLE WITH FAILBACK")
        with db.faults.forced("accelerator", kind="crash"):
            conn.execute("SELECT SUM(V) FROM ITEMS")
        # Two profiles retained (crashed + failback)...
        assert len(db.profiler.profiles()) == 2
        assert db.profiler.profiles()[0].error is not None
        # ...but only the clean DB2 re-execution fed the store.
        assert all(
            e.engine == "DB2" for e in db.profiler.feedback.entries()
        )

    def test_capacity_evicts_lru(self):
        db = make_db()
        db.profiler.feedback.capacity = 4
        conn = accelerated_items(db)
        for i in range(6):
            conn.execute(f"SELECT COUNT(*) FROM ITEMS WHERE ID > {i}")
        assert len(db.profiler.feedback.entries()) <= 4

    def test_worst_sorted_by_mean_q_error(self):
        db = make_db()
        conn = accelerated_items(db)
        # Computed predicate: opaque to column statistics -> bad estimate.
        conn.execute("SELECT ID FROM ITEMS WHERE V * 2 > 1000000")
        conn.execute("SELECT ID FROM ITEMS")  # perfect estimate
        worst = db.profiler.feedback.worst(10)
        assert worst == sorted(
            worst, key=lambda e: -e.mean_q_error
        )
        assert worst[0].mean_q_error > 1.0


class TestMonitoringViews:
    def test_mon_operators_queryable(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.execute("SELECT G, COUNT(*) FROM ITEMS GROUP BY G")
        result = conn.execute(
            "SELECT OPERATOR, ENGINE, ACTUAL_ROWS, ESTIMATED_ROWS, Q_ERROR, "
            "EXECUTED FROM SYSACCEL.MON_OPERATORS"
        )
        assert result.rows
        for op, engine, actual, estimated, qerr, executed in result.rows:
            assert engine in ("ACCELERATOR", "DB2")
            assert qerr >= 1.0
            assert executed in ("Y", "N")

    def test_mon_qerror_queryable_with_predicate(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.execute("SELECT ID FROM ITEMS WHERE V * 2 > 1000000")
        result = conn.execute(
            "SELECT OPERATOR, MEAN_Q_ERROR FROM SYSACCEL.MON_QERROR "
            "WHERE MEAN_Q_ERROR > 1.5 ORDER BY MEAN_Q_ERROR DESC"
        )
        assert result.rows
        assert all(row[1] > 1.5 for row in result.rows)

    def test_monitoring_queries_are_not_profiled(self):
        db = make_db()
        conn = accelerated_items(db)
        before = len(db.profiler.profiles())
        conn.execute("SELECT * FROM SYSACCEL.MON_OPERATORS")
        assert len(db.profiler.profiles()) == before


class TestProcedures:
    def test_get_profile_by_id_and_limit(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.execute("SELECT COUNT(*) FROM ITEMS")
        profile_id = db.profiler.last().profile_id
        result = conn.execute(
            f"CALL SYSPROC.ACCEL_GET_PROFILE('profile={profile_id}')"
        )
        text = "\n".join(str(r[0]) for r in result.rows)
        assert profile_id in text and "Aggregate" in text
        assert "1 profiles" in result.message

    def test_get_profile_worst(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.execute("SELECT ID FROM ITEMS WHERE V > 1000000")
        result = conn.execute("CALL SYSPROC.ACCEL_GET_PROFILE('worst=2')")
        text = "\n".join(str(r[0]) for r in result.rows)
        assert "mean_q=" in text

    def test_get_profile_unknown_id(self):
        db = make_db()
        conn = db.connect()
        with pytest.raises(ProcedureError):
            conn.execute("CALL SYSPROC.ACCEL_GET_PROFILE('profile=P999999')")

    def test_configure_updates_every_knob(self):
        db = make_db()
        conn = db.connect()
        conn.execute(
            "CALL SYSPROC.ACCEL_CONTROL_ACCELERATOR('action=configure,"
            "trace_retention=32,profiling=off,profile_retention=16,"
            "slow_threshold=0.25,slow_capacity=8')"
        )
        assert db.tracer.max_traces == 32
        assert db.profiler.enabled is False
        assert db.profiler.slow_log.threshold_seconds == 0.25
        conn.execute(
            "CALL SYSPROC.ACCEL_CONTROL_ACCELERATOR("
            "'action=configure,profiling=on')"
        )
        assert db.profiler.enabled is True

    @pytest.mark.parametrize(
        "params",
        [
            "trace_retention=0",
            "profile_retention=-1",
            "slow_threshold=-0.5",
            "slow_capacity=0",
            "profiling=maybe",
        ],
    )
    def test_configure_bounds_validation(self, params):
        db = make_db()
        conn = db.connect()
        with pytest.raises(ProcedureError):
            conn.execute(
                "CALL SYSPROC.ACCEL_CONTROL_ACCELERATOR("
                f"'action=configure,{params}')"
            )

    def test_configure_requires_a_knob(self):
        db = make_db()
        conn = db.connect()
        with pytest.raises(ProcedureError):
            conn.execute(
                "CALL SYSPROC.ACCEL_CONTROL_ACCELERATOR('action=configure')"
            )

    def test_configure_requires_admin(self):
        db = make_db()
        db.create_user("PLEB")
        conn = db.connect("PLEB")
        from repro.errors import AuthorizationError

        with pytest.raises(AuthorizationError):
            conn.execute(
                "CALL SYSPROC.ACCEL_CONTROL_ACCELERATOR("
                "'action=configure,trace_retention=8')"
            )


class TestRetention:
    def test_trace_retention_resize_keeps_newest(self):
        db = make_db()
        conn = accelerated_items(db)
        for _ in range(6):
            conn.execute("SELECT COUNT(*) FROM ITEMS")
        newest = db.tracer.last().trace_id
        db.tracer.set_retention(2)
        traces = db.tracer.traces()
        assert len(traces) == 2
        assert traces[-1].trace_id == newest

    def test_trace_retention_bounds(self):
        db = make_db()
        with pytest.raises(ValueError):
            db.tracer.set_retention(0)

    def test_profile_retention_resize(self):
        db = make_db()
        conn = accelerated_items(db)
        for _ in range(5):
            conn.execute("SELECT COUNT(*) FROM ITEMS")
        db.profiler.set_retention(2)
        assert len(db.profiler.profiles()) == 2
        with pytest.raises(ValueError):
            db.profiler.set_retention(0)

    def test_profile_ids_are_deterministic(self):
        ids = []
        for _ in range(2):
            db = make_db()
            conn = accelerated_items(db)
            conn.execute("SELECT COUNT(*) FROM ITEMS")
            conn.execute("SELECT SUM(V) FROM ITEMS")
            ids.append([p.profile_id for p in db.profiler.profiles()])
        assert ids[0] == ids[1] == ["P000001", "P000002"]


class TestSlowQueryLog:
    def test_zero_threshold_captures_everything(self):
        db = make_db(slow_query_threshold_seconds=0.0)
        conn = accelerated_items(db)
        conn.execute("SELECT COUNT(*) FROM ITEMS")
        records = db.profiler.slow_log.records()
        assert records
        record = records[-1]
        assert record.profile_id == db.profiler.last().profile_id
        assert any("Scan" in line for line in record.plan_lines)

    def test_high_threshold_captures_nothing(self):
        db = make_db(slow_query_threshold_seconds=3600.0)
        conn = accelerated_items(db)
        conn.execute("SELECT COUNT(*) FROM ITEMS")
        assert db.profiler.slow_log.records() == []

    def test_capacity_trims_oldest(self):
        db = make_db(slow_query_threshold_seconds=0.0, slow_query_capacity=2)
        conn = accelerated_items(db)
        for _ in range(5):
            conn.execute("SELECT COUNT(*) FROM ITEMS")
        assert len(db.profiler.slow_log.records()) == 2


class TestExport:
    def test_profile_export_is_json_safe_for_zero_rows(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.execute("SELECT ID FROM ITEMS WHERE V > 1000000")
        payload = profiles_payload(db)
        # Strict JSON: rejects NaN/inf anywhere in the payload.
        text = json.dumps(payload, allow_nan=False)
        parsed = json.loads(text)
        assert parsed["profiles"][0]["operators"]
        for op in parsed["profiles"][0]["operators"]:
            assert op["q_error"] >= 1.0

    def test_profile_to_dict_round_trip(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.execute("SELECT G, SUM(V) FROM ITEMS GROUP BY G")
        profile = db.profiler.last()
        exported = profile_to_dict(profile)
        assert exported["profile_id"] == profile.profile_id
        assert exported["engine"] == "ACCELERATOR"
        assert len(exported["operators"]) == len(profile.operators)

    def test_qerror_summary_lists_worst(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.execute("SELECT ID FROM ITEMS WHERE V > 1000000")
        summary = qerror_summary(db, worst=3)
        assert summary["entries"] >= 1
        assert summary["worst"]
        assert summary["worst"][0]["mean_q_error"] >= 1.0

    def test_phase_breakdown_json_round_trip(self, tmp_path):
        db = make_db()
        conn = accelerated_items(db)
        conn.execute("SELECT COUNT(*) FROM ITEMS")
        breakdown = trace_phase_breakdown(db.tracer.last())
        path = export_json(tmp_path / "phases.json", breakdown)
        parsed = json.loads(path.read_text())
        assert parsed.keys() == breakdown.keys()
        for name, entry in breakdown.items():
            assert parsed[name]["count"] == entry["count"]


# ---------------------------------------------------------------------------
# E14 corpus coverage: every fuzz-shape query profiles cleanly on both
# engines — the standing Q-error corpus the optimizer work is measured on.
# ---------------------------------------------------------------------------

_FUZZ_DB = None


def _fuzz_conn():
    global _FUZZ_DB
    if _FUZZ_DB is None:
        db = make_db()
        conn = db.connect()
        conn.execute(
            "CREATE TABLE MAIN (ID INTEGER NOT NULL, K INTEGER, "
            "V DOUBLE, S VARCHAR(4))"
        )
        conn.execute(
            "CREATE TABLE DIM (K INTEGER NOT NULL, NAME VARCHAR(8))"
        )
        import random

        rng = random.Random(123)
        rows = []
        for i in range(60):
            k = "NULL" if i % 11 == 0 else rng.randint(0, 6)
            v = "NULL" if i % 7 == 0 else round(rng.uniform(-50, 50), 2)
            s = "NULL" if i % 13 == 0 else repr(rng.choice(["aa", "bb", "cc"]))
            rows.append(f"({i}, {k}, {v}, {s})")
        conn.execute(f"INSERT INTO MAIN VALUES {', '.join(rows)}")
        conn.execute(
            "INSERT INTO DIM VALUES "
            + ", ".join(f"({k}, 'name{k}')" for k in range(5))
        )
        db.add_table_to_accelerator("MAIN")
        db.add_table_to_accelerator("DIM")
        _FUZZ_DB = db
    return _FUZZ_DB, _FUZZ_DB.connect()


@given(sql=random_query())
@settings(max_examples=30, deadline=None)
def test_fuzz_corpus_profiles_on_both_engines(sql):
    db, conn = _fuzz_conn()
    # ALL (not ENABLE) pins the accelerator: under ENABLE the cost
    # router may legitimately keep a tiny probe on DB2, and this test
    # needs a deterministic engine per mode.
    for mode in ("ALL", "NONE"):
        conn.set_acceleration(mode)
        expected = conn.execute(sql).rows
        profile = db.profiler.last()
        assert profile is not None and profile.error is None
        assert profile.engine == ("ACCELERATOR" if mode == "ALL" else "DB2")
        for op in profile.operators:
            assert op.executed, f"{op.describe()} never executed for {sql!r}"
            assert op.q_error >= 1.0 and op.q_error < float("inf")
        # EXPLAIN ANALYZE re-runs it and must not change the answer.
        analyzed = conn.execute(f"EXPLAIN ANALYZE {sql}")
        assert len(analyzed.rows) > 1
        assert conn.execute(sql).rows == expected

"""Property-based tests (hypothesis) on core invariants.

Covered invariants:

* scalar and vector expression compilers agree on arbitrary data;
* column-store snapshot visibility is consistent under random
  insert/delete interleavings;
* zone-map pruning never changes query answers;
* sort order respects SQL NULLs-high semantics;
* Apriori satisfies downward closure and support bounds;
* type coercion is idempotent.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytics.association import apriori_frequent_itemsets
from repro.catalog import Column, TableSchema
from repro.sql import parse_statement
from repro.sql.expressions import (
    Scope,
    VColumn,
    compile_scalar,
    compile_vector,
)
from repro.sql.planning import sort_rows_with_keys
from repro.sql.types import DOUBLE, INTEGER, VarcharType
from repro.storage.column_store import ColumnStoreTable

# ---------------------------------------------------------------------------
# Expression equivalence
# ---------------------------------------------------------------------------

_EXPRESSIONS = [
    "a + b",
    "a - b * 2",
    "a * b + a",
    "-a",
    "a > b",
    "a = b",
    "a <> b",
    "a <= b AND b <= 100",
    "a > 0 OR b > 0",
    "NOT (a > b)",
    "a IS NULL",
    "a IS NOT NULL",
    "a BETWEEN -5 AND 5",
    "a IN (0, 1, 2, 3)",
    "COALESCE(a, b, 0)",
    "NULLIF(a, b)",
    "ABS(a)",
    "CASE WHEN a > b THEN a ELSE b END",
    "CASE WHEN a IS NULL THEN -1 WHEN a > 0 THEN 1 ELSE 0 END",
]

_maybe_int = st.one_of(st.none(), st.integers(min_value=-100, max_value=100))


@settings(max_examples=60, deadline=None)
@given(
    a_values=st.lists(_maybe_int, min_size=1, max_size=20),
    expression=st.sampled_from(_EXPRESSIONS),
    data=st.data(),
)
def test_scalar_and_vector_compilers_agree(a_values, expression, data):
    b_values = data.draw(
        st.lists(
            _maybe_int, min_size=len(a_values), max_size=len(a_values)
        )
    )
    scope = Scope([("T", "A"), ("T", "B")])
    node = parse_statement(f"SELECT {expression} FROM t").select_items[0].expression
    scalar_fn = compile_scalar(node, scope)
    scalar_out = [scalar_fn((a, b)) for a, b in zip(a_values, b_values)]
    vector_fn = compile_vector(node, scope)
    columns = [VColumn.from_objects(a_values), VColumn.from_objects(b_values)]
    vector_out = vector_fn(columns, len(a_values)).to_objects()

    def norm(value):
        if value is None:
            return None
        if isinstance(value, (bool, np.bool_)):
            return bool(value)
        return float(value)

    assert [norm(v) for v in vector_out] == [norm(v) for v in scalar_out]


# ---------------------------------------------------------------------------
# Column-store MVCC invariants
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    batches=st.lists(
        st.integers(min_value=1, max_value=30), min_size=1, max_size=6
    ),
    delete_fraction=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_column_store_visibility_invariants(batches, delete_fraction, seed):
    schema = TableSchema([Column("ID", INTEGER, nullable=False)])
    table = ColumnStoreTable(schema, slice_count=2, chunk_rows=8)
    rng = np.random.default_rng(seed)
    epoch = 0
    history: list[tuple[int, int]] = []  # (epoch, expected visible count)
    live_ids: list[int] = []
    next_id = 0
    for batch in batches:
        epoch += 1
        rows = [(next_id + i,) for i in range(batch)]
        ids = table.append_rows(rows, epoch)
        live_ids.extend(int(i) for i in ids)
        next_id += batch
        history.append((epoch, len(live_ids)))
        if live_ids and delete_fraction > 0:
            count = int(len(live_ids) * delete_fraction * rng.random())
            if count:
                chosen = rng.choice(live_ids, size=count, replace=False)
                epoch += 1
                table.mark_deleted([int(c) for c in chosen], epoch)
                live_ids = [i for i in live_ids if i not in set(int(c) for c in chosen)]
                history.append((epoch, len(live_ids)))
    # Every historical snapshot must still report its exact row count.
    for snapshot_epoch, expected in history:
        row_ids, __ = table.read_visible(snapshot_epoch)
        assert len(row_ids) == expected
    # Visibility is monotone in row ids: no duplicates ever.
    row_ids, __ = table.read_visible(epoch)
    assert len(set(row_ids.tolist())) == len(row_ids)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=200
    ),
    low=st.integers(min_value=-1000, max_value=1000),
    span=st.integers(min_value=0, max_value=500),
)
def test_zone_map_pruning_never_changes_answers(values, low, span):
    schema = TableSchema([Column("V", INTEGER)])
    table = ColumnStoreTable(schema, slice_count=2, chunk_rows=16)
    table.append_rows([(v,) for v in values], epoch=1)
    high = low + span
    expected = sorted(v for v in values if low <= v <= high)

    __, pruned = table.read_visible(1, ranges={"V": (low, high)})
    matched = sorted(
        v for v in pruned["V"].values.tolist() if low <= v <= high
    )
    assert matched == expected


# ---------------------------------------------------------------------------
# Sorting
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(
        st.one_of(st.none(), st.integers(min_value=-50, max_value=50)),
        min_size=0,
        max_size=50,
    ),
    ascending=st.booleans(),
)
def test_sort_nulls_high(keys, ascending):
    rows = [(k,) for k in keys]
    ordered = sort_rows_with_keys(rows, [(k,) for k in keys], [ascending])
    flat = [row[0] for row in ordered]
    non_null = [v for v in flat if v is not None]
    assert non_null == sorted(non_null, reverse=not ascending)
    if ascending:
        # NULLs sort last ascending…
        assert all(v is None for v in flat[len(non_null):])
    else:
        # …and first descending.
        null_count = len(flat) - len(non_null)
        assert all(v is None for v in flat[:null_count])


# ---------------------------------------------------------------------------
# Apriori
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    baskets=st.lists(
        st.sets(st.sampled_from("abcdef"), min_size=1, max_size=4),
        min_size=1,
        max_size=25,
    ),
    min_support=st.floats(min_value=0.05, max_value=1.0),
)
def test_apriori_invariants(baskets, min_support):
    frequent = apriori_frequent_itemsets(list(baskets), min_support)
    total = len(baskets)
    for itemset, support in frequent.items():
        # Support is the exact containment frequency…
        exact = sum(1 for basket in baskets if itemset <= basket) / total
        assert math.isclose(support, exact)
        # …is above the threshold…
        assert support * total >= min_support * total - 1e-9
        # …and every subset is frequent too (downward closure).
        for item in itemset:
            if len(itemset) > 1:
                assert itemset - {item} in frequent


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(value=st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_integer_coercion_idempotent(value):
    assert INTEGER.coerce(INTEGER.coerce(value)) == INTEGER.coerce(value)


@settings(max_examples=50, deadline=None)
@given(
    value=st.floats(allow_nan=False, allow_infinity=False, width=32)
)
def test_double_coercion_idempotent(value):
    once = DOUBLE.coerce(value)
    assert DOUBLE.coerce(once) == once


@settings(max_examples=50, deadline=None)
@given(value=st.text(max_size=30))
def test_varchar_roundtrip(value):
    vtype = VarcharType(30)
    assert vtype.coerce(value) == value


# ---------------------------------------------------------------------------
# End-to-end: random GROUP BY data, DB2 vs accelerator
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.one_of(
                st.none(),
                st.floats(
                    min_value=-100, max_value=100, allow_nan=False
                ),
            ),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_group_by_agrees_between_engines(rows):
    from repro.accelerator import AcceleratorEngine
    from repro.catalog import Catalog, TableLocation
    from repro.db2 import Db2Engine

    catalog = Catalog()
    db2 = Db2Engine(catalog)
    accelerator = AcceleratorEngine(catalog, slice_count=2, chunk_rows=8)
    schema = TableSchema(
        [Column("G", INTEGER, nullable=False), Column("V", DOUBLE)]
    )
    descriptor = catalog.create_table(
        "R", schema, location=TableLocation.ACCELERATED
    )
    db2.create_storage(descriptor)
    accelerator.create_storage(descriptor)
    coerced = [schema.coerce_row(row) for row in rows]
    txn = db2.txn_manager.begin()
    db2.insert_rows(txn, "R", coerced, already_coerced=True)
    db2.commit(txn)
    accelerator.bulk_insert("R", coerced)

    sql = (
        "SELECT g, COUNT(*), COUNT(v), SUM(v), MIN(v), MAX(v) FROM r "
        "GROUP BY g ORDER BY g"
    )
    txn = db2.txn_manager.begin()
    __, db2_rows = db2.execute_select(txn, parse_statement(sql))
    db2.commit(txn)
    __, acc_rows = accelerator.execute_select(parse_statement(sql))

    def norm(row):
        return tuple(
            None
            if v is None
            else (round(float(v), 6) if isinstance(v, (int, float)) else v)
            for v in row
        )

    assert [norm(r) for r in acc_rows] == [norm(r) for r in db2_rows]

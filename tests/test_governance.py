"""Data governance: DB2-side privilege enforcement (paper Sec. 3)."""

import pytest

from repro import AcceleratedDatabase
from repro.errors import AuthorizationError, UnknownObjectError


@pytest.fixture
def db():
    database = AcceleratedDatabase(slice_count=2, chunk_rows=64)
    admin = database.connect()
    admin.execute(
        "CREATE TABLE DATA (ID INTEGER, V DOUBLE) IN ACCELERATOR"
    )
    admin.execute("INSERT INTO DATA VALUES (1, 1.0), (2, 2.0), (3, 3.0)")
    database.create_user("ANALYST")
    database.create_user("INTERN")
    return database


@pytest.fixture
def admin(db):
    return db.connect()


@pytest.fixture
def analyst(db):
    return db.connect("ANALYST")


class TestTablePrivileges:
    def test_select_denied_without_grant(self, analyst):
        with pytest.raises(AuthorizationError):
            analyst.execute("SELECT * FROM data")

    def test_select_allowed_after_grant(self, admin, analyst):
        admin.execute("GRANT SELECT ON DATA TO ANALYST")
        assert analyst.execute("SELECT COUNT(*) FROM data").scalar() == 3

    def test_grant_is_privilege_specific(self, admin, analyst):
        admin.execute("GRANT SELECT ON DATA TO ANALYST")
        with pytest.raises(AuthorizationError):
            analyst.execute("INSERT INTO DATA VALUES (4, 4.0)")
        with pytest.raises(AuthorizationError):
            analyst.execute("DELETE FROM data")
        with pytest.raises(AuthorizationError):
            analyst.execute("UPDATE data SET v = 0")

    def test_grant_all(self, admin, analyst):
        admin.execute("GRANT ALL ON DATA TO ANALYST")
        analyst.execute("INSERT INTO DATA VALUES (4, 4.0)")
        analyst.execute("UPDATE data SET v = 0 WHERE id = 4")
        analyst.execute("DELETE FROM data WHERE id = 4")

    def test_revoke(self, admin, analyst):
        admin.execute("GRANT SELECT ON DATA TO ANALYST")
        admin.execute("REVOKE SELECT ON DATA FROM ANALYST")
        with pytest.raises(AuthorizationError):
            analyst.execute("SELECT * FROM data")

    def test_owner_has_implicit_privileges(self, db, analyst):
        analyst.execute("CREATE TABLE MINE (A INTEGER) IN ACCELERATOR")
        analyst.execute("INSERT INTO MINE VALUES (1)")
        assert analyst.execute("SELECT COUNT(*) FROM mine").scalar() == 1
        analyst.execute("DROP TABLE MINE")

    def test_non_owner_cannot_drop(self, db, admin, analyst):
        admin.execute("GRANT ALL ON DATA TO ANALYST")
        with pytest.raises(AuthorizationError):
            analyst.execute("DROP TABLE DATA")

    def test_non_owner_cannot_grant(self, db, analyst):
        with pytest.raises(AuthorizationError):
            analyst.execute("GRANT SELECT ON DATA TO INTERN")

    def test_owner_can_grant(self, db, analyst):
        analyst.execute("CREATE TABLE MINE (A INTEGER)")
        analyst.execute("GRANT SELECT ON MINE TO INTERN")
        intern = db.connect("INTERN")
        assert intern.execute("SELECT COUNT(*) FROM mine").scalar() == 0

    def test_grant_to_unknown_user(self, admin):
        with pytest.raises(UnknownObjectError):
            admin.execute("GRANT SELECT ON DATA TO GHOST")

    def test_join_checks_all_tables(self, db, admin, analyst):
        admin.execute("CREATE TABLE D2 (ID INTEGER) IN ACCELERATOR")
        admin.execute("GRANT SELECT ON DATA TO ANALYST")
        with pytest.raises(AuthorizationError):
            analyst.execute("SELECT * FROM data JOIN d2 ON data.id = d2.id")

    def test_subquery_tables_checked(self, db, admin, analyst):
        admin.execute("CREATE TABLE D2 (ID INTEGER) IN ACCELERATOR")
        admin.execute("GRANT SELECT ON DATA TO ANALYST")
        with pytest.raises(AuthorizationError):
            analyst.execute(
                "SELECT * FROM data WHERE id IN (SELECT id FROM d2)"
            )


class TestProcedureGovernance:
    """CALL delegation must not bypass DB2 authorisation."""

    def test_execute_denied_without_grant(self, analyst):
        with pytest.raises(AuthorizationError):
            analyst.execute(
                "CALL INZA.SUMMARY('intable=DATA, outtable=OUT1')"
            )

    def test_execute_grant_alone_is_not_enough(self, admin, analyst):
        admin.execute("GRANT EXECUTE ON PROCEDURE INZA.SUMMARY TO ANALYST")
        with pytest.raises(AuthorizationError):
            # Still lacks SELECT on the input table.
            analyst.execute(
                "CALL INZA.SUMMARY('intable=DATA, outtable=OUT1')"
            )

    def test_full_grants_allow_call(self, db, admin, analyst):
        admin.execute("GRANT EXECUTE ON PROCEDURE INZA.SUMMARY TO ANALYST")
        admin.execute("GRANT SELECT ON DATA TO ANALYST")
        result = analyst.execute(
            "CALL INZA.SUMMARY('intable=DATA, outtable=OUT1')"
        )
        assert "SUMMARY ok" in result.message
        # The output AOT belongs to the analyst.
        assert db.catalog.table("OUT1").owner == "ANALYST"
        assert analyst.execute("SELECT COUNT(*) FROM out1").scalar() == 2

    def test_denied_call_leaves_no_output(self, db, analyst):
        with pytest.raises(AuthorizationError):
            analyst.execute(
                "CALL INZA.SUMMARY('intable=DATA, outtable=OUT2')"
            )
        assert not db.catalog.has_table("OUT2")

    def test_existing_output_table_needs_insert(self, db, admin, analyst):
        admin.execute("CREATE TABLE OUT3 (A INTEGER) IN ACCELERATOR")
        admin.execute("GRANT EXECUTE ON PROCEDURE INZA.SUMMARY TO ANALYST")
        admin.execute("GRANT SELECT ON DATA TO ANALYST")
        with pytest.raises(AuthorizationError):
            analyst.execute(
                "CALL INZA.SUMMARY('intable=DATA, outtable=OUT3')"
            )

    def test_denial_counters(self, db, analyst):
        denied_before = db.procedures.calls_denied
        with pytest.raises(AuthorizationError):
            analyst.execute("CALL INZA.SUMMARY('intable=DATA, outtable=X')")
        assert db.procedures.calls_denied == denied_before + 1

    def test_admin_bypasses_procedure_checks(self, admin):
        result = admin.execute(
            "CALL INZA.SUMMARY('intable=DATA, outtable=ADMIN_OUT')"
        )
        assert "SUMMARY ok" in result.message

    def test_only_admin_grants_procedures(self, db, analyst):
        with pytest.raises(AuthorizationError):
            analyst.execute(
                "GRANT EXECUTE ON PROCEDURE INZA.SUMMARY TO INTERN"
            )


class TestLoaderGovernance:
    def test_load_requires_privilege(self, db, admin, analyst):
        from repro import IdaaLoader, IterableSource

        loader = IdaaLoader(db)
        source = IterableSource([(10, 1.0)], ["ID", "V"])
        with pytest.raises(AuthorizationError):
            loader.load(source, "DATA", analyst)

    def test_load_allowed_with_load_privilege(self, db, admin, analyst):
        from repro import IdaaLoader, IterableSource

        admin.execute("GRANT LOAD ON DATA TO ANALYST")
        loader = IdaaLoader(db)
        report = loader.load(
            IterableSource([(10, 1.0)], ["ID", "V"]), "DATA", analyst
        )
        assert report.rows == 1

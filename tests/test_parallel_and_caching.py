"""Regressions for the chunk-parallel read path and the plan cache.

Covers the two correctness fixes that motivated the refactor — int64
zone-map precision and distribution-hash scalar normalisation — plus the
new behaviour: parallel scans must be byte-identical to sequential ones,
and cached plans must be invalidated by DDL but not by grants.
"""

import numpy as np
import pytest

from repro.accelerator import AcceleratorEngine
from repro.accelerator.engine import _partition_chunks
from repro.catalog import Catalog, Column, TableLocation, TableSchema
from repro.federation.router import normalize_sql
from repro.federation.system import AcceleratedDatabase
from repro.sql import parse_statement
from repro.sql.types import BIGINT, DOUBLE, INTEGER, VarcharType
from repro.storage.column_store import ColumnStoreTable, _hash_key
from repro.storage.zone_maps import ZoneMap

INT64_MAX = 2**63 - 1
INT64_MIN = -(2**63)


class TestZoneMapInt64Precision:
    def test_bounds_exact_beyond_float53(self):
        # float64 rounds 2**53 + 1 down to 2**53; the zone map must not.
        boundary = 2**53
        zone = ZoneMap.build(np.array([0, boundary + 1], dtype=np.int64))
        assert zone.maximum == boundary + 1
        assert isinstance(zone.maximum, int)
        assert zone.overlaps(boundary + 1, None)

    def test_bounds_exact_at_int64_extremes(self):
        zone = ZoneMap.build(
            np.array([INT64_MIN, INT64_MAX], dtype=np.int64)
        )
        assert zone.minimum == INT64_MIN
        assert zone.maximum == INT64_MAX
        assert zone.overlaps(INT64_MAX, None)
        assert zone.overlaps(None, INT64_MIN)
        assert not zone.overlaps(None, INT64_MIN - 1)
        assert not zone.overlaps(INT64_MAX + 1, None)

    def test_all_null_chunk_builds_no_zone_map(self):
        values = np.array([0, 0, 0], dtype=np.int64)
        mask = np.array([True, True, True])
        assert ZoneMap.build(values, mask) is None

    def test_nan_only_chunk_builds_no_zone_map(self):
        assert ZoneMap.build(np.array([np.nan, np.nan])) is None

    def test_pruned_scan_keeps_boundary_rows(self):
        # A chunk whose true max is 2**53 + 1 must survive pruning for
        # the predicate ID >= 2**53 + 1 (a float64 bound would round the
        # max down and wrongly discard the chunk — silently losing rows).
        schema = TableSchema([Column("ID", BIGINT, nullable=False)])
        table = ColumnStoreTable(schema, slice_count=1, chunk_rows=4)
        table.append_rows([(v,) for v in range(8)], epoch=1)
        table.append_rows([(2**53 + 1,)], epoch=1)
        __, columns = table.read_visible(
            epoch=1, ranges={"ID": (2**53 + 1, None)}
        )
        assert (2**53 + 1) in columns["ID"].values.tolist()
        assert table.last_scan_chunks_skipped > 0

    def test_engine_query_at_int64_extremes(self):
        catalog = Catalog()
        engine = AcceleratorEngine(catalog, slice_count=1, chunk_rows=4)
        schema = TableSchema([Column("ID", BIGINT, nullable=False)])
        descriptor = catalog.create_table(
            "B", schema, location=TableLocation.ACCELERATOR_ONLY
        )
        engine.create_storage(descriptor)
        engine.bulk_insert(
            "B", [(v,) for v in range(8)] + [(INT64_MAX,), (INT64_MIN,)]
        )
        __, rows = engine.execute_select(
            parse_statement(f"SELECT ID FROM B WHERE ID >= {INT64_MAX}")
        )
        assert rows == [(INT64_MAX,)]
        # INT64_MIN itself cannot appear as a literal (the parser reads it
        # as unary minus on 2**63, which overflows int64), so probe the
        # minimum through the next representable literal.
        __, rows = engine.execute_select(
            parse_statement(f"SELECT ID FROM B WHERE ID <= {INT64_MIN + 1}")
        )
        assert rows == [(INT64_MIN,)]


class TestSliceHashStability:
    def test_numpy_scalars_hash_like_python_scalars(self):
        # np.int64(5) reprs differently from 5; the distribution hash
        # must normalise so both route a row to the same slice.
        assert _hash_key((np.int64(5),)) == _hash_key((5,))
        assert _hash_key((np.float64(2.5),)) == _hash_key((2.5,))
        assert _hash_key((np.str_("k"),)) == _hash_key(("k",))
        assert _hash_key((np.bool_(True),)) == _hash_key((True,))
        assert _hash_key(
            (np.int64(1), np.str_("a"))
        ) == _hash_key((1, "a"))

    def test_mixed_scalar_sources_share_slice_layout(self):
        schema = TableSchema(
            [Column("K", INTEGER, nullable=False), Column("V", DOUBLE)]
        )
        plain = ColumnStoreTable(
            schema, slice_count=4, distribute_on=["K"]
        )
        numpy_sourced = ColumnStoreTable(
            schema, slice_count=4, distribute_on=["K"]
        )
        plain.append_rows([(i, float(i)) for i in range(64)], epoch=1)
        numpy_sourced.append_rows(
            [(np.int64(i), np.float64(i)) for i in range(64)], epoch=1
        )
        layout_a = [[len(c) for c in chunks] for chunks in plain._slices]
        layout_b = [
            [len(c) for c in chunks] for chunks in numpy_sourced._slices
        ]
        assert layout_a == layout_b


class TestDistinctWithNulls:
    @pytest.fixture
    def engine(self):
        catalog = Catalog()
        engine = AcceleratorEngine(catalog, slice_count=2, chunk_rows=8)
        schema = TableSchema(
            [
                Column("ID", INTEGER, nullable=False),
                Column("G", VarcharType(4)),
                Column("V", DOUBLE),
            ]
        )
        descriptor = catalog.create_table(
            "T", schema, location=TableLocation.ACCELERATOR_ONLY
        )
        engine.create_storage(descriptor)
        engine.bulk_insert(
            "T",
            [
                (1, "a", 1.0),
                (2, "a", 1.0),
                (3, None, 1.0),
                (4, None, 1.0),
                (5, "a", None),
                (6, "a", None),
                (7, None, None),
                (8, None, None),
            ],
        )
        return engine

    def run(self, engine, sql):
        return engine.execute_select(parse_statement(sql))[1]

    def test_distinct_single_nullable_column(self, engine):
        rows = self.run(engine, "SELECT DISTINCT G FROM T ORDER BY G")
        assert rows == [("a",), (None,)]  # NULLs sort high

    def test_distinct_collapses_null_pairs(self, engine):
        rows = self.run(
            engine, "SELECT DISTINCT G, V FROM T ORDER BY G, V"
        )
        assert rows == [
            ("a", 1.0),
            ("a", None),
            (None, 1.0),
            (None, None),
        ]

    def test_count_distinct_ignores_nulls(self, engine):
        rows = self.run(engine, "SELECT COUNT(DISTINCT G) FROM T")
        assert rows == [(1,)]


def _build_engines(workers, rows=40_000, chunk_rows=4096):
    """A sequential and a parallel engine over identical data."""
    engines = []
    values = np.random.default_rng(11).normal(size=rows)
    data = [
        (
            int(i),
            float(values[i]) if i % 13 else None,
            f"g{i % 7}" if i % 5 else None,
        )
        for i in range(rows)
    ]
    for count in (1, workers):
        catalog = Catalog()
        engine = AcceleratorEngine(
            catalog,
            slice_count=4,
            chunk_rows=chunk_rows,
            parallel_workers=count,
        )
        schema = TableSchema(
            [
                Column("ID", INTEGER, nullable=False),
                Column("V", DOUBLE),
                Column("G", VarcharType(8)),
            ]
        )
        descriptor = catalog.create_table(
            "T", schema, location=TableLocation.ACCELERATOR_ONLY
        )
        engine.create_storage(descriptor)
        engine.bulk_insert("T", data)
        engines.append(engine)
    return engines


class TestParallelScanIdentity:
    QUERIES = [
        "SELECT ID, V FROM T WHERE V > 0.5",
        "SELECT COUNT(*) FROM T WHERE ID > 100 AND ID < 30000",
        "SELECT COUNT(V), COUNT(DISTINCT G), MIN(ID), MAX(V) FROM T",
        "SELECT G, COUNT(*) FROM T WHERE V > 0 GROUP BY G ORDER BY G",
        "SELECT DISTINCT G FROM T WHERE ID < 20000 ORDER BY G",
        "SELECT MIN(V), MAX(ID) FROM T WHERE ID >= 50",
        "SELECT ID FROM T WHERE V IS NULL AND ID < 200 ORDER BY ID",
    ]

    def test_parallel_results_byte_identical(self):
        sequential, parallel = _build_engines(workers=4)
        for sql in self.QUERIES:
            stmt = parse_statement(sql)
            assert sequential.execute_select(stmt) == parallel.execute_select(
                stmt
            ), sql
        assert parallel.parallel_scans > 0
        assert sequential.parallel_scans == 0

    def test_parallel_scan_counters_match_sequential(self):
        sequential, parallel = _build_engines(workers=4)
        stmt = parse_statement("SELECT COUNT(*) FROM T WHERE ID < 9000")
        sequential.execute_select(stmt)
        parallel.execute_select(stmt)
        assert parallel.rows_scanned == sequential.rows_scanned
        assert parallel.chunks_skipped == sequential.chunks_skipped

    def test_small_tables_stay_sequential(self):
        catalog = Catalog()
        engine = AcceleratorEngine(
            catalog, slice_count=2, chunk_rows=8, parallel_workers=4
        )
        schema = TableSchema([Column("ID", INTEGER, nullable=False)])
        descriptor = catalog.create_table(
            "S", schema, location=TableLocation.ACCELERATOR_ONLY
        )
        engine.create_storage(descriptor)
        engine.bulk_insert("S", [(i,) for i in range(100)])
        engine.execute_select(parse_statement("SELECT COUNT(*) FROM S"))
        assert engine.parallel_scans == 0

    def test_armed_faults_force_sequential_path(self):
        from repro.federation.faults import FaultInjector

        catalog = Catalog()
        faults = FaultInjector(seed=1)
        engine = AcceleratorEngine(
            catalog,
            slice_count=4,
            chunk_rows=4096,
            parallel_workers=4,
            fault_injector=faults,
        )
        schema = TableSchema([Column("ID", INTEGER, nullable=False)])
        descriptor = catalog.create_table(
            "S", schema, location=TableLocation.ACCELERATOR_ONLY
        )
        engine.create_storage(descriptor)
        engine.bulk_insert("S", [(i,) for i in range(40_000)])
        stmt = parse_statement("SELECT COUNT(*) FROM S")
        engine.execute_select(stmt)
        assert engine.parallel_scans == 1
        faults.add("accelerator", "crash", probability=0.0)
        engine.execute_select(stmt)
        assert engine.parallel_scans == 1  # unchanged: fell back


class TestPartitionChunks:
    class _FakeChunk:
        def __init__(self, length):
            self.length = length

        def __len__(self):
            return self.length

    def chunks(self, *lengths):
        return [self._FakeChunk(n) for n in lengths]

    def test_order_preserved_and_complete(self):
        chunks = self.chunks(10, 20, 30, 40, 50)
        spans = _partition_chunks(chunks, 3)
        flattened = [chunk for span in spans for chunk in span]
        assert flattened == chunks
        assert 1 < len(spans) <= 3

    def test_never_more_spans_than_requested(self):
        spans = _partition_chunks(self.chunks(*([5] * 17)), 4)
        assert len(spans) <= 4
        assert sum(len(s) for s in spans) == 17

    def test_single_chunk_single_span(self):
        chunks = self.chunks(100)
        assert _partition_chunks(chunks, 4) == [chunks]


class TestPlanCache:
    @pytest.fixture
    def db(self):
        system = AcceleratedDatabase()
        conn = system.connect()
        conn.execute(
            "CREATE TABLE T (ID INT NOT NULL PRIMARY KEY, V DOUBLE)"
        )
        for i in range(40):
            conn.execute("INSERT INTO T VALUES (?, ?)", (i, float(i)))
        system.add_table_to_accelerator("T")
        system.replication.drain()
        return system, conn

    def test_repeated_statement_hits_cache(self, db):
        system, conn = db
        for __ in range(10):
            rows = conn.query("SELECT COUNT(*) FROM T WHERE V > 5")
        assert rows == [(34,)]
        snapshot = system.plan_cache.snapshot()
        assert snapshot["hits"] == 9
        assert snapshot["hit_rate"] > 0.8

    def test_whitespace_and_case_variants_share_a_plan(self, db):
        system, conn = db
        conn.query("SELECT COUNT(*) FROM T WHERE V > 5")
        conn.query("select   count(*)\nfrom t   where v > 5")
        assert system.plan_cache.hits == 1

    def test_string_literals_are_not_case_folded(self):
        assert normalize_sql("select 'a  b'") == "SELECT 'a  b'"
        assert normalize_sql("select 'It''s  x'") == "SELECT 'It''s  x'"
        assert normalize_sql("select 'a'") != normalize_sql("select 'A'")

    def test_ddl_invalidates_cached_plans(self, db):
        system, conn = db
        conn.query("SELECT COUNT(*) FROM T")
        conn.query("SELECT COUNT(*) FROM T")
        assert system.plan_cache.hits == 1
        conn.execute("CREATE TABLE OTHER (A INT)")
        conn.query("SELECT COUNT(*) FROM T")
        assert system.plan_cache.invalidations == 1

    def test_accelerator_placement_change_invalidates(self, db):
        system, conn = db
        conn.query("SELECT COUNT(*) FROM T")
        before = system.plan_cache.invalidations
        system.remove_table_from_accelerator("T")
        rows = conn.query("SELECT COUNT(*) FROM T")
        assert rows == [(40,)]
        assert system.plan_cache.invalidations == before + 1

    def test_view_redefinition_invalidates(self, db):
        system, conn = db
        conn.execute("CREATE VIEW BIG AS SELECT ID FROM T WHERE V > 20")
        assert len(conn.query("SELECT ID FROM BIG")) == 19
        conn.execute("DROP VIEW BIG")
        conn.execute("CREATE VIEW BIG AS SELECT ID FROM T WHERE V > 30")
        # A stale cached expansion would still see the old predicate.
        assert len(conn.query("SELECT ID FROM BIG")) == 9

    def test_params_vary_per_execution_of_cached_plan(self, db):
        __, conn = db
        assert conn.query("SELECT ID FROM T WHERE ID = ?", (5,)) == [(5,)]
        assert conn.query("SELECT ID FROM T WHERE ID = ?", (7,)) == [(7,)]

    def test_grants_checked_despite_cached_plan(self, db):
        from repro.catalog import Privilege
        from repro.errors import AuthorizationError

        system, conn = db
        system.create_user("ANALYST")
        system.catalog.privileges.grant(
            "ANALYST", [Privilege.SELECT], "TABLE", "T"
        )
        analyst = system.connect("ANALYST")
        assert analyst.query("SELECT COUNT(*) FROM T") == [(40,)]
        system.catalog.privileges.revoke(
            "ANALYST", [Privilege.SELECT], "TABLE", "T"
        )
        # Revocation does not bump the catalog generation; the cached
        # plan must still be blocked by the per-execution check.
        with pytest.raises(AuthorizationError):
            analyst.query("SELECT COUNT(*) FROM T")

    def test_metrics_source_exposes_plan_cache(self, db):
        system, conn = db
        conn.query("SELECT COUNT(*) FROM T")
        conn.query("SELECT COUNT(*) FROM T")
        collected = system.metrics.collect()
        assert collected["plan_cache.hits"] >= 1
        assert collected["plan_cache.size"] >= 1


class TestKernelCacheIdentity:
    """The kernel cache keys on id(expr); entries must pin the expr.

    Correlated subqueries bind a fresh AST per distinct outer key and
    discard it after execution. Without pinning, the next bound AST can
    be allocated at the recycled address, collide on id, and be served
    the kernel compiled for the previous literal — silently returning
    another row's subquery result.
    """

    def test_correlated_scalar_subquery_stable_under_caching(self):
        db = AcceleratedDatabase(slice_count=2, chunk_rows=32)
        conn = db.connect()
        conn.execute("CREATE TABLE CUST (C_ID INTEGER NOT NULL PRIMARY KEY)")
        conn.execute(
            "INSERT INTO CUST VALUES "
            + ", ".join(f"({i})" for i in range(1, 22))
        )
        conn.execute("CREATE TABLE ORD (O_CUST INTEGER, O_AMOUNT DOUBLE)")
        conn.execute(
            "INSERT INTO ORD VALUES "
            + ", ".join(f"({i}, {float(i * 10)})" for i in range(1, 21))
        )
        db.add_table_to_accelerator("CUST")
        db.add_table_to_accelerator("ORD")
        db.replication.drain()
        conn.set_acceleration("ALL")
        expected = [(i, float(i * 10)) for i in range(1, 21)] + [(21, None)]
        sql = (
            "SELECT c_id, (SELECT SUM(o_amount) FROM ord "
            "WHERE o_cust = c_id) FROM cust ORDER BY c_id"
        )
        # 21 ephemeral bound ASTs per execution; any id collision with a
        # previous bind would repeat an earlier customer's sum.
        for __ in range(3):
            assert conn.query(sql) == expected

    def test_cache_entries_pin_their_expressions(self):
        db = AcceleratedDatabase()
        conn = db.connect()
        conn.execute("CREATE TABLE T (ID INT NOT NULL PRIMARY KEY, V DOUBLE)")
        for i in range(20):
            conn.execute("INSERT INTO T VALUES (?, ?)", (i, float(i)))
        db.add_table_to_accelerator("T")
        db.replication.drain()
        conn.query("SELECT COUNT(*) FROM T WHERE V > 5")
        conn.query("SELECT COUNT(*) FROM T WHERE V > 5")
        entries = [
            item
            for plan in db.plan_cache._entries.values()
            for item in plan.kernels._entries.items()
        ]
        assert entries
        for key, (expr, fn) in entries:
            assert key[0] == id(expr)  # pinned: the id can never recycle
            assert callable(fn)

    def test_poisoned_identity_entry_is_recompiled(self):
        from repro.federation.router import KernelCache

        catalog = Catalog()
        engine = AcceleratorEngine(catalog, slice_count=1, chunk_rows=64)
        schema = TableSchema([Column("ID", INTEGER, nullable=False)])
        descriptor = catalog.create_table(
            "T", schema, location=TableLocation.ACCELERATOR_ONLY
        )
        engine.create_storage(descriptor)
        engine.bulk_insert("T", [(i,) for i in range(100)])
        cache = KernelCache()
        stmt = parse_statement("SELECT COUNT(*) FROM T WHERE ID < 10")
        __, rows = engine.execute_select(stmt, kernel_cache=cache)
        assert rows == [(10,)]

        def stale(*args, **kwargs):
            raise AssertionError("stale kernel served for a foreign expr")

        # Simulate an id collision: keep every key but repoint the entry
        # at a foreign expression. The identity check must recompile.
        for key in list(cache._entries):
            cache._entries[key] = (object(), stale)
        __, rows = engine.execute_select(stmt, kernel_cache=cache)
        assert rows == [(10,)]

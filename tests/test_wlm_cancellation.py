"""Cancellation and timeout edge cases: rollback, workers, lock waits.

The deadline tests inject a *stepping clock* into the workload manager:
every clock read advances one simulated second, so a statement budget
expires after a deterministic number of checkpoints — independent of
real wall-clock speed. That pins the timeout to fire mid-execution
(inside the scan / DML pipeline), which is exactly the path that must
roll back atomically and release every lock and admission slot.
"""

import threading
import time

import pytest

from repro import AcceleratedDatabase
from repro.accelerator.executor import ScanWorkerPool
from repro.errors import (
    StatementCancelledError,
    StatementTimeoutError,
)


class SteppingClock:
    """Advances a fixed step on every read (see module docstring).

    With step 1.0, a budget built from this clock with ``timeout=T``
    expires exactly at its ``ceil(T)``-th checkpoint. Reads are locked:
    parallel scan workers read the clock concurrently.
    """

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            self.now += self.step
            return self.now


def _spin_until(predicate, timeout=5.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.001)


def _capture_budgets(db):
    """Record every budget the manager hands out (for checkpoint counts)."""
    captured = []
    original = db.wlm.budget_for

    def capturing(*args, **kwargs):
        budget = original(*args, **kwargs)
        captured.append(budget)
        return budget

    db.wlm.budget_for = capturing
    return captured


@pytest.fixture
def db():
    return AcceleratedDatabase(
        slice_count=2, chunk_rows=128, wlm_enabled=True
    )


class TestTimeoutMidInsertSelect:
    def _prepare(self, db):
        conn = db.connect()
        conn.execute("CREATE TABLE SRC (ID INTEGER, V DOUBLE)")
        for base in range(0, 4000, 500):
            rows = ", ".join(
                f"({i}, {float(i)})" for i in range(base, base + 500)
            )
            conn.execute(f"INSERT INTO SRC VALUES {rows}")
        conn.execute("CREATE TABLE TARGET (ID INTEGER, V DOUBLE) IN ACCELERATOR")
        return conn

    def test_timeout_rolls_back_aot_insert_select_atomically(self, db):
        conn = self._prepare(db)
        db.wlm.clock = SteppingClock()
        budgets = _capture_budgets(db)
        with pytest.raises(StatementTimeoutError):
            # 2.5 simulated seconds of budget: survives the first two
            # checkpoints, expires at the third — inside the pipeline.
            conn.execute(
                "INSERT INTO TARGET SELECT ID, V FROM SRC",
                timeout_seconds=2.5,
            )
        assert budgets and budgets[-1].checks >= 2
        db.wlm.clock = time.monotonic

        # Atomic: the failed INSERT ... SELECT left nothing behind.
        assert conn.execute("SELECT COUNT(*) FROM TARGET").scalar() == 0
        assert db.wlm.statements_timed_out == 1
        # No admission slot leaked across the error path.
        for gate in db.wlm.gates.values():
            assert gate.slots_in_use == 0
        # The session is healthy: the same statement completes when
        # given a real budget, and replication still drains.
        conn.execute("INSERT INTO TARGET SELECT ID, V FROM SRC")
        assert conn.execute("SELECT COUNT(*) FROM TARGET").scalar() == 4000
        db.replication.drain()
        assert db.replication.backlog == 0

    def test_timeout_mid_dml_releases_locks(self, db):
        conn = self._prepare(db)
        db.wlm.clock = SteppingClock()
        with pytest.raises(StatementTimeoutError):
            # Expires at the DML target-selection scan's checkpoints
            # (every 1024 rows over the 4000-row table).
            conn.execute("UPDATE SRC SET V = V + 1", timeout_seconds=2.5)
        db.wlm.clock = time.monotonic
        # The statement's autocommit transaction rolled back and dropped
        # its locks: another session can write immediately.
        other = db.connect()
        other.execute("UPDATE SRC SET V = 0 WHERE ID = 1")
        assert (
            conn.execute("SELECT V FROM SRC WHERE ID = 1").scalar() == 0.0
        )


class TestTimeoutDuringParallelScan:
    def _prepare(self, db):
        db.accelerator.parallel_min_rows = 256
        conn = db.connect()
        conn.execute("CREATE TABLE BIG (ID INTEGER, V DOUBLE) IN ACCELERATOR")
        for base in range(0, 4000, 500):
            rows = ", ".join(
                f"({i}, {float(i)})" for i in range(base, base + 500)
            )
            conn.execute(f"INSERT INTO BIG VALUES {rows}")
        return conn

    def test_workers_observe_the_shared_budget(self, db, monkeypatch):
        conn = self._prepare(db)
        # Sanity: this query takes the chunk-parallel path.
        conn.execute("SELECT COUNT(*) FROM BIG WHERE V >= 0")
        assert db.accelerator.parallel_scans >= 1

        outcomes = {"completed": 0, "aborted": 0}
        original_run = ScanWorkerPool.run

        def counting_run(workers, fn, items):
            def counted(item):
                try:
                    result = fn(item)
                except StatementTimeoutError:
                    outcomes["aborted"] += 1
                    raise
                outcomes["completed"] += 1
                return result

            return original_run(workers, counted, items)

        monkeypatch.setattr(ScanWorkerPool, "run", staticmethod(counting_run))
        db.wlm.clock = SteppingClock()
        with pytest.raises(StatementTimeoutError):
            # Two checkpoints run before the fan-out; 4.5 simulated
            # seconds pushes the expiry into the partition workers.
            conn.execute(
                "SELECT COUNT(*) FROM BIG WHERE V >= 0",
                timeout_seconds=4.5,
            )
        db.wlm.clock = time.monotonic
        # At least one pool worker hit the budget checkpoint and stopped
        # instead of scanning its partition.
        assert outcomes["aborted"] >= 1
        for gate in db.wlm.gates.values():
            assert gate.slots_in_use == 0
        # The pool is undamaged: the same parallel scan runs afterwards.
        monkeypatch.setattr(ScanWorkerPool, "run", staticmethod(original_run))
        assert (
            conn.execute("SELECT COUNT(*) FROM BIG WHERE V >= 0").scalar()
            == 4000
        )


class TestLockWaitBudgets:
    def _prepare(self, db):
        conn = db.connect()
        conn.execute("CREATE TABLE ROWS_T (ID INTEGER, V DOUBLE)")
        conn.execute("INSERT INTO ROWS_T VALUES (1, 1.0), (2, 2.0)")
        return conn

    def test_statement_timeout_fires_during_lock_wait(self, db):
        writer = self._prepare(db)
        writer.execute("BEGIN")
        writer.execute("UPDATE ROWS_T SET V = 9 WHERE ID = 1")
        blocked = db.connect()
        started = time.monotonic()
        with pytest.raises(StatementTimeoutError):
            blocked.execute(
                "UPDATE ROWS_T SET V = 0 WHERE ID = 2",
                timeout_seconds=0.15,
            )
        assert time.monotonic() - started < 5.0
        writer.execute("ROLLBACK")
        # The timed-out session holds nothing: the writer can proceed.
        writer.execute("UPDATE ROWS_T SET V = 5 WHERE ID = 2")
        for gate in db.wlm.gates.values():
            assert gate.slots_in_use == 0

    def test_cancel_aborts_blocked_statement(self, db):
        writer = self._prepare(db)
        writer.execute("BEGIN")
        writer.execute("UPDATE ROWS_T SET V = 9 WHERE ID = 1")
        blocked = db.connect()
        errors = []

        def run_blocked():
            try:
                blocked.execute("UPDATE ROWS_T SET V = 0 WHERE ID = 1")
            except Exception as exc:
                errors.append(exc)

        worker = threading.Thread(target=run_blocked)
        worker.start()
        _spin_until(
            lambda: blocked._budget is not None,
            message="statement to start",
        )
        assert blocked.cancel("test cancel")
        worker.join(timeout=5.0)
        assert not worker.is_alive()
        assert len(errors) == 1
        assert isinstance(errors[0], StatementCancelledError)
        assert db.wlm.statements_cancelled == 1
        writer.execute("ROLLBACK")
        for gate in db.wlm.gates.values():
            assert gate.slots_in_use == 0

    def test_cancel_without_statement_is_a_noop(self, db):
        conn = self._prepare(db)
        assert conn.cancel() is False

"""Federation facade: transparency, AOT lifecycle, DDL/DML routing."""

import pytest

from repro import AcceleratedDatabase
from repro.catalog import TableLocation
from repro.errors import (
    DuplicateObjectError,
    RoutingError,
    SqlError,
    TransactionStateError,
    UnknownObjectError,
)


@pytest.fixture
def db():
    return AcceleratedDatabase(slice_count=2, chunk_rows=128)


@pytest.fixture
def conn(db):
    return db.connect()


class TestAotLifecycle:
    def test_create_in_accelerator_places_data_only_there(self, db, conn):
        conn.execute("CREATE TABLE A1 (ID INTEGER, V DOUBLE) IN ACCELERATOR")
        descriptor = db.catalog.table("A1")
        assert descriptor.location is TableLocation.ACCELERATOR_ONLY
        assert db.accelerator.has_storage("A1")
        assert not db.db2.has_storage("A1")  # only the nickname in DB2

    def test_aot_query_runs_on_accelerator(self, db, conn):
        conn.execute("CREATE TABLE A1 (ID INTEGER) IN ACCELERATOR")
        conn.execute("INSERT INTO A1 VALUES (1), (2)")
        result = conn.execute("SELECT COUNT(*) FROM a1")
        assert result.engine == "ACCELERATOR"
        assert result.scalar() == 2

    def test_aot_update_delete(self, db, conn):
        conn.execute("CREATE TABLE A1 (ID INTEGER, V DOUBLE) IN ACCELERATOR")
        conn.execute("INSERT INTO A1 VALUES (1, 1.0), (2, 2.0), (3, 3.0)")
        assert conn.execute("UPDATE a1 SET v = 0 WHERE id > 1").rowcount == 2
        assert conn.execute("DELETE FROM a1 WHERE v = 0").rowcount == 2
        assert conn.execute("SELECT COUNT(*) FROM a1").scalar() == 1

    def test_insert_select_from_aot_to_aot_stays_on_accelerator(self, db, conn):
        conn.execute("CREATE TABLE SRC (ID INTEGER, V DOUBLE) IN ACCELERATOR")
        conn.execute("INSERT INTO SRC VALUES (1, 1.0), (2, 2.0)")
        conn.execute("CREATE TABLE DST (ID INTEGER, V DOUBLE) IN ACCELERATOR")
        snapshot = db.movement_snapshot()
        conn.execute("INSERT INTO DST SELECT id, v * 2 FROM src")
        moved = db.movement_since(snapshot)
        # Only the statement itself crosses; no row data.
        assert moved.bytes_from_accelerator == 0
        assert moved.bytes_to_accelerator <= 512
        assert conn.execute("SELECT SUM(v) FROM dst").scalar() == 6.0

    def test_create_table_as_select_in_accelerator(self, db, conn):
        conn.execute("CREATE TABLE SRC (ID INTEGER, V DOUBLE) IN ACCELERATOR")
        conn.execute("INSERT INTO SRC VALUES (1, 1.5), (2, 2.5)")
        result = conn.execute(
            "CREATE TABLE DST AS (SELECT id, v + 1 AS v1 FROM src) "
            "IN ACCELERATOR"
        )
        assert result.rowcount == 2
        assert db.catalog.table("DST").is_aot
        assert conn.execute("SELECT SUM(v1) FROM dst").scalar() == 6.0

    def test_drop_aot_removes_nickname_and_storage(self, db, conn):
        conn.execute("CREATE TABLE A1 (ID INTEGER) IN ACCELERATOR")
        conn.execute("DROP TABLE A1")
        assert not db.catalog.has_table("A1")
        assert not db.accelerator.has_storage("A1")

    def test_mixing_aot_with_plain_db2_table_raises(self, db, conn):
        conn.execute("CREATE TABLE A1 (ID INTEGER) IN ACCELERATOR")
        conn.execute("CREATE TABLE P1 (ID INTEGER)")
        with pytest.raises(RoutingError):
            conn.execute("SELECT * FROM a1 JOIN p1 ON a1.id = p1.id")

    def test_insert_select_from_db2_into_aot_ships_rows(self, db, conn):
        conn.execute("CREATE TABLE P1 (ID INTEGER)")
        conn.execute("INSERT INTO P1 VALUES (1), (2), (3)")
        conn.execute("CREATE TABLE A1 (ID INTEGER) IN ACCELERATOR")
        snapshot = db.movement_snapshot()
        conn.execute("INSERT INTO A1 SELECT id FROM p1")
        moved = db.movement_since(snapshot)
        assert moved.bytes_to_accelerator > 0
        assert conn.execute("SELECT COUNT(*) FROM a1").scalar() == 3


class TestDdl:
    def test_create_if_not_exists(self, conn):
        conn.execute("CREATE TABLE T (A INTEGER)")
        conn.execute("CREATE TABLE IF NOT EXISTS T (A INTEGER)")  # no error

    def test_duplicate_create_raises(self, conn):
        conn.execute("CREATE TABLE T (A INTEGER)")
        with pytest.raises(DuplicateObjectError):
            conn.execute("CREATE TABLE T (A INTEGER)")

    def test_drop_if_exists(self, conn):
        conn.execute("DROP TABLE IF EXISTS GHOST")  # no error

    def test_drop_missing_raises(self, conn):
        with pytest.raises(UnknownObjectError):
            conn.execute("DROP TABLE GHOST")

    def test_primary_key_enforced_through_sql(self, conn):
        conn.execute("CREATE TABLE T (A INTEGER NOT NULL PRIMARY KEY)")
        conn.execute("INSERT INTO T VALUES (1)")
        with pytest.raises(SqlError):
            conn.execute("INSERT INTO T VALUES (1)")

    def test_insert_with_column_list_fills_nulls(self, conn):
        conn.execute("CREATE TABLE T (A INTEGER, B DOUBLE)")
        conn.execute("INSERT INTO T (A) VALUES (7)")
        assert conn.execute("SELECT a, b FROM t").rows == [(7, None)]


class TestTransparency:
    """Identical SQL, different placements, same answers."""

    def test_same_query_same_answer_before_and_after_acceleration(
        self, db, conn
    ):
        conn.execute("CREATE TABLE T (ID INTEGER NOT NULL PRIMARY KEY, V DOUBLE)")
        rows = ", ".join(f"({i}, {i * 0.5})" for i in range(50))
        conn.execute(f"INSERT INTO T VALUES {rows}")
        sql = "SELECT COUNT(*), SUM(v) FROM t WHERE v > 5"
        before = conn.execute(sql)
        assert before.engine == "DB2"
        db.add_table_to_accelerator("T")
        conn.set_acceleration("ALL")
        after = conn.execute(sql)
        assert after.engine == "ACCELERATOR"
        assert after.rows == before.rows

    def test_result_metadata_consistent(self, db, conn):
        conn.execute("CREATE TABLE T (ID INTEGER, V DOUBLE)")
        conn.execute("INSERT INTO T VALUES (1, 2.0)")
        db.add_table_to_accelerator("T")
        db2_result = conn.execute("SELECT id AS key, v AS val FROM t")
        conn.set_acceleration("ALL")
        acc_result = conn.execute("SELECT id AS key, v AS val FROM t")
        assert db2_result.columns == acc_result.columns == ["KEY", "VAL"]

    def test_parameterised_queries(self, db, conn):
        conn.execute("CREATE TABLE T (ID INTEGER, V DOUBLE) IN ACCELERATOR")
        conn.execute("INSERT INTO T VALUES (1, 1.0), (2, 2.0), (3, 3.0)")
        result = conn.execute("SELECT id FROM t WHERE v > ? ORDER BY id", (1.5,))
        assert result.rows == [(2,), (3,)]


class TestConnectionTransactions:
    def test_commit_via_sql(self, conn):
        conn.execute("CREATE TABLE T (A INTEGER)")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO T VALUES (1)")
        conn.execute("COMMIT")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_rollback_via_sql(self, conn):
        conn.execute("CREATE TABLE T (A INTEGER)")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO T VALUES (1)")
        conn.execute("ROLLBACK")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_nested_begin_rejected(self, conn):
        conn.execute("BEGIN")
        with pytest.raises(TransactionStateError):
            conn.execute("BEGIN")
        conn.execute("ROLLBACK")

    def test_commit_without_begin_rejected(self, conn):
        with pytest.raises(TransactionStateError):
            conn.execute("COMMIT")

    def test_context_manager_rolls_back_open_txn(self, db):
        with db.connect() as session:
            session.execute("CREATE TABLE T (A INTEGER)")
            session.execute("BEGIN")
            session.execute("INSERT INTO T VALUES (1)")
        follow_up = db.connect()
        assert follow_up.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_failed_statement_in_txn_preserves_prior_work(self, conn):
        """Statement-level atomicity: a failed statement undoes only
        itself, not the whole transaction."""
        conn.execute("CREATE TABLE T (A INTEGER NOT NULL PRIMARY KEY)")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO T VALUES (1)")
        with pytest.raises(SqlError):
            conn.execute("INSERT INTO T VALUES (2), (2)")  # dup inside stmt
        conn.execute("COMMIT")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_failed_autocommit_statement_leaves_nothing(self, conn):
        conn.execute("CREATE TABLE T (A INTEGER NOT NULL PRIMARY KEY)")
        with pytest.raises(SqlError):
            conn.execute("INSERT INTO T VALUES (3), (3)")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_execute_script(self, conn):
        results = conn.execute_script(
            "CREATE TABLE T (A INTEGER); INSERT INTO T VALUES (1), (2); "
            "SELECT COUNT(*) FROM T"
        )
        assert results[-1].scalar() == 2


class TestMovementAccounting:
    def test_offloaded_query_charges_result_bytes(self, db, conn):
        conn.execute("CREATE TABLE T (ID INTEGER, V DOUBLE) IN ACCELERATOR")
        conn.execute("INSERT INTO T VALUES (1, 1.0), (2, 2.0)")
        snapshot = db.movement_snapshot()
        conn.execute("SELECT * FROM t")
        moved = db.movement_since(snapshot)
        assert moved.bytes_from_accelerator > 0

    def test_db2_query_crosses_nothing(self, db, conn):
        conn.execute("CREATE TABLE T (ID INTEGER)")
        conn.execute("INSERT INTO T VALUES (1)")
        snapshot = db.movement_snapshot()
        conn.execute("SELECT * FROM t")
        moved = db.movement_since(snapshot)
        assert moved.total_bytes == 0

    def test_simulated_time_advances_with_bytes(self, db, conn):
        conn.execute("CREATE TABLE T (ID INTEGER) IN ACCELERATOR")
        rows = ", ".join(f"({i})" for i in range(500))
        snapshot = db.movement_snapshot()
        conn.execute(f"INSERT INTO T VALUES {rows}")
        moved = db.movement_since(snapshot)
        assert moved.simulated_seconds > 0

"""Expression compilation: scalar and vector paths, NULL semantics.

Most tests run the *same* expression through both compilers and require
identical results — the two engines must agree on SQL semantics.
"""

import numpy as np
import pytest

from repro.errors import ParseError, SqlError
from repro.sql import parse_statement
from repro.sql.expressions import (
    Scope,
    VColumn,
    compile_scalar,
    compile_vector,
)


def expr_of(text):
    return parse_statement(f"SELECT {text} FROM t").select_items[0].expression


def where_of(text):
    return parse_statement(f"SELECT 1 FROM t WHERE {text}").where


SCOPE = Scope([("T", "A"), ("T", "B"), ("T", "S")])

# Three aligned columns: A (int, one NULL), B (float), S (string, one NULL).
A_VALUES = [1, 2, None, 4, 5]
B_VALUES = [10.0, 20.0, 30.0, 40.0, 50.0]
S_VALUES = ["apple", "banana", None, "cherry", "apricot"]


def both(text, expression=None):
    """Evaluate via scalar and vector compilers; assert equal; return it."""
    node = expression if expression is not None else expr_of(text)
    scalar_fn = compile_scalar(node, SCOPE)
    rows = list(zip(A_VALUES, B_VALUES, S_VALUES))
    scalar_out = [scalar_fn(row) for row in rows]
    vector_fn = compile_vector(node, SCOPE)
    columns = [
        VColumn.from_objects(A_VALUES),
        VColumn.from_objects(B_VALUES),
        VColumn.from_objects(S_VALUES),
    ]
    vector_out = vector_fn(columns, len(rows)).to_objects()
    normalised_scalar = [_normalise(v) for v in scalar_out]
    normalised_vector = [_normalise(v) for v in vector_out]
    assert normalised_vector == pytest.approx(normalised_scalar), text
    return normalised_scalar


def _normalise(value):
    if value is None:
        return None
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return float(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    return value


class TestArithmetic:
    def test_add_null_propagates(self):
        assert both("a + b") == [11.0, 22.0, None, 44.0, 55.0]

    def test_multiply(self):
        assert both("a * 2") == [2.0, 4.0, None, 8.0, 10.0]

    def test_subtract_negate(self):
        assert both("-a + b") == [9.0, 18.0, None, 36.0, 45.0]

    def test_float_division(self):
        assert both("b / 4") == [2.5, 5.0, 7.5, 10.0, 12.5]

    def test_integer_division_truncates(self):
        assert both("a / 2") == [0.0, 1.0, None, 2.0, 2.0]

    def test_modulo(self):
        assert both("a % 2") == [1.0, 0.0, None, 0.0, 1.0]

    def test_division_by_zero_scalar(self):
        fn = compile_scalar(expr_of("a / 0"), SCOPE)
        with pytest.raises(SqlError):
            fn((1, 0.0, "x"))

    def test_division_by_zero_vector(self):
        fn = compile_vector(expr_of("b / (a - a)"), SCOPE)
        columns = [
            VColumn.from_objects([1, 2]),
            VColumn.from_objects([1.0, 2.0]),
            VColumn.from_objects(["x", "y"]),
        ]
        with pytest.raises(SqlError):
            fn(columns, 2)


class TestComparisons:
    def test_greater(self):
        assert both("a > 2") == [False, False, None, True, True]

    def test_equality(self):
        assert both("a = 2") == [False, True, None, False, False]

    def test_not_equal(self):
        assert both("a <> 2") == [True, False, None, True, True]

    def test_string_compare(self):
        assert both("s = 'banana'") == [False, True, None, False, False]

    def test_between(self):
        assert both("a BETWEEN 2 AND 4") == [False, True, None, True, False]

    def test_not_between(self):
        assert both("a NOT BETWEEN 2 AND 4") == [True, False, None, False, True]

    def test_in_list(self):
        assert both("a IN (1, 5)") == [True, False, None, False, True]

    def test_not_in_list(self):
        assert both("a NOT IN (1, 5)") == [False, True, None, True, False]

    def test_is_null(self):
        assert both("a IS NULL") == [False, False, True, False, False]

    def test_is_not_null(self):
        assert both("a IS NOT NULL") == [True, True, False, True, True]

    def test_like_prefix(self):
        assert both("s LIKE 'ap%'") == [True, False, None, False, True]

    def test_like_underscore(self):
        assert both("s LIKE '_anana'") == [False, True, None, False, False]

    def test_not_like(self):
        assert both("s NOT LIKE 'ap%'") == [False, True, None, True, False]


class TestLogic:
    def test_and_kleene(self):
        # NULL AND FALSE = FALSE; NULL AND TRUE = NULL.
        assert both("a > 2 AND b > 15") == [False, False, None, True, True]
        assert both("a > 2 AND b > 100") == [False, False, False, False, False]

    def test_or_kleene(self):
        # NULL OR TRUE = TRUE; NULL OR FALSE = NULL.
        assert both("a > 2 OR b > 25") == [False, False, True, True, True]
        assert both("a > 2 OR b > 100") == [False, False, None, True, True]

    def test_not(self):
        assert both("NOT (a > 2)") == [True, True, None, False, False]


class TestFunctions:
    def test_abs(self):
        assert both("ABS(a - 3)") == [2.0, 1.0, None, 1.0, 2.0]

    def test_sqrt_exp_ln(self):
        assert both("SQRT(b)") == pytest.approx(
            [np.sqrt(v) for v in B_VALUES]
        )
        assert both("LN(b)") == pytest.approx([np.log(v) for v in B_VALUES])

    def test_floor_ceil(self):
        assert both("FLOOR(b / 3)") == [3.0, 6.0, 10.0, 13.0, 16.0]
        assert both("CEIL(b / 3)") == [4.0, 7.0, 10.0, 14.0, 17.0]

    def test_round(self):
        assert both("ROUND(b / 3, 1)") == [3.3, 6.7, 10.0, 13.3, 16.7]

    def test_power_mod(self):
        assert both("POWER(a, 2)") == [1.0, 4.0, None, 16.0, 25.0]
        assert both("MOD(a, 3)") == [1.0, 2.0, None, 1.0, 2.0]

    def test_string_functions(self):
        assert both("UPPER(s)") == ["APPLE", "BANANA", None, "CHERRY", "APRICOT"]
        assert both("LENGTH(s)") == [5.0, 6.0, None, 6.0, 7.0]
        assert both("SUBSTR(s, 1, 3)") == ["app", "ban", None, "che", "apr"]

    def test_concat(self):
        assert both("s || '!'") == [
            "apple!",
            "banana!",
            None,
            "cherry!",
            "apricot!",
        ]

    def test_coalesce(self):
        assert both("COALESCE(a, 0)") == [1.0, 2.0, 0.0, 4.0, 5.0]
        assert both("COALESCE(s, 'missing')") == [
            "apple",
            "banana",
            "missing",
            "cherry",
            "apricot",
        ]

    def test_nullif(self):
        assert both("NULLIF(a, 2)") == [1.0, None, None, 4.0, 5.0]

    def test_unknown_function(self):
        with pytest.raises(ParseError):
            compile_scalar(expr_of("FROBNICATE(a)"), SCOPE)
        with pytest.raises(ParseError):
            compile_vector(expr_of("FROBNICATE(a)"), SCOPE)

    def test_aggregate_rejected_in_scalar_context(self):
        with pytest.raises(ParseError):
            compile_scalar(expr_of("SUM(a)"), SCOPE)


class TestCase:
    def test_searched_case(self):
        assert both(
            "CASE WHEN a >= 4 THEN 'big' WHEN a >= 2 THEN 'mid' "
            "ELSE 'small' END"
        ) == ["small", "mid", "small", "big", "big"]

    def test_case_without_else_yields_null(self):
        assert both("CASE WHEN a > 100 THEN 1 END") == [None] * 5

    def test_case_numeric_branches(self):
        assert both("CASE WHEN a > 2 THEN b ELSE 0 END") == [
            0.0,
            0.0,
            0.0,
            40.0,
            50.0,
        ]


class TestCast:
    def test_cast_to_varchar(self):
        assert both("CAST(a AS VARCHAR(10))") == ["1", "2", None, "4", "5"]

    def test_cast_to_double(self):
        assert both("CAST(a AS DOUBLE)") == [1.0, 2.0, None, 4.0, 5.0]

    def test_cast_to_integer(self):
        assert both("CAST(b AS INTEGER)") == [10.0, 20.0, 30.0, 40.0, 50.0]


class TestScopeResolution:
    def test_unknown_column(self):
        with pytest.raises(ParseError):
            compile_scalar(expr_of("zzz"), SCOPE)

    def test_ambiguous_column(self):
        ambiguous = Scope([("T", "X"), ("U", "X")])
        with pytest.raises(ParseError):
            compile_scalar(expr_of("x"), ambiguous)

    def test_qualified_resolves_ambiguity(self):
        ambiguous = Scope([("T", "X"), ("U", "X")])
        fn = compile_scalar(expr_of("u.x"), ambiguous)
        assert fn((1, 2)) == 2

    def test_star_indexes(self):
        assert SCOPE.star_indexes() == [0, 1, 2]
        assert SCOPE.star_indexes("T") == [0, 1, 2]
        with pytest.raises(ParseError):
            SCOPE.star_indexes("Z")


class TestParameters:
    def test_scalar_parameter_binding(self):
        stmt = parse_statement("SELECT 1 FROM t WHERE a > ?")
        fn = compile_scalar(stmt.where, SCOPE, params=(3,))
        assert fn((4, 0.0, "x")) is True
        assert fn((2, 0.0, "x")) is False

    def test_missing_parameter(self):
        stmt = parse_statement("SELECT 1 FROM t WHERE a > ?")
        with pytest.raises(SqlError):
            compile_scalar(stmt.where, SCOPE, params=())

    def test_vector_parameter_binding(self):
        stmt = parse_statement("SELECT 1 FROM t WHERE a > ?")
        fn = compile_vector(stmt.where, SCOPE, params=(3,))
        columns = [
            VColumn.from_objects(A_VALUES),
            VColumn.from_objects(B_VALUES),
            VColumn.from_objects(S_VALUES),
        ]
        assert fn(columns, 5).to_objects() == [False, False, None, True, True]


class TestVColumn:
    def test_from_objects_int(self):
        col = VColumn.from_objects([1, 2, 3])
        assert col.values.dtype == np.int64
        assert col.mask is None

    def test_from_objects_with_none(self):
        col = VColumn.from_objects([1, None, 3])
        assert col.mask is not None
        assert col.to_objects() == [1, None, 3]

    def test_from_objects_mixed_numeric(self):
        col = VColumn.from_objects([1, 2.5])
        assert col.values.dtype == np.float64

    def test_from_objects_strings(self):
        col = VColumn.from_objects(["a", None])
        assert col.values.dtype == object

    def test_from_objects_bools(self):
        col = VColumn.from_objects([True, False])
        assert col.values.dtype == np.bool_

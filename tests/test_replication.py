"""Replication service: capture → drain → apply, staleness, batching."""

import pytest

from repro import AcceleratedDatabase


@pytest.fixture
def db():
    # Manual drains: auto_replicate off so staleness is observable.
    return AcceleratedDatabase(
        slice_count=2, chunk_rows=128, auto_replicate=False
    )


@pytest.fixture
def conn(db):
    connection = db.connect()
    connection.execute(
        "CREATE TABLE ITEMS (ID INTEGER NOT NULL PRIMARY KEY, V DOUBLE)"
    )
    rows = ", ".join(f"({i}, {float(i)})" for i in range(100))
    connection.execute(f"INSERT INTO ITEMS VALUES {rows}")
    db.add_table_to_accelerator("ITEMS")
    return connection


def accel_sum(conn):
    conn.set_acceleration("ALL")
    result = conn.execute("SELECT SUM(v) FROM items")
    assert result.engine == "ACCELERATOR"
    conn.set_acceleration("ENABLE")
    return result.scalar()


class TestInitialCopy:
    def test_copy_matches_source(self, db, conn):
        assert accel_sum(conn) == sum(float(i) for i in range(100))

    def test_copy_charged_to_interconnect(self, db, conn):
        assert db.interconnect.bytes_to_accelerator > 0

    def test_cannot_accelerate_twice(self, db, conn):
        from repro.errors import DuplicateObjectError

        with pytest.raises(DuplicateObjectError):
            db.add_table_to_accelerator("ITEMS")


class TestDrain:
    def test_copy_is_stale_until_drained(self, db, conn):
        conn.execute("UPDATE items SET v = v + 1000 WHERE id < 10")
        assert db.replication.backlog == 10
        assert accel_sum(conn) == 4950.0  # still the old copy
        applied = db.replication.drain()
        assert applied == 10
        assert accel_sum(conn) == 4950.0 + 10 * 1000

    def test_drain_in_batches(self, db, conn):
        conn.execute("UPDATE items SET v = 0")
        assert db.replication.backlog == 100
        assert db.replication.drain(batch_size=30, max_batches=2) == 60
        assert db.replication.backlog == 40
        assert db.replication.drain(batch_size=30) == 40
        assert accel_sum(conn) == 0.0

    def test_drain_empty_log_is_noop(self, db, conn):
        assert db.replication.drain() == 0

    def test_deletes_replicate(self, db, conn):
        conn.execute("DELETE FROM items WHERE id >= 50")
        db.replication.drain()
        conn.set_acceleration("ALL")
        assert conn.execute("SELECT COUNT(*) FROM items").scalar() == 50

    def test_inserts_replicate(self, db, conn):
        conn.execute("INSERT INTO ITEMS VALUES (1000, 0.5)")
        db.replication.drain()
        conn.set_acceleration("ALL")
        assert conn.execute("SELECT COUNT(*) FROM items").scalar() == 101

    def test_records_charged_to_interconnect(self, db, conn):
        before = db.interconnect.bytes_to_accelerator
        conn.execute("UPDATE items SET v = v + 1")
        db.replication.drain()
        assert db.interconnect.bytes_to_accelerator > before


class TestRegistration:
    def test_changes_before_registration_are_skipped(self, db, conn):
        """The initial copy already contains older rows; replication must
        not re-apply records from before the table was registered."""
        conn.execute("CREATE TABLE T2 (ID INTEGER NOT NULL PRIMARY KEY)")
        conn.execute("INSERT INTO T2 VALUES (1), (2)")
        db.add_table_to_accelerator("T2")
        conn.execute("INSERT INTO T2 VALUES (3)")
        db.replication.drain()
        conn.set_acceleration("ALL")
        assert conn.execute("SELECT COUNT(*) FROM t2").scalar() == 3

    def test_unregistered_table_changes_skipped(self, db, conn):
        conn.execute("UPDATE items SET v = -1 WHERE id = 0")
        db.remove_table_from_accelerator("ITEMS")
        #

        before = db.replication.records_skipped
        db.replication.drain()
        assert db.replication.records_skipped > before


class TestAutoReplication:
    def test_auto_mode_keeps_copy_fresh(self):
        db = AcceleratedDatabase(auto_replicate=True)
        conn = db.connect()
        conn.execute("CREATE TABLE A (ID INTEGER NOT NULL PRIMARY KEY, V DOUBLE)")
        conn.execute("INSERT INTO A VALUES (1, 1.0), (2, 2.0)")
        db.add_table_to_accelerator("A")
        conn.execute("UPDATE a SET v = 10 WHERE id = 1")
        conn.set_acceleration("ALL")
        assert conn.execute("SELECT SUM(v) FROM a").scalar() == 12.0


class TestRedeliveryEdgeCases:
    """Crash-recovery batch semantics: empty, duplicate, out-of-order.

    After a restart the replication service replays the changelog suffix
    past the checkpointed cursor, so the engine must treat redelivered
    batches as no-ops (applied-LSN watermark), reject reordered records
    inside a batch, and not burn an MVCC epoch on an empty batch.
    """

    def test_empty_batch_is_noop(self, db, conn):
        epoch_before = db.accelerator.current_epoch
        assert db.accelerator.apply_changes("ITEMS", []) == 0
        assert db.accelerator.current_epoch == epoch_before

    def test_duplicate_batch_redelivery_is_idempotent(self, db, conn):
        from repro.db2.changelog import ChangeRecord

        batch = [
            ChangeRecord(501, 1, "ITEMS", "INSERT", after=(1000, 0.5)),
            ChangeRecord(502, 1, "ITEMS", "INSERT", after=(1001, 0.5)),
        ]
        assert db.accelerator.apply_changes("ITEMS", batch) == 2
        deduped_before = db.accelerator.records_deduplicated
        epoch_before = db.accelerator.current_epoch
        # Redelivery of the identical batch (crash between apply and
        # cursor advance): every record is at/below the watermark.
        assert db.accelerator.apply_changes("ITEMS", batch) == 0
        assert db.accelerator.records_deduplicated == deduped_before + 2
        assert db.accelerator.current_epoch == epoch_before  # no new epoch
        conn.set_acceleration("ALL")
        assert (
            conn.execute("SELECT COUNT(*) FROM items").scalar() == 102
        )

    def test_overlapping_batch_applies_only_the_new_suffix(self, db, conn):
        from repro.db2.changelog import ChangeRecord

        first = [
            ChangeRecord(601, 1, "ITEMS", "INSERT", after=(2000, 1.0)),
            ChangeRecord(602, 1, "ITEMS", "INSERT", after=(2001, 1.0)),
        ]
        assert db.accelerator.apply_changes("ITEMS", first) == 2
        # A batch re-read at a wider extent after a partial crash overlaps
        # the applied prefix; only the unseen suffix may land.
        overlap = first + [
            ChangeRecord(603, 2, "ITEMS", "INSERT", after=(2002, 1.0))
        ]
        assert db.accelerator.apply_changes("ITEMS", overlap) == 1
        assert db.accelerator.applied_lsn("ITEMS") == 603
        conn.set_acceleration("ALL")
        assert (
            conn.execute(
                "SELECT COUNT(*) FROM items WHERE id >= 2000"
            ).scalar()
            == 3
        )

    def test_out_of_order_records_within_batch_rejected(self, db, conn):
        from repro.db2.changelog import ChangeRecord
        from repro.errors import ReplicationError

        scrambled = [
            ChangeRecord(702, 1, "ITEMS", "INSERT", after=(3001, 1.0)),
            ChangeRecord(701, 1, "ITEMS", "INSERT", after=(3000, 1.0)),
        ]
        with pytest.raises(ReplicationError):
            db.accelerator.apply_changes("ITEMS", scrambled)
        # Nothing applied, watermark unmoved.
        assert db.accelerator.applied_lsn("ITEMS") == 0
        conn.set_acceleration("ALL")
        assert (
            conn.execute(
                "SELECT COUNT(*) FROM items WHERE id >= 3000"
            ).scalar()
            == 0
        )

    def test_stale_batch_arriving_late_is_dropped(self, db, conn):
        from repro.db2.changelog import ChangeRecord

        assert (
            db.accelerator.apply_changes(
                "ITEMS",
                [ChangeRecord(810, 1, "ITEMS", "INSERT", after=(4000, 1.0))],
            )
            == 1
        )
        # A whole batch older than the watermark (late arrival after the
        # records were already replayed) must be dropped wholesale.
        assert (
            db.accelerator.apply_changes(
                "ITEMS",
                [ChangeRecord(805, 1, "ITEMS", "INSERT", after=(4000, 1.0))],
            )
            == 0
        )
        conn.set_acceleration("ALL")
        assert (
            conn.execute(
                "SELECT COUNT(*) FROM items WHERE id = 4000"
            ).scalar()
            == 1
        )

    def test_unstamped_records_bypass_the_watermark(self, db, conn):
        from repro.db2.changelog import ChangeRecord

        db.accelerator.apply_changes(
            "ITEMS",
            [ChangeRecord(900, 1, "ITEMS", "INSERT", after=(5000, 1.0))],
        )
        # LSN 0 marks records that never went through the changelog
        # (direct applies); the watermark must not suppress them.
        assert (
            db.accelerator.apply_changes(
                "ITEMS",
                [ChangeRecord(0, 1, "ITEMS", "INSERT", after=(5001, 1.0))],
            )
            == 1
        )
        assert db.accelerator.applied_lsn("ITEMS") == 900


class TestCursorIndependence:
    """Per-table change feeds drain against one global changelog, but
    each table keeps its own applied-LSN watermark: draining one feed
    must never advance — or roll back — another table's cursor."""

    def test_per_table_watermarks_advance_independently(self, db, conn):
        conn.execute(
            "CREATE TABLE SIDE (ID INTEGER NOT NULL PRIMARY KEY, V DOUBLE)"
        )
        conn.execute("INSERT INTO SIDE VALUES (1, 1.0)")
        db.add_table_to_accelerator("SIDE")
        conn.execute("INSERT INTO SIDE VALUES (2, 2.0)")
        db.replication.drain()
        side_lsn = db.accelerator.applied_lsn("SIDE")
        assert side_lsn > 0
        assert db.accelerator.applied_lsn("ITEMS") == 0  # untouched

        conn.execute("UPDATE items SET v = -5 WHERE id = 1")
        db.replication.drain()
        # ITEMS advanced past SIDE's records; SIDE's cursor is pinned.
        assert db.accelerator.applied_lsn("SIDE") == side_lsn
        assert db.accelerator.applied_lsn("ITEMS") > side_lsn

    def test_interleaved_feeds_apply_exactly_once(self, db, conn):
        conn.execute(
            "CREATE TABLE SIDE (ID INTEGER NOT NULL PRIMARY KEY, V DOUBLE)"
        )
        conn.execute("INSERT INTO SIDE VALUES (0, 0.0)")
        db.add_table_to_accelerator("SIDE")
        for i in range(10):
            conn.execute(f"INSERT INTO ITEMS VALUES ({200 + i}, 1.0)")
            conn.execute(f"INSERT INTO SIDE VALUES ({10 + i}, 1.0)")
        # Tiny batches so the two feeds interleave across many drains.
        while db.replication.drain(batch_size=3, max_batches=1):
            pass
        conn.set_acceleration("ALL")
        assert conn.execute("SELECT COUNT(*) FROM items").scalar() == 110
        assert conn.execute("SELECT COUNT(*) FROM side").scalar() == 11
        conn.set_acceleration("ENABLE")
        items_lsn = db.accelerator.applied_lsn("ITEMS")
        side_lsn = db.accelerator.applied_lsn("SIDE")
        assert items_lsn > 0 and side_lsn > 0
        # The log is fully drained: another pass moves nothing.
        assert db.replication.drain() == 0
        assert db.accelerator.applied_lsn("ITEMS") == items_lsn
        assert db.accelerator.applied_lsn("SIDE") == side_lsn

    def test_sharded_pool_keeps_one_watermark_per_table(self):
        """A 3-shard pool fans each record out by placement, but the
        watermark stays per-table on the coordinator — redelivery is
        exactly-once no matter how many shards absorbed the batch."""
        from repro.db2.changelog import ChangeRecord

        db = AcceleratedDatabase(
            shards=3, slice_count=2, chunk_rows=64, auto_replicate=False
        )
        conn = db.connect()
        conn.execute(
            "CREATE TABLE ITEMS (ID INTEGER NOT NULL PRIMARY KEY, V DOUBLE)"
        )
        conn.execute(
            "CREATE TABLE SIDE (ID INTEGER NOT NULL PRIMARY KEY, V DOUBLE)"
        )
        conn.execute(
            "INSERT INTO ITEMS VALUES "
            + ", ".join(f"({i}, {float(i)})" for i in range(20))
        )
        conn.execute("INSERT INTO SIDE VALUES (0, 0.0)")
        db.add_table_to_accelerator("ITEMS")
        db.add_table_to_accelerator("SIDE")
        for i in range(8):
            conn.execute(f"INSERT INTO ITEMS VALUES ({100 + i}, 1.0)")
            conn.execute(f"INSERT INTO SIDE VALUES ({1 + i}, 1.0)")
        while db.replication.drain(batch_size=3, max_batches=1):
            pass
        conn.set_acceleration("ALL")
        assert conn.execute("SELECT COUNT(*) FROM items").scalar() == 28
        assert conn.execute("SELECT COUNT(*) FROM side").scalar() == 9
        conn.set_acceleration("ENABLE")
        side_lsn = db.accelerator.applied_lsn("SIDE")
        batch = [ChangeRecord(9001, 1, "ITEMS", "INSERT", after=(900, 1.0))]
        assert db.accelerator.apply_changes("ITEMS", batch) == 1
        # Identical redelivery: dropped by the ITEMS watermark, and the
        # unrelated SIDE cursor must not have moved either way.
        assert db.accelerator.apply_changes("ITEMS", batch) == 0
        assert db.accelerator.applied_lsn("SIDE") == side_lsn


class TestTransactionalCapture:
    def test_uncommitted_changes_not_replicated(self, db, conn):
        conn.execute("BEGIN")
        conn.execute("UPDATE items SET v = 0")
        assert db.replication.backlog == 0  # nothing published yet
        conn.execute("ROLLBACK")
        db.replication.drain()
        assert accel_sum(conn) == 4950.0

    def test_commit_publishes_all_changes_in_order(self, db, conn):
        conn.execute("BEGIN")
        conn.execute("UPDATE items SET v = 1 WHERE id = 0")
        conn.execute("UPDATE items SET v = 2 WHERE id = 0")
        conn.execute("COMMIT")
        db.replication.drain()
        conn.set_acceleration("ALL")
        assert conn.execute("SELECT v FROM items WHERE id = 0").scalar() == 2.0

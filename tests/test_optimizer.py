"""Cost-based optimizer: statistics, estimation, reordering, routing.

Covers the statistics layer (histograms, selectivities, the manager's
seed / feed / refresh / invalidate lifecycle), the statistics-driven
cardinality estimator and its feedback correction, the cost model's
routing and join-strategy advice, cost-based join re-association (shape
and byte-identity on both engines), and the admin surface
(SYSPROC.ACCEL_RUNSTATS, SYSACCEL.MON_STATISTICS).
"""

from types import SimpleNamespace

import pytest

from repro import AcceleratedDatabase
from repro.errors import AuthorizationError, ProcedureError
from repro.obs.profile import estimate_plan
from repro.sql import logical, parse_statement
from repro.sql.logical import plan_shape, plan_statement
from repro.sql.stats import (
    ColumnStatistics,
    CostModel,
    Histogram,
    PlanCost,
    StatisticsManager,
)

# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------


def make_db(**kwargs):
    kwargs.setdefault("slice_count", 2)
    kwargs.setdefault("chunk_rows", 64)
    return AcceleratedDatabase(**kwargs)


def star_db():
    """FACT(120) -> DIM1(6), DIM2(4): all accelerated, stats seeded."""
    db = make_db()
    conn = db.connect()
    conn.execute(
        "CREATE TABLE FACT (ID INTEGER NOT NULL PRIMARY KEY, "
        "K INTEGER, J INTEGER, V DOUBLE)"
    )
    conn.execute(
        "CREATE TABLE DIM1 (K INTEGER NOT NULL PRIMARY KEY, NAME VARCHAR(8))"
    )
    conn.execute(
        "CREATE TABLE DIM2 (J INTEGER NOT NULL PRIMARY KEY, TAG VARCHAR(8))"
    )
    fact = ", ".join(
        f"({i}, {i % 6}, {i % 4}, {float(i)})" for i in range(120)
    )
    conn.execute(f"INSERT INTO FACT VALUES {fact}")
    conn.execute(
        "INSERT INTO DIM1 VALUES "
        + ", ".join(f"({k}, 'd{k}')" for k in range(6))
    )
    conn.execute(
        "INSERT INTO DIM2 VALUES "
        + ", ".join(f"({j}, 't{j}')" for j in range(4))
    )
    for name in ("FACT", "DIM1", "DIM2"):
        db.add_table_to_accelerator(name)
    return db, conn


def collect(rows, column_names=("A", "B")):
    manager = StatisticsManager()
    return manager.collect_from_rows("T", column_names, rows)


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_build_distributes_counts(self):
        hist = Histogram.build([float(i) for i in range(100)], bins=10)
        assert hist.total == 100
        assert all(count == 10 for count in hist.counts)

    def test_fraction_at_most(self):
        hist = Histogram.build([float(i) for i in range(100)], bins=10)
        assert hist.fraction_at_most(-1.0) == 0.0
        assert hist.fraction_at_most(99.0) == 1.0
        mid = hist.fraction_at_most(49.5)
        assert 0.4 < mid < 0.6

    def test_range_fraction(self):
        hist = Histogram.build([float(i) for i in range(100)], bins=10)
        assert hist.range_fraction(200.0, None) == 0.0
        assert hist.range_fraction(None, None) == 1.0
        quarter = hist.range_fraction(0.0, 24.75)
        assert 0.15 < quarter < 0.35

    def test_add_clamps_out_of_range(self):
        hist = Histogram.build([0.0, 10.0], bins=2)
        hist.add(1000.0)
        hist.add(-1000.0)
        assert hist.total == 4
        assert hist.counts[0] == 2 and hist.counts[-1] == 2

    def test_scale(self):
        hist = Histogram.build([float(i) for i in range(10)], bins=2)
        hist.scale(2.0)
        assert hist.total == 20

    def test_single_value_column(self):
        hist = Histogram.build([7.0, 7.0, 7.0], bins=4)
        assert hist.total == 3
        assert hist.fraction_at_most(7.0) == 1.0
        assert hist.fraction_at_most(6.9) == 0.0


# ---------------------------------------------------------------------------
# Selectivity
# ---------------------------------------------------------------------------


def _predicate(sql):
    return parse_statement(f"SELECT A FROM T WHERE {sql}").where


class TestPredicateSelectivity:
    @pytest.fixture
    def stats(self):
        rows = [(i % 10, float(i)) for i in range(100)]
        return collect(rows)

    def test_equality_uses_ndv(self, stats):
        assert stats.predicate_selectivity(_predicate("A = 3")) == pytest.approx(
            0.1
        )

    def test_range_uses_histogram(self, stats):
        half = stats.predicate_selectivity(_predicate("B < 49.5"))
        assert 0.4 < half < 0.6

    def test_predicate_beyond_max_is_zero(self, stats):
        assert stats.predicate_selectivity(_predicate("B > 1000000")) == 0.0

    def test_between(self, stats):
        sel = stats.predicate_selectivity(_predicate("B BETWEEN 0 AND 24.75"))
        assert 0.15 < sel < 0.35

    def test_in_list_uses_ndv(self, stats):
        sel = stats.predicate_selectivity(_predicate("A IN (1, 2, 3)"))
        assert sel == pytest.approx(0.3)

    def test_is_null(self):
        rows = [(None if i < 25 else i, float(i)) for i in range(100)]
        stats = collect(rows)
        assert stats.predicate_selectivity(
            _predicate("A IS NULL")
        ) == pytest.approx(0.25)
        assert stats.predicate_selectivity(
            _predicate("A IS NOT NULL")
        ) == pytest.approx(0.75)

    def test_or_adds_capped(self, stats):
        sel = stats.predicate_selectivity(_predicate("A = 1 OR A = 2"))
        assert sel == pytest.approx(0.2)

    def test_opaque_expression_falls_back(self, stats):
        # A computed comparison side defeats the statistics.
        sel = stats.predicate_selectivity(_predicate("B * 2 > 1000000"))
        assert sel == pytest.approx(1.0 / 3.0)

    def test_conjunction_multiplies(self, stats):
        sel = stats.predicate_selectivity(_predicate("A = 3 AND B < 49.5"))
        assert 0.04 < sel < 0.06

    def test_zone_map_only_uniform_range(self):
        column = ColumnStatistics(name="V", minimum=0.0, maximum=100.0)
        stats = collect([])  # empty: no histograms anywhere
        stats.row_count = 100
        stats.columns["V"] = column
        sel = stats.predicate_selectivity(_predicate("V <= 25"))
        assert sel == pytest.approx(0.25)
        assert stats.predicate_selectivity(_predicate("V > 200")) == 0.0


# ---------------------------------------------------------------------------
# The statistics manager lifecycle
# ---------------------------------------------------------------------------


def _record(op, after=None):
    return SimpleNamespace(op=op, after=after)


class TestStatisticsManager:
    def test_collect_from_rows(self):
        manager = StatisticsManager()
        stats = manager.collect_from_rows(
            "t", ("A", "B"), [(1, 2.0), (2, 4.0), (2, None)]
        )
        assert stats.row_count == 3
        assert stats.column("A").ndv == 2
        assert stats.column("B").null_count == 1
        assert stats.column("B").minimum == 2.0
        assert manager.row_count("T") == 3
        assert manager.tables_collected == 1

    def test_apply_changes_folds_feed(self):
        manager = StatisticsManager()
        manager.collect_from_rows("T", ("A",), [(1,), (2,)])
        manager.apply_changes(
            "T",
            [
                _record("INSERT", after=(9,)),
                _record("INSERT", after=(10,)),
                _record("DELETE"),
            ],
        )
        stats = manager.table("T")
        assert stats.row_count == 3  # 2 + 2 inserts - 1 delete
        assert stats.column("A").maximum == 10
        assert stats.source == "runstats+feed"
        assert stats.feed_records == 3

    def test_apply_changes_unknown_table_is_ignored(self):
        manager = StatisticsManager()
        manager.apply_changes("GHOST", [_record("INSERT", after=(1,))])
        assert manager.table("GHOST") is None

    def test_note_write_refreshes_against_probe(self):
        live = {"T": 200}
        manager = StatisticsManager(row_probe=lambda name: live.get(name))
        manager.collect_from_rows(
            "T", ("A",), [(float(i),) for i in range(100)]
        )
        manager.note_write("T")
        stats = manager.table("T")
        assert stats.row_count == 200
        # Histogram mass rescaled alongside the row count.
        assert stats.column("A").histogram.total == pytest.approx(200, abs=8)
        assert manager.refreshes == 1

    def test_invalidate_single_and_all(self):
        manager = StatisticsManager()
        manager.collect_from_rows("T", ("A",), [(1,)])
        manager.collect_from_rows("U", ("A",), [(1,)])
        manager.invalidate("T")
        assert manager.table("T") is None and manager.table("U") is not None
        manager.invalidate()
        assert manager.table("U") is None
        assert manager.invalidations == 2

    def test_snapshot_counters(self):
        manager = StatisticsManager()
        manager.collect_from_rows("T", ("A",), [(1,)])
        snap = manager.snapshot()
        assert snap["tables"] == 1
        assert snap["tables_collected"] == 1


# ---------------------------------------------------------------------------
# The cardinality estimator
# ---------------------------------------------------------------------------


def _plan(sql, **kwargs):
    return plan_statement(parse_statement(sql), **kwargs)


class TestEstimator:
    def test_empty_table_with_predicate_estimates_zero(self):
        # Regression: the legacy floor charged empty tables one phantom
        # row per predicated scan, which poisoned every estimate above.
        plan = _plan("SELECT A FROM T WHERE A > 5")
        estimates = estimate_plan(plan, lambda name: 0)
        assert estimates[id(plan)] == 0

    def test_legacy_fixed_selectivity_without_stats(self):
        plan = _plan("SELECT A FROM T WHERE A > 5")
        estimates = estimate_plan(plan, lambda name: 40)
        assert estimates[id(plan)] == 13  # 40 // 3

    def test_stats_scan_predicate(self):
        manager = StatisticsManager()
        manager.collect_from_rows(
            "T", ("A", "B"), [(i % 10, float(i)) for i in range(100)]
        )
        plan = _plan("SELECT A FROM T WHERE B > 1000000")
        estimates = estimate_plan(plan, lambda name: 100, stats=manager)
        assert estimates[id(plan)] == 0
        plan = _plan("SELECT A FROM T WHERE A = 3")
        estimates = estimate_plan(plan, lambda name: 100, stats=manager)
        assert estimates[id(plan)] == 10

    def test_stats_equi_join_uses_ndv(self):
        manager = StatisticsManager()
        manager.collect_from_rows(
            "F", ("ID", "K"), [(i, i % 5) for i in range(100)]
        )
        manager.collect_from_rows(
            "D", ("K", "N"), [(k, k) for k in range(5)]
        )
        plan = _plan("SELECT f.ID FROM F f JOIN D d ON f.K = d.K")
        estimates = estimate_plan(
            plan, lambda name: {"F": 100, "D": 5}[name], stats=manager
        )
        # |F| * |D| / max(ndv) = 100 * 5 / 5
        assert estimates[id(plan)] == 100

    def test_stats_group_by_uses_ndv(self):
        manager = StatisticsManager()
        manager.collect_from_rows(
            "F", ("ID", "K"), [(i, i % 5) for i in range(100)]
        )
        plan = _plan("SELECT K, COUNT(*) FROM F GROUP BY K")
        estimates = estimate_plan(plan, lambda name: 100, stats=manager)
        assert estimates[id(plan)] == 5

    def test_feedback_overrides_model(self):
        plan = _plan("SELECT A FROM T WHERE A > 5")
        observed = {"1": 2, "1.1": 2}
        estimates = estimate_plan(
            plan, lambda name: 40, feedback=observed.get
        )
        assert estimates[id(plan)] == 2


# ---------------------------------------------------------------------------
# The cost model
# ---------------------------------------------------------------------------


class TestCostModel:
    def test_plan_cost_engine_and_describe(self):
        cost = PlanCost(db2=100.0, accelerator=10.0)
        assert cost.engine == "ACCELERATOR"
        assert cost.describe() == "cost accelerator=10 vs db2=100"
        assert PlanCost(db2=5.0, accelerator=50.0).engine == "DB2"

    def test_prefer_nested_loop(self):
        model = CostModel()
        assert model.prefer_nested_loop(8, 8)
        assert not model.prefer_nested_loop(100, 100)
        assert not model.prefer_nested_loop(None, 8)

    def test_prefer_build_left(self):
        model = CostModel()
        assert model.prefer_build_left(5, 100)
        assert not model.prefer_build_left(100, 100)
        assert not model.prefer_build_left(None, 100)

    def test_tiny_scan_prefers_db2(self):
        model = CostModel()
        plan = _plan("SELECT A FROM T")
        estimates = estimate_plan(plan, lambda name: 3)
        assert model.plan_costs(plan, estimates).engine == "DB2"

    def test_large_aggregate_prefers_accelerator(self):
        model = CostModel()
        plan = _plan("SELECT SUM(A) FROM T")
        estimates = estimate_plan(plan, lambda name: 100_000)
        assert model.plan_costs(plan, estimates).engine == "ACCELERATOR"

    def test_limit_probe_prefers_db2(self):
        # The row engine stops pulling after 5 rows; the accelerator
        # scans whole chunks regardless — a probe should stay on DB2.
        model = CostModel()
        plan = _plan("SELECT A FROM T LIMIT 5")
        estimates = estimate_plan(plan, lambda name: 100_000)
        assert model.plan_costs(plan, estimates).engine == "DB2"


# ---------------------------------------------------------------------------
# Join re-association
# ---------------------------------------------------------------------------

_CHAIN = (
    "SELECT a.X FROM A a JOIN B b ON a.X = b.X JOIN C c ON b.Y = c.Y"
)


def _sizes(mapping):
    return lambda name: mapping.get(name.upper())


def _shape(plan):
    """plan_shape with the pruned-column annotations stripped."""
    import re

    return re.sub(r"Scan\[(\w+)[^\]]*\]", r"Scan[\1]", plan_shape(plan))


class TestJoinReorder:
    def test_reorders_large_table_out_of_the_build_chain(self):
        plan = _plan(_CHAIN, table_rows=_sizes({"A": 1000, "B": 5, "C": 10}))
        assert (
            "Join[INNER](Scan[A],Join[INNER](Scan[B],Scan[C]))"
            in _shape(plan)
        )

    def test_keeps_shape_when_already_optimal(self):
        plan = _plan(_CHAIN, table_rows=_sizes({"A": 5, "B": 5, "C": 1000}))
        assert (
            "Join[INNER](Join[INNER](Scan[A],Scan[B]),Scan[C])"
            in _shape(plan)
        )

    def test_unknown_cardinality_disables_reorder(self):
        plan = _plan(_CHAIN, table_rows=_sizes({"A": 1000, "B": 5}))
        assert (
            "Join[INNER](Join[INNER](Scan[A],Scan[B]),Scan[C])"
            in _shape(plan)
        )

    def test_outer_joins_are_not_reordered(self):
        sql = (
            "SELECT a.X FROM A a LEFT JOIN B b ON a.X = b.X "
            "LEFT JOIN C c ON b.Y = c.Y"
        )
        plan = _plan(sql, table_rows=_sizes({"A": 1000, "B": 5, "C": 10}))
        assert (
            "Join[LEFT](Join[LEFT](Scan[A],Scan[B]),Scan[C])"
            in _shape(plan)
        )

    def test_global_switch_disables_reorder(self, monkeypatch):
        monkeypatch.setattr(logical, "JOIN_REORDER_ENABLED", False)
        plan = _plan(_CHAIN, table_rows=_sizes({"A": 1000, "B": 5, "C": 10}))
        assert (
            "Join[INNER](Join[INNER](Scan[A],Scan[B]),Scan[C])"
            in _shape(plan)
        )

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT f.ID, d1.NAME, d2.TAG FROM FACT f "
            "JOIN DIM1 d1 ON f.K = d1.K JOIN DIM2 d2 ON f.J = d2.J",
            "SELECT f.ID, d1.NAME FROM FACT f "
            "JOIN DIM1 d1 ON f.K = d1.K JOIN DIM2 d2 ON f.J = d2.J "
            "WHERE f.V > 10",
            "SELECT f.ID, d1.K, d2.J FROM FACT f "
            "CROSS JOIN DIM1 d1 CROSS JOIN DIM2 d2 WHERE f.ID < 4",
            "SELECT d1.NAME, COUNT(*) FROM FACT f "
            "JOIN DIM1 d1 ON f.K = d1.K JOIN DIM2 d2 ON f.J = d2.J "
            "GROUP BY d1.NAME ORDER BY 1",
        ],
    )
    def test_reordered_execution_is_byte_identical(self, monkeypatch, sql):
        """The reordered plan must emit the same rows in the same order
        on both engines — transparency demands byte-identity, not just
        set equality."""

        def run(reorder):
            monkeypatch.setattr(logical, "JOIN_REORDER_ENABLED", reorder)
            db, conn = star_db()
            conn.set_acceleration("ENABLE")
            accel = conn.execute(sql).rows
            conn.set_acceleration("NONE")
            db2 = conn.execute(sql).rows
            return accel, db2

        accel_on, db2_on = run(True)
        accel_off, db2_off = run(False)
        assert accel_on == accel_off
        assert db2_on == db2_off
        assert accel_on == db2_on


# ---------------------------------------------------------------------------
# System integration: routing, maintenance, monitoring, RUNSTATS
# ---------------------------------------------------------------------------


class TestSystemIntegration:
    def test_cost_advice_drives_routing(self):
        db, conn = star_db()
        explained = conn.explain("SELECT SUM(V) FROM FACT")
        assert explained["engine"] == "ACCELERATOR"
        assert explained["cost"].startswith("cost accelerator=")
        # A three-row probe is cheaper on the row engine.
        explained = conn.explain("SELECT ID FROM FACT LIMIT 3")
        assert explained["engine"] == "DB2"

    def test_routing_reason_records_costs(self):
        db, conn = star_db()
        conn.execute("SELECT SUM(V) FROM FACT")
        record = db.statement_history[-1]
        assert "cost accelerator=" in record.reason

    def test_heuristic_fallback_without_statistics(self, monkeypatch):
        db, conn = star_db()
        from repro.federation import system as system_module

        # No cardinality for any referenced table: the cost model stands
        # down and the legacy shape/row-threshold heuristic routes.
        monkeypatch.setattr(
            system_module.Connection,
            "_optimizer_table_rows",
            lambda self, name: None,
        )
        explained = conn.explain("SELECT SUM(V) FROM FACT")
        assert explained["cost"] is None
        assert explained["engine"] == "ACCELERATOR"
        assert explained["reason"] == "analytical query shape"

    def test_zone_map_seeding_on_accelerate(self):
        db, conn = star_db()
        stats = db.stats.table("FACT")
        assert stats is not None
        assert stats.source == "zonemap"
        assert stats.row_count == 120
        assert stats.column("V").minimum == 0.0
        assert stats.column("V").maximum == 119.0

    def test_replication_feed_maintains_stats(self):
        db, conn = star_db()
        conn.execute("INSERT INTO FACT VALUES (500, 0, 0, 500.0)")
        db.replication.drain()
        stats = db.stats.table("FACT")
        assert stats.row_count == 121
        assert stats.column("V").maximum == 500.0
        assert stats.source.endswith("+feed")

    def test_drop_table_invalidates_stats(self):
        db, conn = star_db()
        assert db.stats.table("DIM2") is not None
        db.remove_table_from_accelerator("DIM2")
        conn.execute("DROP TABLE DIM2")
        assert db.stats.table("DIM2") is None

    def test_remove_from_accelerator_invalidates_stats(self):
        db, conn = star_db()
        db.remove_table_from_accelerator("DIM1")
        assert db.stats.table("DIM1") is None

    def test_empty_accelerated_table_estimates_zero(self):
        db, conn = star_db()
        conn.execute("CREATE TABLE EMPTYT (A INTEGER, B DOUBLE)")
        db.add_table_to_accelerator("EMPTYT")
        explained = conn.explain("SELECT A FROM EMPTYT WHERE B > 5")
        assert explained["estimated_rows"] == 0
        assert conn.execute("SELECT A FROM EMPTYT WHERE B > 5").rows == []

    def test_cross_product_of_empty_table_is_empty(self):
        db, conn = star_db()
        conn.execute("CREATE TABLE EMPTYT (A INTEGER)")
        db.add_table_to_accelerator("EMPTYT")
        result = conn.execute("SELECT * FROM DIM1 CROSS JOIN EMPTYT")
        assert result.rows == []

    def test_except_and_intersect(self):
        db, conn = star_db()
        intersect = conn.execute(
            "SELECT K FROM DIM1 INTERSECT SELECT J FROM DIM2"
        )
        assert sorted(row[0] for row in intersect.rows) == [0, 1, 2, 3]
        except_ = conn.execute(
            "SELECT K FROM DIM1 EXCEPT SELECT J FROM DIM2"
        )
        assert sorted(row[0] for row in except_.rows) == [4, 5]

    def test_limit_offset_past_end(self):
        db, conn = star_db()
        result = conn.execute(
            "SELECT K FROM DIM1 ORDER BY K LIMIT 5 OFFSET 100"
        )
        assert result.rows == []

    def test_feedback_corrects_repeated_misestimate(self):
        db, conn = star_db()
        sql = "SELECT ID FROM FACT WHERE V * 2 > 1000000"
        conn.execute(sql)  # opaque predicate: misestimated first time
        first = db.profiler.last()
        conn.execute(sql)  # feedback store corrects the re-execution
        second = db.profiler.last()
        assert max(op.q_error for op in first.operators) > 1.5
        assert max(op.q_error for op in second.operators) == 1.0

    def test_mon_statistics_queryable(self):
        db, conn = star_db()
        result = conn.execute(
            "SELECT TABLE_NAME, COLUMN_NAME, ROW_COUNT, SOURCE "
            "FROM SYSACCEL.MON_STATISTICS WHERE COLUMN_NAME = '' "
            "ORDER BY TABLE_NAME"
        )
        assert [(r[0], r[2], r[3]) for r in result.rows] == [
            ("DIM1", 6, "zonemap"),
            ("DIM2", 4, "zonemap"),
            ("FACT", 120, "zonemap"),
        ]

    def test_runstats_upgrades_seeded_stats(self):
        db, conn = star_db()
        result = conn.execute(
            "CALL SYSPROC.ACCEL_RUNSTATS('tables=FACT,bins=8')"
        )
        assert "ACCEL_RUNSTATS ok: 1 tables" in result.message
        stats = db.stats.table("FACT")
        assert stats.source == "runstats"
        assert stats.column("K").ndv == 6
        assert len(stats.column("V").histogram.counts) == 8

    def test_runstats_all_tables_by_default(self):
        db, conn = star_db()
        result = conn.execute("CALL SYSPROC.ACCEL_RUNSTATS('')")
        assert "3 tables" in result.message
        assert all(s.source == "runstats" for s in db.stats.tables())

    def test_runstats_requires_admin(self):
        db, conn = star_db()
        db.create_user("PLEB")
        pleb = db.connect("PLEB")
        with pytest.raises(AuthorizationError):
            pleb.execute("CALL SYSPROC.ACCEL_RUNSTATS('tables=FACT')")

    def test_runstats_rejects_bad_parameters(self):
        db, conn = star_db()
        with pytest.raises(ProcedureError):
            conn.execute("CALL SYSPROC.ACCEL_RUNSTATS('tables=GHOST')")
        with pytest.raises(ProcedureError):
            conn.execute("CALL SYSPROC.ACCEL_RUNSTATS('bins=0')")

    def test_runstats_improves_group_estimate(self):
        db, conn = star_db()
        conn.execute("CALL SYSPROC.ACCEL_RUNSTATS('')")
        explained = conn.explain(
            "SELECT K, COUNT(*) FROM FACT GROUP BY K"
        )
        assert explained["estimated_rows"] == 6

    def test_stats_metrics_source_registered(self):
        db, conn = star_db()
        assert db.metrics.collect()["stats.tables_seeded"] == 3

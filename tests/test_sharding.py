"""The scale-out pool (``repro.shard``): placement, byte-identity,
per-shard resilience, DISTRIBUTE BY DDL, monitoring, and WLM coupling.

The core contract under test is transparency at scale: a pool of N
accelerator shards must return byte-identical results to the single
instance for every query, survive one shard dying without taking the
whole accelerator offline, and rebuild the dead shard from DB2 (the
system of record) on demand.
"""

from __future__ import annotations

import pytest

from repro import AcceleratedDatabase
from repro.catalog import Catalog, Column, TableSchema
from repro.errors import (
    AuthorizationError,
    CatalogError,
    ReproError,
    ShardUnavailableError,
    SqlError,
    UnknownObjectError,
)
from repro.shard import PartitionSpec, default_spec, range_boundaries
from repro.sql.types import DOUBLE, INTEGER, VarcharType

SHARD_COUNTS = (1, 2, 4)


# ---------------------------------------------------------------------------
# Placement unit tests
# ---------------------------------------------------------------------------


class TestPartitionSpec:
    def test_validation(self):
        with pytest.raises(CatalogError):
            PartitionSpec("HASH")  # needs columns
        with pytest.raises(CatalogError):
            PartitionSpec("RANGE", ("A", "B"))  # exactly one column
        with pytest.raises(CatalogError):
            PartitionSpec("RANDOM", ("A",))  # no columns allowed
        with pytest.raises(CatalogError):
            PartitionSpec("HASH", ("A",), boundaries=(1, 2))
        with pytest.raises(CatalogError):
            PartitionSpec("RANGE", ("A",), boundaries=(5, 5))
        with pytest.raises(CatalogError):
            PartitionSpec("MODULO", ("A",))

    def test_hash_routing_is_deterministic(self):
        spec = PartitionSpec("HASH", ("ID",))
        first = spec.shard_for_row((42, "x"), 0, [0], 4)
        assert spec.shard_for_row((42, "y"), 99, [0], 4) == first
        assert 0 <= first < 4
        # One shard cannot own every key.
        owners = {spec.shard_for_row((i,), 0, [0], 4) for i in range(64)}
        assert len(owners) > 1

    def test_range_routing(self):
        spec = PartitionSpec("RANGE", ("ID",), boundaries=(10, 20))
        assert spec.shard_for_row((5,), 0, [0], 3) == 0
        assert spec.shard_for_row((10,), 0, [0], 3) == 1  # right-open
        assert spec.shard_for_row((15,), 0, [0], 3) == 1
        assert spec.shard_for_row((25,), 0, [0], 3) == 2
        assert spec.shard_for_row((None,), 0, [0], 3) == 0  # NULLs first

    def test_random_routing_round_robins_by_row_id(self):
        spec = PartitionSpec("RANDOM")
        assert [spec.shard_for_row((0,), rid, [], 3) for rid in range(6)] == [
            0, 1, 2, 0, 1, 2,
        ]

    def test_single_shard_short_circuits(self):
        spec = PartitionSpec("HASH", ("ID",))
        assert spec.shard_for_row((123,), 0, [0], 1) == 0


class TestShardPruning:
    SCHEMA = TableSchema(
        [Column("ID", INTEGER, nullable=False), Column("V", DOUBLE)]
    )

    def test_hash_prunes_point_lookups_only(self):
        spec = PartitionSpec("HASH", ("ID",))
        assert spec.prune(None, 4, self.SCHEMA) is None
        assert spec.prune({"V": (1, 1)}, 4, self.SCHEMA) is None
        assert spec.prune({"ID": (1, 5)}, 4, self.SCHEMA) is None
        pruned = spec.prune({"ID": (7, 7)}, 4, self.SCHEMA)
        assert pruned == {spec.shard_for_row((7,), 0, [0], 4)}

    def test_range_prunes_overlapping_intervals(self):
        spec = PartitionSpec("RANGE", ("ID",), boundaries=(10, 20))
        assert spec.prune({"ID": (0, 5)}, 3, self.SCHEMA) == {0}
        assert spec.prune({"ID": (12, 18)}, 3, self.SCHEMA) == {1}
        assert spec.prune({"ID": (5, 25)}, 3, self.SCHEMA) == {0, 1, 2}
        assert spec.prune({"ID": (None, 5)}, 3, self.SCHEMA) == {0}
        assert spec.prune({"ID": (25, None)}, 3, self.SCHEMA) == {2}

    def test_random_never_prunes(self):
        spec = PartitionSpec("RANDOM")
        assert spec.prune({"ID": (7, 7)}, 4, self.SCHEMA) is None


class TestRangeBoundaries:
    def test_quantile_splits(self):
        assert range_boundaries(list(range(100)), 4) == (25, 50, 75)

    def test_duplicates_collapse(self):
        cuts = range_boundaries([1] * 50 + [2] * 50, 4)
        assert cuts == tuple(sorted(set(cuts)))  # strictly ascending
        assert set(cuts) <= {1, 2}

    def test_empty_and_single_shard(self):
        assert range_boundaries([], 4) == ()
        assert range_boundaries([1, 2, 3], 1) == ()

    def test_strings_split_positionally(self):
        cuts = range_boundaries([chr(ord("a") + i) for i in range(26)], 2)
        assert len(cuts) == 1 and "a" < cuts[0] < "z"


class TestDefaultSpec:
    def test_distribute_on_becomes_hash(self):
        catalog = Catalog()
        descriptor = catalog.create_table(
            "T",
            TableSchema([Column("ID", INTEGER, nullable=False)]),
            distribute_on=["id"],
        )
        spec = default_spec(descriptor)
        assert spec.method == "HASH" and spec.columns == ("ID",)

    def test_no_distribution_key_round_robins(self):
        catalog = Catalog()
        descriptor = catalog.create_table(
            "T", TableSchema([Column("ID", INTEGER, nullable=False)])
        )
        assert default_spec(descriptor).method == "RANDOM"


# ---------------------------------------------------------------------------
# Byte-identity across shard counts
# ---------------------------------------------------------------------------

_IDENTITY_QUERIES = [
    "SELECT * FROM T ORDER BY ID",
    "SELECT COUNT(*), SUM(V), MIN(V), MAX(V), AVG(V) FROM T",
    "SELECT COUNT(V), COUNT(DISTINCT K) FROM T",
    "SELECT K, COUNT(*), SUM(V) FROM T GROUP BY K ORDER BY K",
    "SELECT ID, V FROM T WHERE ID BETWEEN 40 AND 90 ORDER BY ID",
    "SELECT ID FROM T WHERE V IS NULL ORDER BY ID",
    "SELECT ID FROM T WHERE ID = 57",
    "SELECT DISTINCT K FROM T ORDER BY K",
    "SELECT ID, V FROM T ORDER BY V DESC, ID LIMIT 10",
    "SELECT S, COUNT(*) FROM T WHERE V > 0 GROUP BY S ORDER BY S",
]


def _build_workload(shards: int, distribute: str) -> tuple:
    """An AOT workload with inserts, updates, deletes, and a groom."""
    db = AcceleratedDatabase(shards=shards, slice_count=2, chunk_rows=32)
    conn = db.connect()
    conn.execute(
        "CREATE TABLE T (ID INTEGER NOT NULL, K INTEGER, V DOUBLE, "
        f"S VARCHAR(4)) IN ACCELERATOR{distribute}"
    )
    rows = ", ".join(
        "({id}, {k}, {v}, {s})".format(
            id=i,
            k="NULL" if i % 11 == 0 else i % 5,
            v="NULL" if i % 7 == 0 else round((i * 37 % 100) - 50 + i / 8, 2),
            s="NULL" if i % 13 == 0 else f"'s{i % 3}'",
        )
        for i in range(120)
    )
    conn.execute(f"INSERT INTO T VALUES {rows}")
    conn.execute("UPDATE T SET V = V * 2 WHERE ID % 4 = 1 AND V IS NOT NULL")
    conn.execute("DELETE FROM T WHERE ID % 9 = 5")
    db.accelerator.groom("T")
    conn.execute("INSERT INTO T VALUES (500, 1, 3.5, 'zz'), (501, NULL, NULL, NULL)")
    conn.set_acceleration("ALL")
    return db, conn


@pytest.mark.parametrize(
    "distribute",
    ["", " DISTRIBUTE BY HASH(ID)", " DISTRIBUTE BY RANDOM"],
    ids=["default", "hash", "random"],
)
def test_sharded_results_are_byte_identical(distribute):
    baseline = None
    for shards in SHARD_COUNTS:
        db, conn = _build_workload(shards, distribute)
        results = []
        for sql in _IDENTITY_QUERIES:
            result = conn.execute(sql)
            assert result.engine == "ACCELERATOR", (shards, sql)
            results.append(result.rows)
        if baseline is None:
            baseline = results
        else:
            for sql, expected, got in zip(
                _IDENTITY_QUERIES, baseline, results
            ):
                assert got == expected, (shards, sql)


def test_alter_distribute_preserves_results():
    db, conn = _build_workload(3, "")
    expected = [conn.execute(sql).rows for sql in _IDENTITY_QUERIES]
    generation = db.catalog.generation
    for ddl in (
        "ALTER TABLE T ACCELERATE DISTRIBUTE BY HASH(ID, K)",
        "ALTER TABLE T ACCELERATE DISTRIBUTE BY RANGE(ID)",
        "ALTER TABLE T ACCELERATE DISTRIBUTE BY RANDOM",
    ):
        result = conn.execute(ddl)
        assert result.engine == "ACCELERATOR"
        assert result.rowcount > 0  # live rows were re-placed
        for sql, rows in zip(_IDENTITY_QUERIES, expected):
            assert conn.execute(sql).rows == rows, (ddl, sql)
    assert db.catalog.generation > generation  # cached plans invalidated


def test_alter_distribute_records_spec_in_catalog():
    db, conn = _build_workload(2, "")
    conn.execute("ALTER TABLE T ACCELERATE DISTRIBUTE BY RANGE(ID)")
    spec = db.catalog.partition_spec("T")
    assert spec.method == "RANGE" and spec.columns == ("ID",)
    assert spec.boundaries  # quantiles were computed from live data
    # The pool's shard map follows the catalog spec.
    facade = db.accelerator.storage_for("T")
    assert facade.map.spec == spec
    assert facade.map.generation > 1


def test_alter_distribute_authorization_and_validation():
    db, conn = _build_workload(2, "")
    db.catalog.create_user("PLEB")
    pleb = db.connect("PLEB")
    with pytest.raises(AuthorizationError):
        pleb.execute("ALTER TABLE T ACCELERATE DISTRIBUTE BY RANDOM")
    with pytest.raises(UnknownObjectError):
        conn.execute("ALTER TABLE T ACCELERATE DISTRIBUTE BY HASH(NOPE)")
    conn.execute("CREATE TABLE DB2ONLY (ID INTEGER NOT NULL)")
    with pytest.raises(SqlError):
        conn.execute("ALTER TABLE DB2ONLY ACCELERATE DISTRIBUTE BY RANDOM")


def test_shard_pruning_skips_shards_on_point_lookup():
    db, conn = _build_workload(4, " DISTRIBUTE BY HASH(ID)")
    pool = db.accelerator_pool
    before_total = pool.shard_scans_total
    before_pruned = pool.shard_scans_pruned
    rows = conn.execute("SELECT ID, V FROM T WHERE ID = 57").rows
    assert [r[0] for r in rows] == [57]
    assert pool.shard_scans_total - before_total == 4
    assert pool.shard_scans_pruned - before_pruned == 3  # one shard scanned


# ---------------------------------------------------------------------------
# Kill one shard mid-workload
# ---------------------------------------------------------------------------


def _accelerated_copy(shards: int = 3):
    db = AcceleratedDatabase(shards=shards, slice_count=2, chunk_rows=32)
    conn = db.connect()
    conn.execute("CREATE TABLE C (ID INTEGER NOT NULL PRIMARY KEY, V DOUBLE)")
    rows = ", ".join(f"({i}, {float(i)})" for i in range(90))
    conn.execute(f"INSERT INTO C VALUES {rows}")
    db.add_table_to_accelerator("C")
    conn.set_acceleration("ENABLE WITH FAILBACK")
    return db, conn


class TestKillOneShard:
    def test_copy_fails_back_to_db2_and_circuit_stays_closed(self):
        db, conn = _accelerated_copy()
        assert conn.execute("SELECT SUM(V) FROM C").engine == "ACCELERATOR"
        db.accelerator.kill_shard(1)
        result = conn.execute("SELECT SUM(V) FROM C")
        # Correct answer from the DB2 copy, and one dead shard must NOT
        # have tripped the pool-wide circuit breaker.
        assert result.engine == "DB2"
        assert result.scalar() == sum(float(i) for i in range(90))
        assert db.health.available
        assert db.accelerator_pool.live_shards == 2

    def test_pruned_scans_avoid_the_dead_shard(self):
        db = AcceleratedDatabase(shards=3, slice_count=2, chunk_rows=32)
        conn = db.connect()
        conn.execute(
            "CREATE TABLE A (ID INTEGER NOT NULL, V DOUBLE) "
            "IN ACCELERATOR DISTRIBUTE BY HASH(ID)"
        )
        rows = ", ".join(f"({i}, {float(i)})" for i in range(60))
        conn.execute(f"INSERT INTO A VALUES {rows}")
        facade = db.accelerator.storage_for("A")
        spec = facade.map.spec
        shard_of = lambda i: spec.shard_for_row((i, None), 0, [0], 3)  # noqa: E731
        dead = 1
        live_id = next(i for i in range(60) if shard_of(i) != dead)
        dead_id = next(i for i in range(60) if shard_of(i) == dead)
        db.accelerator.kill_shard(dead)
        conn.set_acceleration("ALL")
        # Placement-pruned to a live shard: still served by the pool.
        result = conn.execute(f"SELECT V FROM A WHERE ID = {live_id}")
        assert result.engine == "ACCELERATOR"
        assert result.scalar() == float(live_id)
        # Touching the dead shard's partition fails fast (an AOT has no
        # DB2 copy to fail back to).
        with pytest.raises(ReproError, match="rebuild_shard"):
            conn.execute(f"SELECT V FROM A WHERE ID = {dead_id}")

    def test_writes_fail_fast_before_any_shard_mutates(self):
        db = AcceleratedDatabase(shards=3, slice_count=2, chunk_rows=32)
        conn = db.connect()
        conn.execute(
            "CREATE TABLE W (ID INTEGER NOT NULL, V DOUBLE) IN ACCELERATOR"
        )
        conn.execute("INSERT INTO W VALUES (1, 1.0), (2, 2.0)")
        db.accelerator.kill_shard(2)
        with pytest.raises(ReproError):
            conn.execute("INSERT INTO W VALUES (3, 3.0)")
        db.rebuild_shard(2)
        # The AOT partition on shard 2 is gone (no DB2 copy) — but
        # surviving partitions were never half-written.
        facade = db.accelerator.storage_for("W")
        assert 2 in facade.lost_shards

    def test_rebuild_shard_reloads_copies_from_db2(self):
        db, conn = _accelerated_copy()
        db.accelerator.kill_shard(0)
        assert conn.execute("SELECT COUNT(*) FROM C").engine == "DB2"
        reloaded = db.rebuild_shard(0)
        assert reloaded == 1
        result = conn.execute("SELECT SUM(V) FROM C")
        assert result.engine == "ACCELERATOR"
        assert result.scalar() == sum(float(i) for i in range(90))
        assert db.accelerator_pool.live_shards == 3

    def test_rebuild_via_accel_control_procedure(self):
        db, conn = _accelerated_copy()
        conn.execute(
            "CALL SYSPROC.ACCEL_CONTROL_ACCELERATOR("
            "'action=kill_shard, shard=2')"
        )
        assert db.accelerator_pool.live_shards == 2
        result = conn.execute(
            "CALL SYSPROC.ACCEL_CONTROL_ACCELERATOR("
            "'action=rebuild_shard, shard=2')"
        )
        assert "rebuilt" in result.message
        assert db.accelerator_pool.live_shards == 3
        assert conn.execute("SELECT COUNT(*) FROM C").engine == "ACCELERATOR"

    def test_mid_workload_kill_never_corrupts_results(self):
        """Crash-harness-style scenario: a query stream crosses a shard
        death and a rebuild; every answer along the way must be correct
        (served by whichever engine can still produce it)."""
        db, conn = _accelerated_copy()
        expected_sum = sum(float(i) for i in range(90))
        for step in range(8):
            if step == 3:
                db.accelerator.kill_shard(1)
            if step == 6:
                assert db.rebuild_shard(1) == 1
            result = conn.execute("SELECT SUM(V), COUNT(*) FROM C")
            assert result.rows == [(expected_sum, 90)], step
        # After the rebuild the pool serves again.
        assert conn.execute("SELECT COUNT(*) FROM C").engine == "ACCELERATOR"

    def test_replication_catches_up_after_rebuild(self):
        db = AcceleratedDatabase(
            shards=3, slice_count=2, chunk_rows=32, auto_replicate=False
        )
        conn = db.connect()
        conn.execute(
            "CREATE TABLE R (ID INTEGER NOT NULL PRIMARY KEY, V DOUBLE)"
        )
        conn.execute(
            "INSERT INTO R VALUES "
            + ", ".join(f"({i}, 1.0)" for i in range(30))
        )
        db.add_table_to_accelerator("R")
        db.accelerator.kill_shard(1)
        conn.execute("INSERT INTO R VALUES (100, 5.0)")
        # The drain cannot apply against a dead shard; whatever it did,
        # the cursor must not have advanced past an unapplied record.
        try:
            db.replication.drain()
        except ReproError:
            pass
        db.rebuild_shard(1)  # reloads R from DB2, which has all 31 rows
        db.replication.drain()
        db.health.reset()  # clear any global trips from failed drains
        conn.set_acceleration("ALL")
        result = conn.execute("SELECT COUNT(*), SUM(V) FROM R")
        assert result.engine == "ACCELERATOR"
        assert result.rows == [(31, 35.0)]


# ---------------------------------------------------------------------------
# Monitoring and WLM coupling
# ---------------------------------------------------------------------------


class TestShardObservability:
    def test_mon_shards_one_row_per_shard(self):
        db, conn = _accelerated_copy(shards=3)
        conn.execute("SELECT COUNT(*) FROM C")
        rows = conn.execute(
            "SELECT SHARD_ID, STATE, ALIVE, ROW_COUNT FROM "
            "SYSACCEL.MON_SHARDS ORDER BY SHARD_ID"
        ).rows
        assert [r[0] for r in rows] == [0, 1, 2]
        assert all(r[1] == "ONLINE" and r[2] == "Y" for r in rows)
        assert sum(r[3] for r in rows) == 90

    def test_mon_shards_reports_dead_shard(self):
        db, conn = _accelerated_copy(shards=3)
        db.accelerator.kill_shard(1)
        rows = conn.execute(
            "SELECT STATE, ALIVE, LOST_TABLES FROM SYSACCEL.MON_SHARDS "
            "WHERE SHARD_ID = 1"
        ).rows
        assert rows == [("DOWN", "N", 1)]

    def test_mon_shards_single_instance_synthetic_row(self):
        db = AcceleratedDatabase(shards=1, slice_count=2, chunk_rows=32)
        conn = db.connect()
        conn.execute(
            "CREATE TABLE S1 (ID INTEGER NOT NULL) IN ACCELERATOR"
        )
        conn.execute("INSERT INTO S1 VALUES (1), (2), (3)")
        rows = conn.execute(
            "SELECT SHARD_ID, STATE, ALIVE, ROW_COUNT FROM "
            "SYSACCEL.MON_SHARDS"
        ).rows
        assert rows == [(0, "ONLINE", "Y", 3)]

    def test_health_report_includes_per_shard_lines(self):
        db, conn = _accelerated_copy(shards=3)
        db.accelerator.kill_shard(2)
        lines = [r[0] for r in conn.execute(
            "CALL SYSPROC.ACCEL_GET_HEALTH('')"
        ).rows]
        shard_lines = [l for l in lines if l.startswith("shard")]
        assert len(shard_lines) == 3
        assert any("state=DOWN" in l for l in shard_lines)

    def test_accelerator_metrics_expose_pool_counters(self):
        db, conn = _accelerated_copy(shards=3)
        conn.execute("SELECT COUNT(*) FROM C")
        snapshot = db.metrics.collect()
        assert snapshot["accelerator.shards"] == 3
        assert snapshot["accelerator.live_shards"] == 3
        assert snapshot["accelerator.critical_path_seconds"] > 0
        assert snapshot["accelerator.shard_scans_total"] >= 3


class TestWlmShardCoupling:
    def _system(self, shards=4):
        return AcceleratedDatabase(
            shards=shards,
            slice_count=2,
            chunk_rows=32,
            wlm_enabled=True,
            wlm_accelerator_slots=8,
        )

    def test_one_dead_shard_does_not_shed(self):
        db = self._system()
        db.accelerator.kill_shard(0)
        # The shedder's health view: pool still has live capacity.
        assert db.wlm.shedder.health.available

    def test_all_shards_dead_sheds(self):
        db = self._system(shards=2)
        db.accelerator.kill_shard(0)
        db.accelerator.kill_shard(1)
        assert not db.wlm.shedder.health.available
        db.accelerator.revive_shard(0)
        assert db.wlm.shedder.health.available

    def test_gate_capacity_follows_live_shards(self):
        db = self._system(shards=4)
        gate = db.wlm.gates["ACCELERATOR"]
        assert gate.slots_total == 8
        db.accelerator.kill_shard(0)
        assert gate.slots_total == 6  # 8 * 3/4
        db.accelerator.kill_shard(1)
        assert gate.slots_total == 4
        db.accelerator.revive_shard(0)
        db.accelerator.revive_shard(1)
        assert gate.slots_total == 8


class TestShardErrors:
    def test_unknown_shard_id_rejected(self):
        db, __ = _accelerated_copy(shards=2)
        with pytest.raises(ReproError):
            db.accelerator.kill_shard(7)
        with pytest.raises(ReproError):
            db.rebuild_shard(-1)

    def test_shard_error_carries_shard_id(self):
        db, conn = _accelerated_copy(shards=3)
        db.accelerator.kill_shard(1)
        pool = db.accelerator_pool
        with pytest.raises(ShardUnavailableError) as info:
            pool.require_shard(1)
        assert info.value.shard_id == 1

    def test_rebuild_on_single_instance_rejected(self):
        db = AcceleratedDatabase(shards=1, slice_count=2, chunk_rows=32)
        with pytest.raises(ReproError):
            db.rebuild_shard(0)

"""Correlated subqueries (EXISTS / IN / scalar) on both engines."""

import pytest

from repro import AcceleratedDatabase
from repro.catalog import Column, TableSchema
from repro.sql import parse_statement
from repro.sql.correlation import analyze_subquery, scope_of_from_item
from repro.sql.expressions import Scope
from repro.sql.types import DOUBLE, INTEGER, VarcharType


@pytest.fixture
def db():
    return AcceleratedDatabase(slice_count=2, chunk_rows=32)


@pytest.fixture
def conn(db):
    connection = db.connect()
    connection.execute(
        "CREATE TABLE CUST (C_ID INTEGER NOT NULL PRIMARY KEY, "
        "C_TIER VARCHAR(8))"
    )
    connection.execute(
        "INSERT INTO CUST VALUES (1, 'GOLD'), (2, 'SILVER'), (3, 'GOLD'), "
        "(4, 'SILVER')"
    )
    connection.execute(
        "CREATE TABLE ORD (O_ID INTEGER NOT NULL PRIMARY KEY, "
        "O_CUST INTEGER, O_AMOUNT DOUBLE)"
    )
    connection.execute(
        "INSERT INTO ORD VALUES "
        "(10, 1, 100.0), (11, 1, 50.0), (12, 2, 500.0), (13, 3, 20.0), "
        "(14, 9, 75.0)"
    )
    db.add_table_to_accelerator("CUST")
    db.add_table_to_accelerator("ORD")
    return connection


def both_equal(conn, sql, ordered=True):
    conn.set_acceleration("NONE")
    db2 = conn.execute(sql)
    assert db2.engine == "DB2"
    conn.set_acceleration("ALL")
    accel = conn.execute(sql)
    assert accel.engine == "ACCELERATOR"
    if ordered:
        assert accel.rows == db2.rows, sql
    else:
        assert sorted(map(repr, accel.rows)) == sorted(map(repr, db2.rows))
    return db2.rows


class TestAnalysis:
    def column_names_of(self, name):
        return {
            "CUST": ["C_ID", "C_TIER"],
            "ORD": ["O_ID", "O_CUST", "O_AMOUNT"],
        }[name.upper()]

    def test_uncorrelated_detected(self):
        query = parse_statement("SELECT MAX(o_amount) FROM ord")
        outer = Scope([("CUST", "C_ID"), ("CUST", "C_TIER")])
        plan = analyze_subquery(query, outer, self.column_names_of)
        assert not plan.is_correlated

    def test_correlated_detected_and_indexed(self):
        query = parse_statement(
            "SELECT COUNT(*) FROM ord WHERE o_cust = c_id"
        )
        outer = Scope([("CUST", "C_ID"), ("CUST", "C_TIER")])
        plan = analyze_subquery(query, outer, self.column_names_of)
        assert plan.is_correlated
        assert plan.outer_indexes == [0]

    def test_bind_substitutes_literals(self):
        from repro.sql import ast

        query = parse_statement(
            "SELECT COUNT(*) FROM ord WHERE o_cust = c_id"
        )
        outer = Scope([("CUST", "C_ID")])
        plan = analyze_subquery(query, outer, self.column_names_of)
        bound = plan.bind((42,))
        literal = bound.where.right
        assert isinstance(literal, ast.Literal)
        assert literal.value == 42
        # Binding must not mutate the original AST.
        assert isinstance(query.where.right, ast.ColumnRef)

    def test_memo_key(self):
        query = parse_statement("SELECT 1 FROM ord WHERE o_cust = c_id")
        outer = Scope([("CUST", "C_ID"), ("CUST", "C_TIER")])
        plan = analyze_subquery(query, outer, self.column_names_of)
        assert plan.key((7, "GOLD")) == (7,)

    def test_scope_of_from_item(self):
        query = parse_statement("SELECT * FROM cust c JOIN ord o ON 1 = 1")
        scope = scope_of_from_item(query.from_item, self.column_names_of)
        assert ("C", "C_TIER") in scope.entries
        assert ("O", "O_AMOUNT") in scope.entries


class TestCorrelatedExists:
    def test_exists(self, conn):
        rows = both_equal(
            conn,
            "SELECT c_id FROM cust WHERE EXISTS "
            "(SELECT 1 FROM ord WHERE o_cust = c_id) ORDER BY c_id",
        )
        assert rows == [(1,), (2,), (3,)]

    def test_not_exists(self, conn):
        rows = both_equal(
            conn,
            "SELECT c_id FROM cust WHERE NOT EXISTS "
            "(SELECT 1 FROM ord WHERE o_cust = c_id) ORDER BY c_id",
        )
        assert rows == [(4,)]

    def test_exists_with_extra_predicate(self, conn):
        rows = both_equal(
            conn,
            "SELECT c_id FROM cust WHERE EXISTS "
            "(SELECT 1 FROM ord WHERE o_cust = c_id AND o_amount > 90) "
            "ORDER BY c_id",
        )
        assert rows == [(1,), (2,)]

    def test_exists_with_alias_qualification(self, conn):
        rows = both_equal(
            conn,
            "SELECT c.c_id FROM cust c WHERE EXISTS "
            "(SELECT 1 FROM ord o WHERE o.o_cust = c.c_id) ORDER BY c.c_id",
        )
        assert rows == [(1,), (2,), (3,)]


class TestCorrelatedScalar:
    def test_scalar_in_select_list(self, conn):
        rows = both_equal(
            conn,
            "SELECT c_id, (SELECT SUM(o_amount) FROM ord "
            "WHERE o_cust = c_id) AS total FROM cust ORDER BY c_id",
        )
        assert rows == [(1, 150.0), (2, 500.0), (3, 20.0), (4, None)]

    def test_scalar_in_where(self, conn):
        rows = both_equal(
            conn,
            "SELECT c_id FROM cust WHERE "
            "(SELECT COUNT(*) FROM ord WHERE o_cust = c_id) > 1 "
            "ORDER BY c_id",
        )
        assert rows == [(1,)]

    def test_correlated_in_subquery(self, conn):
        rows = both_equal(
            conn,
            "SELECT o_id FROM ord WHERE o_cust IN "
            "(SELECT c_id FROM cust WHERE c_id = o_cust "
            "AND c_tier = 'GOLD') ORDER BY o_id",
        )
        assert rows == [(10,), (11,), (13,)]

    def test_mixed_with_uncorrelated(self, conn):
        rows = both_equal(
            conn,
            "SELECT c_id FROM cust WHERE EXISTS "
            "(SELECT 1 FROM ord WHERE o_cust = c_id) "
            "AND c_id IN (SELECT o_cust FROM ord) ORDER BY c_id",
        )
        assert rows == [(1,), (2,), (3,)]


class TestMemoisation:
    def test_correlated_subquery_executes_once_per_distinct_key(self, db):
        """On the accelerator, queries_executed counts subquery runs."""
        conn = db.connect()
        conn.execute("CREATE TABLE A (K INTEGER) IN ACCELERATOR")
        conn.execute(
            "INSERT INTO A VALUES (1), (1), (1), (2), (2)"
        )
        conn.execute("CREATE TABLE B (K INTEGER) IN ACCELERATOR")
        conn.execute("INSERT INTO B VALUES (1)")
        before = db.accelerator.queries_executed
        conn.execute(
            "SELECT COUNT(*) FROM a WHERE EXISTS "
            "(SELECT 1 FROM b WHERE b.k = a.k)"
        )
        # 1 outer query + 2 distinct correlation keys, not 5.
        assert db.accelerator.queries_executed - before <= 3


class TestCorrelatedDml:
    def test_correlated_delete_on_db2(self, conn):
        conn.set_acceleration("NONE")
        result = conn.execute(
            "DELETE FROM ord WHERE NOT EXISTS "
            "(SELECT 1 FROM cust WHERE c_id = o_cust)"
        )
        assert result.rowcount == 1  # order 14 references ghost customer 9
        assert conn.execute("SELECT COUNT(*) FROM ord").scalar() == 4

    def test_correlated_update_on_aot(self, db):
        conn = db.connect()
        conn.execute("CREATE TABLE X (K INTEGER, V DOUBLE) IN ACCELERATOR")
        conn.execute("INSERT INTO X VALUES (1, 0.0), (2, 0.0)")
        conn.execute("CREATE TABLE Y (K INTEGER) IN ACCELERATOR")
        conn.execute("INSERT INTO Y VALUES (1)")
        count = conn.execute(
            "UPDATE x SET v = 1 WHERE EXISTS "
            "(SELECT 1 FROM y WHERE y.k = x.k)"
        ).rowcount
        assert count == 1
        assert conn.execute(
            "SELECT v FROM x ORDER BY k"
        ).rows == [(1.0,), (0.0,)]


class TestCorrelatedOnAots:
    def test_exists_between_aots(self, db):
        conn = db.connect()
        conn.execute("CREATE TABLE S (ID INTEGER, G INTEGER) IN ACCELERATOR")
        conn.execute("INSERT INTO S VALUES (1, 10), (2, 20), (3, 30)")
        conn.execute("CREATE TABLE F (G INTEGER) IN ACCELERATOR")
        conn.execute("INSERT INTO F VALUES (10), (30)")
        result = conn.execute(
            "SELECT id FROM s WHERE EXISTS "
            "(SELECT 1 FROM f WHERE f.g = s.g) ORDER BY id"
        )
        assert result.engine == "ACCELERATOR"
        assert result.rows == [(1,), (3,)]

"""Fault injection, health tracking, FAILBACK routing, resilient replication."""

import pytest

from repro import AcceleratedDatabase
from repro.errors import (
    AcceleratorCrashError,
    AcceleratorUnavailableError,
    LinkError,
)
from repro.federation.faults import FaultInjector
from repro.federation.health import AcceleratorHealthState, HealthMonitor
from repro.federation.router import AccelerationMode


@pytest.fixture
def db():
    # A long cooldown keeps the circuit firmly open once tripped, so the
    # tests that want recovery lower it explicitly.
    return AcceleratedDatabase(
        slice_count=2, chunk_rows=64, cooldown_seconds=60.0
    )


@pytest.fixture
def conn(db):
    return db.connect()


def accelerated_items(db, conn, rows=20):
    conn.execute(
        "CREATE TABLE ITEMS (ID INTEGER NOT NULL PRIMARY KEY, V DOUBLE)"
    )
    values = ", ".join(f"({i}, {float(i)})" for i in range(rows))
    conn.execute(f"INSERT INTO ITEMS VALUES {values}")
    db.add_table_to_accelerator("ITEMS")
    return rows


class TestFaultInjector:
    def test_probability_faults_are_deterministic_per_seed(self):
        def fired_pattern(seed):
            injector = FaultInjector(seed=seed)
            injector.add("x", probability=0.5)
            pattern = []
            for _ in range(50):
                try:
                    injector.check("x")
                    pattern.append(0)
                except LinkError:
                    pattern.append(1)
            return pattern

        assert fired_pattern(7) == fired_pattern(7)
        assert fired_pattern(7) != fired_pattern(8)

    def test_schedule_fires_on_exact_call_indexes(self):
        injector = FaultInjector()
        injector.add("x", schedule=[2, 4])
        outcomes = []
        for _ in range(5):
            try:
                injector.check("x")
                outcomes.append("ok")
            except LinkError:
                outcomes.append("fault")
        assert outcomes == ["ok", "fault", "ok", "fault", "ok"]
        assert injector.injected["x"] == 2
        assert injector.calls["x"] == 5

    def test_count_limited_rule_deactivates(self):
        injector = FaultInjector()
        rule = injector.add("x", count=2)
        for _ in range(2):
            with pytest.raises(LinkError):
                injector.check("x")
        injector.check("x")  # rule exhausted
        assert not rule.active
        assert rule.fired == 2

    def test_forced_context_manager_scopes_the_outage(self):
        injector = FaultInjector()
        with injector.forced("x", kind="crash"):
            with pytest.raises(AcceleratorCrashError):
                injector.check("x")
        injector.check("x")  # no rules left
        assert injector.rules() == []

    def test_latency_rule_inflates_simulated_time_without_raising(self, db):
        db.faults.add("interconnect", kind="latency", latency_seconds=0.5)
        before = db.interconnect.simulated_seconds
        db.interconnect.send_to_accelerator(1000)
        assert db.interconnect.simulated_seconds >= before + 0.5
        assert db.interconnect.injected_latency_seconds == pytest.approx(0.5)

    def test_unknown_kind_and_bad_probability_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.add("x", kind="meteor")
        with pytest.raises(ValueError):
            injector.add("x", probability=1.5)


class TestHealthMonitor:
    def test_threshold_walks_online_degraded_offline(self):
        monitor = HealthMonitor(failure_threshold=3, cooldown_seconds=60)
        assert monitor.state is AcceleratorHealthState.ONLINE
        monitor.record_failure()
        assert monitor.state is AcceleratorHealthState.DEGRADED
        monitor.record_success()
        assert monitor.state is AcceleratorHealthState.ONLINE
        for _ in range(3):
            monitor.record_failure()
        assert monitor.state is AcceleratorHealthState.OFFLINE
        assert monitor.times_opened == 1
        assert not monitor.allow_request()
        assert monitor.requests_rejected == 1

    def test_half_open_probe_success_closes_circuit(self):
        now = [0.0]
        monitor = HealthMonitor(
            failure_threshold=1, cooldown_seconds=10, clock=lambda: now[0]
        )
        monitor.record_failure()
        assert not monitor.allow_request()  # cooldown not elapsed
        now[0] = 11.0
        assert monitor.allow_request()  # half-open probe admitted
        assert monitor.probes_attempted == 1
        monitor.record_success()
        assert monitor.state is AcceleratorHealthState.ONLINE
        assert monitor.times_closed == 1

    def test_failed_probe_restarts_cooldown(self):
        now = [0.0]
        monitor = HealthMonitor(
            failure_threshold=1, cooldown_seconds=10, clock=lambda: now[0]
        )
        monitor.record_failure()
        now[0] = 11.0
        assert monitor.allow_request()
        monitor.record_failure()  # probe failed at t=11
        assert monitor.state is AcceleratorHealthState.OFFLINE
        now[0] = 15.0
        assert not monitor.allow_request()  # new cooldown from t=11
        now[0] = 22.0
        assert monitor.allow_request()

    def test_force_offline_and_reset(self):
        monitor = HealthMonitor()
        monitor.force_offline()
        assert monitor.state is AcceleratorHealthState.OFFLINE
        monitor.reset()
        assert monitor.state is AcceleratorHealthState.ONLINE
        assert monitor.times_closed == 1


class TestFailbackRegister:
    def test_set_register_parses_multi_word_value(self, conn):
        result = conn.execute(
            "SET CURRENT QUERY ACCELERATION = ENABLE WITH FAILBACK"
        )
        assert "ENABLE WITH FAILBACK" in result.message
        assert conn.acceleration is AccelerationMode.ENABLE_WITH_FAILBACK

    def test_unknown_mode_still_rejected(self, conn):
        from repro.errors import UnknownObjectError

        with pytest.raises(UnknownObjectError):
            conn.execute("SET CURRENT QUERY ACCELERATION = ENABLE WITH TURBO")


class TestFailbackRouting:
    def test_plain_enable_fails_fast_when_offline(self, db, conn):
        accelerated_items(db, conn)
        db.health.force_offline()
        with pytest.raises(AcceleratorUnavailableError):
            conn.execute("SELECT COUNT(*), SUM(v) FROM items GROUP BY id > 5")

    def test_failback_reexecutes_on_db2_with_history_reason(self, db, conn):
        accelerated_items(db, conn)
        sql = "SELECT SUM(v) FROM items"
        healthy = conn.execute(sql)
        assert healthy.engine == "ACCELERATOR"
        db.health.force_offline()
        conn.set_acceleration("ENABLE WITH FAILBACK")
        result = conn.execute(sql)
        assert result.engine == "DB2"
        assert result.rows == healthy.rows
        assert db.statement_history[-1].reason.startswith("failback")
        assert db.failbacks == 1

    def test_aot_query_fails_fast_even_with_failback(self, db, conn):
        conn.execute("CREATE TABLE STAGE (X INTEGER) IN ACCELERATOR")
        conn.execute("INSERT INTO STAGE VALUES (1)")
        db.health.force_offline()
        conn.set_acceleration("ENABLE WITH FAILBACK")
        with pytest.raises(AcceleratorUnavailableError):
            conn.execute("SELECT COUNT(*) FROM stage")

    def test_aot_dml_fails_fast_when_offline(self, db, conn):
        conn.execute("CREATE TABLE STAGE (X INTEGER) IN ACCELERATOR")
        db.health.force_offline()
        with pytest.raises(AcceleratorUnavailableError):
            conn.execute("INSERT INTO STAGE VALUES (2)")

    def test_execution_time_crash_triggers_transparent_failback(
        self, db, conn
    ):
        accelerated_items(db, conn)
        conn.set_acceleration("ENABLE WITH FAILBACK")
        healthy = conn.execute("SELECT SUM(v) FROM items").rows
        with db.faults.forced("accelerator", kind="crash"):
            result = conn.execute("SELECT SUM(v) FROM items")
        assert result.engine == "DB2"
        assert result.rows == healthy
        assert db.health.failures_total >= 1
        assert db.statement_history[-1].reason.startswith("failback")

    def test_execution_time_crash_without_failback_raises(self, db, conn):
        accelerated_items(db, conn)
        with db.faults.forced("accelerator", kind="crash"):
            with pytest.raises(AcceleratorUnavailableError):
                conn.execute("SELECT SUM(v) FROM items")

    def test_recovery_closes_circuit_and_reoffloads(self, db, conn):
        accelerated_items(db, conn)
        conn.set_acceleration("ENABLE WITH FAILBACK")
        with db.faults.forced("accelerator", kind="crash"):
            for _ in range(4):
                conn.execute("SELECT SUM(v) FROM items")
        assert db.health.state is AcceleratorHealthState.OFFLINE
        db.health.cooldown_seconds = 0.0  # outage over; allow the probe
        result = conn.execute("SELECT SUM(v) FROM items")
        assert result.engine == "ACCELERATOR"
        assert db.health.state is AcceleratorHealthState.ONLINE


class TestResilientReplication:
    def test_zero_or_negative_batch_size_raises(self, db):
        with pytest.raises(ValueError):
            db.replication.drain(batch_size=0)
        with pytest.raises(ValueError):
            db.replication.drain(batch_size=-5)

    def test_constructor_validates_batch_size(self):
        with pytest.raises(ValueError):
            AcceleratedDatabase(replication_batch_size=0)

    def test_transient_faults_are_retried_to_success(self, db, conn):
        db.auto_replicate = False
        accelerated_items(db, conn, rows=10)
        conn.execute("UPDATE items SET v = v + 100")
        assert db.replication.backlog == 10
        db.faults.add("interconnect", count=2)  # two dropped sends
        applied = db.replication.drain()
        assert applied == 10
        assert db.replication.retries == 2
        assert db.replication.backlog == 0
        conn.set_acceleration("ALL")
        accel = conn.execute("SELECT id, v FROM items ORDER BY id").rows
        conn.set_acceleration("NONE")
        db2 = conn.execute("SELECT id, v FROM items ORDER BY id").rows
        assert accel == db2

    def test_abandoned_batch_keeps_cursor_and_retries_exactly_once(
        self, db, conn
    ):
        db.auto_replicate = False
        accelerated_items(db, conn, rows=10)
        conn.execute("UPDATE items SET v = v + 1")
        cursor_before = db.replication.cursor_lsn
        with db.faults.forced("accelerator", kind="crash"):
            applied = db.replication.drain()
        assert applied == 0
        assert db.replication.cursor_lsn == cursor_before
        assert db.replication.batches_abandoned == 1
        assert db.replication.backlog == 10
        db.health.reset()
        assert db.replication.drain() == 10
        conn.set_acceleration("ALL")
        rows = conn.execute("SELECT id, v FROM items ORDER BY id").rows
        assert rows == [(i, float(i) + 1) for i in range(10)]

    def test_partial_multi_table_batch_never_double_applies(self, db, conn):
        """Table A applies, table B's send fails, the batch is abandoned;
        the later re-drain must skip A's already-applied records even when
        the caller changes the batch size."""
        db.auto_replicate = False
        conn.execute("CREATE TABLE A (X INTEGER NOT NULL PRIMARY KEY)")
        conn.execute("CREATE TABLE B (Y INTEGER NOT NULL PRIMARY KEY)")
        db.add_table_to_accelerator("A")
        db.add_table_to_accelerator("B")
        conn.execute("INSERT INTO A VALUES (1), (2), (3)")
        conn.execute("INSERT INTO B VALUES (10), (20), (30)")
        # One batch covers both tables; A ships first (record order), B's
        # send fails on every attempt (schedule indexes are relative to
        # the sends already made by the initial copies above).
        sent = db.faults.calls.get("interconnect", 0)
        rule = db.faults.add("interconnect", schedule=range(sent + 2, sent + 100))
        assert db.replication.drain() == 3  # A applied, batch abandoned
        assert db.replication.backlog == 6  # cursor did not move
        db.faults.remove(rule)
        db.health.reset()
        assert db.replication.drain(batch_size=2) == 3  # only B's records
        conn.set_acceleration("ALL")
        assert conn.execute("SELECT x FROM a ORDER BY x").rows == [
            (1,), (2,), (3,)
        ]
        assert conn.execute("SELECT y FROM b ORDER BY y").rows == [
            (10,), (20,), (30,)
        ]

    def test_all_skipped_batch_does_not_count_as_applied(self, db, conn):
        db.auto_replicate = False
        conn.execute("CREATE TABLE T (A INTEGER NOT NULL PRIMARY KEY)")
        db.add_table_to_accelerator("T")
        conn.execute("INSERT INTO T VALUES (1), (2)")
        db.remove_table_from_accelerator("T")
        assert db.replication.drain() == 0
        assert db.replication.batches_applied == 0
        assert db.replication.records_skipped == 2

    def test_drain_skipped_while_circuit_open(self, db, conn):
        db.auto_replicate = False
        accelerated_items(db, conn, rows=4)
        conn.execute("UPDATE items SET v = 0")
        db.health.force_offline()
        assert db.replication.drain() == 0
        assert db.replication.drains_skipped_offline == 1
        assert db.replication.backlog == 4

    def test_drain_raise_on_failure_surfaces_the_error(self, db, conn):
        db.auto_replicate = False
        accelerated_items(db, conn, rows=3)
        conn.execute("UPDATE items SET v = 0")
        with db.faults.forced("accelerator", kind="crash"):
            with pytest.raises(AcceleratorCrashError):
                db.replication.drain(raise_on_failure=True)

    def test_backoff_is_exponential_with_jitter_and_bounded(self, db, conn):
        db.auto_replicate = False
        accelerated_items(db, conn, rows=3)
        conn.execute("UPDATE items SET v = 0")
        with db.faults.forced("accelerator", kind="crash"):
            db.replication.drain()
        stats = db.replication.stats()
        assert stats.retries == db.replication.max_retries
        assert stats.simulated_backoff_seconds > 0
        # Jittered sum of base * 2^k is bounded by the un-jittered sum.
        ceiling = sum(
            min(
                db.replication.backoff_cap_seconds,
                db.replication.backoff_base_seconds * 2.0 ** attempt,
            )
            for attempt in range(db.replication.max_retries)
        )
        assert stats.simulated_backoff_seconds <= ceiling


class TestHealthProcedure:
    def test_accel_get_health_reports_state_and_backlog(self, db, conn):
        db.auto_replicate = False
        accelerated_items(db, conn, rows=5)
        conn.execute("UPDATE items SET v = 0")
        result = conn.execute("CALL SYSPROC.ACCEL_GET_HEALTH('')")
        assert "ACCEL_GET_HEALTH: ONLINE" in result.message
        text = "\n".join(row[0] for row in result.rows)
        assert "backlog=5" in text
        assert "state=ONLINE" in text

    def test_accel_get_health_grantable_to_non_admin(self, db, conn):
        """Monitoring is not SYSADM-gated: EXECUTE can be granted like any
        other procedure, and the handler itself performs no admin check."""
        db.create_user("OBSERVER")
        conn.execute(
            "GRANT EXECUTE ON PROCEDURE SYSPROC.ACCEL_GET_HEALTH TO OBSERVER"
        )
        observer = db.connect("OBSERVER")
        result = observer.execute("CALL SYSPROC.ACCEL_GET_HEALTH('')")
        assert "ACCEL_GET_HEALTH" in result.message


class TestOutageEndToEnd:
    def test_failback_session_matches_healthy_run_and_backlog_drains(
        self, db, conn
    ):
        """The acceptance scenario in miniature: outage mid-workload,
        FAILBACK session completes identically, plain ENABLE errors, and
        recovery drains the backlog exactly once."""
        rows = accelerated_items(db, conn, rows=30)
        queries = [
            "SELECT COUNT(*) FROM items",
            "SELECT SUM(v) FROM items",
            "SELECT id, v FROM items ORDER BY id",
        ]
        healthy = [conn.execute(q).rows for q in queries]

        failback = db.connect()
        failback.set_acceleration("ENABLE WITH FAILBACK")
        plain = db.connect()
        with db.faults.forced("accelerator", kind="crash"):
            # Writes keep landing on DB2 during the outage (backlog grows).
            conn.set_acceleration("NONE")
            conn.execute("UPDATE items SET v = v * 2")
            outage_results = [failback.execute(q).rows for q in queries]
            with pytest.raises(AcceleratorUnavailableError):
                plain.execute("SELECT SUM(v) FROM items")
        # During the outage the FAILBACK session saw DB2's (fresher) data.
        assert outage_results[0] == healthy[0]
        assert outage_results[1][0][0] == healthy[1][0][0] * 2
        assert db.health.state is AcceleratorHealthState.OFFLINE
        assert db.replication.backlog == rows

        db.health.cooldown_seconds = 0.0  # outage over
        assert db.replication.drain() == rows
        assert db.health.state is AcceleratorHealthState.ONLINE
        assert db.replication.backlog == 0
        conn.set_acceleration("ALL")
        accel_rows = conn.execute("SELECT id, v FROM items ORDER BY id").rows
        conn.set_acceleration("NONE")
        db2_rows = conn.execute("SELECT id, v FROM items ORDER BY id").rows
        assert accel_rows == db2_rows
        assert accel_rows == [(i, float(i) * 2) for i in range(rows)]

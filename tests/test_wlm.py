"""Workload manager: service classes, admission gates, shedding, WLM SQL.

The deterministic tests drive :class:`AdmissionGate` with injectable
clocks and carefully sequenced threads (every thread is joined, every
negative assertion is made on a quiesced gate), proving:

* grants follow strict (priority, arrival) order with bounded waiting;
* slot accounting never leaks across timeout / cancel / shed paths;
* shed statements fail fast with a *retryable* error distinct from
  ordinary SQL failures;
* MON_WLM and ACCEL_GET_WLM/SET_WLM reflect and mutate live state.
"""

import threading
import time

import pytest

from repro.errors import (
    AdmissionQueueFullError,
    StatementCancelledError,
    StatementShedError,
    StatementTimeoutError,
    UnknownObjectError,
    WorkloadManagementError,
)
from repro.wlm import (
    AdmissionGate,
    BUILTIN_CLASSES,
    ServiceClass,
    ServiceClassRegistry,
    WorkBudget,
    WorkloadManager,
    active_budget,
    current_budget,
)


class FakeClock:
    """Manually advanced monotonic clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class SteppingClock:
    """Clock that advances a fixed step on every read.

    Lets a statement budget expire after a deterministic *number of
    checkpoints* instead of a wall-clock duration.
    """

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def _spin_until(predicate, timeout=5.0, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.001)


INTERACTIVE = BUILTIN_CLASSES[0]
SYSDEFAULT = BUILTIN_CLASSES[1]
ANALYTICS = BUILTIN_CLASSES[2]
BATCH = BUILTIN_CLASSES[3]


class TestServiceClasses:
    def test_builtin_tiers_priority_order(self):
        registry = ServiceClassRegistry()
        assert [c.name for c in registry] == [
            "INTERACTIVE", "SYSDEFAULT", "ANALYTICS", "BATCH",
        ]
        assert registry.get("interactive").priority == 0
        assert registry.get("BATCH").sheddable

    def test_unknown_class_raises(self):
        registry = ServiceClassRegistry()
        with pytest.raises(UnknownObjectError):
            registry.get("NOPE")
        assert not registry.has("NOPE")

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceClass("X", priority=-1, concurrency_slots=1, queue_depth=1)
        with pytest.raises(ValueError):
            ServiceClass("X", priority=0, concurrency_slots=0, queue_depth=1)
        with pytest.raises(ValueError):
            ServiceClass("X", priority=0, concurrency_slots=1, queue_depth=-1)
        with pytest.raises(ValueError):
            ServiceClass(
                "X", priority=0, concurrency_slots=1, queue_depth=1,
                default_timeout_seconds=0,
            )

    def test_define_and_update(self):
        registry = ServiceClassRegistry()
        registry.define(
            ServiceClass("reporting", priority=5, concurrency_slots=2,
                         queue_depth=8)
        )
        assert registry.get("REPORTING").name == "REPORTING"
        updated = registry.update("reporting", priority=4, sheddable=True)
        assert updated.priority == 4 and updated.sheddable
        with pytest.raises(UnknownObjectError):
            registry.update("missing", priority=1)


class TestWorkBudget:
    def test_unbounded_budget_never_times_out(self):
        clock = FakeClock()
        budget = WorkBudget(clock=clock)
        clock.advance(1e9)
        budget.check()
        assert budget.remaining() is None
        assert not budget.expired

    def test_timeout_raises_after_deadline(self):
        clock = FakeClock()
        budget = WorkBudget(2.0, clock=clock)
        budget.check()
        clock.advance(1.99)
        budget.check()
        assert budget.remaining() == pytest.approx(0.01)
        clock.advance(0.01)
        with pytest.raises(StatementTimeoutError):
            budget.check()
        assert budget.expired

    def test_cancel_raises_with_reason(self):
        budget = WorkBudget()
        budget.cancel("killed by test")
        with pytest.raises(StatementCancelledError, match="killed by test"):
            budget.check()
        assert budget.cancelled

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            WorkBudget(0)

    def test_error_hierarchy_and_retryability(self):
        assert issubclass(StatementTimeoutError, WorkloadManagementError)
        assert issubclass(StatementShedError, WorkloadManagementError)
        assert issubclass(AdmissionQueueFullError, StatementShedError)
        assert StatementShedError("x").retryable
        assert AdmissionQueueFullError("x").retryable
        assert not StatementTimeoutError("x").retryable

    def test_active_budget_contextvar(self):
        assert current_budget() is None
        budget = WorkBudget()
        with active_budget(budget):
            assert current_budget() is budget
            with active_budget(None):
                # None is a no-op installer, not a clearer.
                assert current_budget() is budget
        assert current_budget() is None


class TestAdmissionGate:
    def test_immediate_admit_and_release(self):
        gate = AdmissionGate("DB2", slots=2)
        ticket = gate.admit(SYSDEFAULT)
        assert not ticket.bypassed
        assert gate.slots_in_use == 1
        gate.release(ticket)
        assert gate.slots_in_use == 0
        assert gate.admitted == 1 and gate.releases == 1

    def test_release_is_idempotent(self):
        gate = AdmissionGate("DB2", slots=2)
        ticket = gate.admit(SYSDEFAULT)
        gate.release(ticket)
        gate.release(ticket)
        gate.release(ticket)
        assert gate.slots_in_use == 0

    def test_bypass_consumes_no_slot(self):
        gate = AdmissionGate("DB2", slots=1)
        holder = gate.admit(SYSDEFAULT)
        assert gate.slots_in_use == 1
        ticket = gate.admit(INTERACTIVE, bypass=True)
        assert ticket.bypassed and ticket.weight == 0
        assert gate.slots_in_use == 1  # bypass never queued nor consumed
        gate.release(ticket)
        gate.release(holder)
        assert gate.slots_in_use == 0

    def test_weight_clamped_to_gate_size(self):
        gate = AdmissionGate("ACCELERATOR", slots=2)
        ticket = gate.admit(SYSDEFAULT, weight=10)
        assert ticket.weight == 2
        gate.release(ticket)
        assert gate.slots_in_use == 0

    def test_strict_priority_order_on_release(self):
        """A freed slot goes to the highest-priority earliest waiter,
        not to the first arrival."""
        gate = AdmissionGate("DB2", slots=1, max_wait_seconds=30.0)
        holder = gate.admit(SYSDEFAULT)
        order = []
        tickets = []

        def enqueue(service_class, tag):
            ticket = gate.admit(service_class)
            order.append(tag)
            tickets.append(ticket)

        batch = threading.Thread(target=enqueue, args=(BATCH, "batch"))
        batch.start()
        _spin_until(lambda: gate.queue_length == 1, message="batch queued")
        interactive = threading.Thread(
            target=enqueue, args=(INTERACTIVE, "interactive")
        )
        interactive.start()
        _spin_until(lambda: gate.queue_length == 2,
                    message="interactive queued")

        gate.release(holder)
        interactive.join(timeout=5.0)
        # INTERACTIVE (arrived later, higher priority) got the slot;
        # BATCH is still waiting on it.
        assert order == ["interactive"]
        gate.release(tickets[0])
        batch.join(timeout=5.0)
        assert order == ["interactive", "batch"]
        gate.release(tickets[1])
        assert gate.slots_in_use == 0
        assert gate.queue_length == 0

    def test_head_of_line_blocks_lower_priority_on_gate_slots(self):
        """Strict ordering on the shared resource: a later, lighter,
        lower-priority waiter must not jump a heavy head waiter that is
        blocked on gate slots."""
        gate = AdmissionGate("ACCELERATOR", slots=3, max_wait_seconds=30.0)
        holder = gate.admit(SYSDEFAULT, weight=2)  # 1 slot free
        granted = []
        tickets = {}

        def enqueue(service_class, weight, tag):
            tickets[tag] = gate.admit(service_class, weight=weight)
            granted.append(tag)

        heavy = threading.Thread(
            target=enqueue, args=(INTERACTIVE, 2, "heavy")
        )
        heavy.start()
        _spin_until(lambda: gate.queue_length == 1, message="heavy queued")
        light = threading.Thread(target=enqueue, args=(BATCH, 1, "light"))
        light.start()
        _spin_until(lambda: gate.queue_length == 2, message="light queued")
        # One slot is free and "light" would fit — but the head of the
        # queue needs two, so nothing is granted.
        time.sleep(0.1)
        assert granted == []
        gate.release(holder)
        # Three slots free: both fit now and are granted in one pass (the
        # threads wake in scheduler order, so only membership is asserted).
        heavy.join(timeout=5.0)
        light.join(timeout=5.0)
        assert sorted(granted) == ["heavy", "light"]
        gate.release(tickets["heavy"])
        gate.release(tickets["light"])
        assert gate.slots_in_use == 0

    def test_class_cap_blocked_waiter_is_skipped(self):
        """A waiter blocked only by its own class's concurrency cap must
        not block other classes (no cross-class starvation)."""
        narrow = ServiceClass(
            "NARROW", priority=0, concurrency_slots=1, queue_depth=8
        )
        gate = AdmissionGate("DB2", slots=4, max_wait_seconds=30.0)
        first = gate.admit(narrow)
        done = []
        tickets = {}

        def enqueue_second():
            tickets["second"] = gate.admit(narrow)
            done.append("second")

        second = threading.Thread(target=enqueue_second)
        second.start()
        _spin_until(lambda: gate.queue_length == 1, message="second queued")
        # Plenty of gate slots: the BATCH statement (lower priority,
        # behind the capped NARROW waiter) is admitted immediately.
        batch = gate.admit(BATCH)
        assert not batch.bypassed
        assert done == []
        gate.release(first)
        second.join(timeout=5.0)
        assert done == ["second"]
        gate.release(tickets["second"])
        gate.release(batch)
        assert gate.slots_in_use == 0

    def test_queue_depth_exceeded_sheds_fast(self):
        shallow = ServiceClass(
            "SHALLOW", priority=2, concurrency_slots=1, queue_depth=0
        )
        gate = AdmissionGate("DB2", slots=1)
        holder = gate.admit(shallow)
        with pytest.raises(AdmissionQueueFullError) as excinfo:
            gate.admit(shallow)
        assert excinfo.value.retryable
        assert gate.shed == 1
        assert gate.queue_length == 0  # the shed waiter left no residue
        gate.release(holder)
        assert gate.slots_in_use == 0

    def test_bounded_wait_times_out_with_retryable_shed(self):
        gate = AdmissionGate("DB2", slots=1, max_wait_seconds=0.12)
        holder = gate.admit(SYSDEFAULT)
        started = time.monotonic()
        with pytest.raises(StatementShedError) as excinfo:
            gate.admit(SYSDEFAULT)
        assert excinfo.value.retryable
        assert time.monotonic() - started < 5.0
        assert gate.queue_timeouts == 1
        assert gate.queue_length == 0
        gate.release(holder)
        assert gate.slots_in_use == 0

    def test_cancelled_budget_aborts_queued_wait(self):
        gate = AdmissionGate("DB2", slots=1, max_wait_seconds=30.0)
        holder = gate.admit(SYSDEFAULT)
        budget = WorkBudget()
        budget.cancel("user hit ctrl-c")
        with pytest.raises(StatementCancelledError):
            gate.admit(SYSDEFAULT, budget=budget)
        assert gate.queue_length == 0
        gate.release(holder)
        assert gate.slots_in_use == 0

    def test_budget_timeout_aborts_queued_wait(self):
        gate = AdmissionGate("DB2", slots=1, max_wait_seconds=30.0)
        holder = gate.admit(SYSDEFAULT)
        with pytest.raises(StatementTimeoutError):
            gate.admit(SYSDEFAULT, budget=WorkBudget(0.05))
        assert gate.queue_length == 0
        gate.release(holder)
        assert gate.slots_in_use == 0

    def test_resize_grants_waiters(self):
        gate = AdmissionGate("DB2", slots=1, max_wait_seconds=30.0)
        holder = gate.admit(SYSDEFAULT)
        tickets = []

        def enqueue():
            tickets.append(gate.admit(SYSDEFAULT))

        waiter = threading.Thread(target=enqueue)
        waiter.start()
        _spin_until(lambda: gate.queue_length == 1, message="waiter queued")
        gate.resize(2)
        waiter.join(timeout=5.0)
        assert len(tickets) == 1
        gate.release(holder)
        gate.release(tickets[0])
        assert gate.slots_in_use == 0
        with pytest.raises(ValueError):
            gate.resize(0)

    def test_no_slot_leak_after_mixed_outcomes(self):
        """Every admission path — granted, shed, queue-full, budget
        abort — returns the gate to zero slots in use."""
        shallow = ServiceClass(
            "SHALLOW", priority=2, concurrency_slots=1, queue_depth=0
        )
        gate = AdmissionGate("DB2", slots=2, max_wait_seconds=0.08)
        a = gate.admit(SYSDEFAULT)
        b = gate.admit(shallow)
        with pytest.raises(AdmissionQueueFullError):
            gate.admit(shallow)  # queue full
        with pytest.raises(StatementShedError):
            gate.admit(SYSDEFAULT)  # bounded wait expires
        cancelled = WorkBudget()
        cancelled.cancel()
        with pytest.raises(StatementCancelledError):
            gate.admit(SYSDEFAULT, budget=cancelled)
        gate.release(a)
        gate.release(b)
        gate.release(a)  # double release must not go negative
        snapshot = gate.snapshot()
        assert snapshot["slots_in_use"] == 0
        assert snapshot["queued"] == 0
        assert gate.admitted == gate.releases == 2


class _StubHealth:
    def __init__(self, available=True):
        self.available = available


class TestLoadShedding:
    def _manager(self, **kwargs):
        kwargs.setdefault("enabled", True)
        return WorkloadManager(**kwargs)

    def test_non_sheddable_class_never_shed(self):
        manager = self._manager(health=_StubHealth(available=False))
        ticket = manager.admit("ACCELERATOR", "INTERACTIVE")
        assert ticket is not None
        manager.release(ticket)
        assert manager.shedder.shed_circuit_open == 0

    def test_circuit_open_sheds_sheddable_classes_fast(self):
        manager = self._manager(health=_StubHealth(available=False))
        with pytest.raises(StatementShedError, match="circuit is open"):
            manager.admit("ACCELERATOR", "ANALYTICS")
        assert manager.shedder.shed_circuit_open == 1
        assert manager.statements_shed == 1
        # The DB2 gate is unaffected by the accelerator circuit.
        ticket = manager.admit("DB2", "ANALYTICS")
        assert ticket is not None
        manager.release(ticket)

    def test_queue_high_water_sheds(self):
        class _StubGate:
            engine = "DB2"
            slots_total = 2
            queue_length = 4

        manager = self._manager(queue_high_water=2.0)
        reason = manager.shedder.shed_reason(
            _StubGate(), manager.classes.get("BATCH")
        )
        assert reason is not None and "high-water" in reason
        assert manager.shedder.shed_queue_pressure == 1
        # Same pressure, non-sheddable class: allowed to queue.
        assert (
            manager.shedder.shed_reason(
                _StubGate(), manager.classes.get("SYSDEFAULT")
            )
            is None
        )

    def test_cheap_statements_bypass_even_under_shedding_pressure(self):
        manager = self._manager(health=_StubHealth(available=False))
        ticket = manager.admit("ACCELERATOR", "ANALYTICS", estimated_rows=10)
        assert ticket is not None and ticket.bypassed
        manager.release(ticket)


class TestWorkloadManager:
    def test_disabled_is_pass_through(self):
        manager = WorkloadManager(enabled=False)
        assert manager.admit("DB2", "SYSDEFAULT") is None
        assert manager.budget_for("SYSDEFAULT") is None
        manager.release(None)  # no-op

    def test_explicit_timeout_works_while_disabled(self):
        manager = WorkloadManager(enabled=False)
        budget = manager.budget_for("SYSDEFAULT", timeout_override=1.5)
        assert budget is not None and budget.timeout_seconds == 1.5

    def test_enabled_applies_class_default_timeout(self):
        manager = WorkloadManager(enabled=True)
        budget = manager.budget_for("INTERACTIVE")
        assert budget.timeout_seconds == 5.0
        unbounded = manager.budget_for("SYSDEFAULT")
        assert unbounded is not None  # cancellable even without deadline
        assert unbounded.timeout_seconds is None

    def test_cost_aware_weight_and_bypass(self):
        manager = WorkloadManager(enabled=True)
        assert manager.weight_for(None) == 1
        assert manager.weight_for(99_999) == 1
        assert manager.weight_for(100_000) == 2
        assert manager.is_cheap(511)
        assert not manager.is_cheap(512)
        assert not manager.is_cheap(None)
        heavy = manager.admit(
            "ACCELERATOR", "ANALYTICS", estimated_rows=200_000
        )
        assert heavy.weight == 2
        manager.release(heavy)

    def test_record_outcome_counters(self):
        manager = WorkloadManager(enabled=True)
        manager.record_outcome(StatementTimeoutError("t"))
        manager.record_outcome(StatementCancelledError("c"))
        manager.record_outcome(ValueError("other"))
        assert manager.statements_timed_out == 1
        assert manager.statements_cancelled == 1

    def test_resize_unknown_engine(self):
        manager = WorkloadManager(enabled=True)
        with pytest.raises(KeyError):
            manager.resize_gate("GPU", 4)
        manager.resize_gate("db2", 3)
        assert manager.gates["DB2"].slots_total == 3

    def test_snapshot_and_monitor_rows_shape(self):
        manager = WorkloadManager(enabled=True)
        ticket = manager.admit("DB2", "BATCH")
        snapshot = manager.snapshot()
        assert snapshot["enabled"] == 1
        assert snapshot["db2.slots_in_use"] == 1
        assert snapshot["accelerator.slots_in_use"] == 0
        assert "shed_queue_pressure" in snapshot
        rows = manager.monitor_rows()
        assert len(rows) == 2 * len(BUILTIN_CLASSES)
        assert all(len(row) == 15 for row in rows)
        batch_row = next(
            row for row in rows if row[0] == "DB2" and row[1] == "BATCH"
        )
        assert batch_row[6] == 1  # RUNNING
        manager.release(ticket)


class TestWlmSql:
    """End-to-end: service-class registers, procedures, MON_WLM."""

    def _system(self, **kwargs):
        from repro.federation.system import AcceleratedDatabase

        kwargs.setdefault("wlm_enabled", True)
        db = AcceleratedDatabase(**kwargs)
        conn = db.connect("SYSADM")
        conn.execute("CREATE TABLE T (A INTEGER, B VARCHAR(8))")
        conn.execute(
            "INSERT INTO T VALUES " +
            ", ".join(f"({i}, 'v{i % 7}')" for i in range(64))
        )
        return db, conn

    def test_set_current_service_class_register(self):
        db, conn = self._system()
        conn.execute("SET CURRENT SERVICE CLASS = ANALYTICS")
        assert conn.service_class == "ANALYTICS"
        from repro.errors import SqlError

        with pytest.raises((SqlError, UnknownObjectError)):
            conn.execute("SET CURRENT SERVICE CLASS = NOPE")

    def test_set_current_statement_timeout_register(self):
        db, conn = self._system()
        conn.execute("SET CURRENT STATEMENT TIMEOUT = '2.5'")
        assert conn.statement_timeout == 2.5
        conn.execute("SET CURRENT STATEMENT TIMEOUT = NONE")
        assert conn.statement_timeout is None

    def test_statements_are_admitted_and_counted(self):
        db, conn = self._system()
        db.wlm.cheap_rows = 0  # force real admission for the tiny table
        conn.execute("SELECT COUNT(*) FROM T")
        gate_counts = {
            engine: gate.admitted for engine, gate in db.wlm.gates.items()
        }
        assert sum(gate_counts.values()) >= 1
        for gate in db.wlm.gates.values():
            assert gate.slots_in_use == 0  # released after the statement

    def test_cheap_statement_bypasses_queue(self):
        db, conn = self._system()
        conn.execute("SELECT * FROM T WHERE A = 3")
        assert sum(g.bypassed for g in db.wlm.gates.values()) >= 1

    def test_mon_wlm_reflects_live_state(self):
        db, conn = self._system()
        db.wlm.cheap_rows = 0
        conn.execute("SELECT COUNT(*) FROM T")
        result = conn.execute(
            "SELECT ENGINE, SERVICE_CLASS, ADMITTED, RUNNING "
            "FROM SYSACCEL.MON_WLM WHERE ADMITTED > 0"
        )
        assert result.rows, "the admitted statement must appear in MON_WLM"
        for engine, service_class, admitted, running in result.rows:
            assert service_class == "SYSDEFAULT"
            assert admitted >= 1
            assert running == 0

    def test_mon_wlm_readable_with_wlm_disabled(self):
        db, conn = self._system(wlm_enabled=False)
        result = conn.execute("SELECT COUNT(*) FROM SYSACCEL.MON_WLM")
        assert result.rows[0][0] == 8  # 2 engines x 4 built-in classes

    def test_accel_set_wlm_round_trip(self):
        db, conn = self._system(wlm_enabled=False)
        conn.execute("CALL SYSPROC.ACCEL_SET_WLM('enabled=on')")
        assert db.wlm.enabled
        conn.execute(
            "CALL SYSPROC.ACCEL_SET_WLM('engine=ACCELERATOR, slots=9')"
        )
        assert db.wlm.gates["ACCELERATOR"].slots_total == 9
        conn.execute(
            "CALL SYSPROC.ACCEL_SET_WLM("
            "'class=REPORTING, priority=5, class_slots=3, queue_depth=4, "
            "timeout=30, sheddable=on')"
        )
        reporting = db.wlm.classes.get("REPORTING")
        assert reporting.priority == 5
        assert reporting.concurrency_slots == 3
        assert reporting.queue_depth == 4
        assert reporting.default_timeout_seconds == 30.0
        assert reporting.sheddable
        conn.execute("CALL SYSPROC.ACCEL_SET_WLM('class=REPORTING, timeout=none')")
        assert db.wlm.classes.get("REPORTING").default_timeout_seconds is None

    def test_accel_set_wlm_rejects_bad_input(self):
        from repro.errors import ProcedureError

        db, conn = self._system()
        for params in (
            "",                        # nothing to change
            "enabled=maybe",           # bad flag
            "engine=GPU, slots=2",     # unknown engine
            "engine=DB2",              # missing slots
            "class=X",                 # no class changes
            "max_wait=0",              # non-positive
        ):
            with pytest.raises(ProcedureError):
                conn.execute(f"CALL SYSPROC.ACCEL_SET_WLM('{params}')")

    def test_accel_set_wlm_requires_admin(self):
        from repro.errors import AuthorizationError

        db, conn = self._system()
        db.create_user("APP")
        app = db.connect("APP")
        with pytest.raises(AuthorizationError):
            app.execute("CALL SYSPROC.ACCEL_SET_WLM('enabled=off')")

    def test_accel_get_wlm_reports_queue_state(self):
        db, conn = self._system()
        db.wlm.cheap_rows = 0
        conn.execute("SELECT COUNT(*) FROM T")
        result = conn.execute("CALL SYSPROC.ACCEL_GET_WLM('')")
        text = "\n".join(str(row[0]) for row in result.rows)
        assert "enabled=on" in text
        assert "DB2:" in text and "ACCELERATOR:" in text
        assert "admitted=" in text

    def test_wlm_metrics_source_registered(self):
        db, conn = self._system()
        collected = db.metrics.collect()
        assert collected["wlm.enabled"] == 1
        assert "wlm.db2.slots_total" in collected
        assert "wlm.statements_shed" in collected

    def test_statement_attribute_overrides_session_class(self):
        db, conn = self._system()
        db.wlm.cheap_rows = 0
        conn.execute("SELECT COUNT(*) FROM T", service_class="BATCH")
        stats = {
            name: stats
            for gate in db.wlm.gates.values()
            for name, stats in gate.class_stats().items()
        }
        assert "BATCH" in stats and stats["BATCH"].admitted >= 1

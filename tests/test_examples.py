"""Every shipped example must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 4


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=lambda path: path.name
)
def test_example_runs(example):
    completed = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples should print their story"


def test_quickstart_shows_routing():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "ACCELERATOR" in completed.stdout
    assert "DB2" in completed.stdout
    assert "point lookup" in completed.stdout

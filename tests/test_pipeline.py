"""Staged pipelines: legacy vs AOT mode, metrics, repeatability."""

import pytest

from repro import AcceleratedDatabase, Pipeline
from repro.errors import ReproError
from repro.workloads import create_churn_table


@pytest.fixture
def db():
    return AcceleratedDatabase(slice_count=2, chunk_rows=256)


@pytest.fixture
def conn(db):
    connection = db.connect()
    create_churn_table(connection, count=600, accelerate=True)
    return connection


@pytest.fixture
def pipeline():
    return (
        Pipeline("churn")
        .add_transform(
            "clean",
            "CHURN_CLEAN",
            "SELECT cust_id, tenure_months, monthly_charges, "
            "COALESCE(total_charges, monthly_charges * tenure_months) "
            "AS total_charges, support_calls, contract_months, churned "
            "FROM churn",
        )
        .add_transform(
            "features",
            "CHURN_FEATURES",
            "SELECT cust_id, tenure_months, monthly_charges, total_charges, "
            "support_calls, contract_months, "
            "total_charges / tenure_months AS avg_charge, churned "
            "FROM churn_clean",
        )
        .add_procedure(
            "cluster",
            "CALL INZA.KMEANS('intable=CHURN_FEATURES, "
            "outtable=CHURN_SEGMENTS, id=CUST_ID, k=3, model=CHURN_KM')",
            ("CHURN_SEGMENTS",),
        )
    )


class TestExecution:
    def test_aot_mode_produces_results(self, db, conn, pipeline):
        result = pipeline.run(conn, mode="aot")
        assert [s.name for s in result.stages] == ["clean", "features", "cluster"]
        assert conn.execute("SELECT COUNT(*) FROM churn_segments").scalar() == 600
        assert db.catalog.table("CHURN_CLEAN").is_aot

    def test_legacy_mode_produces_same_results(self, db, conn, pipeline):
        aot = pipeline.run(conn, mode="aot")
        aot_counts = conn.execute(
            "SELECT cluster_id, COUNT(*) FROM churn_segments "
            "GROUP BY cluster_id ORDER BY cluster_id"
        ).rows
        legacy = pipeline.run(conn, mode="legacy")
        legacy_counts = conn.execute(
            "SELECT cluster_id, COUNT(*) FROM churn_segments "
            "GROUP BY cluster_id ORDER BY cluster_id"
        ).rows
        assert aot_counts == legacy_counts
        assert not db.catalog.table("CHURN_CLEAN").is_aot

    def test_invalid_mode_rejected(self, conn, pipeline):
        with pytest.raises(ReproError):
            pipeline.run(conn, mode="hybrid")

    def test_rerun_is_idempotent(self, conn, pipeline):
        pipeline.run(conn, mode="aot")
        pipeline.run(conn, mode="aot")
        assert conn.execute("SELECT COUNT(*) FROM churn_segments").scalar() == 600

    def test_cleanup_drops_stage_tables(self, db, conn, pipeline):
        pipeline.run(conn, mode="aot")
        pipeline.cleanup(conn)
        assert not db.catalog.has_table("CHURN_CLEAN")
        assert not db.catalog.has_table("CHURN_SEGMENTS")


class TestMovement:
    """The paper's core claim: AOTs eliminate per-stage data movement."""

    def test_aot_moves_orders_of_magnitude_less(self, conn, pipeline):
        aot = pipeline.run(conn, mode="aot")
        legacy = pipeline.run(conn, mode="legacy")
        assert legacy.total_movement.total_bytes > 10 * max(
            1, aot.total_movement.total_bytes
        )

    def test_aot_transform_stages_ship_only_statements(self, conn, pipeline):
        result = pipeline.run(conn, mode="aot")
        for stage in result.stages[:2]:
            assert stage.movement.bytes_from_accelerator == 0
            assert stage.movement.bytes_to_accelerator <= 512

    def test_legacy_transform_stages_round_trip(self, conn, pipeline):
        result = pipeline.run(conn, mode="legacy")
        for stage in result.stages[:2]:
            # Materialised in DB2, then re-replicated outward.
            assert stage.movement.bytes_to_accelerator > 1000

    def test_stage_engines_reported(self, conn, pipeline):
        aot = pipeline.run(conn, mode="aot")
        assert all(s.engine == "ACCELERATOR" for s in aot.stages)
        legacy = pipeline.run(conn, mode="legacy")
        assert legacy.stages[0].engine == "DB2"

    def test_report_renders(self, conn, pipeline):
        result = pipeline.run(conn, mode="aot")
        text = result.report()
        assert "churn" in text
        assert "clean" in text

    def test_total_elapsed_positive(self, conn, pipeline):
        result = pipeline.run(conn, mode="aot")
        assert result.total_elapsed > 0

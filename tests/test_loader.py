"""IDAA Loader: sources, targets, dual load, direct AOT ingestion."""

import pytest

from repro import AcceleratedDatabase, CsvSource, IdaaLoader, IterableSource, JsonLinesSource
from repro.errors import LoaderError
from repro.workloads import SOCIAL_COLUMNS, generate_posts, write_posts_jsonl
from repro.workloads.socialmedia import SOCIAL_DDL


@pytest.fixture
def db():
    return AcceleratedDatabase(slice_count=2, chunk_rows=128)


@pytest.fixture
def conn(db):
    return db.connect()


@pytest.fixture
def loader(db):
    return IdaaLoader(db, batch_size=100)


class TestSources:
    def test_csv_source(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("ID,NAME,SCORE\n1,alice,2.5\n2,bob,\n")
        source = CsvSource(path)
        assert source.column_names() == ["ID", "NAME", "SCORE"]
        rows = list(source.rows())
        assert rows == [(1, "alice", 2.5), (2, "bob", None)]

    def test_csv_headerless_requires_columns(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1,2\n")
        with pytest.raises(LoaderError):
            CsvSource(path, has_header=False)
        source = CsvSource(path, has_header=False, columns=["A", "B"])
        assert list(source.rows()) == [(1, 2)]

    def test_csv_width_mismatch(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("A,B\n1,2,3\n")
        with pytest.raises(LoaderError):
            list(CsvSource(path).rows())

    def test_csv_schema_inference(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("ID,NAME,SCORE\n1,alice,2.5\n")
        schema = CsvSource(path).infer_schema()
        assert schema.column("ID").sql_type.render() == "INTEGER"
        assert schema.column("SCORE").sql_type.render() == "DOUBLE"
        assert schema.column("NAME").sql_type.render().startswith("VARCHAR")

    def test_jsonl_source(self, tmp_path):
        path = write_posts_jsonl(tmp_path / "posts.jsonl", count=5)
        source = JsonLinesSource(path, columns=SOCIAL_COLUMNS)
        rows = list(source.rows())
        assert len(rows) == 5
        assert rows[0][0] == 1

    def test_jsonl_invalid_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"a": 1}\nnot json\n')
        with pytest.raises(LoaderError):
            list(JsonLinesSource(path).rows())

    def test_iterable_generator_consumed_once(self):
        source = IterableSource((row for row in [(1,)]), ["A"])
        assert list(source.rows()) == [(1,)]
        with pytest.raises(LoaderError):
            list(source.rows())

    def test_iterable_list_reusable(self):
        source = IterableSource([(1,), (2,)], ["A"])
        assert len(list(source.rows()))  == 2
        assert len(list(source.rows())) == 2


class TestLoadTargets:
    def test_load_into_db2_only_table(self, db, conn, loader):
        conn.execute("CREATE TABLE T (ID INTEGER, V DOUBLE)")
        report = loader.load(
            IterableSource([(i, float(i)) for i in range(250)], ["ID", "V"]),
            "T",
            conn,
        )
        assert report.rows == 250
        assert report.batches == 3
        assert report.location == "DB2_ONLY"
        assert report.movement.total_bytes == 0  # nothing crossed
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 250

    def test_dual_load_into_accelerated_table(self, db, conn, loader):
        conn.execute("CREATE TABLE T (ID INTEGER, V DOUBLE)")
        db.add_table_to_accelerator("T")
        report = loader.load(
            IterableSource([(i, float(i)) for i in range(100)], ["ID", "V"]),
            "T",
            conn,
        )
        assert report.location == "ACCELERATED"
        assert report.movement.bytes_to_accelerator > 0
        # Both sides consistent, without replication involvement.
        assert db.replication.backlog == 0
        conn.set_acceleration("NONE")
        db2_count = conn.execute("SELECT COUNT(*) FROM t").scalar()
        conn.set_acceleration("ALL")
        acc_count = conn.execute("SELECT COUNT(*) FROM t").scalar()
        assert db2_count == acc_count == 100

    def test_direct_aot_load_bypasses_db2(self, db, conn, loader):
        conn.execute(SOCIAL_DDL)
        report = loader.load(
            IterableSource(list(generate_posts(300)), SOCIAL_COLUMNS),
            "SOCIAL_POSTS",
            conn,
        )
        assert report.location == "ACCELERATOR_ONLY"
        assert report.db2_rows_written == 0  # the paper's bypass
        assert report.movement.bytes_to_accelerator > 0
        assert conn.execute(
            "SELECT COUNT(*) FROM social_posts"
        ).scalar() == 300

    def test_create_from_inferred_schema(self, db, conn, loader, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("ID,LABEL\n1,a\n2,b\n")
        report = loader.load(
            CsvSource(path), "NEWTAB", conn, create=True, in_accelerator=True
        )
        assert report.rows == 2
        assert db.catalog.table("NEWTAB").is_aot

    def test_create_rejects_existing_table(self, db, conn, loader):
        conn.execute("CREATE TABLE T (ID INTEGER)")
        with pytest.raises(LoaderError):
            loader.load(
                IterableSource([(1,)], ["ID"]), "T", conn, create=True
            )

    def test_column_mismatch_rejected(self, db, conn, loader):
        conn.execute("CREATE TABLE T (ID INTEGER, V DOUBLE)")
        with pytest.raises(LoaderError):
            loader.load(IterableSource([(1,)], ["ID"]), "T", conn)

    def test_coercion_errors_surface(self, db, conn, loader):
        from repro.errors import TypeError_

        conn.execute("CREATE TABLE T (ID INTEGER)")
        with pytest.raises(TypeError_):
            loader.load(IterableSource([("xyz",)], ["ID"]), "T", conn)

    def test_social_enrichment_join(self, db, conn, loader):
        """The paper's use case: social posts (AOT) joined with an
        accelerated enterprise table."""
        conn.execute(SOCIAL_DDL)
        loader.load(
            IterableSource(list(generate_posts(200)), SOCIAL_COLUMNS),
            "SOCIAL_POSTS",
            conn,
        )
        conn.execute("CREATE TABLE REGIONS (R VARCHAR(4), NAME VARCHAR(16))")
        conn.execute(
            "INSERT INTO REGIONS VALUES ('EU', 'Europe'), ('US', 'States'), "
            "('AP', 'Asia'), ('LA', 'LatAm')"
        )
        db.add_table_to_accelerator("REGIONS")
        result = conn.execute(
            "SELECT r.name, COUNT(*) AS n, AVG(p.sentiment) FROM "
            "social_posts p JOIN regions r ON p.region = r.r "
            "GROUP BY r.name ORDER BY n DESC"
        )
        assert result.engine == "ACCELERATOR"
        assert sum(row[1] for row in result.rows) == 200


class TestLoadReport:
    def test_throughput_metric(self, db, conn, loader):
        conn.execute("CREATE TABLE T (ID INTEGER)")
        report = loader.load(
            IterableSource([(i,) for i in range(50)], ["ID"]), "T", conn
        )
        assert report.rows_per_second > 0

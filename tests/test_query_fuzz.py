"""Randomised query fuzzing: both engines must always agree.

A bounded random SELECT generator (hypothesis-driven) produces queries
over a fixed two-table schema; every generated query is executed on the
DB2 row engine and the accelerator and the results compared. This is the
strongest transparency check in the suite: any divergence in NULL
semantics, join behaviour, aggregation, or ordering shows up here.
"""

from __future__ import annotations

import math
import os

import pytest
from hypothesis import given, seed, settings, strategies as st

from repro.accelerator import AcceleratorEngine
from repro.shard import AcceleratorPool
from repro.catalog import Catalog, Column, TableLocation, TableSchema
from repro.db2 import Db2Engine
from repro.sql import parse_statement
from repro.sql.types import DOUBLE, INTEGER, VarcharType

# ---------------------------------------------------------------------------
# Fixed engines + data (module scope: built once)
# ---------------------------------------------------------------------------


def _build_engines():
    catalog = Catalog()
    db2 = Db2Engine(catalog)
    accelerator = AcceleratorEngine(catalog, slice_count=2, chunk_rows=16)
    pool = AcceleratorPool(catalog, shards=3, slice_count=2, chunk_rows=16)
    main_schema = TableSchema(
        [
            Column("ID", INTEGER, nullable=False),
            Column("K", INTEGER),
            Column("V", DOUBLE),
            Column("S", VarcharType(4)),
        ]
    )
    dim_schema = TableSchema(
        [Column("K", INTEGER, nullable=False), Column("NAME", VarcharType(8))]
    )
    import random

    rng = random.Random(123)
    main_rows = []
    for i in range(60):
        main_rows.append(
            (
                i,
                None if i % 11 == 0 else rng.randint(0, 6),
                None if i % 7 == 0 else round(rng.uniform(-50, 50), 2),
                None if i % 13 == 0 else rng.choice(["aa", "bb", "cc"]),
            )
        )
    dim_rows = [(k, f"name{k}") for k in range(0, 5)]
    for name, schema, rows in (
        ("MAIN", main_schema, main_rows),
        ("DIM", dim_schema, dim_rows),
    ):
        descriptor = catalog.create_table(
            name, schema, location=TableLocation.ACCELERATED
        )
        db2.create_storage(descriptor)
        accelerator.create_storage(descriptor)
        coerced = [schema.coerce_row(r) for r in rows]
        txn = db2.txn_manager.begin()
        db2.insert_rows(txn, name, coerced, already_coerced=True)
        db2.commit(txn)
        accelerator.bulk_insert(name, coerced)
        pool.create_storage(descriptor)
        pool.bulk_insert(name, coerced)
    return db2, accelerator, pool


_DB2, _ACCEL, _POOL = _build_engines()

# Differential-testing knobs: CI's differential job sweeps several seeds
# at elevated volume (FUZZ_SEED=n FUZZ_EXAMPLES=m); local runs default to
# hypothesis' own randomness at a quick 150 examples.
FUZZ_EXAMPLES = int(os.environ.get("FUZZ_EXAMPLES", "150"))
_FUZZ_SEED = os.environ.get("FUZZ_SEED")


def _maybe_seed(fn):
    return seed(int(_FUZZ_SEED))(fn) if _FUZZ_SEED else fn

# ---------------------------------------------------------------------------
# Random query generator
# ---------------------------------------------------------------------------

_NUMERIC = ["ID", "K", "V"]
_PREDICATES = st.sampled_from(
    [
        None,
        "V > 0",
        "V IS NULL",
        "V IS NOT NULL",
        "K IN (1, 2, 3)",
        "K NOT IN (0)",
        "S = 'aa'",
        "S LIKE 'a%'",
        "V BETWEEN -10 AND 25",
        "K = 2 OR V < -20",
        "NOT (K = 1)",
        "COALESCE(K, -1) >= 0",
        "ABS(V) > 10",
        "ID % 3 = 1",
        "V > 0 AND S IS NOT NULL",
    ]
)
_AGGREGATES = st.sampled_from(
    [
        "COUNT(*)",
        "COUNT(V)",
        "COUNT(DISTINCT K)",
        "SUM(V)",
        "AVG(V)",
        "MIN(V)",
        "MAX(ID)",
        "STDDEV(V)",
        "SUM(V * 2 + 1)",
    ]
)
_GROUP_KEYS = st.sampled_from(["K", "S", "K % 2", "ID % 4"])
_PROJECTIONS = st.sampled_from(
    [
        "ID, K, V, S",
        "ID, V * 2",
        "ID, COALESCE(S, '?')",
        "ID, CASE WHEN V > 0 THEN 'pos' ELSE 'neg' END",
        "*",
    ]
)


@st.composite
def random_query(draw) -> str:
    shape = draw(
        st.sampled_from(
            ["plain", "agg", "group", "join", "using", "derived"]
        )
    )
    where = draw(_PREDICATES)
    where_sql = f" WHERE {where}" if where else ""
    if shape == "using":
        join_type = draw(st.sampled_from(["JOIN", "LEFT JOIN"]))
        using_where = draw(
            st.sampled_from(
                ["", " WHERE m.V > 0", " WHERE d.NAME LIKE 'name%'"]
            )
        )
        return (
            f"SELECT m.ID, d.NAME FROM main m {join_type} dim d USING (k)"
            f"{using_where} ORDER BY m.ID LIMIT 15"
        )
    if shape == "derived":
        outer = draw(
            st.sampled_from(
                [
                    "sub.V > 0",
                    "sub.V IS NULL",
                    "sub.ID % 2 = 0",
                    "sub.W > 10",
                ]
            )
        )
        return (
            "SELECT sub.ID, sub.W FROM (SELECT ID, V, V * 2 AS W "
            f"FROM main{where_sql}) AS sub WHERE {outer} ORDER BY sub.ID"
        )
    if shape == "plain":
        projection = draw(_PROJECTIONS)
        order = " ORDER BY ID" if projection != "*" else " ORDER BY 1"
        limit = draw(st.sampled_from(["", " LIMIT 7", " LIMIT 3 OFFSET 2"]))
        distinct = ""
        if projection not in ("*",) and draw(st.booleans()):
            distinct = "DISTINCT "
            order = ""
        return f"SELECT {distinct}{projection} FROM main{where_sql}{order}{limit}"
    if shape == "agg":
        aggregate = draw(_AGGREGATES)
        return f"SELECT {aggregate} FROM main{where_sql}"
    if shape == "group":
        key = draw(_GROUP_KEYS)
        aggregate = draw(_AGGREGATES)
        having = draw(st.sampled_from(["", " HAVING COUNT(*) > 2"]))
        return (
            f"SELECT {key} AS G, {aggregate} AS A FROM main{where_sql} "
            f"GROUP BY {key}{having} ORDER BY 1"
        )
    join_type = draw(st.sampled_from(["JOIN", "LEFT JOIN"]))
    aggregate = draw(
        st.sampled_from(
            [
                "COUNT(*)",
                "COUNT(m.V)",
                "SUM(m.V)",
                "AVG(m.V)",
                "MIN(m.ID)",
                "MAX(m.V)",
            ]
        )
    )
    join_where = draw(
        st.sampled_from(
            [
                "",
                " WHERE m.V > 0",
                " WHERE m.V IS NOT NULL",
                " WHERE m.S = 'aa'",
                " WHERE m.ID % 2 = 0",
            ]
        )
    )
    return (
        f"SELECT d.name, {aggregate} "
        f"FROM main m {join_type} dim d ON m.k = d.k"
        f"{join_where} GROUP BY d.name ORDER BY 1"
    )


def _normalise(value):
    if value is None:
        return None
    if isinstance(value, bool):
        return bool(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return round(value, 6)
    if hasattr(value, "item"):
        return _normalise(value.item())
    return value


def _run_db2(sql):
    txn = _DB2.txn_manager.begin()
    try:
        __, rows = _DB2.execute_select(txn, parse_statement(sql))
    finally:
        _DB2.commit(txn)
    return rows


@_maybe_seed
@settings(max_examples=FUZZ_EXAMPLES, deadline=None)
@given(sql=random_query())
def test_random_queries_agree(sql):
    stmt = parse_statement(sql)
    db2_rows = [
        tuple(_normalise(v) for v in row) for row in _run_db2(sql)
    ]
    __, accel_raw = _ACCEL.execute_select(parse_statement(sql))
    accel_rows = [tuple(_normalise(v) for v in row) for row in accel_raw]
    # Scale-out transparency: a 3-shard pool over the same data must be
    # byte-identical (raw, pre-normalisation) to the single instance.
    __, pool_raw = _POOL.execute_select(parse_statement(sql))
    assert pool_raw == accel_raw, sql
    if getattr(stmt, "order_by", None):
        assert accel_rows == db2_rows, sql
    else:
        assert sorted(map(repr, accel_rows)) == sorted(
            map(repr, db2_rows)
        ), sql


@_maybe_seed
@settings(max_examples=max(20, FUZZ_EXAMPLES // 4), deadline=None)
@given(
    sql=random_query(),
    limit=st.integers(min_value=0, max_value=10),
)
def test_limit_is_prefix_of_full_result(sql, limit):
    """LIMIT n must be a prefix of the unlimited ordered result."""
    if " ORDER BY" not in sql or " LIMIT" in sql:
        return
    full = _run_db2(sql)
    limited = _run_db2(sql + f" LIMIT {limit}")
    assert limited == full[:limit], sql


@_maybe_seed
@settings(max_examples=max(25, FUZZ_EXAMPLES // 3), deadline=None)
@given(sql=random_query())
def test_rewrites_preserve_results(sql):
    """The logical rewriter (fold/pushdown/prune) never changes answers.

    Each generated query runs on both engines twice — once from the raw
    bound plan, once from the rewritten plan — and all four row sets must
    agree.
    """
    from repro.sql.logical import plan_statement

    stmt = parse_statement(sql)
    plan_off = plan_statement(stmt, rewrite=False)
    plan_on = plan_statement(stmt, rewrite=True)

    def run(plan):
        txn = _DB2.txn_manager.begin()
        try:
            __, db2_rows = _DB2.execute_select(txn, stmt, plan=plan)
        finally:
            _DB2.commit(txn)
        __, accel_rows = _ACCEL.execute_select(stmt, plan=plan)
        norm = lambda rows: [  # noqa: E731
            tuple(_normalise(v) for v in row) for row in rows
        ]
        return norm(db2_rows), norm(accel_rows)

    db2_off, accel_off = run(plan_off)
    db2_on, accel_on = run(plan_on)
    if getattr(stmt, "order_by", None):
        assert db2_on == db2_off == accel_on == accel_off, sql
    else:
        expected = sorted(map(repr, db2_off))
        for rows in (db2_on, accel_off, accel_on):
            assert sorted(map(repr, rows)) == expected, sql


# ---------------------------------------------------------------------------
# Join-reorder differential: re-associated plans must be byte-identical
# ---------------------------------------------------------------------------

_REORDER_SIZES = {"MAIN": 60, "DIM": 5}


def _reorder_table_rows(name):
    return _REORDER_SIZES.get(name.upper())


@st.composite
def random_join_chain(draw) -> str:
    """Three-leaf INNER/CROSS join chains (the re-association region)."""
    second = draw(
        st.sampled_from(
            [
                "JOIN dim b ON a.K = b.K",
                "CROSS JOIN dim b",
            ]
        )
    )
    third = draw(
        st.sampled_from(
            [
                "JOIN main c ON b.K = c.K",
                "JOIN dim c ON a.K = c.K",
                "JOIN main c ON a.ID = c.ID",
                "CROSS JOIN dim c",
            ]
        )
    )
    where = draw(
        st.sampled_from(
            ["", " WHERE a.V > 0", " WHERE a.ID % 3 = 1", " WHERE b.K IN (1, 2)"]
        )
    )
    projection = draw(
        st.sampled_from(["a.ID, b.K, c.K", "a.ID, a.V", "COUNT(*), SUM(a.V)"])
    )
    return f"SELECT {projection} FROM main a {second} {third}{where}"


@_maybe_seed
@settings(max_examples=max(25, FUZZ_EXAMPLES // 3), deadline=None)
@given(sql=random_join_chain())
def test_join_reorder_is_byte_identical(sql):
    """Cost-based re-association must not change row ORDER, not just the
    row set: the federation promises transparent offload, and E14 pins
    byte-identity between plans. Runs each chain with and without the
    reorder stage on both engines and compares exact row sequences."""
    from repro.sql.logical import plan_statement

    stmt = parse_statement(sql)
    plan_plain = plan_statement(stmt, rewrite=True)
    plan_reordered = plan_statement(
        stmt, rewrite=True, table_rows=_reorder_table_rows
    )

    def run(plan):
        txn = _DB2.txn_manager.begin()
        try:
            __, db2_rows = _DB2.execute_select(txn, stmt, plan=plan)
        finally:
            _DB2.commit(txn)
        __, accel_rows = _ACCEL.execute_select(stmt, plan=plan)
        norm = lambda rows: [  # noqa: E731
            tuple(_normalise(v) for v in row) for row in rows
        ]
        return norm(db2_rows), norm(accel_rows)

    db2_plain, accel_plain = run(plan_plain)
    db2_reordered, accel_reordered = run(plan_reordered)
    assert db2_reordered == db2_plain, sql
    assert accel_reordered == accel_plain, sql
    assert accel_reordered == db2_reordered, sql

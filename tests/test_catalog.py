"""Catalog, schemas, and privilege management."""

import pytest

from repro.catalog import (
    Catalog,
    Column,
    Privilege,
    PrivilegeManager,
    TableLocation,
    TableSchema,
)
from repro.errors import (
    AuthorizationError,
    DuplicateObjectError,
    TypeError_,
    UnknownObjectError,
)
from repro.sql.types import DOUBLE, INTEGER, VarcharType


@pytest.fixture
def schema():
    return TableSchema(
        [
            Column("ID", INTEGER, nullable=False, primary_key=True),
            Column("V", DOUBLE),
        ]
    )


class TestTableSchema:
    def test_positions_and_lookup(self, schema):
        assert schema.position_of("V") == 1
        assert schema.column("ID").primary_key
        assert schema.column_names == ["ID", "V"]
        assert schema.primary_key_columns == ["ID"]

    def test_unknown_column(self, schema):
        with pytest.raises(UnknownObjectError):
            schema.position_of("NOPE")

    def test_duplicate_column_rejected(self):
        with pytest.raises(DuplicateObjectError):
            TableSchema([Column("A", INTEGER), Column("A", DOUBLE)])

    def test_empty_schema_rejected(self):
        with pytest.raises(TypeError_):
            TableSchema([])

    def test_coerce_row(self, schema):
        assert schema.coerce_row(("3", "1.5")) == (3, 1.5)

    def test_coerce_row_width_mismatch(self, schema):
        with pytest.raises(TypeError_):
            schema.coerce_row((1,))

    def test_not_null_enforced(self, schema):
        with pytest.raises(TypeError_):
            schema.coerce_row((None, 1.0))

    def test_coerce_partial_fills_nulls(self, schema):
        assert schema.coerce_partial(["ID"], [7]) == (7, None)

    def test_coerce_partial_unknown_column(self, schema):
        with pytest.raises(UnknownObjectError):
            schema.coerce_partial(["NOPE"], [1])

    def test_row_byte_size(self, schema):
        wide = TableSchema([Column("S", VarcharType(20))])
        assert wide.row_byte_size(("abc",)) == 1 + 4 + 3
        assert wide.row_byte_size((None,)) == 1

    def test_render(self, schema):
        assert "ID INTEGER NOT NULL" in schema.render()


class TestCatalog:
    def test_create_and_lookup(self, schema):
        catalog = Catalog()
        descriptor = catalog.create_table("t1", schema, owner="alice")
        assert catalog.table("T1") is descriptor
        assert descriptor.owner == "ALICE"
        assert catalog.has_table("t1")

    def test_duplicate_table(self, schema):
        catalog = Catalog()
        catalog.create_table("t1", schema)
        with pytest.raises(DuplicateObjectError):
            catalog.create_table("T1", schema)

    def test_drop_table_removes_grants(self, schema):
        catalog = Catalog()
        catalog.create_table("t1", schema)
        catalog.create_user("BOB")
        catalog.privileges.grant("BOB", [Privilege.SELECT], "TABLE", "T1")
        catalog.drop_table("t1")
        assert not catalog.privileges.has_privilege(
            "BOB", Privilege.SELECT, "TABLE", "T1"
        )
        with pytest.raises(UnknownObjectError):
            catalog.table("t1")

    def test_location_predicates(self, schema):
        catalog = Catalog()
        aot = catalog.create_table(
            "a", schema, location=TableLocation.ACCELERATOR_ONLY
        )
        copy = TableSchema([Column("X", INTEGER)])
        accelerated = catalog.create_table(
            "b", copy, location=TableLocation.ACCELERATED
        )
        plain = catalog.create_table("c", copy)
        assert aot.is_aot and aot.is_accelerated and not aot.db2_resident
        assert accelerated.is_accelerated and accelerated.db2_resident
        assert not plain.is_accelerated and plain.db2_resident

    def test_sysadm_preexists(self):
        catalog = Catalog()
        assert catalog.user("SYSADM").is_admin

    def test_duplicate_user(self):
        catalog = Catalog()
        with pytest.raises(DuplicateObjectError):
            catalog.create_user("sysadm")

    def test_unknown_user(self):
        with pytest.raises(UnknownObjectError):
            Catalog().user("GHOST")


class TestPrivilegeManager:
    def test_grant_check_revoke(self):
        manager = PrivilegeManager()
        manager.grant("U", [Privilege.SELECT], "TABLE", "T")
        manager.check("U", Privilege.SELECT, "TABLE", "T")
        manager.revoke("U", [Privilege.SELECT], "TABLE", "T")
        with pytest.raises(AuthorizationError):
            manager.check("U", Privilege.SELECT, "TABLE", "T")

    def test_admin_bypasses(self):
        manager = PrivilegeManager()
        manager.check("ROOT", Privilege.DELETE, "TABLE", "T", is_admin=True)

    def test_privileges_are_per_object(self):
        manager = PrivilegeManager()
        manager.grant("U", [Privilege.SELECT], "TABLE", "T1")
        with pytest.raises(AuthorizationError):
            manager.check("U", Privilege.SELECT, "TABLE", "T2")

    def test_privileges_are_per_privilege(self):
        manager = PrivilegeManager()
        manager.grant("U", [Privilege.SELECT], "TABLE", "T")
        with pytest.raises(AuthorizationError):
            manager.check("U", Privilege.INSERT, "TABLE", "T")

    def test_counters(self):
        manager = PrivilegeManager()
        manager.grant("U", [Privilege.SELECT], "TABLE", "T")
        manager.check("U", Privilege.SELECT, "TABLE", "T")
        with pytest.raises(AuthorizationError):
            manager.check("U", Privilege.INSERT, "TABLE", "T")
        assert manager.checks_performed == 2
        assert manager.denials == 1

    def test_grants_for(self):
        manager = PrivilegeManager()
        manager.grant("U", [Privilege.SELECT, Privilege.INSERT], "TABLE", "T")
        grants = manager.grants_for("U")
        assert (Privilege.SELECT, "TABLE", "T") in grants
        assert len(grants) == 2

    def test_from_name(self):
        assert Privilege.from_name("select") is Privilege.SELECT
        with pytest.raises(UnknownObjectError):
            Privilege.from_name("FLY")

"""Workload generators: determinism, shape, and SQL integration."""

import pytest

from repro import AcceleratedDatabase
from repro.workloads import (
    CHURN_COLUMNS,
    SOCIAL_COLUMNS,
    create_churn_table,
    create_star_schema,
    generate_churn_rows,
    generate_customers,
    generate_posts,
    generate_transactions,
    write_posts_jsonl,
)


class TestGenerators:
    def test_customers_deterministic(self):
        assert generate_customers(10, seed=1) == generate_customers(10, seed=1)
        assert generate_customers(10, seed=1) != generate_customers(10, seed=2)

    def test_customers_have_some_null_incomes(self):
        rows = generate_customers(500, seed=1)
        nulls = sum(1 for row in rows if row[4] is None)
        assert 0 < nulls < 100

    def test_transactions_reference_valid_keys(self):
        rows = generate_transactions(200, customer_count=20, product_count=5)
        assert all(1 <= row[1] <= 20 for row in rows)
        assert all(1 <= row[2] <= 5 for row in rows)

    def test_churn_rows_match_columns(self):
        rows = generate_churn_rows(50)
        assert all(len(row) == len(CHURN_COLUMNS) for row in rows)

    def test_churn_label_is_binary_and_mixed(self):
        rows = generate_churn_rows(500)
        labels = {row[-1] for row in rows}
        assert labels == {0, 1}
        churn_rate = sum(row[-1] for row in rows) / len(rows)
        assert 0.1 < churn_rate < 0.9

    def test_churn_has_learnable_signal(self):
        """Churners average more support calls (by construction)."""
        rows = generate_churn_rows(2000)
        churned_calls = [r[4] for r in rows if r[-1] == 1]
        retained_calls = [r[4] for r in rows if r[-1] == 0]
        assert (
            sum(churned_calls) / len(churned_calls)
            > sum(retained_calls) / len(retained_calls) + 1
        )

    def test_posts_deterministic_and_bounded(self):
        a = list(generate_posts(100, seed=3))
        b = list(generate_posts(100, seed=3))
        assert a == b
        assert all(-1.0 <= row[4] <= 1.0 for row in a)
        assert all(row[5] >= 0 for row in a)

    def test_posts_jsonl_roundtrip(self, tmp_path):
        from repro.loader import JsonLinesSource

        path = write_posts_jsonl(tmp_path / "posts.jsonl", count=20)
        rows = list(JsonLinesSource(path, columns=SOCIAL_COLUMNS).rows())
        assert len(rows) == 20
        assert rows[0][1].startswith("user_")


class TestSqlIntegration:
    def test_star_schema_created_and_accelerated(self):
        db = AcceleratedDatabase(chunk_rows=512)
        conn = db.connect()
        data = create_star_schema(
            conn, customers=50, products=10, transactions=300
        )
        assert data.transactions == 300
        for table in ("CUSTOMERS", "PRODUCTS", "TRANSACTIONS"):
            assert db.catalog.table(table).is_accelerated
        result = conn.execute(
            "SELECT c.c_region, SUM(t.t_amount) FROM transactions t "
            "JOIN customers c ON t.t_customer = c.c_id "
            "GROUP BY c.c_region"
        )
        assert result.engine == "ACCELERATOR"
        assert len(result.rows) == 4

    def test_star_schema_quoted_names_safe(self):
        db = AcceleratedDatabase()
        conn = db.connect()
        create_star_schema(
            conn, customers=5, products=3, transactions=10, accelerate=False
        )
        names = conn.execute("SELECT c_name FROM customers LIMIT 1").scalar()
        assert names.startswith("Customer")

    def test_churn_table_counts(self):
        db = AcceleratedDatabase()
        conn = db.connect()
        count = create_churn_table(conn, count=120, accelerate=False)
        assert count == 120
        assert conn.execute("SELECT COUNT(*) FROM churn").scalar() == 120

    def test_date_predicates_work_on_star_schema(self):
        db = AcceleratedDatabase()
        conn = db.connect()
        create_star_schema(
            conn, customers=20, products=5, transactions=200
        )
        conn.set_acceleration("ALL")
        half = conn.execute(
            "SELECT COUNT(*) FROM transactions WHERE t_date >= '2015-07-01'"
        ).scalar()
        assert 0 < half < 200

"""Pure-algorithm correctness: k-means, regression, NB, tree, Apriori."""

import math

import numpy as np
import pytest

from repro.analytics.association import (
    apriori_frequent_itemsets,
    association_rules,
)
from repro.analytics.decision_tree import (
    decision_tree_fit,
    decision_tree_predict,
)
from repro.analytics.kmeans import kmeans_fit
from repro.analytics.naive_bayes import naive_bayes_fit, naive_bayes_predict
from repro.analytics.regression import linreg_fit, linreg_predict
from repro.errors import AnalyticsError


class TestKMeans:
    def two_blobs(self, n=100):
        rng = np.random.default_rng(5)
        a = rng.normal((0, 0), 0.3, size=(n, 2))
        b = rng.normal((10, 10), 0.3, size=(n, 2))
        return np.vstack([a, b])

    def test_separates_two_blobs(self):
        matrix = self.two_blobs()
        result = kmeans_fit(matrix, k=2, seed=3)
        first_half = set(result.assignments[:100].tolist())
        second_half = set(result.assignments[100:].tolist())
        assert len(first_half) == 1 and len(second_half) == 1
        assert first_half != second_half

    def test_centroids_near_blob_centers(self):
        result = kmeans_fit(self.two_blobs(), k=2, seed=3)
        centers = sorted(result.centroids[:, 0].tolist())
        assert centers[0] == pytest.approx(0.0, abs=0.5)
        assert centers[1] == pytest.approx(10.0, abs=0.5)

    def test_deterministic_for_seed(self):
        matrix = self.two_blobs()
        a = kmeans_fit(matrix, k=2, seed=7)
        b = kmeans_fit(matrix, k=2, seed=7)
        assert np.array_equal(a.assignments, b.assignments)
        assert a.inertia == b.inertia

    def test_k_equals_n(self):
        matrix = np.array([[0.0], [1.0], [2.0]])
        result = kmeans_fit(matrix, k=3, seed=1)
        assert result.inertia == pytest.approx(0.0)

    def test_too_few_rows(self):
        with pytest.raises(AnalyticsError):
            kmeans_fit(np.zeros((2, 2)), k=3)

    def test_invalid_k(self):
        with pytest.raises(AnalyticsError):
            kmeans_fit(np.zeros((5, 2)), k=0)

    def test_identical_points(self):
        matrix = np.ones((10, 2))
        result = kmeans_fit(matrix, k=2, seed=1)
        assert result.inertia == pytest.approx(0.0)

    def test_distances_match_assignments(self):
        matrix = self.two_blobs(20)
        result = kmeans_fit(matrix, k=2, seed=1)
        for i in range(len(matrix)):
            own = np.linalg.norm(
                matrix[i] - result.centroids[result.assignments[i]]
            )
            assert result.distances[i] == pytest.approx(own)


class TestLinearRegression:
    def test_recovers_exact_linear_relation(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-5, 5, size=(200, 2))
        y = 3.0 + 2.0 * x[:, 0] - 0.5 * x[:, 1]
        result = linreg_fit(x, y)
        assert result.intercept == pytest.approx(3.0, abs=1e-8)
        assert result.coefficients[0] == pytest.approx(2.0, abs=1e-8)
        assert result.coefficients[1] == pytest.approx(-0.5, abs=1e-8)
        assert result.r_squared == pytest.approx(1.0)
        assert result.rmse == pytest.approx(0.0, abs=1e-8)

    def test_noisy_fit_r_squared_below_one(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(-5, 5, size=(500, 1))
        y = 1.0 + x[:, 0] + rng.normal(0, 1.0, 500)
        result = linreg_fit(x, y)
        assert 0.5 < result.r_squared < 1.0

    def test_predict(self):
        x = np.array([[1.0], [2.0]])
        predictions = linreg_predict(x, 1.0, np.array([2.0]))
        assert predictions.tolist() == [3.0, 5.0]

    def test_constant_target(self):
        x = np.arange(10, dtype=float).reshape(-1, 1)
        result = linreg_fit(x, np.full(10, 7.0))
        assert result.r_squared == pytest.approx(1.0)
        assert result.coefficients[0] == pytest.approx(0.0, abs=1e-9)

    def test_zero_rows_rejected(self):
        with pytest.raises(AnalyticsError):
            linreg_fit(np.empty((0, 1)), np.empty(0))

    def test_length_mismatch(self):
        with pytest.raises(AnalyticsError):
            linreg_fit(np.zeros((3, 1)), np.zeros(4))


class TestNaiveBayes:
    def separable(self):
        rng = np.random.default_rng(8)
        a = rng.normal(0, 0.5, size=(100, 2))
        b = rng.normal(5, 0.5, size=(100, 2))
        matrix = np.vstack([a, b])
        labels = ["neg"] * 100 + ["pos"] * 100
        return matrix, labels

    def test_separable_classes_high_accuracy(self):
        matrix, labels = self.separable()
        model = naive_bayes_fit(matrix, labels)
        assert model.training_accuracy > 0.99

    def test_priors_reflect_frequencies(self):
        matrix = np.vstack([np.zeros((30, 1)), np.ones((10, 1))])
        labels = ["a"] * 30 + ["b"] * 10
        model = naive_bayes_fit(matrix, labels)
        priors = dict(zip(model.classes, model.priors))
        assert priors["a"] == pytest.approx(0.75)

    def test_predict_new_points(self):
        matrix, labels = self.separable()
        model = naive_bayes_fit(matrix, labels)
        predictions, scores = naive_bayes_predict(
            np.array([[0.1, 0.1], [5.1, 4.9]]), model
        )
        assert predictions == ["neg", "pos"]
        assert all(math.isfinite(s) for s in scores)

    def test_zero_variance_feature_survives(self):
        matrix = np.array([[1.0, 0.0], [1.0, 1.0], [1.0, 0.5], [1.0, 0.7]])
        model = naive_bayes_fit(matrix, ["a", "a", "b", "b"])
        predictions, __ = naive_bayes_predict(matrix, model)
        assert len(predictions) == 4

    def test_empty_rejected(self):
        with pytest.raises(AnalyticsError):
            naive_bayes_fit(np.empty((0, 1)), [])


class TestDecisionTree:
    def test_learns_threshold_rule(self):
        matrix = np.arange(100, dtype=float).reshape(-1, 1)
        labels = ["lo" if v < 50 else "hi" for v in matrix[:, 0]]
        root = decision_tree_fit(matrix, labels, max_depth=3)
        predictions, __ = decision_tree_predict(matrix, root)
        assert predictions == labels
        assert root.feature == 0
        assert 49.0 <= root.threshold <= 50.0

    def test_learns_quadrants_with_depth(self):
        points = [(x, y) for x in range(10) for y in range(10)]
        matrix = np.array(points, dtype=float)
        labels = [f"q{int(x < 5)}{int(y < 5)}" for x, y in points]
        root = decision_tree_fit(matrix, labels, max_depth=4)
        predictions, __ = decision_tree_predict(matrix, root)
        accuracy = sum(p == t for p, t in zip(predictions, labels)) / 100
        assert accuracy == 1.0
        assert root.depth() >= 3  # needs two levels of splits plus leaves

    def test_max_depth_limits_tree(self):
        rng = np.random.default_rng(3)
        matrix = rng.uniform(size=(200, 3))
        labels = [str(int(v * 8)) for v in matrix[:, 0]]
        shallow = decision_tree_fit(matrix, labels, max_depth=2)
        deep = decision_tree_fit(matrix, labels, max_depth=6)
        assert shallow.depth() <= 2
        assert deep.depth() <= 6
        assert deep.leaf_count() >= shallow.leaf_count()

    def test_pure_node_stops_early(self):
        matrix = np.zeros((20, 1))
        root = decision_tree_fit(matrix, ["same"] * 20)
        assert root.is_leaf
        assert root.confidence == 1.0

    def test_min_rows_respected(self):
        matrix = np.arange(10, dtype=float).reshape(-1, 1)
        labels = ["a"] * 9 + ["b"]
        root = decision_tree_fit(matrix, labels, min_rows=5)
        # A split isolating the single 'b' would violate min_rows.
        if not root.is_leaf:
            assert min(root.left.leaf_count(), root.right.leaf_count()) >= 1

    def test_confidence_in_unit_interval(self):
        rng = np.random.default_rng(4)
        matrix = rng.uniform(size=(100, 2))
        labels = [rng.choice(["x", "y"]) for __ in range(100)]
        root = decision_tree_fit(matrix, list(labels))
        __, confidences = decision_tree_predict(matrix, root)
        assert all(0.0 < c <= 1.0 for c in confidences)


class TestApriori:
    BASKETS = [
        {"beer", "chips"},
        {"beer", "chips", "salsa"},
        {"beer", "diapers"},
        {"chips", "salsa"},
        {"beer", "chips", "diapers"},
    ]

    def test_support_counts(self):
        frequent = apriori_frequent_itemsets(self.BASKETS, min_support=0.4)
        assert frequent[frozenset(["beer"])] == pytest.approx(0.8)
        assert frequent[frozenset(["beer", "chips"])] == pytest.approx(0.6)

    def test_min_support_filters(self):
        frequent = apriori_frequent_itemsets(self.BASKETS, min_support=0.5)
        assert frozenset(["diapers"]) not in frequent

    def test_downward_closure(self):
        frequent = apriori_frequent_itemsets(self.BASKETS, min_support=0.2)
        for itemset in frequent:
            for item in itemset:
                assert itemset - {item} in frequent or len(itemset) == 1

    def test_rules_confidence_and_lift(self):
        frequent = apriori_frequent_itemsets(self.BASKETS, min_support=0.4)
        rules = association_rules(frequent, min_confidence=0.7)
        by_key = {(r.antecedent, r.consequent): r for r in rules}
        rule = by_key[(("chips",), ("beer",))]
        assert rule.confidence == pytest.approx(0.75)
        assert rule.lift == pytest.approx(0.75 / 0.8)

    def test_min_confidence_filters(self):
        frequent = apriori_frequent_itemsets(self.BASKETS, min_support=0.2)
        strict = association_rules(frequent, min_confidence=0.99)
        loose = association_rules(frequent, min_confidence=0.1)
        assert len(strict) < len(loose)

    def test_max_size_caps_itemsets(self):
        frequent = apriori_frequent_itemsets(
            self.BASKETS, min_support=0.2, max_size=1
        )
        assert all(len(s) == 1 for s in frequent)

    def test_empty_baskets(self):
        assert apriori_frequent_itemsets([], min_support=0.5) == {}

    def test_invalid_support(self):
        with pytest.raises(AnalyticsError):
            apriori_frequent_itemsets(self.BASKETS, min_support=0.0)

    def test_rules_sorted_by_confidence(self):
        frequent = apriori_frequent_itemsets(self.BASKETS, min_support=0.2)
        rules = association_rules(frequent, min_confidence=0.1)
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

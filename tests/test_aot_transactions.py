"""The paper's Section 2 transaction semantics, end to end through SQL.

"With AOTs, IDAA has to be aware of the DB2 transaction context so that
correct results are guaranteed, i.e., uncommitted data modifications of
the own transaction are handled. At the same time, concurrent execution
of multiple queries in a single transaction are also supported."
"""

import pytest

from repro import AcceleratedDatabase


@pytest.fixture
def db():
    return AcceleratedDatabase(slice_count=2, chunk_rows=64)


@pytest.fixture
def conn(db):
    connection = db.connect()
    connection.execute(
        "CREATE TABLE STAGE (ID INTEGER, V DOUBLE) IN ACCELERATOR"
    )
    rows = ", ".join(f"({i}, {float(i)})" for i in range(50))
    connection.execute(f"INSERT INTO STAGE VALUES {rows}")
    return connection


class TestOwnChangesVisible:
    def test_uncommitted_insert_visible_to_own_queries(self, conn):
        conn.execute("BEGIN")
        conn.execute("INSERT INTO STAGE VALUES (100, 100.0)")
        assert conn.execute("SELECT COUNT(*) FROM stage").scalar() == 51
        conn.execute("ROLLBACK")

    def test_uncommitted_delete_visible_to_own_queries(self, conn):
        conn.execute("BEGIN")
        conn.execute("DELETE FROM stage WHERE id < 10")
        assert conn.execute("SELECT COUNT(*) FROM stage").scalar() == 40
        conn.execute("ROLLBACK")

    def test_uncommitted_update_visible_to_own_queries(self, conn):
        conn.execute("BEGIN")
        conn.execute("UPDATE stage SET v = 0 WHERE id = 5")
        assert (
            conn.execute("SELECT v FROM stage WHERE id = 5").scalar() == 0.0
        )
        conn.execute("ROLLBACK")

    def test_chained_statements_see_each_other(self, conn):
        """Multi-statement ELT within one transaction composes."""
        conn.execute("BEGIN")
        conn.execute("INSERT INTO STAGE VALUES (200, 1.0)")
        conn.execute("UPDATE stage SET v = v + 1 WHERE id = 200")
        conn.execute(
            "INSERT INTO STAGE SELECT id + 1000, v FROM stage WHERE id = 200"
        )
        result = conn.execute("SELECT v FROM stage WHERE id = 1200")
        assert result.rows == [(2.0,)]
        conn.execute("COMMIT")

    def test_multiple_queries_in_one_transaction(self, conn):
        """Concurrent query execution within one txn: same stable view."""
        conn.execute("BEGIN")
        conn.execute("INSERT INTO STAGE VALUES (300, 0.0)")
        first = conn.execute("SELECT COUNT(*) FROM stage").scalar()
        second = conn.execute("SELECT COUNT(*) FROM stage").scalar()
        third = conn.execute(
            "SELECT COUNT(*) FROM stage WHERE id >= 0"
        ).scalar()
        assert first == second == third == 51
        conn.execute("ROLLBACK")


class TestIsolation:
    def test_other_transactions_do_not_see_uncommitted(self, db, conn):
        other = db.connect()
        conn.execute("BEGIN")
        conn.execute("INSERT INTO STAGE VALUES (400, 0.0)")
        assert other.execute("SELECT COUNT(*) FROM stage").scalar() == 50
        conn.execute("COMMIT")
        assert other.execute("SELECT COUNT(*) FROM stage").scalar() == 51

    def test_open_snapshot_does_not_see_later_commits(self, db, conn):
        reader = db.connect()
        reader.execute("BEGIN")
        # Pin the reader's snapshot with a first query.
        assert reader.execute("SELECT COUNT(*) FROM stage").scalar() == 50
        conn.execute("INSERT INTO STAGE VALUES (500, 0.0)")  # autocommit
        # Snapshot isolation: the reader still sees the old state.
        assert reader.execute("SELECT COUNT(*) FROM stage").scalar() == 50
        reader.execute("COMMIT")
        assert reader.execute("SELECT COUNT(*) FROM stage").scalar() == 51

    def test_two_writers_do_not_interfere(self, db, conn):
        other = db.connect()
        conn.execute("BEGIN")
        other.execute("BEGIN")
        conn.execute("INSERT INTO STAGE VALUES (600, 1.0)")
        other.execute("INSERT INTO STAGE VALUES (601, 2.0)")
        assert conn.execute(
            "SELECT COUNT(*) FROM stage WHERE id IN (600, 601)"
        ).scalar() == 1
        assert other.execute(
            "SELECT COUNT(*) FROM stage WHERE id IN (600, 601)"
        ).scalar() == 1
        conn.execute("COMMIT")
        other.execute("COMMIT")
        fresh = db.connect()
        assert fresh.execute(
            "SELECT COUNT(*) FROM stage WHERE id IN (600, 601)"
        ).scalar() == 2


class TestRollback:
    def test_rollback_discards_aot_changes(self, conn):
        conn.execute("BEGIN")
        conn.execute("DELETE FROM stage")
        conn.execute("INSERT INTO STAGE VALUES (1, -1.0)")
        conn.execute("ROLLBACK")
        assert conn.execute("SELECT COUNT(*) FROM stage").scalar() == 50
        assert (
            conn.execute("SELECT v FROM stage WHERE id = 1").scalar() == 1.0
        )

    def test_mixed_db2_and_aot_transaction_rolls_back_both(self, db, conn):
        conn.execute("CREATE TABLE DB2SIDE (A INTEGER)")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO DB2SIDE VALUES (1)")
        conn.execute("INSERT INTO STAGE VALUES (700, 0.0)")
        conn.execute("ROLLBACK")
        assert conn.execute("SELECT COUNT(*) FROM db2side").scalar() == 0
        assert conn.execute("SELECT COUNT(*) FROM stage").scalar() == 50

    def test_mixed_transaction_commits_both(self, db, conn):
        conn.execute("CREATE TABLE DB2SIDE (A INTEGER)")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO DB2SIDE VALUES (1)")
        conn.execute("INSERT INTO STAGE VALUES (701, 0.0)")
        conn.execute("COMMIT")
        assert conn.execute("SELECT COUNT(*) FROM db2side").scalar() == 1
        assert conn.execute("SELECT COUNT(*) FROM stage").scalar() == 51

    def test_failed_statement_rolls_back_only_itself(self, conn):
        conn.execute("BEGIN")
        conn.execute("INSERT INTO STAGE VALUES (800, 0.0)")
        with pytest.raises(Exception):
            conn.execute("INSERT INTO STAGE SELECT * FROM no_such_table")
        assert conn.execute(
            "SELECT COUNT(*) FROM stage WHERE id = 800"
        ).scalar() == 1
        conn.execute("COMMIT")
        assert conn.execute(
            "SELECT COUNT(*) FROM stage WHERE id = 800"
        ).scalar() == 1


class TestSnapshotPinning:
    def test_transaction_reads_are_repeatable_on_accelerator(self, db, conn):
        """Within one txn the accelerator snapshot does not move even as
        other sessions commit (the paper's snapshot-isolation model)."""
        reader = db.connect()
        reader.execute("BEGIN")
        first = reader.execute("SELECT SUM(v) FROM stage").scalar()
        conn.execute("UPDATE stage SET v = v + 1000")
        second = reader.execute("SELECT SUM(v) FROM stage").scalar()
        assert first == second
        reader.execute("COMMIT")

"""Crash-consistent recovery: checkpoints, restart resync, crash matrix.

Covers the E16 recovery subsystem bottom-up: the checksummed frame
format and atomic file store, the tagged-JSON checkpoint payload,
changelog retention guards, the recovery manager's restore/replay/
reload/rebuild decision tree, the SYSPROC procedures and MON_RECOVERY
view, and finally the full crash-point differential matrix — every named
crash point must leave the system byte-identical to an uncrashed run.
"""

import datetime
import decimal
import os

import pytest

from repro import AcceleratedDatabase
from repro.errors import (
    ChangelogTruncatedError,
    CorruptCheckpointError,
    InjectedCrashError,
)
from repro.recovery.checkpoint import (
    Checkpoint,
    CheckpointTable,
    FileCheckpointStore,
    MemoryCheckpointStore,
)
from repro.recovery.harness import (
    CrashRestartDriver,
    build_workload,
    crash_scenarios,
    default_system,
    fingerprint,
    run_crash_matrix,
    run_crash_scenario,
    run_uncrashed,
)
from repro.storage.durable import (
    pack_frame,
    read_frame,
    unpack_frame,
    write_frame_atomic,
)


# ---------------------------------------------------------------------------
# Frame format + durable writes
# ---------------------------------------------------------------------------


class TestFrameFormat:
    def test_roundtrip(self):
        payload = b'{"hello": "world"}'
        assert unpack_frame(pack_frame(payload)) == payload

    def test_empty_payload_roundtrip(self):
        assert unpack_frame(pack_frame(b"")) == b""

    def test_torn_frame_detected(self):
        frame = pack_frame(b"x" * 1000)
        for cut in (0, 1, len(frame) // 2, len(frame) - 1):
            with pytest.raises(CorruptCheckpointError):
                unpack_frame(frame[:cut])

    def test_bad_magic_detected(self):
        frame = bytearray(pack_frame(b"payload"))
        frame[0] ^= 0xFF
        with pytest.raises(CorruptCheckpointError, match="magic"):
            unpack_frame(bytes(frame))

    def test_bad_version_detected(self):
        frame = bytearray(pack_frame(b"payload"))
        frame[8:12] = (99).to_bytes(4, "big")
        with pytest.raises(CorruptCheckpointError, match="version"):
            unpack_frame(bytes(frame))

    def test_flipped_payload_bit_detected(self):
        frame = bytearray(pack_frame(b"payload-bytes"))
        frame[-1] ^= 0x01
        with pytest.raises(CorruptCheckpointError, match="checksum"):
            unpack_frame(bytes(frame))

    def test_atomic_write_and_read(self, tmp_path):
        path = str(tmp_path / "a.ckpt")
        nbytes = write_frame_atomic(path, b"data")
        assert os.path.getsize(path) == nbytes
        assert read_frame(path) == b"data"
        # No temp residue in the directory.
        assert os.listdir(str(tmp_path)) == ["a.ckpt"]

    def test_missing_file_is_corrupt(self, tmp_path):
        with pytest.raises(CorruptCheckpointError):
            read_frame(str(tmp_path / "missing.ckpt"))


# ---------------------------------------------------------------------------
# Checkpoint payload
# ---------------------------------------------------------------------------


class TestCheckpointPayload:
    def _sample(self):
        return Checkpoint(
            checkpoint_id=7,
            created_at=1234.5,
            catalog_generation=42,
            cursor_lsn=300,
            table_starts={"T": 12},
            tables={
                "T": CheckpointTable(
                    rows=[
                        (
                            1,
                            None,
                            2.5,
                            "text",
                            datetime.date(2024, 2, 29),
                            datetime.datetime(2024, 2, 29, 12, 30, 15),
                            decimal.Decimal("10.25"),
                        )
                    ],
                    applied_lsn=299,
                    lineage_epoch=3,
                )
            },
        )

    def test_roundtrip_preserves_types(self):
        restored = Checkpoint.from_payload(self._sample().to_payload())
        assert restored.checkpoint_id == 7
        assert restored.cursor_lsn == 300
        assert restored.table_starts == {"T": 12}
        entry = restored.tables["T"]
        assert entry.applied_lsn == 299
        assert entry.lineage_epoch == 3
        row = entry.rows[0]
        assert row == self._sample().tables["T"].rows[0]
        assert isinstance(row[4], datetime.date)
        assert not isinstance(row[4], datetime.datetime)
        assert isinstance(row[5], datetime.datetime)
        assert isinstance(row[6], decimal.Decimal)

    def test_garbage_payload_rejected(self):
        with pytest.raises(CorruptCheckpointError):
            Checkpoint.from_payload(b"\xff\xfenot json")

    def test_wrong_version_rejected(self):
        with pytest.raises(CorruptCheckpointError, match="version"):
            Checkpoint.from_payload(b'{"version": 99}')


class TestStores:
    @pytest.mark.parametrize("kind", ["memory", "file"])
    def test_write_read_delete(self, kind, tmp_path):
        store = (
            MemoryCheckpointStore()
            if kind == "memory"
            else FileCheckpointStore(str(tmp_path))
        )
        store.write(1, b"one")
        store.write(2, b"two")
        assert store.ids() == [1, 2]
        assert store.read(2) == b"two"
        store.delete(1)
        assert store.ids() == [2]

    @pytest.mark.parametrize("kind", ["memory", "file"])
    def test_torn_write_detected_on_read(self, kind, tmp_path):
        store = (
            MemoryCheckpointStore()
            if kind == "memory"
            else FileCheckpointStore(str(tmp_path))
        )
        store.write_torn(3, b"payload that never fully landed")
        assert store.ids() == [3]  # the file exists...
        with pytest.raises(CorruptCheckpointError):
            store.read(3)  # ...but restore rejects it


# ---------------------------------------------------------------------------
# Changelog retention
# ---------------------------------------------------------------------------


@pytest.fixture
def db():
    return AcceleratedDatabase(
        slice_count=2, chunk_rows=64, cooldown_seconds=0.0
    )


@pytest.fixture
def conn(db):
    connection = db.connect()
    connection.execute(
        "CREATE TABLE T (ID INTEGER NOT NULL PRIMARY KEY, V DOUBLE)"
    )
    rows = ", ".join(f"({i}, {float(i)})" for i in range(30))
    connection.execute(f"INSERT INTO T VALUES {rows}")
    db.add_table_to_accelerator("T")
    return connection


class TestChangelogRetention:
    def test_trim_never_passes_replication_cursor(self, db, conn):
        db.auto_replicate = False
        conn.execute("UPDATE t SET v = v + 1 WHERE id < 5")
        log = db.db2.change_log
        cursor = db.replication.cursor_lsn
        assert log.backlog(cursor) == 5
        log.trim()  # unconsumed suffix must survive
        assert log.oldest_lsn <= cursor
        assert db.replication.drain() == 5  # replay still possible

    def test_trim_never_passes_checkpoint_watermark(self, db, conn):
        result = db.recovery.checkpoint()
        conn.execute("UPDATE t SET v = 0 WHERE id < 7")  # auto-drained
        assert db.replication.backlog == 0
        dropped = db.recovery.trim_changelog()
        # The cursor is past these records, but the retained checkpoint
        # still needs them for a post-restart replay.
        assert db.db2.change_log.oldest_lsn <= result.cursor_lsn
        assert dropped == max(0, result.cursor_lsn - 1)

    def test_read_below_retained_window_raises(self, db, conn):
        conn.execute("UPDATE t SET v = 0 WHERE id < 3")
        log = db.db2.change_log
        log.trim()  # cursor is at head; everything can go
        assert log.oldest_lsn == db.replication.cursor_lsn
        with pytest.raises(ChangelogTruncatedError):
            log.read_from(1)

    def test_trim_counters(self, db, conn):
        conn.execute("UPDATE t SET v = 0 WHERE id < 4")
        log = db.db2.change_log
        dropped = log.trim()
        assert dropped > 0
        assert log.records_trimmed == dropped
        assert log.trims == 1


# ---------------------------------------------------------------------------
# Checkpoint + recover through the system
# ---------------------------------------------------------------------------


class TestCheckpointRecover:
    def test_incremental_resync_after_crash(self, db, conn):
        db.recovery.checkpoint()
        conn.execute("UPDATE t SET v = v + 100 WHERE id < 10")
        driver = CrashRestartDriver(db)
        driver.kill()
        result = driver.restart()
        # The checkpoint image avoided a full reload; only the changelog
        # suffix (the 10 updates, already drained pre-crash but past the
        # checkpointed cursor) was replayed.
        assert result.checkpoint_id is not None
        assert result.tables_restored == 1
        assert result.full_reloads == 0
        assert result.records_replayed == 10
        assert result.resync_bytes_saved > 0
        conn.set_acceleration("ALL")
        assert (
            conn.execute("SELECT SUM(v) FROM t").scalar()
            == sum(range(30)) + 10 * 100
        )

    def test_no_checkpoint_falls_back_to_full_reload(self, db, conn):
        driver = CrashRestartDriver(db)
        driver.kill()
        result = driver.restart()
        assert result.checkpoint_id is None
        assert result.full_reloads == 1
        assert result.resync_bytes_saved == 0
        conn.set_acceleration("ALL")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 30

    def test_truncated_changelog_forces_full_reload(self, db, conn):
        db.recovery.checkpoint()
        conn.execute("UPDATE t SET v = 0 WHERE id < 5")
        # Drop the retained checkpoint's replay window behind its back —
        # simulating retention that out-lived every checkpoint copy.
        log = db.db2.change_log
        db.recovery._checkpoint_cursors.clear()
        log.trim()
        db.recovery._checkpoint_cursors[1] = 1
        driver = CrashRestartDriver(db)
        driver.kill()
        result = driver.restart()
        assert result.full_reloads == 1
        assert result.resync_bytes_saved == 0  # honesty: reload shipped all
        conn.set_acceleration("ALL")
        assert (
            conn.execute("SELECT COUNT(*) FROM t WHERE v = 0").scalar() == 5
        )

    def test_corrupt_newest_checkpoint_falls_back_to_previous(
        self, db, conn
    ):
        db.recovery.checkpoint()
        conn.execute("UPDATE t SET v = v + 1 WHERE id = 0")
        second = db.recovery.checkpoint()
        # Tear the newest frame in place.
        db.recovery.store.write_torn(second.checkpoint_id, b"different")
        driver = CrashRestartDriver(db)
        driver.kill()
        result = driver.restart()
        assert result.checkpoint_id == second.checkpoint_id - 1
        assert result.corrupt_skipped == 1
        assert db.recovery.corrupt_checkpoints_skipped == 1
        conn.set_acceleration("ALL")
        assert (
            conn.execute("SELECT SUM(v) FROM t").scalar()
            == sum(range(30)) + 1
        )

    def test_retention_prunes_old_checkpoints(self, db, conn):
        for _ in range(5):
            db.recovery.checkpoint()
        assert db.recovery.checkpoint_ids() == [3, 4, 5]

    def test_tables_accelerated_after_checkpoint_fully_reload(
        self, db, conn
    ):
        db.recovery.checkpoint()
        conn.execute("CREATE TABLE LATE (ID INTEGER NOT NULL PRIMARY KEY)")
        conn.execute("INSERT INTO LATE VALUES (1), (2), (3)")
        db.add_table_to_accelerator("LATE")
        driver = CrashRestartDriver(db)
        driver.kill()
        result = driver.restart()
        assert result.tables_restored == 1  # T from the checkpoint
        assert result.full_reloads == 1  # LATE, unknown to the checkpoint
        conn.set_acceleration("ALL")
        assert conn.execute("SELECT COUNT(*) FROM late").scalar() == 3

    def test_checkpoint_age_and_replay_lag(self, db, conn):
        assert db.recovery.last_checkpoint_age_seconds() == -1.0
        db.recovery.checkpoint()
        assert db.recovery.last_checkpoint_age_seconds() >= 0.0
        db.auto_replicate = False
        conn.execute("UPDATE t SET v = 0 WHERE id < 8")
        assert db.recovery.replay_lag_records() == 8

    def test_recovery_metrics_registered(self, db, conn):
        db.recovery.checkpoint()
        metrics = db.metrics.collect()
        assert metrics["recovery.checkpoints_taken"] == 1
        assert metrics["recovery.retained_checkpoints"] == 1
        assert metrics["recovery.last_checkpoint_bytes"] > 0
        assert metrics["recovery.recoveries"] == 0


class TestAotRecovery:
    @pytest.fixture
    def aot_db(self, db, conn):
        conn.execute(
            "CREATE TABLE SUMMARY AS (SELECT ID, V FROM T WHERE ID < 10) "
            "IN ACCELERATOR"
        )
        db.recovery.register_aot_source(
            "SUMMARY", "SELECT ID, V FROM T WHERE ID < 10"
        )
        return db

    def test_lost_aot_rebuilt_from_source(self, aot_db, conn):
        driver = CrashRestartDriver(aot_db)
        driver.kill()
        result = driver.restart()
        assert result.aots_rebuilt == 1
        assert result.aots_lost == 0
        conn.set_acceleration("ALL")
        assert conn.execute("SELECT COUNT(*) FROM summary").scalar() == 10

    def test_checkpointed_aot_restored_without_rebuild(self, aot_db, conn):
        aot_db.recovery.checkpoint()
        driver = CrashRestartDriver(aot_db)
        driver.kill()
        result = driver.restart()
        # The checkpoint image is current per the lineage journal: no
        # rebuild work was queued.
        assert result.aots_rebuilt == 0
        conn.set_acceleration("ALL")
        assert conn.execute("SELECT COUNT(*) FROM summary").scalar() == 10

    def test_stale_checkpointed_aot_rebuilt(self, aot_db, conn):
        aot_db.recovery.checkpoint()
        # Writes after the checkpoint advance the DB2-side journal past
        # the image's lineage epoch.
        conn.execute("INSERT INTO SUMMARY VALUES (100, 1.0)")
        driver = CrashRestartDriver(aot_db)
        driver.kill()
        result = driver.restart()
        assert result.aots_rebuilt == 1
        conn.set_acceleration("ALL")
        # Rebuild = the source query's current answer (the paper's AOTs
        # are derived state; the post-checkpoint insert is regenerable
        # only through its defining query).
        assert conn.execute("SELECT COUNT(*) FROM summary").scalar() == 10

    def test_lost_aot_without_source_counted(self, db, conn):
        conn.execute(
            "CREATE TABLE ORPHAN AS (SELECT ID FROM T WHERE ID < 5) "
            "IN ACCELERATOR"
        )
        driver = CrashRestartDriver(db)
        driver.kill()
        result = driver.restart()
        assert result.aots_lost == 1
        conn.set_acceleration("ALL")
        assert conn.execute("SELECT COUNT(*) FROM orphan").scalar() == 0

    def test_rebuild_runs_as_batch_class_under_wlm(self, aot_db, conn):
        aot_db.wlm.set_enabled(True)
        driver = CrashRestartDriver(aot_db)
        driver.kill()
        result = driver.restart()
        assert result.aots_rebuilt == 1
        stats = {}
        for gate in aot_db.wlm.gates.values():
            for name, cls_stats in gate.class_stats().items():
                stats[name] = (
                    stats.get(name, 0)
                    + cls_stats.admitted
                    + cls_stats.bypassed
                )
        # Rebuild DML passed through the gates as BATCH work (small
        # statements take the cheap bypass, still accounted to BATCH).
        assert stats.get("BATCH", 0) > 0


# ---------------------------------------------------------------------------
# Procedures + monitoring
# ---------------------------------------------------------------------------


class TestProceduresAndMonitoring:
    def test_accel_checkpoint_procedure(self, db, conn):
        result = conn.execute("CALL SYSPROC.ACCEL_CHECKPOINT('')")
        assert "ACCEL_CHECKPOINT ok" in result.message
        assert db.recovery.checkpoints_taken == 1

    def test_accel_recover_procedure(self, db, conn):
        conn.execute("CALL SYSPROC.ACCEL_CHECKPOINT('')")
        CrashRestartDriver(db).kill()
        db.health.reset()
        result = conn.execute("CALL SYSPROC.ACCEL_RECOVER('')")
        assert "ACCEL_RECOVER ok" in result.message
        assert any("tables_restored=1" in row[0] for row in result.rows)

    def test_procedures_require_admin(self, db, conn):
        from repro.errors import AuthorizationError

        db.create_user("PLEB")
        pleb = db.connect("PLEB")
        for call in (
            "CALL SYSPROC.ACCEL_CHECKPOINT('')",
            "CALL SYSPROC.ACCEL_RECOVER('')",
        ):
            with pytest.raises(AuthorizationError):
                pleb.execute(call)

    def test_health_reports_checkpoint_age_and_lag(self, db, conn):
        result = conn.execute("CALL SYSPROC.ACCEL_GET_HEALTH('')")
        assert any(
            "last_checkpoint=none" in row[0] for row in result.rows
        )
        conn.execute("CALL SYSPROC.ACCEL_CHECKPOINT('')")
        result = conn.execute("CALL SYSPROC.ACCEL_GET_HEALTH('')")
        line = next(
            row[0] for row in result.rows if "last_checkpoint=#" in row[0]
        )
        assert "age=" in line and "replay_lag=" in line

    def test_control_trim_action(self, db, conn):
        conn.execute("UPDATE t SET v = 0 WHERE id < 5")
        result = conn.execute(
            "CALL SYSPROC.ACCEL_CONTROL_ACCELERATOR('action=trim')"
        )
        assert "records trimmed" in result.message

    def test_mon_recovery_view(self, db, conn):
        conn.execute("CALL SYSPROC.ACCEL_CHECKPOINT('')")
        CrashRestartDriver(db).kill()
        db.health.reset()
        db.recovery.recover()
        rows = conn.execute(
            "SELECT KIND, CHECKPOINT_ID, TABLES FROM "
            "SYSACCEL.MON_RECOVERY ORDER BY EVENT_ID"
        ).rows
        kinds = [row[0] for row in rows]
        assert kinds == ["checkpoint", "recover"]
        assert rows[0][1] == rows[1][1] == 1  # same checkpoint id
        count = conn.execute(
            "SELECT COUNT(*) FROM SYSACCEL.MON_RECOVERY "
            "WHERE KIND = 'recover'"
        ).scalar()
        assert count == 1


# ---------------------------------------------------------------------------
# The crash-point differential matrix (the tentpole's acceptance test)
# ---------------------------------------------------------------------------


class TestCrashMatrix:
    def test_every_crash_point_recovers_byte_identical(self):
        report = run_crash_matrix()
        assert report.all_matched, report.summary()
        # Every named crash point is exercised at least once.
        points = {o.crash_point for o in report.outcomes}
        assert points == {
            "replication.mid_batch",
            "checkpoint.mid_write",
            "ddl.mid_accelerate",
            "aot.mid_build",
            "commit.post_commit_pre_ack",
        }
        # Scenarios crashing after a checkpoint existed must show the
        # incremental win: bytes saved vs. a full reload.
        saved = [
            o.recovery.resync_bytes_saved
            for o in report.outcomes
            if o.recovery is not None and o.recovery.tables_restored > 0
        ]
        assert saved and all(s > 0 for s in saved)

    def test_matrix_with_file_store(self, tmp_path):
        report = run_crash_matrix(checkpoint_dir=str(tmp_path))
        assert report.all_matched, report.summary()
        # Checkpoints really hit disk, one subdirectory per run.
        subdirs = sorted(os.listdir(str(tmp_path)))
        assert "baseline" in subdirs
        files = [
            name
            for sub in subdirs
            for name in os.listdir(str(tmp_path / sub))
        ]
        assert any(name.endswith(".ckpt") for name in files)

    def test_single_scenario_runs_standalone(self):
        __, baseline = run_uncrashed()
        index, step = crash_scenarios()[0]
        outcome = run_crash_scenario(index, baseline)
        assert outcome.matched
        assert outcome.fired > 0
        assert outcome.kills == 1

    def test_armed_crash_point_actually_fires(self):
        # Guards against the harness silently testing nothing: a crash
        # point armed at a step that never consults it is an error.
        system = default_system()
        rule = system.faults.arm_crash_point("replication.mid_batch")
        conn = system.connect()
        conn.execute("CREATE TABLE X (ID INTEGER NOT NULL PRIMARY KEY)")
        conn.execute("INSERT INTO X VALUES (1)")
        system.add_table_to_accelerator("X")
        conn.execute("INSERT INTO X VALUES (2)")  # commit-drain crashes
        assert rule.fired > 0
        assert system.replication.backlog > 0  # the batch never landed

    def test_workload_covers_every_crash_class(self):
        steps = build_workload()
        assert len(crash_scenarios(steps)) >= 5
        assert any(s.on_crash == "retry" for s in steps)
        assert any(s.on_crash == "continue" for s in steps)


class TestInjectedCrashSemantics:
    def test_injected_crash_is_an_accelerator_crash(self):
        from repro.errors import AcceleratorCrashError

        assert issubclass(InjectedCrashError, AcceleratorCrashError)

    def test_crash_point_noop_when_unarmed(self, db, conn):
        db.faults.crash_point("replication.mid_batch")  # must not raise

    def test_unknown_crash_point_rejected(self, db):
        with pytest.raises(ValueError):
            db.faults.arm_crash_point("no.such.point")

    def test_clear_crash_points_disarms(self, db):
        db.faults.arm_crash_point("checkpoint.mid_write")
        assert db.faults.armed_crash_points() == ["checkpoint.mid_write"]
        db.faults.clear_crash_points()
        assert db.faults.armed_crash_points() == []
        db.recovery.checkpoint()  # no raise

"""Locking, cursor stability, and concurrent transactions."""

import threading

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.db2 import Db2Engine, LockManager, LockMode
from repro.db2.transaction import Transaction, TransactionManager
from repro.errors import LockTimeoutError, TransactionStateError
from repro.sql import parse_statement
from repro.sql.types import DOUBLE, INTEGER


@pytest.fixture
def engine():
    catalog = Catalog()
    engine = Db2Engine(catalog)
    schema = TableSchema(
        [Column("ID", INTEGER, nullable=False), Column("V", DOUBLE)]
    )
    engine.create_storage(catalog.create_table("T", schema))
    txn = engine.txn_manager.begin()
    engine.insert_rows(txn, "T", [(i, float(i)) for i in range(10)])
    engine.commit(txn)
    return engine


class TestLockManager:
    def test_shared_locks_compatible(self):
        manager = LockManager(timeout=0.1)
        a = Transaction(txn_id=1)
        b = Transaction(txn_id=2)
        manager.acquire(a, "T", LockMode.SHARED)
        manager.acquire(b, "T", LockMode.SHARED)  # no timeout

    def test_exclusive_blocks_shared(self):
        manager = LockManager(timeout=0.05)
        a = Transaction(txn_id=1)
        b = Transaction(txn_id=2)
        manager.acquire(a, "T", LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            manager.acquire(b, "T", LockMode.SHARED)

    def test_shared_blocks_exclusive(self):
        manager = LockManager(timeout=0.05)
        a = Transaction(txn_id=1)
        b = Transaction(txn_id=2)
        manager.acquire(a, "T", LockMode.SHARED)
        with pytest.raises(LockTimeoutError):
            manager.acquire(b, "T", LockMode.EXCLUSIVE)

    def test_upgrade_when_sole_sharer(self):
        manager = LockManager(timeout=0.05)
        a = Transaction(txn_id=1)
        manager.acquire(a, "T", LockMode.SHARED)
        manager.acquire(a, "T", LockMode.EXCLUSIVE)  # upgrade allowed

    def test_release_all_unblocks_waiter(self):
        manager = LockManager(timeout=1.0)
        a = Transaction(txn_id=1)
        b = Transaction(txn_id=2)
        manager.acquire(a, "T", LockMode.EXCLUSIVE)
        acquired = threading.Event()

        def waiter():
            manager.acquire(b, "T", LockMode.EXCLUSIVE)
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        manager.release_all(a)
        thread.join(timeout=2.0)
        assert acquired.is_set()

    def test_statement_locks_released_separately(self):
        manager = LockManager(timeout=0.05)
        reader = Transaction(txn_id=1)
        writer = Transaction(txn_id=2)
        manager.acquire(reader, "T", LockMode.SHARED)
        manager.release_statement_locks(reader)  # cursor stability
        manager.acquire(writer, "T", LockMode.EXCLUSIVE)  # now succeeds

    def test_different_tables_do_not_conflict(self):
        manager = LockManager(timeout=0.05)
        a = Transaction(txn_id=1)
        b = Transaction(txn_id=2)
        manager.acquire(a, "T1", LockMode.EXCLUSIVE)
        manager.acquire(b, "T2", LockMode.EXCLUSIVE)


class TestTransactionManager:
    def test_commit_clears_undo(self):
        manager = TransactionManager()
        txn = manager.begin()
        txn.add_undo(lambda: None)
        manager.commit(txn)
        assert not txn.undo_log
        assert manager.commits == 1

    def test_commit_twice_rejected(self):
        manager = TransactionManager()
        txn = manager.begin()
        manager.commit(txn)
        with pytest.raises(TransactionStateError):
            manager.commit(txn)

    def test_rollback_runs_undo_in_reverse(self):
        manager = TransactionManager()
        txn = manager.begin()
        order = []
        txn.add_undo(lambda: order.append("first"))
        txn.add_undo(lambda: order.append("second"))
        manager.rollback(txn)
        assert order == ["second", "first"]

    def test_transaction_ids_unique(self):
        manager = TransactionManager()
        assert manager.begin().txn_id != manager.begin().txn_id


class TestCursorStability:
    def test_reader_does_not_block_writer_after_statement(self, engine):
        reader = engine.txn_manager.begin()
        engine.execute_select(reader, parse_statement("SELECT * FROM t"))
        engine.txn_manager.end_statement(reader)  # S lock released here
        writer = engine.txn_manager.begin()
        engine.update_where(
            writer, parse_statement("UPDATE t SET v = 0 WHERE id = 1")
        )
        engine.commit(writer)
        engine.commit(reader)

    def test_writer_blocks_reader_until_commit(self, engine):
        engine.txn_manager.lock_manager.timeout = 0.05
        writer = engine.txn_manager.begin()
        engine.update_where(
            writer, parse_statement("UPDATE t SET v = 0 WHERE id = 1")
        )
        engine.txn_manager.end_statement(writer)  # X lock survives
        reader = engine.txn_manager.begin()
        with pytest.raises(LockTimeoutError):
            engine.execute_select(reader, parse_statement("SELECT * FROM t"))
        engine.commit(writer)

    def test_no_dirty_reads(self, engine):
        """A reader after writer commit sees all-or-nothing."""
        writer = engine.txn_manager.begin()
        engine.update_where(writer, parse_statement("UPDATE t SET v = 100"))
        engine.rollback(writer)
        reader = engine.txn_manager.begin()
        __, rows = engine.execute_select(
            reader, parse_statement("SELECT SUM(v) FROM t")
        )
        assert rows == [(45.0,)]
        engine.commit(reader)


class TestConcurrentThroughput:
    def test_concurrent_writers_serialize_without_corruption(self, engine):
        """N threads each transfer value between rows; total conserved."""
        errors = []

        def worker(worker_id):
            try:
                for __ in range(10):
                    txn = engine.txn_manager.begin()
                    engine.update_where(
                        txn,
                        parse_statement(
                            f"UPDATE t SET v = v + 1 WHERE id = {worker_id}"
                        ),
                    )
                    engine.update_where(
                        txn,
                        parse_statement(
                            f"UPDATE t SET v = v - 1 WHERE id = {worker_id + 5}"
                        ),
                    )
                    engine.commit(txn)
            except Exception as error:  # pragma: no cover - fail loudly
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        txn = engine.txn_manager.begin()
        __, rows = engine.execute_select(
            txn, parse_statement("SELECT SUM(v) FROM t")
        )
        engine.commit(txn)
        assert rows == [(45.0,)]  # transfers conserve the total

"""Analytics framework plumbing: params, registry, context, model store."""

import pytest

from repro import AcceleratedDatabase
from repro.analytics import Procedure, parse_parameter_string
from repro.analytics.model_store import Model, ModelStore
from repro.errors import (
    DuplicateObjectError,
    ProcedureError,
    UnknownObjectError,
)


class TestParameterParsing:
    def test_basic(self):
        assert parse_parameter_string("intable=T1, k=4") == {
            "intable": "T1",
            "k": "4",
        }

    def test_keys_lowercased_values_kept(self):
        assert parse_parameter_string("InTable=MyTab") == {"intable": "MyTab"}

    def test_whitespace_tolerated(self):
        assert parse_parameter_string("  a = 1 ,  b = x y ") == {
            "a": "1",
            "b": "x y",
        }

    def test_empty_segments_ignored(self):
        assert parse_parameter_string("a=1,,") == {"a": "1"}

    def test_malformed_segment_rejected(self):
        with pytest.raises(ProcedureError):
            parse_parameter_string("a=1, nonsense")

    def test_empty_string(self):
        assert parse_parameter_string("") == {}


class TestRegistry:
    def test_builtins_registered(self):
        db = AcceleratedDatabase()
        names = db.procedures.names()
        assert "INZA.KMEANS" in names
        assert "INZA.NORMALIZE" in names
        assert "INZA.ARULE" in names

    def test_unknown_procedure(self):
        db = AcceleratedDatabase()
        conn = db.connect()
        with pytest.raises(UnknownObjectError):
            conn.execute("CALL INZA.NO_SUCH_PROC('a=1')")

    def test_custom_procedure_registration(self):
        db = AcceleratedDatabase()

        def handler(ctx):
            return f"hello {ctx.require('name')}"

        db.procedures.register(
            Procedure(
                name="APP.HELLO",
                handler=handler,
                description="test proc",
                input_params=(),
                output_params=(),
            )
        )
        conn = db.connect()
        result = conn.execute("CALL APP.HELLO('name=world')")
        assert result.message == "hello world"

    def test_call_argument_must_be_string(self):
        db = AcceleratedDatabase()
        conn = db.connect()
        with pytest.raises(ProcedureError):
            conn.execute("CALL INZA.KMEANS(42)")

    def test_context_helpers(self):
        db = AcceleratedDatabase()

        captured = {}

        def handler(ctx):
            captured["int"] = ctx.get_int("k", 3)
            captured["float"] = ctx.get_float("f", 0.5)
            captured["cols"] = ctx.column_list("incolumn")
            captured["missing"] = ctx.get("nope")
            ctx.log("a detail line")
            return "ok"

        db.procedures.register(
            Procedure("APP.P", handler, input_params=(), output_params=())
        )
        conn = db.connect()
        result = conn.execute("CALL APP.P('k=7, f=1.5, incolumn=A;B ;c')")
        assert captured == {
            "int": 7,
            "float": 1.5,
            "cols": ["A", "B", "C"],
            "missing": None,
        }
        assert ("a detail line",) in result.rows

    def test_bad_int_parameter(self):
        db = AcceleratedDatabase()

        def handler(ctx):
            ctx.get_int("k")
            return "ok"

        db.procedures.register(
            Procedure("APP.P", handler, input_params=(), output_params=())
        )
        conn = db.connect()
        with pytest.raises(ProcedureError):
            conn.execute("CALL APP.P('k=banana')")

    def test_require_missing_parameter(self):
        db = AcceleratedDatabase()

        def handler(ctx):
            ctx.require("intable")
            return "ok"

        db.procedures.register(
            Procedure("APP.P", handler, input_params=(), output_params=())
        )
        conn = db.connect()
        with pytest.raises(ProcedureError):
            conn.execute("CALL APP.P('other=1')")


class TestModelStore:
    def test_register_get_drop(self):
        store = ModelStore()
        store.register(Model(name="m1", kind="KMEANS", features=["A"]))
        assert store.get("M1").kind == "KMEANS"
        assert "m1" in store
        store.drop("m1")
        assert "m1" not in store

    def test_duplicate_without_replace(self):
        store = ModelStore()
        store.register(Model(name="m1", kind="KMEANS", features=[]))
        with pytest.raises(DuplicateObjectError):
            store.register(Model(name="M1", kind="LINREG", features=[]))

    def test_replace(self):
        store = ModelStore()
        store.register(Model(name="m1", kind="KMEANS", features=[]))
        store.register(
            Model(name="m1", kind="LINREG", features=[]), replace=True
        )
        assert store.get("m1").kind == "LINREG"

    def test_unknown_model(self):
        with pytest.raises(UnknownObjectError):
            ModelStore().get("GHOST")
        with pytest.raises(UnknownObjectError):
            ModelStore().drop("GHOST")

    def test_list_models_procedure(self):
        db = AcceleratedDatabase()
        db.models.register(Model(name="m1", kind="KMEANS", features=[]))
        conn = db.connect()
        result = conn.execute("CALL INZA.LIST_MODELS()")
        assert result.message == "MODELS: 1"

    def test_drop_model_procedure(self):
        db = AcceleratedDatabase()
        db.models.register(Model(name="m1", kind="KMEANS", features=[]))
        conn = db.connect()
        conn.execute("CALL INZA.DROP_MODEL('model=m1')")
        assert len(db.models) == 0


class TestQuotedParameters:
    """Satellite of the UDA PR: quoted values may carry commas/equals."""

    def test_single_quoted_value_with_commas(self):
        assert parse_parameter_string("incolumn='A,B,C', k=4") == {
            "incolumn": "A,B,C",
            "k": "4",
        }

    def test_double_quoted_value_with_equals(self):
        assert parse_parameter_string('expr="a=b,c", x=1') == {
            "expr": "a=b,c",
            "x": "1",
        }

    def test_doubled_quote_escapes_literal_quote(self):
        assert parse_parameter_string("msg='it''s fine'") == {
            "msg": "it's fine"
        }

    def test_unterminated_quote_rejected(self):
        with pytest.raises(ProcedureError, match="unterminated quote"):
            parse_parameter_string("incolumn='A,B")

    def test_malformed_still_rejected_outside_quotes(self):
        with pytest.raises(ProcedureError, match="malformed parameter"):
            parse_parameter_string("a=1, nonsense")

    def test_comma_separated_column_list_through_procedure(self):
        from repro.workloads import create_churn_table

        db = AcceleratedDatabase(slice_count=2, chunk_rows=128)
        conn = db.connect()
        create_churn_table(conn, count=120, accelerate=True)
        conn.execute(
            "CALL INZA.KMEANS('intable=CHURN, outtable=Q_OUT, id=CUST_ID, "
            "k=2, model=QM, incolumn=''TENURE_MONTHS,MONTHLY_CHARGES''')"
        )
        assert db.models.get("QM").features == [
            "TENURE_MONTHS",
            "MONTHLY_CHARGES",
        ]


class TestModelStoreEdgeCases:
    def test_retrain_overwrite_bumps_generation(self):
        store = ModelStore()
        store.register(Model(name="M", kind="KMEANS", features=["A"]))
        first = store.get("M").generation
        store.register(
            Model(name="M", kind="KMEANS", features=["A", "B"]),
            replace=True,
        )
        assert store.get("M").generation > first
        assert store.get("M").features == ["A", "B"]

    def test_drop_bumps_store_generation(self):
        store = ModelStore()
        store.register(Model(name="M", kind="KMEANS", features=[]))
        generation = store._generation
        store.drop("M")
        assert store._generation > generation

    def test_training_metadata_defaults(self):
        model = Model(name="M", kind="LINREG", features=[])
        assert model.rows_trained == 0
        assert model.epochs_trained == 0
        assert model.trained_generation == 0

    def test_owner_can_read(self):
        from repro.errors import AuthorizationError

        store = ModelStore()
        model = Model(name="M", kind="KMEANS", features=[], owner="ALICE")
        store.register(model)
        store.check_access(model, "ALICE", is_admin=False)
        store.check_access(model, "ANYONE", is_admin=True)
        with pytest.raises(AuthorizationError, match="lacks READ on model M"):
            store.check_access(model, "BOB", is_admin=False)

    def test_retrain_updates_training_metadata(self):
        from repro.workloads import create_churn_table

        db = AcceleratedDatabase(slice_count=2, chunk_rows=128)
        conn = db.connect()
        create_churn_table(conn, count=150, accelerate=True)
        conn.execute(
            "CALL INZA.LINEAR_REGRESSION('intable=CHURN, "
            "target=MONTHLY_CHARGES, model=R, id=CUST_ID, "
            "incolumn=TENURE_MONTHS')"
        )
        model = db.models.get("R")
        assert model.rows_trained == 150
        assert model.epochs_trained == 2
        generation = model.generation
        conn.execute(
            "CALL INZA.LINEAR_REGRESSION('intable=CHURN, "
            "target=MONTHLY_CHARGES, model=R, id=CUST_ID, "
            "incolumn=SUPPORT_CALLS')"
        )
        assert db.models.get("R").generation > generation


class TestModelMonitoring:
    @pytest.fixture
    def conn(self):
        from repro.workloads import create_churn_table

        db = AcceleratedDatabase(slice_count=2, chunk_rows=128)
        connection = db.connect()
        create_churn_table(connection, count=150, accelerate=True)
        connection.execute(
            "CALL INZA.KMEANS('intable=CHURN, outtable=KM_OUT, id=CUST_ID, "
            "k=2, model=SEG, incolumn=TENURE_MONTHS;MONTHLY_CHARGES')"
        )
        connection.execute(
            "CALL INZA.LINEAR_REGRESSION('intable=CHURN, "
            "target=MONTHLY_CHARGES, model=PRICE, id=CUST_ID, "
            "incolumn=TENURE_MONTHS;SUPPORT_CALLS')"
        )
        return connection

    def test_mon_models_lists_trained_models(self, conn):
        rows = conn.execute(
            "SELECT NAME, KIND, OWNER, TARGET, ROWS_TRAINED, EPOCHS_TRAINED "
            "FROM SYSACCEL.MON_MODELS ORDER BY NAME"
        ).rows
        assert [(r[0], r[1]) for r in rows] == [
            ("PRICE", "LINREG"),
            ("SEG", "KMEANS"),
        ]
        price, seg = rows
        assert price[2] == "SYSADM"
        assert price[3] == "MONTHLY_CHARGES"
        assert price[4] == 150 and seg[4] == 150
        assert price[5] >= 1 and seg[5] >= 1

    def test_mon_models_generations_and_metrics(self, conn):
        row = conn.execute(
            "SELECT GENERATION, TRAINED_GENERATION, METRICS, FEATURES "
            "FROM SYSACCEL.MON_MODELS WHERE NAME = 'PRICE'"
        ).rows[0]
        assert row[0] >= 1
        assert row[1] >= 1
        assert "r_squared=" in row[2]
        assert row[3] == "TENURE_MONTHS, SUPPORT_CALLS"

    def test_accel_get_models(self, conn):
        result = conn.execute("CALL SYSPROC.ACCEL_GET_MODELS('')")
        lines = [row[0] for row in result.rows]
        assert lines[0] == "ACCEL_GET_MODELS: 2 models"
        price = next(line for line in lines if line.startswith("PRICE:"))
        assert "kind=LINREG" in price
        assert "rows=150" in price
        assert "r_squared=" in price
        seg = next(line for line in lines if line.startswith("SEG:"))
        assert "target=-" in seg

    def test_accel_get_models_readable_by_non_admin(self, conn):
        db = conn._system
        db.create_user("BOB")
        conn.execute(
            "GRANT EXECUTE ON PROCEDURE SYSPROC.ACCEL_GET_MODELS TO BOB"
        )
        bob = db.connect("BOB")
        result = bob.execute("CALL SYSPROC.ACCEL_GET_MODELS('')")
        assert result.rows[0][0] == "ACCEL_GET_MODELS: 2 models"

"""Analytics framework plumbing: params, registry, context, model store."""

import pytest

from repro import AcceleratedDatabase
from repro.analytics import Procedure, parse_parameter_string
from repro.analytics.model_store import Model, ModelStore
from repro.errors import (
    DuplicateObjectError,
    ProcedureError,
    UnknownObjectError,
)


class TestParameterParsing:
    def test_basic(self):
        assert parse_parameter_string("intable=T1, k=4") == {
            "intable": "T1",
            "k": "4",
        }

    def test_keys_lowercased_values_kept(self):
        assert parse_parameter_string("InTable=MyTab") == {"intable": "MyTab"}

    def test_whitespace_tolerated(self):
        assert parse_parameter_string("  a = 1 ,  b = x y ") == {
            "a": "1",
            "b": "x y",
        }

    def test_empty_segments_ignored(self):
        assert parse_parameter_string("a=1,,") == {"a": "1"}

    def test_malformed_segment_rejected(self):
        with pytest.raises(ProcedureError):
            parse_parameter_string("a=1, nonsense")

    def test_empty_string(self):
        assert parse_parameter_string("") == {}


class TestRegistry:
    def test_builtins_registered(self):
        db = AcceleratedDatabase()
        names = db.procedures.names()
        assert "INZA.KMEANS" in names
        assert "INZA.NORMALIZE" in names
        assert "INZA.ARULE" in names

    def test_unknown_procedure(self):
        db = AcceleratedDatabase()
        conn = db.connect()
        with pytest.raises(UnknownObjectError):
            conn.execute("CALL INZA.NO_SUCH_PROC('a=1')")

    def test_custom_procedure_registration(self):
        db = AcceleratedDatabase()

        def handler(ctx):
            return f"hello {ctx.require('name')}"

        db.procedures.register(
            Procedure(
                name="APP.HELLO",
                handler=handler,
                description="test proc",
                input_params=(),
                output_params=(),
            )
        )
        conn = db.connect()
        result = conn.execute("CALL APP.HELLO('name=world')")
        assert result.message == "hello world"

    def test_call_argument_must_be_string(self):
        db = AcceleratedDatabase()
        conn = db.connect()
        with pytest.raises(ProcedureError):
            conn.execute("CALL INZA.KMEANS(42)")

    def test_context_helpers(self):
        db = AcceleratedDatabase()

        captured = {}

        def handler(ctx):
            captured["int"] = ctx.get_int("k", 3)
            captured["float"] = ctx.get_float("f", 0.5)
            captured["cols"] = ctx.column_list("incolumn")
            captured["missing"] = ctx.get("nope")
            ctx.log("a detail line")
            return "ok"

        db.procedures.register(
            Procedure("APP.P", handler, input_params=(), output_params=())
        )
        conn = db.connect()
        result = conn.execute("CALL APP.P('k=7, f=1.5, incolumn=A;B ;c')")
        assert captured == {
            "int": 7,
            "float": 1.5,
            "cols": ["A", "B", "C"],
            "missing": None,
        }
        assert ("a detail line",) in result.rows

    def test_bad_int_parameter(self):
        db = AcceleratedDatabase()

        def handler(ctx):
            ctx.get_int("k")
            return "ok"

        db.procedures.register(
            Procedure("APP.P", handler, input_params=(), output_params=())
        )
        conn = db.connect()
        with pytest.raises(ProcedureError):
            conn.execute("CALL APP.P('k=banana')")

    def test_require_missing_parameter(self):
        db = AcceleratedDatabase()

        def handler(ctx):
            ctx.require("intable")
            return "ok"

        db.procedures.register(
            Procedure("APP.P", handler, input_params=(), output_params=())
        )
        conn = db.connect()
        with pytest.raises(ProcedureError):
            conn.execute("CALL APP.P('other=1')")


class TestModelStore:
    def test_register_get_drop(self):
        store = ModelStore()
        store.register(Model(name="m1", kind="KMEANS", features=["A"]))
        assert store.get("M1").kind == "KMEANS"
        assert "m1" in store
        store.drop("m1")
        assert "m1" not in store

    def test_duplicate_without_replace(self):
        store = ModelStore()
        store.register(Model(name="m1", kind="KMEANS", features=[]))
        with pytest.raises(DuplicateObjectError):
            store.register(Model(name="M1", kind="LINREG", features=[]))

    def test_replace(self):
        store = ModelStore()
        store.register(Model(name="m1", kind="KMEANS", features=[]))
        store.register(
            Model(name="m1", kind="LINREG", features=[]), replace=True
        )
        assert store.get("m1").kind == "LINREG"

    def test_unknown_model(self):
        with pytest.raises(UnknownObjectError):
            ModelStore().get("GHOST")
        with pytest.raises(UnknownObjectError):
            ModelStore().drop("GHOST")

    def test_list_models_procedure(self):
        db = AcceleratedDatabase()
        db.models.register(Model(name="m1", kind="KMEANS", features=[]))
        conn = db.connect()
        result = conn.execute("CALL INZA.LIST_MODELS()")
        assert result.message == "MODELS: 1"

    def test_drop_model_procedure(self):
        db = AcceleratedDatabase()
        db.models.register(Model(name="m1", kind="KMEANS", features=[]))
        conn = db.connect()
        conn.execute("CALL INZA.DROP_MODEL('model=m1')")
        assert len(db.models) == 0

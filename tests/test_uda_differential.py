"""Differential tests: unified-aggregate trainers vs. legacy fits.

The PR that introduced ``repro.analytics.uda`` refactored every trainer
onto the shared ModelAggregate contract.  These tests prove the refactor
is numerically faithful: for each workload and each trainer, the model
produced through ``CALL INZA.*`` (which now runs the epoch driver, with
partition-parallel scans at ``workers=4``) must match what the untouched
reference implementations (``kmeans_fit``, ``linreg_fit``, ...) compute
on the same matrix — exactly for counts, trees, and assignments, and
within 1e-9 for floating-point parameters.
"""

import numpy as np
import pytest

from repro import AcceleratedDatabase, IdaaLoader, IterableSource
from repro.analytics.decision_tree import decision_tree_fit, decision_tree_predict
from repro.analytics.framework import ProcedureContext
from repro.analytics.kmeans import kmeans_fit
from repro.analytics.naive_bayes import naive_bayes_fit
from repro.analytics.regression import linreg_fit
from repro.workloads import SOCIAL_COLUMNS, create_churn_table, generate_posts
from repro.workloads.socialmedia import SOCIAL_DDL
from repro.workloads.starschema import create_star_schema

WORKERS = (1, 4)


def make_system(workers: int) -> AcceleratedDatabase:
    db = AcceleratedDatabase(
        slice_count=2, chunk_rows=64, parallel_workers=workers
    )
    # Real deployments only fan out over big tables; the tests use small
    # ones, so drop the floor to force the partitioned path at workers=4.
    db.accelerator.parallel_min_rows = 64
    return db


def reference_frame(db, conn, table, feature_columns, label_column=None):
    """The exact matrix/labels the legacy procedures would have read."""
    ctx = ProcedureContext(db, conn, {})
    matrix = ctx.read_matrix(table, feature_columns)
    labels = (
        ctx.read_labels(table, label_column) if label_column else None
    )
    return matrix, labels


def assert_parallel_path(db, workers):
    """workers=4 must actually have exercised partitioned training."""
    if db.accelerator_pool is not None:
        # A sharded pool only offers unordered (per-shard) plans, which
        # the epoch driver declines: training must stay numerically
        # identical at every shard count, so it runs sequentially.
        assert db.accelerator.parallel_scans == 0
    elif workers > 1:
        assert db.accelerator.parallel_scans > 0
    else:
        assert db.accelerator.parallel_scans == 0


def assert_same_tree(a, b):
    assert a.prediction == b.prediction
    assert a.confidence == b.confidence
    assert a.feature == b.feature
    assert a.threshold == b.threshold
    assert a.is_leaf == b.is_leaf
    if not a.is_leaf:
        assert_same_tree(a.left, b.left)
        assert_same_tree(a.right, b.right)


@pytest.fixture(params=WORKERS)
def workers(request):
    return request.param


class TestChurnWorkload:
    FEATURES = ["TENURE_MONTHS", "MONTHLY_CHARGES", "SUPPORT_CALLS"]

    @pytest.fixture
    def setup(self, workers):
        db = make_system(workers)
        conn = db.connect()
        create_churn_table(conn, count=600, accelerate=True)
        return db, conn

    def test_kmeans_identical(self, setup, workers):
        db, conn = setup
        conn.execute(
            "CALL INZA.KMEANS('intable=CHURN, outtable=KM_OUT, id=CUST_ID, "
            "k=4, randseed=7, model=KM_CHURN, "
            "incolumn=TENURE_MONTHS;MONTHLY_CHARGES;SUPPORT_CALLS')"
        )
        matrix, __ = reference_frame(db, conn, "CHURN", self.FEATURES)
        reference = kmeans_fit(matrix, 4, seed=7)
        model = db.models.get("KM_CHURN")
        np.testing.assert_allclose(
            model.payload["centroids"], reference.centroids,
            rtol=1e-9, atol=1e-12,
        )
        assert model.metrics["iterations"] == reference.iterations
        assert model.metrics["inertia"] == pytest.approx(
            reference.inertia, rel=1e-9
        )
        out = conn.execute(
            "SELECT cust_id, cluster_id, distance FROM km_out ORDER BY cust_id"
        ).rows
        assert [r[1] for r in out] == [
            int(c) for c in reference.assignments
        ]
        np.testing.assert_allclose(
            np.array([r[2] for r in out]), reference.distances,
            rtol=1e-9, atol=1e-12,
        )
        assert_parallel_path(db, workers)

    def test_kmeans_sequential_bitwise(self, setup, workers):
        if workers != 1:
            pytest.skip("bitwise identity is a sequential-path guarantee")
        db, conn = setup
        conn.execute(
            "CALL INZA.KMEANS('intable=CHURN, outtable=KB_OUT, id=CUST_ID, "
            "k=3, randseed=3, model=KM_BITS, "
            "incolumn=TENURE_MONTHS;MONTHLY_CHARGES;SUPPORT_CALLS')"
        )
        matrix, __ = reference_frame(db, conn, "CHURN", self.FEATURES)
        reference = kmeans_fit(matrix, 3, seed=3)
        model = db.models.get("KM_BITS")
        assert np.array_equal(model.payload["centroids"], reference.centroids)
        assert model.metrics["inertia"] == reference.inertia

    def test_linreg_identical(self, setup, workers):
        db, conn = setup
        conn.execute(
            "CALL INZA.LINEAR_REGRESSION('intable=CHURN, "
            "target=MONTHLY_CHARGES, model=LR_CHURN, id=CUST_ID, "
            "incolumn=TENURE_MONTHS;SUPPORT_CALLS;CONTRACT_MONTHS')"
        )
        matrix, __ = reference_frame(
            db, conn, "CHURN",
            ["TENURE_MONTHS", "SUPPORT_CALLS", "CONTRACT_MONTHS"],
        )
        target, __ = reference_frame(db, conn, "CHURN", ["MONTHLY_CHARGES"])
        reference = linreg_fit(matrix, target[:, 0])
        model = db.models.get("LR_CHURN")
        assert model.payload["intercept"] == pytest.approx(
            reference.intercept, rel=1e-9, abs=1e-9
        )
        np.testing.assert_allclose(
            model.payload["coefficients"], reference.coefficients,
            rtol=1e-9, atol=1e-9,
        )
        assert model.metrics["r_squared"] == pytest.approx(
            reference.r_squared, rel=1e-9, abs=1e-9
        )
        assert model.metrics["rmse"] == pytest.approx(
            reference.rmse, rel=1e-9
        )
        assert_parallel_path(db, workers)

    def test_naive_bayes_identical(self, setup, workers):
        db, conn = setup
        conn.execute(
            "CALL INZA.NAIVEBAYES('intable=CHURN, class=CHURNED, "
            "model=NB_CHURN, id=CUST_ID, incolumn=TENURE_MONTHS;"
            "MONTHLY_CHARGES;SUPPORT_CALLS;CONTRACT_MONTHS')"
        )
        matrix, labels = reference_frame(
            db, conn, "CHURN",
            ["TENURE_MONTHS", "MONTHLY_CHARGES", "SUPPORT_CALLS",
             "CONTRACT_MONTHS"],
            label_column="CHURNED",
        )
        reference = naive_bayes_fit(matrix, labels)
        fit = db.models.get("NB_CHURN").payload["fit"]
        assert fit.classes == reference.classes
        np.testing.assert_array_equal(fit.priors, reference.priors)
        np.testing.assert_allclose(
            fit.means, reference.means, rtol=1e-9, atol=1e-12
        )
        np.testing.assert_allclose(
            fit.variances, reference.variances, rtol=1e-9, atol=1e-12
        )
        assert fit.training_accuracy == reference.training_accuracy
        assert_parallel_path(db, workers)

    def test_decision_tree_identical(self, setup, workers):
        db, conn = setup
        conn.execute(
            "CALL INZA.DECTREE('intable=CHURN, class=CHURNED, "
            "model=DT_CHURN, id=CUST_ID, maxdepth=5, incolumn=TENURE_MONTHS;"
            "MONTHLY_CHARGES;SUPPORT_CALLS;CONTRACT_MONTHS')"
        )
        matrix, labels = reference_frame(
            db, conn, "CHURN",
            ["TENURE_MONTHS", "MONTHLY_CHARGES", "SUPPORT_CALLS",
             "CONTRACT_MONTHS"],
            label_column="CHURNED",
        )
        reference = decision_tree_fit(matrix, labels, max_depth=5)
        model = db.models.get("DT_CHURN")
        assert_same_tree(model.payload["root"], reference)
        predictions, __ = decision_tree_predict(matrix, reference)
        accuracy = sum(
            p == t for p, t in zip(predictions, labels)
        ) / len(labels)
        assert model.metrics["training_accuracy"] == accuracy
        assert_parallel_path(db, workers)


class TestStarSchemaWorkload:
    @pytest.fixture
    def setup(self, workers):
        db = make_system(workers)
        conn = db.connect()
        create_star_schema(
            conn, customers=80, products=30, transactions=700
        )
        return db, conn

    def test_kmeans_on_fact_table(self, setup, workers):
        db, conn = setup
        conn.execute(
            "CALL INZA.KMEANS('intable=TRANSACTIONS, outtable=TX_SEG, "
            "id=T_ID, k=3, randseed=11, model=KM_TX, "
            "incolumn=T_QUANTITY;T_AMOUNT')"
        )
        matrix, __ = reference_frame(
            db, conn, "TRANSACTIONS", ["T_QUANTITY", "T_AMOUNT"]
        )
        reference = kmeans_fit(matrix, 3, seed=11)
        model = db.models.get("KM_TX")
        np.testing.assert_allclose(
            model.payload["centroids"], reference.centroids,
            rtol=1e-9, atol=1e-12,
        )
        assert model.metrics["iterations"] == reference.iterations
        assert_parallel_path(db, workers)

    def test_linreg_amount_from_quantity(self, setup, workers):
        db, conn = setup
        conn.execute(
            "CALL INZA.LINEAR_REGRESSION('intable=TRANSACTIONS, "
            "target=T_AMOUNT, model=LR_TX, id=T_ID, incolumn=T_QUANTITY')"
        )
        matrix, __ = reference_frame(db, conn, "TRANSACTIONS", ["T_QUANTITY"])
        target, __ = reference_frame(db, conn, "TRANSACTIONS", ["T_AMOUNT"])
        reference = linreg_fit(matrix, target[:, 0])
        model = db.models.get("LR_TX")
        assert model.payload["intercept"] == pytest.approx(
            reference.intercept, rel=1e-9, abs=1e-9
        )
        np.testing.assert_allclose(
            model.payload["coefficients"], reference.coefficients,
            rtol=1e-9, atol=1e-9,
        )
        assert model.metrics["rmse"] == pytest.approx(
            reference.rmse, rel=1e-9
        )
        assert_parallel_path(db, workers)


class TestSocialMediaWorkload:
    @pytest.fixture
    def setup(self, workers):
        db = make_system(workers)
        conn = db.connect()
        conn.execute(SOCIAL_DDL)
        IdaaLoader(db, batch_size=200).load(
            IterableSource(list(generate_posts(500)), SOCIAL_COLUMNS),
            "SOCIAL_POSTS",
            conn,
        )
        return db, conn

    def test_naive_bayes_topic_from_engagement(self, setup, workers):
        db, conn = setup
        conn.execute(
            "CALL INZA.NAIVEBAYES('intable=SOCIAL_POSTS, class=TOPIC, "
            "model=NB_SOCIAL, id=POST_ID, incolumn=SENTIMENT;LIKES')"
        )
        matrix, labels = reference_frame(
            db, conn, "SOCIAL_POSTS", ["SENTIMENT", "LIKES"],
            label_column="TOPIC",
        )
        reference = naive_bayes_fit(matrix, labels)
        fit = db.models.get("NB_SOCIAL").payload["fit"]
        assert fit.classes == reference.classes
        np.testing.assert_array_equal(fit.priors, reference.priors)
        np.testing.assert_allclose(
            fit.means, reference.means, rtol=1e-9, atol=1e-12
        )
        np.testing.assert_allclose(
            fit.variances, reference.variances, rtol=1e-9, atol=1e-12
        )
        assert fit.training_accuracy == reference.training_accuracy
        assert_parallel_path(db, workers)

    def test_decision_tree_exact_structure(self, setup, workers):
        db, conn = setup
        conn.execute(
            "CALL INZA.DECTREE('intable=SOCIAL_POSTS, class=TOPIC, "
            "model=DT_SOCIAL, id=POST_ID, maxdepth=4, "
            "incolumn=SENTIMENT;LIKES')"
        )
        matrix, labels = reference_frame(
            db, conn, "SOCIAL_POSTS", ["SENTIMENT", "LIKES"],
            label_column="TOPIC",
        )
        reference = decision_tree_fit(matrix, labels, max_depth=4)
        model = db.models.get("DT_SOCIAL")
        assert_same_tree(model.payload["root"], reference)
        assert_parallel_path(db, workers)


class TestTrainingTelemetry:
    def test_epochs_metrics_and_profiler_rows(self):
        db = make_system(1)
        conn = db.connect()
        create_churn_table(conn, count=200, accelerate=True)
        before = db.metrics.counter("analytics.epochs").value
        conn.execute(
            "CALL INZA.NAIVEBAYES('intable=CHURN, class=CHURNED, "
            "model=NB_T, id=CUST_ID, incolumn=TENURE_MONTHS')"
        )
        # counts + ssd + accuracy epochs
        assert db.metrics.counter("analytics.epochs").value == before + 3
        model = db.models.get("NB_T")
        assert model.epochs_trained == 3
        assert model.rows_trained == 200
        profiles = [
            p for p in db.profiler.profiles()
            if p.fingerprint == "TRAIN:NAIVEBAYES:CHURN"
        ]
        assert profiles
        assert [op.operator for op in profiles[-1].operators] == [
            "TrainEpoch"
        ] * 3
        assert all(op.actual_rows == 200 for op in profiles[-1].operators)

    def test_train_spans_emitted(self):
        db = make_system(1)
        conn = db.connect()
        create_churn_table(conn, count=150, accelerate=True)
        conn.execute(
            "CALL INZA.KMEANS('intable=CHURN, outtable=S_OUT, id=CUST_ID, "
            "k=2, incolumn=TENURE_MONTHS;MONTHLY_CHARGES')"
        )
        names = [
            name
            for trace in db.tracer.traces()
            for name in trace.span_names()
        ]
        assert "proc.call" in names
        assert "analytics.train" in names
        assert names.count("analytics.epoch") >= 3


class TestLogisticSGD:
    """The SGD trainer added with the scale-out PR: sequential passes
    must match a straight-line SGD oracle bit-for-bit, the parallel path
    must converge via row-weighted model averaging, and the merge rule
    itself is proved directly on hand-built per-shard states."""

    EPOCHS = 10
    RATE = 0.5

    @pytest.fixture
    def setup(self, workers):
        db = make_system(workers)
        conn = db.connect()
        conn.execute(
            "CREATE TABLE PTS (ID INTEGER NOT NULL, X1 DOUBLE, "
            "X2 DOUBLE, Y INTEGER) IN ACCELERATOR"
        )
        rng = np.random.RandomState(11)
        x1 = rng.normal(0.0, 1.0, 400)
        x2 = rng.normal(0.0, 1.0, 400)
        label = (x1 + 2.0 * x2 + rng.normal(0.0, 0.3, 400) > 0).astype(int)
        values = ", ".join(
            f"({i}, {float(x1[i])}, {float(x2[i])}, {int(label[i])})"
            for i in range(400)
        )
        conn.execute(f"INSERT INTO PTS VALUES {values}")
        return db, conn

    def _train(self, conn):
        return conn.execute(
            "CALL INZA.LOGISTIC_REGRESSION('intable=PTS, target=Y, "
            "model=LR, id=ID, incolumn=X1;X2, "
            f"epochs={self.EPOCHS}, rate={self.RATE}')"
        )

    def test_model_matches_reference(self, setup, workers):
        from repro.analytics.logistic import logreg_sgd_reference, sigmoid

        db, conn = setup
        self._train(conn)
        assert_parallel_path(db, workers)
        model = db.models.get("LR")
        matrix, labels = reference_frame(db, conn, "PTS", ["X1", "X2"], "Y")
        target = np.array(labels, dtype=np.float64)
        reference = logreg_sgd_reference(
            matrix, target, epochs=self.EPOCHS, rate=self.RATE
        )
        if workers == 1:
            # Sequential layout-order SGD: bitwise-equal to the oracle.
            assert model.payload["intercept"] == reference[0]
            np.testing.assert_array_equal(
                model.payload["coefficients"], reference[1:]
            )
        else:
            # Partition-parallel training averages per-partition model
            # replicas; exact floats differ from sequential SGD but the
            # fitted separator must agree with the oracle's labels.
            ref_probs = sigmoid(reference[0] + matrix @ reference[1:])
            own_probs = sigmoid(
                model.payload["intercept"]
                + matrix @ np.asarray(model.payload["coefficients"])
            )
            agreement = ((ref_probs >= 0.5) == (own_probs >= 0.5)).mean()
            assert agreement >= 0.95
        assert model.metrics["accuracy"] >= 0.9

    def test_predict_expression_matches_procedure(self, setup, workers):
        db, conn = setup
        self._train(conn)
        conn.execute(
            "CALL INZA.PREDICT_LOGISTIC_REGRESSION('model=LR, "
            "intable=PTS, outtable=LR_OUT, id=ID')"
        )
        proc_rows = conn.execute(
            "SELECT id, probability FROM lr_out ORDER BY id"
        ).rows
        expr_rows = conn.execute(
            "SELECT id, PREDICT(LR, x1, x2) FROM pts ORDER BY id"
        ).rows
        assert proc_rows == expr_rows

    def test_merge_is_row_weighted_average(self):
        from repro.analytics.logistic import LogisticSGDAggregate

        aggregate = LogisticSGDAggregate(2, epochs=1)
        a = {"weights": np.array([1.0, 2.0, 3.0]), "rows": 30}
        b = {"weights": np.array([5.0, 6.0, 7.0]), "rows": 10}
        merged = aggregate.merge(a, b)
        np.testing.assert_allclose(
            merged["weights"],
            (np.array([1.0, 2.0, 3.0]) * 30 + np.array([5.0, 6.0, 7.0]) * 10)
            / 40,
        )
        assert merged["rows"] == 40
        # An empty shard (weight zero) cannot drag the model toward its
        # untouched seed replica.
        before = merged["weights"].copy()
        empty = {"weights": np.zeros(3), "rows": 0}
        merged = aggregate.merge(merged, empty)
        np.testing.assert_array_equal(merged["weights"], before)
        # Scoring-phase states merge by plain summation.
        aggregate.phase = "score"
        scored = aggregate.merge(
            {"log_loss": 1.0, "correct": 10, "rows": 20},
            {"log_loss": 2.0, "correct": 5, "rows": 10},
        )
        assert scored == {"log_loss": 3.0, "correct": 15, "rows": 30}

    def test_rejects_non_binary_target(self, setup, workers):
        from repro.errors import AnalyticsError

        __, conn = setup
        with pytest.raises(AnalyticsError, match="0/1"):
            conn.execute(
                "CALL INZA.LOGISTIC_REGRESSION('intable=PTS, target=X1, "
                "model=BAD, id=ID, incolumn=X2')"
            )

"""Query-processing edge cases, exercised on BOTH engines.

Each case runs the same SQL against a DB2-resident table and the
accelerated copy (acceleration ALL) and asserts identical results — the
transparency property under awkward inputs.
"""

import pytest

from repro import AcceleratedDatabase


@pytest.fixture
def db():
    return AcceleratedDatabase(slice_count=2, chunk_rows=16)


@pytest.fixture
def conn(db):
    connection = db.connect()
    connection.execute(
        "CREATE TABLE E (ID INTEGER NOT NULL PRIMARY KEY, "
        "G VARCHAR(4), V DOUBLE)"
    )
    rows = []
    for i in range(40):
        group = "NULL" if i % 7 == 0 else f"'g{i % 3}'"
        value = "NULL" if i % 5 == 0 else str(float(i))
        rows.append(f"({i}, {group}, {value})")
    connection.execute(f"INSERT INTO E VALUES {', '.join(rows)}")
    connection.execute("CREATE TABLE EMPTY (A INTEGER, B VARCHAR(4))")
    db.add_table_to_accelerator("E")
    db.add_table_to_accelerator("EMPTY")
    return connection


def both(conn, sql):
    conn.set_acceleration("NONE")
    db2 = conn.execute(sql)
    assert db2.engine == "DB2"
    conn.set_acceleration("ALL")
    accel = conn.execute(sql)
    assert accel.engine == "ACCELERATOR"
    assert accel.columns == db2.columns
    return db2.rows, accel.rows


def both_equal(conn, sql, ordered=False):
    db2, accel = both(conn, sql)
    if ordered:
        assert accel == db2, sql
    else:
        assert sorted(map(repr, accel)) == sorted(map(repr, db2)), sql
    return db2


class TestEmptyInputs:
    def test_scan_empty_table(self, conn):
        assert both_equal(conn, "SELECT * FROM empty") == []

    def test_aggregates_over_empty_table(self, conn):
        rows = both_equal(
            conn, "SELECT COUNT(*), COUNT(a), SUM(a), AVG(a), MIN(a) FROM empty"
        )
        assert rows == [(0, 0, None, None, None)]

    def test_group_by_over_empty_table(self, conn):
        assert both_equal(
            conn, "SELECT b, COUNT(*) FROM empty GROUP BY b"
        ) == []

    def test_join_with_empty_side(self, conn):
        assert both_equal(
            conn, "SELECT e.id FROM e JOIN empty ON e.id = empty.a"
        ) == []

    def test_left_join_with_empty_right(self, conn):
        rows = both_equal(
            conn,
            "SELECT e.id, empty.b FROM e LEFT JOIN empty "
            "ON e.id = empty.a WHERE e.id < 3 ORDER BY e.id",
            ordered=True,
        )
        assert rows == [(0, None), (1, None), (2, None)]

    def test_empty_in_subquery(self, conn):
        assert both_equal(
            conn, "SELECT id FROM e WHERE id IN (SELECT a FROM empty)"
        ) == []

    def test_not_exists_on_empty(self, conn):
        rows = both_equal(
            conn,
            "SELECT COUNT(*) FROM e WHERE EXISTS (SELECT 1 FROM empty)",
        )
        assert rows == [(0,)]


class TestLimitsAndOffsets:
    def test_limit_zero(self, conn):
        assert both_equal(conn, "SELECT id FROM e LIMIT 0") == []

    def test_offset_beyond_end(self, conn):
        assert both_equal(
            conn, "SELECT id FROM e ORDER BY id OFFSET 999 ROWS", ordered=True
        ) == []

    def test_limit_larger_than_table(self, conn):
        rows = both_equal(
            conn, "SELECT id FROM e ORDER BY id LIMIT 9999", ordered=True
        )
        assert len(rows) == 40

    def test_offset_without_limit(self, conn):
        rows = both_equal(
            conn, "SELECT id FROM e ORDER BY id OFFSET 38 ROWS", ordered=True
        )
        assert rows == [(38,), (39,)]


class TestNullHandling:
    def test_group_by_null_forms_one_group(self, conn):
        rows = both_equal(
            conn, "SELECT g, COUNT(*) FROM e GROUP BY g"
        )
        null_groups = [r for r in rows if r[0] is None]
        assert len(null_groups) == 1
        assert null_groups[0][1] == 6  # ids 0,7,14,21,28,35

    def test_order_by_nulls_high(self, conn):
        rows = both_equal(
            conn,
            "SELECT id, v FROM e ORDER BY v, id LIMIT 40",
            ordered=True,
        )
        values = [r[1] for r in rows]
        non_null = [v for v in values if v is not None]
        assert non_null == sorted(non_null)
        assert all(v is None for v in values[len(non_null):])

    def test_where_null_comparison_filters(self, conn):
        rows = both_equal(conn, "SELECT COUNT(*) FROM e WHERE v = v")
        # NULL = NULL is NULL → filtered (8 rows have NULL v).
        assert rows == [(32,)]

    def test_count_distinct_ignores_nulls(self, conn):
        # g cycles g0/g1/g2 with every 7th row NULL: 3 distinct values,
        # NULLs not counted.
        rows = both_equal(conn, "SELECT COUNT(DISTINCT g) FROM e")
        assert rows == [(3,)]

    def test_sum_of_all_null_group(self, conn):
        conn.set_acceleration("ALL")
        conn.execute(
            "CREATE TABLE NULLGRP (K INTEGER, V DOUBLE) IN ACCELERATOR"
        )
        conn.execute("INSERT INTO NULLGRP VALUES (1, NULL), (1, NULL)")
        rows = conn.execute(
            "SELECT k, SUM(v), COUNT(v) FROM nullgrp GROUP BY k"
        ).rows
        assert rows == [(1, None, 0)]


class TestJoinsAndNesting:
    def test_self_join(self, conn):
        rows = both_equal(
            conn,
            "SELECT a.id FROM e a JOIN e b ON a.id = b.id + 1 "
            "WHERE b.id < 3 ORDER BY a.id",
            ordered=True,
        )
        assert rows == [(1,), (2,), (3,)]

    def test_three_way_join(self, conn):
        rows = both_equal(
            conn,
            "SELECT COUNT(*) FROM e a JOIN e b ON a.id = b.id "
            "JOIN e c ON b.id = c.id",
        )
        assert rows == [(40,)]

    def test_nested_derived_tables(self, conn):
        rows = both_equal(
            conn,
            "SELECT t2.n FROM (SELECT t1.g AS gg, COUNT(*) AS n FROM "
            "(SELECT g FROM e WHERE g IS NOT NULL) AS t1 "
            "GROUP BY t1.g) AS t2 ORDER BY t2.n DESC",
            ordered=True,
        )
        assert sum(r[0] for r in rows) == 34

    def test_join_on_expression(self, conn):
        rows = both_equal(
            conn,
            "SELECT COUNT(*) FROM e a JOIN e b ON a.id + 1 = b.id",
        )
        assert rows == [(39,)]

    def test_cross_join_count(self, conn):
        rows = both_equal(
            conn,
            "SELECT COUNT(*) FROM e a CROSS JOIN e b "
            "WHERE a.id < 5 AND b.id < 5",
        )
        assert rows == [(25,)]

    def test_non_equi_join(self, conn):
        rows = both_equal(
            conn,
            "SELECT COUNT(*) FROM e a JOIN e b ON a.id < b.id "
            "WHERE a.id < 4 AND b.id < 4",
        )
        assert rows == [(6,)]


class TestExpressionsInQueries:
    def test_case_in_group_by(self, conn):
        rows = both_equal(
            conn,
            "SELECT CASE WHEN id < 20 THEN 'lo' ELSE 'hi' END AS bucket, "
            "COUNT(*) FROM e GROUP BY CASE WHEN id < 20 THEN 'lo' "
            "ELSE 'hi' END ORDER BY bucket",
            ordered=True,
        )
        assert rows == [("hi", 20), ("lo", 20)]

    def test_arithmetic_in_aggregate(self, conn):
        both_equal(conn, "SELECT SUM(v * 2 + 1) FROM e")

    def test_aggregate_of_aggregate_rejected(self, conn):
        from repro.errors import ParseError

        conn.set_acceleration("NONE")
        with pytest.raises(ParseError):
            conn.execute("SELECT SUM(COUNT(*)) FROM e")

    def test_having_without_group_by(self, conn):
        rows = both_equal(
            conn, "SELECT COUNT(*) FROM e HAVING COUNT(*) > 100"
        )
        assert rows == []

    def test_distinct_on_expression(self, conn):
        rows = both_equal(conn, "SELECT DISTINCT id % 4 FROM e ORDER BY 1",
                          ordered=True)
        assert rows == [(0,), (1,), (2,), (3,)]

    def test_concat_and_functions(self, conn):
        both_equal(
            conn,
            "SELECT UPPER(COALESCE(g, 'none')) || '-' || "
            "CAST(id AS VARCHAR(4)) FROM e ORDER BY id LIMIT 5",
            ordered=True,
        )


class TestMonitoring:
    def test_statement_history_records(self, db, conn):
        before = len(db.statement_history)
        conn.execute("SELECT COUNT(*) FROM e")
        assert len(db.statement_history) == before + 1
        record = db.statement_history[-1]
        assert record.statement_type == "Select"
        assert record.engine in ("DB2", "ACCELERATOR")
        assert record.elapsed_seconds >= 0

    def test_history_procedure(self, db, conn):
        conn.execute("SELECT 1")
        result = conn.execute(
            "CALL SYSPROC.ACCEL_GET_QUERY_HISTORY('limit=3')"
        )
        assert "ACCEL_GET_QUERY_HISTORY" in result.message
        assert len(result.rows) >= 2

    def test_failed_statements_not_recorded(self, db, conn):
        before = len(db.statement_history)
        with pytest.raises(Exception):
            conn.execute("SELECT * FROM nonexistent")
        assert len(db.statement_history) == before

"""PREDICT(model, features...) — in-kernel scoring in the query path."""

import numpy as np
import pytest

from repro import AcceleratedDatabase
from repro.analytics.model_store import Model
from repro.errors import (
    AnalyticsError,
    AuthorizationError,
    UnknownObjectError,
)
from repro.workloads import create_churn_table


@pytest.fixture
def db():
    return AcceleratedDatabase(slice_count=2, chunk_rows=256)


@pytest.fixture
def conn(db):
    connection = db.connect()
    create_churn_table(connection, count=300, accelerate=True)
    connection.execute(
        "CALL INZA.KMEANS('intable=CHURN, outtable=KM_OUT, id=CUST_ID, "
        "k=3, model=SEG, incolumn=TENURE_MONTHS;MONTHLY_CHARGES')"
    )
    connection.execute(
        "CALL INZA.LINEAR_REGRESSION('intable=CHURN, "
        "target=MONTHLY_CHARGES, model=PRICE, id=CUST_ID, "
        "incolumn=TENURE_MONTHS;SUPPORT_CALLS')"
    )
    return connection


def run_on(conn, engine, sql):
    conn.set_acceleration("ALL" if engine == "ACCELERATOR" else "NONE")
    try:
        return conn.execute(sql)
    finally:
        conn.set_acceleration("ALL")


class TestProjectionsAndPredicates:
    def test_projection_matches_training_assignments(self, conn):
        rows = conn.execute(
            "SELECT cust_id, PREDICT(SEG, tenure_months, monthly_charges) "
            "FROM churn ORDER BY cust_id"
        ).rows
        trained = conn.execute(
            "SELECT cust_id, cluster_id FROM km_out ORDER BY cust_id"
        ).rows
        assert [(r[0], r[1]) for r in rows] == [
            (t[0], t[1]) for t in trained
        ]

    def test_where_predicate(self, conn):
        total = conn.execute("SELECT COUNT(*) FROM churn").scalar()
        counts = [
            conn.execute(
                "SELECT COUNT(*) FROM churn WHERE "
                f"PREDICT(SEG, tenure_months, monthly_charges) = {cluster}"
            ).scalar()
            for cluster in range(3)
        ]
        assert sum(counts) == total
        assert all(count > 0 for count in counts)

    def test_regression_scores_in_expression(self, db, conn):
        row = conn.execute(
            "SELECT PREDICT(PRICE, tenure_months, support_calls) "
            "FROM churn WHERE cust_id = 1"
        ).scalar()
        model = db.models.get("PRICE")
        feature_row = conn.execute(
            "SELECT tenure_months, support_calls FROM churn WHERE cust_id = 1"
        ).rows[0]
        expected = model.payload["intercept"] + float(
            np.dot(
                model.payload["coefficients"],
                np.array(feature_row, dtype=np.float64),
            )
        )
        assert row == pytest.approx(expected, rel=1e-12)

    def test_both_engines_byte_identical(self, conn):
        sql = (
            "SELECT cust_id, PREDICT(SEG, tenure_months, monthly_charges), "
            "PREDICT(PRICE, tenure_months, support_calls) "
            "FROM churn WHERE PREDICT(SEG, tenure_months, monthly_charges) "
            ">= 1 ORDER BY cust_id"
        )
        accelerated = run_on(conn, "ACCELERATOR", sql)
        db2 = run_on(conn, "DB2", sql)
        assert accelerated.rows == db2.rows
        for left, right in zip(accelerated.rows, db2.rows):
            assert type(left[1]) is type(right[1])
            assert type(left[2]) is type(right[2])


class TestNullsAndErrors:
    def test_null_feature_yields_null(self, db, conn):
        db.models.register(
            Model(
                name="TOTALSEG",
                kind="LINREG",
                features=["TOTAL_CHARGES"],
                payload={
                    "intercept": 1.0,
                    "coefficients": np.array([2.0]),
                },
                owner="SYSADM",
            ),
            replace=True,
        )
        nulls = conn.execute(
            "SELECT COUNT(*) FROM churn WHERE total_charges IS NULL"
        ).scalar()
        assert nulls > 0
        predicted_nulls = conn.execute(
            "SELECT COUNT(*) FROM churn "
            "WHERE PREDICT(TOTALSEG, total_charges) IS NULL"
        ).scalar()
        assert predicted_nulls == nulls

    def test_unknown_model(self, conn):
        with pytest.raises(UnknownObjectError):
            conn.execute("SELECT PREDICT(NOPE, tenure_months) FROM churn")

    def test_wrong_arity(self, conn):
        with pytest.raises(AnalyticsError, match="expects 2 feature"):
            conn.execute("SELECT PREDICT(SEG, tenure_months) FROM churn")

    def test_unscorable_model_kind(self, db, conn):
        db.models.register(
            Model(name="RULES", kind="ARULE", features=["X"], owner="SYSADM"),
            replace=True,
        )
        with pytest.raises(AnalyticsError, match="cannot be scored"):
            conn.execute("SELECT PREDICT(RULES, tenure_months) FROM churn")

    def test_non_numeric_feature_rejected(self, db, conn):
        conn.execute("CREATE TABLE WORDS (W VARCHAR(8))")
        conn.execute("INSERT INTO WORDS VALUES ('a'), ('b')")
        db.add_table_to_accelerator("WORDS")
        with pytest.raises(Exception, match="must be numeric"):
            conn.execute("SELECT PREDICT(PRICE, w, w) FROM words")


class TestRetrainInvalidation:
    def test_retrain_is_visible_through_cached_kernels(self, db, conn):
        sql = (
            "SELECT SUM(PREDICT(PRICE, tenure_months, support_calls)) "
            "FROM churn"
        )
        before = conn.execute(sql).scalar()
        generation_before = db.models.get("PRICE").generation
        # Retrain on a different feature set: same name, new parameters.
        conn.execute(
            "CALL INZA.LINEAR_REGRESSION('intable=CHURN, "
            "target=MONTHLY_CHARGES, model=PRICE, id=CUST_ID, "
            "incolumn=TENURE_MONTHS;CONTRACT_MONTHS')"
        )
        assert db.models.get("PRICE").generation > generation_before
        after = conn.execute(sql).scalar()
        assert after != before

    def test_dropped_model_fails_cleanly(self, db, conn):
        sql = "SELECT PREDICT(SEG, tenure_months, monthly_charges) FROM churn"
        conn.execute(sql)
        db.models.drop("SEG")
        with pytest.raises(UnknownObjectError):
            conn.execute(sql)


class TestModelPrivileges:
    def test_non_owner_cannot_score(self, db, conn):
        db.create_user("ANALYST")
        conn.execute("GRANT SELECT ON CHURN TO ANALYST")
        analyst = db.connect("ANALYST")
        with pytest.raises(AuthorizationError, match="lacks READ on model"):
            analyst.execute(
                "SELECT PREDICT(SEG, tenure_months, monthly_charges) "
                "FROM churn"
            )

    def test_owner_and_admin_can_score(self, db, conn):
        db.create_user("ANALYST")
        conn.execute("GRANT SELECT ON CHURN TO ANALYST")
        conn.execute("GRANT EXECUTE ON PROCEDURE INZA.KMEANS TO ANALYST")
        analyst = db.connect("ANALYST")
        analyst.execute(
            "CALL INZA.KMEANS('intable=CHURN, outtable=A_OUT, id=CUST_ID, "
            "k=2, model=MINE, incolumn=TENURE_MONTHS;MONTHLY_CHARGES')"
        )
        assert analyst.execute(
            "SELECT COUNT(*) FROM churn "
            "WHERE PREDICT(MINE, tenure_months, monthly_charges) = 0"
        ).scalar() > 0
        # The admin may read any model regardless of ownership.
        assert conn.execute(
            "SELECT COUNT(*) FROM churn "
            "WHERE PREDICT(MINE, tenure_months, monthly_charges) = 0"
        ).scalar() > 0

"""End-to-end tracing, metrics registry, and monitoring views."""

import pytest

from repro.errors import ProcedureError, SqlError
from repro.federation.system import AcceleratedDatabase
from repro.obs import MetricsRegistry, Tracer
from repro.obs.export import (
    collect_metrics,
    export_json,
    statement_breakdown,
    trace_phase_breakdown,
    trace_to_dict,
)


def make_db(**kwargs):
    defaults = dict(offload_row_threshold=0, cooldown_seconds=3600.0)
    defaults.update(kwargs)
    return AcceleratedDatabase(**defaults)


def accelerated_items(db, rows=6):
    conn = db.connect()
    conn.execute("CREATE TABLE ITEMS (ID INTEGER, G INTEGER, V DOUBLE)")
    values = ", ".join(f"({i}, {i % 2}, {float(i)})" for i in range(rows))
    conn.execute(f"INSERT INTO ITEMS VALUES {values}")
    db.add_table_to_accelerator("ITEMS")
    return conn


class TestTracer:
    def test_offloaded_query_span_tree(self):
        """One offloaded SELECT yields parse, route, accelerator execute,
        and interconnect send phases under a single statement root."""
        db = make_db()
        conn = accelerated_items(db)
        conn.execute("SELECT G, COUNT(*) FROM ITEMS GROUP BY G")
        trace = db.tracer.last()
        names = trace.span_names()
        for phase in (
            "statement",
            "parse",
            "route",
            "accelerator.execute",
            "interconnect.send",
        ):
            assert phase in names
        root = trace.root
        assert root.name == "statement"
        assert root.depth == 0
        assert root.attributes["engine"] == "ACCELERATOR"
        assert root.attributes["rows"] == 2
        # Children link to the root; depths reflect nesting.
        for span in trace.spans[1:]:
            assert span.parent_id is not None
            assert span.depth >= 1
        (route,) = trace.find_spans("route")
        assert route.attributes["engine"] == "ACCELERATOR"
        (execute,) = trace.find_spans("accelerator.execute")
        assert execute.attributes["rows"] == 2
        assert execute.attributes["rows_scanned"] == 6

    def test_db2_query_traced(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.set_acceleration("NONE")
        conn.execute("SELECT COUNT(*) FROM ITEMS")
        trace = db.tracer.last()
        assert "db2.execute" in trace.span_names()
        assert trace.root.attributes["engine"] == "DB2"

    def test_deterministic_ids(self):
        def run():
            db = make_db()
            conn = accelerated_items(db)
            conn.execute("SELECT COUNT(*) FROM ITEMS")
            trace = db.tracer.last()
            return trace.trace_id, [s.span_id for s in trace.spans]

        assert run() == run()

    def test_span_ids_belong_to_trace(self):
        db = make_db()
        conn = db.connect()
        conn.execute("CREATE TABLE T (A INTEGER)")
        trace = db.tracer.last()
        for span in trace.spans:
            assert span.span_id.startswith(trace.trace_id + ".")

    def test_disabled_tracer_retains_nothing(self):
        db = make_db(tracing_enabled=False)
        conn = accelerated_items(db)
        result = conn.execute("SELECT COUNT(*) FROM ITEMS")
        assert result.rows == [(6,)]
        assert db.tracer.traces() == []
        # Statement history still works, just without trace ids.
        assert db.statement_history[-1].trace_id == ""

    def test_ring_retention_bound(self):
        db = make_db(trace_retention=5)
        conn = db.connect()
        conn.execute("CREATE TABLE T (A INTEGER)")
        for i in range(12):
            conn.execute(f"INSERT INTO T VALUES ({i})")
        assert len(db.tracer.traces()) == 5
        # Newest retained trace is the most recent statement's.
        assert db.tracer.last().trace_id == db.statement_history[-1].trace_id

    def test_error_span_on_fault_injection(self):
        """An injected link fault marks its interconnect span ERROR.

        The commit-time auto-drain retries then abandons the batch
        without failing the committed statement, so the fault surfaces
        only in the trace (and in the drain's monitoring row).
        """
        db = make_db()
        conn = accelerated_items(db)
        with db.faults.forced("interconnect"):
            conn.execute("INSERT INTO ITEMS VALUES (100, 0, 1.0)")
        trace = db.tracer.last()
        (drain,) = trace.find_spans("replication.drain")
        assert drain.attributes["outcome"] == "failed"
        error_spans = [
            span
            for trace in db.tracer.traces()
            for span in trace.spans
            if span.status == "ERROR"
        ]
        assert error_spans
        assert any("injected link error" in s.attributes.get("error", "")
                   for s in error_spans)

    def test_failback_span_and_counter(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.set_acceleration("ENABLE WITH FAILBACK")
        with db.faults.forced("accelerator", kind="crash"):
            result = conn.execute("SELECT COUNT(*) FROM ITEMS")
        assert result.engine == "DB2"
        trace = db.tracer.last()
        failbacks = trace.find_spans("failback")
        assert failbacks
        assert "crash" in failbacks[0].attributes["reason"]
        assert db.metrics.counter("statement.failbacks").value >= 1

    def test_replication_drain_annotations(self):
        db = make_db(auto_replicate=False)
        conn = accelerated_items(db)
        conn.execute("INSERT INTO ITEMS VALUES (50, 0, 5.0)")
        assert db.replication.backlog > 0
        applied = db.replication.drain()
        assert applied == 1
        trace = db.tracer.last()
        assert trace.root.name == "replication.drain"
        attrs = trace.root.attributes
        assert attrs["outcome"] == "ok"
        assert attrs["applied"] == 1
        assert attrs["batches"] == 1

    def test_nested_traces_under_explicit_txn(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.execute("BEGIN")
        conn.execute("INSERT INTO ITEMS VALUES (7, 1, 7.0)")
        conn.execute("COMMIT")
        # COMMIT's trace contains the commit-time replication drain.
        trace = db.tracer.last()
        assert trace.root.attributes["statement"] == "Commit"
        assert "replication.drain" in trace.span_names()


class TestMonitoringViews:
    def test_mon_spans_select(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.execute("SELECT G, COUNT(*) FROM ITEMS GROUP BY G")
        trace_id = db.tracer.last().trace_id
        rows = conn.query(
            "SELECT NAME, STATUS FROM SYSACCEL.MON_SPANS "
            "WHERE TRACE_ID = ? ORDER BY SPAN_ID",
            [trace_id],
        )
        names = [name for name, _ in rows]
        assert names[0] == "statement"
        assert "accelerator.execute" in names
        assert all(status == "OK" for _, status in rows)

    def test_mon_spans_group_by(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.execute("SELECT COUNT(*) FROM ITEMS")
        rows = conn.query(
            "SELECT NAME, COUNT(*) AS N FROM SYSACCEL.MON_SPANS "
            "GROUP BY NAME ORDER BY NAME"
        )
        counts = dict(rows)
        assert counts["statement"] >= 1
        assert counts["parse"] >= 1

    def test_mon_statements_links_to_trace(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.execute("SELECT COUNT(*) FROM ITEMS")
        rows = conn.query(
            "SELECT TRACE_ID, ENGINE, ROW_COUNT FROM SYSACCEL.MON_STATEMENTS "
            "WHERE STATEMENT_TYPE = 'Select'"
        )
        assert rows
        trace_id, engine, row_count = rows[-1]
        assert engine == "ACCELERATOR"
        assert row_count == 1
        assert db.tracer.find(trace_id) is not None

    def test_mon_replication_rows(self):
        db = make_db(auto_replicate=False)
        conn = accelerated_items(db)
        conn.execute("INSERT INTO ITEMS VALUES (60, 0, 6.0)")
        db.replication.drain()
        rows = conn.query(
            "SELECT OUTCOME, RECORDS_APPLIED, BACKLOG_BEFORE, BACKLOG_AFTER "
            "FROM SYSACCEL.MON_REPLICATION WHERE OUTCOME = 'ok'"
        )
        assert ("ok", 1, 1, 0) in rows

    def test_monitoring_query_is_traced_and_recorded(self):
        db = make_db()
        conn = db.connect()
        conn.execute("SELECT COUNT(*) FROM SYSACCEL.MON_SPANS")
        assert conn.last_decision == "monitoring view"
        assert db.statement_history[-1].engine == "DB2"
        assert "monitor.query" in db.tracer.last().span_names()

    def test_monitoring_views_need_no_grant(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.execute("SELECT COUNT(*) FROM ITEMS")
        db.create_user("BOB")
        bob = db.connect("BOB")
        rows = bob.query("SELECT COUNT(*) FROM SYSACCEL.MON_STATEMENTS")
        assert rows[0][0] >= 1

    def test_mixing_with_base_tables_rejected(self):
        db = make_db()
        conn = accelerated_items(db)
        with pytest.raises(SqlError, match="monitoring views"):
            conn.query("SELECT * FROM SYSACCEL.MON_SPANS, ITEMS")

    def test_explain_monitoring_view(self):
        db = make_db()
        conn = db.connect()
        plan = conn.explain("SELECT * FROM SYSACCEL.MON_REPLICATION")
        assert plan["engine"] == "DB2"
        assert plan["tables"] == {
            "SYSACCEL.MON_REPLICATION": "MONITORING VIEW"
        }


class TestAdminProcedures:
    def test_accel_get_trace_renders_tree(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.execute("SELECT COUNT(*) FROM ITEMS")
        trace_id = db.tracer.last().trace_id
        result = conn.execute(
            f"CALL SYSPROC.ACCEL_GET_TRACE('trace={trace_id}')"
        )
        text = "\n".join(row[0] for row in result.rows)
        assert trace_id in text
        assert "accelerator.execute" in text

    def test_accel_get_trace_unknown_id(self):
        db = make_db()
        conn = db.connect()
        with pytest.raises(ProcedureError, match="no retained trace"):
            conn.execute("CALL SYSPROC.ACCEL_GET_TRACE('trace=T999999')")

    def test_accel_get_metrics_prefix_filter(self):
        db = make_db()
        conn = accelerated_items(db)
        conn.execute("SELECT COUNT(*) FROM ITEMS")
        result = conn.execute(
            "CALL SYSPROC.ACCEL_GET_METRICS('prefix=statement.engine')"
        )
        lines = [row[0] for row in result.rows]
        assert any(line.startswith("statement.engine.accelerator")
                   for line in lines)
        assert all(line.startswith("statement.engine")
                   for line in lines if "=" in line)


class TestMetricsPrimitives:
    def test_counter_gauge(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(2.5)
        collected = registry.collect()
        assert collected["c"] == 5
        assert collected["g"] == 2.5

    def test_histogram_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in range(1, 101):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p99"] == pytest.approx(99.01)

    def test_histogram_window_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", window=10)
        for value in range(1000):
            hist.observe(value)
        # Exact totals survive; percentiles only see the window.
        assert hist.count == 1000
        assert hist.percentile(0) == 990.0

    def test_sources_flattened(self):
        registry = MetricsRegistry()
        registry.register_source("src", lambda: {"a": 1, "b": "text"})
        collected = registry.collect()
        assert collected["src.a"] == 1
        assert collected["src.b"] == "text"
        assert registry.source_names() == ["src"]

    def test_system_registers_sources(self):
        db = make_db()
        names = db.metrics.source_names()
        for expected in (
            "accelerator",
            "health",
            "interconnect",
            "replication",
        ):
            assert expected in names
        collected = db.metrics.collect()
        assert collected["health.state"] == "ONLINE"
        assert collected["replication.backlog"] == 0


class TestExport:
    def test_trace_round_trip(self, tmp_path):
        db = make_db()
        conn = accelerated_items(db)
        conn.execute("SELECT COUNT(*) FROM ITEMS")
        trace = db.tracer.last()
        payload = trace_to_dict(trace)
        assert payload["trace_id"] == trace.trace_id
        assert len(payload["spans"]) == len(trace.spans)
        phases = trace_phase_breakdown(trace)
        assert phases["interconnect.send"]["bytes"] > 0
        merged = statement_breakdown(db)
        assert merged["statement"]["count"] >= 1
        assert "mean_ms" in merged["statement"]
        metrics = collect_metrics(db)
        assert metrics["traces.retained"] == len(db.tracer.traces())
        target = export_json(tmp_path / "out" / "obs.json", payload)
        assert target.exists()
        assert trace.trace_id in target.read_text()

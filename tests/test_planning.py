"""Planner utilities: range extraction, canonicalisation, conjuncts."""

import pytest

from repro.sql import ast, parse_statement
from repro.sql.expressions import Scope
from repro.sql.planning import (
    canonicalize,
    extract_column_ranges,
    references_only,
    split_conjuncts,
)

SCOPE = Scope([("T", "A"), ("T", "B"), ("T", "S")])
BINDINGS = {0: "A", 1: "B"}  # S is non-numeric: no ranges


def where_of(sql_condition):
    return parse_statement(f"SELECT 1 FROM t WHERE {sql_condition}").where


class TestExtractColumnRanges:
    def ranges(self, condition):
        return extract_column_ranges(where_of(condition), SCOPE, BINDINGS)

    def test_simple_bounds(self):
        assert self.ranges("a > 5") == {"A": (5.0, None)}
        assert self.ranges("a < 5") == {"A": (None, 5.0)}
        assert self.ranges("a >= 5 AND a <= 9") == {"A": (5.0, 9.0)}

    def test_equality_pins_both_bounds(self):
        assert self.ranges("a = 7") == {"A": (7.0, 7.0)}

    def test_flipped_comparison(self):
        assert self.ranges("5 < a") == {"A": (5.0, None)}
        assert self.ranges("9 >= a") == {"A": (None, 9.0)}

    def test_between(self):
        assert self.ranges("a BETWEEN 2 AND 4") == {"A": (2.0, 4.0)}

    def test_not_between_contributes_nothing(self):
        assert self.ranges("a NOT BETWEEN 2 AND 4") == {}

    def test_negative_literals(self):
        assert self.ranges("a > -5") == {"A": (-5.0, None)}

    def test_multiple_columns(self):
        result = self.ranges("a > 1 AND b < 2")
        assert result == {"A": (1.0, None), "B": (None, 2.0)}

    def test_tightest_bound_wins(self):
        assert self.ranges("a > 1 AND a > 5") == {"A": (5.0, None)}
        assert self.ranges("a < 9 AND a < 3") == {"A": (None, 3.0)}

    def test_or_contributes_nothing(self):
        assert self.ranges("a > 5 OR b > 1") == {}

    def test_or_beside_and_keeps_and_part(self):
        assert self.ranges("a > 5 AND (b > 1 OR s = 'x')") == {
            "A": (5.0, None)
        }

    def test_non_literal_side_ignored(self):
        assert self.ranges("a > b") == {}

    def test_unmapped_column_ignored(self):
        # S is not in the binding map (non-numeric).
        assert self.ranges("s = 'x'") == {}

    def test_none_where(self):
        assert extract_column_ranges(None, SCOPE, BINDINGS) == {}


class TestSplitConjuncts:
    def test_flattens_nested_ands(self):
        parts = split_conjuncts(where_of("a > 1 AND b > 2 AND s = 'x'"))
        assert len(parts) == 3

    def test_or_is_one_conjunct(self):
        assert len(split_conjuncts(where_of("a > 1 OR b > 2"))) == 1

    def test_none(self):
        assert split_conjuncts(None) == []


class TestCanonicalize:
    def expr(self, text):
        return parse_statement(f"SELECT {text} FROM t").select_items[0].expression

    def test_qualified_and_bare_refs_match(self):
        assert canonicalize(self.expr("t.a + 1"), SCOPE) == canonicalize(
            self.expr("a + 1"), SCOPE
        )

    def test_different_columns_differ(self):
        assert canonicalize(self.expr("a"), SCOPE) != canonicalize(
            self.expr("b"), SCOPE
        )

    def test_structure_matters(self):
        assert canonicalize(self.expr("a + b"), SCOPE) != canonicalize(
            self.expr("b + a"), SCOPE
        )

    def test_case_expressions_compare(self):
        first = canonicalize(
            self.expr("CASE WHEN a > 1 THEN b ELSE 0 END"), SCOPE
        )
        second = canonicalize(
            self.expr("CASE WHEN t.a > 1 THEN t.b ELSE 0 END"), SCOPE
        )
        assert first == second


class TestReferencesOnly:
    def test_contained(self):
        assert references_only(self.make("a + b"), SCOPE)

    def test_not_contained(self):
        assert not references_only(self.make("a + zzz"), SCOPE)

    def test_star_never_contained(self):
        assert not references_only(ast.Star(), SCOPE)

    def test_literals_always_contained(self):
        assert references_only(self.make("1 + 2"), Scope([]))

    @staticmethod
    def make(text):
        return parse_statement(f"SELECT {text} FROM t").select_items[0].expression

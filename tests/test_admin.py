"""SYSPROC administration procedures, GROOM, SET register, explain."""

import pytest

from repro import AcceleratedDatabase
from repro.errors import AuthorizationError, ProcedureError, SqlError


@pytest.fixture
def db():
    return AcceleratedDatabase(slice_count=2, chunk_rows=64)


@pytest.fixture
def conn(db):
    connection = db.connect()
    connection.execute(
        "CREATE TABLE T (ID INTEGER NOT NULL PRIMARY KEY, V DOUBLE)"
    )
    rows = ", ".join(f"({i}, {float(i)})" for i in range(200))
    connection.execute(f"INSERT INTO T VALUES {rows}")
    return connection


class TestAccelAddRemove:
    def test_add_tables_via_call(self, db, conn):
        result = conn.execute("CALL SYSPROC.ACCEL_ADD_TABLES('tables=T')")
        assert "200 rows copied" in result.message
        assert db.catalog.table("T").is_accelerated

    def test_add_multiple_tables(self, db, conn):
        conn.execute("CREATE TABLE U (A INTEGER)")
        result = conn.execute(
            "CALL SYSPROC.ACCEL_ADD_TABLES('tables=T;U')"
        )
        assert db.catalog.table("U").is_accelerated
        assert "ACCEL_ADD_TABLES ok" in result.message

    def test_remove_tables_via_call(self, db, conn):
        conn.execute("CALL SYSPROC.ACCEL_ADD_TABLES('tables=T')")
        conn.execute("CALL SYSPROC.ACCEL_REMOVE_TABLES('tables=T')")
        assert not db.catalog.table("T").is_accelerated

    def test_requires_admin(self, db, conn):
        db.create_user("PLEB")
        pleb = db.connect("PLEB")
        with pytest.raises(AuthorizationError):
            pleb.execute("CALL SYSPROC.ACCEL_ADD_TABLES('tables=T')")

    def test_missing_tables_parameter(self, conn):
        with pytest.raises(ProcedureError):
            conn.execute("CALL SYSPROC.ACCEL_ADD_TABLES('')")

    def test_get_tables_info(self, db, conn):
        conn.execute("CALL SYSPROC.ACCEL_ADD_TABLES('tables=T')")
        result = conn.execute("CALL SYSPROC.ACCEL_GET_TABLES_INFO('')")
        lines = [row[0] for row in result.rows]
        assert any("T: location=ACCELERATED" in line for line in lines)


class TestAccelLoadTables:
    def test_reload_refreshes_stale_copy(self, db, conn):
        db.auto_replicate = False
        conn.execute("CALL SYSPROC.ACCEL_ADD_TABLES('tables=T')")
        conn.execute("UPDATE t SET v = 0")  # copy is now stale
        conn.set_acceleration("ALL")
        assert conn.execute("SELECT SUM(v) FROM t").scalar() != 0
        conn.execute("CALL SYSPROC.ACCEL_LOAD_TABLES('tables=T')")
        assert conn.execute("SELECT SUM(v) FROM t").scalar() == 0

    def test_reload_resets_replication_cursor(self, db, conn):
        db.auto_replicate = False
        conn.execute("CALL SYSPROC.ACCEL_ADD_TABLES('tables=T')")
        conn.execute("UPDATE t SET v = 1")
        conn.execute("CALL SYSPROC.ACCEL_LOAD_TABLES('tables=T')")
        # Draining the (pre-reload) backlog must not double-apply.
        db.replication.drain()
        conn.set_acceleration("ALL")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 200

    def test_reload_of_non_accelerated_table_fails(self, conn):
        from repro.errors import UnknownObjectError

        with pytest.raises(UnknownObjectError):
            conn.execute("CALL SYSPROC.ACCEL_LOAD_TABLES('tables=T')")


class TestGroom:
    def test_groom_reclaims_deleted_rows(self, db, conn):
        conn.execute("CREATE TABLE A (ID INTEGER, V DOUBLE) IN ACCELERATOR")
        rows = ", ".join(f"({i}, 1.0)" for i in range(300))
        conn.execute(f"INSERT INTO A VALUES {rows}")
        conn.execute("DELETE FROM a WHERE id < 200")
        table = db.accelerator.storage_for("A")
        result = conn.execute("CALL SYSPROC.ACCEL_GROOM_TABLES('tables=A')")
        assert "200 rows reclaimed" in result.message
        fresh = db.accelerator.storage_for("A")
        assert fresh.row_count == 100
        # Physical footprint shrank: no dead rows in any chunk.
        total_physical = sum(len(c) for _, c in fresh.iter_chunks())
        assert total_physical == 100

    def test_groom_preserves_answers(self, db, conn):
        conn.execute("CREATE TABLE A (ID INTEGER, V DOUBLE) IN ACCELERATOR")
        rows = ", ".join(f"({i}, {float(i)})" for i in range(100))
        conn.execute(f"INSERT INTO A VALUES {rows}")
        conn.execute("DELETE FROM a WHERE id % 2 = 0")
        before = conn.execute("SELECT SUM(v), COUNT(*) FROM a").rows
        conn.execute("CALL SYSPROC.ACCEL_GROOM_TABLES('tables=A')")
        after = conn.execute("SELECT SUM(v), COUNT(*) FROM a").rows
        assert before == after

    def test_groom_preserves_row_ids_for_later_dml(self, db, conn):
        conn.execute("CREATE TABLE A (ID INTEGER, V DOUBLE) IN ACCELERATOR")
        conn.execute("INSERT INTO A VALUES (1, 1.0), (2, 2.0), (3, 3.0)")
        conn.execute("DELETE FROM a WHERE id = 2")
        conn.execute("CALL SYSPROC.ACCEL_GROOM_TABLES('tables=A')")
        assert conn.execute("DELETE FROM a WHERE id = 3").rowcount == 1
        assert conn.execute("UPDATE a SET v = 9 WHERE id = 1").rowcount == 1
        assert conn.execute("SELECT v FROM a").rows == [(9.0,)]

    def test_groom_merges_trickle_chunks(self, db, conn):
        conn.execute("CREATE TABLE A (ID INTEGER) IN ACCELERATOR")
        for i in range(20):  # 20 single-row inserts → 20 tiny chunks
            conn.execute(f"INSERT INTO A VALUES ({i})")
        table = db.accelerator.storage_for("A")
        chunks_before = table.total_chunk_count
        stats = db.accelerator.groom("A")
        assert stats.chunks_after < chunks_before
        assert conn.execute("SELECT COUNT(*) FROM a").scalar() == 20


class TestControlAccelerator:
    def test_replicate_action_drains(self, db, conn):
        db.auto_replicate = False
        conn.execute("CALL SYSPROC.ACCEL_ADD_TABLES('tables=T')")
        conn.execute("UPDATE t SET v = -1 WHERE id < 5")
        assert db.replication.backlog == 5
        result = conn.execute(
            "CALL SYSPROC.ACCEL_CONTROL_ACCELERATOR('action=replicate')"
        )
        assert "5 changes applied" in result.message
        assert db.replication.backlog == 0

    def test_status_action(self, db, conn):
        result = conn.execute(
            "CALL SYSPROC.ACCEL_CONTROL_ACCELERATOR('action=status')"
        )
        assert any("backlog" in row[0] for row in result.rows)

    def test_unknown_action(self, conn):
        with pytest.raises(ProcedureError):
            conn.execute(
                "CALL SYSPROC.ACCEL_CONTROL_ACCELERATOR('action=explode')"
            )


class TestSetRegister:
    def test_set_acceleration_via_sql(self, db, conn):
        conn.execute("CALL SYSPROC.ACCEL_ADD_TABLES('tables=T')")
        conn.execute("SET CURRENT QUERY ACCELERATION = ALL")
        assert conn.execute("SELECT COUNT(*) FROM t").engine == "ACCELERATOR"
        conn.execute("SET CURRENT QUERY ACCELERATION = NONE")
        assert conn.execute("SELECT COUNT(*) FROM t").engine == "DB2"

    def test_set_is_case_insensitive(self, conn):
        conn.execute("SET CURRENT QUERY ACCELERATION = enable")
        assert conn.acceleration.value == "ENABLE"

    def test_unknown_register(self, conn):
        with pytest.raises(SqlError):
            conn.execute("SET CURRENT FUNNY_REGISTER = 1")

    def test_unknown_mode(self, conn):
        from repro.errors import UnknownObjectError

        with pytest.raises(UnknownObjectError):
            conn.execute("SET CURRENT QUERY ACCELERATION = TURBO")


class TestExplain:
    def test_explain_query(self, db, conn):
        conn.execute("CALL SYSPROC.ACCEL_ADD_TABLES('tables=T')")
        plan = conn.explain("SELECT COUNT(*) FROM t")
        assert plan["engine"] == "ACCELERATOR"
        assert plan["tables"] == {"T": "ACCELERATED"}

    def test_explain_point_lookup(self, db, conn):
        conn.execute("CALL SYSPROC.ACCEL_ADD_TABLES('tables=T')")
        plan = conn.explain("SELECT v FROM t WHERE id = 3")
        assert plan["engine"] == "DB2"
        assert "point lookup" in plan["reason"]

    def test_explain_does_not_execute(self, db, conn):
        queries_before = db.accelerator.queries_executed
        conn.explain("SELECT COUNT(*) FROM t")
        assert db.accelerator.queries_executed == queries_before

    def test_explain_dml(self, db, conn):
        conn.execute("CREATE TABLE A (ID INTEGER) IN ACCELERATOR")
        plan = conn.explain("INSERT INTO A VALUES (1)")
        assert plan["engine"] == "ACCELERATOR"
        assert plan["statement"] == "INSERT"

    def test_explain_call_and_ddl(self, conn):
        assert conn.explain("CALL INZA.LIST_MODELS()")["engine"] == "ACCELERATOR"
        assert conn.explain("DROP TABLE T")["engine"] == "DB2"


class TestExplainStatement:
    def test_explain_select_via_sql(self, db, conn):
        conn.execute("CALL SYSPROC.ACCEL_ADD_TABLES('tables=T')")
        result = conn.execute("EXPLAIN SELECT SUM(v) FROM t")
        plan = dict(result.rows)
        assert plan["ENGINE"] == "ACCELERATOR"
        assert "T=ACCELERATED" in plan["TABLES"]

    def test_explain_point_lookup_via_sql(self, db, conn):
        conn.execute("CALL SYSPROC.ACCEL_ADD_TABLES('tables=T')")
        plan = dict(conn.execute("EXPLAIN SELECT v FROM t WHERE id = 1").rows)
        assert plan["ENGINE"] == "DB2"

    def test_explain_does_not_run_the_statement(self, db, conn):
        before = conn.execute("SELECT COUNT(*) FROM t").scalar()
        conn.execute("EXPLAIN DELETE FROM t")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == before

"""SQL type system: coercion, range checks, byte sizing, inference."""

import datetime
import decimal

import numpy as np
import pytest

from repro.errors import TypeError_
from repro.sql.types import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    SMALLINT,
    TIMESTAMP,
    CharType,
    DecimalType,
    VarcharType,
    infer_type,
    type_from_name,
)


class TestIntegers:
    def test_coerce_int(self):
        assert INTEGER.coerce(42) == 42

    def test_coerce_numeric_string(self):
        assert INTEGER.coerce(" 7 ") == 7

    def test_coerce_whole_float(self):
        assert INTEGER.coerce(3.0) == 3

    def test_reject_fractional_float(self):
        with pytest.raises(TypeError_):
            INTEGER.coerce(3.5)

    def test_bool_becomes_int(self):
        assert INTEGER.coerce(True) == 1

    def test_null_passthrough(self):
        assert INTEGER.coerce(None) is None

    def test_integer_range(self):
        assert INTEGER.coerce(2**31 - 1) == 2**31 - 1
        with pytest.raises(TypeError_):
            INTEGER.coerce(2**31)

    def test_smallint_range(self):
        with pytest.raises(TypeError_):
            SMALLINT.coerce(40000)

    def test_bigint_accepts_large(self):
        assert BIGINT.coerce(2**60) == 2**60

    def test_reject_garbage_string(self):
        with pytest.raises(TypeError_):
            INTEGER.coerce("abc")

    def test_numpy_scalars(self):
        assert INTEGER.coerce(np.int64(5)) == 5
        assert isinstance(INTEGER.coerce(np.int64(5)), int)

    def test_byte_sizes(self):
        assert SMALLINT.byte_size(1) == 2
        assert INTEGER.byte_size(1) == 4
        assert BIGINT.byte_size(1) == 8


class TestDouble:
    def test_coerce(self):
        assert DOUBLE.coerce(1) == 1.0
        assert isinstance(DOUBLE.coerce(1), float)
        assert DOUBLE.coerce("2.5") == 2.5
        assert DOUBLE.coerce(decimal.Decimal("1.25")) == 1.25

    def test_reject(self):
        with pytest.raises(TypeError_):
            DOUBLE.coerce("xyz")

    def test_is_numeric(self):
        assert DOUBLE.is_numeric
        assert not VarcharType(5).is_numeric


class TestDecimal:
    def test_quantizes_to_scale(self):
        value = DecimalType(9, 2).coerce("3.14159")
        assert value == decimal.Decimal("3.14")

    def test_rounds_half_up(self):
        assert DecimalType(9, 2).coerce("1.005") == decimal.Decimal("1.01")

    def test_precision_enforced(self):
        with pytest.raises(TypeError_):
            DecimalType(4, 2).coerce("12345.0")

    def test_render(self):
        assert DecimalType(9, 2).render() == "DECIMAL(9, 2)"


class TestStrings:
    def test_varchar_length_enforced(self):
        assert VarcharType(3).coerce("abc") == "abc"
        with pytest.raises(TypeError_):
            VarcharType(3).coerce("abcd")

    def test_varchar_converts_numbers(self):
        assert VarcharType(10).coerce(42) == "42"

    def test_char_pads(self):
        assert CharType(4).coerce("ab") == "ab  "

    def test_char_overflow(self):
        with pytest.raises(TypeError_):
            CharType(2).coerce("abc")

    def test_varchar_byte_size(self):
        assert VarcharType(10).byte_size("abc") == 7  # 4 + len


class TestBoolean:
    @pytest.mark.parametrize("value", [True, 1, "true", "T", "yes", "1"])
    def test_truthy(self, value):
        assert BOOLEAN.coerce(value) is True

    @pytest.mark.parametrize("value", [False, 0, "false", "F", "no", "0"])
    def test_falsy(self, value):
        assert BOOLEAN.coerce(value) is False

    def test_reject(self):
        with pytest.raises(TypeError_):
            BOOLEAN.coerce("maybe")


class TestTemporal:
    def test_date_from_string(self):
        assert DATE.coerce("2016-03-15") == datetime.date(2016, 3, 15)

    def test_date_from_datetime(self):
        assert DATE.coerce(datetime.datetime(2016, 3, 15, 9)) == datetime.date(
            2016, 3, 15
        )

    def test_date_rejects_bad_format(self):
        with pytest.raises(TypeError_):
            DATE.coerce("15/03/2016")

    def test_timestamp_formats(self):
        assert TIMESTAMP.coerce("2016-03-15 10:30:00") == datetime.datetime(
            2016, 3, 15, 10, 30
        )
        assert TIMESTAMP.coerce("2016-03-15") == datetime.datetime(2016, 3, 15)
        assert TIMESTAMP.coerce(
            "2016-03-15 10:30:00.250000"
        ) == datetime.datetime(2016, 3, 15, 10, 30, 0, 250000)

    def test_timestamp_from_date(self):
        assert TIMESTAMP.coerce(datetime.date(2016, 1, 1)) == datetime.datetime(
            2016, 1, 1
        )


class TestTypeResolution:
    def test_simple_names(self):
        assert type_from_name("INTEGER") is INTEGER
        assert type_from_name("int") is INTEGER
        assert type_from_name("FLOAT") is DOUBLE

    def test_parameterized(self):
        assert type_from_name("VARCHAR", (32,)).length == 32
        decimal_type = type_from_name("DECIMAL", (10, 3))
        assert (decimal_type.precision, decimal_type.scale) == (10, 3)

    def test_decimal_defaults(self):
        assert type_from_name("DECIMAL").scale == 0

    def test_unknown_type(self):
        with pytest.raises(TypeError_):
            type_from_name("BLOB")

    def test_simple_type_rejects_params(self):
        with pytest.raises(TypeError_):
            type_from_name("INTEGER", (5,))


class TestInference:
    def test_infer_int(self):
        assert infer_type(5) is INTEGER

    def test_infer_big_int(self):
        assert infer_type(2**40) is BIGINT

    def test_infer_float(self):
        assert infer_type(1.5) is DOUBLE

    def test_infer_bool(self):
        assert infer_type(True) is BOOLEAN

    def test_infer_string_rounds_up(self):
        inferred = infer_type("hello world")
        assert isinstance(inferred, VarcharType)
        assert inferred.length >= len("hello world")

    def test_infer_temporal(self):
        assert infer_type(datetime.date(2016, 1, 1)) is DATE
        assert infer_type(datetime.datetime(2016, 1, 1)) is TIMESTAMP

    def test_infer_rejects_unknown(self):
        with pytest.raises(TypeError_):
            infer_type(object())

"""The shared logical-plan layer: binder, rewriter, and shared helpers.

Three groups of tests:

* plan-shape unit tests — the binder produces the documented operator
  tree and each rewrite rule does (only) what it claims: constant
  folding stays runtime-faithful, predicate pushdown respects outer-join
  preserved sides and never moves subquery-bearing conjuncts, projection
  pruning records the referenced column set on each Scan;
* shared-helper unit tests — the row-shaping helpers both executors now
  delegate to (dedup, slicing, set-op combination, output-scope ORDER
  BY) including the single positional-ORDER-BY range error;
* differential tests — a fixed corpus (NULL-heavy predicates, correlated
  subqueries, USING joins, derived tables) must return identical rows on
  both engines with rewrites on and off, and pushdown must measurably
  reduce the accelerator's ``rows_scanned``.
"""

import dataclasses

import pytest

from repro.accelerator import AcceleratorEngine
from repro.catalog import Catalog, Column, TableLocation, TableSchema
from repro.db2 import Db2Engine
from repro.errors import ParseError, SqlError
from repro.sql import ast, parse_statement
from repro.sql.logical import (
    Aggregate,
    Filter,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
    combine_set_rows,
    dedup_rows,
    order_rows_by_output,
    plan_shape,
    plan_statement,
    slice_rows,
)

# ---------------------------------------------------------------------------
# Plan inspection helpers
# ---------------------------------------------------------------------------


def _plan(sql, rewrite=None):
    return plan_statement(parse_statement(sql), rewrite=rewrite)


def _walk(node):
    if not isinstance(node, PlanNode):
        return
    yield node
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if isinstance(value, PlanNode):
            yield from _walk(value)


def _find(plan, cls):
    return [node for node in _walk(plan) if isinstance(node, cls)]


# ---------------------------------------------------------------------------
# Binder shapes
# ---------------------------------------------------------------------------


class TestBinder:
    def test_select_order_limit_shape(self):
        shape = plan_shape(
            _plan(
                "SELECT a FROM t WHERE b > 1 ORDER BY a LIMIT 2",
                rewrite=False,
            )
        )
        assert shape == "Limit(Sort(Project(Filter(Scan[T]))))"

    def test_constant_select_binds_bare_project(self):
        plan = _plan("SELECT 1, 'x'")
        assert isinstance(plan, Project) and plan.child is None

    def test_aggregate_replaces_project(self):
        plan = _plan("SELECT k, COUNT(*) FROM t GROUP BY k", rewrite=False)
        assert isinstance(plan, Aggregate)
        assert not _find(plan, Project)

    def test_having_without_aggregate_rejected_at_bind(self):
        with pytest.raises(ParseError):
            _plan("SELECT a FROM t HAVING a > 1")

    def test_set_operation_shape(self):
        shape = plan_shape(
            _plan(
                "SELECT a FROM t UNION SELECT b FROM u ORDER BY 1",
                rewrite=False,
            )
        )
        assert shape.startswith("Sort(SetOp[UNION]")


# ---------------------------------------------------------------------------
# Rewrite rules
# ---------------------------------------------------------------------------


class TestRewriter:
    def test_rewrites_enabled_by_default(self):
        from repro.sql import logical

        assert logical.REWRITES_ENABLED is True
        assert plan_shape(_plan("SELECT a FROM t WHERE b > 1")) == (
            "Project(Scan[T(A,B)*])"
        )

    def test_pushdown_absorbs_filter_into_scan(self):
        plan = _plan("SELECT a FROM t WHERE b > 1")
        assert not _find(plan, Filter)
        (scan,) = _find(plan, Scan)
        assert scan.predicate is not None

    def test_no_rewrite_keeps_filter(self):
        plan = _plan("SELECT a FROM t WHERE b > 1", rewrite=False)
        assert _find(plan, Filter)
        (scan,) = _find(plan, Scan)
        assert scan.predicate is None and scan.columns is None

    def test_pushdown_through_derived_table(self):
        plan = _plan(
            "SELECT s.a FROM (SELECT a, b FROM t) AS s WHERE s.b > 1"
        )
        assert not _find(plan, Filter)
        (scan,) = _find(plan, Scan)
        assert scan.predicate is not None

    def test_subquery_conjunct_never_pushed(self):
        plan = _plan("SELECT a FROM t WHERE a IN (SELECT x FROM u)")
        assert _find(plan, Filter)
        scan = next(s for s in _find(plan, Scan) if s.table == "T")
        assert scan.predicate is None

    def test_left_join_pushes_only_preserved_side(self):
        null_side = _plan(
            "SELECT * FROM a LEFT JOIN b ON a.id = b.id WHERE b.x > 1"
        )
        assert _find(null_side, Filter)  # stays above the join
        preserved = _plan(
            "SELECT * FROM a LEFT JOIN b ON a.id = b.id WHERE a.x > 1"
        )
        assert not _find(preserved, Filter)
        scan_a = next(s for s in _find(preserved, Scan) if s.table == "A")
        assert scan_a.predicate is not None

    def test_right_join_mirrors_preserved_side(self):
        plan = _plan(
            "SELECT * FROM a RIGHT JOIN b ON a.id = b.id WHERE b.x > 1"
        )
        assert not _find(plan, Filter)
        scan_b = next(s for s in _find(plan, Scan) if s.table == "B")
        assert scan_b.predicate is not None

    def test_using_join_predicate_pushdown(self):
        plan = _plan(
            "SELECT t.id FROM t JOIN d USING (k) WHERE t.v > 0"
        )
        assert not _find(plan, Filter)
        scan_t = next(s for s in _find(plan, Scan) if s.table == "T")
        assert scan_t.predicate is not None

    def test_projection_pruning_records_referenced_columns(self):
        (scan,) = _find(_plan("SELECT a FROM t WHERE b > 1"), Scan)
        assert scan.columns is not None
        assert set(scan.columns) == {"A", "B"}

    def test_wildcard_disables_pruning(self):
        (scan,) = _find(_plan("SELECT * FROM t WHERE b > 1"), Scan)
        assert scan.columns is None

    def test_count_star_prunes_to_empty_column_set(self):
        (scan,) = _find(_plan("SELECT COUNT(*) FROM t"), Scan)
        assert scan.columns == ()

    def test_constant_false_conjunct_folds(self):
        (scan,) = _find(_plan("SELECT a FROM t WHERE 1 = 0 AND a > 1"), Scan)
        assert isinstance(scan.predicate, ast.Literal)
        assert scan.predicate.value is False

    def test_select_list_constant_folds(self):
        plan = _plan("SELECT 1 + 2 * 3 FROM t")
        project = _find(plan, Project)[0]
        expr = project.select_items[0].expression
        assert isinstance(expr, ast.Literal) and expr.value == 7

    def test_order_by_expression_never_folds_to_positional(self):
        # Folding ORDER BY 1+1 to the literal 2 would silently turn an
        # expression key into a positional reference.
        plan = _plan("SELECT a, b FROM t ORDER BY 1 + 1")
        (sort,) = _find(plan, Sort)
        assert not isinstance(sort.order_by[0].expression, ast.Literal)

    def test_limit_offset_survive_rewrites(self):
        (limit,) = _find(
            _plan("SELECT a FROM t ORDER BY a LIMIT 3 OFFSET 2"), Limit
        )
        assert (limit.offset, limit.limit) == (2, 3)


# ---------------------------------------------------------------------------
# Shared row-shaping helpers
# ---------------------------------------------------------------------------


class TestSharedHelpers:
    def test_dedup_rows_keeps_first_occurrence_order(self):
        assert dedup_rows([(2,), (1,), (2,), (3,), (1,)]) == [
            (2,),
            (1,),
            (3,),
        ]

    def test_slice_rows(self):
        rows = [(i,) for i in range(6)]
        assert slice_rows(rows, None, None) == rows
        assert slice_rows(rows, 2, None) == rows[2:]
        assert slice_rows(rows, None, 3) == rows[:3]
        assert slice_rows(rows, 4, 10) == rows[4:]

    def test_combine_set_rows_semantics(self):
        left = [(1,), (2,), (2,), (3,)]
        right = [(2,), (4,)]
        assert combine_set_rows("UNION ALL", ["A"], left, ["B"], right) == (
            left + right
        )
        assert combine_set_rows("UNION", ["A"], left, ["B"], right) == [
            (1,),
            (2,),
            (3,),
            (4,),
        ]
        assert combine_set_rows("EXCEPT", ["A"], left, ["B"], right) == [
            (1,),
            (3,),
        ]
        assert combine_set_rows("INTERSECT", ["A"], left, ["B"], right) == [
            (2,)
        ]

    def test_combine_set_rows_width_mismatch(self):
        with pytest.raises(SqlError, match="different widths"):
            combine_set_rows("UNION", ["A", "B"], [], ["C"], [])

    def test_order_rows_by_output_positional(self):
        rows = [(2, "b"), (1, "a"), (3, "c")]
        ordered = order_rows_by_output(
            ["N", "S"],
            rows,
            [ast.OrderItem(expression=ast.Literal(1), ascending=False)],
        )
        assert ordered == [(3, "c"), (2, "b"), (1, "a")]

    def test_positional_range_error_message(self):
        with pytest.raises(
            ParseError, match=r"ORDER BY position 4 is out of range"
        ):
            order_rows_by_output(
                ["N"],
                [(1,)],
                [ast.OrderItem(expression=ast.Literal(4), ascending=True)],
            )


# ---------------------------------------------------------------------------
# Differential: rewrites on vs off on both engines
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def engines():
    catalog = Catalog()
    db2 = Db2Engine(catalog)
    accelerator = AcceleratorEngine(catalog, slice_count=2, chunk_rows=32)
    from repro.sql.types import DOUBLE, INTEGER, VarcharType

    t_schema = TableSchema(
        [
            Column("ID", INTEGER, nullable=False),
            Column("K", INTEGER),
            Column("V", DOUBLE),
        ]
    )
    d_schema = TableSchema(
        [Column("K", INTEGER, nullable=False), Column("NAME", VarcharType(8))]
    )
    import random

    rng = random.Random(5)
    t_rows = [
        (
            i,
            None if i % 9 == 0 else rng.randint(0, 5),
            None if i % 6 == 0 else round(rng.uniform(-40, 40), 2),
        )
        for i in range(320)
    ]
    d_rows = [(k, f"name{k}") for k in range(4)]
    for name, schema, rows in (
        ("T", t_schema, t_rows),
        ("D", d_schema, d_rows),
    ):
        descriptor = catalog.create_table(
            name, schema, location=TableLocation.ACCELERATED
        )
        db2.create_storage(descriptor)
        accelerator.create_storage(descriptor)
        coerced = [schema.coerce_row(r) for r in rows]
        txn = db2.txn_manager.begin()
        db2.insert_rows(txn, name, coerced, already_coerced=True)
        db2.commit(txn)
        accelerator.bulk_insert(name, coerced)
    return db2, accelerator


REWRITE_CORPUS = [
    # NULL-heavy predicates (3VL must survive pushdown).
    "SELECT id FROM t WHERE v IS NULL ORDER BY id",
    "SELECT id FROM t WHERE NOT (v > 0) ORDER BY id",
    "SELECT id FROM t WHERE v > 0 OR v IS NULL ORDER BY id LIMIT 20",
    "SELECT COUNT(*) FROM t WHERE COALESCE(v, -1) < 0",
    # Constant folding.
    "SELECT id FROM t WHERE 1 = 1 AND id < 5 ORDER BY id",
    "SELECT id FROM t WHERE 1 = 0 AND id < 5",
    "SELECT id, 1 + 2 * 3 FROM t ORDER BY 2, 1 LIMIT 3",
    "SELECT id FROM t ORDER BY 1 + 0 LIMIT 3",
    # Pushdown through joins, including USING columns.
    "SELECT t.id, d.name FROM t JOIN d USING (k) "
    "WHERE t.v > 0 AND d.name LIKE 'n%' ORDER BY t.id LIMIT 25",
    "SELECT t.id FROM t LEFT JOIN d ON t.k = d.k "
    "WHERE t.v > 0 ORDER BY t.id LIMIT 25",
    "SELECT t.id FROM t RIGHT JOIN d ON t.k = d.k "
    "WHERE d.name = 'name2' ORDER BY t.id LIMIT 25",
    # Derived tables (pushdown + pruning through SubqueryBind).
    "SELECT sub.id FROM (SELECT id, v FROM t) AS sub "
    "WHERE sub.v > 0 ORDER BY sub.id LIMIT 25",
    "SELECT sub.id, sub.w FROM (SELECT id, v * 2 AS w FROM t) AS sub "
    "WHERE sub.w > 10 ORDER BY sub.id LIMIT 25",
    # Correlated subqueries (never pushed, must stay correct).
    "SELECT id FROM t WHERE EXISTS (SELECT 1 FROM d WHERE d.k = t.k) "
    "ORDER BY id LIMIT 25",
    "SELECT id FROM t o WHERE v > (SELECT AVG(i.v) FROM t i "
    "WHERE i.k = o.k) ORDER BY id LIMIT 25",
    # Set operations over rewritten operands.
    "SELECT k FROM t WHERE v > 0 UNION SELECT k FROM d ORDER BY 1",
    "SELECT k FROM t EXCEPT SELECT k FROM d ORDER BY 1",
    "SELECT k FROM t INTERSECT SELECT k FROM d ORDER BY 1",
]


def _run_both(db2, accelerator, stmt, plan):
    txn = db2.txn_manager.begin()
    try:
        __, db2_rows = db2.execute_select(txn, stmt, plan=plan)
    finally:
        db2.commit(txn)
    __, accel_rows = accelerator.execute_select(stmt, plan=plan)
    return db2_rows, accel_rows


@pytest.mark.parametrize("sql", REWRITE_CORPUS, ids=lambda q: q[:60])
def test_rewrites_preserve_results_on_corpus(engines, sql):
    db2, accelerator = engines
    stmt = parse_statement(sql)
    results = {}
    for label, rewrite in (("off", False), ("on", True)):
        plan = plan_statement(stmt, rewrite=rewrite)
        results[label] = _run_both(db2, accelerator, stmt, plan)
    db2_off, accel_off = results["off"]
    db2_on, accel_on = results["on"]
    if getattr(stmt, "order_by", None):
        assert repr(db2_on) == repr(db2_off) == repr(accel_on) == repr(
            accel_off
        ), sql
    else:
        expected = sorted(map(repr, db2_off))
        for rows in (db2_on, accel_off, accel_on):
            assert sorted(map(repr, rows)) == expected, sql


def test_positional_order_error_identical_on_both_engines(engines):
    db2, accelerator = engines
    sql = "SELECT id FROM t ORDER BY 3"
    message = r"ORDER BY position 3 is out of range"
    txn = db2.txn_manager.begin()
    try:
        with pytest.raises(ParseError, match=message):
            db2.execute_select(txn, parse_statement(sql))
    finally:
        db2.commit(txn)
    with pytest.raises(ParseError, match=message):
        accelerator.execute_select(parse_statement(sql))


def test_set_op_width_error_identical_on_both_engines(engines):
    db2, accelerator = engines
    sql = "SELECT id, k FROM t UNION SELECT k FROM d"
    message = r"set operation operands have different widths"
    txn = db2.txn_manager.begin()
    try:
        with pytest.raises(SqlError, match=message):
            db2.execute_select(txn, parse_statement(sql))
    finally:
        db2.commit(txn)
    with pytest.raises(SqlError, match=message):
        accelerator.execute_select(parse_statement(sql))


def test_pushdown_reduces_rows_scanned(engines):
    """Pushing the outer predicate into the derived table's scan lets the
    zone maps skip chunks: fewer rows materialised for the same answer."""
    __, accelerator = engines
    sql = (
        "SELECT sub.id FROM (SELECT id, v FROM t) AS sub "
        "WHERE sub.id > 280 ORDER BY sub.id"
    )
    stmt = parse_statement(sql)

    def scanned(rewrite):
        before = accelerator.rows_scanned
        __, rows = accelerator.execute_select(
            stmt, plan=plan_statement(stmt, rewrite=rewrite)
        )
        assert [r[0] for r in rows] == list(range(281, 320))
        return accelerator.rows_scanned - before

    full = scanned(False)
    pruned = scanned(True)
    assert pruned < full
    assert full == 320  # rewrite off: the inner scan reads every row

"""Parser coverage: every statement form of the dialect."""

import pytest

from repro.errors import ParseError
from repro.sql import ast, parse_script, parse_statement
from repro.sql.types import DecimalType, IntegerType, VarcharType


class TestSelect:
    def test_simple_select(self):
        stmt = parse_statement("SELECT a, b FROM t")
        assert isinstance(stmt, ast.SelectStatement)
        assert len(stmt.select_items) == 2
        assert stmt.from_item.name == "T"

    def test_select_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert isinstance(stmt.select_items[0].expression, ast.Star)

    def test_qualified_star(self):
        stmt = parse_statement("SELECT t.* FROM t")
        star = stmt.select_items[0].expression
        assert isinstance(star, ast.Star)
        assert star.table == "T"

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t AS u")
        assert stmt.select_items[0].alias == "X"
        assert stmt.select_items[1].alias == "Y"
        assert stmt.from_item.alias == "U"

    def test_where_clause(self):
        stmt = parse_statement("SELECT a FROM t WHERE a > 5 AND b < 3")
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == "AND"

    def test_group_by_having(self):
        stmt = parse_statement(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_directions(self):
        stmt = parse_statement("SELECT a, b FROM t ORDER BY a DESC, b ASC, a")
        assert [o.ascending for o in stmt.order_by] == [False, True, True]

    def test_limit_offset(self):
        stmt = parse_statement("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit == 10
        assert stmt.offset == 5

    def test_fetch_first(self):
        stmt = parse_statement("SELECT a FROM t FETCH FIRST 7 ROWS ONLY")
        assert stmt.limit == 7

    def test_offset_fetch(self):
        stmt = parse_statement(
            "SELECT a FROM t OFFSET 3 ROWS FETCH NEXT 4 ROWS ONLY"
        )
        assert stmt.offset == 3
        assert stmt.limit == 4

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_select_without_from(self):
        stmt = parse_statement("SELECT 1 + 2")
        assert stmt.from_item is None

    def test_referenced_tables(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x "
            "WHERE a.y IN (SELECT y FROM c)"
        )
        assert sorted(stmt.referenced_tables()) == ["A", "B", "C"]

    def test_is_aggregate_query(self):
        assert parse_statement("SELECT SUM(a) FROM t").is_aggregate_query
        assert not parse_statement("SELECT a FROM t").is_aggregate_query


class TestJoins:
    def test_inner_join(self):
        stmt = parse_statement("SELECT * FROM a JOIN b ON a.x = b.x")
        assert isinstance(stmt.from_item, ast.Join)
        assert stmt.from_item.join_type == "INNER"

    def test_left_outer_join(self):
        stmt = parse_statement("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x")
        assert stmt.from_item.join_type == "LEFT"

    def test_right_join(self):
        stmt = parse_statement("SELECT * FROM a RIGHT JOIN b ON a.x = b.x")
        assert stmt.from_item.join_type == "RIGHT"

    def test_cross_join(self):
        stmt = parse_statement("SELECT * FROM a CROSS JOIN b")
        assert stmt.from_item.join_type == "CROSS"
        assert stmt.from_item.condition is None

    def test_comma_join_is_cross(self):
        stmt = parse_statement("SELECT * FROM a, b")
        assert stmt.from_item.join_type == "CROSS"

    def test_join_chain_left_deep(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y"
        )
        outer = stmt.from_item
        assert isinstance(outer.left, ast.Join)
        assert isinstance(outer.right, ast.TableRef)

    def test_derived_table(self):
        stmt = parse_statement(
            "SELECT * FROM (SELECT a FROM t) AS sub WHERE sub.a > 1"
        )
        assert isinstance(stmt.from_item, ast.SubquerySource)
        assert stmt.from_item.alias == "SUB"

    def test_join_requires_on(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM a JOIN b")


class TestExpressions:
    def expr(self, text):
        return parse_statement(f"SELECT {text} FROM t").select_items[0].expression

    def test_precedence_mul_over_add(self):
        node = self.expr("a + b * c")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_parentheses_override(self):
        node = self.expr("(a + b) * c")
        assert node.op == "*"

    def test_unary_minus(self):
        node = self.expr("-a")
        assert isinstance(node, ast.UnaryOp)

    def test_case_searched(self):
        node = self.expr("CASE WHEN a > 1 THEN 'x' ELSE 'y' END")
        assert isinstance(node, ast.CaseExpression)
        assert node.default is not None

    def test_case_simple_form(self):
        node = self.expr("CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END")
        assert len(node.branches) == 2
        # Simple CASE is rewritten to equality conditions.
        assert node.branches[0].condition.op == "="

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT CASE END FROM t")

    def test_in_list(self):
        node = self.expr("a IN (1, 2, 3)")
        assert isinstance(node, ast.InList)
        assert len(node.items) == 3

    def test_not_in(self):
        node = self.expr("a NOT IN (1)")
        assert node.negated

    def test_between(self):
        node = self.expr("a BETWEEN 1 AND 10")
        assert isinstance(node, ast.Between)

    def test_not_between(self):
        assert self.expr("a NOT BETWEEN 1 AND 2").negated

    def test_is_null_and_is_not_null(self):
        assert not self.expr("a IS NULL").negated
        assert self.expr("a IS NOT NULL").negated

    def test_like(self):
        node = self.expr("a LIKE 'x%'")
        assert isinstance(node, ast.Like)

    def test_cast(self):
        node = self.expr("CAST(a AS VARCHAR(10))")
        assert isinstance(node, ast.Cast)
        assert isinstance(node.target_type, VarcharType)

    def test_function_call(self):
        node = self.expr("SUBSTR(name, 1, 3)")
        assert isinstance(node, ast.FunctionCall)
        assert len(node.args) == 3

    def test_count_star(self):
        node = self.expr("COUNT(*)")
        assert isinstance(node.args[0], ast.Star)

    def test_count_distinct(self):
        node = self.expr("COUNT(DISTINCT a)")
        assert node.distinct

    def test_concat_operator(self):
        assert self.expr("a || b").op == "||"

    def test_scalar_subquery(self):
        node = self.expr("(SELECT MAX(x) FROM u)")
        assert isinstance(node, ast.SubqueryExpression)
        assert node.kind == "scalar"

    def test_exists(self):
        node = parse_statement(
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)"
        ).where
        assert node.kind == "exists"

    def test_in_subquery(self):
        node = parse_statement(
            "SELECT a FROM t WHERE a IN (SELECT x FROM u)"
        ).where
        assert node.kind == "in"

    def test_parameters_numbered_in_order(self):
        stmt = parse_statement("SELECT a FROM t WHERE a = ? AND b = ?")
        params = [
            n for n in stmt.where.walk() if isinstance(n, ast.Parameter)
        ]
        assert [p.index for p in params] == [0, 1]

    def test_boolean_and_null_literals(self):
        assert self.expr("TRUE").value is True
        assert self.expr("FALSE").value is False
        assert self.expr("NULL").value is None


class TestSetOperations:
    def test_union(self):
        stmt = parse_statement("SELECT a FROM t UNION SELECT b FROM u")
        assert isinstance(stmt, ast.SetOperation)
        assert stmt.op == "UNION"

    def test_union_all(self):
        stmt = parse_statement("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert stmt.op == "UNION ALL"

    def test_except_intersect(self):
        assert parse_statement("SELECT a FROM t EXCEPT SELECT b FROM u").op == "EXCEPT"
        assert (
            parse_statement("SELECT a FROM t INTERSECT SELECT b FROM u").op
            == "INTERSECT"
        )

    def test_trailing_order_by_belongs_to_whole_expression(self):
        stmt = parse_statement(
            "SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1 LIMIT 5"
        )
        assert isinstance(stmt, ast.SetOperation)
        assert len(stmt.order_by) == 1
        assert stmt.limit == 5
        # Operands carry no order/limit of their own.
        assert not stmt.left.order_by
        assert not stmt.right.order_by


class TestCreateTable:
    def test_columns_and_constraints(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INTEGER NOT NULL PRIMARY KEY, "
            "name VARCHAR(20), price DECIMAL(9, 2) DEFAULT 0)"
        )
        assert stmt.name == "T"
        assert stmt.columns[0].primary_key
        assert not stmt.columns[0].nullable
        assert isinstance(stmt.columns[1].sql_type, VarcharType)
        assert isinstance(stmt.columns[2].sql_type, DecimalType)
        assert stmt.columns[2].default is not None

    def test_table_level_primary_key(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a, b))"
        )
        assert stmt.columns[0].primary_key and stmt.columns[1].primary_key

    def test_in_accelerator_clause(self):
        stmt = parse_statement(
            "CREATE TABLE aot1 (id INTEGER) IN ACCELERATOR"
        )
        assert stmt.in_accelerator

    def test_in_accelerator_with_name(self):
        stmt = parse_statement(
            "CREATE TABLE aot1 (id INTEGER) IN ACCELERATOR IDAA1"
        )
        assert stmt.in_accelerator

    def test_distribute_by_hash(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INTEGER) IN ACCELERATOR DISTRIBUTE BY HASH(id)"
        )
        assert stmt.distribute_on == ["ID"]

    def test_distribute_by_random(self):
        stmt = parse_statement(
            "CREATE TABLE t (id INTEGER) DISTRIBUTE BY RANDOM"
        )
        assert stmt.distribute_on == []

    def test_if_not_exists(self):
        stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (a INTEGER)")
        assert stmt.if_not_exists

    def test_create_table_as_select(self):
        stmt = parse_statement(
            "CREATE TABLE t2 AS (SELECT a FROM t) IN ACCELERATOR"
        )
        assert stmt.as_select is not None
        assert stmt.in_accelerator

    def test_drop_table(self):
        stmt = parse_statement("DROP TABLE t")
        assert isinstance(stmt, ast.DropTableStatement)
        assert not stmt.if_exists

    def test_drop_table_if_exists(self):
        assert parse_statement("DROP TABLE IF EXISTS t").if_exists


class TestDml:
    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert len(stmt.values) == 2
        assert stmt.columns is None

    def test_insert_with_column_list(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ["A", "B"]

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT a, b FROM u WHERE a > 1")
        assert stmt.select is not None
        assert stmt.values is None

    def test_update(self):
        stmt = parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_update_without_where(self):
        assert parse_statement("UPDATE t SET a = 1").where is None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a < 0")
        assert isinstance(stmt, ast.DeleteStatement)

    def test_delete_all(self):
        assert parse_statement("DELETE FROM t").where is None


class TestAccessControlAndCall:
    def test_grant(self):
        stmt = parse_statement("GRANT SELECT, INSERT ON TABLE t TO alice")
        assert stmt.privileges == ["SELECT", "INSERT"]
        assert stmt.grantee == "ALICE"

    def test_grant_all(self):
        stmt = parse_statement("GRANT ALL ON t TO bob")
        assert stmt.privileges == ["ALL"]

    def test_grant_execute_on_procedure(self):
        stmt = parse_statement("GRANT EXECUTE ON PROCEDURE inza.kmeans TO bob")
        assert stmt.object_type == "PROCEDURE"
        assert stmt.object_name == "INZA.KMEANS"

    def test_revoke(self):
        stmt = parse_statement("REVOKE SELECT ON t FROM alice")
        assert isinstance(stmt, ast.RevokeStatement)

    def test_call_with_parameter_string(self):
        stmt = parse_statement("CALL INZA.KMEANS('intable=T, k=3')")
        assert stmt.procedure == "INZA.KMEANS"
        assert stmt.arguments[0].value == "intable=T, k=3"

    def test_call_without_arguments(self):
        assert parse_statement("CALL INZA.LIST_MODELS()").arguments == []

    def test_transaction_statements(self):
        assert isinstance(parse_statement("BEGIN"), ast.BeginStatement)
        assert isinstance(parse_statement("COMMIT"), ast.CommitStatement)
        assert isinstance(parse_statement("ROLLBACK WORK"), ast.RollbackStatement)


class TestScriptsAndErrors:
    def test_parse_script(self):
        statements = parse_script(
            "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); "
            "SELECT * FROM t;"
        )
        assert len(statements) == 3

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 FROM t banana nonsense extra")

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse_statement("FROB THE TABLE")

    def test_missing_expression(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT FROM t")

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT (1 + 2 FROM t")

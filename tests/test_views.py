"""Views: DDL, expansion, routing, governance, read-only enforcement."""

import pytest

from repro import AcceleratedDatabase
from repro.errors import (
    AuthorizationError,
    DuplicateObjectError,
    SqlError,
    UnknownObjectError,
)


@pytest.fixture
def db():
    return AcceleratedDatabase(slice_count=2, chunk_rows=64)


@pytest.fixture
def conn(db):
    connection = db.connect()
    connection.execute(
        "CREATE TABLE SALES (ID INTEGER NOT NULL PRIMARY KEY, "
        "REGION VARCHAR(4), AMOUNT DOUBLE)"
    )
    rows = ", ".join(
        f"({i}, '{'EU' if i % 2 else 'US'}', {float(i)})" for i in range(20)
    )
    connection.execute(f"INSERT INTO SALES VALUES {rows}")
    db.add_table_to_accelerator("SALES")
    connection.execute(
        "CREATE VIEW EU_SALES AS (SELECT id, amount FROM sales "
        "WHERE region = 'EU')"
    )
    return connection


class TestDdl:
    def test_create_and_query(self, conn):
        assert conn.execute("SELECT COUNT(*) FROM eu_sales").scalar() == 10

    def test_create_without_parentheses(self, conn):
        conn.execute("CREATE VIEW V2 AS SELECT id FROM sales WHERE id < 3")
        assert conn.execute("SELECT COUNT(*) FROM v2").scalar() == 3

    def test_duplicate_view_rejected(self, conn):
        with pytest.raises(DuplicateObjectError):
            conn.execute("CREATE VIEW EU_SALES AS (SELECT 1 FROM sales)")

    def test_view_cannot_shadow_table(self, conn):
        with pytest.raises(DuplicateObjectError):
            conn.execute("CREATE VIEW SALES AS (SELECT 1 FROM sales)")

    def test_table_cannot_shadow_view(self, conn):
        with pytest.raises(DuplicateObjectError):
            conn.execute("CREATE TABLE EU_SALES (A INTEGER)")

    def test_create_view_validates_tables(self, conn):
        with pytest.raises(UnknownObjectError):
            conn.execute("CREATE VIEW BAD AS (SELECT x FROM no_such_table)")

    def test_drop_view(self, db, conn):
        conn.execute("DROP VIEW EU_SALES")
        assert not db.catalog.has_view("EU_SALES")
        with pytest.raises(UnknownObjectError):
            conn.execute("SELECT * FROM eu_sales")

    def test_drop_view_if_exists(self, conn):
        conn.execute("DROP VIEW IF EXISTS NOT_THERE")

    def test_drop_table_does_not_drop_view(self, conn):
        with pytest.raises(UnknownObjectError):
            conn.execute("DROP TABLE EU_SALES")


class TestExpansionAndRouting:
    def test_view_query_routes_like_underlying(self, conn):
        result = conn.execute("SELECT SUM(amount) FROM eu_sales")
        assert result.engine == "ACCELERATOR"
        assert result.scalar() == sum(float(i) for i in range(1, 20, 2))

    def test_view_join_with_table(self, conn):
        rows = conn.execute(
            "SELECT COUNT(*) FROM eu_sales e JOIN sales s ON e.id = s.id"
        ).scalar()
        assert rows == 10

    def test_view_over_view(self, conn):
        conn.execute(
            "CREATE VIEW BIG_EU AS (SELECT id FROM eu_sales WHERE amount > 10)"
        )
        # EU rows are odd ids 1..19; amount > 10 leaves {11,13,15,17,19}.
        assert conn.execute("SELECT COUNT(*) FROM big_eu").scalar() == 5

    def test_view_in_subquery(self, conn):
        rows = conn.execute(
            "SELECT id FROM sales WHERE id IN (SELECT id FROM eu_sales) "
            "AND amount > 15 ORDER BY id"
        ).rows
        assert rows == [(17,), (19,)]

    def test_view_cycle_impossible_but_depth_guard_exists(self, db, conn):
        # Self-referencing views cannot be created through SQL (the name
        # does not exist yet), but a hand-built cycle must not hang.
        from repro.sql import parse_statement

        db.catalog.create_view(
            "CYC_A", parse_statement("SELECT * FROM cyc_b")
        )
        db.catalog.create_view(
            "CYC_B", parse_statement("SELECT * FROM cyc_a")
        )
        with pytest.raises(SqlError):
            conn.execute("SELECT * FROM cyc_a")

    def test_view_of_aot(self, db, conn):
        conn.execute("CREATE TABLE STAGE (K INTEGER) IN ACCELERATOR")
        conn.execute("INSERT INTO STAGE VALUES (1), (2)")
        conn.execute("CREATE VIEW SV AS (SELECT k FROM stage)")
        result = conn.execute("SELECT COUNT(*) FROM sv")
        assert result.engine == "ACCELERATOR"
        assert result.scalar() == 2

    def test_explain_sees_through_views(self, conn):
        plan = conn.explain("SELECT SUM(amount) FROM eu_sales")
        # Routing happens on the expanded query over base tables.
        assert plan["engine"] in ("ACCELERATOR", "DB2")


class TestGovernance:
    def test_view_grant_is_the_boundary(self, db, conn):
        db.create_user("ANALYST")
        analyst = db.connect("ANALYST")
        with pytest.raises(AuthorizationError):
            analyst.execute("SELECT * FROM eu_sales")
        conn.execute("GRANT SELECT ON EU_SALES TO ANALYST")
        # Definer rights: SELECT on the view suffices, no SALES grant.
        assert analyst.execute("SELECT COUNT(*) FROM eu_sales").scalar() == 10
        with pytest.raises(AuthorizationError):
            analyst.execute("SELECT * FROM sales")  # base still protected

    def test_non_owner_cannot_drop_view(self, db, conn):
        db.create_user("ANALYST")
        analyst = db.connect("ANALYST")
        with pytest.raises(AuthorizationError):
            analyst.execute("DROP VIEW EU_SALES")

    def test_owner_can_drop_own_view(self, db, conn):
        db.create_user("ANALYST")
        conn.execute("GRANT SELECT ON SALES TO ANALYST")
        analyst = db.connect("ANALYST")
        analyst.execute("CREATE VIEW MINE AS (SELECT id FROM sales)")
        analyst.execute("DROP VIEW MINE")


class TestReadOnly:
    @pytest.mark.parametrize(
        "sql",
        [
            "INSERT INTO EU_SALES VALUES (99, 1.0)",
            "UPDATE eu_sales SET amount = 0",
            "DELETE FROM eu_sales",
        ],
    )
    def test_dml_on_view_rejected(self, conn, sql):
        with pytest.raises(SqlError):
            conn.execute(sql)

    def test_underlying_changes_visible_through_view(self, conn):
        conn.execute("INSERT INTO SALES VALUES (100, 'EU', 42.0)")
        assert conn.execute("SELECT COUNT(*) FROM eu_sales").scalar() == 11


class TestGovernanceMixedReferences:
    def test_direct_table_still_checked_alongside_view(self, db, conn):
        """A query joining a granted view with a *directly referenced*
        protected table must still be denied: the view grant only covers
        the tables inside the view body."""
        db.create_user("ANALYST")
        conn.execute("GRANT SELECT ON EU_SALES TO ANALYST")
        analyst = db.connect("ANALYST")
        with pytest.raises(AuthorizationError):
            analyst.execute(
                "SELECT e.id FROM eu_sales e JOIN sales s ON e.id = s.id"
            )
        # The view alone remains fine.
        assert analyst.execute("SELECT COUNT(*) FROM eu_sales").scalar() == 10

    def test_direct_table_in_subquery_checked(self, db, conn):
        db.create_user("ANALYST")
        conn.execute("GRANT SELECT ON EU_SALES TO ANALYST")
        analyst = db.connect("ANALYST")
        with pytest.raises(AuthorizationError):
            analyst.execute(
                "SELECT id FROM eu_sales WHERE id IN (SELECT id FROM sales)"
            )

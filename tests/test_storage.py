"""Row store and column store behaviour (incl. MVCC and zone maps)."""

import numpy as np
import pytest

from repro.catalog import Column, TableSchema
from repro.errors import ReproError
from repro.sql.types import DOUBLE, INTEGER, VarcharType
from repro.storage.column_store import ColumnStoreTable, NEVER_DELETED
from repro.storage.row_store import DEFAULT_PAGE_CAPACITY, RowStoreTable
from repro.storage.zone_maps import ZoneMap


@pytest.fixture
def schema():
    return TableSchema(
        [
            Column("ID", INTEGER, nullable=False),
            Column("V", DOUBLE),
            Column("NAME", VarcharType(16)),
        ]
    )


class TestRowStore:
    def test_insert_and_fetch(self, schema):
        table = RowStoreTable(schema)
        row_id = table.insert((1, 2.0, "a"))
        assert table.fetch(row_id) == (1, 2.0, "a")
        assert table.row_count == 1

    def test_pages_fill_and_overflow(self, schema):
        table = RowStoreTable(schema)
        for i in range(DEFAULT_PAGE_CAPACITY + 1):
            table.insert((i, None, None))
        assert table.page_count == 2

    def test_row_ids_stable_across_deletes(self, schema):
        table = RowStoreTable(schema)
        ids = [table.insert((i, None, None)) for i in range(10)]
        table.delete(ids[3])
        assert table.fetch(ids[4]) == (4, None, None)

    def test_delete_then_fetch_raises(self, schema):
        table = RowStoreTable(schema)
        row_id = table.insert((1, None, None))
        table.delete(row_id)
        with pytest.raises(ReproError):
            table.fetch(row_id)

    def test_double_delete_raises(self, schema):
        table = RowStoreTable(schema)
        row_id = table.insert((1, None, None))
        table.delete(row_id)
        with pytest.raises(ReproError):
            table.delete(row_id)

    def test_update_returns_before_image(self, schema):
        table = RowStoreTable(schema)
        row_id = table.insert((1, 2.0, "a"))
        before = table.update(row_id, (1, 9.0, "b"))
        assert before == (1, 2.0, "a")
        assert table.fetch(row_id) == (1, 9.0, "b")

    def test_undelete_restores(self, schema):
        table = RowStoreTable(schema)
        row_id = table.insert((1, 2.0, "a"))
        before = table.delete(row_id)
        table.undelete(row_id, before)
        assert table.fetch(row_id) == (1, 2.0, "a")
        assert table.row_count == 1

    def test_undelete_occupied_slot_raises(self, schema):
        table = RowStoreTable(schema)
        row_id = table.insert((1, None, None))
        with pytest.raises(ReproError):
            table.undelete(row_id, (1, None, None))

    def test_scan_skips_tombstones(self, schema):
        table = RowStoreTable(schema)
        ids = [table.insert((i, None, None)) for i in range(5)]
        table.delete(ids[0])
        table.delete(ids[4])
        assert [row[0] for _, row in table.scan()] == [1, 2, 3]

    def test_byte_count_tracks_changes(self, schema):
        table = RowStoreTable(schema)
        row_id = table.insert((1, 2.0, "abcd"))
        bytes_full = table.byte_count
        table.delete(row_id)
        assert table.byte_count == 0
        assert bytes_full > 0

    def test_truncate(self, schema):
        table = RowStoreTable(schema)
        for i in range(5):
            table.insert((i, None, None))
        assert table.truncate() == 5
        assert table.row_count == 0
        assert list(table.scan()) == []


class TestColumnStore:
    def make(self, schema, rows=100, **kwargs):
        table = ColumnStoreTable(schema, **kwargs)
        data = [(i, float(i), f"n{i}") for i in range(rows)]
        row_ids = table.append_rows(data, epoch=1)
        return table, row_ids

    def test_append_and_read(self, schema):
        table, __ = self.make(schema, rows=50, slice_count=2, chunk_rows=16)
        row_ids, columns = table.read_visible(epoch=1)
        assert len(row_ids) == 50
        assert sorted(columns["ID"].values.tolist()) == list(range(50))

    def test_rows_split_into_chunks(self, schema):
        table, __ = self.make(schema, rows=100, slice_count=2, chunk_rows=16)
        assert table.total_chunk_count > 2

    def test_snapshot_isolation_of_deletes(self, schema):
        table, row_ids = self.make(schema, rows=20)
        table.mark_deleted(row_ids[:10], epoch=2)
        old_ids, __ = table.read_visible(epoch=1)
        new_ids, __ = table.read_visible(epoch=2)
        assert len(old_ids) == 20
        assert len(new_ids) == 10

    def test_rows_invisible_before_insert_epoch(self, schema):
        table = ColumnStoreTable(schema)
        table.append_rows([(1, 1.0, "a")], epoch=5)
        assert len(table.read_visible(epoch=4)[0]) == 0
        assert len(table.read_visible(epoch=5)[0]) == 1

    def test_double_delete_counts_once(self, schema):
        table, row_ids = self.make(schema, rows=10)
        assert table.mark_deleted(row_ids[:5], epoch=2) == 5
        assert table.mark_deleted(row_ids[:5], epoch=3) == 0
        assert table.row_count == 5

    def test_hash_distribution_is_deterministic(self, schema):
        table_a = ColumnStoreTable(schema, slice_count=4, distribute_on=["ID"])
        table_b = ColumnStoreTable(schema, slice_count=4, distribute_on=["ID"])
        rows = [(i, float(i), "x") for i in range(64)]
        table_a.append_rows(rows, epoch=1)
        table_b.append_rows(rows, epoch=1)
        layout_a = [[len(c) for c in chunks] for chunks in table_a._slices]
        layout_b = [[len(c) for c in chunks] for chunks in table_b._slices]
        assert layout_a == layout_b

    def test_fetch_rows_round_trips(self, schema):
        table, row_ids = self.make(schema, rows=10)
        rows = table.fetch_rows(row_ids[3:5])
        assert rows == [(3, 3.0, "n3"), (4, 4.0, "n4")]

    def test_fetch_preserves_nulls(self, schema):
        table = ColumnStoreTable(schema)
        ids = table.append_rows([(1, None, None)], epoch=1)
        assert table.fetch_rows(ids) == [(1, None, None)]

    def test_truncate_is_versioned(self, schema):
        table, __ = self.make(schema, rows=10)
        removed = table.truncate(epoch=2)
        assert removed == 10
        assert len(table.read_visible(epoch=1)[0]) == 10
        assert len(table.read_visible(epoch=2)[0]) == 0

    def test_zone_map_pruning_skips_chunks(self, schema):
        table, __ = self.make(schema, rows=256, slice_count=1, chunk_rows=32)
        table.read_visible(epoch=1, ranges={"ID": (10, 20)})
        assert table.last_scan_chunks_skipped > 0
        # Correctness: pruned scan still returns a superset of the range.
        row_ids, columns = table.read_visible(epoch=1, ranges={"ID": (10, 20)})
        ids = columns["ID"].values
        assert set(range(10, 21)) <= set(ids.tolist())

    def test_zone_maps_can_be_disabled(self, schema):
        table, __ = self.make(schema, rows=256, slice_count=1, chunk_rows=32)
        table.zone_maps_enabled = False
        table.read_visible(epoch=1, ranges={"ID": (10, 20)})
        assert table.last_scan_chunks_skipped == 0

    def test_byte_count_shrinks_after_delete(self, schema):
        table, row_ids = self.make(schema, rows=20)
        before = table.byte_count(1)
        table.mark_deleted(row_ids, epoch=2)
        assert table.byte_count(2) == 0
        assert before > 0

    def test_empty_table_read(self, schema):
        table = ColumnStoreTable(schema)
        row_ids, columns = table.read_visible(epoch=1)
        assert len(row_ids) == 0
        assert set(columns) == {"ID", "V", "NAME"}

    def test_invalid_slice_count(self, schema):
        with pytest.raises(ReproError):
            ColumnStoreTable(schema, slice_count=0)


class TestZoneMap:
    def test_build_and_overlap(self):
        zone = ZoneMap.build(np.array([5.0, 1.0, 9.0]))
        assert zone.minimum == 1.0 and zone.maximum == 9.0
        assert zone.overlaps(0, 2)
        assert zone.overlaps(9, None)
        assert not zone.overlaps(10, None)
        assert not zone.overlaps(None, 0.5)

    def test_open_bounds(self):
        zone = ZoneMap(1.0, 2.0)
        assert zone.overlaps(None, None)

    def test_all_null_column(self):
        values = np.array([0.0, 0.0])
        mask = np.array([True, True])
        assert ZoneMap.build(values, mask) is None

    def test_nan_only_column(self):
        assert ZoneMap.build(np.array([np.nan, np.nan])) is None

    def test_mask_excluded_from_bounds(self):
        values = np.array([100.0, 1.0])
        mask = np.array([True, False])
        zone = ZoneMap.build(values, mask)
        assert zone.maximum == 1.0

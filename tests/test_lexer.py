"""Tokenizer behaviour."""

import pytest

from repro.errors import LexerError
from repro.sql.lexer import Token, TokenType, tokenize


def values(sql):
    return [t.value for t in tokenize(sql) if t.type is not TokenType.EOF]


def kinds(sql):
    return [t.type for t in tokenize(sql) if t.type is not TokenType.EOF]


class TestBasics:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_keywords_are_uppercased(self):
        assert values("select From wHeRe") == ["SELECT", "FROM", "WHERE"]
        assert kinds("select") == [TokenType.KEYWORD]

    def test_identifiers_are_uppercased(self):
        assert values("my_table") == ["MY_TABLE"]
        assert kinds("my_table") == [TokenType.IDENTIFIER]

    def test_quoted_identifier_preserves_case(self):
        tokens = tokenize('"MixedCase"')
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "MixedCase"

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(LexerError):
            tokenize('"oops')


class TestStrings:
    def test_simple_string(self):
        tokens = tokenize("'hello'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "hello"

    def test_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_string_preserves_case(self):
        assert tokenize("'MiXeD'")[0].value == "MiXeD"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("'oops")
        assert excinfo.value.position == 0

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""


class TestNumbers:
    def test_integer(self):
        assert values("42") == ["42"]

    def test_decimal(self):
        assert values("3.14") == ["3.14"]

    def test_exponent(self):
        assert values("1e6 2.5E-3") == ["1e6", "2.5E-3"]

    def test_leading_dot(self):
        assert values(".5") == [".5"]

    def test_qualifier_dot_not_consumed(self):
        # "T1.COL" must not lex "1." as a number boundary issue.
        assert values("t1.col") == ["T1", ".", "COL"]


class TestOperatorsAndComments:
    def test_two_char_operators(self):
        assert values("<= >= <> != ||") == ["<=", ">=", "<>", "!=", "||"]

    def test_single_char_operators(self):
        assert values("+ - * / % < > = .") == list("+-*/%<>=.")

    def test_line_comment_skipped(self):
        assert values("SELECT -- comment here\n 1") == ["SELECT", "1"]

    def test_block_comment_skipped(self):
        assert values("SELECT /* multi\nline */ 1") == ["SELECT", "1"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexerError):
            tokenize("SELECT /* oops")

    def test_parameter_marker(self):
        tokens = tokenize("?")
        assert tokens[0].type is TokenType.PARAMETER

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("SELECT @")


class TestTokenHelpers:
    def test_matches_keyword(self):
        token = Token(TokenType.KEYWORD, "SELECT", 0)
        assert token.matches_keyword("SELECT")
        assert token.matches_keyword("FROM", "SELECT")
        assert not token.matches_keyword("FROM")

    def test_identifier_does_not_match_keyword(self):
        token = Token(TokenType.IDENTIFIER, "SELECT_LIKE", 0)
        assert not token.matches_keyword("SELECT_LIKE")

"""The built-in INZA procedures end-to-end through SQL CALL."""

import pytest

from repro import AcceleratedDatabase
from repro.errors import AnalyticsError, ProcedureError
from repro.workloads import create_churn_table


@pytest.fixture
def db():
    return AcceleratedDatabase(slice_count=2, chunk_rows=256)


@pytest.fixture
def conn(db):
    connection = db.connect()
    create_churn_table(connection, count=400, accelerate=True)
    return connection


class TestTransforms:
    def test_normalize_zscore(self, conn):
        result = conn.execute(
            "CALL INZA.NORMALIZE('intable=CHURN, outtable=N1, "
            "incolumn=MONTHLY_CHARGES, method=zscore')"
        )
        assert "NORMALIZE ok" in result.message
        stats = conn.execute(
            "SELECT AVG(monthly_charges), STDDEV(monthly_charges) FROM n1"
        ).rows[0]
        assert stats[0] == pytest.approx(0.0, abs=1e-9)
        assert stats[1] == pytest.approx(1.0, abs=1e-6)

    def test_normalize_minmax(self, conn):
        conn.execute(
            "CALL INZA.NORMALIZE('intable=CHURN, outtable=N2, "
            "incolumn=MONTHLY_CHARGES, method=minmax')"
        )
        low, high = conn.execute(
            "SELECT MIN(monthly_charges), MAX(monthly_charges) FROM n2"
        ).rows[0]
        assert low == pytest.approx(0.0)
        assert high == pytest.approx(1.0)

    def test_normalize_unknown_method(self, conn):
        with pytest.raises(ProcedureError):
            conn.execute(
                "CALL INZA.NORMALIZE('intable=CHURN, outtable=N3, "
                "method=banana')"
            )

    def test_impute_mean_removes_nulls(self, conn):
        nulls_before = conn.execute(
            "SELECT COUNT(*) FROM churn WHERE total_charges IS NULL"
        ).scalar()
        assert nulls_before > 0
        result = conn.execute(
            "CALL INZA.IMPUTE('intable=CHURN, outtable=I1, "
            "incolumn=TOTAL_CHARGES, method=mean')"
        )
        assert f"{nulls_before} values imputed" in result.message
        assert conn.execute(
            "SELECT COUNT(*) FROM i1 WHERE total_charges IS NULL"
        ).scalar() == 0

    def test_impute_preserves_non_null_values(self, conn):
        conn.execute(
            "CALL INZA.IMPUTE('intable=CHURN, outtable=I2, "
            "incolumn=TOTAL_CHARGES, method=constant, value=0')"
        )
        original = conn.execute(
            "SELECT SUM(total_charges) FROM churn "
            "WHERE total_charges IS NOT NULL"
        ).scalar()
        imputed = conn.execute("SELECT SUM(total_charges) FROM i2").scalar()
        assert imputed == pytest.approx(original)

    def test_bin_produces_bounded_ids(self, conn):
        conn.execute(
            "CALL INZA.BIN('intable=CHURN, outtable=B1, "
            "incolumn=MONTHLY_CHARGES, bins=5')"
        )
        low, high = conn.execute(
            "SELECT MIN(monthly_charges_bin), MAX(monthly_charges_bin) FROM b1"
        ).rows[0]
        assert low == 0
        assert high == 4

    def test_sample_fraction(self, conn):
        conn.execute(
            "CALL INZA.SAMPLE('intable=CHURN, outtable=S1, fraction=0.25, "
            "randseed=3')"
        )
        assert conn.execute("SELECT COUNT(*) FROM s1").scalar() == 100

    def test_sample_deterministic(self, conn):
        conn.execute(
            "CALL INZA.SAMPLE('intable=CHURN, outtable=S2, size=50, randseed=9')"
        )
        conn.execute(
            "CALL INZA.SAMPLE('intable=CHURN, outtable=S3, size=50, randseed=9')"
        )
        a = conn.execute("SELECT cust_id FROM s2 ORDER BY cust_id").rows
        b = conn.execute("SELECT cust_id FROM s3 ORDER BY cust_id").rows
        assert a == b

    def test_sample_requires_size_or_fraction(self, conn):
        with pytest.raises(ProcedureError):
            conn.execute("CALL INZA.SAMPLE('intable=CHURN, outtable=S4')")

    def test_split_data_partitions(self, conn):
        conn.execute(
            "CALL INZA.SPLIT_DATA('intable=CHURN, traintable=TR, "
            "testtable=TE, fraction=0.8, randseed=5')"
        )
        train = conn.execute("SELECT COUNT(*) FROM tr").scalar()
        test = conn.execute("SELECT COUNT(*) FROM te").scalar()
        assert train + test == 400
        assert train == 320
        overlap = conn.execute(
            "SELECT COUNT(*) FROM tr WHERE cust_id IN "
            "(SELECT cust_id FROM te)"
        ).scalar()
        assert overlap == 0

    def test_summary_statistics(self, conn):
        conn.execute("CALL INZA.SUMMARY('intable=CHURN, outtable=SUMM')")
        rows = conn.execute(
            "SELECT column_name, non_null, nulls FROM summ ORDER BY column_name"
        ).as_dicts()
        by_name = {r["COLUMN_NAME"]: r for r in rows}
        assert by_name["CUST_ID"]["NON_NULL"] == 400
        assert by_name["TOTAL_CHARGES"]["NULLS"] > 0


class TestMiningProcedures:
    def test_kmeans_end_to_end(self, conn, db):
        result = conn.execute(
            "CALL INZA.KMEANS('intable=CHURN, outtable=KM_OUT, id=CUST_ID, "
            "k=3, model=KM1, "
            "incolumn=TENURE_MONTHS;MONTHLY_CHARGES;SUPPORT_CALLS')"
        )
        assert "KMEANS ok" in result.message
        counts = conn.execute(
            "SELECT cluster_id, COUNT(*) FROM km_out GROUP BY cluster_id"
        ).rows
        assert sum(c for __, c in counts) == 400
        assert len(counts) == 3
        assert "KM1" in db.models

    def test_kmeans_then_predict(self, conn):
        conn.execute(
            "CALL INZA.KMEANS('intable=CHURN, outtable=KM_OUT, id=CUST_ID, "
            "k=3, model=KM1, "
            "incolumn=TENURE_MONTHS;MONTHLY_CHARGES;SUPPORT_CALLS')"
        )
        conn.execute(
            "CALL INZA.PREDICT_KMEANS('model=KM1, intable=CHURN, "
            "outtable=KM_SCORED, id=CUST_ID')"
        )
        # Scoring the training data reproduces the training assignment.
        mismatch = conn.execute(
            "SELECT COUNT(*) FROM km_out a JOIN km_scored b "
            "ON a.cust_id = b.cust_id "
            "WHERE a.cluster_id <> b.cluster_id"
        ).scalar()
        assert mismatch == 0

    def test_linear_regression_on_correlated_data(self, conn, db):
        # TOTAL_CHARGES ≈ MONTHLY_CHARGES * TENURE: regression on the
        # imputed table should fit decently.
        conn.execute(
            "CALL INZA.IMPUTE('intable=CHURN, outtable=CLEAN, "
            "incolumn=TOTAL_CHARGES, method=mean')"
        )
        result = conn.execute(
            "CALL INZA.LINEAR_REGRESSION('intable=CLEAN, target=TOTAL_CHARGES, "
            "model=LR1, incolumn=TENURE_MONTHS;MONTHLY_CHARGES, "
            "outtable=LR1_COEF')"
        )
        assert "LINEAR_REGRESSION ok" in result.message
        assert db.models.get("LR1").metrics["r_squared"] > 0.5
        rows = conn.execute("SELECT term FROM lr1_coef ORDER BY term").rows
        assert ("INTERCEPT",) in rows

    def test_regression_predict(self, conn):
        conn.execute(
            "CALL INZA.IMPUTE('intable=CHURN, outtable=CLEAN, "
            "incolumn=TOTAL_CHARGES, method=mean')"
        )
        conn.execute(
            "CALL INZA.LINEAR_REGRESSION('intable=CLEAN, target=TOTAL_CHARGES, "
            "model=LR1, incolumn=TENURE_MONTHS;MONTHLY_CHARGES')"
        )
        conn.execute(
            "CALL INZA.PREDICT_LINEAR_REGRESSION('model=LR1, intable=CLEAN, "
            "outtable=LR_SCORED, id=CUST_ID')"
        )
        assert conn.execute("SELECT COUNT(*) FROM lr_scored").scalar() == 400

    def test_naive_bayes_beats_base_rate(self, conn, db):
        conn.execute(
            "CALL INZA.IMPUTE('intable=CHURN, outtable=CLEAN, "
            "incolumn=TOTAL_CHARGES, method=mean')"
        )
        conn.execute(
            "CALL INZA.NAIVEBAYES('intable=CLEAN, class=CHURNED, model=NB1, "
            "id=CUST_ID')"
        )
        base_rate = max(
            row[1]
            for row in conn.execute(
                "SELECT churned, COUNT(*) FROM clean GROUP BY churned"
            ).rows
        ) / 400
        assert db.models.get("NB1").metrics["training_accuracy"] > base_rate

    def test_decision_tree_and_predict(self, conn, db):
        conn.execute(
            "CALL INZA.IMPUTE('intable=CHURN, outtable=CLEAN, "
            "incolumn=TOTAL_CHARGES, method=mean')"
        )
        conn.execute(
            "CALL INZA.DECTREE('intable=CLEAN, class=CHURNED, model=DT1, "
            "id=CUST_ID, maxdepth=5')"
        )
        assert db.models.get("DT1").metrics["training_accuracy"] > 0.7
        conn.execute(
            "CALL INZA.PREDICT_DECTREE('model=DT1, intable=CLEAN, "
            "outtable=DT_SCORED, id=CUST_ID')"
        )
        distinct = conn.execute(
            "SELECT COUNT(DISTINCT prediction) FROM dt_scored"
        ).scalar()
        assert distinct == 2

    def test_wrong_model_kind_rejected(self, conn):
        conn.execute(
            "CALL INZA.KMEANS('intable=CHURN, outtable=K1, id=CUST_ID, "
            "k=2, model=KM2, incolumn=TENURE_MONTHS;MONTHLY_CHARGES')"
        )
        with pytest.raises(AnalyticsError):
            conn.execute(
                "CALL INZA.PREDICT_DECTREE('model=KM2, intable=CHURN, "
                "outtable=X, id=CUST_ID')"
            )

    def test_nulls_rejected_with_hint(self, conn):
        with pytest.raises(AnalyticsError) as excinfo:
            conn.execute(
                "CALL INZA.KMEANS('intable=CHURN, outtable=K2, id=CUST_ID, "
                "k=2, incolumn=TOTAL_CHARGES')"
            )
        assert "IMPUTE" in str(excinfo.value)

    def test_arule_on_basket_table(self, conn):
        conn.execute(
            "CREATE TABLE BASKETS (TID INTEGER, ITEM VARCHAR(16)) "
            "IN ACCELERATOR"
        )
        baskets = [
            (1, "beer"), (1, "chips"),
            (2, "beer"), (2, "chips"), (2, "salsa"),
            (3, "beer"), (3, "diapers"),
            (4, "chips"), (4, "salsa"),
            (5, "beer"), (5, "chips"), (5, "diapers"),
        ]
        values = ", ".join(f"({t}, '{i}')" for t, i in baskets)
        conn.execute(f"INSERT INTO BASKETS VALUES {values}")
        result = conn.execute(
            "CALL INZA.ARULE('intable=BASKETS, tid=TID, item=ITEM, "
            "outtable=RULES, support=0.4, confidence=0.7')"
        )
        assert "ARULE ok" in result.message
        rules = conn.execute(
            "SELECT antecedent, consequent, confidence FROM rules "
            "ORDER BY confidence DESC"
        ).rows
        assert ("chips", "beer", pytest.approx(0.75)) in [
            (a, c, pytest.approx(conf)) for a, c, conf in rules
        ] or any(
            a == "chips" and c == "beer" and abs(conf - 0.75) < 1e-9
            for a, c, conf in rules
        )

    def test_procedure_outputs_are_aots(self, conn, db):
        conn.execute(
            "CALL INZA.KMEANS('intable=CHURN, outtable=K3, id=CUST_ID, "
            "k=2, incolumn=TENURE_MONTHS;MONTHLY_CHARGES')"
        )
        assert db.catalog.table("K3").is_aot

    def test_output_table_collision_raises(self, conn):
        conn.execute(
            "CALL INZA.KMEANS('intable=CHURN, outtable=K4, id=CUST_ID, "
            "k=2, incolumn=TENURE_MONTHS;MONTHLY_CHARGES')"
        )
        from repro.errors import DuplicateObjectError

        with pytest.raises(DuplicateObjectError):
            conn.execute(
                "CALL INZA.KMEANS('intable=CHURN, outtable=K4, id=CUST_ID, "
                "k=2, incolumn=TENURE_MONTHS;MONTHLY_CHARGES')"
            )

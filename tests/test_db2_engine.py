"""DB2 engine: DML, undo, PK index, change capture."""

import pytest

from repro.catalog import Catalog, Column, TableLocation, TableSchema
from repro.db2 import Db2Engine
from repro.errors import SqlError, UnknownObjectError
from repro.sql import parse_statement
from repro.sql.types import DOUBLE, INTEGER, VarcharType


@pytest.fixture
def engine():
    catalog = Catalog()
    engine = Db2Engine(catalog)
    schema = TableSchema(
        [
            Column("ID", INTEGER, nullable=False, primary_key=True),
            Column("REGION", VarcharType(8)),
            Column("AMOUNT", DOUBLE),
        ]
    )
    engine.create_storage(catalog.create_table("SALES", schema))
    return engine


def populate(engine, count=20):
    txn = engine.txn_manager.begin()
    engine.insert_rows(
        txn,
        "SALES",
        [(i, "EU" if i % 2 else "US", float(i)) for i in range(count)],
    )
    engine.commit(txn)


class TestInsert:
    def test_insert_and_count(self, engine):
        populate(engine)
        assert engine.storage_for("SALES").row_count == 20

    def test_coercion_applied(self, engine):
        txn = engine.txn_manager.begin()
        engine.insert_rows(txn, "SALES", [("1", "EU", "2.5")])
        engine.commit(txn)
        assert engine.table_rows("SALES") == [(1, "EU", 2.5)]

    def test_duplicate_primary_key_rejected(self, engine):
        populate(engine, 5)
        txn = engine.txn_manager.begin()
        with pytest.raises(SqlError):
            engine.insert_rows(txn, "SALES", [(3, "EU", 0.0)])
        engine.rollback(txn)

    def test_unknown_table(self, engine):
        txn = engine.txn_manager.begin()
        with pytest.raises(UnknownObjectError):
            engine.insert_rows(txn, "GHOST", [(1,)])


class TestUpdateDelete:
    def test_update_where(self, engine):
        populate(engine, 10)
        txn = engine.txn_manager.begin()
        count = engine.update_where(
            txn,
            parse_statement("UPDATE sales SET amount = amount + 100 WHERE id < 3"),
        )
        engine.commit(txn)
        assert count == 3
        rows = dict((r[0], r[2]) for r in engine.table_rows("SALES"))
        assert rows[0] == 100.0 and rows[5] == 5.0

    def test_update_primary_key_maintains_index(self, engine):
        populate(engine, 3)
        txn = engine.txn_manager.begin()
        engine.update_where(
            txn, parse_statement("UPDATE sales SET id = 100 WHERE id = 0")
        )
        engine.commit(txn)
        txn = engine.txn_manager.begin()
        __, rows = engine.execute_select(
            txn, parse_statement("SELECT id FROM sales WHERE id = 100")
        )
        assert rows == [(100,)]
        engine.commit(txn)

    def test_update_to_duplicate_pk_rejected(self, engine):
        populate(engine, 3)
        txn = engine.txn_manager.begin()
        with pytest.raises(SqlError):
            engine.update_where(
                txn, parse_statement("UPDATE sales SET id = 1 WHERE id = 2")
            )
        engine.rollback(txn)

    def test_delete_where(self, engine):
        populate(engine, 10)
        txn = engine.txn_manager.begin()
        count = engine.delete_where(
            txn, parse_statement("DELETE FROM sales WHERE region = 'EU'")
        )
        engine.commit(txn)
        assert count == 5
        assert engine.storage_for("SALES").row_count == 5

    def test_delete_all(self, engine):
        populate(engine, 4)
        txn = engine.txn_manager.begin()
        assert engine.delete_where(txn, parse_statement("DELETE FROM sales")) == 4
        engine.commit(txn)


class TestRollback:
    def test_insert_rollback(self, engine):
        populate(engine, 5)
        txn = engine.txn_manager.begin()
        engine.insert_rows(txn, "SALES", [(100, "EU", 1.0)])
        engine.rollback(txn)
        assert engine.storage_for("SALES").row_count == 5

    def test_update_rollback_restores_values(self, engine):
        populate(engine, 5)
        txn = engine.txn_manager.begin()
        engine.update_where(txn, parse_statement("UPDATE sales SET amount = 0"))
        engine.rollback(txn)
        assert sum(r[2] for r in engine.table_rows("SALES")) == 10.0

    def test_delete_rollback_restores_rows(self, engine):
        populate(engine, 5)
        txn = engine.txn_manager.begin()
        engine.delete_where(txn, parse_statement("DELETE FROM sales"))
        engine.rollback(txn)
        assert engine.storage_for("SALES").row_count == 5

    def test_rollback_restores_pk_index(self, engine):
        populate(engine, 5)
        txn = engine.txn_manager.begin()
        engine.delete_where(
            txn, parse_statement("DELETE FROM sales WHERE id = 2")
        )
        engine.rollback(txn)
        txn = engine.txn_manager.begin()
        # Insert with the same key must now fail (index restored).
        with pytest.raises(SqlError):
            engine.insert_rows(txn, "SALES", [(2, "EU", 0.0)])
        engine.rollback(txn)


class TestPointLookup:
    def test_index_fast_path_used(self, engine):
        populate(engine, 20)
        txn = engine.txn_manager.begin()
        before = engine.index_lookups
        __, rows = engine.execute_select(
            txn, parse_statement("SELECT amount FROM sales WHERE id = 7")
        )
        assert rows == [(7.0,)]
        assert engine.index_lookups == before + 1
        engine.commit(txn)

    def test_fast_path_scans_no_rows(self, engine):
        populate(engine, 20)
        txn = engine.txn_manager.begin()
        before = engine.rows_read
        engine.execute_select(
            txn, parse_statement("SELECT amount FROM sales WHERE id = 7")
        )
        # Index access examines only the fetched row, not the table.
        assert engine.rows_read - before <= 1
        engine.commit(txn)

    def test_missing_key_returns_empty(self, engine):
        populate(engine, 5)
        txn = engine.txn_manager.begin()
        __, rows = engine.execute_select(
            txn, parse_statement("SELECT * FROM sales WHERE id = 999")
        )
        assert rows == []
        engine.commit(txn)

    def test_extra_conjuncts_still_apply(self, engine):
        populate(engine, 5)
        txn = engine.txn_manager.begin()
        __, rows = engine.execute_select(
            txn,
            parse_statement(
                "SELECT id FROM sales WHERE id = 3 AND region = 'US'"
            ),
        )
        assert rows == []  # id 3 is EU
        engine.commit(txn)

    def test_non_pk_equality_not_fast_pathed(self, engine):
        populate(engine, 5)
        txn = engine.txn_manager.begin()
        before = engine.index_lookups
        engine.execute_select(
            txn, parse_statement("SELECT id FROM sales WHERE region = 'EU'")
        )
        assert engine.index_lookups == before
        engine.commit(txn)


class TestChangeCapture:
    def test_changes_published_only_for_accelerated_tables(self, engine):
        populate(engine, 3)
        assert len(engine.change_log) == 0  # DB2_ONLY: no capture
        engine.catalog.set_location("SALES", TableLocation.ACCELERATED)
        txn = engine.txn_manager.begin()
        engine.insert_rows(txn, "SALES", [(50, "EU", 1.0)])
        assert len(engine.change_log) == 0  # buffered until commit
        engine.commit(txn)
        assert len(engine.change_log) == 1

    def test_rollback_discards_captured_changes(self, engine):
        engine.catalog.set_location("SALES", TableLocation.ACCELERATED)
        txn = engine.txn_manager.begin()
        engine.insert_rows(txn, "SALES", [(60, "EU", 1.0)])
        engine.rollback(txn)
        assert len(engine.change_log) == 0

    def test_update_produces_before_and_after(self, engine):
        populate(engine, 2)
        engine.catalog.set_location("SALES", TableLocation.ACCELERATED)
        txn = engine.txn_manager.begin()
        engine.update_where(
            txn, parse_statement("UPDATE sales SET amount = 9 WHERE id = 0")
        )
        engine.commit(txn)
        record = engine.change_log.read_from(1)[0]
        assert record.op == "UPDATE"
        assert record.before[2] == 0.0
        assert record.after[2] == 9.0

    def test_lsns_are_monotonic(self, engine):
        engine.catalog.set_location("SALES", TableLocation.ACCELERATED)
        txn = engine.txn_manager.begin()
        engine.insert_rows(txn, "SALES", [(i, "EU", 0.0) for i in range(5)])
        engine.commit(txn)
        lsns = [r.lsn for r in engine.change_log.read_from(1)]
        assert lsns == [1, 2, 3, 4, 5]

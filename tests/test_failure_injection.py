"""Failure injection: errors must leave the federation consistent."""

import pytest

from repro import AcceleratedDatabase, IdaaLoader, IterableSource
from repro.errors import (
    AuthorizationError,
    ReplicationError,
    SqlError,
    TypeError_,
)


@pytest.fixture
def db():
    return AcceleratedDatabase(slice_count=2, chunk_rows=64)


@pytest.fixture
def conn(db):
    return db.connect()


class TestStatementFailures:
    def test_mid_statement_failure_undoes_partial_rows(self, conn):
        """A multi-row INSERT failing on row 3 must insert nothing."""
        conn.execute("CREATE TABLE T (A INTEGER NOT NULL PRIMARY KEY)")
        with pytest.raises(SqlError):
            conn.execute("INSERT INTO T VALUES (1), (2), (1)")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_coercion_failure_mid_statement(self, conn):
        conn.execute("CREATE TABLE T (A INTEGER)")
        with pytest.raises(TypeError_):
            conn.execute("INSERT INTO T VALUES (1), ('oops')")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 0

    def test_failed_update_keeps_old_values(self, conn):
        conn.execute("CREATE TABLE T (A INTEGER NOT NULL PRIMARY KEY)")
        conn.execute("INSERT INTO T VALUES (1), (2)")
        with pytest.raises(SqlError):
            # Both rows map to A=5: second update hits a duplicate key.
            conn.execute("UPDATE t SET a = 5")
        rows = conn.execute("SELECT a FROM t ORDER BY a").rows
        assert rows == [(1,), (2,)]

    def test_failed_insert_select_into_aot_inside_txn(self, conn):
        conn.execute("CREATE TABLE A (X INTEGER) IN ACCELERATOR")
        conn.execute("INSERT INTO A VALUES (1)")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO A VALUES (2)")
        with pytest.raises(Exception):
            conn.execute("INSERT INTO A SELECT x FROM missing_table")
        # The failed statement must not roll back the earlier insert.
        assert conn.execute("SELECT COUNT(*) FROM a").scalar() == 2
        conn.execute("COMMIT")
        assert conn.execute("SELECT COUNT(*) FROM a").scalar() == 2

    def test_division_by_zero_aborts_statement_cleanly(self, conn):
        conn.execute("CREATE TABLE T (A INTEGER)")
        conn.execute("INSERT INTO T VALUES (0), (1)")
        with pytest.raises(SqlError):
            conn.execute("SELECT 1 / a FROM t")
        # Connection still usable.
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 2


class TestReplicationFailures:
    def test_failed_apply_batch_is_atomic(self, db, conn):
        """A batch that fails mid-way must not half-apply."""
        from repro.db2.changelog import ChangeRecord

        conn.execute("CREATE TABLE T (A INTEGER) IN ACCELERATOR")
        conn.execute("INSERT INTO T VALUES (1), (2), (3)")
        count_before = conn.execute("SELECT COUNT(*) FROM t").scalar()
        records = [
            ChangeRecord(1, 1, "T", "INSERT", after=(4,)),
            ChangeRecord(2, 1, "T", "DELETE", before=(999,)),  # missing
        ]
        with pytest.raises(ReplicationError):
            db.accelerator.apply_changes("T", records)
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == count_before

    def test_replication_survives_unrelated_table_drop(self, db, conn):
        db.auto_replicate = False
        conn.execute("CREATE TABLE A (X INTEGER NOT NULL PRIMARY KEY)")
        conn.execute("INSERT INTO A VALUES (1)")
        db.add_table_to_accelerator("A")
        conn.execute("CREATE TABLE B (Y INTEGER)")
        conn.execute("INSERT INTO A VALUES (2)")
        conn.execute("DROP TABLE B")
        assert db.replication.drain() == 1
        conn.set_acceleration("ALL")
        assert conn.execute("SELECT COUNT(*) FROM a").scalar() == 2


class TestLoaderFailures:
    def test_loader_failure_keeps_earlier_batches(self, db, conn):
        """Batches commit independently (bulk-load semantics): a failure
        in batch 2 keeps batch 1, like the real loader's restartability."""
        conn.execute("CREATE TABLE T (A INTEGER)")
        loader = IdaaLoader(db, batch_size=2)
        rows = [(1,), (2,), ("bad",), (4,)]
        with pytest.raises(TypeError_):
            loader.load(IterableSource(rows, ["A"]), "T", conn)
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 2

    def test_loader_failure_does_not_poison_connection(self, db, conn):
        conn.execute("CREATE TABLE T (A INTEGER)")
        loader = IdaaLoader(db, batch_size=10)
        with pytest.raises(TypeError_):
            loader.load(IterableSource([("bad",)], ["A"]), "T", conn)
        conn.execute("INSERT INTO T VALUES (1)")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 1


class TestAuthorizationFailuresAreClean:
    def test_denied_dml_modifies_nothing(self, db, conn):
        conn.execute("CREATE TABLE T (A INTEGER) IN ACCELERATOR")
        conn.execute("INSERT INTO T VALUES (1)")
        db.create_user("PLEB")
        pleb = db.connect("PLEB")
        with pytest.raises(AuthorizationError):
            pleb.execute("DELETE FROM t")
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 1

    def test_denied_statement_in_open_txn_keeps_txn_alive(self, db, conn):
        conn.execute("CREATE TABLE T (A INTEGER)")
        db.create_user("PLEB")
        pleb = db.connect("PLEB")
        pleb.execute("BEGIN")
        with pytest.raises(AuthorizationError):
            pleb.execute("SELECT * FROM t")
        # Transaction still open and usable.
        pleb.execute("ROLLBACK")


class TestProcedureFailures:
    def test_failed_procedure_in_autocommit_leaves_no_output(self, db, conn):
        conn.execute("CREATE TABLE D (A INTEGER, B DOUBLE) IN ACCELERATOR")
        conn.execute("INSERT INTO D VALUES (1, NULL)")
        from repro.errors import AnalyticsError

        with pytest.raises(AnalyticsError):
            # B is all NULL → read_matrix refuses after creating nothing.
            conn.execute(
                "CALL INZA.KMEANS('intable=D, outtable=OUT, id=A, k=1, "
                "incolumn=B')"
            )
        assert not db.catalog.has_table("OUT")

    def test_procedure_failure_mid_txn_preserves_txn_work(self, db, conn):
        conn.execute("CREATE TABLE D (A INTEGER) IN ACCELERATOR")
        conn.execute("BEGIN")
        conn.execute("INSERT INTO D VALUES (1)")
        with pytest.raises(Exception):
            conn.execute("CALL INZA.SUMMARY('intable=NO_SUCH, outtable=X')")
        assert conn.execute("SELECT COUNT(*) FROM d").scalar() == 1
        conn.execute("COMMIT")


class TestInterconnectCounterSemantics:
    def test_reset_zeroes_every_counter(self, db, conn):
        conn.execute("CREATE TABLE T (A INTEGER) IN ACCELERATOR")
        conn.execute("INSERT INTO T VALUES (1), (2)")
        conn.execute("SELECT COUNT(*) FROM t")
        link = db.interconnect
        assert link.messages > 0
        assert link.bytes_to_accelerator > 0
        link.reset()
        assert link.messages == 0
        assert link.bytes_to_accelerator == 0
        assert link.bytes_from_accelerator == 0
        assert link.simulated_seconds == 0.0
        assert link.injected_latency_seconds == 0.0
        assert link.sends_failed == 0

    def test_reset_zeroes_fault_counters(self, db):
        with db.faults.forced("interconnect"):
            with pytest.raises(Exception):
                db.interconnect.send_to_accelerator(100)
        with db.faults.forced("interconnect", kind="latency", latency_seconds=0.5):
            db.interconnect.send_to_accelerator(100)
        assert db.interconnect.sends_failed == 1
        assert db.interconnect.injected_latency_seconds == 0.5
        db.interconnect.reset()
        assert db.interconnect.sends_failed == 0
        assert db.interconnect.injected_latency_seconds == 0.0

    def test_since_measures_only_the_delta(self, db, conn):
        conn.execute("CREATE TABLE T (A INTEGER) IN ACCELERATOR")
        conn.execute("INSERT INTO T VALUES (1), (2), (3)")
        before = db.interconnect.snapshot()
        conn.execute("SELECT COUNT(*) FROM t")
        delta = db.interconnect.since(before)
        # The query went over and its result came back; the earlier
        # insert's shipped bytes must not leak into the window.
        after = db.interconnect.snapshot()
        assert before.bytes_to_accelerator + delta.bytes_to_accelerator == (
            after.bytes_to_accelerator
        )
        assert delta.bytes_to_accelerator < before.bytes_to_accelerator
        assert delta.bytes_from_accelerator > 0
        assert delta.messages >= 1
        # An empty window measures zero.
        now = db.interconnect.snapshot()
        empty = db.interconnect.since(now)
        assert empty.messages == 0
        assert empty.bytes_from_accelerator == 0
        assert empty.simulated_seconds == 0.0

    def test_failed_send_accounts_nothing(self, db):
        before = db.interconnect.snapshot()
        with db.faults.forced("interconnect"):
            with pytest.raises(Exception):
                db.interconnect.send_to_accelerator(4096)
        delta = db.interconnect.since(before)
        assert delta.bytes_to_accelerator == 0
        assert delta.messages == 0
        assert db.interconnect.sends_failed == 1


class TestConcurrentSessionFailures:
    def test_concurrent_statement_failures_keep_health_consistent(self, db):
        """Many sessions failing/succeeding at once must leave the health
        monitor's counters exact and its breaker state valid."""
        import threading

        from repro.federation.health import AcceleratorHealthState

        setup = db.connect()
        setup.execute("CREATE TABLE T (A INTEGER NOT NULL PRIMARY KEY)")
        # Enough rows that the cost-based router sends the aggregate to
        # the accelerator (a 3-row COUNT is cheaper to run on DB2).
        values = ", ".join(f"({i})" for i in range(1, 97))
        setup.execute(f"INSERT INTO T VALUES {values}")
        db.add_table_to_accelerator("T")
        # High threshold: the concurrent failures must not trip the breaker,
        # so every statement exercises the crash → failback path.
        db.health.failure_threshold = 10_000
        rule = db.faults.add("accelerator", kind="crash", probability=1.0)

        sessions = 8
        per_session = 25
        errors: list[Exception] = []
        results: list[int] = []

        def worker() -> None:
            conn = db.connect()
            conn.set_acceleration("ENABLE WITH FAILBACK")
            for _ in range(per_session):
                try:
                    results.append(
                        conn.execute("SELECT COUNT(*) FROM t").scalar()
                    )
                except Exception as exc:  # pragma: no cover - fail the test
                    errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(sessions)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        db.faults.remove(rule)

        assert not errors
        total = sessions * per_session
        assert results == [96] * total
        # Every crash was recorded as exactly one failure and one failback;
        # the DB2 re-executions never touch the accelerator, so no
        # successes sneak in and the totals stay exact under concurrency.
        assert db.health.failures_total == total
        assert db.health.successes_total == 0
        assert db.failbacks == total
        assert db.health.state in (
            AcceleratorHealthState.ONLINE,
            AcceleratorHealthState.DEGRADED,
        )

    def test_concurrent_failures_trip_breaker_exactly_once(self, db):
        import threading

        from repro.federation.health import AcceleratorHealthState

        db.health.failure_threshold = 5
        db.health.cooldown_seconds = 60.0
        barrier = threading.Barrier(8)

        def worker() -> None:
            barrier.wait()
            for _ in range(10):
                db.health.record_failure()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert db.health.state is AcceleratorHealthState.OFFLINE
        assert db.health.times_opened == 1
        assert db.health.failures_total == 80


class TestReplicationCacheConsistency:
    def test_failed_batch_does_not_poison_the_lookup_cache(self, db, conn):
        """A drain failure must not leave the incremental row-lookup cache
        inconsistent: retrying with a corrected batch still applies."""
        from repro.db2.changelog import ChangeRecord
        from repro.errors import ReplicationError

        conn.execute("CREATE TABLE T (A INTEGER) IN ACCELERATOR")
        conn.execute("INSERT INTO T VALUES (1), (2)")
        # Prime the cache with a successful batch.
        db.accelerator.apply_changes(
            "T", [ChangeRecord(1, 1, "T", "INSERT", after=(3,))]
        )
        # Failing batch: one applicable update, then a missing row.
        bad = [
            ChangeRecord(2, 1, "T", "UPDATE", before=(1,), after=(10,)),
            ChangeRecord(3, 1, "T", "DELETE", before=(999,)),
        ]
        with pytest.raises(ReplicationError):
            db.accelerator.apply_changes("T", bad)
        # Storage untouched, and a corrected retry still locates row (1,).
        assert conn.execute("SELECT COUNT(*) FROM t").scalar() == 3
        db.accelerator.apply_changes(
            "T", [ChangeRecord(2, 1, "T", "UPDATE", before=(1,), after=(10,))]
        )
        rows = conn.execute("SELECT a FROM t ORDER BY a").rows
        assert rows == [(2,), (3,), (10,)]

"""Shared fixtures: a small federation instance and populated workloads."""

from __future__ import annotations

import pytest

from repro import AcceleratedDatabase
from repro.workloads import create_churn_table, create_star_schema


@pytest.fixture
def db() -> AcceleratedDatabase:
    """A fresh federation with small chunks so multi-chunk paths run."""
    return AcceleratedDatabase(slice_count=2, chunk_rows=256)


@pytest.fixture
def conn(db):
    return db.connect()


@pytest.fixture
def star(db, conn):
    """Accelerated star schema (small)."""
    create_star_schema(
        conn, customers=100, products=20, transactions=800, accelerate=True
    )
    return db


@pytest.fixture
def churn(db, conn):
    """Accelerated churn table (small)."""
    create_churn_table(conn, count=400, accelerate=True)
    return db

"""Movement stats, interconnect model, and byte estimation."""

import datetime

import pytest
import decimal

from repro.federation.network import Interconnect
from repro.metrics.counters import (
    MovementStats,
    Timer,
    estimate_rows_bytes,
    estimate_value_bytes,
)


class TestMovementStats:
    def test_clamped_floors_negative_fields(self):
        diff = MovementStats(10, 5, 1, 0.1) - MovementStats(40, 2, 3, 0.5)
        clamped = diff.clamped()
        assert clamped.bytes_to_accelerator == 0
        assert clamped.bytes_from_accelerator == 3
        assert clamped.messages == 0
        assert clamped.simulated_seconds == 0.0

    def test_clamped_identity_when_positive(self):
        stats = MovementStats(10, 5, 2, 0.1)
        assert stats.clamped() == stats

    def test_addition_and_subtraction(self):
        a = MovementStats(100, 50, 3, 0.1)
        b = MovementStats(40, 20, 1, 0.04)
        total = a + b
        assert total.bytes_to_accelerator == 140
        assert total.messages == 4
        diff = a - b
        assert diff.bytes_from_accelerator == 30
        assert diff.simulated_seconds == pytest.approx(0.06)

    def test_total_bytes(self):
        assert MovementStats(10, 5).total_bytes == 15

    def test_defaults_zero(self):
        stats = MovementStats()
        assert stats.total_bytes == 0


class TestInterconnect:
    def test_directional_counters(self):
        link = Interconnect()
        link.send_to_accelerator(100)
        link.send_to_db2(30)
        assert link.bytes_to_accelerator == 100
        assert link.bytes_from_accelerator == 30
        assert link.messages == 2

    def test_simulated_time_model(self):
        link = Interconnect(
            bandwidth_bytes_per_second=1000, message_latency_seconds=0.01
        )
        link.send_to_accelerator(500)
        assert link.simulated_seconds == 0.01 + 0.5

    def test_snapshot_and_since(self):
        link = Interconnect()
        link.send_to_accelerator(10)
        snapshot = link.snapshot()
        link.send_to_accelerator(25)
        delta = link.since(snapshot)
        assert delta.bytes_to_accelerator == 25
        assert delta.messages == 1

    def test_reset(self):
        link = Interconnect()
        link.send_to_db2(10)
        link.reset()
        assert link.snapshot().total_bytes == 0


class TestByteEstimation:
    def test_value_sizes(self):
        assert estimate_value_bytes(None) == 1
        assert estimate_value_bytes(True) == 1
        assert estimate_value_bytes(7) == 8
        assert estimate_value_bytes(1.5) == 8
        assert estimate_value_bytes("abc") == 7
        assert estimate_value_bytes("") == 4
        assert estimate_value_bytes(decimal.Decimal("1.5")) == 16
        assert estimate_value_bytes(datetime.date(2016, 1, 1)) == 4
        assert estimate_value_bytes(datetime.datetime(2016, 1, 1)) == 10
        # Unknown types fall back to the 16-byte estimate.
        assert estimate_value_bytes(b"blob") == 16
        assert estimate_value_bytes(object()) == 16

    def test_datetime_checked_before_date(self):
        """datetime is a date subclass; the 10-byte branch must win."""
        value = datetime.datetime(2016, 1, 1, 12, 30)
        assert isinstance(value, datetime.date)
        assert estimate_value_bytes(value) == 10

    def test_bool_checked_before_int(self):
        """bool is an int subclass; the 1-byte branch must win."""
        assert estimate_value_bytes(False) == 1

    def test_rows_bytes(self):
        rows = [(1, "ab"), (None, "c")]
        expected = (1 + 8) + (1 + 6) + (1 + 1) + (1 + 5)
        assert estimate_rows_bytes(rows) == expected

    def test_empty(self):
        assert estimate_rows_bytes([]) == 0


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.elapsed > 0

    def test_reentry_accumulates(self):
        timer = Timer()
        with timer:
            sum(range(1000))
        first = timer.elapsed
        with timer:
            sum(range(1000))
        assert timer.elapsed > first

    def test_reset(self):
        timer = Timer()
        with timer:
            sum(range(100))
        timer.reset()
        assert timer.elapsed == 0.0


class TestSystemMovement:
    def _system(self):
        from repro.federation.system import AcceleratedDatabase

        db = AcceleratedDatabase()
        conn = db.connect()
        conn.execute("CREATE TABLE T (A INTEGER, B VARCHAR(8))")
        conn.execute("INSERT INTO T VALUES (1, 'x'), (2, 'y')")
        return db, conn

    def test_movement_snapshot_and_since(self):
        db, conn = self._system()
        before = db.movement_snapshot()
        db.add_table_to_accelerator("T")
        delta = db.movement_since(before)
        assert delta.bytes_to_accelerator > 0
        assert delta.bytes_from_accelerator == 0

    def test_movement_since_clamps_across_reset(self):
        """A snapshot taken before ``interconnect.reset()`` must not
        produce negative movement deltas."""
        db, conn = self._system()
        db.add_table_to_accelerator("T")
        snapshot = db.movement_snapshot()
        assert snapshot.total_bytes > 0
        db.interconnect.reset()
        delta = db.movement_since(snapshot)
        assert delta.bytes_to_accelerator == 0
        assert delta.bytes_from_accelerator == 0
        assert delta.messages == 0
        assert delta.simulated_seconds == 0.0


class TestThreadSafety:
    """Concurrent accumulation must be exact (no lost updates).

    ``sys.setswitchinterval`` is lowered so the interpreter preempts
    threads mid-bytecode-sequence often enough to expose unsynchronized
    read-modify-write races deterministically-ish.
    """

    def _hammer(self, fn, threads=8, rounds=2000):
        import sys
        import threading

        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            barrier = threading.Barrier(threads)

            def work():
                barrier.wait()
                for _ in range(rounds):
                    fn()

            workers = [threading.Thread(target=work) for _ in range(threads)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        finally:
            sys.setswitchinterval(old)
        return threads * rounds

    def test_interconnect_concurrent_sends_lose_nothing(self):
        link = Interconnect(
            bandwidth_bytes_per_second=1e9, message_latency_seconds=0.001
        )

        def send():
            link.send_to_accelerator(100)
            link.send_to_db2(50)

        expected = self._hammer(send)
        stats = link.snapshot()
        assert stats.bytes_to_accelerator == expected * 100
        assert stats.bytes_from_accelerator == expected * 50
        assert stats.messages == expected * 2
        assert stats.simulated_seconds == pytest.approx(
            expected * 2 * 0.001 + (expected * 150) / 1e9
        )

    def test_metrics_counter_concurrent_inc_is_exact(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        counter = registry.counter("stress.hits")
        expected = self._hammer(lambda: counter.inc())
        assert counter.value == expected

    def test_histogram_concurrent_observe_and_summary(self):
        """Writers and a summary() reader may interleave freely; totals
        stay exact and percentile reads never crash on a mutating
        window."""
        import threading

        from repro.obs.metrics import Histogram

        histogram = Histogram("stress.latency", window=256)
        stop = threading.Event()
        errors = []

        def read_loop():
            while not stop.is_set():
                try:
                    summary = histogram.summary()
                    assert summary["count"] >= 0
                except Exception as exc:  # pragma: no cover - the bug
                    errors.append(exc)
                    return

        reader = threading.Thread(target=read_loop)
        reader.start()
        try:
            expected = self._hammer(lambda: histogram.observe(1.5))
        finally:
            stop.set()
            reader.join()
        assert not errors
        summary = histogram.summary()
        assert summary["count"] == expected
        assert summary["total"] == pytest.approx(expected * 1.5)
        assert summary["min"] == 1.5
        assert summary["max"] == 1.5

    def test_registry_collect_during_registration(self):
        """collect() must not blow up while other threads get-or-create
        new instruments."""
        import threading

        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def collect_loop():
            while not stop.is_set():
                try:
                    registry.collect()
                except Exception as exc:  # pragma: no cover - the bug
                    errors.append(exc)
                    return

        reader = threading.Thread(target=collect_loop)
        reader.start()
        counter = [0]

        def register():
            counter[0] += 1
            registry.counter(f"c{counter[0]}").inc()
            registry.gauge(f"g{counter[0]}").set(1.0)
            registry.histogram(f"h{counter[0]}").observe(1.0)

        try:
            self._hammer(register, threads=4, rounds=250)
        finally:
            stop.set()
            reader.join()
        assert not errors
        collected = registry.collect()
        assert collected  # every registered instrument is visible

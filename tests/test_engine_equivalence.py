"""Both engines must return identical results for the same query.

The federation's transparency promise only holds if offloading never
changes answers. These tests run a battery of queries against the same
data through the DB2 row executor and the accelerator's vectorised
executor and compare (order-insensitively unless ORDER BY is present).
"""

import math

import pytest

from repro.accelerator import AcceleratorEngine
from repro.catalog import Catalog, Column, TableLocation, TableSchema
from repro.db2 import Db2Engine
from repro.sql import parse_statement
from repro.sql.types import DATE, DOUBLE, INTEGER, VarcharType


@pytest.fixture(scope="module")
def engines():
    catalog = Catalog()
    db2 = Db2Engine(catalog)
    accelerator = AcceleratorEngine(catalog, slice_count=3, chunk_rows=64)

    orders_schema = TableSchema(
        [
            Column("O_ID", INTEGER, nullable=False),
            Column("O_CUST", INTEGER, nullable=False),
            Column("O_AMOUNT", DOUBLE),
            Column("O_REGION", VarcharType(4)),
            Column("O_DATE", DATE),
        ]
    )
    customers_schema = TableSchema(
        [
            Column("C_ID", INTEGER, nullable=False),
            Column("C_NAME", VarcharType(20), nullable=False),
            Column("C_TIER", VarcharType(8)),
        ]
    )
    for name, schema in (
        ("ORDERS", orders_schema),
        ("CUST", customers_schema),
    ):
        descriptor = catalog.create_table(
            name, schema, location=TableLocation.ACCELERATED
        )
        db2.create_storage(descriptor)
        accelerator.create_storage(descriptor)

    import random

    rng = random.Random(99)
    orders = []
    for oid in range(1, 301):
        orders.append(
            (
                oid,
                rng.randint(1, 40),
                None if rng.random() < 0.05 else round(rng.uniform(5, 500), 2),
                rng.choice(["EU", "US", "AP"]),
                f"2015-{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}",
            )
        )
    customers = [
        (
            cid,
            f"Cust{cid}",
            None if cid % 11 == 0 else rng.choice(["GOLD", "SILVER"]),
        )
        for cid in range(1, 36)  # some orders have no matching customer
    ]
    for name, rows, schema in (
        ("ORDERS", orders, orders_schema),
        ("CUST", customers, customers_schema),
    ):
        coerced = [schema.coerce_row(row) for row in rows]
        txn = db2.txn_manager.begin()
        db2.insert_rows(txn, name, coerced, already_coerced=True)
        db2.commit(txn)
        accelerator.bulk_insert(name, coerced)
    return db2, accelerator


QUERIES = [
    "SELECT COUNT(*) FROM orders",
    "SELECT COUNT(o_amount) FROM orders",
    "SELECT COUNT(DISTINCT o_region) FROM orders",
    "SELECT SUM(o_amount), AVG(o_amount), MIN(o_amount), MAX(o_amount) FROM orders",
    "SELECT STDDEV(o_amount), VARIANCE(o_amount) FROM orders",
    "SELECT o_region, COUNT(*) FROM orders GROUP BY o_region ORDER BY o_region",
    "SELECT o_region, SUM(o_amount) AS total FROM orders GROUP BY o_region "
    "HAVING SUM(o_amount) > 1000 ORDER BY total DESC",
    "SELECT o_id, o_amount FROM orders WHERE o_amount > 400 ORDER BY o_id",
    "SELECT o_id FROM orders WHERE o_amount BETWEEN 100 AND 110 ORDER BY o_id",
    "SELECT o_id FROM orders WHERE o_region IN ('EU', 'AP') AND o_amount > 450 "
    "ORDER BY o_id",
    "SELECT o_id FROM orders WHERE o_amount IS NULL ORDER BY o_id",
    "SELECT o_id, COALESCE(o_amount, 0) FROM orders ORDER BY o_id LIMIT 10",
    "SELECT o_id, CASE WHEN o_amount > 250 THEN 'hi' WHEN o_amount > 100 "
    "THEN 'mid' ELSE 'lo' END FROM orders WHERE o_amount IS NOT NULL "
    "ORDER BY o_id LIMIT 20",
    "SELECT DISTINCT o_region FROM orders ORDER BY o_region",
    "SELECT o_region, o_cust, COUNT(*) FROM orders GROUP BY o_region, o_cust "
    "ORDER BY o_region, o_cust",
    "SELECT c.c_tier, COUNT(*) FROM orders o JOIN cust c ON o.o_cust = c.c_id "
    "GROUP BY c.c_tier ORDER BY c.c_tier",
    "SELECT c.c_name, SUM(o.o_amount) AS spent FROM cust c "
    "JOIN orders o ON c.c_id = o.o_cust GROUP BY c.c_name "
    "ORDER BY spent DESC LIMIT 5",
    "SELECT c.c_name FROM cust c LEFT JOIN orders o ON c.c_id = o.o_cust "
    "AND o.o_amount > 490 WHERE o.o_id IS NULL ORDER BY c.c_name LIMIT 8",
    "SELECT o.o_id FROM orders o RIGHT JOIN cust c ON o.o_cust = c.c_id "
    "WHERE c.c_tier = 'GOLD' AND o.o_amount > 480 ORDER BY o.o_id",
    "SELECT COUNT(*) FROM orders o CROSS JOIN cust c WHERE o.o_id = c.c_id",
    "SELECT o_region FROM orders WHERE o_amount > "
    "(SELECT AVG(o_amount) FROM orders) GROUP BY o_region ORDER BY o_region",
    "SELECT o_id FROM orders WHERE o_cust IN (SELECT c_id FROM cust "
    "WHERE c_tier = 'GOLD') AND o_amount > 450 ORDER BY o_id",
    "SELECT x.o_region, x.n FROM (SELECT o_region, COUNT(*) AS n FROM orders "
    "GROUP BY o_region) AS x WHERE x.n > 50 ORDER BY x.o_region",
    "SELECT o_region FROM orders WHERE o_amount > 480 UNION "
    "SELECT c_tier FROM cust WHERE c_tier = 'GOLD' ORDER BY 1",
    "SELECT o_region FROM orders UNION ALL SELECT o_region FROM orders "
    "WHERE o_amount > 499 ORDER BY 1 LIMIT 5",
    "SELECT o_region FROM orders EXCEPT SELECT 'EU' FROM cust ORDER BY 1",
    "SELECT o_region FROM orders INTERSECT SELECT 'EU' FROM cust",
    "SELECT UPPER(o_region) || '-' || CAST(o_cust AS VARCHAR(8)) FROM orders "
    "ORDER BY o_id LIMIT 5",
    "SELECT ABS(o_amount - 250), SQRT(o_amount) FROM orders "
    "WHERE o_amount IS NOT NULL ORDER BY o_id LIMIT 5",
    "SELECT o_cust % 7, COUNT(*) FROM orders GROUP BY o_cust % 7 ORDER BY 1",
    "SELECT o_id FROM orders WHERE o_region LIKE 'E%' AND o_amount > 470 "
    "ORDER BY o_id",
    "SELECT o_id FROM orders WHERE NOT (o_amount < 495) ORDER BY o_id",
    "SELECT COUNT(*) FROM orders WHERE o_date >= '2015-07-01'",
    "SELECT AVG(o_amount) FROM orders WHERE o_region = 'EU' "
    "AND o_amount IS NOT NULL",
    "SELECT o_region, AVG(o_amount) FROM orders GROUP BY o_region "
    "ORDER BY 2 DESC",
    # USING joins (the parser desugars USING into ON equality).
    "SELECT COUNT(*) FROM cust a JOIN cust b USING (c_id) "
    "WHERE a.c_tier = 'GOLD'",
    "SELECT a.c_id FROM cust a LEFT JOIN cust b USING (c_id, c_tier) "
    "ORDER BY a.c_id LIMIT 6",
    # Derived tables: predicate-pushdown targets.
    "SELECT s.o_id FROM (SELECT o_id, o_amount FROM orders) AS s "
    "WHERE s.o_amount > 450 ORDER BY s.o_id",
    "SELECT s.r, s.n FROM (SELECT o_region AS r, COUNT(*) AS n FROM orders "
    "GROUP BY o_region) AS s WHERE s.n > 50 ORDER BY s.r",
    # Correlated subqueries.
    "SELECT c_id FROM cust WHERE EXISTS (SELECT 1 FROM orders "
    "WHERE o_cust = c_id AND o_amount > 480) ORDER BY c_id",
    "SELECT o_id FROM orders o WHERE o_amount > (SELECT AVG(i.o_amount) "
    "FROM orders i WHERE i.o_region = o.o_region) AND o_amount > 490 "
    "ORDER BY o_id",
]


def _normalise(value):
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return round(value, 6)
    if hasattr(value, "item"):
        inner = value.item()
        return _normalise(inner)
    return value


def _run_db2(db2, sql):
    txn = db2.txn_manager.begin()
    try:
        __, rows = db2.execute_select(txn, parse_statement(sql))
    finally:
        db2.commit(txn)
    return rows


@pytest.mark.parametrize("sql", QUERIES, ids=lambda q: q[:60])
def test_same_answer_on_both_engines(engines, sql):
    db2, accelerator = engines
    stmt = parse_statement(sql)
    db2_rows = [_normalise_row(r) for r in _run_db2(db2, sql)]
    __, acc_rows = accelerator.execute_select(parse_statement(sql))
    acc_rows = [_normalise_row(r) for r in acc_rows]
    has_order = getattr(stmt, "order_by", None)
    if has_order:
        assert acc_rows == db2_rows
    else:
        assert sorted(map(repr, acc_rows)) == sorted(map(repr, db2_rows))


def _normalise_row(row):
    return tuple(_normalise(value) for value in row)


# ---------------------------------------------------------------------------
# Shared logical plan: one bound plan, two executors, identical bytes
# ---------------------------------------------------------------------------

# Ordered queries without floating-point aggregation, so results must be
# byte-identical (same values, same Python types, same order) — not just
# equal after normalisation.
SHARED_PLAN_QUERIES = [
    "SELECT o_id, o_cust, o_region FROM orders WHERE o_amount > 300 "
    "ORDER BY o_id",
    "SELECT o_region, COUNT(*) FROM orders GROUP BY o_region ORDER BY 1",
    "SELECT c.c_name, COUNT(*) FROM cust c JOIN orders o "
    "ON c.c_id = o.o_cust GROUP BY c.c_name ORDER BY 1 LIMIT 10",
    "SELECT s.o_id FROM (SELECT o_id, o_amount FROM orders) AS s "
    "WHERE s.o_amount > 450 ORDER BY 1",
    "SELECT o_region FROM orders WHERE o_amount > 480 UNION "
    "SELECT c_tier FROM cust WHERE c_tier = 'GOLD' ORDER BY 1",
    "SELECT a.c_id, b.c_tier FROM cust a JOIN cust b USING (c_id) "
    "ORDER BY 1 LIMIT 12",
]


@pytest.mark.parametrize("sql", SHARED_PLAN_QUERIES, ids=lambda q: q[:60])
def test_shared_logical_plan_byte_identical(engines, sql):
    """Both executors lower the SAME bound plan to identical output."""
    from repro.sql.logical import plan_statement

    db2, accelerator = engines
    plan = plan_statement(parse_statement(sql))
    txn = db2.txn_manager.begin()
    try:
        db2_cols, db2_rows = db2.execute_select(
            txn, parse_statement(sql), plan=plan
        )
    finally:
        db2.commit(txn)
    acc_cols, acc_rows = accelerator.execute_select(
        parse_statement(sql), plan=plan
    )
    assert acc_cols == db2_cols
    assert repr(acc_rows) == repr(db2_rows)

"""Result object API and cross-engine type fidelity (incl. DECIMAL)."""

import datetime
import decimal

import pytest

from repro import AcceleratedDatabase
from repro.result import Result


@pytest.fixture
def db():
    return AcceleratedDatabase(slice_count=2, chunk_rows=64)


@pytest.fixture
def conn(db):
    return db.connect()


class TestResultObject:
    def test_scalar(self):
        assert Result(columns=["A"], rows=[(7,)]).scalar() == 7
        assert Result(columns=["A"], rows=[]).scalar() is None

    def test_column(self):
        result = Result(columns=["A", "B"], rows=[(1, "x"), (2, "y")])
        assert result.column("B") == ["x", "y"]

    def test_as_dicts(self):
        result = Result(columns=["A"], rows=[(1,)])
        assert result.as_dicts() == [{"A": 1}]

    def test_len_and_iter(self):
        result = Result(columns=["A"], rows=[(1,), (2,)])
        assert len(result) == 2
        assert [row[0] for row in result] == [1, 2]

    def test_rowcount_defaults_from_rows(self):
        assert Result(columns=["A"], rows=[(1,), (2,)]).rowcount == 2


class TestTypeFidelity:
    """Values must round-trip identically on both engines."""

    def setup_table(self, db, conn):
        conn.execute(
            "CREATE TABLE TYPES (ID INTEGER NOT NULL PRIMARY KEY, "
            "D DECIMAL(9, 2), S VARCHAR(10), DT DATE, TS TIMESTAMP, "
            "B BOOLEAN, F DOUBLE)"
        )
        conn.execute(
            "INSERT INTO TYPES VALUES "
            "(1, 10.25, 'abc', '2016-03-15', '2016-03-15 10:30:00', "
            "TRUE, 1.5), "
            "(2, NULL, NULL, NULL, NULL, NULL, NULL)"
        )
        db.add_table_to_accelerator("TYPES")

    def fetch_both(self, conn, sql):
        conn.set_acceleration("NONE")
        db2 = conn.execute(sql).rows
        conn.set_acceleration("ALL")
        accel = conn.execute(sql).rows
        return db2, accel

    def test_row_roundtrip_identical(self, db, conn):
        self.setup_table(db, conn)
        db2, accel = self.fetch_both(conn, "SELECT * FROM types ORDER BY id")
        assert db2 == accel
        row = db2[0]
        assert row[1] == decimal.Decimal("10.25")
        assert row[3] == datetime.date(2016, 3, 15)
        assert row[4] == datetime.datetime(2016, 3, 15, 10, 30)
        assert row[5] is True

    def test_decimal_aggregates_agree(self, db, conn):
        self.setup_table(db, conn)
        sql = "SELECT SUM(d), AVG(d), MIN(d), MAX(d), COUNT(d) FROM types"
        db2, accel = self.fetch_both(conn, sql)
        assert db2 == accel
        assert db2[0][0] == decimal.Decimal("10.25")

    def test_date_functions_agree(self, db, conn):
        self.setup_table(db, conn)
        sql = (
            "SELECT YEAR(dt), MONTH(dt), DAY(dt) FROM types "
            "WHERE dt IS NOT NULL"
        )
        db2, accel = self.fetch_both(conn, sql)
        assert db2 == accel == [(2016, 3, 15)]

    def test_boolean_predicates_agree(self, db, conn):
        self.setup_table(db, conn)
        db2, accel = self.fetch_both(
            conn, "SELECT id FROM types WHERE b = TRUE"
        )
        assert db2 == accel == [(1,)]

    def test_decimal_arithmetic_on_both_engines(self, db, conn):
        self.setup_table(db, conn)
        sql = "SELECT d * 2 FROM types WHERE id = 1"
        db2, accel = self.fetch_both(conn, sql)
        assert db2 == accel
        assert db2[0][0] == decimal.Decimal("20.50")

    def test_null_row_stays_null_everywhere(self, db, conn):
        self.setup_table(db, conn)
        db2, accel = self.fetch_both(
            conn, "SELECT d, s, dt, ts, b, f FROM types WHERE id = 2"
        )
        assert db2 == accel == [(None,) * 6]


class TestCorrelationProcedure:
    def test_correlation_finds_known_relationship(self, db, conn):
        conn.execute("CREATE TABLE XY (X DOUBLE, Y DOUBLE, Z DOUBLE) IN ACCELERATOR")
        rows = ", ".join(
            f"({i}.0, {2 * i}.0, {(-1) ** i}.0)" for i in range(1, 41)
        )
        conn.execute(f"INSERT INTO XY VALUES {rows}")
        conn.execute("CALL INZA.CORRELATION('intable=XY, outtable=C')")
        pairs = {
            (a, b): r
            for a, b, r, __n in conn.execute(
                "SELECT * FROM c"
            ).rows
        }
        assert pairs[("X", "Y")] == pytest.approx(1.0)
        assert abs(pairs[("X", "Z")]) < 0.2

    def test_correlation_needs_two_columns(self, db, conn):
        from repro.errors import AnalyticsError

        conn.execute("CREATE TABLE ONECOL (X DOUBLE) IN ACCELERATOR")
        with pytest.raises(AnalyticsError):
            conn.execute("CALL INZA.CORRELATION('intable=ONECOL, outtable=C')")

    def test_constant_column_yields_null_correlation(self, db, conn):
        conn.execute("CREATE TABLE CC (X DOUBLE, Y DOUBLE) IN ACCELERATOR")
        conn.execute("INSERT INTO CC VALUES (1.0, 5.0), (2.0, 5.0), (3.0, 5.0)")
        conn.execute("CALL INZA.CORRELATION('intable=CC, outtable=C')")
        assert conn.execute("SELECT correlation FROM c").rows == [(None,)]

"""Query routing policy (transparent offload + AOT rules)."""

import pytest

from repro.catalog import Catalog, Column, TableLocation, TableSchema
from repro.errors import RoutingError
from repro.federation.router import AccelerationMode, QueryRouter
from repro.sql import parse_statement
from repro.sql.types import DOUBLE, INTEGER, VarcharType


@pytest.fixture
def router():
    catalog = Catalog()
    pk_schema = TableSchema(
        [
            Column("ID", INTEGER, nullable=False, primary_key=True),
            Column("V", DOUBLE),
        ]
    )
    plain = TableSchema([Column("X", INTEGER), Column("Y", DOUBLE)])
    catalog.create_table("ACCEL", pk_schema, location=TableLocation.ACCELERATED)
    catalog.create_table(
        "ACCEL2", plain, location=TableLocation.ACCELERATED
    )
    catalog.create_table(
        "AOT", plain, location=TableLocation.ACCELERATOR_ONLY
    )
    catalog.create_table("PLAIN", plain, location=TableLocation.DB2_ONLY)
    return QueryRouter(catalog, offload_row_threshold=1000)


def route(router, sql, mode="ENABLE", rows=None):
    return router.route_query(
        parse_statement(sql), AccelerationMode(mode), estimated_rows=rows
    )


class TestAotRules:
    def test_aot_query_goes_to_accelerator(self, router):
        decision = route(router, "SELECT * FROM aot")
        assert decision.engine == "ACCELERATOR"

    def test_aot_plus_accelerated_ok(self, router):
        decision = route(
            router, "SELECT * FROM aot a JOIN accel2 b ON a.x = b.x"
        )
        assert decision.engine == "ACCELERATOR"

    def test_aot_plus_plain_db2_is_error(self, router):
        with pytest.raises(RoutingError):
            route(router, "SELECT * FROM aot a JOIN plain p ON a.x = p.x")

    def test_aot_with_acceleration_none_is_error(self, router):
        with pytest.raises(RoutingError):
            route(router, "SELECT * FROM aot", mode="NONE")

    def test_aot_in_subquery_forces_accelerator(self, router):
        decision = route(
            router,
            "SELECT x FROM accel2 WHERE x IN (SELECT x FROM aot)",
        )
        assert decision.engine == "ACCELERATOR"


class TestAccelerationModes:
    def test_none_keeps_everything_on_db2(self, router):
        decision = route(
            router, "SELECT SUM(y) FROM accel2 GROUP BY x", mode="NONE"
        )
        assert decision.engine == "DB2"

    def test_all_offloads_small_scans(self, router):
        decision = route(router, "SELECT x FROM accel2", mode="ALL", rows=1)
        assert decision.engine == "ACCELERATOR"

    def test_non_accelerated_table_stays_on_db2_even_under_all(self, router):
        decision = route(router, "SELECT x FROM plain", mode="ALL")
        assert decision.engine == "DB2"

    def test_mixed_accelerated_and_plain_stays_on_db2(self, router):
        decision = route(
            router, "SELECT * FROM accel2 a JOIN plain p ON a.x = p.x"
        )
        assert decision.engine == "DB2"


class TestEnableHeuristics:
    def test_aggregate_offloads(self, router):
        decision = route(router, "SELECT SUM(y) FROM accel2", rows=10)
        assert decision.engine == "ACCELERATOR"

    def test_group_by_offloads(self, router):
        decision = route(
            router, "SELECT x, COUNT(*) FROM accel2 GROUP BY x", rows=10
        )
        assert decision.engine == "ACCELERATOR"

    def test_join_offloads(self, router):
        decision = route(
            router,
            "SELECT * FROM accel a JOIN accel2 b ON a.id = b.x",
            rows=10,
        )
        assert decision.engine == "ACCELERATOR"

    def test_point_lookup_stays_on_db2(self, router):
        decision = route(router, "SELECT v FROM accel WHERE id = 5", rows=10**6)
        assert decision.engine == "DB2"
        assert "point lookup" in decision.reason

    def test_point_lookup_needs_full_key(self, router):
        # V = 5 is not a key predicate; large table → offload.
        decision = route(
            router, "SELECT id FROM accel WHERE v = 5", rows=10**6
        )
        assert decision.engine == "ACCELERATOR"

    def test_small_plain_scan_stays_on_db2(self, router):
        decision = route(router, "SELECT x FROM accel2 WHERE y > 1", rows=10)
        assert decision.engine == "DB2"

    def test_large_plain_scan_offloads(self, router):
        decision = route(
            router, "SELECT x FROM accel2 WHERE y > 1", rows=10**6
        )
        assert decision.engine == "ACCELERATOR"

    def test_set_operation_is_analytical(self, router):
        decision = route(
            router,
            "SELECT x FROM accel2 UNION SELECT id FROM accel",
            rows=10,
        )
        assert decision.engine == "ACCELERATOR"

    def test_distinct_is_analytical(self, router):
        decision = route(router, "SELECT DISTINCT x FROM accel2", rows=10)
        assert decision.engine == "ACCELERATOR"


class TestDmlRouting:
    def test_aot_dml_routes_to_accelerator(self, router):
        assert router.route_dml("AOT").engine == "ACCELERATOR"

    def test_db2_table_dml_routes_to_db2(self, router):
        assert router.route_dml("PLAIN").engine == "DB2"
        assert router.route_dml("ACCEL").engine == "DB2"


class TestCostAdvice:
    """Optimizer cost advice replaces the ENABLE row-threshold heuristic."""

    def test_advice_prefers_accelerator(self, router):
        from repro.sql.stats import PlanCost

        decision = router.route_query(
            parse_statement("SELECT x FROM accel2 WHERE y > 1"),
            AccelerationMode("ENABLE"),
            cost_advice=PlanCost(db2=100.0, accelerator=10.0),
        )
        assert decision.engine == "ACCELERATOR"
        assert decision.reason == "cost accelerator=10 vs db2=100"

    def test_advice_prefers_db2(self, router):
        from repro.sql.stats import PlanCost

        # The shape heuristic alone would offload this aggregate; the
        # cost advice keeps a cheap one on DB2.
        decision = router.route_query(
            parse_statement("SELECT SUM(y) FROM accel2"),
            AccelerationMode("ENABLE"),
            cost_advice=PlanCost(db2=5.0, accelerator=50.0),
        )
        assert decision.engine == "DB2"

    def test_point_lookup_precedes_advice(self, router):
        from repro.sql.stats import PlanCost

        decision = router.route_query(
            parse_statement("SELECT v FROM accel WHERE id = 5"),
            AccelerationMode("ENABLE"),
            cost_advice=PlanCost(db2=100.0, accelerator=1.0),
        )
        assert decision.engine == "DB2"
        assert "point lookup" in decision.reason

    def test_mode_semantics_precede_advice(self, router):
        from repro.sql.stats import PlanCost

        decision = router.route_query(
            parse_statement("SELECT x FROM accel2"),
            AccelerationMode("NONE"),
            cost_advice=PlanCost(db2=100.0, accelerator=1.0),
        )
        assert decision.engine == "DB2"


class TestRoutingGuards:
    def test_point_lookup_on_unknown_name_is_clean_routing_error(self, router):
        # A from-item that resolves to nothing must surface as a
        # RoutingError, not leak the internal catalog exception.
        stmt = parse_statement("SELECT v FROM ghost WHERE id = 5")
        with pytest.raises(RoutingError, match="not a routable table"):
            router._is_point_lookup(stmt)

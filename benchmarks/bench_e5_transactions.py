"""E5 — AOT transaction throughput and snapshot-isolation overhead.

Paper claim (Sec. 2): with AOTs the accelerator participates in the DB2
transaction context — own uncommitted changes visible, snapshot
isolation for everyone else, concurrent queries supported. This bench
measures the cost of that machinery: AOT DML+query transactions per
second, single-session and with concurrent readers, plus autocommit as
the no-delta baseline.
"""

import threading

import pytest

from bench_util import make_system


def fresh_stage(rows: int = 2000):
    db = make_system()
    conn = db.connect()
    conn.execute("CREATE TABLE STAGE (ID INTEGER, V DOUBLE) IN ACCELERATOR")
    values = ", ".join(f"({i}, {float(i)})" for i in range(rows))
    conn.execute(f"INSERT INTO STAGE VALUES {values}")
    return db, conn


@pytest.fixture(scope="module")
def system():
    return fresh_stage()


def test_e5_autocommit_dml(benchmark, record, system):
    db, conn = system
    counter = iter(range(10**9))

    def run():
        key = 10_000 + next(counter)
        conn.execute(f"INSERT INTO STAGE VALUES ({key}, 1.0)")

    benchmark.pedantic(run, rounds=100, iterations=1)
    record(
        "E5 transactions",
        f"autocommit AOT insert: "
        f"{benchmark.stats.stats.mean * 1e6:8.1f}us/stmt",
    )


def test_e5_full_transaction(benchmark, record, system):
    """BEGIN; insert; update; own-visibility query; COMMIT."""
    db, conn = system
    counter = iter(range(10**9))

    def run():
        key = 20_000_000 + next(counter)
        conn.execute("BEGIN")
        conn.execute(f"INSERT INTO STAGE VALUES ({key}, 0.0)")
        conn.execute(f"UPDATE stage SET v = 1 WHERE id = {key}")
        visible = conn.execute(
            f"SELECT v FROM stage WHERE id = {key}"
        ).scalar()
        assert visible == 1.0  # own uncommitted change visible
        conn.execute("COMMIT")

    # Fixed rounds: each round grows the table, so calibrated runs would
    # otherwise measure a moving target.
    benchmark.pedantic(run, rounds=50, iterations=1)
    record(
        "E5 transactions",
        f"txn (insert+update+query+commit): "
        f"{benchmark.stats.stats.mean * 1e3:8.2f}ms/txn",
    )


def test_e5_rollback_cost(benchmark, record, system):
    db, conn = system

    def run():
        conn.execute("BEGIN")
        conn.execute("INSERT INTO STAGE VALUES (99999999, 0.0)")
        conn.execute("ROLLBACK")

    benchmark(run)
    record(
        "E5 transactions",
        f"txn rollback: {benchmark.stats.stats.mean * 1e3:8.2f}ms/txn",
    )


@pytest.mark.parametrize("readers", [0, 2, 4])
def test_e5_writer_with_concurrent_readers(benchmark, record, readers):
    """A writer transaction while N reader sessions run snapshot queries
    — readers never block the writer (MVCC), so throughput should hold."""
    db, conn = fresh_stage()
    stop = threading.Event()
    read_counts = [0] * readers

    def reader(slot: int):
        session = db.connect()
        while not stop.is_set():
            count = session.execute("SELECT COUNT(*) FROM stage").scalar()
            assert count >= 2000
            read_counts[slot] += 1

    threads = [
        threading.Thread(target=reader, args=(slot,)) for slot in range(readers)
    ]
    for thread in threads:
        thread.start()
    counter = iter(range(10**9))
    try:

        def run():
            key = 50_000_000 + next(counter)
            conn.execute("BEGIN")
            conn.execute(f"INSERT INTO STAGE VALUES ({key}, 0.0)")
            conn.execute("COMMIT")

        benchmark.pedantic(run, rounds=30, iterations=1)
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    record(
        "E5 transactions",
        f"writer txn with {readers} concurrent readers: "
        f"{benchmark.stats.stats.mean * 1e3:8.2f}ms/txn "
        f"(reads completed: {sum(read_counts)})",
    )

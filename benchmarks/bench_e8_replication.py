"""E8 — Replication drain: batch size vs throughput and staleness.

Paper context (Sec. 2): accelerated copies are maintained from the DB2
change log; with AOTs the same feed is what a legacy pipeline pays per
re-replicated stage. Expected shape: larger apply batches amortise the
per-batch epoch/lookup cost, so records/second rises with batch size
while per-record staleness (time until a change is visible on the copy)
falls.
"""

import pytest

from bench_util import make_system

CHANGES = 20000


def prepared_system():
    """System with CHANGES committed-but-undrained update records."""
    db = make_system(auto_replicate=False)
    conn = db.connect()
    conn.execute(
        "CREATE TABLE ITEMS (ID INTEGER NOT NULL PRIMARY KEY, V DOUBLE)"
    )
    for start in range(0, CHANGES, 5000):
        values = ", ".join(
            f"({i}, {float(i)})" for i in range(start, start + 5000)
        )
        conn.execute(f"INSERT INTO ITEMS VALUES {values}")
    db.add_table_to_accelerator("ITEMS")
    conn.execute("UPDATE items SET v = v + 1")  # CHANGES records
    assert db.replication.backlog == CHANGES
    return db, conn


@pytest.mark.parametrize("batch_size", [100, 1000, 10000])
def test_e8_drain_batch_size(benchmark, record, batch_size):
    drained = []

    def setup():
        return (prepared_system(),), {}

    def run(prepared):
        db, __conn = prepared
        applied = db.replication.drain(batch_size=batch_size)
        drained.append((db, applied))

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    db, applied = drained[-1]
    assert applied == CHANGES
    assert db.replication.backlog == 0
    seconds = benchmark.stats.stats.mean
    record(
        "E8 replication batching",
        f"batch={batch_size:<6} drain={seconds * 1000:9.1f}ms "
        f"throughput={CHANGES / seconds:12,.0f} records/s "
        f"batches={CHANGES // batch_size}",
    )


def test_e8_copy_consistency_after_drain(benchmark, record):
    """Correctness companion: after a drain the copy equals the source."""
    results = []

    def setup():
        return (prepared_system(),), {}

    def run(prepared):
        db, conn = prepared
        db.replication.drain(batch_size=2000)
        conn.set_acceleration("NONE")
        db2_sum = conn.execute("SELECT SUM(v) FROM items").scalar()
        conn.set_acceleration("ALL")
        accel_sum = conn.execute("SELECT SUM(v) FROM items").scalar()
        results.append((db2_sum, accel_sum))

    benchmark.pedantic(run, setup=setup, rounds=2, iterations=1)
    db2_sum, accel_sum = results[-1]
    assert db2_sum == accel_sum
    record(
        "E8 replication batching",
        f"post-drain consistency: db2_sum == accel_sum == {accel_sum:,.0f}",
    )


def test_e8_staleness_window(record, benchmark):
    """Backlog observable between commit and drain (manual mode)."""
    db, conn = prepared_system()
    staleness = [db.replication.backlog]

    def run():
        db.replication.drain(batch_size=5000, max_batches=1)
        staleness.append(db.replication.backlog)

    benchmark.pedantic(run, rounds=4, iterations=1)
    record(
        "E8 replication batching",
        f"staleness after successive 5k drains: {staleness}",
    )
    assert staleness[-1] == 0

"""E11 — Fault tolerance: failback routing and resilient replication.

The paper's deployment assumes the accelerator can disappear (appliance
maintenance, link loss) without taking DB2 down with it. This experiment
measures what that safety net costs and proves it loses nothing:

* a ``ENABLE WITH FAILBACK`` session keeps answering queries during a
  full accelerator outage — every result identical to the healthy run —
  while a plain ``ENABLE`` session surfaces the outage immediately;
* once the outage ends, the circuit breaker closes on the first
  successful probe and replication drains the accumulated backlog with
  zero lost and zero duplicated records, even with transient link faults
  injected into the drain itself;
* the whole scenario is deterministic under a fixed fault seed.
"""

import pytest

from bench_util import make_system
from repro.errors import AcceleratorUnavailableError
from repro.federation.health import AcceleratorHealthState

ROWS = 10000

QUERIES = [
    "SELECT COUNT(*) FROM items",
    "SELECT SUM(v) FROM items",
    "SELECT MIN(v), MAX(v) FROM items",
    "SELECT g, COUNT(*), SUM(v) FROM items GROUP BY g ORDER BY g",
]


def prepared_system(fault_seed=7):
    """Accelerated ITEMS table, replication caught up, long cooldown."""
    db = make_system(
        auto_replicate=False,
        fault_seed=fault_seed,
        cooldown_seconds=3600.0,
    )
    conn = db.connect()
    conn.execute(
        "CREATE TABLE ITEMS (ID INTEGER NOT NULL PRIMARY KEY, "
        "G INTEGER, V DOUBLE)"
    )
    for start in range(0, ROWS, 5000):
        values = ", ".join(
            f"({i}, {i % 8}, {float(i)})" for i in range(start, start + 5000)
        )
        conn.execute(f"INSERT INTO ITEMS VALUES {values}")
    db.add_table_to_accelerator("ITEMS")
    assert db.replication.backlog == 0
    return db, conn


def run_queries(conn):
    return [conn.execute(q).rows for q in QUERIES]


def test_e11_failback_equivalence_during_outage(benchmark, record):
    """During an outage a FAILBACK session answers every query with the
    same results as the healthy run; plain ENABLE fails fast."""
    db, conn = prepared_system()
    conn.set_acceleration("ENABLE WITH FAILBACK")
    healthy = run_queries(conn)
    assert all(h.engine == "ACCELERATOR" for h in _last_records(db))

    db.health.force_offline()
    outage = benchmark.pedantic(
        lambda: run_queries(conn), rounds=3, iterations=1
    )
    assert outage == healthy
    assert all(h.reason.startswith("failback") for h in _last_records(db))

    plain = db.connect()
    plain.set_acceleration("ENABLE")
    with pytest.raises(AcceleratorUnavailableError):
        plain.execute(QUERIES[0])

    seconds = benchmark.stats.stats.mean
    record(
        "E11 fault tolerance",
        f"outage failback: {len(QUERIES)} queries on DB2 in "
        f"{seconds * 1000:7.1f}ms, results == healthy run, "
        f"plain ENABLE -> AcceleratorUnavailableError",
    )


def _last_records(db):
    """History records of the last len(QUERIES) statements."""
    return list(db.statement_history)[-len(QUERIES):]


def test_e11_healthy_vs_failback_latency(benchmark, record):
    """Cost of the failback detour: same query, accelerator vs DB2."""
    db, conn = prepared_system()
    conn.set_acceleration("ENABLE WITH FAILBACK")
    query = QUERIES[3]

    healthy_result = conn.execute(query).rows
    db.health.force_offline()

    def run():
        return conn.execute(query).rows

    failback_result = benchmark.pedantic(run, rounds=5, iterations=2)
    assert failback_result == healthy_result
    record(
        "E11 fault tolerance",
        f"failback GROUP BY on DB2: "
        f"{benchmark.stats.stats.mean * 1000:7.2f}ms/query "
        f"(row-store scan replaces accelerator scan)",
    )


def test_e11_recovery_drains_backlog_exactly_once(benchmark, record):
    """After the outage the breaker closes on the first probe and the
    backlog drains with zero lost/duplicated records, despite transient
    link faults injected into the drain itself."""
    db, conn = prepared_system()
    conn.set_acceleration("ENABLE WITH FAILBACK")

    # Outage: the breaker opens, writes keep committing on DB2.
    db.health.force_offline()
    conn.execute("UPDATE items SET v = v + 1")
    assert db.replication.backlog == ROWS
    assert db.replication.drain() == 0  # skipped while OFFLINE
    assert db.replication.stats().drains_skipped_offline == 1

    # Recovery: cooldown elapses; the drain doubles as the probe.
    db.health.cooldown_seconds = 0.0
    sent = db.faults.calls.get("interconnect", 0)
    rule = db.faults.add(  # two transient drops inside the drain
        "interconnect", schedule=(sent + 1, sent + 2)
    )
    drained = []

    def run():
        drained.append(db.replication.drain(batch_size=2000))

    benchmark.pedantic(run, rounds=1, iterations=1)
    db.faults.remove(rule)
    assert drained[-1] == ROWS
    assert db.replication.retries == 2
    assert db.replication.backlog == 0
    assert db.health.state is AcceleratorHealthState.ONLINE

    # Zero lost, zero duplicated: copy matches the source exactly.
    conn.set_acceleration("NONE")
    db2_rows = conn.execute("SELECT id, v FROM items ORDER BY id").rows
    conn.set_acceleration("ALL")
    accel_rows = conn.execute("SELECT id, v FROM items ORDER BY id").rows
    assert accel_rows == db2_rows
    assert len(accel_rows) == ROWS

    stats = db.replication.stats()
    record(
        "E11 fault tolerance",
        f"recovery drain: {ROWS} records in "
        f"{benchmark.stats.stats.mean * 1000:7.1f}ms with "
        f"{stats.retries} retries "
        f"(backoff {stats.simulated_backoff_seconds * 1000:.1f}ms sim), "
        f"0 lost / 0 duplicated, breaker closed",
    )


def test_e11_deterministic_under_fixed_seed(record):
    """Identical fault seeds produce identical injected faults, retries
    and backoff — the outage scenario replays bit-for-bit."""

    def scenario(seed):
        db, conn = prepared_system(fault_seed=seed)
        db.faults.add("interconnect", probability=0.4)
        conn.execute("UPDATE items SET v = v + 1")
        db.replication.drain(batch_size=1000)
        stats = db.replication.stats()
        return (
            db.faults.total_injected,
            stats.retries,
            stats.batches_abandoned,
            stats.records_applied,
            round(stats.simulated_backoff_seconds, 9),
        )

    first = scenario(seed=123)
    second = scenario(seed=123)
    other = scenario(seed=456)
    assert first == second
    assert first[0] > 0  # the probabilistic rule actually fired
    record(
        "E11 fault tolerance",
        f"determinism: seed=123 twice -> {first} == {second}; "
        f"seed=456 -> {other}",
    )

"""E10 — Ablation: what makes accelerator execution fast here.

DESIGN.md §5 calls out three design choices; each is toggled in
isolation:

* vectorised columnar execution vs the row-at-a-time model
  (engine-level comparison on an identical scan);
* zone-map chunk skipping on a selective range predicate;
* slice parallelism (simulated SPU count) via the busy-time model.
"""

import pytest

from repro import AcceleratedDatabase
from repro.sql import parse_statement

from bench_util import make_star_system

_TIMES: dict[str, float] = {}


@pytest.fixture(scope="module")
def system():
    return make_star_system(500, 50, 20000)


@pytest.mark.parametrize("engine", ["row_at_a_time", "vectorised"])
def test_e10_execution_model(benchmark, record, system, engine):
    db, conn = system
    conn.set_acceleration("NONE" if engine == "row_at_a_time" else "ALL")
    sql = (
        "SELECT t_quantity, COUNT(*), SUM(t_amount), AVG(t_amount) "
        "FROM transactions GROUP BY t_quantity"
    )

    def run():
        return conn.execute(sql)

    benchmark(run)
    _TIMES[engine] = benchmark.stats.stats.mean
    if len([k for k in _TIMES if k in ("row_at_a_time", "vectorised")]) == 2:
        ratio = _TIMES["row_at_a_time"] / _TIMES["vectorised"]
        record(
            "E10 ablation",
            f"execution model: row-at-a-time="
            f"{_TIMES['row_at_a_time'] * 1000:8.2f}ms "
            f"vectorised={_TIMES['vectorised'] * 1000:8.2f}ms "
            f"advantage={ratio:5.1f}x",
        )
        assert ratio > 2


@pytest.mark.parametrize("zone_maps", ["on", "off"])
def test_e10_zone_maps(benchmark, record, zone_maps):
    # Small chunks + clustered ids make skipping meaningful.
    db = AcceleratedDatabase(slice_count=4, chunk_rows=1024)
    conn = db.connect()
    conn.execute("CREATE TABLE M (ID INTEGER, V DOUBLE) IN ACCELERATOR")
    for start in range(0, 60000, 10000):
        values = ", ".join(
            f"({i}, {float(i % 97)})" for i in range(start, start + 10000)
        )
        conn.execute(f"INSERT INTO M VALUES {values}")
    db.accelerator.zone_maps_enabled = zone_maps == "on"
    sql = "SELECT COUNT(*), SUM(v) FROM m WHERE id BETWEEN 31000 AND 32000"

    def run():
        return conn.execute(sql)

    result = benchmark(run)
    assert result.rows[0][0] == 1001
    skipped = db.accelerator.chunks_skipped
    _TIMES[f"zm_{zone_maps}"] = benchmark.stats.stats.mean
    record(
        "E10 ablation",
        f"zone maps {zone_maps:<3}: "
        f"mean={benchmark.stats.stats.mean * 1e6:9.1f}us "
        f"chunks_skipped_total={skipped}",
    )
    if "zm_on" in _TIMES and "zm_off" in _TIMES:
        record(
            "E10 ablation",
            f"zone-map speedup on selective scan = "
            f"{_TIMES['zm_off'] / _TIMES['zm_on']:5.1f}x",
        )


@pytest.mark.parametrize("slices", [1, 2, 4, 8])
def test_e10_slice_parallelism(benchmark, record, slices):
    """Simulated SPU scaling: modelled busy time divides by slice count
    (wall time is host-bound in this simulation, so the model is the
    observable — exactly the substitution DESIGN.md documents)."""
    db = AcceleratedDatabase(slice_count=slices, chunk_rows=4096)
    conn = db.connect()
    conn.execute("CREATE TABLE S (ID INTEGER, V DOUBLE) IN ACCELERATOR")
    for start in range(0, 40000, 10000):
        values = ", ".join(
            f"({i}, 1.0)" for i in range(start, start + 10000)
        )
        conn.execute(f"INSERT INTO S VALUES {values}")
    sql = "SELECT SUM(v) FROM s"

    busy = []

    def run():
        before = db.accelerator.simulated_busy_seconds
        conn.execute(sql)
        busy.append(db.accelerator.simulated_busy_seconds - before)

    benchmark.pedantic(run, rounds=5, iterations=1)
    record(
        "E10 ablation",
        f"slices={slices}: simulated scan busy time "
        f"{busy[-1] * 1e6:9.2f}us/query "
        f"(wall {benchmark.stats.stats.mean * 1e3:7.2f}ms)",
    )


@pytest.mark.parametrize("groomed", ["before", "after"])
def test_e10_groom(benchmark, record, groomed):
    """GROOM ablation: scanning a table where 80% of rows are deleted,
    before vs after reclaiming the dead versions."""
    db = AcceleratedDatabase(slice_count=4, chunk_rows=2048)
    conn = db.connect()
    conn.execute("CREATE TABLE G (ID INTEGER, V DOUBLE) IN ACCELERATOR")
    for start in range(0, 50000, 10000):
        values = ", ".join(
            f"({i}, {float(i % 13)})" for i in range(start, start + 10000)
        )
        conn.execute(f"INSERT INTO G VALUES {values}")
    conn.execute("DELETE FROM g WHERE id % 5 <> 0")  # 80% dead versions
    if groomed == "after":
        db.accelerator.groom("G")
    sql = "SELECT COUNT(*), SUM(v) FROM g"

    def run():
        return conn.execute(sql)

    result = benchmark(run)
    assert result.rows[0][0] == 10000
    table = db.accelerator.storage_for("G")
    physical = sum(len(c) for __, c in table.iter_chunks())
    _TIMES[f"groom_{groomed}"] = benchmark.stats.stats.mean
    record(
        "E10 ablation",
        f"groom {groomed:<6}: mean="
        f"{benchmark.stats.stats.mean * 1e6:9.1f}us "
        f"physical_rows={physical}",
    )
    if "groom_before" in _TIMES and "groom_after" in _TIMES:
        record(
            "E10 ablation",
            f"groom speedup on 80%-deleted table = "
            f"{_TIMES['groom_before'] / _TIMES['groom_after']:5.1f}x",
        )

"""E1 — Multi-stage pipeline: legacy (materialise in DB2) vs AOT.

Paper claim (Sec. 1/2): multi-staged data-analysis pipelines pay a
materialisation + re-replication round trip per stage; accelerator-only
tables eliminate it. Expected shape: legacy interconnect bytes grow with
data size × stage count; AOT bytes stay at statement-overhead level, so
the legacy/aot byte ratio grows with scale.
"""

import pytest

from repro import Pipeline

from bench_util import make_churn_system

#: (rows, mode) -> bytes moved, for the cross-mode ratio rows.
_BYTES: dict[tuple[int, str], int] = {}


def churn_pipeline() -> Pipeline:
    return (
        Pipeline("e1")
        .add_transform(
            "impute",
            "E1_CLEAN",
            "SELECT cust_id, tenure_months, monthly_charges, "
            "COALESCE(total_charges, monthly_charges * tenure_months) "
            "AS total_charges, support_calls, contract_months, churned "
            "FROM churn",
        )
        .add_transform(
            "features",
            "E1_FEATURES",
            "SELECT cust_id, tenure_months, monthly_charges, total_charges, "
            "support_calls, contract_months, "
            "total_charges / tenure_months AS avg_monthly, churned "
            "FROM e1_clean",
        )
        .add_transform(
            "filter",
            "E1_INPUT",
            "SELECT * FROM e1_features WHERE tenure_months >= 2",
        )
        .add_procedure(
            "cluster",
            "CALL INZA.KMEANS('intable=E1_INPUT, outtable=E1_SEGMENTS, "
            "id=CUST_ID, k=4, model=E1_KM')",
            ("E1_SEGMENTS",),
        )
    )


@pytest.mark.parametrize("mode", ["legacy", "aot"])
@pytest.mark.parametrize("rows", [2000, 10000])
def test_e1_pipeline(benchmark, record, rows, mode):
    db, conn = make_churn_system(rows)
    pipeline = churn_pipeline()
    outcomes = []

    def run():
        outcomes.append(pipeline.run(conn, mode=mode))

    benchmark.pedantic(run, rounds=3, iterations=1)
    result = outcomes[-1]
    movement = result.total_movement
    benchmark.extra_info["bytes_moved"] = movement.total_bytes
    benchmark.extra_info["simulated_link_seconds"] = round(
        movement.simulated_seconds, 6
    )
    record(
        "E1 pipeline movement",
        f"rows={rows:<6} mode={mode:<7} "
        f"bytes_moved={movement.total_bytes:<10,} "
        f"to_accel={movement.bytes_to_accelerator:<10,} "
        f"from_accel={movement.bytes_from_accelerator:<10,} "
        f"elapsed={result.total_elapsed * 1000:8.1f}ms",
    )
    _BYTES[(rows, mode)] = movement.total_bytes
    other = _BYTES.get((rows, "legacy" if mode == "aot" else "aot"))
    if other is not None:
        legacy = _BYTES[(rows, "legacy")]
        aot = _BYTES[(rows, "aot")]
        ratio = legacy / max(1, aot)
        record(
            "E1 pipeline movement",
            f"rows={rows:<6} legacy/aot byte ratio = {ratio:,.0f}x",
        )
        # The paper's qualitative claim, conservatively.
        assert ratio > 10

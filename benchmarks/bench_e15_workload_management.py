"""E15 — Workload management: admission control under mixed load.

Three questions about ``repro.wlm``:

* what does the workload manager cost when it is **disabled** (the
  default)? A single session times the same statement mix with the WLM
  off and on; the off path must be within noise of free.
* does admission control protect **interactive tail latency** when the
  accelerator is oversubscribed? Two interactive sessions run cheap
  lookups (they bypass the queue — cost-aware admission) while ten
  analytics sessions hammer heavy GROUP BYs through a 5-slot gate.
  With the WLM off everything runs at once and the GIL-bound engine
  thrashes; with it on, at most five heavy scans run while the rest
  queue. Interactive p99 is the headline observable.
* does **load shedding** actually shed — and are shed statements
  retryable to completion? A burst run with the default queue
  high-water mark counts fast rejections and proves every worker still
  finishes its workload by retrying.

The mixed-workload comparison uses a deepened queue high-water mark so
analytics statements *queue* rather than shed-and-retry: the storm is
fixed-size, and retry sleeps would idle the gate and muddy the
throughput comparison. Shedding is measured separately (question 3).

Results land in ``benchmarks/results/e15_workload_management.json``.
Set ``E15_SMOKE=1`` (the CI smoke job does) for a fast
correctness-only pass.
"""

import json
import os
import statistics
import threading
import time
from pathlib import Path

from repro import AcceleratedDatabase
from repro.errors import StatementShedError

RESULTS_DIR = Path(__file__).parent / "results"

SMOKE = os.environ.get("E15_SMOKE", "") not in ("", "0")

#: Fact-table rows the analytics queries aggregate over.
FACT_ROWS = 10_000 if SMOKE else 60_000
#: Rows in the lookup table interactive sessions hit (small enough
#: that the row estimate classifies the statements as cheap).
LOOKUP_ROWS = 400
#: Sessions in the oversubscribed storm.
INTERACTIVE_THREADS = 2
ANALYTICS_THREADS = 10
#: Accelerator gate slots for the storm: half the analytics sessions
#: run while the rest queue. Enough overlap to keep the engine busy
#: (numpy kernels release the GIL), few enough to bound the thrash —
#: smaller gates trade measurable throughput for little extra tail
#: protection on this workload.
ACCELERATOR_SLOTS = 5
#: Statements per session in the storm.
INTERACTIVE_ITERS = 40 if SMOKE else 300
ANALYTICS_ITERS = 2 if SMOKE else 4
#: Repeats of the whole storm per configuration (medians reported).
STORM_REPS = 1 if SMOKE else 5
#: Single-session iterations for the disabled-overhead measurement.
OVERHEAD_ITERS = 60 if SMOKE else 400

INTERACTIVE_SQL = "SELECT NAME, V FROM LOOKUP WHERE ID = {key}"
ANALYTICS_SQL = (
    "SELECT G, COUNT(*), SUM(V), AVG(V), MAX(V) FROM FACT GROUP BY G"
)

_RESULTS: dict[str, object] = {}


def _make_system(wlm_enabled: bool, deep_queue: bool = False):
    db = AcceleratedDatabase(
        slice_count=4,
        chunk_rows=4096,
        tracing_enabled=False,
        wlm_enabled=wlm_enabled,
        wlm_db2_slots=4,
        wlm_accelerator_slots=ACCELERATOR_SLOTS,
        wlm_max_queue_seconds=60.0,
    )
    if deep_queue:
        # Hold the whole fixed-size storm in the queue (see module
        # docstring); the default mark is exercised by the burst test.
        db.wlm.shedder.queue_high_water = float(ANALYTICS_THREADS)
    conn = db.connect()
    conn.execute(
        "CREATE TABLE FACT (ID INTEGER, G INTEGER, V DOUBLE) IN ACCELERATOR"
    )
    for base in range(0, FACT_ROWS, 1000):
        rows = ", ".join(
            f"({i}, {i % 23}, {float(i % 97)})"
            for i in range(base, base + 1000)
        )
        conn.execute(f"INSERT INTO FACT VALUES {rows}")
    conn.execute(
        "CREATE TABLE LOOKUP (ID INTEGER, NAME VARCHAR(16), V DOUBLE) "
        "IN ACCELERATOR"
    )
    rows = ", ".join(f"({i}, 'n{i}', {float(i)})" for i in range(LOOKUP_ROWS))
    conn.execute(f"INSERT INTO LOOKUP VALUES {rows}")
    return db


def _percentile(samples, fraction) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(len(ordered) * fraction))
    return ordered[index] * 1000.0


def _run_storm(db, shed_backoff_seconds: float = 0.02) -> dict:
    """One oversubscribed storm; returns latency/throughput observables.

    Analytics workers retry on :class:`StatementShedError` — the error
    is retryable by contract, and a real client would back off and
    resubmit exactly like this.
    """
    interactive_lat: list[float] = []
    analytics_lat: list[float] = []
    lock = threading.Lock()
    sheds = [0]
    barrier = threading.Barrier(INTERACTIVE_THREADS + ANALYTICS_THREADS)

    def interactive(seed):
        def work():
            conn = db.connect()
            barrier.wait()
            for i in range(INTERACTIVE_ITERS):
                key = (seed * 131 + i * 17) % LOOKUP_ROWS
                start = time.perf_counter()
                conn.execute(
                    INTERACTIVE_SQL.format(key=key),
                    service_class="INTERACTIVE",
                )
                elapsed = time.perf_counter() - start
                with lock:
                    interactive_lat.append(elapsed)

        return work

    def analytics(seed):
        def work():
            conn = db.connect()
            barrier.wait()
            done = 0
            while done < ANALYTICS_ITERS:
                start = time.perf_counter()
                try:
                    conn.execute(ANALYTICS_SQL, service_class="ANALYTICS")
                except StatementShedError as error:
                    assert error.retryable
                    with lock:
                        sheds[0] += 1
                    time.sleep(shed_backoff_seconds)
                    continue
                elapsed = time.perf_counter() - start
                with lock:
                    analytics_lat.append(elapsed)
                done += 1

        return work

    threads = [
        threading.Thread(target=interactive(i))
        for i in range(INTERACTIVE_THREADS)
    ]
    threads += [
        threading.Thread(target=analytics(i))
        for i in range(ANALYTICS_THREADS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    statements = len(interactive_lat) + len(analytics_lat)
    return {
        "interactive_p50_ms": _percentile(interactive_lat, 0.50),
        "interactive_p95_ms": _percentile(interactive_lat, 0.95),
        "interactive_p99_ms": _percentile(interactive_lat, 0.99),
        "analytics_p50_ms": _percentile(analytics_lat, 0.50),
        "wall_seconds": wall,
        "throughput_per_s": statements / wall,
        "sheds": sheds[0],
    }


def _median_of(runs, key) -> float:
    return statistics.median(run[key] for run in runs)


def test_e15_disabled_overhead(record):
    """Single session, WLM default-off vs enabled: the off path is free.

    The disabled manager short-circuits before any gate or budget work,
    so enabling it is the only cost worth measuring; both must be
    within noise of each other for the default-off promise to hold.
    """
    sessions = {}
    times: dict[str, list[float]] = {"disabled": [], "enabled": []}
    for label, enabled in (("disabled", False), ("enabled", True)):
        conn = _make_system(wlm_enabled=enabled).connect()
        for i in range(20):  # warm the plan cache and allocator
            conn.execute(INTERACTIVE_SQL.format(key=i))
        sessions[label] = conn
    # Interleave small batches so background load drift on the host
    # hits both configurations equally.
    for batch in range(0, OVERHEAD_ITERS, 20):
        for label, conn in sessions.items():
            for i in range(batch, batch + 20):
                key = (i * 17) % LOOKUP_ROWS
                start = time.perf_counter()
                conn.execute(INTERACTIVE_SQL.format(key=key))
                times[label].append(time.perf_counter() - start)
    medians = {
        label: statistics.median(samples) * 1000.0
        for label, samples in times.items()
    }
    ratio = medians["enabled"] / medians["disabled"]
    record(
        "E15 workload management",
        f"single-session overhead: wlm_off={medians['disabled']:.3f}ms "
        f"wlm_on={medians['enabled']:.3f}ms ratio={ratio:.3f}",
    )
    _RESULTS["disabled_overhead"] = {
        "iterations": OVERHEAD_ITERS,
        "median_off_ms": round(medians["disabled"], 4),
        "median_on_ms": round(medians["enabled"], 4),
        "enabled_over_disabled": round(ratio, 4),
    }
    # Loose bound: sub-millisecond statements are noisy in CI; the
    # measured ratio (recorded above) is what EXPERIMENTS.md quotes.
    assert ratio < 1.25


def test_e15_oversubscribed_mixed_workload(record):
    """2 interactive + 10 analytics sessions vs a 5-slot accelerator gate."""
    runs: dict[str, list[dict]] = {"off": [], "on": []}
    for __ in range(STORM_REPS):
        for label, enabled in (("off", False), ("on", True)):
            db = _make_system(wlm_enabled=enabled, deep_queue=True)
            runs[label].append(_run_storm(db))
            if enabled:
                # Cost-aware admission: cheap lookups bypassed the
                # queue, heavy scans were admitted through slots.
                gate = db.wlm.gates["ACCELERATOR"]
                assert gate.bypassed >= INTERACTIVE_ITERS
                assert gate.admitted >= ANALYTICS_ITERS
                assert gate.slots_in_use == 0

    summary = {}
    for label in ("off", "on"):
        summary[label] = {
            key: round(_median_of(runs[label], key), 3)
            for key in (
                "interactive_p50_ms",
                "interactive_p95_ms",
                "interactive_p99_ms",
                "analytics_p50_ms",
                "wall_seconds",
                "throughput_per_s",
            )
        }
        record(
            "E15 workload management",
            f"storm wlm={label}: interactive "
            f"p50={summary[label]['interactive_p50_ms']:6.1f}ms "
            f"p95={summary[label]['interactive_p95_ms']:6.1f}ms "
            f"p99={summary[label]['interactive_p99_ms']:6.1f}ms "
            f"analytics p50={summary[label]['analytics_p50_ms']:7.1f}ms "
            f"throughput={summary[label]['throughput_per_s']:6.1f}/s",
        )
    p99_ratio = (
        summary["on"]["interactive_p99_ms"]
        / summary["off"]["interactive_p99_ms"]
    )
    throughput_ratio = (
        summary["on"]["throughput_per_s"] / summary["off"]["throughput_per_s"]
    )
    record(
        "E15 workload management",
        f"storm: interactive_p99 on/off={p99_ratio:.3f} "
        f"throughput on/off={throughput_ratio:.3f}",
    )
    _RESULTS["mixed_workload"] = {
        "reps": STORM_REPS,
        "interactive_threads": INTERACTIVE_THREADS,
        "analytics_threads": ANALYTICS_THREADS,
        "accelerator_slots": ACCELERATOR_SLOTS,
        **{f"wlm_{k}": v for k, v in summary.items()},
        "interactive_p99_on_over_off": round(p99_ratio, 4),
        "throughput_on_over_off": round(throughput_ratio, 4),
    }
    if not SMOKE:
        # Admission control must protect the interactive tail without
        # giving away the workload's throughput. Bounds are loose
        # relative to the measured gap (see EXPERIMENTS.md) because a
        # 1-core CI host makes wall-clock numbers noisy.
        assert p99_ratio < 1.0, "WLM did not improve interactive p99"
        assert throughput_ratio > 0.75


def test_e15_load_shedding_burst(record):
    """Default high-water mark: bursts shed fast, retries complete."""
    db = _make_system(wlm_enabled=True)  # default queue_high_water
    # Squeeze the gate so the 10-session burst overruns the high-water
    # mark (2x slots) and the shedder actually fires.
    db.wlm.resize_gate("ACCELERATOR", 2)
    result = _run_storm(db, shed_backoff_seconds=0.005)
    gate = db.wlm.gates["ACCELERATOR"]
    record(
        "E15 workload management",
        f"shedding burst: sheds={result['sheds']} "
        f"gate_shed={gate.shed} admitted={gate.admitted} "
        f"statements_shed={db.wlm.statements_shed}",
    )
    _RESULTS["shedding_burst"] = {
        "sheds": result["sheds"],
        "gate_shed": gate.shed,
        "gate_admitted": gate.admitted,
        "wall_seconds": round(result["wall_seconds"], 3),
    }
    # Every analytics worker finished its full workload by retrying, so
    # shedding degraded nothing — it only bounded the queue.
    assert gate.admitted >= ANALYTICS_THREADS * ANALYTICS_ITERS
    assert gate.slots_in_use == 0
    assert db.wlm.statements_shed == result["sheds"]
    if not SMOKE:
        assert result["sheds"] > 0, "burst never hit the high-water mark"


def test_e15_export_results():
    """Write the collected numbers for EXPERIMENTS.md to quote."""
    assert "mixed_workload" in _RESULTS
    payload = {
        "experiment": "E15",
        "smoke": SMOKE,
        "fact_rows": FACT_ROWS,
        "cores": os.cpu_count(),
        **_RESULTS,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    target = RESULTS_DIR / "e15_workload_management.json"
    target.write_text(json.dumps(payload, indent=2) + "\n")
    written = json.loads(target.read_text())
    assert written["experiment"] == "E15"

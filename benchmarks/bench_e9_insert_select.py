"""E9 — ELT via INSERT ... SELECT: AOT target vs DB2 target.

Paper claim (Sec. 2): AOTs are populated with INSERT statements whose
sub-select may invoke arbitrary transformations over accelerated tables
or other AOTs — executing entirely in place. Expected shape: with an AOT
target, interconnect bytes stay flat as the transformed row count grows;
with a DB2 target the result set crosses the interconnect (and the
target's copy maintenance re-ships it).
"""

import pytest

from bench_util import make_star_system

TRANSFORM = (
    "SELECT t_id, t_customer, t_amount * 1.19 AS gross, "
    "CASE WHEN t_amount > 1000 THEN 'BIG' ELSE 'SMALL' END AS bucket "
    "FROM transactions WHERE t_quantity >= {min_quantity}"
)

_BYTES: dict[tuple[str, str], int] = {}


@pytest.fixture(scope="module")
def system():
    return make_star_system(500, 50, 15000)


@pytest.mark.parametrize("selectivity", ["narrow", "wide"])
@pytest.mark.parametrize("target", ["aot", "db2"])
def test_e9_insert_select(benchmark, record, system, target, selectivity):
    db, conn = system
    min_quantity = 7 if selectivity == "narrow" else 1
    select = TRANSFORM.format(min_quantity=min_quantity)
    table = f"E9_{target}_{selectivity}".upper()
    suffix = " IN ACCELERATOR" if target == "aot" else ""
    moved = []

    def run():
        conn.execute(f"DROP TABLE IF EXISTS {table}")
        snapshot = db.movement_snapshot()
        outcome = conn.execute(
            f"CREATE TABLE {table} AS ({select}){suffix}"
        )
        moved.append((outcome.rowcount, db.movement_since(snapshot)))

    benchmark.pedantic(run, rounds=3, iterations=1)
    rows, movement = moved[-1]
    benchmark.extra_info["bytes"] = movement.total_bytes
    _BYTES[(target, selectivity)] = movement.total_bytes
    record(
        "E9 insert-select ELT",
        f"target={target:<4} selectivity={selectivity:<7} rows={rows:<7} "
        f"bytes={movement.total_bytes:<10,} "
        f"mean={benchmark.stats.stats.mean * 1000:8.1f}ms",
    )
    other = _BYTES.get(("db2" if target == "aot" else "aot", selectivity))
    if other is not None:
        db2_bytes = _BYTES[("db2", selectivity)]
        aot_bytes = _BYTES[("aot", selectivity)]
        record(
            "E9 insert-select ELT",
            f"selectivity={selectivity:<7} db2/aot byte ratio = "
            f"{db2_bytes / max(1, aot_bytes):,.0f}x",
        )
        assert db2_bytes > aot_bytes

"""E19 — Unified analytics core: chunk-parallel training + PREDICT.

PR-9 refactored every trainer onto the shared Bismarck-style
``ModelAggregate`` core (``repro.analytics.uda``) and pushed scoring
into the query path as the vectorized ``PREDICT(model, features…)``
scalar. This experiment answers the two questions that refactor raises:

* is the unified chunk-parallel path *worth it*? Training throughput is
  measured for the unified core at 1 and 4 scan workers against the
  retained legacy single-pass loops (``kmeans_fit``, ``linreg_fit``),
  with identity gates proving the fitted parameters did not move
  (1e-9 for floats, exact for assignments). Wall time is reported as
  measured; on a single-core host threads cannot beat the sequential
  pass, so — exactly like E13's scan sweep — the gated observable is
  the *modeled* critical path: measured wall minus the per-partition
  transition time that overlaps on a multi-core host (per-partition
  seconds come from the worker pool, so the model is measured, not
  assumed);
* what does in-kernel scoring buy over the application-side pattern the
  procedures force — one scoring call per tuple? A single vectorized
  ``PREDICT`` scan over ≥100k rows is gated at ≥5× the per-row loop,
  byte-identical outputs.

Results land in ``benchmarks/results/e19_unified_analytics.json``
(uploaded as a CI artifact). Set ``E19_SMOKE=1`` (the CI smoke job
does) for a fast small-data pass; the committed JSON comes from a
full-scale run.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from bench_util import make_system
from repro.analytics import uda
from repro.analytics.framework import ProcedureContext
from repro.analytics.kmeans import KMeansAggregate, kmeans_fit
from repro.analytics.regression import LinRegAggregate, linreg_fit
from repro.analytics.scoring import build_scorer
from repro.obs.export import export_json
from repro.workloads import create_churn_table

RESULTS_DIR = Path(__file__).parent / "results"
SMOKE = os.environ.get("E19_SMOKE", "") not in ("", "0")

#: Training-table rows. Must clear the engine's ``parallel_min_rows``
#: floor (16384) so workers=4 actually takes the partitioned path.
TRAIN_ROWS = 24_000 if SMOKE else 60_000
#: Scoring-table rows. The acceptance gate demands ≥100k at full scale.
SCORE_ROWS = 12_000 if SMOKE else 120_000
#: k-means work knobs: enough iterations that training is compute-bound.
KMEANS_K = 8
KMEANS_ITERS = 10
#: Timed repetitions per configuration (best-of, to shed warmup noise).
REPEATS = 2 if SMOKE else 3

FEATURES = ["TENURE_MONTHS", "MONTHLY_CHARGES", "SUPPORT_CALLS",
            "CONTRACT_MONTHS"]
LINREG_FEATURES = ["TENURE_MONTHS", "SUPPORT_CALLS", "CONTRACT_MONTHS"]
LINREG_TARGET = "MONTHLY_CHARGES"

_RESULTS: dict[str, object] = {}


def train_system(workers: int):
    db = make_system(parallel_workers=workers)
    conn = db.connect()
    create_churn_table(conn, count=TRAIN_ROWS, accelerate=True)
    return db, conn


def best_of(fn, repeats=REPEATS):
    """Best wall time over ``repeats`` runs, with that run's value."""
    best, value = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        candidate = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, value = elapsed, candidate
    return best, value


def unified_kmeans(db, conn):
    ctx = ProcedureContext(db, conn, {})
    source = uda.TrainingSource.from_context(ctx, "CHURN", FEATURES)
    aggregate = KMeansAggregate(
        KMEANS_K, max_iterations=KMEANS_ITERS, seed=1
    )
    report = uda.train(aggregate, source)
    return aggregate.result(), report


def legacy_kmeans(db, conn):
    ctx = ProcedureContext(db, conn, {})
    matrix = ctx.read_matrix("CHURN", FEATURES)
    return kmeans_fit(matrix, KMEANS_K, max_iterations=KMEANS_ITERS, seed=1)


def unified_linreg(db, conn):
    ctx = ProcedureContext(db, conn, {})
    source = uda.TrainingSource.from_context(
        ctx, "CHURN", LINREG_FEATURES + [LINREG_TARGET]
    )
    aggregate = LinRegAggregate(len(LINREG_FEATURES))
    report = uda.train(aggregate, source)
    return aggregate.result(), report


class SerializedPartitions:
    """Run partitioned epochs one partition at a time, cleanly timed.

    Pool timings are useless for modeling on a shared-core host: each
    task's elapsed time includes interleaved slices of its siblings.
    This stand-in for ``run_partitioned_aggregate`` executes the same
    partition plan strictly serially, so per-partition seconds are pure
    work. The modeled multi-core wall is then the serial wall minus the
    overlap a parallel host reclaims — each epoch's scan stage costs
    ``max`` (its slowest partition) instead of ``sum``. Planning,
    merge, and finalize keep their measured serial cost.
    """

    def __init__(self):
        self.epoch_splits = []

    def __call__(self, plan, partition_fn, budget=None):
        states, rows, seconds = [], 0, []
        for gather in plan.partitions:
            started = time.perf_counter()
            row_ids, columns = gather()
            states.append(partition_fn(row_ids, columns))
            rows += len(row_ids)
            seconds.append(time.perf_counter() - started)
        plan.finish(rows)
        self.epoch_splits.append(seconds)
        return states, rows, seconds

    def modeled_seconds(self, serial_wall: float) -> float:
        overlap = sum(
            sum(splits) - max(splits)
            for splits in self.epoch_splits
            if splits
        )
        return serial_wall - overlap


def modeled_unified(train_fn, db, conn):
    """(modeled multi-core wall, serialized wall) for one training run."""
    serializer = SerializedPartitions()
    real = uda.run_partitioned_aggregate
    uda.run_partitioned_aggregate = serializer
    try:
        started = time.perf_counter()
        train_fn(db, conn)
        serial_wall = time.perf_counter() - started
    finally:
        uda.run_partitioned_aggregate = real
    assert serializer.epoch_splits, "serialized run never went parallel"
    return serializer.modeled_seconds(serial_wall), serial_wall


def legacy_linreg(db, conn):
    ctx = ProcedureContext(db, conn, {})
    matrix = ctx.read_matrix("CHURN", LINREG_FEATURES)
    target = ctx.read_matrix("CHURN", [LINREG_TARGET])[:, 0]
    return linreg_fit(matrix, target)


def test_e19_training_identity_and_throughput(record):
    """Unified training at 1 and 4 workers vs the legacy loops.

    Identity first (the refactor's contract), then wall time. The gate
    is the headline acceptance claim: the chunk-parallel unified path
    at workers=4 beats the legacy single-pass loop on the compute-bound
    model (k-means) — on its modeled critical path, E13-style, because
    a single-core CI host serializes the worker threads."""
    rows = {}
    for workers in (1, 4):
        db, conn = train_system(workers)
        scans_before = db.accelerator.parallel_scans
        km_seconds, (km, km_report) = best_of(
            lambda: unified_kmeans(db, conn)
        )
        lr_seconds, (lr, lr_report) = best_of(
            lambda: unified_linreg(db, conn)
        )
        parallel_scans = db.accelerator.parallel_scans - scans_before
        if workers == 4:
            assert parallel_scans > 0, "workers=4 never took the parallel path"
            assert km_report.parallel_epochs > 0
            km_modeled, km_serial = modeled_unified(unified_kmeans, db, conn)
            lr_modeled, lr_serial = modeled_unified(unified_linreg, db, conn)
        else:
            assert parallel_scans == 0
            km_modeled = km_serial = lr_modeled = lr_serial = None
        rows[workers] = dict(
            kmeans_seconds=km_seconds,
            kmeans_modeled=km_modeled,
            kmeans_serial=km_serial,
            linreg_seconds=lr_seconds,
            linreg_modeled=lr_modeled,
            linreg_serial=lr_serial,
            kmeans=km,
            linreg=lr,
            parallel_scans=parallel_scans,
        )

    legacy_db, legacy_conn = train_system(workers=1)
    legacy_km_seconds, legacy_km = best_of(
        lambda: legacy_kmeans(legacy_db, legacy_conn)
    )
    legacy_lr_seconds, legacy_lr = best_of(
        lambda: legacy_linreg(legacy_db, legacy_conn)
    )

    # Identity gates: the unified core must reproduce the legacy fit.
    for workers, row in rows.items():
        km = row["kmeans"]
        assert np.allclose(km.centroids, legacy_km.centroids, rtol=1e-9), (
            f"kmeans centroids moved at workers={workers}"
        )
        assert np.array_equal(km.assignments, legacy_km.assignments)
        lr = row["linreg"]
        assert np.allclose(
            lr.coefficients, legacy_lr.coefficients, rtol=1e-9
        )
        assert abs(lr.intercept - legacy_lr.intercept) <= 1e-9 * max(
            1.0, abs(legacy_lr.intercept)
        )

    modeled_w4 = rows[4]["kmeans_modeled"]
    speedup = legacy_km_seconds / modeled_w4
    record(
        "E19 unified analytics",
        f"kmeans train ({TRAIN_ROWS} rows, k={KMEANS_K}, "
        f"{KMEANS_ITERS} iters): legacy={legacy_km_seconds * 1000:.0f}ms "
        f"unified@1={rows[1]['kmeans_seconds'] * 1000:.0f}ms "
        f"unified@4 wall={rows[4]['kmeans_seconds'] * 1000:.0f}ms "
        f"modeled={modeled_w4 * 1000:.0f}ms ({speedup:.2f}x vs legacy, "
        f"{os.cpu_count()} cores)",
    )
    record(
        "E19 unified analytics",
        f"linreg train ({TRAIN_ROWS} rows): "
        f"legacy={legacy_lr_seconds * 1000:.1f}ms "
        f"unified@1={rows[1]['linreg_seconds'] * 1000:.1f}ms "
        f"unified@4 wall={rows[4]['linreg_seconds'] * 1000:.1f}ms "
        f"modeled={rows[4]['linreg_modeled'] * 1000:.1f}ms",
    )
    # The acceptance gate: chunk-parallel unified training beats the
    # legacy loop at workers=4 on the compute-bound model. The modeled
    # critical path is gated; wall clock only can beat it on a
    # multi-core host, so it is recorded but asserted only there.
    assert modeled_w4 < legacy_km_seconds, (
        f"unified@4 modeled {modeled_w4:.3f}s not faster than "
        f"legacy {legacy_km_seconds:.3f}s"
    )
    if (os.cpu_count() or 1) >= 4:
        assert rows[4]["kmeans_seconds"] < legacy_km_seconds, (
            f"unified@4 wall {rows[4]['kmeans_seconds']:.3f}s not faster "
            f"than legacy {legacy_km_seconds:.3f}s on a multi-core host"
        )
    _RESULTS["training"] = {
        "rows": TRAIN_ROWS,
        "cores": os.cpu_count(),
        "kmeans": {
            "k": KMEANS_K,
            "iterations": KMEANS_ITERS,
            "legacy_seconds": legacy_km_seconds,
            "unified_w1_seconds": rows[1]["kmeans_seconds"],
            "unified_w4_wall_seconds": rows[4]["kmeans_seconds"],
            "unified_w4_serialized_seconds": rows[4]["kmeans_serial"],
            "unified_w4_modeled_seconds": modeled_w4,
            "modeled_speedup_w4_vs_legacy": speedup,
            "parallel_scans_w4": rows[4]["parallel_scans"],
        },
        "linreg": {
            "legacy_seconds": legacy_lr_seconds,
            "unified_w1_seconds": rows[1]["linreg_seconds"],
            "unified_w4_wall_seconds": rows[4]["linreg_seconds"],
            "unified_w4_serialized_seconds": rows[4]["linreg_serial"],
            "unified_w4_modeled_seconds": rows[4]["linreg_modeled"],
        },
        "identity": "centroids/coefficients rtol<=1e-9, assignments exact",
    }


def scoring_system():
    db = make_system(parallel_workers=4)
    conn = db.connect()
    create_churn_table(conn, count=SCORE_ROWS, accelerate=True)
    conn.execute(
        "CALL INZA.LINEAR_REGRESSION('intable=CHURN, "
        f"target={LINREG_TARGET}, model=PRICE, id=CUST_ID, "
        f"incolumn={';'.join(LINREG_FEATURES)}')"
    )
    return db, conn


def test_e19_predict_vs_per_row_scoring(record):
    """One vectorized PREDICT scan vs one scoring call per tuple.

    The per-tuple loop is what the procedure interface forces on an
    application scoring interactively: per row, look the model up and
    run the scorer on a 1-row matrix — exactly the work each scoring
    CALL repeats, minus SQL overhead, so the measured ratio is a lower
    bound on the real per-CALL gap. Outputs must match bitwise."""
    db, conn = scoring_system()
    predict_sql = (
        "SELECT CUST_ID, "
        f"PREDICT(PRICE, {', '.join(LINREG_FEATURES)}) "
        "FROM CHURN ORDER BY CUST_ID"
    )
    sum_sql = (
        f"SELECT SUM(PREDICT(PRICE, {', '.join(LINREG_FEATURES)})) "
        "FROM CHURN"
    )
    conn.execute(sum_sql)  # warm the plan cache and scorer cache

    vector_seconds, _ = best_of(lambda: conn.execute(sum_sql).scalar())

    ctx = ProcedureContext(db, conn, {})
    matrix = ctx.read_matrix("CHURN", LINREG_FEATURES)

    def per_row():
        out = np.empty(matrix.shape[0])
        for i in range(matrix.shape[0]):
            model = db.models.get("PRICE")
            out[i] = build_scorer(model).score(matrix[i : i + 1])[0]
        return out

    per_row_seconds, per_row_scores = best_of(per_row, repeats=1)

    predicted = conn.execute(predict_sql).rows
    assert len(predicted) == SCORE_ROWS
    assert np.array_equal(
        np.array([row[1] for row in predicted]), per_row_scores
    ), "vectorized PREDICT diverged from per-row scoring"

    ratio = per_row_seconds / vector_seconds
    record(
        "E19 unified analytics",
        f"scoring {SCORE_ROWS} rows: vectorized PREDICT scan "
        f"{vector_seconds * 1000:.0f}ms vs per-row calls "
        f"{per_row_seconds * 1000:.0f}ms ({ratio:.1f}x)",
    )
    assert ratio >= 5.0, (
        f"vectorized PREDICT only {ratio:.1f}x faster than per-row scoring"
    )
    _RESULTS["scoring"] = {
        "rows": SCORE_ROWS,
        "vectorized_seconds": vector_seconds,
        "per_row_seconds": per_row_seconds,
        "speedup": ratio,
        "identity": "bitwise",
    }


def test_e19_export(record):
    """Everything lands in results/e19_unified_analytics.json."""
    payload = {
        "experiment": "E19",
        "smoke": SMOKE,
        "training": _RESULTS.get("training"),
        "scoring": _RESULTS.get("scoring"),
    }
    json.dumps(payload, allow_nan=False)
    target = export_json(RESULTS_DIR / "e19_unified_analytics.json", payload)
    written = json.loads(target.read_text())
    assert written["experiment"] == "E19"
    record(
        "E19 unified analytics",
        "exported training + scoring numbers "
        "-> results/e19_unified_analytics.json",
    )

"""E6 — In-database analytics vs extract-to-client.

Paper claim (Sec. 1/3): running analytics algorithms *on* the
accelerator avoids shipping the base data out of the database. The
client-side emulation extracts the feature table over the interconnect
(as any off-platform tool would), fits the same k-means locally, and
writes assignments back row by row. Expected shape: identical clusters,
but the in-database path moves statement-sized messages while the
client path moves the whole table out and the whole result back.
"""

import numpy as np
import pytest

from repro.analytics.kmeans import kmeans_fit
from repro.metrics.counters import estimate_rows_bytes

from bench_util import make_churn_system

FEATURES = "TENURE_MONTHS;MONTHLY_CHARGES;SUPPORT_CALLS;CONTRACT_MONTHS"
_BYTES: dict[tuple[int, str], int] = {}


@pytest.mark.parametrize("approach", ["in_database", "client_side"])
@pytest.mark.parametrize("rows", [2000, 10000])
def test_e6_kmeans(benchmark, record, rows, approach):
    db, conn = make_churn_system(rows)
    conn.execute("DROP TABLE IF EXISTS SEGMENTS")

    if approach == "in_database":

        def run():
            conn.execute("DROP TABLE IF EXISTS SEGMENTS")
            conn.execute(
                "CALL INZA.KMEANS('intable=CHURN, outtable=SEGMENTS, "
                f"id=CUST_ID, k=4, incolumn={FEATURES}, model=E6_KM')"
            )

    else:

        def run():
            conn.execute("DROP TABLE IF EXISTS SEGMENTS")
            # 1. Extract the feature table to the "client" (result bytes
            #    cross the interconnect and are counted automatically).
            extract = conn.execute(
                "SELECT cust_id, tenure_months, monthly_charges, "
                "support_calls, contract_months FROM churn"
            )
            matrix = np.array(
                [row[1:] for row in extract.rows], dtype=np.float64
            )
            ids = [row[0] for row in extract.rows]
            fit = kmeans_fit(matrix, k=4, seed=1)
            # 2. Ship the assignments back as plain inserts.
            conn.execute(
                "CREATE TABLE SEGMENTS (CUST_ID INTEGER, "
                "CLUSTER_ID INTEGER, DISTANCE DOUBLE) IN ACCELERATOR"
            )
            values = ", ".join(
                f"({ids[i]}, {int(fit.assignments[i])}, "
                f"{float(fit.distances[i])!r})"
                for i in range(len(ids))
            )
            conn.execute(f"INSERT INTO SEGMENTS VALUES {values}")

    snapshot = db.movement_snapshot()
    benchmark.pedantic(run, rounds=3, iterations=1)
    moved = db.movement_since(snapshot)
    per_run = moved.total_bytes // 3
    benchmark.extra_info["bytes_per_run"] = per_run
    _BYTES[(rows, approach)] = per_run
    record(
        "E6 in-database analytics",
        f"rows={rows:<6} approach={approach:<12} "
        f"bytes/run={per_run:<10,} "
        f"mean={benchmark.stats.stats.mean * 1000:8.1f}ms",
    )
    segment_count = conn.execute("SELECT COUNT(*) FROM segments").scalar()
    assert segment_count == rows
    other = _BYTES.get(
        (rows, "client_side" if approach == "in_database" else "in_database")
    )
    if other is not None:
        ratio = _BYTES[(rows, "client_side")] / max(
            1, _BYTES[(rows, "in_database")]
        )
        record(
            "E6 in-database analytics",
            f"rows={rows:<6} client/in-db movement ratio = {ratio:,.0f}x",
        )
        assert ratio > 5

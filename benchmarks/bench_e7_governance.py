"""E7 — Governance overhead: DB2-side authorisation of delegated calls.

Paper claim (abstract/Sec. 3): the framework executes arbitrary
analytics on the accelerator "while ensuring data governance aspects
like privilege management on DB2". Expected shape: the privilege gate
adds microseconds to a CALL that runs for milliseconds — governance is
effectively free — and denials are decided before any accelerator work.
"""

import pytest

from repro.errors import AuthorizationError

from bench_util import make_churn_system

_CALL = (
    "CALL INZA.SUMMARY('intable=CHURN, outtable=E7_OUT_{tag}')"
)

_TIMES: dict[str, float] = {}


@pytest.fixture(scope="module")
def system():
    db, conn = make_churn_system(2000)
    db.create_user("ANALYST")
    admin = conn
    admin.execute("GRANT EXECUTE ON PROCEDURE INZA.SUMMARY TO ANALYST")
    admin.execute("GRANT SELECT ON CHURN TO ANALYST")
    return db, conn


@pytest.mark.parametrize("who", ["admin", "granted_user"])
def test_e7_authorised_call(benchmark, record, system, who):
    db, admin = system
    conn = admin if who == "admin" else db.connect("ANALYST")
    counter = iter(range(10**9))

    def run():
        tag = f"{who}_{next(counter)}"
        conn.execute(_CALL.format(tag=tag))

    benchmark.pedantic(run, rounds=20, iterations=1)
    _TIMES[who] = benchmark.stats.stats.mean
    record(
        "E7 governance",
        f"{who:<13} CALL mean={benchmark.stats.stats.mean * 1e3:8.2f}ms",
    )
    if len(_TIMES) == 2:
        overhead = abs(_TIMES["granted_user"] - _TIMES["admin"])
        record(
            "E7 governance",
            f"privilege-check overhead ≈ {overhead * 1e6:,.0f}us per call "
            f"({overhead / _TIMES['admin'] * 100:.1f}% of call latency)",
        )


def test_e7_denied_call(benchmark, record, system):
    db, __ = system
    db.create_user("INTERN")
    intern = db.connect("INTERN")
    accel_queries_before = db.accelerator.queries_executed

    def run():
        with pytest.raises(AuthorizationError):
            intern.execute(_CALL.format(tag="denied"))

    benchmark.pedantic(run, rounds=20, iterations=1)
    # Denial happens in DB2: the accelerator never executed anything.
    assert db.accelerator.queries_executed == accel_queries_before
    record(
        "E7 governance",
        f"denied call rejected in "
        f"{benchmark.stats.stats.mean * 1e6:8.1f}us "
        "(accelerator untouched)",
    )


def test_e7_privilege_check_microcost(benchmark, record, system):
    """Direct micro-cost of the privilege gate itself (100 checks)."""
    from repro.catalog import Privilege

    db, __ = system
    manager = db.catalog.privileges

    def run_checks():
        for __i in range(100):
            manager.has_privilege(
                "ANALYST", Privilege.SELECT, "TABLE", "CHURN"
            )

    benchmark(run_checks)
    record(
        "E7 governance",
        f"raw privilege check: "
        f"{benchmark.stats.stats.mean / 100 * 1e9:,.0f}ns each",
    )

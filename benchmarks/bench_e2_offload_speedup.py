"""E2 — OLAP offload speedup: DB2 row engine vs accelerated execution.

Paper claim (Sec. 1): the accelerator's primary objective is "extremely
fast execution of complex, analytical queries" on copied data. Expected
shape: the accelerator wins on scans/joins/aggregations, and its
advantage grows with data size (vectorised columnar execution amortises
per-batch overhead; the row engine pays per row).
"""

import pytest

from bench_util import make_star_system

QUERIES = {
    "agg-scan": (
        "SELECT c_region, COUNT(*), AVG(c_income) FROM customers "
        "GROUP BY c_region"
    ),
    "join-agg": (
        "SELECT c.c_region, p.p_category, SUM(t.t_amount) "
        "FROM transactions t "
        "JOIN customers c ON t.t_customer = c.c_id "
        "JOIN products p ON t.t_product = p.p_id "
        "GROUP BY c.c_region, p.p_category"
    ),
    "selective-scan": (
        "SELECT COUNT(*), SUM(t_amount) FROM transactions "
        "WHERE t_amount BETWEEN 500 AND 1500"
    ),
    "top-n": (
        "SELECT t_customer, SUM(t_amount) AS spent FROM transactions "
        "GROUP BY t_customer ORDER BY spent DESC FETCH FIRST 10 ROWS ONLY"
    ),
}

_SCALES = {"5k": (300, 50, 5000), "20k": (1000, 100, 20000)}
_TIMES: dict[tuple[str, str, str], float] = {}


@pytest.fixture(scope="module")
def systems():
    return {
        name: make_star_system(*dims) for name, dims in _SCALES.items()
    }


@pytest.mark.parametrize("engine", ["db2", "accelerator"])
@pytest.mark.parametrize("query", sorted(QUERIES))
@pytest.mark.parametrize("scale", sorted(_SCALES))
def test_e2_offload(benchmark, record, systems, scale, query, engine):
    db, conn = systems[scale]
    conn.set_acceleration("NONE" if engine == "db2" else "ALL")
    sql = QUERIES[query]
    expected_engine = "DB2" if engine == "db2" else "ACCELERATOR"

    def run():
        return conn.execute(sql)

    result = benchmark(run)
    assert result.engine == expected_engine
    stats_mean = benchmark.stats.stats.mean
    _TIMES[(scale, query, engine)] = stats_mean
    other = _TIMES.get(
        (scale, query, "accelerator" if engine == "db2" else "db2")
    )
    if other is not None:
        db2_time = _TIMES[(scale, query, "db2")]
        acc_time = _TIMES[(scale, query, "accelerator")]
        record(
            "E2 offload speedup",
            f"scale={scale:<4} query={query:<15} "
            f"db2={db2_time * 1000:9.2f}ms "
            f"accel={acc_time * 1000:9.2f}ms "
            f"speedup={db2_time / acc_time:7.1f}x",
        )

"""E14 — The shared logical-plan layer: plan once, execute many.

Three questions about the planner introduced for both executors:

* what does binding + rewriting cost, and what does caching the bound
  plan save on repeat executions (plan-once/execute-many vs re-binding
  per statement)?
* how many fewer rows does the accelerator materialise once predicate
  pushdown turns derived-table predicates into scan predicates (and
  therefore zone-map ranges)?
* through the full system, does the statement plan cache — which now
  also carries the bound logical plan — sustain the PR-3 hit-rate bar
  (>= 98%) on a repeated-statement workload?

Results land in ``benchmarks/results/e14_logical_planner.json``. Set
``E14_SMOKE=1`` (the CI smoke job does) to shrink the dataset and
iteration counts for a fast correctness-only pass.
"""

import json
import os
import statistics
import time
from pathlib import Path

import numpy as np

from bench_util import make_star_system
from repro.accelerator import AcceleratorEngine
from repro.catalog import Catalog, Column, TableLocation, TableSchema
from repro.sql import parse_statement
from repro.sql.logical import plan_statement
from repro.sql.types import DOUBLE, INTEGER, VarcharType

RESULTS_DIR = Path(__file__).parent / "results"

SMOKE = os.environ.get("E14_SMOKE", "") not in ("", "0")

#: Fact-table rows for the engine-level sections.
FACT_ROWS = 20_000 if SMOKE else 160_000
#: Timed iterations per configuration.
ITERATIONS = 3 if SMOKE else 9
#: Repeats of each statement for the plan-cache section.
CACHE_REPEATS = 60 if SMOKE else 100

#: Queries whose selective predicate sits *above* a derived table — only
#: pushdown can turn it into scan ranges, so the rows-scanned delta is
#: attributable to the rewriter.
PUSHDOWN_QUERIES = [
    "SELECT sub.id, sub.v FROM (SELECT id, v FROM f) AS sub "
    "WHERE sub.id > {hi} ORDER BY sub.id",
    "SELECT COUNT(*), MIN(sub.v) FROM (SELECT id, v FROM f) AS sub "
    "WHERE sub.id BETWEEN {mid} AND {mid_hi}",
    "SELECT sub.g, COUNT(*) FROM (SELECT id, g FROM f) AS sub "
    "WHERE sub.id > {hi} GROUP BY sub.g ORDER BY 1",
]

#: Statements for the plan-once/execute-many timing section.
OVERHEAD_QUERIES = [
    "SELECT COUNT(*), MIN(v), MAX(v) FROM f WHERE v > 1.0",
    "SELECT g, COUNT(*) FROM f WHERE id > 1000 GROUP BY g ORDER BY 1",
    "SELECT sub.id FROM (SELECT id, v FROM f) AS sub "
    "WHERE sub.v > 2.5 ORDER BY sub.id LIMIT 50",
]

_RESULTS: dict[str, object] = {}


def _fact_engine() -> AcceleratorEngine:
    catalog = Catalog()
    engine = AcceleratorEngine(catalog, slice_count=4, chunk_rows=4096)
    schema = TableSchema(
        [
            Column("ID", INTEGER, nullable=False),
            Column("V", DOUBLE),
            Column("G", VarcharType(8)),
        ]
    )
    descriptor = catalog.create_table(
        "F", schema, location=TableLocation.ACCELERATOR_ONLY
    )
    engine.create_storage(descriptor)
    values = np.random.default_rng(14).normal(size=FACT_ROWS)
    engine.bulk_insert(
        "F",
        [
            (int(i), float(values[i]), f"g{i % 7}")
            for i in range(FACT_ROWS)
        ],
    )
    return engine


def _pushdown_sql(template: str) -> str:
    return template.format(
        hi=int(FACT_ROWS * 0.95),
        mid=int(FACT_ROWS * 0.50),
        mid_hi=int(FACT_ROWS * 0.55),
    )


def test_e14_rows_scanned_reduction(record):
    """Pushdown into derived-table scans must cut materialised rows."""
    engine = _fact_engine()
    per_query = []
    for template in PUSHDOWN_QUERIES:
        sql = _pushdown_sql(template)
        stmt = parse_statement(sql)
        scanned = {}
        results = {}
        for label, rewrite in (("off", False), ("on", True)):
            plan = plan_statement(stmt, rewrite=rewrite)
            before = engine.rows_scanned
            results[label] = engine.execute_select(stmt, plan=plan)
            scanned[label] = engine.rows_scanned - before
        assert results["on"] == results["off"], sql  # same bytes out
        assert scanned["on"] < scanned["off"], sql
        reduction = 1 - scanned["on"] / scanned["off"]
        per_query.append(
            {
                "query": sql[:70],
                "rows_scanned_off": scanned["off"],
                "rows_scanned_on": scanned["on"],
                "reduction": round(reduction, 4),
            }
        )
        record(
            "E14 logical planner",
            f"pushdown rows_scanned: off={scanned['off']:>8} "
            f"on={scanned['on']:>8} (-{reduction * 100:5.1f}%) "
            f"{sql[:48]}",
        )
    # The selective derived-table scans must skip most chunks.
    assert max(q["reduction"] for q in per_query) > 0.5
    _RESULTS["rows_scanned"] = per_query


def test_e14_plan_once_execute_many(record):
    """Binding cost per statement, and the saving from a cached plan."""
    engine = _fact_engine()
    statements = [parse_statement(sql) for sql in OVERHEAD_QUERIES]
    plans = [plan_statement(stmt) for stmt in statements]

    plan_iters = 200 if SMOKE else 1000
    start = time.perf_counter()
    for __ in range(plan_iters):
        for stmt in statements:
            plan_statement(stmt)
    plan_us = (
        (time.perf_counter() - start) / (plan_iters * len(statements)) * 1e6
    )

    def run(payloads):
        times = []
        for __ in range(ITERATIONS):
            start = time.perf_counter()
            for payload in payloads:
                engine.execute_select(
                    payload if not isinstance(payload, tuple) else payload[0],
                    plan=None if not isinstance(payload, tuple) else payload[1],
                )
            times.append(time.perf_counter() - start)
        return statistics.median(times)

    rebind = run(statements)  # engine binds + rewrites per execution
    cached = run(list(zip(statements, plans)))  # plan once, execute many
    saving = 1 - cached / rebind
    record(
        "E14 logical planner",
        f"bind+rewrite={plan_us:7.1f}us/stmt  "
        f"exec rebind={rebind * 1000:8.2f}ms "
        f"cached-plan={cached * 1000:8.2f}ms "
        f"(saving {saving * 100:5.1f}%)",
    )
    _RESULTS["plan_overhead"] = {
        "bind_rewrite_us_per_stmt": round(plan_us, 2),
        "exec_rebind_ms": round(rebind * 1000, 3),
        "exec_cached_plan_ms": round(cached * 1000, 3),
        "cached_plan_saving": round(saving, 4),
    }
    # Sanity, not a performance assertion: planning is microseconds,
    # execution is milliseconds, so the cached path must not be slower
    # by more than noise.
    assert cached < rebind * 1.25


def test_e14_plan_cache_hit_rate(record):
    """Full system: repeated statements reuse the cached logical plan."""
    db, conn = make_star_system(200, 40, 4000 if SMOKE else 12000)
    conn.set_acceleration("ALL")
    statements = [
        "SELECT COUNT(*), SUM(t_amount) FROM transactions "
        "WHERE t_amount BETWEEN 500 AND 1500",
        "SELECT t_quantity, COUNT(*) FROM transactions "
        "GROUP BY t_quantity ORDER BY 1",
    ]
    for __ in range(CACHE_REPEATS):
        for sql in statements:
            conn.execute(sql)
    snapshot = db.plan_cache.snapshot()
    hit_rate = snapshot["hit_rate"]
    cached_logical = sum(
        1 for plan in db.plan_cache._entries.values() if plan.logical is not None
    )
    record(
        "E14 logical planner",
        f"plan cache: repeats={CACHE_REPEATS} hit_rate={hit_rate:.4f} "
        f"logical_plans_cached={cached_logical} "
        f"kernel_hits={snapshot['kernel_hits']}",
    )
    # PR-3 baseline: the repeated-statement hit rate stays >= 98%.
    assert hit_rate >= 0.98
    assert cached_logical == len(statements)
    assert snapshot["kernel_hits"] > 0
    _RESULTS["plan_cache"] = {
        "repeats": CACHE_REPEATS,
        "hit_rate": round(hit_rate, 4),
        "logical_plans_cached": cached_logical,
        "kernel_hits": snapshot["kernel_hits"],
        "kernel_misses": snapshot["kernel_misses"],
    }


def test_e14_export_results():
    """Write the collected numbers for EXPERIMENTS.md to quote."""
    assert "rows_scanned" in _RESULTS
    payload = {
        "experiment": "E14",
        "smoke": SMOKE,
        "fact_rows": FACT_ROWS,
        **_RESULTS,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    target = RESULTS_DIR / "e14_logical_planner.json"
    target.write_text(json.dumps(payload, indent=2) + "\n")
    written = json.loads(target.read_text())
    assert written["plan_cache"]["hit_rate"] >= 0.98

"""E12 — Observability: tracing overhead and per-phase breakdowns.

The tracer must be effectively free when disabled (the production
default in real DB2 is instrumentation *classes* you switch on per
problem, not an always-on profiler) and cheap enough when enabled to
leave on during experiments. This benchmark:

* times an identical mixed workload with tracing disabled and enabled
  and records the relative overhead (the disabled run must stay within
  5% of a baseline system that was built with tracing off);
* micro-benchmarks the disabled fast path (the shared no-op span) to
  show the per-callsite cost is tens of nanoseconds;
* exports the per-phase breakdown of the traced run to
  ``benchmarks/results/e12_observability.json`` so EXPERIMENTS.md can
  quote where statement time and interconnect bytes actually go.
"""

import json
import statistics
import time
from pathlib import Path

from bench_util import make_system
from repro.obs.export import (
    collect_metrics,
    export_json,
    statement_breakdown,
)
from repro.workloads import create_star_schema

RESULTS_DIR = Path(__file__).parent / "results"

WORKLOAD = [
    "SELECT c_region, COUNT(*), AVG(c_income) FROM customers "
    "GROUP BY c_region",
    "SELECT COUNT(*), SUM(t_amount) FROM transactions "
    "WHERE t_amount BETWEEN 500 AND 1500",
    "SELECT t_customer, SUM(t_amount) AS spent FROM transactions "
    "GROUP BY t_customer ORDER BY spent DESC FETCH FIRST 10 ROWS ONLY",
]

#: Acceptance bound: tracing disabled must cost < 5% end-to-end.
MAX_DISABLED_OVERHEAD = 0.05

_RESULTS: dict[str, float] = {}


def build_system(tracing_enabled: bool):
    db = make_system(tracing_enabled=tracing_enabled)
    conn = db.connect()
    create_star_schema(conn, customers=300, products=50, transactions=5000)
    conn.set_acceleration("ALL")
    return db, conn


def run_workload(conn, repeats: int = 3):
    for _ in range(repeats):
        for sql in WORKLOAD:
            conn.execute(sql)


def test_e12_workload_tracing_disabled(benchmark):
    db, conn = build_system(tracing_enabled=False)
    benchmark(run_workload, conn)
    assert db.tracer.traces() == []
    _RESULTS["disabled"] = benchmark.stats.stats.mean


def test_e12_workload_tracing_enabled(benchmark, record):
    db, conn = build_system(tracing_enabled=True)
    benchmark(run_workload, conn)
    assert db.tracer.traces()
    _RESULTS["enabled"] = benchmark.stats.stats.mean

    # The two benchmark tests above run minutes apart under the full
    # suite, so comparing their means measures machine drift as much as
    # tracing cost. Derive the headline overhead from an interleaved
    # A/B loop on the same pair of systems and take medians.
    _db_off, conn_off = build_system(tracing_enabled=False)
    for _ in range(3):
        run_workload(conn_off)
        run_workload(conn)
    off, on = [], []
    for _ in range(20):
        t0 = time.perf_counter()
        run_workload(conn_off)
        off.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_workload(conn)
        on.append(time.perf_counter() - t0)
    disabled_med = statistics.median(off)
    enabled_med = statistics.median(on)
    overhead = enabled_med / disabled_med - 1.0
    record(
        "E12 observability overhead",
        f"workload disabled={disabled_med * 1000:8.2f}ms "
        f"enabled={enabled_med * 1000:8.2f}ms "
        f"enabled_overhead={overhead * 100:+6.2f}% (interleaved medians)",
    )


def test_e12_disabled_guard_micro(benchmark, record):
    """Per-callsite cost of the disabled fast path.

    Every instrumented hot path pays one ``tracer.enabled`` check and
    (at most) one no-op context manager per span site; a statement has
    well under 20 such sites, so per-site cost * 20 must stay far below
    5% of even the fastest statement observed above.
    """
    db, conn = build_system(tracing_enabled=False)
    tracer = db.tracer
    sites_per_statement = 20

    def guard_path():
        for _ in range(100):
            if tracer.enabled:  # pragma: no cover - disabled here
                with tracer.span("x"):
                    pass

    benchmark(guard_path)
    per_site = benchmark.stats.stats.mean / 100
    _RESULTS["per_site"] = per_site

    # Fastest plausible statement in this simulation is ~100us; the
    # guard must be negligible against it.
    statement_seconds = 100e-6
    relative = per_site * sites_per_statement / statement_seconds
    record(
        "E12 observability overhead",
        f"disabled guard per_site={per_site * 1e9:7.1f}ns "
        f"x{sites_per_statement} sites / 100us statement "
        f"= {relative * 100:6.3f}%",
    )
    assert relative < MAX_DISABLED_OVERHEAD


def test_e12_phase_breakdown_export(record):
    """The traced workload's per-phase breakdown lands in results/."""
    db, conn = build_system(tracing_enabled=True)
    run_workload(conn)
    breakdown = statement_breakdown(db)
    assert "statement" in breakdown
    assert "accelerator.execute" in breakdown
    assert "interconnect.send" in breakdown
    payload = {
        "experiment": "E12",
        "workload_statements": len(db.tracer.traces()),
        "phase_breakdown": breakdown,
        "metrics": collect_metrics(db),
    }
    target = export_json(RESULTS_DIR / "e12_observability.json", payload)
    written = json.loads(target.read_text())
    assert written["phase_breakdown"]["statement"]["count"] >= 9
    top = sorted(
        (
            (name, entry["total_ms"])
            for name, entry in breakdown.items()
            if name != "statement"
        ),
        key=lambda item: -item[1],
    )[:3]
    phases = " ".join(f"{name}={ms:8.2f}ms" for name, ms in top)
    record("E12 observability overhead", f"top phases: {phases}")

"""E18 — Cost-based optimizer: Q-error vs the fixed-selectivity baseline.

PR-7 (E17) froze the legacy estimator's error into a standing Q-error
corpus; this experiment measures how far statistics (zone-map seeding +
RUNSTATS histograms/NDVs) move the needle, and proves the optimizer's
other two levers are safe:

* replays the E17 corpus (plus multi-join shapes) on two identically
  loaded systems — one with statistics invalidated (the legacy
  fixed-selectivity model), one after ``SYSPROC.ACCEL_RUNSTATS`` — and
  asserts the statistics-driven estimator improves BOTH the median and
  the maximum per-operator Q-error;
* gates against the committed E17 baseline numbers
  (``benchmarks/results/e17_profiler.json``) so a regression in the
  estimator fails CI even if the in-process baseline drifts;
* asserts optimizer statistics and join re-association change no answer,
  byte for byte;
* records the routing mix now that cost advice replaces the ENABLE
  row-threshold heuristic, and exports everything to
  ``benchmarks/results/e18_optimizer.json`` (uploaded as a CI artifact).

Set ``E18_SMOKE=1`` (the CI smoke job does) for a fast small-data run.
"""

import json
import os
import statistics
from pathlib import Path

from bench_e17_profiler import CORPUS
from bench_util import make_system
from repro.obs.export import export_json, qerror_summary
from repro.sql import logical
from repro.workloads import create_star_schema

RESULTS_DIR = Path(__file__).parent / "results"
SMOKE = os.environ.get("E18_SMOKE", "") not in ("", "0")

SCALE = dict(customers=60, products=20, transactions=600) if SMOKE else dict(
    customers=300, products=50, transactions=5000
)

#: Multi-join shapes on top of the E17 corpus: the join-cardinality and
#: re-association surface the single-table corpus cannot reach.
JOIN_CORPUS = [
    "SELECT C.C_REGION, P.P_CATEGORY, SUM(T.T_AMOUNT) AS REV "
    "FROM TRANSACTIONS T "
    "JOIN CUSTOMERS C ON T.T_CUSTOMER = C.C_ID "
    "JOIN PRODUCTS P ON T.T_PRODUCT = P.P_ID "
    "GROUP BY C.C_REGION, P.P_CATEGORY ORDER BY 1, 2",
    # Dimension self-join: the written shape joins the fact table first,
    # which the re-association stage provably improves.
    "SELECT COUNT(*) FROM TRANSACTIONS T "
    "JOIN CUSTOMERS C ON T.T_CUSTOMER = C.C_ID "
    "JOIN CUSTOMERS C2 ON C.C_ID = C2.C_ID",
    "SELECT P.P_CATEGORY, COUNT(*) AS N FROM TRANSACTIONS T "
    "JOIN PRODUCTS P ON T.T_PRODUCT = P.P_ID "
    "WHERE T.T_QUANTITY >= 2 GROUP BY P.P_CATEGORY ORDER BY N DESC",
]

E18_CORPUS = CORPUS + JOIN_CORPUS

_RESULTS: dict[str, object] = {}


def build_system(with_statistics: bool):
    """One loaded star-schema system per estimator flavour.

    ``with_statistics=False`` drops every statistic after load, so the
    estimator runs exactly the legacy fixed-selectivity model the E17
    baseline was recorded with; ``True`` upgrades the zone-map seeds
    with a full RUNSTATS pass (histograms + NDVs)."""
    db = make_system(profiling_enabled=True)
    conn = db.connect()
    create_star_schema(conn, **SCALE)
    conn.set_acceleration("ENABLE")
    if with_statistics:
        db.run_statistics()
    else:
        db.stats.invalidate()
    return db, conn


def run_corpus(conn, corpus=E18_CORPUS):
    for sql in corpus:
        conn.execute(sql)


def qerror_metrics(db) -> dict:
    """Median/mean/max per-operator Q-error from the feedback store.

    Every corpus query runs exactly once, so the feedback store holds
    pure estimator error — no feedback self-correction in the loop."""
    errors = [e.mean_q_error for e in db.profiler.feedback.entries()]
    assert errors
    return {
        "operators": len(errors),
        "median_q_error": statistics.median(errors),
        "mean_q_error": sum(errors) / len(errors),
        "max_q_error": max(errors),
    }


def test_e18_qerror_improvement(record):
    """Statistics must beat fixed selectivities on median AND max."""
    base_db, base_conn = build_system(with_statistics=False)
    run_corpus(base_conn)
    baseline = qerror_metrics(base_db)

    opt_db, opt_conn = build_system(with_statistics=True)
    run_corpus(opt_conn)
    optimized = qerror_metrics(opt_db)

    _RESULTS["baseline"] = baseline
    _RESULTS["optimized"] = optimized
    record(
        "E18 optimizer",
        f"fixed selectivities: median_q={baseline['median_q_error']:.2f} "
        f"mean_q={baseline['mean_q_error']:.2f} "
        f"max_q={baseline['max_q_error']:.2f} "
        f"({baseline['operators']} operators)",
    )
    record(
        "E18 optimizer",
        f"with statistics:     median_q={optimized['median_q_error']:.2f} "
        f"mean_q={optimized['mean_q_error']:.2f} "
        f"max_q={optimized['max_q_error']:.2f} "
        f"({optimized['operators']} operators)",
    )
    # At smoke scale both medians can bottom out at the perfect 1.0, so
    # the median gate is <=; mean and max must improve strictly.
    assert optimized["median_q_error"] <= baseline["median_q_error"]
    assert optimized["mean_q_error"] < baseline["mean_q_error"]
    assert optimized["max_q_error"] < baseline["max_q_error"]


def test_e18_regression_gate_vs_committed_e17(record):
    """The committed E17 numbers are the frozen fixed-selectivity
    baseline; the statistics-driven estimator must beat them on both
    mean and max. (CI runs E18 before E17 re-exports that file.)"""
    committed = json.loads(
        (RESULTS_DIR / "e17_profiler.json").read_text()
    )["qerror"]
    optimized = _RESULTS.get("optimized")
    if optimized is None:  # standalone invocation of this test
        db, conn = build_system(with_statistics=True)
        run_corpus(conn)
        optimized = qerror_metrics(db)
    record(
        "E18 optimizer",
        f"regression gate: mean_q {optimized['mean_q_error']:.2f} < "
        f"{committed['mean_q_error']:.2f} (committed E17), "
        f"max_q {optimized['max_q_error']:.2f} < "
        f"{committed['max_q_error']:.2f}",
    )
    assert optimized["mean_q_error"] < committed["mean_q_error"]
    assert optimized["max_q_error"] < committed["max_q_error"]
    _RESULTS["e17_committed"] = {
        "mean_q_error": committed["mean_q_error"],
        "max_q_error": committed["max_q_error"],
    }


def test_e18_results_identical(record):
    """Neither statistics nor join re-association may change answers."""
    base_db, base_conn = build_system(with_statistics=False)
    opt_db, opt_conn = build_system(with_statistics=True)
    for sql in E18_CORPUS:
        assert base_conn.execute(sql).rows == opt_conn.execute(sql).rows, sql
    saved = logical.JOIN_REORDER_ENABLED
    try:
        logical.JOIN_REORDER_ENABLED = False
        flat_db, flat_conn = build_system(with_statistics=True)
        for sql in JOIN_CORPUS:
            assert (
                flat_conn.execute(sql).rows == opt_conn.execute(sql).rows
            ), sql
    finally:
        logical.JOIN_REORDER_ENABLED = saved
    record(
        "E18 optimizer",
        f"byte-identity: {len(E18_CORPUS)} corpus queries identical "
        "with/without statistics; joins identical with/without reorder",
    )


def test_e18_routing_mix(record):
    """Cost advice now routes every ENABLE-mode statement; record the
    engine mix it produces over the corpus."""
    db, conn = build_system(with_statistics=True)
    start = len(db.statement_history)
    run_corpus(conn)
    records = list(db.statement_history)[start:]
    cost_routed = [r for r in records if "cost accelerator=" in (r.reason or "")]
    engines = {
        engine: sum(1 for r in records if r.engine == engine)
        for engine in ("ACCELERATOR", "DB2")
    }
    assert cost_routed, "no statement carried a cost-based routing reason"
    record(
        "E18 optimizer",
        f"routing: {len(cost_routed)}/{len(records)} statements "
        f"cost-routed (accelerator={engines['ACCELERATOR']}, "
        f"db2={engines['DB2']})",
    )
    _RESULTS["routing"] = {
        "statements": len(records),
        "cost_routed": len(cost_routed),
        **{k.lower(): v for k, v in engines.items()},
    }


def test_e18_export(record):
    """Everything lands in results/e18_optimizer.json (CI artifact)."""
    db, conn = build_system(with_statistics=True)
    run_corpus(conn)
    payload = {
        "experiment": "E18",
        "smoke": SMOKE,
        "corpus_size": len(E18_CORPUS),
        "baseline": _RESULTS.get("baseline"),
        "optimized": _RESULTS.get("optimized"),
        "e17_committed": _RESULTS.get("e17_committed"),
        "routing": _RESULTS.get("routing"),
        "qerror": qerror_summary(db, worst=5),
    }
    json.dumps(payload, allow_nan=False)
    target = export_json(RESULTS_DIR / "e18_optimizer.json", payload)
    written = json.loads(target.read_text())
    assert written["qerror"]["entries"] >= 1
    record(
        "E18 optimizer",
        f"exported {written['qerror']['entries']} feedback entries "
        "-> results/e18_optimizer.json",
    )

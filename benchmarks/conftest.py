"""Shared benchmark fixtures and the experiment result recorder.

Every benchmark both (a) times its operation through pytest-benchmark and
(b) records the paper-style table row (who won, by what factor, how many
bytes moved) through the ``record`` fixture. Rows are written to
``benchmarks/results/experiments.txt`` at session end so EXPERIMENTS.md
can quote real measured numbers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from bench_util import make_system
from repro.workloads import create_star_schema

RESULTS_DIR = Path(__file__).parent / "results"


class ExperimentLog:
    """Collects one line per measurement, grouped by experiment id."""

    def __init__(self) -> None:
        self.rows: dict[str, list[str]] = {}

    def add(self, experiment: str, line: str) -> None:
        self.rows.setdefault(experiment, []).append(line)

    def flush(self) -> None:
        """Merge this session's sections into the results file.

        Sections recorded this session replace their previous content;
        everything else is preserved, so running a single benchmark
        module does not wipe the other experiments' lines.
        """
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / "experiments.txt"
        merged = self._existing_sections(path)
        merged.update(self.rows)
        with open(path, "w") as handle:
            for experiment in sorted(merged):
                handle.write(f"== {experiment} ==\n")
                for line in merged[experiment]:
                    handle.write(f"  {line}\n")
                handle.write("\n")

    @staticmethod
    def _existing_sections(path: Path) -> dict[str, list[str]]:
        sections: dict[str, list[str]] = {}
        if not path.exists():
            return sections
        current: list[str] = []
        for raw in path.read_text().splitlines():
            if raw.startswith("== ") and raw.endswith(" =="):
                current = sections.setdefault(raw[3:-3], [])
            elif raw.strip():
                current.append(raw.strip())
        return sections


@pytest.fixture(scope="session")
def experiment_log():
    log = ExperimentLog()
    yield log
    log.flush()


@pytest.fixture
def record(experiment_log, request):
    """``record('E1', 'rows=2000 legacy=...')`` in any benchmark."""

    def _record(experiment: str, line: str) -> None:
        experiment_log.add(experiment, line)

    return _record


@pytest.fixture(scope="module")
def star_small():
    db = make_system()
    conn = db.connect()
    create_star_schema(conn, customers=300, products=50, transactions=5000)
    return db, conn


@pytest.fixture(scope="module")
def star_large():
    db = make_system()
    conn = db.connect()
    create_star_schema(conn, customers=1000, products=100, transactions=20000)
    return db, conn

"""E4 — Ingestion paths: DB2 + replication vs dual load vs direct AOT.

Paper claim (Sec. 2): the IDAA Loader can ingest data from any source —
including applications not running on System z — into regular tables
*or directly into AOTs*. Expected shape: the direct AOT path writes zero
DB2 rows and each byte crosses the interconnect exactly once; the
DB2 + replication path pays DB2 CPU and ships every row again via the
change log.
"""

import pytest

from repro import IdaaLoader, IterableSource
from repro.workloads import SOCIAL_COLUMNS, generate_posts

from bench_util import make_system

ROWS = 20000


@pytest.fixture(scope="module")
def posts():
    return list(generate_posts(ROWS))


def fresh_target(path: str):
    """(db, conn) with the SOCIAL_POSTS table created for ``path``."""
    db = make_system(auto_replicate=False)
    conn = db.connect()
    ddl_body = (
        "(POST_ID INTEGER NOT NULL, HANDLE VARCHAR(24) NOT NULL, "
        "REGION VARCHAR(4) NOT NULL, TOPIC VARCHAR(16) NOT NULL, "
        "SENTIMENT DOUBLE NOT NULL, LIKES INTEGER NOT NULL, "
        "POSTED_AT TIMESTAMP NOT NULL)"
    )
    if path == "aot":
        conn.execute(f"CREATE TABLE SOCIAL_POSTS {ddl_body} IN ACCELERATOR")
    else:
        conn.execute(f"CREATE TABLE SOCIAL_POSTS {ddl_body}")
        if path == "dual":
            db.add_table_to_accelerator("SOCIAL_POSTS")
    return db, conn


@pytest.mark.parametrize("path", ["db2_replicate", "dual", "aot"])
def test_e4_load_path(benchmark, record, posts, path):
    reports = []

    def setup():
        db, conn = fresh_target(path)
        if path == "db2_replicate":
            db.add_table_to_accelerator("SOCIAL_POSTS")
        loader = IdaaLoader(db, batch_size=5000)
        return (db, conn, loader), {}

    def run(db, conn, loader):
        if path == "db2_replicate":
            # Classic path: rows go through DB2 change capture, then the
            # replication service ships them to the copy.
            conn.execute("BEGIN")
            schema = db.catalog.table("SOCIAL_POSTS").schema
            txn = conn._txn
            db.db2.insert_rows(txn, "SOCIAL_POSTS", posts)
            conn.execute("COMMIT")
            db.replication.drain()
            report = None
        else:
            report = loader.load(
                IterableSource(posts, SOCIAL_COLUMNS), "SOCIAL_POSTS", conn
            )
        reports.append((db, report))

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    db, report = reports[-1]
    stats = db.movement_snapshot()
    db2_rows = db.db2.rows_written
    record(
        "E4 loader paths",
        f"path={path:<14} rows={ROWS} "
        f"db2_rows_written={db2_rows:<7} "
        f"bytes_to_accel={stats.bytes_to_accelerator:<10,} "
        f"mean={benchmark.stats.stats.mean * 1000:8.1f}ms",
    )
    # Path-specific shape assertions.
    if path == "aot":
        assert db2_rows == 0
    if path == "db2_replicate":
        assert db2_rows == ROWS
        assert stats.bytes_to_accelerator > 0

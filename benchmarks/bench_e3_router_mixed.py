"""E3 — Router keeps OLTP on DB2: point lookups and single-row updates.

Paper context (Sec. 1): IDAA integrates DB2's "strong OLTP capabilities"
with the accelerator's OLAP speed; the router must not offload
OLTP-shaped statements. Expected shape: a primary-key lookup on DB2 (via
the PK index) beats the same query forced onto the accelerator (full
columnar scan + interconnect round trip), so ENABLE mode — which routes
it to DB2 — wins over ALL mode.
"""

import pytest

from bench_util import make_star_system

_TIMES: dict[str, float] = {}


@pytest.fixture(scope="module")
def system():
    return make_star_system(1000, 100, 20000)


@pytest.mark.parametrize("mode", ["ENABLE", "ALL"])
def test_e3_point_lookup(benchmark, record, system, mode):
    db, conn = system
    conn.set_acceleration(mode)
    counter = iter(range(10**9))

    def run():
        key = 1 + (next(counter) % 20000)
        return conn.execute(f"SELECT t_amount FROM transactions WHERE t_id = {key}")

    result = benchmark(run)
    expected = "DB2" if mode == "ENABLE" else "ACCELERATOR"
    assert result.engine == expected
    _TIMES[mode] = benchmark.stats.stats.mean
    if len(_TIMES) == 2:
        record(
            "E3 router mixed workload",
            f"point lookup: ENABLE(db2)={_TIMES['ENABLE'] * 1e6:8.1f}us "
            f"ALL(accel)={_TIMES['ALL'] * 1e6:8.1f}us "
            f"penalty-if-offloaded="
            f"{_TIMES['ALL'] / _TIMES['ENABLE']:5.1f}x",
        )
        # The router's choice must actually be the faster one.
        assert _TIMES["ENABLE"] < _TIMES["ALL"]


def test_e3_single_row_update(benchmark, record, system):
    db, conn = system
    conn.set_acceleration("ENABLE")
    counter = iter(range(10**9))

    def run():
        key = 1 + (next(counter) % 20000)
        return conn.execute(
            f"UPDATE transactions SET t_quantity = 2 WHERE t_id = {key}"
        )

    result = benchmark(run)
    assert result.engine == "DB2"
    record(
        "E3 router mixed workload",
        f"single-row update (db2 + replication capture): "
        f"{benchmark.stats.stats.mean * 1e6:8.1f}us",
    )


def test_e3_mixed_stream(benchmark, record, system):
    """90% point lookups + 10% analytics, routed transparently."""
    db, conn = system
    conn.set_acceleration("ENABLE")
    counter = iter(range(10**9))
    engines = {"DB2": 0, "ACCELERATOR": 0}

    def run():
        tick = next(counter)
        if tick % 10 == 9:
            result = conn.execute(
                "SELECT c_region, COUNT(*) FROM customers GROUP BY c_region"
            )
        else:
            key = 1 + (tick % 1000)
            result = conn.execute(
                f"SELECT c_income FROM customers WHERE c_id = {key}"
            )
        engines[result.engine] += 1

    benchmark.pedantic(run, rounds=50, iterations=1)
    assert engines["DB2"] > 0 and engines["ACCELERATOR"] > 0
    record(
        "E3 router mixed workload",
        f"mixed stream routing: {engines['DB2']} stmts on DB2, "
        f"{engines['ACCELERATOR']} offloaded",
    )

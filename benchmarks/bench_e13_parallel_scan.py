"""E13 — Chunk-parallel scans and the statement plan cache.

Three questions, answered against the E10 star-schema workload plus a
purpose-built wide fact table:

* does fanning the scan across worker threads preserve results exactly
  (byte-identical rows vs the sequential path)?
* what scan speedup does the fan-out buy at 2 and 4 workers? Wall time
  is reported as measured; on a single-core host threads cannot beat
  the sequential pass, so — exactly like E10's slice-parallelism test —
  the *modeled* critical path (the largest partition's share of the
  scanned rows) is the headline observable. On an N-core host the wall
  numbers converge towards the model.
* how often do repeated statements hit the plan cache, and what does a
  hit save (parse + view expansion + predicate compilation)?

Results land in ``benchmarks/results/e13_parallel_scan.json``. Set
``E13_SMOKE=1`` (the CI smoke job does) to shrink the dataset and
iteration counts for a fast correctness-only pass.
"""

import json
import os
import statistics
import time
from pathlib import Path

import numpy as np

from bench_util import make_star_system, make_system
from repro.accelerator import AcceleratorEngine
from repro.catalog import Catalog, Column, TableLocation, TableSchema
from repro.sql import parse_statement
from repro.sql.types import DOUBLE, INTEGER, VarcharType

RESULTS_DIR = Path(__file__).parent / "results"

SMOKE = os.environ.get("E13_SMOKE", "") not in ("", "0")

#: Fact-table rows for the engine-level scan sweep.
FACT_ROWS = 30_000 if SMOKE else 240_000
#: Timed iterations per configuration.
ITERATIONS = 3 if SMOKE else 9
#: Repeats of each statement for the plan-cache section.
CACHE_REPEATS = 20 if SMOKE else 50

SCAN_QUERIES = [
    "SELECT COUNT(*), MIN(V), MAX(V) FROM F WHERE V > 1.0",
    "SELECT ID, V FROM F WHERE V > 2.5",
    "SELECT COUNT(V), COUNT(DISTINCT G), MAX(ID) FROM F",
]

STAR_QUERIES = [
    "SELECT COUNT(*), SUM(t_amount) FROM transactions "
    "WHERE t_amount BETWEEN 500 AND 1500",
    "SELECT t_quantity, COUNT(*), SUM(t_amount) FROM transactions "
    "GROUP BY t_quantity",
    "SELECT c_region, COUNT(*), AVG(c_income) FROM customers "
    "GROUP BY c_region",
]

_RESULTS: dict[str, object] = {}


def _fact_engine(workers: int) -> AcceleratorEngine:
    catalog = Catalog()
    engine = AcceleratorEngine(
        catalog,
        slice_count=4,
        chunk_rows=8192,
        parallel_workers=workers,
    )
    schema = TableSchema(
        [
            Column("ID", INTEGER, nullable=False),
            Column("V", DOUBLE),
            Column("G", VarcharType(8)),
        ]
    )
    descriptor = catalog.create_table(
        "F", schema, location=TableLocation.ACCELERATOR_ONLY
    )
    engine.create_storage(descriptor)
    values = np.random.default_rng(23).normal(size=FACT_ROWS)
    engine.bulk_insert(
        "F",
        [
            (int(i), float(values[i]), f"g{i % 11}")
            for i in range(FACT_ROWS)
        ],
    )
    return engine


def _median_seconds(engine, statements, iterations=ITERATIONS) -> float:
    times = []
    for __ in range(iterations):
        start = time.perf_counter()
        for stmt in statements:
            engine.execute_select(stmt)
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def test_e13_parallel_scan_identity_and_speedup(record):
    statements = [parse_statement(sql) for sql in SCAN_QUERIES]
    engines = {workers: _fact_engine(workers) for workers in (1, 2, 4)}

    # Byte identity: every configuration returns exactly the sequential
    # engine's (columns, rows) — ordering included.
    expected = [engines[1].execute_select(stmt) for stmt in statements]
    for workers in (2, 4):
        actual = [
            engines[workers].execute_select(stmt) for stmt in statements
        ]
        assert actual == expected, f"{workers}-worker results diverged"
    assert engines[4].parallel_scans >= len(statements)
    assert engines[1].parallel_scans == 0
    _RESULTS["byte_identical"] = True

    sweep = {}
    sequential_median = None
    for workers, engine in engines.items():
        median = _median_seconds(engine, statements)
        modeled = _modeled_speedup(engine, statements[0])
        if workers == 1:
            sequential_median = median
        sweep[workers] = {
            "median_wall_seconds": round(median, 6),
            "wall_speedup_vs_1": round(sequential_median / median, 3),
            "modeled_scan_speedup": modeled,
        }
        record(
            "E13 parallel scan",
            f"workers={workers}: wall={median * 1000:8.2f}ms "
            f"wall_speedup={sequential_median / median:5.2f}x "
            f"modeled_scan_speedup={modeled:5.2f}x",
        )
    _RESULTS["fact_scan_sweep"] = sweep
    _RESULTS["cores"] = os.cpu_count()
    # The modeled speedup must clear the bar; wall clock only can on a
    # multi-core host, so it is recorded but not asserted against.
    assert sweep[4]["modeled_scan_speedup"] > 1.5


def _modeled_speedup(engine, stmt) -> float:
    """Scanned rows / largest-partition rows for one statement's scan.

    The scan stage completes when its largest partition does; partition
    sizes come from the spans the planner actually cut, so the balance
    (and therefore the model) is measured, not assumed. 1.0 for a
    sequential engine — a single partition by definition.
    """
    engine.execute_select(stmt)
    if not engine.last_parallel_scans:
        return 1.0
    partition_rows = engine.last_parallel_scans[0]["partition_rows"]
    largest = max(partition_rows)
    return round(sum(partition_rows) / largest, 3) if largest else 1.0


def test_e13_star_schema_workload(record):
    """E10's star schema through the full system, workers 1 vs 4."""
    size = (
        (200, 20, 4000) if SMOKE else (1000, 100, 20000)
    )
    results = {}
    expected_rows = None
    for workers in (1, 4):
        db = make_system(parallel_workers=workers)
        conn = db.connect()
        from repro.workloads import create_star_schema

        create_star_schema(
            conn,
            customers=size[0],
            products=size[1],
            transactions=size[2],
        )
        conn.set_acceleration("ALL")
        rows = [tuple(conn.query(sql)) for sql in STAR_QUERIES]
        if expected_rows is None:
            expected_rows = rows
        else:
            assert rows == expected_rows  # identical across fan-outs
        times = []
        for __ in range(ITERATIONS):
            start = time.perf_counter()
            for sql in STAR_QUERIES:
                conn.execute(sql)
            times.append(time.perf_counter() - start)
        results[workers] = {
            "median_wall_seconds": round(statistics.median(times), 6),
            "parallel_scans": db.accelerator.parallel_scans,
            "plan_cache": db.plan_cache.snapshot(),
        }
        record(
            "E13 parallel scan",
            f"star workload workers={workers}: "
            f"median={statistics.median(times) * 1000:8.2f}ms "
            f"parallel_scans={db.accelerator.parallel_scans} "
            f"plan_cache_hit_rate="
            f"{db.plan_cache.snapshot()['hit_rate']:.3f}",
        )
    _RESULTS["star_workload"] = results


def test_e13_plan_cache_hit_rate(record):
    """Repeated statements: cache hit rate and per-statement saving."""
    db, conn = make_star_system(300, 50, 5000 if SMOKE else 10000)
    conn.set_acceleration("ALL")
    sql = STAR_QUERIES[0]

    # Cold + warm timing over the same statement text.
    start = time.perf_counter()
    conn.execute(sql)
    cold = time.perf_counter() - start
    warm = []
    for __ in range(CACHE_REPEATS - 1):
        start = time.perf_counter()
        conn.execute(sql)
        warm.append(time.perf_counter() - start)
    snapshot = db.plan_cache.snapshot()
    hit_rate = snapshot["hit_rate"]
    record(
        "E13 parallel scan",
        f"plan cache: repeats={CACHE_REPEATS} hit_rate={hit_rate:.3f} "
        f"cold={cold * 1000:7.2f}ms "
        f"warm_median={statistics.median(warm) * 1000:7.2f}ms "
        f"kernel_hits={snapshot['kernel_hits']}",
    )
    assert hit_rate > 0.9
    assert snapshot["kernel_hits"] > 0
    _RESULTS["plan_cache"] = {
        "repeats": CACHE_REPEATS,
        "hit_rate": round(hit_rate, 4),
        "cold_ms": round(cold * 1000, 3),
        "warm_median_ms": round(statistics.median(warm) * 1000, 3),
        "kernel_hits": snapshot["kernel_hits"],
        "kernel_misses": snapshot["kernel_misses"],
    }

    # Invalidation: DDL flushes the entry, next run repopulates.
    invalidations_before = db.plan_cache.invalidations
    conn.execute("CREATE TABLE E13_SCRATCH (A INTEGER)")
    conn.execute(sql)
    assert db.plan_cache.invalidations == invalidations_before + 1


def test_e13_export_results():
    """Write the collected numbers for EXPERIMENTS.md to quote."""
    assert _RESULTS.get("byte_identical") is True
    payload = {
        "experiment": "E13",
        "smoke": SMOKE,
        "fact_rows": FACT_ROWS,
        **_RESULTS,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    target = RESULTS_DIR / "e13_parallel_scan.json"
    target.write_text(json.dumps(payload, indent=2) + "\n")
    written = json.loads(target.read_text())
    assert written["fact_scan_sweep"]["4"]["modeled_scan_speedup"] > 1.5

"""Builders shared by the benchmark modules."""

from __future__ import annotations

from repro import AcceleratedDatabase
from repro.workloads import create_churn_table, create_star_schema


def make_system(**kwargs) -> AcceleratedDatabase:
    defaults = dict(slice_count=4, chunk_rows=8192)
    defaults.update(kwargs)
    return AcceleratedDatabase(**defaults)


def make_churn_system(rows: int):
    db = make_system()
    conn = db.connect()
    create_churn_table(conn, count=rows, accelerate=True)
    return db, conn


def make_star_system(customers: int, products: int, transactions: int):
    db = make_system()
    conn = db.connect()
    create_star_schema(
        conn,
        customers=customers,
        products=products,
        transactions=transactions,
    )
    return db, conn

"""E16 — Crash-consistent recovery: checkpoint cost and resync win.

Three questions about ``repro.recovery``:

* what does a **checkpoint cost**? One accelerated fact table at
  benchmark scale, checkpointed to an on-disk store; we time the
  atomic frame write and record the serialized size. This is the price
  of the durability the rest of the experiment cashes in.
* how much does **incremental resync** save over a full reload? The
  same crash is recovered twice: once with a recent checkpoint (restore
  the image, replay only the changelog suffix — a handful of records)
  and once without (ship every row back over the interconnect). The
  headline observable is **interconnect cost** — bytes moved and the
  bandwidth/latency-derived simulated transfer seconds — because that
  is what the simulation models (see "Simulation boundaries" in
  docs/architecture.md): a local image restore costs host CPU but no
  network, while a full reload reships the table. Wall time is
  reported but not asserted; on a simulated interconnect it reflects
  Python deserialization cost, not the transfer the paper's setup
  would pay.
* does recovery actually **converge after a crash at every injection
  point**? The differential crash matrix from
  ``repro.recovery.harness`` runs the workload, killing the accelerator
  at each of the five named crash points, and asserts the recovered
  state is byte-identical to an uncrashed run.

Results land in ``benchmarks/results/e16_crash_recovery.json``.
Set ``E16_SMOKE=1`` (the CI recovery-matrix job does) for a fast
correctness-only pass.
"""

import json
import os
import time
from pathlib import Path

from repro import AcceleratedDatabase
from repro.recovery.harness import CrashRestartDriver, run_crash_matrix

RESULTS_DIR = Path(__file__).parent / "results"

SMOKE = os.environ.get("E16_SMOKE", "") not in ("", "0")

#: Fact-table rows checkpointed and recovered.
FACT_ROWS = 5_000 if SMOKE else 50_000
#: Rows touched between the checkpoint and the crash — the changelog
#: suffix incremental resync replays instead of reloading everything.
SUFFIX_UPDATES = 100 if SMOKE else 500

_RESULTS: dict[str, object] = {}


def _make_system(checkpoint_dir=None):
    db = AcceleratedDatabase(
        slice_count=4,
        chunk_rows=4096,
        tracing_enabled=False,
        cooldown_seconds=0.0,
        checkpoint_dir=checkpoint_dir,
    )
    conn = db.connect()
    conn.execute(
        "CREATE TABLE FACT (ID INTEGER NOT NULL PRIMARY KEY, "
        "G INTEGER, V DOUBLE)"
    )
    for base in range(0, FACT_ROWS, 1000):
        rows = ", ".join(
            f"({i}, {i % 23}, {float(i % 97)})"
            for i in range(base, base + 1000)
        )
        conn.execute(f"INSERT INTO FACT VALUES {rows}")
    db.add_table_to_accelerator("FACT")
    return db, conn


def _mutate_suffix(conn):
    conn.execute(
        f"UPDATE fact SET v = v + 1 WHERE id < {SUFFIX_UPDATES}"
    )


def _fact_sum(conn) -> float:
    conn.set_acceleration("ALL")
    value = conn.execute("SELECT SUM(v) FROM fact").scalar()
    conn.set_acceleration("ENABLE")
    return value


def test_e16_checkpoint_cost(record, tmp_path):
    """Price of durability: serialize + fsync one fact-table image."""
    db, conn = _make_system(checkpoint_dir=str(tmp_path))
    start = time.perf_counter()
    result = db.recovery.checkpoint()
    elapsed = time.perf_counter() - start
    record(
        "E16 crash recovery",
        f"checkpoint: rows={result.rows} "
        f"bytes={result.bytes_written} "
        f"elapsed={elapsed * 1000:.1f}ms",
    )
    _RESULTS["checkpoint"] = {
        "rows": result.rows,
        "bytes_written": result.bytes_written,
        "elapsed_ms": round(elapsed * 1000, 2),
    }
    assert result.rows == FACT_ROWS
    assert result.bytes_written > 0
    # The frame really landed on disk.
    assert any(
        name.endswith(".ckpt") for name in os.listdir(str(tmp_path))
    )


def test_e16_incremental_vs_full_resync(record, tmp_path):
    """The headline: replay a suffix vs. reship the whole table."""
    # -- with a checkpoint: restore image + replay the suffix ---------
    db, conn = _make_system(checkpoint_dir=str(tmp_path))
    db.recovery.checkpoint()
    _mutate_suffix(conn)
    expected = _fact_sum(conn)
    driver = CrashRestartDriver(db)
    driver.kill()
    inc_before = db.interconnect.snapshot()
    start = time.perf_counter()
    incremental = driver.restart()
    incremental_seconds = time.perf_counter() - start
    inc_moved = db.interconnect.since(inc_before)
    assert _fact_sum(conn) == expected
    assert incremental.full_reloads == 0
    assert incremental.records_replayed == SUFFIX_UPDATES
    assert incremental.resync_bytes_saved > 0

    # -- without a checkpoint: full reload over the interconnect ------
    db2, conn2 = _make_system()
    _mutate_suffix(conn2)
    expected2 = _fact_sum(conn2)
    driver2 = CrashRestartDriver(db2)
    driver2.kill()
    full_before = db2.interconnect.snapshot()
    start = time.perf_counter()
    full = driver2.restart()
    full_seconds = time.perf_counter() - start
    full_moved = db2.interconnect.since(full_before)
    assert _fact_sum(conn2) == expected2
    assert full.full_reloads == 1
    assert full.resync_bytes_saved == 0

    bytes_ratio = full_moved.bytes_to_accelerator / max(
        inc_moved.bytes_to_accelerator, 1
    )
    transfer_ratio = full_moved.simulated_seconds / max(
        inc_moved.simulated_seconds, 1e-9
    )
    record(
        "E16 crash recovery",
        f"resync: incremental bytes={inc_moved.bytes_to_accelerator} "
        f"transfer={inc_moved.simulated_seconds * 1000:.1f}ms "
        f"(replayed={incremental.records_replayed}) vs full reload "
        f"bytes={full_moved.bytes_to_accelerator} "
        f"transfer={full_moved.simulated_seconds * 1000:.1f}ms "
        f"-> {bytes_ratio:.1f}x fewer bytes, "
        f"{transfer_ratio:.1f}x less transfer time "
        f"(wall: {incremental_seconds * 1000:.0f}ms vs "
        f"{full_seconds * 1000:.0f}ms)",
    )
    _RESULTS["resync"] = {
        "rows": FACT_ROWS,
        "suffix_updates": SUFFIX_UPDATES,
        "incremental_bytes_shipped": inc_moved.bytes_to_accelerator,
        "incremental_transfer_ms": round(
            inc_moved.simulated_seconds * 1000, 3
        ),
        "incremental_records_replayed": incremental.records_replayed,
        "incremental_bytes_saved": incremental.resync_bytes_saved,
        "incremental_wall_ms": round(incremental_seconds * 1000, 2),
        "full_reload_bytes_shipped": full_moved.bytes_to_accelerator,
        "full_reload_transfer_ms": round(
            full_moved.simulated_seconds * 1000, 3
        ),
        "full_reload_wall_ms": round(full_seconds * 1000, 2),
        "bytes_ratio": round(bytes_ratio, 2),
        "transfer_ratio": round(transfer_ratio, 2),
    }
    # The suffix is 1% of the table: the checkpoint must avoid nearly
    # the whole reship. bytes_saved is exactly what the reload moved.
    assert incremental.resync_bytes_saved == full_moved.bytes_to_accelerator
    if not SMOKE:
        assert bytes_ratio > 10, "incremental resync barely saved bytes"
        assert transfer_ratio > 1.0


def test_e16_crash_matrix(record, tmp_path):
    """Differential harness: every crash point recovers byte-identical."""
    start = time.perf_counter()
    report = run_crash_matrix(checkpoint_dir=str(tmp_path))
    elapsed = time.perf_counter() - start
    assert report.all_matched, report.summary()
    incremental = sum(
        1
        for o in report.outcomes
        if o.recovery is not None and o.recovery.tables_restored > 0
    )
    record(
        "E16 crash recovery",
        f"crash matrix: scenarios={len(report.outcomes)} "
        f"all_matched={report.all_matched} "
        f"incremental_recoveries={incremental} "
        f"elapsed={elapsed:.2f}s",
    )
    _RESULTS["crash_matrix"] = {
        "scenarios": len(report.outcomes),
        "all_matched": report.all_matched,
        "incremental_recoveries": incremental,
        "elapsed_seconds": round(elapsed, 2),
    }


def test_e16_export_results():
    """Write the collected numbers for EXPERIMENTS.md to quote."""
    assert "resync" in _RESULTS
    payload = {
        "experiment": "E16",
        "smoke": SMOKE,
        "fact_rows": FACT_ROWS,
        "cores": os.cpu_count(),
        **_RESULTS,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    target = RESULTS_DIR / "e16_crash_recovery.json"
    target.write_text(json.dumps(payload, indent=2) + "\n")
    written = json.loads(target.read_text())
    assert written["experiment"] == "E16"

"""E17 — EXPLAIN ANALYZE: profiler overhead and the standing Q-error corpus.

The per-operator profiler is always-available, so its cost must be
bounded in both states: near-zero when disabled (one is-None check per
operator) and cheap enough when enabled to leave on for every statement.
This benchmark:

* replays a fuzz-shaped query corpus (the E14 shapes: scans, filtered
  aggregates, grouped joins, derived tables, set-style limits) on both
  engines with the profiler enabled, recording per-operator Q-error —
  the standing baseline the cost-based-optimizer work (ROADMAP item 1)
  is measured against;
* times an identical mixed workload profiler-disabled vs. -enabled in an
  interleaved A/B loop (machine drift would otherwise dominate) and
  asserts the enabled overhead < 10% and disabled overhead < 2%;
* asserts profiled results are byte-identical to unprofiled execution;
* exports retained profiles plus the cardinality-feedback rollup to
  ``benchmarks/results/e17_profiler.json`` (uploaded as a CI artifact).

Set ``E17_SMOKE=1`` (the CI smoke job does) for a fast small-data run.
"""

import json
import os
import statistics
import time
from pathlib import Path

from bench_util import make_system
from repro.obs.export import export_json, profiles_payload, qerror_summary
from repro.workloads import create_star_schema

RESULTS_DIR = Path(__file__).parent / "results"
SMOKE = os.environ.get("E17_SMOKE", "") not in ("", "0")

SCALE = dict(customers=60, products=20, transactions=600) if SMOKE else dict(
    customers=300, products=50, transactions=5000
)

#: Fuzz-shaped corpus over the star schema: one query per E14 shape
#: family, each exercising a different operator mix.
CORPUS = [
    # plain scans + filters
    "SELECT T_ID, T_AMOUNT FROM TRANSACTIONS WHERE T_AMOUNT > 500 "
    "ORDER BY T_ID FETCH FIRST 50 ROWS ONLY",
    "SELECT DISTINCT C_REGION FROM CUSTOMERS",
    # whole-table aggregates
    "SELECT COUNT(*), SUM(T_AMOUNT), AVG(T_AMOUNT) FROM TRANSACTIONS "
    "WHERE T_QUANTITY >= 2",
    # grouped aggregates with HAVING
    "SELECT C_REGION, COUNT(*) AS N, AVG(C_INCOME) FROM CUSTOMERS "
    "GROUP BY C_REGION HAVING COUNT(*) > 1 ORDER BY 1",
    # star join + group
    "SELECT C.C_REGION, SUM(T.T_AMOUNT) AS REV FROM TRANSACTIONS T "
    "JOIN CUSTOMERS C ON T.T_CUSTOMER = C.C_ID "
    "GROUP BY C.C_REGION ORDER BY REV DESC",
    # derived table
    "SELECT SUB.T_CUSTOMER, SUB.SPENT FROM "
    "(SELECT T_CUSTOMER, SUM(T_AMOUNT) AS SPENT FROM TRANSACTIONS "
    "GROUP BY T_CUSTOMER) AS SUB WHERE SUB.SPENT > 1000 "
    "ORDER BY SUB.SPENT DESC FETCH FIRST 10 ROWS ONLY",
    # selective point-ish predicate (zero-or-few rows: Q-error edge)
    "SELECT T_ID FROM TRANSACTIONS WHERE T_AMOUNT > 999999",
]

#: Acceptance bounds from the issue: enabled < 10%, disabled < 2%.
MAX_ENABLED_OVERHEAD = 0.10
MAX_DISABLED_OVERHEAD = 0.02

_RESULTS: dict[str, object] = {}


def build_system(profiling_enabled: bool):
    db = make_system(profiling_enabled=profiling_enabled)
    conn = db.connect()
    create_star_schema(conn, **SCALE)
    conn.set_acceleration("ALL")
    return db, conn


def run_corpus(conn):
    for sql in CORPUS:
        conn.execute(sql)


def test_e17_qerror_corpus(record):
    """Replay the corpus on both engines; every operator must carry
    finite stats, and the feedback store becomes the Q-error baseline."""
    db, conn = build_system(profiling_enabled=True)
    for mode in ("ENABLE", "NONE"):
        conn.set_acceleration(mode)
        for sql in CORPUS:
            conn.execute(sql)
            profile = db.profiler.last()
            assert profile is not None and profile.error is None
            for op in profile.operators:
                assert op.executed
                assert op.q_error >= 1.0 and op.q_error < float("inf")
    summary = qerror_summary(db, worst=5)
    assert summary["observations"] >= 2 * len(CORPUS)
    _RESULTS["qerror"] = summary
    record(
        "E17 profiler",
        f"corpus {2 * len(CORPUS)} executions: "
        f"feedback entries={summary['entries']} "
        f"mean_q={summary['mean_q_error']:.2f} "
        f"max_q={summary['max_q_error']:.2f}",
    )
    worst = summary["worst"][0]
    record(
        "E17 profiler",
        f"worst operator: {worst['operator']} [{worst['detail']}] "
        f"mean_q={worst['mean_q_error']:.2f} engine={worst['engine']}",
    )


def test_e17_results_identical(record):
    """Profiling must not change any answer, byte for byte."""
    db_on, conn_on = build_system(profiling_enabled=True)
    db_off, conn_off = build_system(profiling_enabled=False)
    for sql in CORPUS:
        assert conn_on.execute(sql).rows == conn_off.execute(sql).rows
    assert db_on.profiler.profiles() and not db_off.profiler.profiles()
    record(
        "E17 profiler",
        f"byte-identity: {len(CORPUS)} corpus queries identical "
        "profiled vs unprofiled",
    )


def test_e17_overhead(record):
    """Interleaved A/B: enabled < 10%, disabled < 2% vs profiler-less.

    The disabled system still constructs a QueryProfiler (it is always
    available), so 'disabled overhead' here compares enabled=False
    against the same system re-measured — the bound is on the per-
    operator is-None guard, exercised by toggling one system's flag.
    """
    db, conn = build_system(profiling_enabled=True)
    rounds = 6 if SMOKE else 20
    warmups = 2 if SMOKE else 3
    for _ in range(warmups):
        run_corpus(conn)

    def timed():
        t0 = time.perf_counter()
        run_corpus(conn)
        return time.perf_counter() - t0

    # Three interleaved states on ONE system: profiler on, off, on again
    # (the second 'on' guards against drift inside the loop).
    on, off = [], []
    for _ in range(rounds):
        db.profiler.enabled = True
        on.append(timed())
        db.profiler.enabled = False
        off.append(timed())
    enabled_med = statistics.median(on)
    disabled_med = statistics.median(off)
    enabled_overhead = enabled_med / disabled_med - 1.0
    record(
        "E17 profiler",
        f"corpus enabled={enabled_med * 1000:8.2f}ms "
        f"disabled={disabled_med * 1000:8.2f}ms "
        f"enabled_overhead={enabled_overhead * 100:+6.2f}% "
        f"(interleaved medians, bound {MAX_ENABLED_OVERHEAD * 100:.0f}%)",
    )
    assert enabled_overhead < MAX_ENABLED_OVERHEAD
    _RESULTS["enabled_ms"] = enabled_med * 1000
    _RESULTS["disabled_ms"] = disabled_med * 1000
    _RESULTS["enabled_overhead"] = enabled_overhead


def test_e17_disabled_guard_micro(record):
    """Per-operator cost of the disabled fast path.

    A system with profiling off and one with it on-but-toggled-off are
    structurally identical (the profiler object always exists), so a
    macro A/B between them only measures machine noise. What the <2%
    bound actually constrains is the per-operator is-None guard each
    executor pays when no profile is attached — measure that directly,
    E12-style, and scale by the operator count of a worst-case plan.
    """
    from repro.db2.executor import RowQueryEngine

    executor = RowQueryEngine(None, (), profile=None)
    node = object()  # _stats only identity-checks, any sentinel works

    loops = 1000
    reps = 50 if SMOKE else 200
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        for _ in range(loops):
            executor._stats(node)
        samples.append((time.perf_counter() - t0) / loops)
    per_site = statistics.median(samples)
    _RESULTS["guard_per_site_ns"] = per_site * 1e9

    # Deepest corpus plan has < 12 operators; the fastest plausible
    # statement in this simulation is ~100us end to end.
    sites_per_statement = 12
    statement_seconds = 100e-6
    disabled_overhead = per_site * sites_per_statement / statement_seconds
    record(
        "E17 profiler",
        f"disabled guard per_site={per_site * 1e9:7.1f}ns "
        f"x{sites_per_statement} operators / 100us statement "
        f"= {disabled_overhead * 100:6.3f}% "
        f"(bound {MAX_DISABLED_OVERHEAD * 100:.0f}%)",
    )
    assert disabled_overhead < MAX_DISABLED_OVERHEAD
    _RESULTS["disabled_overhead"] = disabled_overhead


def test_e17_export(record):
    """Retained profiles + Q-error rollup land in results/ (CI artifact)."""
    db, conn = build_system(profiling_enabled=True)
    run_corpus(conn)
    conn.set_acceleration("NONE")
    run_corpus(conn)
    payload = {
        "experiment": "E17",
        "smoke": SMOKE,
        "corpus_size": len(CORPUS),
        "overhead": {
            key: _RESULTS.get(key)
            for key in (
                "enabled_ms",
                "disabled_ms",
                "enabled_overhead",
                "disabled_overhead",
            )
        },
        **profiles_payload(db),
    }
    # Strict JSON: the profiler must never emit NaN/inf (zero-row ops).
    json.dumps(payload, allow_nan=False)
    target = export_json(RESULTS_DIR / "e17_profiler.json", payload)
    written = json.loads(target.read_text())
    assert written["profiles"]
    assert written["qerror"]["entries"] >= 1
    record(
        "E17 profiler",
        f"exported {len(written['profiles'])} profiles, "
        f"{written['qerror']['entries']} feedback entries "
        f"-> results/e17_profiler.json",
    )

"""E20 — Scale-out accelerator pool: byte-identity and modeled speedup.

PR-10 generalized the federation from one accelerator to an N-shard
pool (``repro.shard``) behind the same engine interface. This
experiment checks the two claims that make sharding worth having:

* **transparency** — the same analytic workload returns byte-identical
  rows at 1, 2, and 4 shards (the coordinator's layout oracle preserves
  single-instance row order through per-shard gathers);
* **scan scaling** — the modeled critical path of the workload shrinks
  with the shard count. Wall clock on a single-core host cannot show
  this (the fan-out is simulated in-process), so — like E13 and E19 —
  the gated observable is the modeled scan time: the single instance
  accrues ``rows / scan_rate`` per scan while the pool accrues the
  *slowest shard's* share per fan-out. The acceptance gate is ≥2× at
  4 shards vs 1 on a ≥100k-row table.

Two supporting measurements ride along: placement pruning (after
``ALTER TABLE … DISTRIBUTE BY HASH``, point lookups touch one shard
instead of all four) and training determinism (the SGD logistic
trainer fits bit-for-bit the same model at every shard count, because
epoch scans run in coordinator layout order).

Results land in ``benchmarks/results/e20_scale_out.json`` (uploaded as
a CI artifact). Set ``E20_SMOKE=1`` (the CI smoke job does) for a fast
small-data pass; the committed JSON comes from a full-scale run.
"""

import json
import os
import time
from pathlib import Path

from bench_util import make_system
from repro.obs.export import export_json
from repro.workloads import create_churn_table

RESULTS_DIR = Path(__file__).parent / "results"
SMOKE = os.environ.get("E20_SMOKE", "") not in ("", "0")

#: Scan-table rows. The acceptance gate demands ≥100k at full scale.
ROWS = 12_000 if SMOKE else 120_000
#: Rows for the SGD determinism check (per-row Python loop, keep small).
TRAIN_ROWS = 3_000 if SMOKE else 20_000
SHARD_COUNTS = (1, 2, 4)
POINT_LOOKUPS = 32

#: The analytic workload replayed at every shard count.
QUERIES = [
    "SELECT COUNT(*), SUM(TOTAL_CHARGES), AVG(MONTHLY_CHARGES), "
    "MIN(TENURE_MONTHS), MAX(TENURE_MONTHS) FROM CHURN",
    "SELECT CONTRACT_MONTHS, COUNT(*), AVG(SUPPORT_CALLS), "
    "SUM(MONTHLY_CHARGES) FROM CHURN GROUP BY CONTRACT_MONTHS "
    "ORDER BY CONTRACT_MONTHS",
    "SELECT CHURNED, COUNT(*), AVG(MONTHLY_CHARGES) FROM CHURN "
    "GROUP BY CHURNED ORDER BY CHURNED",
    "SELECT COUNT(*) FROM CHURN WHERE MONTHLY_CHARGES > 100 "
    "AND SUPPORT_CALLS >= 5",
    "SELECT COUNT(*), AVG(TENURE_MONTHS) FROM CHURN "
    "WHERE TOTAL_CHARGES IS NULL",
    "SELECT SUPPORT_CALLS, COUNT(*) FROM CHURN "
    "WHERE CONTRACT_MONTHS = 1 GROUP BY SUPPORT_CALLS "
    "ORDER BY SUPPORT_CALLS",
]

_RESULTS: dict[str, object] = {}


def scan_system(shards: int):
    db = make_system(shards=shards, parallel_workers=1)
    conn = db.connect()
    create_churn_table(conn, count=ROWS, accelerate=True)
    conn.set_acceleration("ALL")
    return db, conn


def modeled_scan_seconds(db) -> float:
    """The gated observable, per deployment shape.

    Single instance: total simulated busy time (one engine does all the
    scanning). Pool: the simulated critical path — each fan-out costs
    its slowest shard, the rest overlap.
    """
    if db.accelerator_pool is not None:
        return db.accelerator_pool.simulated_critical_path_seconds
    return db.accelerator.simulated_busy_seconds


def run_workload(conn) -> list:
    return [conn.execute(sql).rows for sql in QUERIES]


def test_e20_byte_identity_and_modeled_speedup(record):
    """The headline gate: same bytes at every shard count, ≥2× modeled
    scan speedup at 4 shards on ≥100k rows."""
    baseline_rows = None
    shapes = {}
    for shards in SHARD_COUNTS:
        db, conn = scan_system(shards)
        run_workload(conn)  # warm plan cache before measuring
        modeled_before = modeled_scan_seconds(db)
        started = time.perf_counter()
        results = run_workload(conn)
        wall = time.perf_counter() - started
        modeled = modeled_scan_seconds(db) - modeled_before
        assert results[0][0][0] == ROWS
        if baseline_rows is None:
            baseline_rows = results
        else:
            for sql, expected, got in zip(QUERIES, baseline_rows, results):
                assert got == expected, (shards, sql)
        shapes[shards] = dict(modeled_seconds=modeled, wall_seconds=wall)

    speedup_2 = shapes[1]["modeled_seconds"] / shapes[2]["modeled_seconds"]
    speedup_4 = shapes[1]["modeled_seconds"] / shapes[4]["modeled_seconds"]
    record(
        "E20 scale-out",
        f"scan workload ({ROWS} rows, {len(QUERIES)} queries): modeled "
        f"1 shard={shapes[1]['modeled_seconds'] * 1000:.2f}ms "
        f"2 shards={shapes[2]['modeled_seconds'] * 1000:.2f}ms "
        f"4 shards={shapes[4]['modeled_seconds'] * 1000:.2f}ms "
        f"({speedup_2:.2f}x / {speedup_4:.2f}x); byte-identical rows",
    )
    if not SMOKE:
        assert ROWS >= 100_000
    assert speedup_4 >= 2.0, (
        f"modeled critical path at 4 shards only {speedup_4:.2f}x "
        "faster than the single instance"
    )
    assert speedup_2 > 1.0
    _RESULTS["scan"] = {
        "rows": ROWS,
        "queries": len(QUERIES),
        "per_shards": {
            str(shards): shape for shards, shape in shapes.items()
        },
        "modeled_speedup_2_shards": speedup_2,
        "modeled_speedup_4_shards": speedup_4,
        "identity": "rows byte-identical across shard counts",
    }


def test_e20_hash_placement_prunes_point_lookups(record):
    """After DISTRIBUTE BY HASH on the join key, a point lookup scans
    one shard; the other three never see the query."""
    db, conn = scan_system(4)
    conn.execute("ALTER TABLE CHURN ACCELERATE DISTRIBUTE BY HASH(CUST_ID)")
    pool = db.accelerator_pool
    total_before = pool.shard_scans_total
    pruned_before = pool.shard_scans_pruned
    modeled_before = modeled_scan_seconds(db)
    for cust_id in range(1, POINT_LOOKUPS + 1):
        rows = conn.execute(
            "SELECT CUST_ID, MONTHLY_CHARGES FROM CHURN "
            f"WHERE CUST_ID = {cust_id}"
        ).rows
        assert [r[0] for r in rows] == [cust_id]
    scans = pool.shard_scans_total - total_before
    pruned = pool.shard_scans_pruned - pruned_before
    modeled = modeled_scan_seconds(db) - modeled_before
    prune_fraction = pruned / scans
    record(
        "E20 scale-out",
        f"{POINT_LOOKUPS} point lookups after DISTRIBUTE BY HASH: "
        f"{pruned}/{scans} shard scans pruned "
        f"({prune_fraction:.0%}), modeled {modeled * 1000:.2f}ms",
    )
    # Every lookup should touch exactly one of the four shards.
    assert prune_fraction == 0.75
    _RESULTS["pruning"] = {
        "lookups": POINT_LOOKUPS,
        "shard_scans": scans,
        "shard_scans_pruned": pruned,
        "prune_fraction": prune_fraction,
        "modeled_seconds": modeled,
    }


def train_sql() -> str:
    return (
        "CALL INZA.LOGISTIC_REGRESSION('intable=CHURN, target=CHURNED, "
        "model=CHURN_LR, id=CUST_ID, epochs=3, rate=0.2, "
        "incolumn=TENURE_MONTHS;MONTHLY_CHARGES;SUPPORT_CALLS;"
        "CONTRACT_MONTHS')"
    )


def test_e20_training_is_deterministic_across_shards(record):
    """SGD epochs run in coordinator layout order on a pool, so the
    fitted model is bit-for-bit identical at every shard count."""
    fits = {}
    for shards in SHARD_COUNTS:
        db = make_system(shards=shards, parallel_workers=1)
        conn = db.connect()
        create_churn_table(conn, count=TRAIN_ROWS, accelerate=True)
        started = time.perf_counter()
        conn.execute(train_sql())
        seconds = time.perf_counter() - started
        model = db.models.get("CHURN_LR")
        fits[shards] = dict(
            seconds=seconds,
            intercept=model.payload["intercept"],
            coefficients=list(model.payload["coefficients"]),
            accuracy=model.metrics["accuracy"],
        )
    base = fits[1]
    for shards in SHARD_COUNTS[1:]:
        assert fits[shards]["intercept"] == base["intercept"], shards
        assert fits[shards]["coefficients"] == base["coefficients"], shards
    timings = ", ".join(
        f"{fits[s]['seconds']:.2f}" for s in SHARD_COUNTS
    )
    record(
        "E20 scale-out",
        f"logistic SGD ({TRAIN_ROWS} rows, 3 epochs): bitwise-identical "
        f"model at 1/2/4 shards, accuracy={base['accuracy']:.3f}, "
        f"seconds={timings}",
    )
    _RESULTS["training"] = {
        "rows": TRAIN_ROWS,
        "epochs": 3,
        "accuracy": base["accuracy"],
        "seconds_per_shards": {
            str(s): fits[s]["seconds"] for s in SHARD_COUNTS
        },
        "identity": "intercept/coefficients bitwise across shard counts",
    }


def test_e20_export(record):
    """Everything lands in results/e20_scale_out.json."""
    payload = {
        "experiment": "E20",
        "smoke": SMOKE,
        "scan": _RESULTS.get("scan"),
        "pruning": _RESULTS.get("pruning"),
        "training": _RESULTS.get("training"),
    }
    json.dumps(payload, allow_nan=False)
    target = export_json(RESULTS_DIR / "e20_scale_out.json", payload)
    written = json.loads(target.read_text())
    assert written["experiment"] == "E20"
    record(
        "E20 scale-out",
        "exported scan + pruning + training numbers "
        "-> results/e20_scale_out.json",
    )

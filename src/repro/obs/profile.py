"""Per-operator execution profiler (the EXPLAIN ANALYZE machinery).

Phase-level spans (repro.obs.trace) say where a *statement* spent its
time; this module says where a *plan* spent it. Every logical operator
(Scan/Filter/Join/Project/Aggregate/Sort/Limit/SetOp/SubqueryBind) of an
executed statement gets one :class:`OperatorStats` record — rows in/out,
batches, inclusive wall time, zone-map chunks pruned, parallel-kernel
vs. sequential path, engine — filled in by the plan walkers of both
executors. Three consumers sit on top:

* ``EXPLAIN ANALYZE`` renders the annotated tree (actual vs. estimated
  cardinality and per-operator Q-error) through the same formatter plain
  ``EXPLAIN`` uses for the unannotated tree;
* :class:`CardinalityFeedback` accumulates (estimate, actual) pairs per
  plan-node fingerprint — the training data for the planned cost-based
  optimizer (ROADMAP item 1), surfaced as ``SYSACCEL.MON_QERROR``;
* :class:`SlowQueryLog` captures the full annotated plan of statements
  over a runtime-configurable latency threshold.

Design constraints (mirroring repro.obs.trace):

* **near-zero cost when disabled** — executors hold ``profile=None`` and
  pay one ``is None`` check per operator;
* **deterministic ids** — profile ids (``P000001``) come from a
  monotonic counter, so identical runs produce identical ids;
* **observation only** — the profiler never changes operator semantics,
  row order, or result bytes (the E14/E17 differential harnesses check
  profiled and unprofiled executions byte-for-byte);
* **finite Q-error** — estimates and actuals are clamped to >= 1 before
  dividing, so zero-row operators export clean JSON (no NaN/inf);
* **bounded retention** — completed profiles, feedback entries, and slow
  queries all live in capacity-bounded structures.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.sql import ast, logical
from repro.sql.planning import split_conjuncts

__all__ = [
    "CardinalityFeedback",
    "FeedbackEntry",
    "OperatorStats",
    "QueryProfiler",
    "SlowQueryLog",
    "SlowQueryRecord",
    "StatementProfile",
    "counted_rows",
    "counted_source",
    "estimate_plan",
    "format_operator",
    "plan_tree_lines",
    "q_error",
    "walk_plan",
]

#: Selectivity assumed for a predicate whose true selectivity is unknown
#: (pushed scan predicates and residual filters). Deliberately crude —
#: the Q-error this produces is exactly what the feedback store measures.
_FILTER_SELECTIVITY = 3
#: Group-count divisor for GROUP BY cardinality guesses.
_GROUP_FANIN = 10


def q_error(estimated: float, actual: float) -> float:
    """Classic Q-error: ``max(est/act, act/est)`` with inputs clamped to
    >= 1 so zero-row operators stay finite (and JSON-safe)."""
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return est / act if est >= act else act / est


# ---------------------------------------------------------------------------
# Plan walking + the shared EXPLAIN / EXPLAIN ANALYZE formatter
# ---------------------------------------------------------------------------


def _node_children(node: logical.PlanNode) -> tuple:
    if isinstance(node, logical.SubqueryBind):
        return (node.plan,)
    if isinstance(node, (logical.Join, logical.SetOp)):
        return (node.left, node.right)
    child = getattr(node, "child", None)
    return (child,) if child is not None else ()


def node_detail(node: logical.PlanNode) -> str:
    """Short operator qualifier shown in brackets after the label."""
    if isinstance(node, logical.Scan):
        detail = node.table
        if node.binding.upper() != node.table.upper():
            detail += f" AS {node.binding}"
        if node.columns is not None:
            detail += f" cols={len(node.columns)}"
        if node.predicate is not None:
            detail += " pushed-predicate"
        return detail
    if isinstance(node, logical.SubqueryBind):
        return node.alias
    if isinstance(node, logical.Join):
        return node.join_type
    if isinstance(node, logical.SetOp):
        return node.op
    if isinstance(node, logical.Project):
        detail = f"cols={len(node.select_items)}"
        return detail + " distinct" if node.distinct else detail
    if isinstance(node, logical.Aggregate):
        detail = f"group_by={len(node.group_by)}"
        if node.having is not None:
            detail += " having"
        return detail
    if isinstance(node, logical.Sort):
        return f"keys={len(node.order_by)}"
    if isinstance(node, logical.Limit):
        parts = []
        if node.offset is not None:
            parts.append(f"offset={node.offset}")
        if node.limit is not None:
            parts.append(f"limit={node.limit}")
        return " ".join(parts)
    return ""


def walk_plan(
    plan: logical.PlanNode,
) -> list[tuple[str, int, logical.PlanNode]]:
    """Preorder walk: ``(path, depth, node)`` with span-style paths
    (root ``"1"``, its second child ``"1.2"``, ...)."""
    out: list[tuple[str, int, logical.PlanNode]] = []

    def visit(node: logical.PlanNode, path: str, depth: int) -> None:
        out.append((path, depth, node))
        for i, child in enumerate(_node_children(node)):
            visit(child, f"{path}.{i + 1}", depth + 1)

    visit(plan, "1", 0)
    return out


def format_operator(label: str, detail: str, depth: int) -> str:
    """THE formatter: one plan-tree line, shared by ``EXPLAIN`` (bare
    tree) and ``EXPLAIN ANALYZE`` (OPERATOR column of the annotated
    grid)."""
    rendered = f"{'  ' * depth}{label}"
    return f"{rendered} [{detail}]" if detail else rendered


def plan_tree_lines(plan: logical.PlanNode) -> list[str]:
    """Indented logical-plan rendering (one line per operator)."""
    return [
        format_operator(type(node).__name__, node_detail(node), depth)
        for __, depth, node in walk_plan(plan)
    ]


# ---------------------------------------------------------------------------
# Cardinality estimation (per plan node)
# ---------------------------------------------------------------------------


def _scaled_rows(rows: int, selectivity: float) -> int:
    """Apply a fractional selectivity: empty inputs stay 0, and a
    nonzero input with nonzero selectivity never rounds below 1."""
    if rows <= 0:
        return 0
    if selectivity <= 0.0:
        return 0
    return max(1, int(round(rows * selectivity)))


def _column_binding_stats(
    expr: "ast.Expression", binding_stats: dict[str, object]
):
    """Resolve a column ref to its table's statistics via the plan's
    binding map; unqualified refs resolve only when exactly one scanned
    table exposes the column."""
    if not isinstance(expr, ast.ColumnRef):
        return None
    if expr.table is not None:
        stats = binding_stats.get(expr.table.upper())
        return stats if stats is not None else None
    matches = [
        stats
        for stats in binding_stats.values()
        if stats.column(expr.name) is not None
    ]
    return matches[0] if len(matches) == 1 else None


def estimate_plan(
    plan: logical.PlanNode,
    table_rows: Callable[[str], int],
    stats=None,
    feedback: Optional[Callable[[str], Optional[int]]] = None,
) -> dict[int, int]:
    """Estimated output rows per node, keyed by ``id(node)``.

    Without ``stats``, the legacy model applies: base-table counts plus
    fixed selectivities — the estimator whose error the feedback store
    quantifies, and the E17/E18 comparison baseline.

    ``stats`` (a duck-typed :class:`repro.sql.stats.StatisticsManager`)
    upgrades the model: scan predicates use per-column histograms and
    NDVs, equi-joins use ``|L|*|R| / max(ndv)``, and GROUP BY uses the
    product of group-column NDVs. ``feedback`` (path -> last observed
    actual rows, from the PR-7 cardinality-feedback store) overrides the
    model wherever an earlier execution of the same plan fingerprint
    recorded ground truth; corrections propagate upward through the
    plan. Empty inputs always estimate 0 — never the old ``max(1, ...)``
    floor, which charged every empty-table scan a phantom row.
    """
    estimates: dict[int, int] = {}
    binding_stats: dict[str, object] = {}
    if stats is not None:

        def map_bindings(node: logical.PlanNode) -> None:
            if isinstance(node, logical.Scan):
                table_stats = stats.table(node.table)
                if table_stats is not None:
                    binding_stats[node.binding.upper()] = table_stats
            for child in _node_children(node):
                map_bindings(child)

        map_bindings(plan)

    def conjunct_selectivity(conjunct) -> float:
        """Selectivity of one (possibly multi-table) filter conjunct."""
        if not binding_stats:
            return 1.0 / _FILTER_SELECTIVITY
        for expr in (
            getattr(conjunct, "left", None),
            getattr(conjunct, "operand", None),
        ):
            owner = _column_binding_stats(expr, binding_stats)
            if owner is not None:
                return owner.predicate_selectivity(conjunct)
        return 1.0 / _FILTER_SELECTIVITY

    def equi_join_selectivity(condition) -> Optional[float]:
        """``1 / max(ndv_left, ndv_right)`` over the equi conjuncts, or
        None when no NDV is known for any key pair."""
        selectivity: Optional[float] = None
        for conjunct in split_conjuncts(condition):
            if not (
                isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="
            ):
                continue
            ndvs = []
            for side in (conjunct.left, conjunct.right):
                owner = _column_binding_stats(side, binding_stats)
                if owner is not None and isinstance(side, ast.ColumnRef):
                    ndv = owner.distinct_count(side.name)
                    if ndv is not None:
                        ndvs.append(ndv)
            if ndvs:
                factor = 1.0 / max(ndvs)
                selectivity = (
                    factor if selectivity is None else selectivity * factor
                )
        return selectivity

    def group_count(node: logical.Aggregate, child_rows: int) -> int:
        if binding_stats:
            product = 1
            known = False
            for expr in node.group_by:
                owner = _column_binding_stats(expr, binding_stats)
                if owner is not None and isinstance(expr, ast.ColumnRef):
                    ndv = owner.distinct_count(expr.name)
                    if ndv is not None:
                        product *= ndv
                        known = True
                        continue
                product *= _GROUP_FANIN
            if known:
                return min(child_rows, max(1, product))
        return min(child_rows, max(1, child_rows // _GROUP_FANIN))

    def visit(node: logical.PlanNode, path: str) -> int:
        if isinstance(node, logical.Scan):
            table_stats = (
                binding_stats.get(node.binding.upper())
                if binding_stats
                else None
            )
            if table_stats is not None:
                rows = max(0, int(table_stats.row_count))
            else:
                rows = max(0, int(table_rows(node.table)))
            if node.predicate is not None:
                if table_stats is not None:
                    rows = _scaled_rows(
                        rows, table_stats.predicate_selectivity(node.predicate)
                    )
                else:
                    rows = max(1, rows // _FILTER_SELECTIVITY) if rows else 0
        elif isinstance(node, logical.Filter):
            child = visit(node.child, f"{path}.1")
            if binding_stats:
                selectivity = 1.0
                for conjunct in split_conjuncts(node.predicate):
                    selectivity *= conjunct_selectivity(conjunct)
                rows = _scaled_rows(child, selectivity)
            else:
                rows = (
                    max(1, child // _FILTER_SELECTIVITY) if child else 0
                )
        elif isinstance(node, logical.SubqueryBind):
            rows = visit(node.plan, f"{path}.1")
        elif isinstance(node, logical.Join):
            left = visit(node.left, f"{path}.1")
            right = visit(node.right, f"{path}.2")
            if node.join_type == "CROSS" or node.condition is None:
                rows = left * right
            else:
                selectivity = (
                    equi_join_selectivity(node.condition)
                    if binding_stats
                    else None
                )
                if selectivity is not None:
                    rows = _scaled_rows(left * right, selectivity)
                else:
                    # Equi-ish join guess: the larger input survives.
                    rows = max(left, right)
                # Outer joins keep at least their preserved side.
                if node.join_type == "LEFT":
                    rows = max(rows, left)
                elif node.join_type == "RIGHT":
                    rows = max(rows, right)
        elif isinstance(node, logical.Project):
            rows = visit(node.child, f"{path}.1") if node.child is not None else 1
        elif isinstance(node, logical.Aggregate):
            child = visit(node.child, f"{path}.1")
            if not node.group_by:
                rows = 1
            elif child == 0:
                rows = 0
            else:
                rows = group_count(node, child)
        elif isinstance(node, logical.Sort):
            rows = visit(node.child, f"{path}.1")
        elif isinstance(node, logical.Limit):
            rows = visit(node.child, f"{path}.1")
            if node.offset is not None:
                rows = max(0, rows - node.offset)
            if node.limit is not None:
                rows = min(rows, node.limit)
        elif isinstance(node, logical.SetOp):
            left = visit(node.left, f"{path}.1")
            right = visit(node.right, f"{path}.2")
            if node.op == "INTERSECT":
                rows = min(left, right)
            elif node.op == "EXCEPT":
                rows = left
            else:  # UNION / UNION ALL
                rows = left + right
        else:  # pragma: no cover - future node kinds
            rows = 1
        if feedback is not None:
            observed = feedback(path)
            if observed is not None:
                rows = max(0, int(observed))
        estimates[id(node)] = rows
        return rows

    visit(plan, "1")
    return estimates


# ---------------------------------------------------------------------------
# Runtime records
# ---------------------------------------------------------------------------


@dataclass
class OperatorStats:
    """Runtime statistics of one plan operator in one execution."""

    path: str
    depth: int
    operator: str
    detail: str
    engine: str
    estimated_rows: int = 0
    #: Rows produced (post-predicate for scans).
    actual_rows: int = 0
    #: Rows consumed (scans: rows read before filtering).
    rows_in: int = 0
    #: Executions/batches: partitions for parallel scans, otherwise 1.
    batches: int = 0
    #: Inclusive wall time (the operator plus the subtree it drains).
    wall_seconds: float = 0.0
    #: Zone-map chunks the scan skipped (accelerator scans only).
    chunks_skipped: int = 0
    #: True when the operator ran on the chunk-parallel kernel path.
    parallel: bool = False
    #: True once the operator actually ran (a pruned/fused node may not).
    executed: bool = False
    #: True when the operator was collapsed into a scan pipeline or a
    #: whole-statement partial aggregate (its row count is the fused
    #: pipeline's output, not an independently observed one).
    fused: bool = False

    @property
    def q_error(self) -> float:
        return q_error(self.estimated_rows, self.actual_rows)

    def observe(
        self,
        rows_out: int,
        wall_seconds: float,
        rows_in: Optional[int] = None,
    ) -> None:
        self.executed = True
        self.batches += 1
        self.actual_rows += rows_out
        if rows_in is not None:
            self.rows_in += rows_in
        self.wall_seconds += wall_seconds

    def describe(self) -> str:
        """Tree line for this operator (the shared formatter)."""
        return format_operator(self.operator, self.detail, self.depth)


def counted_rows(stats: OperatorStats, rows: Iterator[tuple]) -> Iterator[tuple]:
    """Wrap a streaming operator's output, counting rows into ``stats``.

    Used by the row-at-a-time DB2 executor, whose operators are lazy
    generators: counts and the inclusive wall clock are accumulated
    locally and flushed once on exhaustion (or early close), so the
    per-row cost is one integer increment.
    """
    started = time.perf_counter()
    count = 0
    try:
        for row in rows:
            count += 1
            yield row
    finally:
        stats.executed = True
        stats.batches += 1
        stats.actual_rows += count
        stats.wall_seconds += time.perf_counter() - started


def counted_source(
    stats: OperatorStats, rows: Iterator[tuple]
) -> Iterator[tuple]:
    """Count a scan's *input* side (rows read before its predicate)."""
    count = 0
    try:
        for row in rows:
            count += 1
            yield row
    finally:
        stats.rows_in += count


class StatementProfile:
    """All operator stats of one statement execution on one engine."""

    __slots__ = (
        "profile_id",
        "fingerprint",
        "generation",
        "engine",
        "elapsed_seconds",
        "failback",
        "error",
        "operators",
        "_by_node",
        "_plan",
    )

    def __init__(
        self,
        profile_id: str,
        fingerprint: str,
        generation: int,
        engine: str,
    ) -> None:
        self.profile_id = profile_id
        self.fingerprint = fingerprint
        self.generation = generation
        self.engine = engine
        self.elapsed_seconds = 0.0
        #: True when this execution was the transparent DB2 re-run after
        #: a mid-statement accelerator failure.
        self.failback = False
        #: Set when the execution raised (the profile is retained for
        #: EXPLAIN ANALYZE / the slow log, but never feeds the
        #: cardinality store — partial actuals would poison it).
        self.error: Optional[str] = None
        self.operators: list[OperatorStats] = []
        self._by_node: dict[int, OperatorStats] = {}
        self._plan: Optional[logical.PlanNode] = None

    def attach_plan(
        self,
        plan: logical.PlanNode,
        table_rows: Callable[[str], int],
        estimates: Optional[dict[int, int]] = None,
    ) -> None:
        """Index the plan: one stats record per node, with estimates.

        ``estimates`` (``id(node)`` keyed) reuses cardinalities already
        computed for routing/costing; otherwise the legacy model runs.

        Pins ``plan`` for the profile's lifetime — the ``id()``-keyed
        node index is only sound while the nodes cannot be collected.
        """
        if estimates is None:
            estimates = estimate_plan(plan, table_rows)
        for path, depth, node in walk_plan(plan):
            stats = OperatorStats(
                path=path,
                depth=depth,
                operator=type(node).__name__,
                detail=node_detail(node),
                engine=self.engine,
                estimated_rows=estimates[id(node)],
            )
            self.operators.append(stats)
            self._by_node[id(node)] = stats
        self._plan = plan

    def stats_for(self, node: logical.PlanNode) -> Optional[OperatorStats]:
        return self._by_node.get(id(node))

    def mark_fused_filters(
        self, node: logical.PlanNode, rows_out: int
    ) -> None:
        """Credit a Filter chain that an executor collapsed into a scan
        pipeline (or a whole-statement partial aggregate): each fused
        filter reports the pipeline's output as its own."""
        while isinstance(node, logical.Filter):
            stats = self._by_node.get(id(node))
            if stats is not None and not stats.executed:
                stats.executed = True
                stats.fused = True
                stats.batches += 1
                stats.actual_rows += rows_out
            node = node.child

    def render(self) -> list[str]:
        """Human-readable annotated plan: a header line identifying the
        execution, then one line per operator."""
        header = (
            f"{self.profile_id} engine={self.engine} "
            f"{self.elapsed_seconds * 1000:.3f}ms"
        )
        if self.failback:
            header += " (failback re-execution)"
        if self.error is not None:
            header += f" error={self.error}"
        lines = [header]
        for op in self.operators:
            flags = ""
            if op.fused:
                flags += " fused"
            if op.parallel:
                flags += " parallel"
            if not op.executed:
                flags += " not-executed"
            lines.append(
                f"{op.describe()} rows={op.actual_rows} "
                f"(est={op.estimated_rows} q={op.q_error:.2f}) "
                f"{op.wall_seconds * 1000:.3f}ms"
                + (
                    f" chunks_skipped={op.chunks_skipped}"
                    if op.chunks_skipped
                    else ""
                )
                + flags
            )
        return lines


# ---------------------------------------------------------------------------
# Cardinality-feedback store
# ---------------------------------------------------------------------------


@dataclass
class FeedbackEntry:
    """Accumulated estimate/actual pairs of one plan-node fingerprint."""

    fingerprint: str
    generation: int
    path: str
    operator: str
    detail: str
    engine: str
    executions: int = 0
    estimated_total: int = 0
    actual_total: int = 0
    last_estimated: int = 0
    last_actual: int = 0
    q_error_sum: float = 0.0
    q_error_max: float = 1.0

    @property
    def mean_q_error(self) -> float:
        return self.q_error_sum / self.executions if self.executions else 1.0


class CardinalityFeedback:
    """Bounded (estimate, actual) accumulator keyed by plan-node
    fingerprint: (normalised statement text, catalog generation,
    node path). LRU evicted at ``capacity`` entries."""

    def __init__(self, capacity: int = 2048) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, FeedbackEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.observations = 0

    def record_profile(self, profile: StatementProfile) -> None:
        with self._lock:
            for stats in profile.operators:
                if not stats.executed:
                    continue
                key = (profile.fingerprint, profile.generation, stats.path)
                entry = self._entries.get(key)
                if entry is None:
                    entry = FeedbackEntry(
                        fingerprint=profile.fingerprint,
                        generation=profile.generation,
                        path=stats.path,
                        operator=stats.operator,
                        detail=stats.detail,
                        engine=stats.engine,
                    )
                    self._entries[key] = entry
                entry.executions += 1
                entry.estimated_total += stats.estimated_rows
                entry.actual_total += stats.actual_rows
                entry.last_estimated = stats.estimated_rows
                entry.last_actual = stats.actual_rows
                error = stats.q_error
                entry.q_error_sum += error
                if error > entry.q_error_max:
                    entry.q_error_max = error
                entry.engine = stats.engine
                self._entries.move_to_end(key)
                self.observations += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def lookup(
        self, fingerprint: str, generation: int, path: str
    ) -> Optional[int]:
        """Last observed actual row count for one plan-node fingerprint,
        or None. Keys carry the catalog generation, so DDL invalidates
        feedback the same way it invalidates cached plans."""
        with self._lock:
            entry = self._entries.get((fingerprint, generation, path))
            return entry.last_actual if entry is not None else None

    def entries(self) -> list[FeedbackEntry]:
        with self._lock:
            return list(self._entries.values())

    def worst(self, limit: int = 10) -> list[FeedbackEntry]:
        """Entries sorted by mean Q-error, worst first."""
        return sorted(
            self.entries(),
            key=lambda e: (-e.mean_q_error, e.fingerprint, e.path),
        )[:limit]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> dict:
        with self._lock:
            entries = list(self._entries.values())
        worst = max((e.q_error_max for e in entries), default=1.0)
        mean = (
            sum(e.mean_q_error for e in entries) / len(entries)
            if entries
            else 1.0
        )
        return {
            "entries": len(entries),
            "observations": self.observations,
            "mean_q_error": round(mean, 6),
            "max_q_error": round(worst, 6),
        }


# ---------------------------------------------------------------------------
# Slow-query log
# ---------------------------------------------------------------------------


@dataclass
class SlowQueryRecord:
    """One over-threshold statement with its full annotated plan."""

    profile: StatementProfile
    elapsed_seconds: float
    threshold_seconds: float
    sequence: int = 0

    @property
    def profile_id(self) -> str:
        return self.profile.profile_id

    @property
    def plan_lines(self) -> list[str]:
        """The full annotated plan of the offending statement."""
        return self.profile.render()


class SlowQueryLog:
    """Ring of statements slower than a runtime-configurable threshold.

    ``SYSPROC.ACCEL_CONTROL_ACCELERATOR('action=slow_log; ...')`` adjusts
    ``threshold_seconds`` and ``capacity`` live; capacity changes rebuild
    the ring (a deque's maxlen is fixed at construction), keeping the
    newest records.
    """

    def __init__(
        self, threshold_seconds: float = 1.0, capacity: int = 64
    ) -> None:
        self.threshold_seconds = float(threshold_seconds)
        self.capacity = int(capacity)
        self._records: deque[SlowQueryRecord] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.statements_logged = 0

    def observe(
        self, profile: StatementProfile, elapsed_seconds: float
    ) -> None:
        if elapsed_seconds < self.threshold_seconds:
            return
        with self._lock:
            self._seq += 1
            self._records.append(
                SlowQueryRecord(
                    profile=profile,
                    elapsed_seconds=elapsed_seconds,
                    threshold_seconds=self.threshold_seconds,
                    sequence=self._seq,
                )
            )
            self.statements_logged += 1

    def set_threshold(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("slow-query threshold must be >= 0 seconds")
        self.threshold_seconds = float(seconds)

    def set_capacity(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("slow-query log capacity must be >= 1")
        with self._lock:
            self.capacity = int(capacity)
            self._records = deque(self._records, maxlen=self.capacity)

    def records(self) -> list[SlowQueryRecord]:
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def snapshot(self) -> dict:
        return {
            "threshold_seconds": self.threshold_seconds,
            "capacity": self.capacity,
            "retained": len(self._records),
            "logged": self.statements_logged,
        }


# ---------------------------------------------------------------------------
# The system-owned profiler
# ---------------------------------------------------------------------------


class QueryProfiler:
    """Owns enablement, the recent-profile ring, the feedback store, and
    the slow-query log (one instance per :class:`AcceleratedDatabase`).

    ``enabled=False`` keeps the whole machinery dormant at one branch per
    statement; ``EXPLAIN ANALYZE`` still works by forcing a profile for
    its own statement.
    """

    def __init__(
        self,
        enabled: bool = True,
        retention: int = 128,
        feedback_capacity: int = 2048,
        slow_threshold_seconds: float = 1.0,
        slow_capacity: int = 64,
    ) -> None:
        self.enabled = enabled
        self.retention = retention
        self.feedback = CardinalityFeedback(capacity=feedback_capacity)
        self.slow_log = SlowQueryLog(
            threshold_seconds=slow_threshold_seconds, capacity=slow_capacity
        )
        self._profiles: deque[StatementProfile] = deque(maxlen=retention)
        self._lock = threading.Lock()
        self._seq = 0
        self.statements_profiled = 0

    def begin(
        self,
        plan: logical.PlanNode,
        table_rows: Callable[[str], int],
        engine: str,
        fingerprint: Optional[str] = None,
        generation: int = 0,
        estimates: Optional[dict[int, int]] = None,
    ) -> StatementProfile:
        """Start (and index) a profile for one execution of ``plan``.

        ``estimates`` reuses the cardinalities the system already
        computed for routing (statistics- and feedback-driven when
        available) so the profile's Q-error grades the estimator that
        actually made the decisions.
        """
        with self._lock:
            self._seq += 1
            profile_id = f"P{self._seq:06d}"
        profile = StatementProfile(
            profile_id=profile_id,
            fingerprint=fingerprint or logical.plan_shape(plan),
            generation=generation,
            engine=engine,
        )
        profile.attach_plan(plan, table_rows, estimates=estimates)
        return profile

    def begin_manual(
        self,
        fingerprint: str,
        engine: str,
        generation: int = 0,
    ) -> StatementProfile:
        """Start a profile with no logical plan attached.

        Used by work that is not a SQL statement but still wants
        per-operator rows in the profile ring — e.g. the unified
        analytics trainer records one ``TrainEpoch`` operator per epoch.
        The caller appends :class:`OperatorStats` to
        ``profile.operators`` directly and then calls :meth:`finish`.
        """
        with self._lock:
            self._seq += 1
            profile_id = f"P{self._seq:06d}"
        return StatementProfile(
            profile_id=profile_id,
            fingerprint=fingerprint,
            generation=generation,
            engine=engine,
        )

    def finish(
        self, profile: StatementProfile, elapsed_seconds: float
    ) -> None:
        """Retain a completed profile; feed the feedback store and the
        slow-query log (errored executions are retained but never feed
        the store)."""
        profile.elapsed_seconds = elapsed_seconds
        with self._lock:
            self._profiles.append(profile)
            self.statements_profiled += 1
        if profile.error is None:
            self.feedback.record_profile(profile)
        self.slow_log.observe(profile, elapsed_seconds)

    # -- retention / lookup --------------------------------------------------

    def profiles(self) -> list[StatementProfile]:
        """Retained profiles, oldest first."""
        with self._lock:
            return list(self._profiles)

    def last(self) -> Optional[StatementProfile]:
        with self._lock:
            return self._profiles[-1] if self._profiles else None

    def find(self, profile_id: str) -> Optional[StatementProfile]:
        with self._lock:
            for profile in self._profiles:
                if profile.profile_id == profile_id:
                    return profile
        return None

    def set_retention(self, retention: int) -> None:
        if retention < 1:
            raise ValueError("profile retention must be >= 1")
        with self._lock:
            self.retention = int(retention)
            self._profiles = deque(self._profiles, maxlen=self.retention)

    def clear(self) -> None:
        with self._lock:
            self._profiles.clear()

    def snapshot(self) -> dict:
        """Metrics-source view (``profiler.*`` in the registry)."""
        out = {
            "enabled": int(self.enabled),
            "statements_profiled": self.statements_profiled,
            "retained": len(self._profiles),
        }
        for key, value in self.feedback.snapshot().items():
            out[f"feedback_{key}"] = value
        for key, value in self.slow_log.snapshot().items():
            out[f"slow_log_{key}"] = value
        return out

"""Observability for the federated accelerator.

``repro.obs`` is the instrumentation layer the rest of the federation
reports into: :class:`Tracer` builds a hierarchical span tree per
statement, :class:`MetricsRegistry` holds named counters/gauges/
histograms (with the pre-existing stats dataclasses registered as
snapshot sources), :mod:`repro.obs.monitor` surfaces both through
SQL-queryable ``SYSACCEL.MON_*`` views, and :mod:`repro.obs.export`
turns them into the JSON breakdowns the benchmarks persist.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import NULL_SPAN, Trace, TraceSpan, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Trace",
    "TraceSpan",
    "Tracer",
]

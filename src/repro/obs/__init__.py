"""Observability for the federated accelerator.

``repro.obs`` is the instrumentation layer the rest of the federation
reports into: :class:`Tracer` builds a hierarchical span tree per
statement, :class:`MetricsRegistry` holds named counters/gauges/
histograms (with the pre-existing stats dataclasses registered as
snapshot sources), :class:`QueryProfiler` collects per-operator runtime
stats (rows, wall time, Q-error against the planner's estimates) and
feeds the :class:`CardinalityFeedback` store, :mod:`repro.obs.monitor`
surfaces all of it through SQL-queryable ``SYSACCEL.MON_*`` views, and
:mod:`repro.obs.export` turns them into the JSON breakdowns the
benchmarks persist.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import (
    CardinalityFeedback,
    FeedbackEntry,
    OperatorStats,
    QueryProfiler,
    SlowQueryLog,
    SlowQueryRecord,
    StatementProfile,
    q_error,
)
from repro.obs.trace import NULL_SPAN, Trace, TraceSpan, Tracer

__all__ = [
    "CardinalityFeedback",
    "Counter",
    "FeedbackEntry",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "OperatorStats",
    "QueryProfiler",
    "SlowQueryLog",
    "SlowQueryRecord",
    "StatementProfile",
    "Trace",
    "TraceSpan",
    "Tracer",
    "q_error",
]

"""SQL-queryable monitoring views (DB2 instrumentation-facility style).

Real DB2 surfaces accelerator monitoring through catalog-like views and
the instrumentation facility; this module provides the simulation's
equivalents as *virtual tables* under the ``SYSACCEL`` schema:

* ``SYSACCEL.MON_STATEMENTS`` — the statement history ring with engine,
  latency, routing reason, and the trace id linking into MON_SPANS;
* ``SYSACCEL.MON_SPANS`` — the flattened span trees of every retained
  trace (phase name, depth, timings, bytes/rows, status, attributes);
* ``SYSACCEL.MON_REPLICATION`` — one row per replication drain with its
  outcome, batch counts, backlog movement, and retry totals;
* ``SYSACCEL.MON_WLM`` — one row per (engine gate, service class) with
  the class policy and live admission state: running/queued statements,
  admitted/bypassed/shed counters, queue timeouts, accumulated wait;
* ``SYSACCEL.MON_RECOVERY`` — one row per recovery event (checkpoint
  taken, checkpoint failed, restart resync, retention trim) with cursor
  position, rows/tables covered, replayed record counts, full-reload and
  AOT-rebuild counts, and interconnect bytes the checkpoint saved;
* ``SYSACCEL.MON_OPERATORS`` — one row per plan operator of every
  retained statement profile (EXPLAIN ANALYZE data at rest): actual vs.
  estimated rows, Q-error, wall time, batches, chunks pruned, and the
  parallel/fused/executed markers;
* ``SYSACCEL.MON_QERROR`` — the cardinality-feedback store: accumulated
  estimate/actual pairs per plan-node fingerprint with mean/max Q-error
  (the standing E17 benchmark surface the cost model trains against);
* ``SYSACCEL.MON_MODELS`` — one row per trained model with its kind,
  owner, feature list, rows/epochs of unified training, generations,
  and training metrics;
* ``SYSACCEL.MON_SHARDS`` — one row per accelerator shard (the scale-out
  pool of PR 10): liveness, per-shard circuit state and counters,
  resident rows/tables, scan and write traffic, simulated busy seconds,
  and the shard's interconnect byte totals. A single-instance system
  (SHARDS=1) reports one row for shard 0 so dashboards need no special
  case;
* ``SYSACCEL.MON_STATISTICS`` — the cost-based optimizer's statistics
  store: one table-level row (``COLUMN_NAME = ''``) per table plus one
  row per column with NDV, null count, min/max, histogram bin count,
  the collection source (runstats / zone maps / change feed), catalog
  generation, and the number of replication records folded in.

They hold no storage: each query materialises rows from the live
observability structures and runs the full SELECT pipeline (WHERE,
GROUP BY, ORDER BY, joins between monitoring views) through the
vectorised executor. Like ``ACCEL_GET_HEALTH``, monitoring is readable
by every session — there is nothing to GRANT.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.accelerator.executor import VectorQueryEngine
from repro.accelerator.vtable import columns_from_rows
from repro.catalog import Column, TableSchema
from repro.errors import SqlError
from repro.sql.types import BIGINT, DOUBLE, INTEGER, VarcharType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.system import AcceleratedDatabase

__all__ = [
    "MONITORING_VIEWS",
    "execute_monitoring_query",
    "monitoring_tables",
]

_ID = VarcharType(24)
_NAME = VarcharType(64)
_TEXT = VarcharType(512)

_SCHEMAS: dict[str, TableSchema] = {
    "SYSACCEL.MON_STATEMENTS": TableSchema(
        [
            Column("TRACE_ID", _ID),
            Column("USER_NAME", _NAME),
            Column("STATEMENT_TYPE", VarcharType(32)),
            Column("ENGINE", VarcharType(16)),
            Column("ELAPSED_MS", DOUBLE),
            Column("ROW_COUNT", BIGINT),
            Column("REASON", _TEXT),
        ]
    ),
    "SYSACCEL.MON_SPANS": TableSchema(
        [
            Column("TRACE_ID", _ID),
            Column("SPAN_ID", _ID),
            Column("PARENT_ID", _ID),
            Column("NAME", _NAME),
            Column("DEPTH", INTEGER),
            Column("START_MS", DOUBLE),
            Column("ELAPSED_MS", DOUBLE),
            Column("STATUS", VarcharType(8)),
            Column("BYTES", BIGINT),
            Column("ROW_COUNT", BIGINT),
            Column("ATTRIBUTES", _TEXT),
        ]
    ),
    "SYSACCEL.MON_REPLICATION": TableSchema(
        [
            Column("DRAIN_ID", BIGINT),
            Column("OUTCOME", VarcharType(20)),
            Column("RECORDS_APPLIED", BIGINT),
            Column("BATCHES", BIGINT),
            Column("BACKLOG_BEFORE", BIGINT),
            Column("BACKLOG_AFTER", BIGINT),
            Column("RETRIES", BIGINT),
            Column("ABANDONED", BIGINT),
            Column("REASON", _TEXT),
        ]
    ),
    "SYSACCEL.MON_RECOVERY": TableSchema(
        [
            Column("EVENT_ID", BIGINT),
            Column("KIND", VarcharType(20)),
            Column("CHECKPOINT_ID", BIGINT),
            Column("CURSOR_LSN", BIGINT),
            Column("TABLES", INTEGER),
            Column("ROW_COUNT", BIGINT),
            Column("RECORDS_REPLAYED", BIGINT),
            Column("FULL_RELOADS", INTEGER),
            Column("AOTS_REBUILT", INTEGER),
            Column("BYTES_SAVED", BIGINT),
            Column("DETAIL", _TEXT),
        ]
    ),
    "SYSACCEL.MON_OPERATORS": TableSchema(
        [
            Column("PROFILE_ID", _ID),
            Column("ENGINE", VarcharType(16)),
            Column("PATH", _ID),
            Column("DEPTH", INTEGER),
            Column("OPERATOR", VarcharType(16)),
            Column("DETAIL", _TEXT),
            Column("ACTUAL_ROWS", BIGINT),
            Column("ESTIMATED_ROWS", BIGINT),
            Column("Q_ERROR", DOUBLE),
            Column("ROWS_IN", BIGINT),
            Column("BATCHES", INTEGER),
            Column("WALL_MS", DOUBLE),
            Column("CHUNKS_SKIPPED", BIGINT),
            Column("PARALLEL", VarcharType(1)),
            Column("FUSED", VarcharType(1)),
            Column("EXECUTED", VarcharType(1)),
            Column("FAILBACK", VarcharType(1)),
        ]
    ),
    "SYSACCEL.MON_QERROR": TableSchema(
        [
            Column("FINGERPRINT", _TEXT),
            Column("GENERATION", INTEGER),
            Column("PATH", _ID),
            Column("OPERATOR", VarcharType(16)),
            Column("DETAIL", _TEXT),
            Column("ENGINE", VarcharType(16)),
            Column("EXECUTIONS", BIGINT),
            Column("ESTIMATED_TOTAL", BIGINT),
            Column("ACTUAL_TOTAL", BIGINT),
            Column("LAST_ESTIMATED", BIGINT),
            Column("LAST_ACTUAL", BIGINT),
            Column("MEAN_Q_ERROR", DOUBLE),
            Column("MAX_Q_ERROR", DOUBLE),
        ]
    ),
    "SYSACCEL.MON_SHARDS": TableSchema(
        [
            Column("SHARD_ID", INTEGER),
            Column("STATE", VarcharType(12)),
            Column("ALIVE", VarcharType(1)),
            Column("TABLES", INTEGER),
            Column("ROW_COUNT", BIGINT),
            Column("LOST_TABLES", INTEGER),
            Column("SCANS", BIGINT),
            Column("ROWS_SCANNED", BIGINT),
            Column("ROWS_WRITTEN", BIGINT),
            Column("BUSY_SECONDS", DOUBLE),
            Column("FAILURES", BIGINT),
            Column("SUCCESSES", BIGINT),
            Column("CIRCUIT_OPENED", BIGINT),
            Column("REJECTED", BIGINT),
            Column("BYTES_TO_SHARD", BIGINT),
            Column("BYTES_FROM_SHARD", BIGINT),
        ]
    ),
    "SYSACCEL.MON_STATISTICS": TableSchema(
        [
            Column("TABLE_NAME", _NAME),
            Column("COLUMN_NAME", _NAME),
            Column("ROW_COUNT", BIGINT),
            Column("NDV", BIGINT),
            Column("NULL_COUNT", BIGINT),
            Column("MIN_VALUE", _TEXT),
            Column("MAX_VALUE", _TEXT),
            Column("HISTOGRAM_BINS", INTEGER),
            Column("SOURCE", VarcharType(16)),
            Column("GENERATION", INTEGER),
            Column("FEED_RECORDS", BIGINT),
        ]
    ),
    "SYSACCEL.MON_WLM": TableSchema(
        [
            Column("ENGINE", VarcharType(16)),
            Column("SERVICE_CLASS", _NAME),
            Column("PRIORITY", INTEGER),
            Column("CLASS_SLOTS", INTEGER),
            Column("QUEUE_DEPTH", INTEGER),
            Column("GATE_SLOTS", INTEGER),
            Column("RUNNING", INTEGER),
            Column("QUEUED", INTEGER),
            Column("ADMITTED", BIGINT),
            Column("BYPASSED", BIGINT),
            Column("SHED", BIGINT),
            Column("QUEUE_TIMEOUTS", BIGINT),
            Column("WAIT_MS_TOTAL", DOUBLE),
            Column("DEFAULT_TIMEOUT_S", DOUBLE),
            Column("SHEDDABLE", VarcharType(1)),
        ]
    ),
    "SYSACCEL.MON_MODELS": TableSchema(
        [
            Column("NAME", _NAME),
            Column("KIND", VarcharType(16)),
            Column("OWNER", _NAME),
            Column("TARGET", _NAME),
            Column("FEATURES", _TEXT),
            Column("ROWS_TRAINED", BIGINT),
            Column("EPOCHS_TRAINED", INTEGER),
            Column("GENERATION", BIGINT),
            Column("TRAINED_GENERATION", BIGINT),
            Column("METRICS", _TEXT),
        ]
    ),
}

#: Public view-name -> schema mapping (names are fully qualified).
MONITORING_VIEWS = dict(_SCHEMAS)


def _clip(text, limit: int = 512):
    if text is None:
        return None
    text = str(text)
    return text[:limit] if len(text) > limit else text


def _render_attributes(attributes: dict) -> str:
    return "; ".join(
        f"{key}={value}" for key, value in sorted(attributes.items())
    )


def _statements_rows(system: "AcceleratedDatabase") -> list[tuple]:
    return [
        (
            record.trace_id or None,
            record.user,
            record.statement_type,
            record.engine,
            record.elapsed_seconds * 1000.0,
            record.rowcount,
            _clip(record.reason),
        )
        for record in system.statement_history
    ]


def _int_or_none(value):
    try:
        return int(value)
    except (TypeError, ValueError):
        return None


def _spans_rows(system: "AcceleratedDatabase") -> list[tuple]:
    rows: list[tuple] = []
    for trace in system.tracer.traces():
        for span in trace.spans:
            attributes = span.attributes
            rows.append(
                (
                    span.trace_id,
                    span.span_id,
                    span.parent_id,
                    _clip(span.name, 64),
                    span.depth,
                    span.start_offset_seconds * 1000.0,
                    span.elapsed_seconds * 1000.0,
                    span.status,
                    _int_or_none(attributes.get("bytes")),
                    _int_or_none(attributes.get("rows")),
                    _clip(_render_attributes(attributes)),
                )
            )
    return rows


def _replication_rows(system: "AcceleratedDatabase") -> list[tuple]:
    return [
        (
            record.drain_id,
            record.outcome,
            record.records_applied,
            record.batches,
            record.backlog_before,
            record.backlog_after,
            record.retries,
            record.abandoned,
            _clip(record.reason),
        )
        for record in system.replication.drain_history
    ]


def _wlm_rows(system: "AcceleratedDatabase") -> list[tuple]:
    return system.wlm.monitor_rows()


def _models_rows(system: "AcceleratedDatabase") -> list[tuple]:
    rows: list[tuple] = []
    for name in system.models.names():
        model = system.models.get(name)
        rows.append(
            (
                model.name,
                model.kind,
                model.owner,
                model.target,
                _clip(", ".join(model.features)),
                model.rows_trained,
                model.epochs_trained,
                model.generation,
                model.trained_generation,
                _clip(_render_attributes(model.metrics)),
            )
        )
    return rows


def _statistics_rows(system: "AcceleratedDatabase") -> list[tuple]:
    return system.stats.monitor_rows()


def _shards_rows(system: "AcceleratedDatabase") -> list[tuple]:
    pool = system.accelerator_pool
    if pool is None:
        # Single instance: one synthetic row so SHARDS=1 and SHARDS=N
        # deployments query the same view.
        engine = system.accelerator
        health = system.health
        link = system.interconnect
        tables = engine._tables
        return [
            (
                0,
                health.state.value,
                "Y",
                len(tables),
                sum(t.row_count for t in tables.values()),
                0,
                engine.queries_executed,
                engine.rows_scanned,
                0,
                round(engine.simulated_busy_seconds, 9),
                health.failures_total,
                health.successes_total,
                health.times_opened,
                health.requests_rejected,
                link.bytes_to_accelerator,
                link.bytes_from_accelerator,
            )
        ]
    rows: list[tuple] = []
    for shard in pool.shard_list:
        circuit = shard.health
        link = shard.interconnect
        lost = sum(
            1
            for facade in pool._tables.values()
            if shard.shard_id in facade.lost_shards
        )
        rows.append(
            (
                shard.shard_id,
                circuit.state.value if shard.alive else "DOWN",
                _flag(shard.alive),
                len(shard.tables),
                shard.row_count,
                lost,
                shard.scans,
                shard.rows_scanned,
                shard.rows_written,
                round(shard.simulated_busy_seconds, 9),
                circuit.failures_total,
                circuit.successes_total,
                circuit.times_opened,
                circuit.requests_rejected,
                link.bytes_to_accelerator,
                link.bytes_from_accelerator,
            )
        )
    return rows


def _recovery_rows(system: "AcceleratedDatabase") -> list[tuple]:
    return [
        (
            event.event_id,
            event.kind,
            event.checkpoint_id,
            event.cursor_lsn,
            event.tables,
            event.rows,
            event.records_replayed,
            event.full_reloads,
            event.aots_rebuilt,
            event.bytes_saved,
            _clip(event.detail) or None,
        )
        for event in system.recovery.events
    ]


def _flag(value) -> str:
    return "Y" if value else "N"


def _operators_rows(system: "AcceleratedDatabase") -> list[tuple]:
    rows: list[tuple] = []
    for profile in system.profiler.profiles():
        for op in profile.operators:
            rows.append(
                (
                    profile.profile_id,
                    op.engine,
                    op.path,
                    op.depth,
                    op.operator,
                    _clip(op.detail),
                    op.actual_rows,
                    op.estimated_rows,
                    round(op.q_error, 6),
                    op.rows_in,
                    op.batches,
                    op.wall_seconds * 1000.0,
                    op.chunks_skipped,
                    _flag(op.parallel),
                    _flag(op.fused),
                    _flag(op.executed),
                    _flag(profile.failback),
                )
            )
    return rows


def _qerror_rows(system: "AcceleratedDatabase") -> list[tuple]:
    return [
        (
            _clip(entry.fingerprint),
            entry.generation,
            entry.path,
            entry.operator,
            _clip(entry.detail),
            entry.engine,
            entry.executions,
            entry.estimated_total,
            entry.actual_total,
            entry.last_estimated,
            entry.last_actual,
            round(entry.mean_q_error, 6),
            round(entry.q_error_max, 6),
        )
        for entry in system.profiler.feedback.entries()
    ]


_ROW_BUILDERS: dict[str, Callable] = {
    "SYSACCEL.MON_STATEMENTS": _statements_rows,
    "SYSACCEL.MON_SPANS": _spans_rows,
    "SYSACCEL.MON_REPLICATION": _replication_rows,
    "SYSACCEL.MON_RECOVERY": _recovery_rows,
    "SYSACCEL.MON_WLM": _wlm_rows,
    "SYSACCEL.MON_OPERATORS": _operators_rows,
    "SYSACCEL.MON_QERROR": _qerror_rows,
    "SYSACCEL.MON_SHARDS": _shards_rows,
    "SYSACCEL.MON_STATISTICS": _statistics_rows,
    "SYSACCEL.MON_MODELS": _models_rows,
}


def monitoring_tables(names) -> set[str]:
    """Subset of ``names`` (any case) that are monitoring views."""
    return {name.upper() for name in names if name.upper() in _SCHEMAS}


class _MonitoringProvider:
    """Vector-executor table provider over materialised monitoring rows.

    Rows are built once per query (not per scan), so self-joins between
    monitoring views see one consistent snapshot.
    """

    def __init__(self, system: "AcceleratedDatabase") -> None:
        self._system = system
        self._rows: dict[str, list[tuple]] = {}

    def table_schema(self, name: str) -> TableSchema:
        return _SCHEMAS[name.upper()]

    def scan_columns(self, name: str, ranges=None, columns=None):
        # ``columns`` (projection pruning) is accepted but ignored:
        # monitoring rows are built in memory, so there is nothing to
        # save by materialising a subset.
        key = name.upper()
        rows = self._rows.get(key)
        if rows is None:
            rows = self._rows[key] = _ROW_BUILDERS[key](self._system)
        return columns_from_rows(_SCHEMAS[key], rows), len(rows)


def execute_monitoring_query(
    system: "AcceleratedDatabase", stmt, params=()
) -> tuple[list[str], list[tuple]]:
    """Run a SELECT that references monitoring views only."""
    names = {name.upper() for name in stmt.referenced_tables()}
    foreign = sorted(names - set(_SCHEMAS))
    if foreign:
        raise SqlError(
            "monitoring views cannot be combined with other tables: "
            + ", ".join(foreign)
        )
    engine = VectorQueryEngine(_MonitoringProvider(system), params)
    return engine.execute(stmt)

"""Metrics registry: named counters, gauges, and streaming histograms.

The registry is the single place monitoring reads numbers from. Two
kinds of metrics live here:

* **owned instruments** — counters/gauges/histograms the instrumented
  code updates directly (statement latency, failbacks, batch sizes);
* **sources** — callables that snapshot existing counter structures
  (:class:`~repro.metrics.counters.MovementStats`,
  :class:`~repro.metrics.counters.ReplicationStats`, the health
  monitor) on demand. Sources keep the pre-existing stats dataclasses
  as the system of record instead of replacing them; ``collect()``
  flattens everything into one ``name -> number`` mapping.

Histograms are streaming: they keep exact count/total/min/max plus a
bounded window of recent observations from which p50/p95/p99 are
computed — constant memory no matter how many statements run.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonic named counter.

    ``inc`` is a read-modify-write, so it takes a per-instrument lock:
    concurrent statements (and the WLM admission path) increment shared
    counters from many threads, and unsynchronized ``+=`` loses updates.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> int:
        with self._lock:
            self.value += amount
            return self.value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming distribution: exact totals + windowed percentiles."""

    __slots__ = ("name", "count", "total", "min", "max", "_window", "_lock")

    def __init__(self, name: str, window: int = 1024) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._window: deque[float] = deque(maxlen=window)
        # count/total/min/max must move together, and sorting the window
        # while another thread appends raises "deque mutated during
        # iteration" — one lock covers both hazards.
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self._window.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """q-th percentile (0..100) of the retained window."""
        with self._lock:
            window = sorted(self._window)
        if not window:
            return 0.0
        rank = (len(window) - 1) * (q / 100.0)
        low = int(rank)
        high = min(low + 1, len(window) - 1)
        fraction = rank - low
        return window[low] * (1.0 - fraction) + window[high] * fraction

    def summary(self) -> dict[str, float]:
        with self._lock:
            count = self.count
            total = self.total
            minimum = self.min
            maximum = self.max
            window = sorted(self._window)

        def pct(q: float) -> float:
            if not window:
                return 0.0
            rank = (len(window) - 1) * (q / 100.0)
            low = int(rank)
            high = min(low + 1, len(window) - 1)
            fraction = rank - low
            return window[low] * (1.0 - fraction) + window[high] * fraction

        return {
            "count": count,
            "total": total,
            "mean": total / count if count else 0.0,
            "min": minimum if minimum is not None else 0.0,
            "max": maximum if maximum is not None else 0.0,
            "p50": pct(50),
            "p95": pct(95),
            "p99": pct(99),
        }


class MetricsRegistry:
    """Name -> instrument map plus pluggable snapshot sources."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._sources: dict[str, Callable[[], dict]] = {}
        self._lock = threading.Lock()

    # -- instruments (get-or-create) ----------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str, window: int = 1024) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(name, window=window)
                )
        return instrument

    # -- sources -------------------------------------------------------------

    def register_source(self, name: str, snapshot: Callable[[], dict]) -> None:
        """Register ``snapshot`` to be flattened under ``name.*``.

        The callable returns a (possibly nested one level) mapping of
        numeric values; non-numeric entries are rendered with ``str``.
        """
        self._sources[name] = snapshot

    def source_names(self) -> list[str]:
        return sorted(self._sources)

    # -- collection ----------------------------------------------------------

    def collect(self) -> dict[str, object]:
        """One flat ``name -> value`` mapping across all metrics."""
        out: dict[str, object] = {}
        with self._lock:
            # Freeze the instrument maps so concurrent get-or-create
            # registration cannot mutate a dict mid-iteration.
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        for name, counter in sorted(counters.items()):
            out[name] = counter.value
        for name, gauge in sorted(gauges.items()):
            out[name] = gauge.value
        for name, histogram in sorted(histograms.items()):
            for key, value in histogram.summary().items():
                out[f"{name}.{key}"] = value
        for source_name, snapshot in sorted(self._sources.items()):
            for key, value in snapshot().items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    value = str(value)
                out[f"{source_name}.{key}"] = value
        return out

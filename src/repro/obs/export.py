"""JSON export of traces and metrics (benchmark/report integration).

The benchmarks persist per-phase breakdowns next to their timing tables
in ``benchmarks/results/`` so EXPERIMENTS.md can quote where a
statement's time and bytes actually went, not just the end-to-end
number.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.system import AcceleratedDatabase
    from repro.obs.profile import StatementProfile
    from repro.obs.trace import Trace

__all__ = [
    "collect_metrics",
    "export_json",
    "profile_to_dict",
    "profiles_payload",
    "qerror_summary",
    "statement_breakdown",
    "trace_phase_breakdown",
    "trace_to_dict",
]


def trace_to_dict(trace: "Trace") -> dict:
    """One trace as a JSON-ready mapping (spans in start order)."""
    return {
        "trace_id": trace.trace_id,
        "name": trace.name,
        "elapsed_ms": trace.elapsed_seconds * 1000.0,
        "spans": [
            {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "depth": span.depth,
                "start_ms": span.start_offset_seconds * 1000.0,
                "elapsed_ms": span.elapsed_seconds * 1000.0,
                "status": span.status,
                "attributes": dict(span.attributes),
            }
            for span in trace.spans
        ],
    }


def trace_phase_breakdown(trace: "Trace") -> dict[str, dict]:
    """Aggregate one trace's spans by phase name."""
    phases: dict[str, dict] = {}
    for span in trace.spans:
        entry = phases.setdefault(
            span.name,
            {"count": 0, "total_ms": 0.0, "bytes": 0, "errors": 0},
        )
        entry["count"] += 1
        entry["total_ms"] += span.elapsed_seconds * 1000.0
        nbytes = span.attributes.get("bytes")
        if isinstance(nbytes, (int, float)):
            entry["bytes"] += int(nbytes)
        if span.status != "OK":
            entry["errors"] += 1
    return phases


def statement_breakdown(
    system: "AcceleratedDatabase", limit: Optional[int] = None
) -> dict[str, dict]:
    """Per-phase aggregate across the retained traces (newest ``limit``)."""
    traces = system.tracer.traces()
    if limit is not None:
        traces = traces[-limit:]
    merged: dict[str, dict] = {}
    for trace in traces:
        for name, entry in trace_phase_breakdown(trace).items():
            target = merged.setdefault(
                name,
                {"count": 0, "total_ms": 0.0, "bytes": 0, "errors": 0},
            )
            for key, value in entry.items():
                target[key] += value
    for entry in merged.values():
        entry["mean_ms"] = (
            entry["total_ms"] / entry["count"] if entry["count"] else 0.0
        )
    return merged


def profile_to_dict(profile: "StatementProfile") -> dict:
    """One statement profile as a JSON-ready mapping.

    Every float is finite and rounded: ``q_error`` clamps its inputs to
    >= 1, so zero-row operators export as plain numbers, never NaN/inf
    (``json.dumps(..., allow_nan=False)`` must succeed on the result).
    """
    return {
        "profile_id": profile.profile_id,
        "fingerprint": profile.fingerprint,
        "generation": profile.generation,
        "engine": profile.engine,
        "elapsed_ms": round(profile.elapsed_seconds * 1000.0, 6),
        "failback": profile.failback,
        "error": profile.error,
        "operators": [
            {
                "path": op.path,
                "depth": op.depth,
                "operator": op.operator,
                "detail": op.detail,
                "engine": op.engine,
                "estimated_rows": op.estimated_rows,
                "actual_rows": op.actual_rows,
                "q_error": round(op.q_error, 6),
                "rows_in": op.rows_in,
                "batches": op.batches,
                "wall_ms": round(op.wall_seconds * 1000.0, 6),
                "chunks_skipped": op.chunks_skipped,
                "parallel": op.parallel,
                "fused": op.fused,
                "executed": op.executed,
            }
            for op in profile.operators
        ],
    }


def profiles_payload(
    system: "AcceleratedDatabase", limit: Optional[int] = None
) -> dict:
    """Retained profiles plus the profiler/feedback snapshot, JSON-ready."""
    profiles = system.profiler.profiles()
    if limit is not None:
        profiles = profiles[-limit:]
    return {
        "profiler": system.profiler.snapshot(),
        "profiles": [profile_to_dict(profile) for profile in profiles],
        "qerror": qerror_summary(system),
    }


def qerror_summary(
    system: "AcceleratedDatabase", worst: int = 10
) -> dict:
    """Cardinality-feedback store rollup with the worst offenders listed."""
    feedback = system.profiler.feedback
    return {
        **feedback.snapshot(),
        "worst": [
            {
                "fingerprint": entry.fingerprint,
                "generation": entry.generation,
                "path": entry.path,
                "operator": entry.operator,
                "detail": entry.detail,
                "engine": entry.engine,
                "executions": entry.executions,
                "estimated_total": entry.estimated_total,
                "actual_total": entry.actual_total,
                "mean_q_error": round(entry.mean_q_error, 6),
                "max_q_error": round(entry.q_error_max, 6),
            }
            for entry in feedback.worst(worst)
        ],
    }


def collect_metrics(system: "AcceleratedDatabase") -> dict[str, object]:
    """The metrics registry flattened, plus trace-retention counters."""
    out = system.metrics.collect()
    out["traces.retained"] = len(system.tracer.traces())
    out["traces.enabled"] = str(system.tracer.enabled)
    return out


def export_json(path, payload) -> Path:
    """Write ``payload`` as stable, diff-friendly JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
    )
    return target

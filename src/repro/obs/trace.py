"""Hierarchical tracing for the federated accelerator.

Every ``Connection.execute`` call produces one *trace*: a tree of
:class:`TraceSpan` records covering the statement's phases — parse,
route, interconnect transfers, accelerator/DB2 execution, commit-time
replication drain — each annotated with the quantities the paper's
argument rests on (bytes moved, rows produced, routing reasons,
failback and fault-injection outcomes).

Design constraints:

* **deterministic ids** — trace ids (``T000001``) and span ids
  (``T000001.3``) are allocated from monotonic counters, never from
  clocks or RNGs, so two identical runs yield identical id sequences
  and tests can assert on them;
* **bounded retention** — completed traces land in a ring buffer
  (``deque(maxlen=...)``); monitoring never grows without bound;
* **near-zero cost when disabled** — :meth:`Tracer.span` returns a
  shared no-op handle without allocating anything, so instrumented hot
  paths pay only one attribute check and one method call;
* **thread safety** — the active-span stack is thread-local (concurrent
  sessions each build their own trace); only id allocation and the
  retention ring are shared, guarded by a lock.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["NULL_SPAN", "Trace", "TraceSpan", "Tracer"]


@dataclass
class TraceSpan:
    """One timed phase inside a trace tree."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    #: Nesting depth (the root span is 0).
    depth: int
    #: Start time relative to the trace's root span, in seconds.
    start_offset_seconds: float
    elapsed_seconds: float = 0.0
    #: ``OK``, or ``ERROR`` when the span body raised.
    status: str = "OK"
    attributes: dict = field(default_factory=dict)


@dataclass
class Trace:
    """A completed span tree (root span first, start order preserved)."""

    trace_id: str
    name: str
    spans: list[TraceSpan] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def root(self) -> TraceSpan:
        return self.spans[0]

    def span_names(self) -> list[str]:
        return [span.name for span in self.spans]

    def find_spans(self, name: str) -> list[TraceSpan]:
        return [span for span in self.spans if span.name == name]

    def render(self) -> list[str]:
        """Human-readable indented tree (one line per span)."""
        lines = []
        for span in self.spans:
            attrs = "; ".join(
                f"{key}={value}"
                for key, value in sorted(span.attributes.items())
            )
            status = "" if span.status == "OK" else f" [{span.status}]"
            lines.append(
                f"{'  ' * span.depth}{span.name} "
                f"{span.elapsed_seconds * 1000:.3f}ms{status}"
                + (f" ({attrs})" if attrs else "")
            )
        return lines


class _NullSpan:
    """Shared no-op span handle returned while tracing is disabled."""

    __slots__ = ()
    trace_id = None
    span = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def annotate(self, **attributes) -> None:
        pass


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager building one span on the thread's active stack."""

    __slots__ = ("_tracer", "_name", "_attrs", "_started", "span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self.span: Optional[TraceSpan] = None

    @property
    def trace_id(self) -> Optional[str]:
        return self.span.trace_id if self.span is not None else None

    def annotate(self, **attributes) -> None:
        if self.span is not None:
            self.span.attributes.update(attributes)

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        local = tracer._local
        stack = getattr(local, "stack", None)
        if stack is None:
            stack = local.stack = []
        now = time.perf_counter()
        if not stack:
            local.trace = Trace(trace_id=tracer._next_trace_id(), name=self._name)
            local.trace_started = now
            local.span_seq = 0
            parent_id = None
        else:
            parent_id = stack[-1].span.span_id
        trace = local.trace
        local.span_seq += 1
        self.span = TraceSpan(
            trace_id=trace.trace_id,
            span_id=f"{trace.trace_id}.{local.span_seq}",
            parent_id=parent_id,
            name=self._name,
            depth=len(stack),
            start_offset_seconds=now - local.trace_started,
            attributes=self._attrs,
        )
        trace.spans.append(self.span)
        stack.append(self)
        self._started = now
        return self

    def __exit__(self, exc_type, exc, exc_tb) -> bool:
        span = self.span
        span.elapsed_seconds = time.perf_counter() - self._started
        if exc_type is not None:
            span.status = "ERROR"
            span.attributes.setdefault(
                "error", f"{exc_type.__name__}: {exc}"[:200]
            )
        local = self._tracer._local
        stack = local.stack
        # Tolerate a mismatched exit (exception unwound past inner spans).
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        if not stack:
            trace = local.trace
            trace.elapsed_seconds = span.elapsed_seconds
            local.trace = None
            self._tracer._retain(trace)
        return False


class Tracer:
    """Span factory with deterministic ids and bounded retention."""

    def __init__(self, enabled: bool = True, max_traces: int = 256) -> None:
        self.enabled = enabled
        self.max_traces = max_traces
        self._traces: deque[Trace] = deque(maxlen=max_traces)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._trace_seq = 0

    # -- span construction ---------------------------------------------------

    def span(self, name: str, **attributes):
        """Open a span under the thread's current trace.

        Outside any trace a root span (a new trace) is started; the no-op
        singleton is returned while tracing is disabled.
        """
        if not self.enabled:
            return NULL_SPAN
        return _SpanHandle(self, name, attributes)

    def annotate(self, **attributes) -> None:
        """Attach attributes to the thread's innermost active span."""
        if not self.enabled:
            return
        stack = getattr(self._local, "stack", None)
        if stack:
            stack[-1].span.attributes.update(attributes)

    def current_trace_id(self) -> Optional[str]:
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1].span.trace_id
        return None

    # -- retention / lookup --------------------------------------------------

    def _next_trace_id(self) -> str:
        with self._lock:
            self._trace_seq += 1
            return f"T{self._trace_seq:06d}"

    def _retain(self, trace: Trace) -> None:
        with self._lock:
            self._traces.append(trace)

    def traces(self) -> list[Trace]:
        """Retained (completed) traces, oldest first."""
        with self._lock:
            return list(self._traces)

    def last(self) -> Optional[Trace]:
        with self._lock:
            return self._traces[-1] if self._traces else None

    def find(self, trace_id: str) -> Optional[Trace]:
        with self._lock:
            for trace in self._traces:
                if trace.trace_id == trace_id:
                    return trace
        return None

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def set_retention(self, max_traces: int) -> None:
        """Resize the retained-trace ring buffer at runtime.

        A ``deque`` cannot change ``maxlen`` in place, so the buffer is
        rebuilt; when shrinking, the oldest traces are discarded.
        """
        if max_traces < 1:
            raise ValueError("trace retention must be >= 1")
        with self._lock:
            self.max_traces = max_traces
            self._traces = deque(self._traces, maxlen=max_traces)

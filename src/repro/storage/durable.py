"""Durable, checksummed, atomically-replaced checkpoint frames.

The recovery subsystem persists accelerator state as *frames*: a small
binary envelope around a payload that makes torn writes and bit rot
detectable on read. The envelope is::

    MAGIC (8 bytes) | VERSION (u32 BE) | LENGTH (u64 BE)
    | SHA-256(payload) (32 bytes) | payload (LENGTH bytes)

``write_frame_atomic`` writes the frame to a temp file in the target
directory, fsyncs it, and ``os.replace``-renames it over the final name —
so a crash mid-write leaves either the previous frame or none, never a
half frame under the published name. ``read_frame`` validates the magic,
version, declared length, and checksum, raising
:class:`~repro.errors.CorruptCheckpointError` on any mismatch so callers
treat damaged frames as absent instead of loading garbage.
"""

from __future__ import annotations

import hashlib
import os
import struct

from repro.errors import CorruptCheckpointError

__all__ = [
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "pack_frame",
    "unpack_frame",
    "write_frame_atomic",
    "read_frame",
]

FRAME_MAGIC = b"RPROCKPT"
FRAME_VERSION = 1
_HEADER = struct.Struct(">8sIQ32s")  # magic, version, length, sha256


def pack_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a checksummed frame."""
    digest = hashlib.sha256(payload).digest()
    return (
        _HEADER.pack(FRAME_MAGIC, FRAME_VERSION, len(payload), digest)
        + payload
    )


def unpack_frame(data: bytes) -> bytes:
    """Validate a frame and return its payload.

    Raises :class:`CorruptCheckpointError` on a short read, bad magic,
    unknown version, truncated payload (torn write), trailing bytes, or
    checksum mismatch.
    """
    if len(data) < _HEADER.size:
        raise CorruptCheckpointError(
            f"frame too short: {len(data)} bytes < {_HEADER.size}-byte header"
        )
    magic, version, length, digest = _HEADER.unpack_from(data)
    if magic != FRAME_MAGIC:
        raise CorruptCheckpointError(f"bad frame magic {magic!r}")
    if version != FRAME_VERSION:
        raise CorruptCheckpointError(f"unsupported frame version {version}")
    payload = data[_HEADER.size:]
    if len(payload) != length:
        raise CorruptCheckpointError(
            f"torn frame: header declares {length} payload bytes, "
            f"found {len(payload)}"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise CorruptCheckpointError("frame checksum mismatch")
    return payload


def write_frame_atomic(path: str, payload: bytes) -> int:
    """Write ``payload`` as a frame at ``path`` atomically; returns bytes.

    Temp file in the same directory + fsync + ``os.replace``: readers see
    the old frame or the new frame, never a torn one.
    """
    frame = pack_frame(payload)
    directory = os.path.dirname(path) or "."
    tmp_path = os.path.join(
        directory, f".{os.path.basename(path)}.tmp.{os.getpid()}"
    )
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(frame)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return len(frame)


def read_frame(path: str) -> bytes:
    """Read and validate the frame at ``path``; returns the payload."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise CorruptCheckpointError(f"cannot read frame {path}: {exc}")
    return unpack_frame(data)

"""Zone maps: per-chunk min/max statistics for scan pruning.

Netezza's zone maps let the FPGA skip whole extents whose value range
cannot satisfy a predicate. The accelerator's scan asks each chunk's zone
map whether a predicate range overlaps before touching the data; E10
quantifies the effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["ZoneMap"]


@dataclass(frozen=True)
class ZoneMap:
    """Min/max of the non-null values of one column in one chunk."""

    minimum: float
    maximum: float

    @staticmethod
    def build(
        values: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> Optional["ZoneMap"]:
        """Build a zone map, or ``None`` when the chunk is all-NULL."""
        live = values if mask is None else values[~mask]
        if len(live) == 0:
            return None
        if live.dtype.kind == "f":
            finite = live[np.isfinite(live)]
            if len(finite) == 0:
                return None
            return ZoneMap(float(finite.min()), float(finite.max()))
        return ZoneMap(float(live.min()), float(live.max()))

    def overlaps(self, low, high) -> bool:
        """True when [low, high] intersects [min, max].

        ``None`` bounds are open (e.g. ``x > 5`` has high=None).
        """
        if low is not None and self.maximum < low:
            return False
        if high is not None and self.minimum > high:
            return False
        return True

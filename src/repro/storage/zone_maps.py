"""Zone maps: per-chunk min/max statistics for scan pruning.

Netezza's zone maps let the FPGA skip whole extents whose value range
cannot satisfy a predicate. The accelerator's scan asks each chunk's zone
map whether a predicate range overlaps before touching the data; E10
quantifies the effect.

Integer chunks keep their bounds as Python ints (arbitrary precision):
casting an int64 extreme to float64 rounds for |v| >= 2**53, and a
rounded-down maximum can wrongly exclude a chunk whose true maximum
matches the predicate — silently dropping rows. Python compares int and
float exactly, so ``overlaps`` stays exact for mixed-type bounds too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

__all__ = ["ZoneMap"]


@dataclass(frozen=True)
class ZoneMap:
    """Min/max of the non-null values of one column in one chunk.

    Bounds are Python ints for integer/bool chunks (exact at int64
    extremes) and floats for float chunks (NaN/inf excluded at build).
    """

    minimum: Union[int, float]
    maximum: Union[int, float]

    @staticmethod
    def build(
        values: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> Optional["ZoneMap"]:
        """Build a zone map, or ``None`` when the chunk is all-NULL."""
        live = values if mask is None else values[~mask]
        if len(live) == 0:
            return None
        if live.dtype.kind == "f":
            finite = live[np.isfinite(live)]
            if len(finite) == 0:
                return None
            return ZoneMap(float(finite.min()), float(finite.max()))
        # Integer (and bool) chunks: int() preserves all 64 bits, where
        # float() would round beyond 2**53.
        return ZoneMap(int(live.min()), int(live.max()))

    def overlaps(self, low, high) -> bool:
        """True when [low, high] intersects [min, max].

        ``None`` bounds are open (e.g. ``x > 5`` has high=None). Bounds
        may be int or float; Python's cross-type comparison is exact, so
        no precision is lost deciding the overlap.
        """
        if low is not None and self.maximum < low:
            return False
        if high is not None and self.minimum > high:
            return False
        return True

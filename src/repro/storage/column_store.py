"""Chunked columnar store used by the accelerator engine.

Data is organised Netezza-style:

* rows are distributed over **slices** (the simulated processing units),
  either by hash on the distribution key or block-round-robin;
* within a slice, each ingest batch seals an immutable **chunk** (extent)
  holding one numpy array (plus optional null mask) per column;
* every row carries ``insert_epoch`` / ``delete_epoch`` stamps — a scan at
  snapshot epoch *e* sees exactly the rows with
  ``insert_epoch <= e < delete_epoch``, which is how the engine provides
  snapshot isolation without locking readers;
* numeric columns keep per-chunk **zone maps** (min/max) so scans can skip
  chunks that cannot match a range predicate.
"""

from __future__ import annotations

import zlib
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.catalog.schema import TableSchema
from repro.errors import ReproError
from repro.sql.expressions import VColumn
from repro.storage.zone_maps import ZoneMap

__all__ = ["Chunk", "ColumnStoreTable", "NEVER_DELETED"]

#: Sentinel delete epoch for live rows.
NEVER_DELETED = np.iinfo(np.int64).max

#: Target rows per chunk when large batches are split.
DEFAULT_CHUNK_ROWS = 65536


def _hash_key(values: tuple) -> int:
    """Deterministic distribution hash (Python's hash() is salted).

    Key values are normalised to plain Python scalars first: the hash is
    over ``repr``, and ``np.int64(5)`` / ``np.str_('a')`` repr differently
    from ``5`` / ``'a'`` even though they are the same logical key — which
    would route replication-applied and directly loaded copies of a row to
    different slices.
    """
    normalized = tuple(
        value.item() if isinstance(value, np.generic) else value
        for value in values
    )
    return zlib.crc32(repr(normalized).encode("utf-8"))


class Chunk:
    """One immutable extent of rows for a slice."""

    __slots__ = (
        "row_ids",
        "columns",
        "masks",
        "insert_epochs",
        "delete_epochs",
        "zone_maps",
    )

    def __init__(
        self,
        row_ids: np.ndarray,
        columns: dict[str, np.ndarray],
        masks: dict[str, Optional[np.ndarray]],
        insert_epoch: int,
    ) -> None:
        self.row_ids = row_ids
        self.columns = columns
        self.masks = masks
        count = len(row_ids)
        self.insert_epochs = np.full(count, insert_epoch, dtype=np.int64)
        self.delete_epochs = np.full(count, NEVER_DELETED, dtype=np.int64)
        self.zone_maps: dict[str, ZoneMap] = {}
        for name, values in columns.items():
            if values.dtype.kind in "if" and len(values):
                mask = masks.get(name)
                zone_map = ZoneMap.build(values, mask)
                if zone_map is not None:
                    self.zone_maps[name] = zone_map

    def __len__(self) -> int:
        return len(self.row_ids)

    def visible_mask(self, epoch: int) -> np.ndarray:
        return (self.insert_epochs <= epoch) & (epoch < self.delete_epochs)

    def may_match(self, column: str, low, high) -> bool:
        """Zone-map test: can any row of this chunk fall in [low, high]?"""
        zone_map = self.zone_maps.get(column)
        if zone_map is None:
            return True
        return zone_map.overlaps(low, high)


class ColumnStoreTable:
    """A sliced, chunked, multi-version columnar table."""

    def __init__(
        self,
        schema: TableSchema,
        slice_count: int = 4,
        distribute_on: Optional[Sequence[str]] = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> None:
        if slice_count < 1:
            raise ReproError("slice_count must be >= 1")
        self.schema = schema
        self.slice_count = slice_count
        self.distribute_on = list(distribute_on or [])
        self.chunk_rows = chunk_rows
        self._slices: list[list[Chunk]] = [[] for _ in range(slice_count)]
        self._next_row_id = 0
        self._locator: dict[int, tuple[int, int, int]] = {}
        self._live_rows = 0
        self.zone_maps_enabled = True

    # -- write path -----------------------------------------------------------

    @property
    def row_count(self) -> int:
        """Number of rows not yet marked deleted (latest epoch view)."""
        return self._live_rows

    @property
    def total_chunk_count(self) -> int:
        return sum(len(chunks) for chunks in self._slices)

    def append_rows(
        self,
        rows: Sequence[tuple],
        epoch: int,
        row_ids: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Append coerced rows at ``epoch``; returns their row ids.

        ``row_ids`` preserves existing ids across a rewrite (GROOM); by
        default fresh monotonic ids are assigned.
        """
        if not rows:
            return np.empty(0, dtype=np.int64)
        if row_ids is None:
            row_ids = np.arange(
                self._next_row_id, self._next_row_id + len(rows),
                dtype=np.int64,
            )
            self._next_row_id += len(rows)
        else:
            row_ids = np.asarray(row_ids, dtype=np.int64)
            if len(row_ids) != len(rows):
                raise ReproError("row_ids and rows length mismatch")
            self._next_row_id = max(
                self._next_row_id, int(row_ids.max()) + 1
            )

        per_slice: list[list[int]] = [[] for _ in range(self.slice_count)]
        if self.distribute_on:
            positions = [
                self.schema.position_of(name) for name in self.distribute_on
            ]
            for index, row in enumerate(rows):
                key = tuple(row[p] for p in positions)
                per_slice[_hash_key(key) % self.slice_count].append(index)
        else:
            # Block round-robin keeps slice contents contiguous and balanced.
            for block, indexes in enumerate(
                np.array_split(np.arange(len(rows)), self.slice_count)
            ):
                per_slice[block].extend(int(i) for i in indexes)

        for slice_id, indexes in enumerate(per_slice):
            for start in range(0, len(indexes), self.chunk_rows):
                batch = indexes[start : start + self.chunk_rows]
                if not batch:
                    continue
                self._seal_chunk(slice_id, batch, rows, row_ids, epoch)
        self._live_rows += len(rows)
        return row_ids

    def _seal_chunk(
        self,
        slice_id: int,
        indexes: list[int],
        rows: Sequence[tuple],
        row_ids: np.ndarray,
        epoch: int,
    ) -> None:
        columns: dict[str, np.ndarray] = {}
        masks: dict[str, Optional[np.ndarray]] = {}
        for position, column in enumerate(self.schema.columns):
            items = [rows[i][position] for i in indexes]
            packed = self._pack_column(column.sql_type.numpy_dtype, items)
            columns[column.name] = packed.values
            masks[column.name] = packed.mask
        chunk_ids = row_ids[np.array(indexes, dtype=np.int64)]
        chunk = Chunk(chunk_ids, columns, masks, epoch)
        chunk_index = len(self._slices[slice_id])
        self._slices[slice_id].append(chunk)
        for offset, row_id in enumerate(chunk_ids):
            self._locator[int(row_id)] = (slice_id, chunk_index, offset)

    @staticmethod
    def _pack_column(dtype: np.dtype, items: list[object]) -> VColumn:
        mask = np.array([item is None for item in items], dtype=bool)
        has_nulls = bool(mask.any())
        if dtype.kind in "ifb":
            fill = 0 if dtype.kind in "ib" else np.nan
            values = np.array(
                [fill if item is None else item for item in items], dtype=dtype
            )
        else:
            values = np.empty(len(items), dtype=object)
            values[:] = items
        return VColumn(values=values, mask=mask if has_nulls else None)

    def mark_deleted(self, row_ids: Sequence[int], epoch: int) -> int:
        """Stamp ``delete_epoch`` for the given rows; returns count."""
        deleted = 0
        for row_id in row_ids:
            location = self._locator.get(int(row_id))
            if location is None:
                continue
            slice_id, chunk_index, offset = location
            chunk = self._slices[slice_id][chunk_index]
            if chunk.delete_epochs[offset] == NEVER_DELETED:
                chunk.delete_epochs[offset] = epoch
                deleted += 1
        self._live_rows -= deleted
        return deleted

    def truncate(self, epoch: int) -> int:
        """Mark every live row deleted at ``epoch``."""
        removed = 0
        for chunks in self._slices:
            for chunk in chunks:
                live = chunk.delete_epochs == NEVER_DELETED
                removed += int(live.sum())
                chunk.delete_epochs[live] = epoch
        self._live_rows -= removed
        return removed

    # -- read path --------------------------------------------------------------

    def iter_chunks(self) -> Iterator[tuple[int, Chunk]]:
        for slice_id, chunks in enumerate(self._slices):
            for chunk in chunks:
                yield slice_id, chunk

    def visible_chunks(
        self,
        ranges: Optional[dict[str, tuple[object, object]]] = None,
    ) -> list[Chunk]:
        """Chunks surviving zone-map pruning, in ``iter_chunks`` order.

        ``ranges`` maps column name → (low, high) bounds derived from the
        query predicate; chunks whose zone maps exclude the range are
        skipped entirely (the scan still re-applies the full predicate).
        Resets and updates the ``last_scan_chunks_*`` counters. The order
        is the sequential scan order, so concatenating per-chunk results
        from any contiguous partitioning reproduces it exactly.
        """
        self.last_scan_chunks_skipped = 0
        self.last_scan_chunks_total = 0
        survivors: list[Chunk] = []
        for _, chunk in self.iter_chunks():
            self.last_scan_chunks_total += 1
            if self.zone_maps_enabled and ranges:
                skip = any(
                    not chunk.may_match(name, low, high)
                    for name, (low, high) in ranges.items()
                )
                if skip:
                    self.last_scan_chunks_skipped += 1
                    continue
            survivors.append(chunk)
        return survivors

    def gather_chunks(
        self,
        chunks: Sequence[Chunk],
        epoch: int,
        columns: Optional[Sequence[str]] = None,
    ) -> tuple[np.ndarray, dict[str, VColumn]]:
        """Materialise the rows of ``chunks`` visible at ``epoch``.

        Pure read: touches no table-level counters, so disjoint chunk
        spans can be gathered concurrently from worker threads. Returns
        (row_ids, {column: VColumn}).
        """
        wanted = list(columns) if columns is not None else self.schema.column_names
        id_parts: list[np.ndarray] = []
        value_parts: dict[str, list[np.ndarray]] = {name: [] for name in wanted}
        mask_parts: dict[str, list[np.ndarray]] = {name: [] for name in wanted}
        for chunk in chunks:
            visible = chunk.visible_mask(epoch)
            if not visible.any():
                continue
            if visible.all():
                id_parts.append(chunk.row_ids)
                for name in wanted:
                    value_parts[name].append(chunk.columns[name])
                    mask = chunk.masks.get(name)
                    mask_parts[name].append(
                        mask if mask is not None else np.zeros(len(chunk), bool)
                    )
            else:
                id_parts.append(chunk.row_ids[visible])
                for name in wanted:
                    value_parts[name].append(chunk.columns[name][visible])
                    mask = chunk.masks.get(name)
                    mask_parts[name].append(
                        mask[visible]
                        if mask is not None
                        else np.zeros(int(visible.sum()), bool)
                    )
        if not id_parts:
            empty_ids = np.empty(0, dtype=np.int64)
            return empty_ids, {
                name: self._empty_column(name) for name in wanted
            }
        row_ids = np.concatenate(id_parts)
        out: dict[str, VColumn] = {}
        for name in wanted:
            values = np.concatenate(value_parts[name])
            mask = np.concatenate(mask_parts[name])
            out[name] = VColumn(values=values, mask=mask if mask.any() else None)
        return row_ids, out

    def read_visible(
        self,
        epoch: int,
        columns: Optional[Sequence[str]] = None,
        ranges: Optional[dict[str, tuple[object, object]]] = None,
    ) -> tuple[np.ndarray, dict[str, VColumn]]:
        """Materialise all rows visible at ``epoch`` after zone-map pruning."""
        return self.gather_chunks(self.visible_chunks(ranges), epoch, columns)

    def _empty_column(self, name: str) -> VColumn:
        dtype = self.schema.column(name).sql_type.numpy_dtype
        return VColumn(values=np.empty(0, dtype=dtype))

    def fetch_rows(self, row_ids: Sequence[int]) -> list[tuple]:
        """Random access by row id (replication/delta bookkeeping)."""
        out: list[tuple] = []
        names = self.schema.column_names
        for row_id in row_ids:
            slice_id, chunk_index, offset = self._locator[int(row_id)]
            chunk = self._slices[slice_id][chunk_index]
            row = []
            for name in names:
                mask = chunk.masks.get(name)
                if mask is not None and mask[offset]:
                    row.append(None)
                else:
                    value = chunk.columns[name][offset]
                    row.append(value.item() if hasattr(value, "item") else value)
            out.append(tuple(row))
        return out

    def byte_count(self, epoch: Optional[int] = None) -> int:
        """Estimated serialized size of rows visible at ``epoch`` (or all)."""
        total = 0
        for _, chunk in self.iter_chunks():
            if epoch is None:
                mask = chunk.delete_epochs == NEVER_DELETED
            else:
                mask = chunk.visible_mask(epoch)
            count = int(mask.sum())
            if not count:
                continue
            for column in self.schema.columns:
                values = chunk.columns[column.name][mask]
                null_mask = chunk.masks.get(column.name)
                nulls = (
                    int(null_mask[mask].sum()) if null_mask is not None else 0
                )
                total += count  # null indicators
                live = count - nulls
                if live and column.sql_type.numpy_dtype.kind in "ifb":
                    total += live * column.sql_type.byte_size(0)
                elif live:
                    for value, is_null in zip(
                        values,
                        null_mask[mask] if null_mask is not None else [False] * count,
                    ):
                        if not is_null:
                            total += column.sql_type.byte_size(value)
        return total

"""Slotted-page row store used by the DB2 engine.

Rows live in fixed-capacity pages; a :class:`RowId` names a (page, slot)
pair and stays stable for the row's lifetime (updates happen in place,
deletes leave a tombstone). The structure deliberately mirrors a classic
OLTP heap so the DB2 engine's row-at-a-time cost profile is honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.catalog.schema import TableSchema
from repro.errors import ReproError

__all__ = ["RowId", "Page", "RowStoreTable"]

#: Rows per page; small enough that multi-page behaviour shows up in tests.
DEFAULT_PAGE_CAPACITY = 256


@dataclass(frozen=True)
class RowId:
    """Stable physical address of a row."""

    page: int
    slot: int


class Page:
    """One heap page: a slot array where ``None`` marks a tombstone."""

    __slots__ = ("slots", "live_count")

    def __init__(self) -> None:
        self.slots: list[Optional[tuple]] = []
        self.live_count = 0

    def __len__(self) -> int:
        return len(self.slots)

    @property
    def has_space(self) -> bool:
        return len(self.slots) < DEFAULT_PAGE_CAPACITY


class RowStoreTable:
    """A heap of pages holding coerced row tuples."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._pages: list[Page] = [Page()]
        self._row_count = 0
        self._byte_count = 0

    @property
    def row_count(self) -> int:
        return self._row_count

    @property
    def byte_count(self) -> int:
        """Estimated live-data size (drives movement accounting)."""
        return self._byte_count

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def insert(self, row: Sequence[object]) -> RowId:
        """Insert a row that has already been coerced by the schema."""
        row = tuple(row)
        page_index = len(self._pages) - 1
        page = self._pages[page_index]
        if not page.has_space:
            page = Page()
            self._pages.append(page)
            page_index += 1
        slot = len(page.slots)
        page.slots.append(row)
        page.live_count += 1
        self._row_count += 1
        self._byte_count += self.schema.row_byte_size(row)
        return RowId(page=page_index, slot=slot)

    def fetch(self, row_id: RowId) -> tuple:
        try:
            row = self._pages[row_id.page].slots[row_id.slot]
        except IndexError:
            raise ReproError(f"invalid row id {row_id}") from None
        if row is None:
            raise ReproError(f"row {row_id} was deleted")
        return row

    def update(self, row_id: RowId, row: Sequence[object]) -> tuple:
        """Replace the row at ``row_id``; returns the before-image."""
        before = self.fetch(row_id)
        new_row = tuple(row)
        self._pages[row_id.page].slots[row_id.slot] = new_row
        self._byte_count += self.schema.row_byte_size(new_row)
        self._byte_count -= self.schema.row_byte_size(before)
        return before

    def delete(self, row_id: RowId) -> tuple:
        """Tombstone the row at ``row_id``; returns the before-image."""
        before = self.fetch(row_id)
        page = self._pages[row_id.page]
        page.slots[row_id.slot] = None
        page.live_count -= 1
        self._row_count -= 1
        self._byte_count -= self.schema.row_byte_size(before)
        return before

    def undelete(self, row_id: RowId, row: Sequence[object]) -> None:
        """Re-materialise a tombstoned row (transaction rollback)."""
        page = self._pages[row_id.page]
        if page.slots[row_id.slot] is not None:
            raise ReproError(f"slot {row_id} is occupied")
        page.slots[row_id.slot] = tuple(row)
        page.live_count += 1
        self._row_count += 1
        self._byte_count += self.schema.row_byte_size(row)

    def scan(self) -> Iterator[tuple[RowId, tuple]]:
        """Yield all live rows in physical order."""
        for page_index, page in enumerate(self._pages):
            for slot, row in enumerate(page.slots):
                if row is not None:
                    yield RowId(page=page_index, slot=slot), row

    def truncate(self) -> int:
        """Remove all rows; returns how many were removed."""
        removed = self._row_count
        self._pages = [Page()]
        self._row_count = 0
        self._byte_count = 0
        return removed

"""Storage engines: a slotted-page row store (DB2 side) and a chunked
columnar store with zone maps (accelerator side)."""

from repro.storage.row_store import RowStoreTable, RowId
from repro.storage.column_store import ColumnStoreTable, Chunk
from repro.storage.durable import (
    pack_frame,
    read_frame,
    unpack_frame,
    write_frame_atomic,
)
from repro.storage.zone_maps import ZoneMap

__all__ = [
    "RowStoreTable",
    "RowId",
    "ColumnStoreTable",
    "Chunk",
    "ZoneMap",
    "pack_frame",
    "unpack_frame",
    "write_frame_atomic",
    "read_frame",
]

"""Vectorized model scorers for the in-kernel ``PREDICT`` expression.

Both executors compile ``PREDICT(model, col, ...)`` down to a
:class:`ModelScorer` built here. Every scorer is strictly row-independent
with a fixed per-feature accumulation order, so scoring one row at a time
(the DB2 row engine) is bitwise identical to scoring a whole batch (the
accelerator's vector engine) — the cross-engine byte-identity contract
extends to PREDICT for free.

This module deliberately imports only numpy and ``repro.errors``; the
decision-tree walk duck-types ``TreeNode`` so no trainer module (and thus
no SQL-layer module) is pulled into the expression-kernel import path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AnalyticsError

__all__ = ["ModelScorer", "build_scorer"]


class ModelScorer:
    """A compiled scorer: ``score(matrix)`` → one value per row.

    ``matrix`` is (rows, feature_count) float64; NULL features arrive as
    NaN and the caller masks those rows out of the result afterwards.
    """

    __slots__ = ("kind", "feature_count", "_score")

    def __init__(self, kind: str, feature_count: int, score_fn) -> None:
        self.kind = kind
        self.feature_count = feature_count
        self._score = score_fn

    def score(self, matrix: np.ndarray) -> np.ndarray:
        if matrix.shape[1] != self.feature_count:
            raise AnalyticsError(
                f"PREDICT expects {self.feature_count} feature(s), "
                f"got {matrix.shape[1]}"
            )
        return self._score(matrix)


def build_scorer(model) -> ModelScorer:
    """Compile ``model`` (an analytics ``Model``) into a vector scorer."""
    kind = model.kind
    if kind == "KMEANS":
        return _kmeans_scorer(model)
    if kind == "LINREG":
        return _linreg_scorer(model)
    if kind == "LOGREG":
        return _logreg_scorer(model)
    if kind == "NAIVEBAYES":
        return _naive_bayes_scorer(model)
    if kind == "DECTREE":
        return _decision_tree_scorer(model)
    raise AnalyticsError(
        f"model {model.name} of kind {kind} cannot be scored with PREDICT"
    )


def _kmeans_scorer(model) -> ModelScorer:
    centroids = np.asarray(model.payload["centroids"], dtype=np.float64)
    clusters, features = centroids.shape

    def score(matrix: np.ndarray) -> np.ndarray:
        rows = matrix.shape[0]
        distances = np.empty((rows, clusters))
        # Per-cluster, per-feature accumulation: elementwise only, so a
        # 1-row call and an n-row call produce identical floats.
        for cluster in range(clusters):
            acc = np.zeros(rows)
            for j in range(features):
                diff = matrix[:, j] - centroids[cluster, j]
                acc += diff * diff
            distances[:, cluster] = acc
        return distances.argmin(axis=1).astype(np.int64)

    return ModelScorer("KMEANS", features, score)


def _linreg_scorer(model) -> ModelScorer:
    intercept = float(model.payload["intercept"])
    coefficients = np.asarray(model.payload["coefficients"], dtype=np.float64)

    def score(matrix: np.ndarray) -> np.ndarray:
        out = np.full(matrix.shape[0], intercept)
        for j in range(coefficients.shape[0]):
            out += coefficients[j] * matrix[:, j]
        return out

    return ModelScorer("LINREG", coefficients.shape[0], score)


def _logreg_scorer(model) -> ModelScorer:
    intercept = float(model.payload["intercept"])
    coefficients = np.asarray(model.payload["coefficients"], dtype=np.float64)

    def score(matrix: np.ndarray) -> np.ndarray:
        # Same accumulation order as the LINREG scorer, then a stable
        # elementwise sigmoid — returns P(class = 1) per row.
        margins = np.full(matrix.shape[0], intercept)
        for j in range(coefficients.shape[0]):
            margins += coefficients[j] * matrix[:, j]
        out = np.empty_like(margins)
        positive = margins >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-margins[positive]))
        exp_m = np.exp(margins[~positive])
        out[~positive] = exp_m / (1.0 + exp_m)
        return out

    return ModelScorer("LOGREG", coefficients.shape[0], score)


def _naive_bayes_scorer(model) -> ModelScorer:
    fit = model.payload["fit"]
    classes = list(fit.classes)
    priors = np.asarray(fit.priors, dtype=np.float64)
    means = np.asarray(fit.means, dtype=np.float64)
    variances = np.asarray(fit.variances, dtype=np.float64)
    log_priors = np.log(priors)
    # Scalar per-(class, feature) constants precomputed so the per-row
    # work is pure elementwise accumulation.
    log_norms = np.log(2 * np.pi * variances)
    n_classes, features = means.shape

    def score(matrix: np.ndarray) -> np.ndarray:
        rows = matrix.shape[0]
        log_likelihood = np.empty((rows, n_classes))
        for index in range(n_classes):
            acc = np.full(rows, log_priors[index])
            for j in range(features):
                diff = matrix[:, j] - means[index, j]
                acc += -0.5 * (log_norms[index, j] + diff * diff / variances[index, j])
            log_likelihood[:, index] = acc
        best = log_likelihood.argmax(axis=1)
        out = np.empty(rows, dtype=object)
        for row in range(rows):
            out[row] = classes[best[row]]
        return out

    return ModelScorer("NAIVEBAYES", features, score)


def _decision_tree_scorer(model) -> ModelScorer:
    root = model.payload["root"]
    features = len(model.features)

    def score(matrix: np.ndarray) -> np.ndarray:
        rows = matrix.shape[0]
        out = np.empty(rows, dtype=object)

        # Masked tree walk: each node partitions its row set with the
        # same `value <= threshold` comparison the per-row walker uses,
        # so predictions match decision_tree_predict exactly. Duck-typed
        # node access keeps this module free of trainer imports.
        def walk(node, indexes: np.ndarray) -> None:
            if indexes.size == 0:
                return
            if node.is_leaf:
                for index in indexes:
                    out[index] = node.prediction
                return
            goes_left = matrix[indexes, node.feature] <= node.threshold
            walk(node.left, indexes[goes_left])
            walk(node.right, indexes[~goes_left])

        walk(root, np.arange(rows))
        return out

    return ModelScorer("DECTREE", features, score)

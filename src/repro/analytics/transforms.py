"""Data-transformation procedures (the ELT stages of mining pipelines).

These are the multi-staged preparation steps the paper's introduction
describes: each reads an accelerator-resident table and materialises a
transformed accelerator-only table, so a chain of them never leaves the
accelerator. All are deterministic (sampling takes a seed).
"""

from __future__ import annotations

import numpy as np

from repro.analytics.framework import ProcedureContext
from repro.errors import AnalyticsError, ProcedureError
from repro.sql.types import DOUBLE, INTEGER, VarcharType

__all__ = [
    "normalize_procedure",
    "impute_procedure",
    "bin_procedure",
    "sample_procedure",
    "split_data_procedure",
    "summary_procedure",
    "correlation_procedure",
]


def _source_schema(ctx: ProcedureContext, table: str):
    return ctx.system.catalog.table(table).schema


def _read_all(ctx: ProcedureContext, table: str):
    schema = _source_schema(ctx, table)
    names = schema.column_names
    frame = ctx.read_columns(table, names)
    return schema, names, {name: frame[name].to_objects() for name in names}


def _default_numeric(ctx, table, exclude=()):
    schema = _source_schema(ctx, table)
    return [
        column.name
        for column in schema.columns
        if column.sql_type.is_numeric and column.name not in exclude
    ]


def _write_like_source(ctx, schema, outtable, columns_data, names):
    ctx.create_output_table(
        outtable, [(c.name, c.sql_type) for c in schema.columns]
    )
    count = len(columns_data[names[0]]) if names else 0
    rows = [
        tuple(columns_data[name][i] for name in names) for i in range(count)
    ]
    ctx.insert_rows(outtable, rows)
    return len(rows)


def normalize_procedure(ctx: ProcedureContext) -> str:
    """``CALL INZA.NORMALIZE('intable=T, outtable=O, incolumn=A;B,
    method=zscore|minmax')``."""
    intable = ctx.require("intable").upper()
    outtable = ctx.require("outtable").upper()
    method = (ctx.get("method") or "zscore").lower()
    if method not in ("zscore", "minmax"):
        raise ProcedureError(f"unknown normalisation method {method!r}")
    schema, names, data = _read_all(ctx, intable)
    targets = ctx.column_list("incolumn") or _default_numeric(ctx, intable)
    for name in targets:
        column = schema.column(name)
        if not column.sql_type.is_numeric:
            raise AnalyticsError(f"column {name} is not numeric")
        values = np.array(
            [v if v is not None else np.nan for v in data[name]],
            dtype=np.float64,
        )
        live = ~np.isnan(values)
        if not live.any():
            continue
        if method == "zscore":
            mean = values[live].mean()
            std = values[live].std()
            scaled = (values - mean) / (std if std > 0 else 1.0)
        else:
            low = values[live].min()
            span = values[live].max() - low
            scaled = (values - low) / (span if span > 0 else 1.0)
        data[name] = [
            None if not live[i] else float(scaled[i]) for i in range(len(values))
        ]
    # Normalised columns become DOUBLE regardless of source type.
    out_columns = []
    for column in schema.columns:
        if column.name in targets:
            out_columns.append((column.name, DOUBLE))
        else:
            out_columns.append((column.name, column.sql_type))
    ctx.create_output_table(outtable, out_columns)
    count = len(data[names[0]]) if names else 0
    ctx.insert_rows(
        outtable,
        [tuple(data[name][i] for name in names) for i in range(count)],
    )
    return f"NORMALIZE ok: {count} rows, method={method}"


def impute_procedure(ctx: ProcedureContext) -> str:
    """``CALL INZA.IMPUTE('intable=T, outtable=O, incolumn=A;B,
    method=mean|median|constant [, value=0]')``."""
    intable = ctx.require("intable").upper()
    outtable = ctx.require("outtable").upper()
    method = (ctx.get("method") or "mean").lower()
    if method not in ("mean", "median", "constant"):
        raise ProcedureError(f"unknown imputation method {method!r}")
    schema, names, data = _read_all(ctx, intable)
    targets = ctx.column_list("incolumn") or _default_numeric(ctx, intable)
    replaced = 0
    for name in targets:
        values = data[name]
        nulls = [i for i, v in enumerate(values) if v is None]
        if not nulls:
            continue
        if method == "constant":
            fill = ctx.get_float("value", 0.0)
        else:
            live = np.array(
                [v for v in values if v is not None], dtype=np.float64
            )
            if len(live) == 0:
                raise AnalyticsError(
                    f"column {name} is entirely NULL; use method=constant"
                )
            fill = float(live.mean() if method == "mean" else np.median(live))
        column_type = schema.column(name).sql_type
        for index in nulls:
            values[index] = column_type.coerce(fill)
        replaced += len(nulls)
    count = _write_like_source(ctx, schema, outtable, data, names)
    return f"IMPUTE ok: {count} rows, {replaced} values imputed"


def bin_procedure(ctx: ProcedureContext) -> str:
    """``CALL INZA.BIN('intable=T, outtable=O, incolumn=A, bins=10')``.

    Adds an ``<column>_BIN`` INTEGER column with equal-width bin ids
    (0-based); NULL inputs get NULL bins.
    """
    intable = ctx.require("intable").upper()
    outtable = ctx.require("outtable").upper()
    targets = ctx.column_list("incolumn")
    if not targets:
        raise ProcedureError("BIN requires incolumn=<column>[;<column>...]")
    bins = ctx.get_int("bins", 10)
    if bins < 1:
        raise ProcedureError("bins must be >= 1")
    schema, names, data = _read_all(ctx, intable)
    out_columns = [(c.name, c.sql_type) for c in schema.columns]
    extra: dict[str, list] = {}
    for name in targets:
        if not schema.column(name).sql_type.is_numeric:
            raise AnalyticsError(f"column {name} is not numeric")
        values = np.array(
            [v if v is not None else np.nan for v in data[name]],
            dtype=np.float64,
        )
        live = ~np.isnan(values)
        if live.any():
            low = values[live].min()
            high = values[live].max()
            width = (high - low) / bins if high > low else 1.0
            ids = np.clip(((values - low) / width).astype(int), 0, bins - 1)
        else:
            ids = np.zeros(len(values), dtype=int)
        bin_name = f"{name}_BIN"
        out_columns.append((bin_name, INTEGER))
        extra[bin_name] = [
            int(ids[i]) if live[i] else None for i in range(len(values))
        ]
    ctx.create_output_table(outtable, out_columns)
    count = len(data[names[0]]) if names else 0
    rows = [
        tuple(data[name][i] for name in names)
        + tuple(extra[bin_name][i] for bin_name in extra)
        for i in range(count)
    ]
    ctx.insert_rows(outtable, rows)
    return f"BIN ok: {count} rows, {len(targets)} column(s), {bins} bins"


def sample_procedure(ctx: ProcedureContext) -> str:
    """``CALL INZA.SAMPLE('intable=T, outtable=O, fraction=0.1,
    randseed=1')`` (or ``size=N``)."""
    intable = ctx.require("intable").upper()
    outtable = ctx.require("outtable").upper()
    seed = ctx.get_int("randseed", 1)
    schema, names, data = _read_all(ctx, intable)
    total = len(data[names[0]]) if names else 0
    size = ctx.get_int("size")
    if size is None:
        fraction = ctx.get_float("fraction")
        if fraction is None:
            raise ProcedureError("SAMPLE requires fraction= or size=")
        if not 0 < fraction <= 1:
            raise ProcedureError("fraction must be in (0, 1]")
        size = int(round(total * fraction))
    size = min(size, total)
    rng = np.random.default_rng(seed)
    chosen = np.sort(rng.choice(total, size=size, replace=False))
    sampled = {
        name: [data[name][i] for i in chosen] for name in names
    }
    count = _write_like_source(ctx, schema, outtable, sampled, names)
    return f"SAMPLE ok: {count} of {total} rows"


def split_data_procedure(ctx: ProcedureContext) -> str:
    """``CALL INZA.SPLIT_DATA('intable=T, traintable=TR, testtable=TE,
    fraction=0.8, randseed=1')``."""
    intable = ctx.require("intable").upper()
    train_table = ctx.require("traintable").upper()
    test_table = ctx.require("testtable").upper()
    fraction = ctx.get_float("fraction", 0.8)
    if not 0 < fraction < 1:
        raise ProcedureError("fraction must be in (0, 1)")
    seed = ctx.get_int("randseed", 1)
    schema, names, data = _read_all(ctx, intable)
    total = len(data[names[0]]) if names else 0
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(total)
    cut = int(round(total * fraction))
    train_rows = np.sort(permutation[:cut])
    test_rows = np.sort(permutation[cut:])
    for name_, indexes in ((train_table, train_rows), (test_table, test_rows)):
        subset = {
            name: [data[name][i] for i in indexes] for name in names
        }
        _write_like_source(ctx, schema, name_, subset, names)
    return (
        f"SPLIT_DATA ok: train={len(train_rows)}, test={len(test_rows)}"
    )


def summary_procedure(ctx: ProcedureContext) -> str:
    """``CALL INZA.SUMMARY('intable=T, outtable=O')`` — per-column stats."""
    intable = ctx.require("intable").upper()
    outtable = ctx.require("outtable").upper()
    schema, names, data = _read_all(ctx, intable)
    ctx.create_output_table(
        outtable,
        [
            ("COLUMN_NAME", VarcharType(128)),
            ("NON_NULL", INTEGER),
            ("NULLS", INTEGER),
            ("DISTINCT_VALUES", INTEGER),
            ("MINIMUM", DOUBLE),
            ("MAXIMUM", DOUBLE),
            ("MEAN", DOUBLE),
            ("STDDEV", DOUBLE),
        ],
    )
    rows = []
    for name in names:
        values = data[name]
        non_null = [v for v in values if v is not None]
        numeric = schema.column(name).sql_type.is_numeric and non_null
        if numeric:
            arr = np.array(non_null, dtype=np.float64)
            stats = (
                float(arr.min()),
                float(arr.max()),
                float(arr.mean()),
                float(arr.std()),
            )
        else:
            stats = (None, None, None, None)
        rows.append(
            (
                name,
                len(non_null),
                len(values) - len(non_null),
                len(set(non_null)),
            )
            + stats
        )
    ctx.insert_rows(outtable, rows)
    return f"SUMMARY ok: {len(rows)} columns profiled"


def correlation_procedure(ctx: ProcedureContext) -> str:
    """``CALL INZA.CORRELATION('intable=T, outtable=O [, incolumn=A;B]')``.

    Pairwise Pearson correlation over the numeric columns; one output
    row per unordered column pair. NULLs are dropped pairwise.
    """
    intable = ctx.require("intable").upper()
    outtable = ctx.require("outtable").upper()
    columns = ctx.column_list("incolumn") or _default_numeric(ctx, intable)
    if len(columns) < 2:
        raise AnalyticsError("CORRELATION needs at least two numeric columns")
    frame = ctx.read_columns(intable, columns)
    arrays = {}
    for name in columns:
        column = frame[name]
        values = column.values.astype(np.float64)
        mask = column.null_mask()
        arrays[name] = (values, mask)
    ctx.create_output_table(
        outtable,
        [
            ("COLUMN_A", VarcharType(128)),
            ("COLUMN_B", VarcharType(128)),
            ("CORRELATION", DOUBLE),
            ("N", INTEGER),
        ],
    )
    rows = []
    for i, a in enumerate(columns):
        for b in columns[i + 1 :]:
            a_values, a_mask = arrays[a]
            b_values, b_mask = arrays[b]
            live = ~(a_mask | b_mask)
            n = int(live.sum())
            if n < 2:
                rows.append((a, b, None, n))
                continue
            x = a_values[live]
            y = b_values[live]
            x_std = x.std()
            y_std = y.std()
            if x_std == 0 or y_std == 0:
                rows.append((a, b, None, n))
                continue
            r = float(((x - x.mean()) * (y - y.mean())).mean() / (x_std * y_std))
            rows.append((a, b, r, n))
    ctx.insert_rows(outtable, rows)
    return f"CORRELATION ok: {len(rows)} pairs over {len(columns)} columns"

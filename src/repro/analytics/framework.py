"""Procedure registry, parameter convention, and governance gate.

Procedures follow the INZA calling convention: one string argument of
``key=value`` pairs, e.g.::

    CALL INZA.KMEANS('intable=CHURN, outtable=CHURN_CLUSTERS, k=4')

Each :class:`Procedure` declares which parameters name *input* tables and
which name *output* tables; the registry derives the required privileges
from those declarations and lets DB2's privilege manager decide before
the handler ever runs on the accelerator. That is the paper's data
governance requirement: delegation must not create a privilege bypass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, TYPE_CHECKING

import numpy as np

from repro.catalog import Privilege
from repro.errors import (
    AnalyticsError,
    ProcedureError,
    UnknownObjectError,
)
from repro.result import Result
from repro.sql import ast

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.system import AcceleratedDatabase, Connection

__all__ = [
    "Procedure",
    "ProcedureContext",
    "ProcedureRegistry",
    "parse_parameter_string",
]


def parse_parameter_string(text: str) -> dict[str, str]:
    """Parse the INZA ``key=value, key=value`` convention.

    Keys are case-insensitive (lowered); values keep their case. Empty
    segments are ignored. Values may be single- or double-quoted to
    protect commas and equals signs (``incolumn='A,B,C'``); inside a
    quoted value a doubled quote is the escaped literal quote.

    >>> parse_parameter_string('intable=T1, k=4')
    {'intable': 'T1', 'k': '4'}
    >>> parse_parameter_string("incolumn='A,B,C', k=4")
    {'incolumn': 'A,B,C', 'k': '4'}
    """
    params: dict[str, str] = {}
    for segment in _split_parameter_segments(text):
        segment = segment.strip()
        if not segment:
            continue
        if "=" not in segment:
            raise ProcedureError(
                f"malformed parameter segment {segment!r} (expected key=value)"
            )
        key, __, value = segment.partition("=")
        params[key.strip().lower()] = _unquote(value.strip())
    return params


def _split_parameter_segments(text: str) -> list[str]:
    """Split on commas that sit outside quoted values."""
    segments: list[str] = []
    current: list[str] = []
    quote: Optional[str] = None
    index = 0
    while index < len(text):
        ch = text[index]
        if quote is not None:
            if ch == quote:
                if index + 1 < len(text) and text[index + 1] == quote:
                    current.append(ch)
                    current.append(ch)
                    index += 2
                    continue
                quote = None
            current.append(ch)
        elif ch in "'\"":
            quote = ch
            current.append(ch)
        elif ch == ",":
            segments.append("".join(current))
            current = []
        else:
            current.append(ch)
        index += 1
    if quote is not None:
        raise ProcedureError(
            f"unterminated quote in parameter string {text!r}"
        )
    segments.append("".join(current))
    return segments


def _unquote(value: str) -> str:
    if len(value) >= 2 and value[0] in "'\"" and value[-1] == value[0]:
        quote = value[0]
        return value[1:-1].replace(quote * 2, quote)
    return value


class ProcedureContext:
    """Execution context handed to a procedure handler.

    The handler runs conceptually *on the accelerator*: its table reads
    and writes go straight to accelerator storage without crossing the
    interconnect. Only the CALL statement and its textual result travel
    between DB2 and the accelerator.
    """

    def __init__(
        self,
        system: "AcceleratedDatabase",
        connection: "Connection",
        params: dict[str, str],
    ) -> None:
        self.system = system
        self.connection = connection
        self.params = params
        self.messages: list[str] = []

    # -- parameter access ---------------------------------------------------

    def require(self, key: str) -> str:
        value = self.params.get(key)
        if value is None:
            raise ProcedureError(f"missing required parameter '{key}'")
        return value

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        return self.params.get(key, default)

    def get_int(self, key: str, default: Optional[int] = None) -> Optional[int]:
        value = self.params.get(key)
        if value is None:
            if default is None and key in self.params:
                raise ProcedureError(f"parameter '{key}' must be an integer")
            return default
        try:
            return int(value)
        except ValueError:
            raise ProcedureError(
                f"parameter '{key}' must be an integer, got {value!r}"
            ) from None

    def get_float(
        self, key: str, default: Optional[float] = None
    ) -> Optional[float]:
        value = self.params.get(key)
        if value is None:
            return default
        try:
            return float(value)
        except ValueError:
            raise ProcedureError(
                f"parameter '{key}' must be a number, got {value!r}"
            ) from None

    def column_list(self, key: str) -> Optional[list[str]]:
        """Parse a ``;``- or ``,``-separated column list parameter.

        Comma-separated lists require the quoted-value form
        (``incolumn='A,B,C'``); the historical ``;`` separator needs no
        quoting.
        """
        value = self.params.get(key)
        if value is None:
            return None
        separator = ";" if ";" in value else ","
        return [
            part.strip().upper()
            for part in value.split(separator)
            if part.strip()
        ]

    # -- accelerator-side data access ----------------------------------------

    def table_columns(self, name: str) -> list[str]:
        return self.system.catalog.table(name).schema.column_names

    def read_matrix(
        self, table: str, columns: Sequence[str]
    ) -> np.ndarray:
        """Numeric matrix (rows × columns) of a table's current data.

        NULLs are rejected — transformation procedures (IMPUTE) exist to
        clean them first, which mirrors the INZA workflow.
        """
        frame = self.read_columns(table, columns)
        arrays = []
        for name in columns:
            column = frame[name]
            if column.mask is not None and column.mask.any():
                raise AnalyticsError(
                    f"column {name} of {table} contains NULLs; "
                    "run INZA.IMPUTE first"
                )
            if column.values.dtype.kind not in "ifb":
                raise AnalyticsError(
                    f"column {name} of {table} is not numeric"
                )
            arrays.append(column.values.astype(np.float64))
        if not arrays:
            return np.empty((0, 0))
        return np.column_stack(arrays)

    def read_columns(self, table: str, columns: Sequence[str]):
        """Raw VColumns of the named columns at the current snapshot."""
        key = table.upper()
        engine = self.system.accelerator
        deltas = self.connection.active_deltas()
        epoch = self.connection.snapshot_epoch_for_statement()
        __, cols, __len = engine.scan_snapshot(
            key, epoch, delta=deltas.get(key)
        )
        missing = [c for c in columns if c not in cols]
        if missing:
            raise UnknownObjectError(
                f"table {key} has no column(s) {', '.join(missing)}"
            )
        return {name: cols[name] for name in columns}

    def read_labels(self, table: str, column: str) -> list[object]:
        frame = self.read_columns(table, [column])
        return frame[column].to_objects()

    def row_count(self, table: str) -> int:
        engine = self.system.accelerator
        deltas = self.connection.active_deltas()
        epoch = self.connection.snapshot_epoch_for_statement()
        __, __cols, length = engine.scan_snapshot(
            table.upper(), epoch, delta=deltas.get(table.upper())
        )
        return length

    # -- accelerator-side output ------------------------------------------------

    def create_output_table(
        self, name: str, columns: Sequence[tuple[str, object]]
    ) -> None:
        """Create (or replace) an AOT for procedure output."""
        self.system.create_procedure_output_table(
            self.connection, name, columns
        )

    def insert_rows(self, name: str, rows: Sequence[tuple]) -> int:
        """Write rows to an AOT through the connection's txn context."""
        return self.system.insert_procedure_rows(self.connection, name, rows)

    def log(self, message: str) -> None:
        self.messages.append(message)


@dataclass(frozen=True)
class Procedure:
    """A registered analytics procedure."""

    name: str  # qualified, e.g. 'INZA.KMEANS'
    handler: Callable[[ProcedureContext], str]
    description: str = ""
    #: Parameter keys whose values name input tables (need SELECT).
    input_params: tuple[str, ...] = ("intable",)
    #: Parameter keys whose values name output tables (need INSERT, or
    #: the table is created and owned by the caller).
    output_params: tuple[str, ...] = ("outtable",)


class ProcedureRegistry:
    """Name → procedure map plus the governance gate."""

    def __init__(self) -> None:
        self._procedures: dict[str, Procedure] = {}
        self.calls_executed = 0
        self.calls_denied = 0

    def register(self, procedure: Procedure) -> None:
        self._procedures[procedure.name.upper()] = procedure

    def get(self, name: str) -> Procedure:
        procedure = self._procedures.get(name.upper())
        if procedure is None:
            raise UnknownObjectError(f"unknown procedure {name}")
        return procedure

    def names(self) -> list[str]:
        return sorted(self._procedures)

    # -- call path ------------------------------------------------------------

    def call(
        self,
        system: "AcceleratedDatabase",
        connection: "Connection",
        stmt: ast.CallStatement,
    ) -> Result:
        procedure = self.get(stmt.procedure)
        params = self._extract_params(stmt)
        user = connection.user

        # Governance: authorised by DB2 before delegation (paper Sec. 3).
        privileges = system.catalog.privileges
        try:
            privileges.check(
                user.name,
                Privilege.EXECUTE,
                "PROCEDURE",
                procedure.name.upper(),
                is_admin=user.is_admin,
            )
            for key in procedure.input_params:
                table = params.get(key)
                if table:
                    privileges.check(
                        user.name,
                        Privilege.SELECT,
                        "TABLE",
                        table.upper(),
                        is_admin=user.is_admin,
                    )
            for key in procedure.output_params:
                table = params.get(key)
                if table and system.catalog.has_table(table):
                    privileges.check(
                        user.name,
                        Privilege.INSERT,
                        "TABLE",
                        table.upper(),
                        is_admin=user.is_admin,
                    )
        except Exception:
            self.calls_denied += 1
            raise

        context = ProcedureContext(system, connection, params)
        message = procedure.handler(context)
        self.calls_executed += 1
        rows = [(message,)] + [(line,) for line in context.messages]
        return Result(
            columns=["MESSAGE"],
            rows=rows,
            engine="ACCELERATOR",
            rowcount=len(rows),
            message=message,
        )

    @staticmethod
    def _extract_params(stmt: ast.CallStatement) -> dict[str, str]:
        if not stmt.arguments:
            return {}
        if len(stmt.arguments) != 1 or not isinstance(
            stmt.arguments[0], ast.Literal
        ):
            raise ProcedureError(
                "procedures take a single 'key=value, ...' string argument"
            )
        value = stmt.arguments[0].value
        if not isinstance(value, str):
            raise ProcedureError("procedure argument must be a string")
        return parse_parameter_string(value)

"""Gaussian naive Bayes classifier and its scoring procedure."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics import uda
from repro.analytics.framework import ProcedureContext
from repro.analytics.model_store import Model
from repro.errors import AnalyticsError
from repro.sql.types import DOUBLE, VarcharType

__all__ = [
    "NaiveBayesAggregate",
    "NaiveBayesResult",
    "naive_bayes_fit",
    "naive_bayes_predict",
    "naive_bayes_procedure",
    "predict_naive_bayes",
]

#: Variance floor to keep the Gaussian likelihood finite.
_VARIANCE_EPSILON = 1e-9


@dataclass
class NaiveBayesResult:
    classes: list[object]
    priors: np.ndarray  # (n_classes,)
    means: np.ndarray  # (n_classes, n_features)
    variances: np.ndarray  # (n_classes, n_features)
    training_accuracy: float


def naive_bayes_fit(matrix: np.ndarray, labels: list[object]) -> NaiveBayesResult:
    """Fit per-class Gaussian feature distributions."""
    if matrix.shape[0] != len(labels):
        raise AnalyticsError("feature matrix and label length differ")
    if matrix.shape[0] == 0:
        raise AnalyticsError("cannot fit a classifier on zero rows")
    label_array = np.array(labels, dtype=object)
    classes = sorted(set(labels), key=repr)
    priors = np.empty(len(classes))
    means = np.empty((len(classes), matrix.shape[1]))
    variances = np.empty((len(classes), matrix.shape[1]))
    for index, cls in enumerate(classes):
        members = matrix[label_array == cls]
        priors[index] = len(members) / len(labels)
        means[index] = members.mean(axis=0)
        variances[index] = members.var(axis=0) + _VARIANCE_EPSILON
    result = NaiveBayesResult(
        classes=classes,
        priors=priors,
        means=means,
        variances=variances,
        training_accuracy=0.0,
    )
    predictions, __ = naive_bayes_predict(matrix, result)
    correct = sum(p == t for p, t in zip(predictions, labels))
    result.training_accuracy = correct / len(labels)
    return result


def naive_bayes_predict(
    matrix: np.ndarray, model: NaiveBayesResult
) -> tuple[list[object], np.ndarray]:
    """Predicted class + log-probability margin per row."""
    # log P(c | x) ∝ log prior + Σ log N(x | mean, var)
    log_likelihood = np.empty((matrix.shape[0], len(model.classes)))
    for index in range(len(model.classes)):
        mean = model.means[index]
        variance = model.variances[index]
        log_prob = -0.5 * (
            np.log(2 * np.pi * variance) + (matrix - mean) ** 2 / variance
        )
        log_likelihood[:, index] = log_prob.sum(axis=1) + np.log(
            model.priors[index]
        )
    best = log_likelihood.argmax(axis=1)
    predictions = [model.classes[i] for i in best]
    scores = log_likelihood.max(axis=1)
    return predictions, scores


class NaiveBayesAggregate(uda.ModelAggregate):
    """Gaussian naive Bayes as a mergeable aggregate.

    Three single-pass epochs: per-class row counts and feature sums
    (→ priors and means), per-class sums of squared deviations from
    the *final* means (→ variances; the two-pass form sidesteps the
    catastrophic cancellation a merged one-pass variance would risk,
    and reproduces ``numpy.var`` bitwise on a single chunk), then a
    scoring pass for the training accuracy.
    """

    kind = "NAIVEBAYES"

    def __init__(self) -> None:
        self.phase = "counts"
        self.classes: list[object] = []
        self._counts: dict[object, int] = {}
        self.means: np.ndarray = np.empty((0, 0))
        self._fit: NaiveBayesResult = None

    def init(self):
        if self.phase == "counts":
            return {"counts": {}, "sums": {}}
        if self.phase == "ssd":
            return {"ssd": np.zeros(self.means.shape)}
        return {"correct": 0, "total": 0}

    def transition(self, state, chunk):
        if self.phase == "counts":
            for cls in set(chunk.labels.tolist()):
                members = chunk.matrix[chunk.labels == cls]
                state["counts"][cls] = (
                    state["counts"].get(cls, 0) + len(members)
                )
                total = members.sum(axis=0)
                previous = state["sums"].get(cls)
                state["sums"][cls] = (
                    total if previous is None else previous + total
                )
            return state
        if self.phase == "ssd":
            for index, cls in enumerate(self.classes):
                members = chunk.matrix[chunk.labels == cls]
                if len(members):
                    state["ssd"][index] += (
                        (members - self.means[index]) ** 2
                    ).sum(axis=0)
            return state
        predictions, __ = naive_bayes_predict(chunk.matrix, self._fit)
        state["correct"] += sum(
            p == t for p, t in zip(predictions, chunk.labels)
        )
        state["total"] += chunk.rows
        return state

    def merge(self, a, b):
        if self.phase == "counts":
            for cls, count in b["counts"].items():
                a["counts"][cls] = a["counts"].get(cls, 0) + count
            for cls, total in b["sums"].items():
                previous = a["sums"].get(cls)
                a["sums"][cls] = (
                    total if previous is None else previous + total
                )
            return a
        if self.phase == "ssd":
            a["ssd"] += b["ssd"]
            return a
        a["correct"] += b["correct"]
        a["total"] += b["total"]
        return a

    def finalize(self, state) -> bool:
        if self.phase == "counts":
            total = sum(state["counts"].values())
            if total == 0:
                raise AnalyticsError("cannot fit a classifier on zero rows")
            self.classes = sorted(state["counts"], key=repr)
            self._counts = state["counts"]
            features = next(iter(state["sums"].values())).shape[0]
            priors = np.empty(len(self.classes))
            self.means = np.empty((len(self.classes), features))
            for index, cls in enumerate(self.classes):
                priors[index] = state["counts"][cls] / total
                self.means[index] = (
                    state["sums"][cls] / state["counts"][cls]
                )
            self._priors = priors
            self.phase = "ssd"
            return False
        if self.phase == "ssd":
            variances = np.empty(self.means.shape)
            for index, cls in enumerate(self.classes):
                variances[index] = (
                    state["ssd"][index] / self._counts[cls]
                    + _VARIANCE_EPSILON
                )
            self._fit = NaiveBayesResult(
                classes=self.classes,
                priors=self._priors,
                means=self.means,
                variances=variances,
                training_accuracy=0.0,
            )
            self.phase = "accuracy"
            return False
        self._fit.training_accuracy = state["correct"] / state["total"]
        return True

    def result(self) -> NaiveBayesResult:
        return self._fit


def naive_bayes_procedure(ctx: ProcedureContext) -> str:
    """``CALL INZA.NAIVEBAYES('intable=T, class=Y, model=M, id=ID')``."""
    intable = ctx.require("intable").upper()
    class_column = ctx.require("class").upper()
    model_name = ctx.require("model")
    id_column = (ctx.get("id") or "").upper()
    features = ctx.column_list("incolumn")
    if features is None:
        schema = ctx.system.catalog.table(intable).schema
        features = [
            column.name
            for column in schema.columns
            if column.sql_type.is_numeric
            and column.name not in (class_column, id_column)
        ]
    if not features:
        raise AnalyticsError("no numeric feature columns")
    source = uda.TrainingSource.from_context(
        ctx, intable, features, label_column=class_column
    )
    aggregate = NaiveBayesAggregate()
    report = uda.train(aggregate, source)
    result = aggregate.result()
    ctx.system.models.register(
        Model(
            name=model_name,
            kind="NAIVEBAYES",
            features=features,
            target=class_column,
            payload={"fit": result},
            metrics={"training_accuracy": result.training_accuracy},
            owner=ctx.connection.user.name,
            rows_trained=report.rows,
            epochs_trained=report.epochs,
            trained_generation=ctx.system.catalog.generation,
        ),
        replace=True,
    )
    return (
        f"NAIVEBAYES ok: classes={len(result.classes)}, "
        f"accuracy={result.training_accuracy:.4f}"
    )


def predict_naive_bayes(ctx: ProcedureContext) -> str:
    """``CALL INZA.PREDICT_NAIVEBAYES('model=M, intable=T, outtable=O,
    id=ID')``."""
    model = ctx.system.models.get(ctx.require("model"))
    if model.kind != "NAIVEBAYES":
        raise AnalyticsError(f"model {model.name} is not a NAIVEBAYES model")
    intable = ctx.require("intable").upper()
    outtable = ctx.require("outtable").upper()
    id_column = ctx.require("id").upper()
    matrix = ctx.read_matrix(intable, model.features)
    ids = ctx.read_labels(intable, id_column)
    predictions, scores = naive_bayes_predict(matrix, model.payload["fit"])
    id_type = ctx.system.catalog.table(intable).schema.column(id_column).sql_type
    ctx.create_output_table(
        outtable,
        [
            (id_column, id_type),
            ("PREDICTION", VarcharType(64)),
            ("LOG_SCORE", DOUBLE),
        ],
    )
    ctx.insert_rows(
        outtable,
        [
            (ids[i], str(predictions[i]), float(scores[i]))
            for i in range(len(ids))
        ],
    )
    return f"PREDICT_NAIVEBAYES ok: scored {len(ids)} rows"

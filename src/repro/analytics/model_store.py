"""Model storage for the analytics framework.

Trained models live *on the accelerator* next to the data: a registry of
model objects plus, for each model, the option to materialise its
parameters as accelerator-only tables (k-means centroids, regression
coefficients, ...). Scoring procedures read models back from here, so a
train → score pipeline never moves model or data off the accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import DuplicateObjectError, UnknownObjectError

__all__ = ["Model", "ModelStore"]


@dataclass
class Model:
    """One trained model."""

    name: str
    kind: str  # 'KMEANS', 'LINREG', 'NAIVEBAYES', 'DECTREE', 'ARULE'
    features: list[str]
    target: Optional[str] = None
    #: Algorithm-specific parameters (numpy arrays, nested dicts).
    payload: dict = field(default_factory=dict)
    #: Training metrics (e.g. within-cluster SSE, R², accuracy).
    metrics: dict = field(default_factory=dict)
    owner: str = "SYSADM"


class ModelStore:
    """Name → model registry (accelerator-resident)."""

    def __init__(self) -> None:
        self._models: dict[str, Model] = {}

    def register(self, model: Model, replace: bool = False) -> None:
        key = model.name.upper()
        if key in self._models and not replace:
            raise DuplicateObjectError(f"model {key} already exists")
        model.name = key
        self._models[key] = model

    def get(self, name: str) -> Model:
        key = name.upper()
        model = self._models.get(key)
        if model is None:
            raise UnknownObjectError(f"unknown model {key}")
        return model

    def drop(self, name: str) -> None:
        key = name.upper()
        if key not in self._models:
            raise UnknownObjectError(f"unknown model {key}")
        del self._models[key]

    def names(self) -> list[str]:
        return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._models

    def __len__(self) -> int:
        return len(self._models)

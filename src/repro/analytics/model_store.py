"""Model storage for the analytics framework.

Trained models live *on the accelerator* next to the data: a registry of
model objects plus, for each model, the option to materialise its
parameters as accelerator-only tables (k-means centroids, regression
coefficients, ...). Scoring procedures read models back from here, so a
train → score pipeline never moves model or data off the accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import AuthorizationError, DuplicateObjectError, UnknownObjectError

__all__ = ["Model", "ModelStore"]


@dataclass
class Model:
    """One trained model."""

    name: str
    kind: str  # 'KMEANS', 'LINREG', 'NAIVEBAYES', 'DECTREE', 'ARULE'
    features: list[str]
    target: Optional[str] = None
    #: Algorithm-specific parameters (numpy arrays, nested dicts).
    payload: dict = field(default_factory=dict)
    #: Training metrics (e.g. within-cluster SSE, R², accuracy).
    metrics: dict = field(default_factory=dict)
    owner: str = "SYSADM"
    #: How the unified trainer produced the model (MON_MODELS columns).
    rows_trained: int = 0
    epochs_trained: int = 0
    #: Catalog generation at the time of training.
    trained_generation: int = 0
    #: Store-wide monotonic version, stamped on register. Compiled
    #: PREDICT kernels compare it to detect retrains and rebuild their
    #: cached scorer.
    generation: int = 0


class ModelStore:
    """Name → model registry (accelerator-resident)."""

    def __init__(self) -> None:
        self._models: dict[str, Model] = {}
        self._generation = 0

    def register(self, model: Model, replace: bool = False) -> None:
        key = model.name.upper()
        if key in self._models and not replace:
            raise DuplicateObjectError(f"model {key} already exists")
        model.name = key
        self._generation += 1
        model.generation = self._generation
        self._models[key] = model

    def get(self, name: str) -> Model:
        key = name.upper()
        model = self._models.get(key)
        if model is None:
            raise UnknownObjectError(f"unknown model {key}")
        return model

    def drop(self, name: str) -> None:
        key = name.upper()
        if key not in self._models:
            raise UnknownObjectError(f"unknown model {key}")
        self._generation += 1
        del self._models[key]

    def check_access(self, model: Model, user_name: str, is_admin: bool) -> None:
        """Owner-based read/score gate: the owner and admins only.

        Models carry training data distilled from their source table, so
        reading or scoring one is gated like reading the table would be.
        """
        if is_admin or model.owner == user_name:
            return
        raise AuthorizationError(
            f"user {user_name} lacks READ on model {model.name}"
        )

    def names(self) -> list[str]:
        return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._models

    def __len__(self) -> int:
        return len(self._models)

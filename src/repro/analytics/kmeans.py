"""K-means clustering (k-means++ initialisation, Lloyd iterations).

Pure-algorithm entry point :func:`kmeans_fit` plus the INZA-style
procedure handler. The algorithm runs directly over the accelerator's
columnar data; the output table (row id → cluster id → distance) is
materialised as an accelerator-only table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics import uda
from repro.analytics.framework import ProcedureContext
from repro.analytics.model_store import Model
from repro.errors import AnalyticsError
from repro.sql.types import DOUBLE, INTEGER

__all__ = [
    "KMeansAggregate",
    "KMeansResult",
    "kmeans_fit",
    "kmeans_procedure",
    "predict_kmeans",
]


@dataclass
class KMeansResult:
    centroids: np.ndarray  # (k, n_features)
    assignments: np.ndarray  # (n_rows,)
    distances: np.ndarray  # (n_rows,)
    inertia: float
    iterations: int


def kmeans_fit(
    matrix: np.ndarray,
    k: int,
    max_iterations: int = 50,
    seed: int = 1,
    tolerance: float = 1e-6,
) -> KMeansResult:
    """Cluster ``matrix`` rows into ``k`` groups.

    Deterministic for a given seed. Raises if there are fewer rows than
    clusters.
    """
    rows = matrix.shape[0]
    if rows < k:
        raise AnalyticsError(f"cannot form {k} clusters from {rows} rows")
    if k < 1:
        raise AnalyticsError("k must be >= 1")
    rng = np.random.default_rng(seed)
    centroids = _kmeanspp_init(matrix, k, rng)
    assignments = np.zeros(rows, dtype=np.int64)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        distances = _pairwise_sq_distances(matrix, centroids)
        new_assignments = distances.argmin(axis=1)
        updated = centroids.copy()
        for cluster in range(k):
            members = matrix[new_assignments == cluster]
            if len(members):
                updated[cluster] = members.mean(axis=0)
        shift = float(np.abs(updated - centroids).max())
        centroids = updated
        assignments = new_assignments
        if shift <= tolerance:
            break
    distances = _pairwise_sq_distances(matrix, centroids)
    best = distances[np.arange(rows), assignments]
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        distances=np.sqrt(best),
        inertia=float(best.sum()),
        iterations=iterations,
    )


def _kmeanspp_init(matrix: np.ndarray, k: int, rng) -> np.ndarray:
    rows = matrix.shape[0]
    centroids = np.empty((k, matrix.shape[1]))
    first = int(rng.integers(rows))
    centroids[0] = matrix[first]
    closest = ((matrix - centroids[0]) ** 2).sum(axis=1)
    for index in range(1, k):
        total = closest.sum()
        if total <= 0:
            # All remaining points coincide with a centroid; pick anything.
            centroids[index] = matrix[int(rng.integers(rows))]
            continue
        probabilities = closest / total
        choice = int(rng.choice(rows, p=probabilities))
        centroids[index] = matrix[choice]
        closest = np.minimum(
            closest, ((matrix - centroids[index]) ** 2).sum(axis=1)
        )
    return centroids


def _pairwise_sq_distances(matrix: np.ndarray, centroids: np.ndarray):
    # (n, 1, d) - (1, k, d) without materialising when small enough.
    diffs = matrix[:, None, :] - centroids[None, :, :]
    return (diffs * diffs).sum(axis=2)


class KMeansAggregate(uda.ModelAggregate):
    """K-means as a mergeable aggregate, numerically identical to
    :func:`kmeans_fit`.

    Three phases, each one or more epochs:

    * ``collect`` — one epoch that concatenates the chunks back into the
      full matrix for the inherently sequential k-means++ seeding (the
      seeding scans rows in order with a running RNG, so it cannot be
      split; everything after it can).
    * ``lloyd`` — one epoch per Lloyd iteration. ``transition`` assigns
      chunk rows to the nearest current centroid and accumulates
      per-cluster sums/counts; ``finalize`` recomputes centroids as
      sum/count (bitwise what ``members.mean`` computes) and checks the
      shift against the tolerance.
    * ``score`` — one epoch computing the full distance matrix per
      chunk.  The final distances index those matrices by the *last
      Lloyd assignment*, not a fresh argmin, because that is what the
      reference implementation reports after its loop exits.
    """

    kind = "KMEANS"

    def __init__(
        self,
        k: int,
        max_iterations: int = 50,
        seed: int = 1,
        tolerance: float = 1e-6,
    ) -> None:
        self.k = k
        self.max_iterations = max_iterations
        self.seed = seed
        self.tolerance = tolerance
        self.phase = "collect"
        self.centroids: np.ndarray = np.empty((0, 0))
        self.iterations = 0
        self._assignments: np.ndarray = np.zeros(0, dtype=np.int64)
        self._result: KMeansResult = None

    def init(self):
        if self.phase == "lloyd":
            features = self.centroids.shape[1]
            return {
                "sums": np.zeros((self.k, features)),
                "counts": np.zeros(self.k, dtype=np.int64),
                "assignment_parts": [],
            }
        return {"parts": []}

    def transition(self, state, chunk):
        if self.phase == "collect":
            state["parts"].append(chunk.matrix)
            return state
        if self.phase == "lloyd":
            distances = _pairwise_sq_distances(chunk.matrix, self.centroids)
            assignments = distances.argmin(axis=1)
            for cluster in range(self.k):
                members = chunk.matrix[assignments == cluster]
                if len(members):
                    state["sums"][cluster] += members.sum(axis=0)
                    state["counts"][cluster] += len(members)
            state["assignment_parts"].append(assignments)
            return state
        distances = _pairwise_sq_distances(chunk.matrix, self.centroids)
        state["parts"].append(distances)
        return state

    def merge(self, a, b):
        if self.phase == "lloyd":
            a["sums"] += b["sums"]
            a["counts"] += b["counts"]
            a["assignment_parts"].extend(b["assignment_parts"])
            return a
        a["parts"].extend(b["parts"])
        return a

    def finalize(self, state) -> bool:
        if self.phase == "collect":
            parts = state["parts"]
            matrix = (
                np.concatenate(parts, axis=0) if parts else np.empty((0, 0))
            )
            rows = matrix.shape[0]
            if rows < self.k:
                raise AnalyticsError(
                    f"cannot form {self.k} clusters from {rows} rows"
                )
            if self.k < 1:
                raise AnalyticsError("k must be >= 1")
            rng = np.random.default_rng(self.seed)
            self.centroids = _kmeanspp_init(matrix, self.k, rng)
            if self.max_iterations < 1:
                self._assignments = np.zeros(rows, dtype=np.int64)
                self.phase = "score"
            else:
                self.phase = "lloyd"
            return False
        if self.phase == "lloyd":
            updated = self.centroids.copy()
            for cluster in range(self.k):
                if state["counts"][cluster]:
                    updated[cluster] = (
                        state["sums"][cluster] / state["counts"][cluster]
                    )
            shift = float(np.abs(updated - self.centroids).max())
            self.centroids = updated
            self.iterations += 1
            self._assignments = np.concatenate(state["assignment_parts"])
            if shift <= self.tolerance or self.iterations >= self.max_iterations:
                self.phase = "score"
            return False
        offset = 0
        best_parts = []
        for distances in state["parts"]:
            rows = distances.shape[0]
            part = self._assignments[offset:offset + rows]
            best_parts.append(distances[np.arange(rows), part])
            offset += rows
        best = (
            np.concatenate(best_parts) if best_parts else np.zeros(0)
        )
        self._result = KMeansResult(
            centroids=self.centroids,
            assignments=self._assignments,
            distances=np.sqrt(best),
            inertia=float(best.sum()),
            iterations=self.iterations,
        )
        return True

    def result(self) -> KMeansResult:
        return self._result


def _numeric_feature_columns(ctx: ProcedureContext, table: str, id_column: str):
    wanted = ctx.column_list("incolumn")
    if wanted is not None:
        return wanted
    schema = ctx.system.catalog.table(table).schema
    return [
        column.name
        for column in schema.columns
        if column.sql_type.is_numeric and column.name != id_column
    ]


def kmeans_procedure(ctx: ProcedureContext) -> str:
    """``CALL INZA.KMEANS('intable=T, outtable=O, id=ID, k=4, ...')``."""
    intable = ctx.require("intable").upper()
    outtable = ctx.require("outtable").upper()
    id_column = ctx.require("id").upper()
    k = ctx.get_int("k", 3)
    max_iterations = ctx.get_int("maxiter", 50)
    seed = ctx.get_int("randseed", 1)
    model_name = ctx.get("model")

    features = _numeric_feature_columns(ctx, intable, id_column)
    if not features:
        raise AnalyticsError(f"table {intable} has no numeric feature columns")
    source = uda.TrainingSource.from_context(ctx, intable, features)
    aggregate = KMeansAggregate(k, max_iterations=max_iterations, seed=seed)
    report = uda.train(aggregate, source)
    result = aggregate.result()
    ids = ctx.read_labels(intable, id_column)

    id_type = ctx.system.catalog.table(intable).schema.column(id_column).sql_type
    ctx.create_output_table(
        outtable,
        [(id_column, id_type), ("CLUSTER_ID", INTEGER), ("DISTANCE", DOUBLE)],
    )
    ctx.insert_rows(
        outtable,
        [
            (ids[i], int(result.assignments[i]), float(result.distances[i]))
            for i in range(len(ids))
        ],
    )
    if model_name:
        ctx.system.models.register(
            Model(
                name=model_name,
                kind="KMEANS",
                features=features,
                payload={"centroids": result.centroids},
                metrics={
                    "inertia": result.inertia,
                    "iterations": result.iterations,
                    "k": k,
                },
                owner=ctx.connection.user.name,
                rows_trained=report.rows,
                epochs_trained=report.epochs,
                trained_generation=ctx.system.catalog.generation,
            ),
            replace=True,
        )
    ctx.log(f"clustered {len(ids)} rows into {k} clusters")
    return (
        f"KMEANS ok: k={k}, rows={len(ids)}, "
        f"inertia={result.inertia:.4f}, iterations={result.iterations}"
    )


def predict_kmeans(ctx: ProcedureContext) -> str:
    """``CALL INZA.PREDICT_KMEANS('model=M, intable=T, outtable=O, id=ID')``."""
    model = ctx.system.models.get(ctx.require("model"))
    if model.kind != "KMEANS":
        raise AnalyticsError(f"model {model.name} is not a KMEANS model")
    intable = ctx.require("intable").upper()
    outtable = ctx.require("outtable").upper()
    id_column = ctx.require("id").upper()
    matrix = ctx.read_matrix(intable, model.features)
    ids = ctx.read_labels(intable, id_column)
    distances = _pairwise_sq_distances(matrix, model.payload["centroids"])
    assignments = distances.argmin(axis=1)
    best = np.sqrt(distances[np.arange(len(ids)), assignments])
    id_type = ctx.system.catalog.table(intable).schema.column(id_column).sql_type
    ctx.create_output_table(
        outtable,
        [(id_column, id_type), ("CLUSTER_ID", INTEGER), ("DISTANCE", DOUBLE)],
    )
    ctx.insert_rows(
        outtable,
        [
            (ids[i], int(assignments[i]), float(best[i]))
            for i in range(len(ids))
        ],
    )
    return f"PREDICT_KMEANS ok: scored {len(ids)} rows with model {model.name}"

"""K-means clustering (k-means++ initialisation, Lloyd iterations).

Pure-algorithm entry point :func:`kmeans_fit` plus the INZA-style
procedure handler. The algorithm runs directly over the accelerator's
columnar data; the output table (row id → cluster id → distance) is
materialised as an accelerator-only table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.framework import ProcedureContext
from repro.analytics.model_store import Model
from repro.errors import AnalyticsError
from repro.sql.types import DOUBLE, INTEGER

__all__ = ["KMeansResult", "kmeans_fit", "kmeans_procedure", "predict_kmeans"]


@dataclass
class KMeansResult:
    centroids: np.ndarray  # (k, n_features)
    assignments: np.ndarray  # (n_rows,)
    distances: np.ndarray  # (n_rows,)
    inertia: float
    iterations: int


def kmeans_fit(
    matrix: np.ndarray,
    k: int,
    max_iterations: int = 50,
    seed: int = 1,
    tolerance: float = 1e-6,
) -> KMeansResult:
    """Cluster ``matrix`` rows into ``k`` groups.

    Deterministic for a given seed. Raises if there are fewer rows than
    clusters.
    """
    rows = matrix.shape[0]
    if rows < k:
        raise AnalyticsError(f"cannot form {k} clusters from {rows} rows")
    if k < 1:
        raise AnalyticsError("k must be >= 1")
    rng = np.random.default_rng(seed)
    centroids = _kmeanspp_init(matrix, k, rng)
    assignments = np.zeros(rows, dtype=np.int64)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        distances = _pairwise_sq_distances(matrix, centroids)
        new_assignments = distances.argmin(axis=1)
        updated = centroids.copy()
        for cluster in range(k):
            members = matrix[new_assignments == cluster]
            if len(members):
                updated[cluster] = members.mean(axis=0)
        shift = float(np.abs(updated - centroids).max())
        centroids = updated
        assignments = new_assignments
        if shift <= tolerance:
            break
    distances = _pairwise_sq_distances(matrix, centroids)
    best = distances[np.arange(rows), assignments]
    return KMeansResult(
        centroids=centroids,
        assignments=assignments,
        distances=np.sqrt(best),
        inertia=float(best.sum()),
        iterations=iterations,
    )


def _kmeanspp_init(matrix: np.ndarray, k: int, rng) -> np.ndarray:
    rows = matrix.shape[0]
    centroids = np.empty((k, matrix.shape[1]))
    first = int(rng.integers(rows))
    centroids[0] = matrix[first]
    closest = ((matrix - centroids[0]) ** 2).sum(axis=1)
    for index in range(1, k):
        total = closest.sum()
        if total <= 0:
            # All remaining points coincide with a centroid; pick anything.
            centroids[index] = matrix[int(rng.integers(rows))]
            continue
        probabilities = closest / total
        choice = int(rng.choice(rows, p=probabilities))
        centroids[index] = matrix[choice]
        closest = np.minimum(
            closest, ((matrix - centroids[index]) ** 2).sum(axis=1)
        )
    return centroids


def _pairwise_sq_distances(matrix: np.ndarray, centroids: np.ndarray):
    # (n, 1, d) - (1, k, d) without materialising when small enough.
    diffs = matrix[:, None, :] - centroids[None, :, :]
    return (diffs * diffs).sum(axis=2)


def _numeric_feature_columns(ctx: ProcedureContext, table: str, id_column: str):
    wanted = ctx.column_list("incolumn")
    if wanted is not None:
        return wanted
    schema = ctx.system.catalog.table(table).schema
    return [
        column.name
        for column in schema.columns
        if column.sql_type.is_numeric and column.name != id_column
    ]


def kmeans_procedure(ctx: ProcedureContext) -> str:
    """``CALL INZA.KMEANS('intable=T, outtable=O, id=ID, k=4, ...')``."""
    intable = ctx.require("intable").upper()
    outtable = ctx.require("outtable").upper()
    id_column = ctx.require("id").upper()
    k = ctx.get_int("k", 3)
    max_iterations = ctx.get_int("maxiter", 50)
    seed = ctx.get_int("randseed", 1)
    model_name = ctx.get("model")

    features = _numeric_feature_columns(ctx, intable, id_column)
    if not features:
        raise AnalyticsError(f"table {intable} has no numeric feature columns")
    matrix = ctx.read_matrix(intable, features)
    ids = ctx.read_labels(intable, id_column)
    result = kmeans_fit(matrix, k, max_iterations=max_iterations, seed=seed)

    id_type = ctx.system.catalog.table(intable).schema.column(id_column).sql_type
    ctx.create_output_table(
        outtable,
        [(id_column, id_type), ("CLUSTER_ID", INTEGER), ("DISTANCE", DOUBLE)],
    )
    ctx.insert_rows(
        outtable,
        [
            (ids[i], int(result.assignments[i]), float(result.distances[i]))
            for i in range(len(ids))
        ],
    )
    if model_name:
        ctx.system.models.register(
            Model(
                name=model_name,
                kind="KMEANS",
                features=features,
                payload={"centroids": result.centroids},
                metrics={
                    "inertia": result.inertia,
                    "iterations": result.iterations,
                    "k": k,
                },
                owner=ctx.connection.user.name,
            ),
            replace=True,
        )
    ctx.log(f"clustered {len(ids)} rows into {k} clusters")
    return (
        f"KMEANS ok: k={k}, rows={len(ids)}, "
        f"inertia={result.inertia:.4f}, iterations={result.iterations}"
    )


def predict_kmeans(ctx: ProcedureContext) -> str:
    """``CALL INZA.PREDICT_KMEANS('model=M, intable=T, outtable=O, id=ID')``."""
    model = ctx.system.models.get(ctx.require("model"))
    if model.kind != "KMEANS":
        raise AnalyticsError(f"model {model.name} is not a KMEANS model")
    intable = ctx.require("intable").upper()
    outtable = ctx.require("outtable").upper()
    id_column = ctx.require("id").upper()
    matrix = ctx.read_matrix(intable, model.features)
    ids = ctx.read_labels(intable, id_column)
    distances = _pairwise_sq_distances(matrix, model.payload["centroids"])
    assignments = distances.argmin(axis=1)
    best = np.sqrt(distances[np.arange(len(ids)), assignments])
    id_type = ctx.system.catalog.table(intable).schema.column(id_column).sql_type
    ctx.create_output_table(
        outtable,
        [(id_column, id_type), ("CLUSTER_ID", INTEGER), ("DISTANCE", DOUBLE)],
    )
    ctx.insert_rows(
        outtable,
        [
            (ids[i], int(assignments[i]), float(best[i]))
            for i in range(len(ids))
        ],
    )
    return f"PREDICT_KMEANS ok: scored {len(ids)} rows with model {model.name}"

"""Association-rule mining (Apriori) over (transaction, item) tables."""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.analytics.framework import ProcedureContext
from repro.analytics.model_store import Model
from repro.errors import AnalyticsError
from repro.sql.types import DOUBLE, VarcharType

__all__ = [
    "AssociationRule",
    "apriori_frequent_itemsets",
    "association_rules",
    "arule_procedure",
]


@dataclass(frozen=True)
class AssociationRule:
    antecedent: tuple
    consequent: tuple
    support: float
    confidence: float
    lift: float


def apriori_frequent_itemsets(
    baskets: list[set], min_support: float, max_size: int = 4
) -> dict[frozenset, float]:
    """Frequent itemsets with support >= ``min_support``.

    Classic level-wise Apriori: candidates of size k are joined from
    frequent (k-1)-itemsets and pruned by the downward-closure property.
    """
    if not 0 < min_support <= 1:
        raise AnalyticsError("min_support must be in (0, 1]")
    total = len(baskets)
    if total == 0:
        return {}
    # Level 1.
    counts: dict[frozenset, int] = {}
    for basket in baskets:
        for item in basket:
            key = frozenset([item])
            counts[key] = counts.get(key, 0) + 1
    threshold = min_support * total
    frequent: dict[frozenset, float] = {
        itemset: count / total
        for itemset, count in counts.items()
        if count >= threshold
    }
    current = [s for s in frequent if len(s) == 1]
    size = 2
    while current and size <= max_size:
        # Join step.
        candidates: set[frozenset] = set()
        for a, b in combinations(sorted(current, key=sorted), 2):
            union = a | b
            if len(union) == size:
                # Prune: all (size-1)-subsets must be frequent.
                if all(
                    frozenset(subset) in frequent
                    for subset in combinations(union, size - 1)
                ):
                    candidates.add(union)
        if not candidates:
            break
        level_counts = {candidate: 0 for candidate in candidates}
        for basket in baskets:
            for candidate in candidates:
                if candidate <= basket:
                    level_counts[candidate] += 1
        current = []
        for candidate, count in level_counts.items():
            if count >= threshold:
                frequent[candidate] = count / total
                current.append(candidate)
        size += 1
    return frequent


def association_rules(
    frequent: dict[frozenset, float], min_confidence: float
) -> list[AssociationRule]:
    """Derive rules A → B from frequent itemsets."""
    rules: list[AssociationRule] = []
    for itemset, support in frequent.items():
        if len(itemset) < 2:
            continue
        for size in range(1, len(itemset)):
            for antecedent in combinations(sorted(itemset, key=repr), size):
                antecedent_set = frozenset(antecedent)
                consequent_set = itemset - antecedent_set
                antecedent_support = frequent.get(antecedent_set)
                consequent_support = frequent.get(consequent_set)
                if antecedent_support is None or consequent_support is None:
                    continue
                confidence = support / antecedent_support
                if confidence + 1e-12 < min_confidence:
                    continue
                lift = confidence / consequent_support
                rules.append(
                    AssociationRule(
                        antecedent=tuple(sorted(antecedent_set, key=repr)),
                        consequent=tuple(sorted(consequent_set, key=repr)),
                        support=support,
                        confidence=confidence,
                        lift=lift,
                    )
                )
    rules.sort(key=lambda r: (-r.confidence, -r.support, r.antecedent))
    return rules


def arule_procedure(ctx: ProcedureContext) -> str:
    """``CALL INZA.ARULE('intable=T, tid=TID, item=ITEM, outtable=O,
    support=0.1, confidence=0.5')``."""
    intable = ctx.require("intable").upper()
    outtable = ctx.require("outtable").upper()
    tid_column = ctx.require("tid").upper()
    item_column = ctx.require("item").upper()
    min_support = ctx.get_float("support", 0.1)
    min_confidence = ctx.get_float("confidence", 0.5)
    max_size = ctx.get_int("maxsetsize", 4)
    model_name = ctx.get("model")

    tids = ctx.read_labels(intable, tid_column)
    items = ctx.read_labels(intable, item_column)
    baskets_map: dict[object, set] = {}
    for tid, item in zip(tids, items):
        if tid is None or item is None:
            continue
        baskets_map.setdefault(tid, set()).add(item)
    baskets = list(baskets_map.values())
    frequent = apriori_frequent_itemsets(baskets, min_support, max_size)
    rules = association_rules(frequent, min_confidence)

    ctx.create_output_table(
        outtable,
        [
            ("ANTECEDENT", VarcharType(256)),
            ("CONSEQUENT", VarcharType(256)),
            ("SUPPORT", DOUBLE),
            ("CONFIDENCE", DOUBLE),
            ("LIFT", DOUBLE),
        ],
    )
    ctx.insert_rows(
        outtable,
        [
            (
                ";".join(str(i) for i in rule.antecedent),
                ";".join(str(i) for i in rule.consequent),
                rule.support,
                rule.confidence,
                rule.lift,
            )
            for rule in rules
        ],
    )
    if model_name:
        ctx.system.models.register(
            Model(
                name=model_name,
                kind="ARULE",
                features=[item_column],
                payload={"rules": rules, "frequent": frequent},
                metrics={
                    "rules": len(rules),
                    "frequent_itemsets": len(frequent),
                    "baskets": len(baskets),
                },
                owner=ctx.connection.user.name,
            ),
            replace=True,
        )
    return (
        f"ARULE ok: baskets={len(baskets)}, "
        f"itemsets={len(frequent)}, rules={len(rules)}"
    )

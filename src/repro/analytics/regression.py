"""Linear regression (least squares) and its scoring procedure."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics import uda
from repro.analytics.framework import ProcedureContext
from repro.analytics.model_store import Model
from repro.errors import AnalyticsError
from repro.sql.types import DOUBLE

__all__ = [
    "LinRegAggregate",
    "LinRegResult",
    "linreg_fit",
    "linreg_procedure",
    "predict_linreg",
]


@dataclass
class LinRegResult:
    intercept: float
    coefficients: np.ndarray
    r_squared: float
    rmse: float


def linreg_fit(matrix: np.ndarray, target: np.ndarray) -> LinRegResult:
    """Ordinary least squares with intercept via ``numpy.linalg.lstsq``."""
    if matrix.shape[0] != len(target):
        raise AnalyticsError("feature matrix and target length differ")
    if matrix.shape[0] == 0:
        raise AnalyticsError("cannot fit a regression on zero rows")
    design = np.column_stack([np.ones(matrix.shape[0]), matrix])
    solution, *_ = np.linalg.lstsq(design, target, rcond=None)
    predictions = design @ solution
    residuals = target - predictions
    ss_res = float((residuals**2).sum())
    ss_tot = float(((target - target.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    rmse = float(np.sqrt(ss_res / len(target)))
    return LinRegResult(
        intercept=float(solution[0]),
        coefficients=solution[1:],
        r_squared=r_squared,
        rmse=rmse,
    )


class LinRegAggregate(uda.ModelAggregate):
    """Least squares as a mergeable aggregate.

    The chunk's matrix carries the features with the target as its
    *last* column.  Epoch one accumulates the Gram matrix
    (``designᵀ·design``) and ``designᵀ·y`` — the sufficient statistics
    of OLS — then solves the normal equations (``lstsq`` fallback when
    singular).  Epoch two re-scans to accumulate the residual and total
    sums of squares for R²/RMSE.  The normal-equations solution agrees
    with :func:`linreg_fit`'s ``lstsq`` to roughly ``cond(X)²·ε``, which
    is far inside 1e-9 for reasonably conditioned features.
    """

    kind = "LINREG"

    def __init__(self, n_features: int) -> None:
        self.n_features = n_features
        self.phase = "gram"
        self._solution: np.ndarray = np.zeros(0)
        self.mean_y = 0.0
        self.rows = 0
        self._result: LinRegResult = None

    def init(self):
        if self.phase == "gram":
            size = self.n_features + 1
            return {
                "xtx": np.zeros((size, size)),
                "xty": np.zeros(size),
                "rows": 0,
                "sum_y": 0.0,
            }
        return {"ss_res": 0.0, "ss_tot": 0.0}

    def transition(self, state, chunk):
        features = chunk.matrix[:, :-1]
        target = chunk.matrix[:, -1]
        design = np.column_stack([np.ones(features.shape[0]), features])
        if self.phase == "gram":
            state["xtx"] += design.T @ design
            state["xty"] += design.T @ target
            state["rows"] += features.shape[0]
            state["sum_y"] += float(target.sum())
            return state
        residuals = target - design @ self._solution
        state["ss_res"] += float((residuals**2).sum())
        state["ss_tot"] += float(((target - self.mean_y) ** 2).sum())
        return state

    def merge(self, a, b):
        for key, value in b.items():
            a[key] = a[key] + value
        return a

    def finalize(self, state) -> bool:
        if self.phase == "gram":
            if state["rows"] == 0:
                raise AnalyticsError("cannot fit a regression on zero rows")
            try:
                self._solution = np.linalg.solve(state["xtx"], state["xty"])
            except np.linalg.LinAlgError:
                self._solution, *_ = np.linalg.lstsq(
                    state["xtx"], state["xty"], rcond=None
                )
            self.rows = state["rows"]
            self.mean_y = state["sum_y"] / state["rows"]
            self.phase = "score"
            return False
        ss_res, ss_tot = state["ss_res"], state["ss_tot"]
        self._result = LinRegResult(
            intercept=float(self._solution[0]),
            coefficients=self._solution[1:],
            r_squared=1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0,
            rmse=float(np.sqrt(ss_res / self.rows)),
        )
        return True

    def result(self) -> LinRegResult:
        return self._result


def linreg_predict(
    matrix: np.ndarray, intercept: float, coefficients: np.ndarray
) -> np.ndarray:
    return intercept + matrix @ coefficients


def linreg_procedure(ctx: ProcedureContext) -> str:
    """``CALL INZA.LINEAR_REGRESSION('intable=T, target=Y, model=M,
    incolumn=A;B, id=ID [, outtable=O]')``."""
    intable = ctx.require("intable").upper()
    target_column = ctx.require("target").upper()
    model_name = ctx.require("model")
    id_column = (ctx.get("id") or "").upper()

    features = ctx.column_list("incolumn")
    if features is None:
        schema = ctx.system.catalog.table(intable).schema
        features = [
            column.name
            for column in schema.columns
            if column.sql_type.is_numeric
            and column.name not in (target_column, id_column)
        ]
    if not features:
        raise AnalyticsError("no numeric feature columns to regress on")

    source = uda.TrainingSource.from_context(
        ctx, intable, features + [target_column]
    )
    aggregate = LinRegAggregate(len(features))
    report = uda.train(aggregate, source)
    result = aggregate.result()

    ctx.system.models.register(
        Model(
            name=model_name,
            kind="LINREG",
            features=features,
            target=target_column,
            payload={
                "intercept": result.intercept,
                "coefficients": result.coefficients,
            },
            metrics={"r_squared": result.r_squared, "rmse": result.rmse},
            owner=ctx.connection.user.name,
            rows_trained=report.rows,
            epochs_trained=report.epochs,
            trained_generation=ctx.system.catalog.generation,
        ),
        replace=True,
    )
    outtable = ctx.get("outtable")
    if outtable:
        # Coefficient table: one row per term, like INZA's model tables.
        ctx.create_output_table(
            outtable.upper(),
            [("TERM", _varchar(64)), ("COEFFICIENT", DOUBLE)],
        )
        rows = [("INTERCEPT", result.intercept)] + [
            (name, float(value))
            for name, value in zip(features, result.coefficients)
        ]
        ctx.insert_rows(outtable.upper(), rows)
    ctx.log(f"fit on {report.rows} rows, {len(features)} features")
    return (
        f"LINEAR_REGRESSION ok: r2={result.r_squared:.4f}, "
        f"rmse={result.rmse:.4f}"
    )


def predict_linreg(ctx: ProcedureContext) -> str:
    """``CALL INZA.PREDICT_LINEAR_REGRESSION('model=M, intable=T,
    outtable=O, id=ID')``."""
    model = ctx.system.models.get(ctx.require("model"))
    if model.kind != "LINREG":
        raise AnalyticsError(f"model {model.name} is not a LINREG model")
    intable = ctx.require("intable").upper()
    outtable = ctx.require("outtable").upper()
    id_column = ctx.require("id").upper()
    matrix = ctx.read_matrix(intable, model.features)
    ids = ctx.read_labels(intable, id_column)
    predictions = linreg_predict(
        matrix, model.payload["intercept"], model.payload["coefficients"]
    )
    id_type = ctx.system.catalog.table(intable).schema.column(id_column).sql_type
    ctx.create_output_table(
        outtable, [(id_column, id_type), ("PREDICTION", DOUBLE)]
    )
    ctx.insert_rows(
        outtable,
        [(ids[i], float(predictions[i])) for i in range(len(ids))],
    )
    return f"PREDICT_LINEAR_REGRESSION ok: scored {len(ids)} rows"


def _varchar(length: int):
    from repro.sql.types import VarcharType

    return VarcharType(length)

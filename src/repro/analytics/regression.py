"""Linear regression (least squares) and its scoring procedure."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.framework import ProcedureContext
from repro.analytics.model_store import Model
from repro.errors import AnalyticsError
from repro.sql.types import DOUBLE

__all__ = ["LinRegResult", "linreg_fit", "linreg_procedure", "predict_linreg"]


@dataclass
class LinRegResult:
    intercept: float
    coefficients: np.ndarray
    r_squared: float
    rmse: float


def linreg_fit(matrix: np.ndarray, target: np.ndarray) -> LinRegResult:
    """Ordinary least squares with intercept via ``numpy.linalg.lstsq``."""
    if matrix.shape[0] != len(target):
        raise AnalyticsError("feature matrix and target length differ")
    if matrix.shape[0] == 0:
        raise AnalyticsError("cannot fit a regression on zero rows")
    design = np.column_stack([np.ones(matrix.shape[0]), matrix])
    solution, *_ = np.linalg.lstsq(design, target, rcond=None)
    predictions = design @ solution
    residuals = target - predictions
    ss_res = float((residuals**2).sum())
    ss_tot = float(((target - target.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    rmse = float(np.sqrt(ss_res / len(target)))
    return LinRegResult(
        intercept=float(solution[0]),
        coefficients=solution[1:],
        r_squared=r_squared,
        rmse=rmse,
    )


def linreg_predict(
    matrix: np.ndarray, intercept: float, coefficients: np.ndarray
) -> np.ndarray:
    return intercept + matrix @ coefficients


def linreg_procedure(ctx: ProcedureContext) -> str:
    """``CALL INZA.LINEAR_REGRESSION('intable=T, target=Y, model=M,
    incolumn=A;B, id=ID [, outtable=O]')``."""
    intable = ctx.require("intable").upper()
    target_column = ctx.require("target").upper()
    model_name = ctx.require("model")
    id_column = (ctx.get("id") or "").upper()

    features = ctx.column_list("incolumn")
    if features is None:
        schema = ctx.system.catalog.table(intable).schema
        features = [
            column.name
            for column in schema.columns
            if column.sql_type.is_numeric
            and column.name not in (target_column, id_column)
        ]
    if not features:
        raise AnalyticsError("no numeric feature columns to regress on")

    matrix = ctx.read_matrix(intable, features)
    target = ctx.read_matrix(intable, [target_column])[:, 0]
    result = linreg_fit(matrix, target)

    ctx.system.models.register(
        Model(
            name=model_name,
            kind="LINREG",
            features=features,
            target=target_column,
            payload={
                "intercept": result.intercept,
                "coefficients": result.coefficients,
            },
            metrics={"r_squared": result.r_squared, "rmse": result.rmse},
            owner=ctx.connection.user.name,
        ),
        replace=True,
    )
    outtable = ctx.get("outtable")
    if outtable:
        # Coefficient table: one row per term, like INZA's model tables.
        ctx.create_output_table(
            outtable.upper(),
            [("TERM", _varchar(64)), ("COEFFICIENT", DOUBLE)],
        )
        rows = [("INTERCEPT", result.intercept)] + [
            (name, float(value))
            for name, value in zip(features, result.coefficients)
        ]
        ctx.insert_rows(outtable.upper(), rows)
    ctx.log(f"fit on {matrix.shape[0]} rows, {len(features)} features")
    return (
        f"LINEAR_REGRESSION ok: r2={result.r_squared:.4f}, "
        f"rmse={result.rmse:.4f}"
    )


def predict_linreg(ctx: ProcedureContext) -> str:
    """``CALL INZA.PREDICT_LINEAR_REGRESSION('model=M, intable=T,
    outtable=O, id=ID')``."""
    model = ctx.system.models.get(ctx.require("model"))
    if model.kind != "LINREG":
        raise AnalyticsError(f"model {model.name} is not a LINREG model")
    intable = ctx.require("intable").upper()
    outtable = ctx.require("outtable").upper()
    id_column = ctx.require("id").upper()
    matrix = ctx.read_matrix(intable, model.features)
    ids = ctx.read_labels(intable, id_column)
    predictions = linreg_predict(
        matrix, model.payload["intercept"], model.payload["coefficients"]
    )
    id_type = ctx.system.catalog.table(intable).schema.column(id_column).sql_type
    ctx.create_output_table(
        outtable, [(id_column, id_type), ("PREDICTION", DOUBLE)]
    )
    ctx.insert_rows(
        outtable,
        [(ids[i], float(predictions[i])) for i in range(len(ids))],
    )
    return f"PREDICT_LINEAR_REGRESSION ok: scored {len(ids)} rows"


def _varchar(length: int):
    from repro.sql.types import VarcharType

    return VarcharType(length)

"""Logistic regression via in-database SGD on the aggregate contract.

Bismarck-style incremental gradient descent expressed as a
:class:`~repro.analytics.uda.ModelAggregate`: each epoch's per-partition
state carries a *model replica* seeded from the previous epoch, the
transition folds one chunk of rows through single-example gradient steps
in scan order, and ``merge`` combines replicas by row-weighted model
averaging (the shared-nothing parallel-SGD scheme). That makes the
trainer shard-clean: per-shard partial models merge into one model
without shipping per-row data, and a sequential pass (one partition) is
plain SGD in deterministic layout order.

After the configured SGD epochs one extra scoring pass accumulates log
loss and accuracy, mirroring ``LinRegAggregate``'s two-phase shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics import uda
from repro.analytics.framework import ProcedureContext
from repro.analytics.model_store import Model
from repro.errors import AnalyticsError
from repro.sql.types import DOUBLE

__all__ = [
    "LogRegResult",
    "LogisticSGDAggregate",
    "logreg_procedure",
    "logreg_sgd_reference",
    "predict_logreg",
    "sigmoid",
]


def sigmoid(values: np.ndarray) -> np.ndarray:
    """Numerically stable elementwise logistic function."""
    values = np.asarray(values, dtype=np.float64)
    out = np.empty_like(values)
    positive = values >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-values[positive]))
    exp_v = np.exp(values[~positive])
    out[~positive] = exp_v / (1.0 + exp_v)
    return out


@dataclass
class LogRegResult:
    intercept: float
    coefficients: np.ndarray
    log_loss: float
    accuracy: float
    epochs: int


class LogisticSGDAggregate(uda.ModelAggregate):
    """Logistic regression trained by per-row SGD, merged by averaging.

    * SGD phase (``epochs`` passes): ``init`` hands every partition a
      copy of the current model; ``transition`` runs one gradient step
      per row (step size ``rate / (1 + decay * epoch)``); ``merge``
      averages replicas weighted by the rows each one absorbed, so an
      empty partition (weight 0) cannot drag the model back toward its
      seed.
    * Scoring phase (one pass): accumulates summed log loss and the
      correct-prediction count; those are plain sums, so merging is
      addition and partitioning cannot change the reported metrics.

    On a sequential pass the driver folds a single state and ``merge``
    never runs — training is then textbook SGD in layout scan order,
    which is what makes shard counts 1/2/4 produce identical models (the
    pool offers only unordered plans, which the epoch driver declines).
    """

    kind = "LOGREG"

    def __init__(
        self,
        n_features: int,
        epochs: int = 20,
        rate: float = 0.5,
        decay: float = 0.0,
    ) -> None:
        if epochs < 1:
            raise AnalyticsError("logistic SGD needs at least one epoch")
        if rate <= 0:
            raise AnalyticsError("learning rate must be positive")
        self.n_features = n_features
        self.sgd_epochs = epochs
        self.rate = rate
        self.decay = decay
        self.phase = "sgd"
        self.epoch = 0
        self.rows = 0
        self._weights = np.zeros(n_features + 1)
        self._result: LogRegResult = None

    def _step_size(self) -> float:
        return self.rate / (1.0 + self.decay * self.epoch)

    def init(self):
        if self.phase == "sgd":
            return {"weights": self._weights.copy(), "rows": 0}
        return {"log_loss": 0.0, "correct": 0, "rows": 0}

    def transition(self, state, chunk):
        features = chunk.matrix[:, :-1]
        target = chunk.matrix[:, -1]
        bad = ~((target == 0.0) | (target == 1.0))
        if bad.any():
            raise AnalyticsError(
                "logistic regression target must be 0/1; got "
                f"{target[bad][0]!r}"
            )
        if self.phase == "sgd":
            weights = state["weights"]
            step = self._step_size()
            for index in range(features.shape[0]):
                row = features[index]
                margin = weights[0] + float(np.dot(weights[1:], row))
                gradient = step * (
                    float(sigmoid(margin)) - float(target[index])
                )
                weights[0] -= gradient
                weights[1:] -= gradient * row
            state["rows"] += features.shape[0]
            return state
        # Scoring pass: same per-feature accumulation order as the
        # PREDICT scorer so the reported metrics match SQL-side scoring.
        margins = np.full(features.shape[0], self._weights[0])
        for j in range(self.n_features):
            margins += self._weights[j + 1] * features[:, j]
        probs = np.clip(sigmoid(margins), 1e-12, 1.0 - 1e-12)
        state["log_loss"] += float(
            -(target * np.log(probs) + (1.0 - target) * np.log(1.0 - probs)).sum()
        )
        state["correct"] += int(((probs >= 0.5) == (target == 1.0)).sum())
        state["rows"] += features.shape[0]
        return state

    def merge(self, a, b):
        if self.phase == "sgd":
            total = a["rows"] + b["rows"]
            if total > 0:
                a["weights"] = (
                    a["weights"] * a["rows"] + b["weights"] * b["rows"]
                ) / total
            a["rows"] = total
            return a
        for key, value in b.items():
            a[key] = a[key] + value
        return a

    def finalize(self, state) -> bool:
        if self.phase == "sgd":
            if state["rows"] == 0:
                raise AnalyticsError(
                    "cannot fit logistic regression on zero rows"
                )
            self._weights = state["weights"]
            self.rows = state["rows"]
            self.epoch += 1
            if self.epoch >= self.sgd_epochs:
                self.phase = "score"
            return False
        self._result = LogRegResult(
            intercept=float(self._weights[0]),
            coefficients=self._weights[1:],
            log_loss=state["log_loss"] / state["rows"],
            accuracy=state["correct"] / state["rows"],
            epochs=self.epoch,
        )
        return True

    def result(self) -> LogRegResult:
        return self._result


def logreg_sgd_reference(
    matrix: np.ndarray,
    target: np.ndarray,
    epochs: int = 20,
    rate: float = 0.5,
    decay: float = 0.0,
) -> np.ndarray:
    """Straight-line sequential SGD; oracle for the differential tests.

    Returns the weight vector (intercept first), reproducing exactly
    what the aggregate computes on a single sequential partition.
    """
    weights = np.zeros(matrix.shape[1] + 1)
    for epoch in range(epochs):
        step = rate / (1.0 + decay * epoch)
        for index in range(matrix.shape[0]):
            row = matrix[index]
            margin = weights[0] + float(np.dot(weights[1:], row))
            gradient = step * (float(sigmoid(margin)) - float(target[index]))
            weights[0] -= gradient
            weights[1:] -= gradient * row
    return weights


def logreg_procedure(ctx: ProcedureContext) -> str:
    """``CALL INZA.LOGISTIC_REGRESSION('intable=T, target=Y, model=M,
    incolumn=A;B, id=ID [, epochs=N, rate=R, decay=D, outtable=O]')``."""
    intable = ctx.require("intable").upper()
    target_column = ctx.require("target").upper()
    model_name = ctx.require("model")
    id_column = (ctx.get("id") or "").upper()
    epochs = ctx.get_int("epochs", 20)
    rate = ctx.get_float("rate", 0.5)
    decay = ctx.get_float("decay", 0.0)

    features = ctx.column_list("incolumn")
    if features is None:
        schema = ctx.system.catalog.table(intable).schema
        features = [
            column.name
            for column in schema.columns
            if column.sql_type.is_numeric
            and column.name not in (target_column, id_column)
        ]
    if not features:
        raise AnalyticsError("no numeric feature columns to train on")

    source = uda.TrainingSource.from_context(
        ctx, intable, features + [target_column]
    )
    aggregate = LogisticSGDAggregate(
        len(features), epochs=epochs, rate=rate, decay=decay
    )
    report = uda.train(aggregate, source)
    result = aggregate.result()

    ctx.system.models.register(
        Model(
            name=model_name,
            kind="LOGREG",
            features=features,
            target=target_column,
            payload={
                "intercept": result.intercept,
                "coefficients": result.coefficients,
            },
            metrics={
                "log_loss": result.log_loss,
                "accuracy": result.accuracy,
            },
            owner=ctx.connection.user.name,
            rows_trained=report.rows,
            epochs_trained=report.epochs,
            trained_generation=ctx.system.catalog.generation,
        ),
        replace=True,
    )
    outtable = ctx.get("outtable")
    if outtable:
        ctx.create_output_table(
            outtable.upper(),
            [("TERM", _varchar(64)), ("COEFFICIENT", DOUBLE)],
        )
        rows = [("INTERCEPT", result.intercept)] + [
            (name, float(value))
            for name, value in zip(features, result.coefficients)
        ]
        ctx.insert_rows(outtable.upper(), rows)
    ctx.log(
        f"fit on {report.rows} rows, {len(features)} features, "
        f"{result.epochs} SGD epochs"
    )
    return (
        f"LOGISTIC_REGRESSION ok: accuracy={result.accuracy:.4f}, "
        f"log_loss={result.log_loss:.4f}"
    )


def predict_logreg(ctx: ProcedureContext) -> str:
    """``CALL INZA.PREDICT_LOGISTIC_REGRESSION('model=M, intable=T,
    outtable=O, id=ID')`` — writes P(class=1) per row."""
    model = ctx.system.models.get(ctx.require("model"))
    if model.kind != "LOGREG":
        raise AnalyticsError(f"model {model.name} is not a LOGREG model")
    intable = ctx.require("intable").upper()
    outtable = ctx.require("outtable").upper()
    id_column = ctx.require("id").upper()
    matrix = ctx.read_matrix(intable, model.features)
    ids = ctx.read_labels(intable, id_column)
    margins = np.full(matrix.shape[0], float(model.payload["intercept"]))
    coefficients = np.asarray(model.payload["coefficients"], dtype=np.float64)
    for j in range(coefficients.shape[0]):
        margins += coefficients[j] * matrix[:, j]
    probabilities = sigmoid(margins)
    id_type = ctx.system.catalog.table(intable).schema.column(id_column).sql_type
    ctx.create_output_table(
        outtable, [(id_column, id_type), ("PROBABILITY", DOUBLE)]
    )
    ctx.insert_rows(
        outtable,
        [(ids[i], float(probabilities[i])) for i in range(len(ids))],
    )
    return f"PREDICT_LOGISTIC_REGRESSION ok: scored {len(ids)} rows"


def _varchar(length: int):
    from repro.sql.types import VarcharType

    return VarcharType(length)

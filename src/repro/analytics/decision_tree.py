"""CART-style decision tree (Gini impurity, binary numeric splits)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analytics import uda
from repro.analytics.framework import ProcedureContext
from repro.analytics.model_store import Model
from repro.errors import AnalyticsError
from repro.sql.types import DOUBLE, VarcharType

__all__ = [
    "DecisionTreeAggregate",
    "TreeNode",
    "decision_tree_fit",
    "decision_tree_predict",
    "decision_tree_procedure",
    "predict_decision_tree",
]


@dataclass
class TreeNode:
    """A node of the fitted tree; leaves carry a class prediction."""

    prediction: object
    #: Fraction of training rows at this node with the majority class.
    confidence: float
    feature: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["TreeNode"] = None  # feature <= threshold
    right: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + max(self.left.depth(), self.right.depth())

    def leaf_count(self) -> int:
        if self.is_leaf:
            return 1
        return self.left.leaf_count() + self.right.leaf_count()


def _gini(labels: np.ndarray) -> float:
    if len(labels) == 0:
        return 0.0
    __, counts = np.unique(labels, return_counts=True)
    proportions = counts / len(labels)
    return float(1.0 - (proportions**2).sum())


def _majority(labels: np.ndarray) -> tuple[object, float]:
    values, counts = np.unique(labels, return_counts=True)
    best = counts.argmax()
    return values[best], float(counts[best] / counts.sum())


def _best_split(
    matrix: np.ndarray, labels: np.ndarray, min_rows: int
) -> Optional[tuple[int, float, float]]:
    """(feature, threshold, gain) of the best Gini split, or None.

    All candidate cuts of one feature are evaluated in one vectorised
    pass using cumulative per-class counts (O(n·classes) per feature).
    """
    total = len(labels)
    classes, encoded = np.unique(labels, return_inverse=True)
    class_totals = np.bincount(encoded, minlength=len(classes)).astype(
        np.float64
    )
    parent_impurity = 1.0 - ((class_totals / total) ** 2).sum()
    best: Optional[tuple[int, float, float]] = None
    for feature in range(matrix.shape[1]):
        values = matrix[:, feature]
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        one_hot = np.zeros((total, len(classes)))
        one_hot[np.arange(total), encoded[order]] = 1.0
        prefix = one_hot.cumsum(axis=0)  # prefix[i] = counts of rows 0..i
        cuts = np.nonzero(np.diff(sorted_values))[0]
        if not len(cuts):
            continue
        left_n = (cuts + 1).astype(np.float64)
        right_n = total - left_n
        valid = (left_n >= min_rows) & (right_n >= min_rows)
        if not valid.any():
            continue
        cuts = cuts[valid]
        left_n = left_n[valid]
        right_n = right_n[valid]
        left_counts = prefix[cuts]
        right_counts = class_totals - left_counts
        left_impurity = 1.0 - ((left_counts / left_n[:, None]) ** 2).sum(axis=1)
        right_impurity = 1.0 - ((right_counts / right_n[:, None]) ** 2).sum(
            axis=1
        )
        weighted = (left_n * left_impurity + right_n * right_impurity) / total
        gains = parent_impurity - weighted
        winner = int(gains.argmax())
        gain = float(gains[winner])
        if gain > 1e-12 and (best is None or gain > best[2]):
            cut = int(cuts[winner])
            threshold = float(
                (sorted_values[cut] + sorted_values[cut + 1]) / 2.0
            )
            best = (feature, threshold, gain)
    return best


def decision_tree_fit(
    matrix: np.ndarray,
    labels: list[object],
    max_depth: int = 6,
    min_rows: int = 2,
) -> TreeNode:
    """Grow a binary classification tree."""
    if matrix.shape[0] != len(labels):
        raise AnalyticsError("feature matrix and label length differ")
    if matrix.shape[0] == 0:
        raise AnalyticsError("cannot fit a tree on zero rows")
    label_array = np.array(labels, dtype=object)

    def grow(rows: np.ndarray, depth: int) -> TreeNode:
        node_labels = label_array[rows]
        prediction, confidence = _majority(node_labels)
        if depth >= max_depth or len(rows) < 2 * min_rows or confidence == 1.0:
            return TreeNode(prediction=prediction, confidence=confidence)
        split = _best_split(matrix[rows], node_labels, min_rows)
        if split is None:
            return TreeNode(prediction=prediction, confidence=confidence)
        feature, threshold, __ = split
        goes_left = matrix[rows, feature] <= threshold
        return TreeNode(
            prediction=prediction,
            confidence=confidence,
            feature=feature,
            threshold=threshold,
            left=grow(rows[goes_left], depth + 1),
            right=grow(rows[~goes_left], depth + 1),
        )

    return grow(np.arange(matrix.shape[0]), depth=1)


def decision_tree_predict(
    matrix: np.ndarray, root: TreeNode
) -> tuple[list[object], list[float]]:
    predictions: list[object] = []
    confidences: list[float] = []
    for row in matrix:
        node = root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        predictions.append(node.prediction)
        confidences.append(node.confidence)
    return predictions, confidences


class DecisionTreeAggregate(uda.ModelAggregate):
    """Level-wise (PLANET-style) CART as a mergeable aggregate.

    One epoch grows one tree level.  ``transition`` routes chunk rows
    through the partially built tree to the current frontier nodes and
    builds, per (frontier node, feature), an *exact* histogram of
    distinct feature values × class counts.  Histograms merge by value
    union and integer addition, so the merged statistics are identical
    to what a single pass over the node's full row set would collect.
    ``finalize`` then replays :func:`_best_split` arithmetic over the
    histograms — cumulative per-class counts at every distinct-value
    boundary, in the same shapes, class order, and operation order as
    the reference, so thresholds and gains match bitwise and the grown
    tree is *structurally identical* to :func:`decision_tree_fit`.
    A final epoch scores the training accuracy through the finished
    tree.
    """

    kind = "DECTREE"

    def __init__(self, max_depth: int = 6, min_rows: int = 2) -> None:
        self.max_depth = max_depth
        self.min_rows = min_rows
        self.phase = "grow"
        self.root = TreeNode(prediction=None, confidence=0.0)
        self._frontier: dict[int, TreeNode] = {0: self.root}
        self._depths: dict[int, int] = {0: 1}
        self._frontier_ids: dict[int, int] = {id(self.root): 0}
        self._next_id = 1
        self._accuracy = 0.0

    # -- contract -----------------------------------------------------------

    def init(self):
        if self.phase == "grow":
            return {}
        return {"correct": 0, "total": 0}

    def transition(self, state, chunk):
        if self.phase != "grow":
            predictions, __ = decision_tree_predict(chunk.matrix, self.root)
            state["correct"] += sum(
                p == t for p, t in zip(predictions, chunk.labels)
            )
            state["total"] += chunk.rows
            return state
        routed = self._route(chunk)
        for fid in self._frontier:
            mask = routed == fid
            if not mask.any():
                continue
            labels = chunk.labels[mask]
            sub = chunk.matrix[mask]
            classes, encoded = np.unique(labels, return_inverse=True)
            class_counts = np.bincount(
                encoded, minlength=len(classes)
            ).astype(np.int64)
            hists = {}
            for feature in range(sub.shape[1]):
                values, inverse = np.unique(
                    sub[:, feature], return_inverse=True
                )
                combined = inverse * len(classes) + encoded
                counts = np.bincount(
                    combined, minlength=len(values) * len(classes)
                ).astype(np.int64)
                hists[feature] = (
                    values, counts.reshape(len(values), len(classes))
                )
            node_state = {
                "classes": list(classes),
                "counts": class_counts,
                "hists": hists,
            }
            if fid in state:
                state[fid] = _merge_node_state(state[fid], node_state)
            else:
                state[fid] = node_state
        return state

    def merge(self, a, b):
        if self.phase != "grow":
            a["correct"] += b["correct"]
            a["total"] += b["total"]
            return a
        for fid, node_state in b.items():
            if fid in a:
                a[fid] = _merge_node_state(a[fid], node_state)
            else:
                a[fid] = node_state
        return a

    def finalize(self, state) -> bool:
        if self.phase != "grow":
            self._accuracy = state["correct"] / state["total"]
            return True
        if not state:
            raise AnalyticsError("cannot fit a tree on zero rows")
        next_frontier: dict[int, TreeNode] = {}
        next_depths: dict[int, int] = {}
        next_ids: dict[int, int] = {}
        for fid in sorted(self._frontier):
            node = self._frontier[fid]
            depth = self._depths[fid]
            node_state = state.get(fid)
            if node_state is None:  # defensive: no rows reached this node
                continue
            counts = node_state["counts"]
            total = int(counts.sum())
            best = int(counts.argmax())
            node.prediction = node_state["classes"][best]
            node.confidence = float(counts[best] / counts.sum())
            if (
                depth >= self.max_depth
                or total < 2 * self.min_rows
                or node.confidence == 1.0
            ):
                continue
            split = self._best_split_from_stats(node_state, total)
            if split is None:
                continue
            node.feature, node.threshold = split
            node.left = TreeNode(prediction=None, confidence=0.0)
            node.right = TreeNode(prediction=None, confidence=0.0)
            for child in (node.left, node.right):
                child_id = self._next_id
                self._next_id += 1
                next_frontier[child_id] = child
                next_depths[child_id] = depth + 1
                next_ids[id(child)] = child_id
        self._frontier = next_frontier
        self._depths = next_depths
        self._frontier_ids = next_ids
        if not next_frontier:
            self.phase = "accuracy"
        return False

    def result(self) -> tuple[TreeNode, float]:
        return self.root, self._accuracy

    # -- internals ----------------------------------------------------------

    def _route(self, chunk) -> np.ndarray:
        """Frontier node id per chunk row (-1: ends at a finished leaf)."""
        routed = np.full(chunk.rows, -1, dtype=np.int64)
        stack = [(self.root, np.arange(chunk.rows))]
        while stack:
            node, indexes = stack.pop()
            if not indexes.size:
                continue
            fid = self._frontier_ids.get(id(node))
            if fid is not None:
                routed[indexes] = fid
                continue
            if node.is_leaf:
                continue
            goes_left = chunk.matrix[indexes, node.feature] <= node.threshold
            stack.append((node.left, indexes[goes_left]))
            stack.append((node.right, indexes[~goes_left]))
        return routed

    def _best_split_from_stats(self, node_state, total):
        """(feature, threshold) replaying :func:`_best_split` exactly.

        ``cum_counts`` at distinct-value boundaries equals the
        reference's sorted-row one-hot prefix sums at its cut indexes
        (exact integers either way), so every division, impurity sum,
        and the argmax tie-break see bitwise-identical operands.
        """
        class_totals = node_state["counts"].astype(np.float64)
        parent_impurity = 1.0 - ((class_totals / total) ** 2).sum()
        best = None
        for feature in sorted(node_state["hists"]):
            values, counts = node_state["hists"][feature]
            if len(values) < 2:
                continue
            cum_counts = counts.cumsum(axis=0)
            cum_rows = counts.sum(axis=1).cumsum()
            left_n = cum_rows[:-1].astype(np.float64)
            right_n = total - left_n
            valid = (left_n >= self.min_rows) & (right_n >= self.min_rows)
            if not valid.any():
                continue
            boundaries = np.nonzero(valid)[0]
            left_n = left_n[valid]
            right_n = right_n[valid]
            left_counts = cum_counts[:-1][valid].astype(np.float64)
            right_counts = class_totals - left_counts
            left_impurity = 1.0 - (
                (left_counts / left_n[:, None]) ** 2
            ).sum(axis=1)
            right_impurity = 1.0 - (
                (right_counts / right_n[:, None]) ** 2
            ).sum(axis=1)
            weighted = (
                left_n * left_impurity + right_n * right_impurity
            ) / total
            gains = parent_impurity - weighted
            winner = int(gains.argmax())
            gain = float(gains[winner])
            if gain > 1e-12 and (best is None or gain > best[2]):
                boundary = int(boundaries[winner])
                threshold = float(
                    (values[boundary] + values[boundary + 1]) / 2.0
                )
                best = (feature, threshold, gain)
        if best is None:
            return None
        return best[0], best[1]


def _merge_node_state(a, b):
    """Combine two per-node statistic sets (value union + integer adds)."""
    classes = sorted(set(a["classes"]) | set(b["classes"]))
    position = {cls: i for i, cls in enumerate(classes)}
    a_map = np.array([position[c] for c in a["classes"]], dtype=np.int64)
    b_map = np.array([position[c] for c in b["classes"]], dtype=np.int64)
    counts = np.zeros(len(classes), dtype=np.int64)
    counts[a_map] += a["counts"]
    counts[b_map] += b["counts"]
    hists = {}
    for feature in a["hists"]:
        a_values, a_counts = a["hists"][feature]
        b_values, b_counts = b["hists"][feature]
        values = np.union1d(a_values, b_values)
        merged = np.zeros((len(values), len(classes)), dtype=np.int64)
        merged[np.ix_(np.searchsorted(values, a_values), a_map)] += a_counts
        merged[np.ix_(np.searchsorted(values, b_values), b_map)] += b_counts
        hists[feature] = (values, merged)
    return {"classes": classes, "counts": counts, "hists": hists}


def decision_tree_procedure(ctx: ProcedureContext) -> str:
    """``CALL INZA.DECTREE('intable=T, class=Y, model=M, id=ID,
    maxdepth=6')``."""
    intable = ctx.require("intable").upper()
    class_column = ctx.require("class").upper()
    model_name = ctx.require("model")
    id_column = (ctx.get("id") or "").upper()
    max_depth = ctx.get_int("maxdepth", 6)
    min_rows = ctx.get_int("minsplit", 2)
    features = ctx.column_list("incolumn")
    if features is None:
        schema = ctx.system.catalog.table(intable).schema
        features = [
            column.name
            for column in schema.columns
            if column.sql_type.is_numeric
            and column.name not in (class_column, id_column)
        ]
    if not features:
        raise AnalyticsError("no numeric feature columns")
    source = uda.TrainingSource.from_context(
        ctx, intable, features, label_column=class_column
    )
    aggregate = DecisionTreeAggregate(max_depth=max_depth, min_rows=min_rows)
    report = uda.train(aggregate, source)
    root, accuracy = aggregate.result()
    ctx.system.models.register(
        Model(
            name=model_name,
            kind="DECTREE",
            features=features,
            target=class_column,
            payload={"root": root},
            metrics={
                "training_accuracy": accuracy,
                "depth": root.depth(),
                "leaves": root.leaf_count(),
            },
            owner=ctx.connection.user.name,
            rows_trained=report.rows,
            epochs_trained=report.epochs,
            trained_generation=ctx.system.catalog.generation,
        ),
        replace=True,
    )
    return (
        f"DECTREE ok: depth={root.depth()}, leaves={root.leaf_count()}, "
        f"accuracy={accuracy:.4f}"
    )


def predict_decision_tree(ctx: ProcedureContext) -> str:
    """``CALL INZA.PREDICT_DECTREE('model=M, intable=T, outtable=O,
    id=ID')``."""
    model = ctx.system.models.get(ctx.require("model"))
    if model.kind != "DECTREE":
        raise AnalyticsError(f"model {model.name} is not a DECTREE model")
    intable = ctx.require("intable").upper()
    outtable = ctx.require("outtable").upper()
    id_column = ctx.require("id").upper()
    matrix = ctx.read_matrix(intable, model.features)
    ids = ctx.read_labels(intable, id_column)
    predictions, confidences = decision_tree_predict(
        matrix, model.payload["root"]
    )
    id_type = ctx.system.catalog.table(intable).schema.column(id_column).sql_type
    ctx.create_output_table(
        outtable,
        [
            (id_column, id_type),
            ("PREDICTION", VarcharType(64)),
            ("CONFIDENCE", DOUBLE),
        ],
    )
    ctx.insert_rows(
        outtable,
        [
            (ids[i], str(predictions[i]), float(confidences[i]))
            for i in range(len(ids))
        ],
    )
    return f"PREDICT_DECTREE ok: scored {len(ids)} rows"

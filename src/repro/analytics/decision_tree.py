"""CART-style decision tree (Gini impurity, binary numeric splits)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analytics.framework import ProcedureContext
from repro.analytics.model_store import Model
from repro.errors import AnalyticsError
from repro.sql.types import DOUBLE, VarcharType

__all__ = [
    "TreeNode",
    "decision_tree_fit",
    "decision_tree_predict",
    "decision_tree_procedure",
    "predict_decision_tree",
]


@dataclass
class TreeNode:
    """A node of the fitted tree; leaves carry a class prediction."""

    prediction: object
    #: Fraction of training rows at this node with the majority class.
    confidence: float
    feature: Optional[int] = None
    threshold: Optional[float] = None
    left: Optional["TreeNode"] = None  # feature <= threshold
    right: Optional["TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def depth(self) -> int:
        if self.is_leaf:
            return 1
        return 1 + max(self.left.depth(), self.right.depth())

    def leaf_count(self) -> int:
        if self.is_leaf:
            return 1
        return self.left.leaf_count() + self.right.leaf_count()


def _gini(labels: np.ndarray) -> float:
    if len(labels) == 0:
        return 0.0
    __, counts = np.unique(labels, return_counts=True)
    proportions = counts / len(labels)
    return float(1.0 - (proportions**2).sum())


def _majority(labels: np.ndarray) -> tuple[object, float]:
    values, counts = np.unique(labels, return_counts=True)
    best = counts.argmax()
    return values[best], float(counts[best] / counts.sum())


def _best_split(
    matrix: np.ndarray, labels: np.ndarray, min_rows: int
) -> Optional[tuple[int, float, float]]:
    """(feature, threshold, gain) of the best Gini split, or None.

    All candidate cuts of one feature are evaluated in one vectorised
    pass using cumulative per-class counts (O(n·classes) per feature).
    """
    total = len(labels)
    classes, encoded = np.unique(labels, return_inverse=True)
    class_totals = np.bincount(encoded, minlength=len(classes)).astype(
        np.float64
    )
    parent_impurity = 1.0 - ((class_totals / total) ** 2).sum()
    best: Optional[tuple[int, float, float]] = None
    for feature in range(matrix.shape[1]):
        values = matrix[:, feature]
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        one_hot = np.zeros((total, len(classes)))
        one_hot[np.arange(total), encoded[order]] = 1.0
        prefix = one_hot.cumsum(axis=0)  # prefix[i] = counts of rows 0..i
        cuts = np.nonzero(np.diff(sorted_values))[0]
        if not len(cuts):
            continue
        left_n = (cuts + 1).astype(np.float64)
        right_n = total - left_n
        valid = (left_n >= min_rows) & (right_n >= min_rows)
        if not valid.any():
            continue
        cuts = cuts[valid]
        left_n = left_n[valid]
        right_n = right_n[valid]
        left_counts = prefix[cuts]
        right_counts = class_totals - left_counts
        left_impurity = 1.0 - ((left_counts / left_n[:, None]) ** 2).sum(axis=1)
        right_impurity = 1.0 - ((right_counts / right_n[:, None]) ** 2).sum(
            axis=1
        )
        weighted = (left_n * left_impurity + right_n * right_impurity) / total
        gains = parent_impurity - weighted
        winner = int(gains.argmax())
        gain = float(gains[winner])
        if gain > 1e-12 and (best is None or gain > best[2]):
            cut = int(cuts[winner])
            threshold = float(
                (sorted_values[cut] + sorted_values[cut + 1]) / 2.0
            )
            best = (feature, threshold, gain)
    return best


def decision_tree_fit(
    matrix: np.ndarray,
    labels: list[object],
    max_depth: int = 6,
    min_rows: int = 2,
) -> TreeNode:
    """Grow a binary classification tree."""
    if matrix.shape[0] != len(labels):
        raise AnalyticsError("feature matrix and label length differ")
    if matrix.shape[0] == 0:
        raise AnalyticsError("cannot fit a tree on zero rows")
    label_array = np.array(labels, dtype=object)

    def grow(rows: np.ndarray, depth: int) -> TreeNode:
        node_labels = label_array[rows]
        prediction, confidence = _majority(node_labels)
        if depth >= max_depth or len(rows) < 2 * min_rows or confidence == 1.0:
            return TreeNode(prediction=prediction, confidence=confidence)
        split = _best_split(matrix[rows], node_labels, min_rows)
        if split is None:
            return TreeNode(prediction=prediction, confidence=confidence)
        feature, threshold, __ = split
        goes_left = matrix[rows, feature] <= threshold
        return TreeNode(
            prediction=prediction,
            confidence=confidence,
            feature=feature,
            threshold=threshold,
            left=grow(rows[goes_left], depth + 1),
            right=grow(rows[~goes_left], depth + 1),
        )

    return grow(np.arange(matrix.shape[0]), depth=1)


def decision_tree_predict(
    matrix: np.ndarray, root: TreeNode
) -> tuple[list[object], list[float]]:
    predictions: list[object] = []
    confidences: list[float] = []
    for row in matrix:
        node = root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        predictions.append(node.prediction)
        confidences.append(node.confidence)
    return predictions, confidences


def decision_tree_procedure(ctx: ProcedureContext) -> str:
    """``CALL INZA.DECTREE('intable=T, class=Y, model=M, id=ID,
    maxdepth=6')``."""
    intable = ctx.require("intable").upper()
    class_column = ctx.require("class").upper()
    model_name = ctx.require("model")
    id_column = (ctx.get("id") or "").upper()
    max_depth = ctx.get_int("maxdepth", 6)
    min_rows = ctx.get_int("minsplit", 2)
    features = ctx.column_list("incolumn")
    if features is None:
        schema = ctx.system.catalog.table(intable).schema
        features = [
            column.name
            for column in schema.columns
            if column.sql_type.is_numeric
            and column.name not in (class_column, id_column)
        ]
    if not features:
        raise AnalyticsError("no numeric feature columns")
    matrix = ctx.read_matrix(intable, features)
    labels = ctx.read_labels(intable, class_column)
    if any(label is None for label in labels):
        raise AnalyticsError(f"class column {class_column} contains NULLs")
    root = decision_tree_fit(
        matrix, labels, max_depth=max_depth, min_rows=min_rows
    )
    predictions, __ = decision_tree_predict(matrix, root)
    accuracy = sum(p == t for p, t in zip(predictions, labels)) / len(labels)
    ctx.system.models.register(
        Model(
            name=model_name,
            kind="DECTREE",
            features=features,
            target=class_column,
            payload={"root": root},
            metrics={
                "training_accuracy": accuracy,
                "depth": root.depth(),
                "leaves": root.leaf_count(),
            },
            owner=ctx.connection.user.name,
        ),
        replace=True,
    )
    return (
        f"DECTREE ok: depth={root.depth()}, leaves={root.leaf_count()}, "
        f"accuracy={accuracy:.4f}"
    )


def predict_decision_tree(ctx: ProcedureContext) -> str:
    """``CALL INZA.PREDICT_DECTREE('model=M, intable=T, outtable=O,
    id=ID')``."""
    model = ctx.system.models.get(ctx.require("model"))
    if model.kind != "DECTREE":
        raise AnalyticsError(f"model {model.name} is not a DECTREE model")
    intable = ctx.require("intable").upper()
    outtable = ctx.require("outtable").upper()
    id_column = ctx.require("id").upper()
    matrix = ctx.read_matrix(intable, model.features)
    ids = ctx.read_labels(intable, id_column)
    predictions, confidences = decision_tree_predict(
        matrix, model.payload["root"]
    )
    id_type = ctx.system.catalog.table(intable).schema.column(id_column).sql_type
    ctx.create_output_table(
        outtable,
        [
            (id_column, id_type),
            ("PREDICTION", VarcharType(64)),
            ("CONFIDENCE", DOUBLE),
        ],
    )
    ctx.insert_rows(
        outtable,
        [
            (ids[i], str(predictions[i]), float(confidences[i]))
            for i in range(len(ids))
        ],
    )
    return f"PREDICT_DECTREE ok: scored {len(ids)} rows"

"""Bismarck-style unified aggregation core for in-database training.

Every trainer in ``repro.analytics`` is expressed as a
:class:`ModelAggregate` — the classic user-defined-aggregate contract
(``init`` / ``transition`` / ``merge`` / ``finalize``) popularised by
Bismarck for in-RDBMS machine learning.  One epoch of training is then
*exactly* a table scan: the epoch driver asks the accelerator for a
partitioned scan plan, runs ``transition`` over each partition's chunks
on the shared scan worker pool, merges the per-partition states in
partition order, and hands the merged state to ``finalize``.  When the
accelerator declines to parallelise (small table, active transaction
delta, armed fault rules) the same epoch runs as one sequential
whole-table chunk — the aggregates are written so both paths produce
numerically identical models.

Training epochs are admitted through workload management as
ANALYTICS-class work (one admission per epoch, released at the epoch
boundary, so a long training job cannot starve interactive statements),
honour the statement's work budget for cooperative cancellation at
chunk boundaries, and emit ``analytics.*`` spans, metrics, and one
profiler row per epoch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.accelerator.executor import run_partitioned_aggregate
from repro.errors import AnalyticsError, UnknownObjectError
from repro.obs.profile import OperatorStats
from repro.wlm.budget import current_budget

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analytics.framework import ProcedureContext

__all__ = [
    "ModelAggregate",
    "TrainingChunk",
    "TrainingReport",
    "TrainingSource",
    "train",
]


@dataclass
class TrainingChunk:
    """One batch of training data handed to ``transition``.

    ``matrix`` is the float64 feature matrix (rows × columns, in the
    source's declared column order); ``labels`` is an object array of
    class labels or ``None`` for unsupervised sources.
    """

    matrix: np.ndarray
    labels: Optional[np.ndarray]
    rows: int


@dataclass
class TrainingReport:
    """What the epoch driver did, for model metadata and telemetry."""

    rows: int = 0  # rows seen by the last full pass
    epochs: int = 0
    parallel_epochs: int = 0
    partitions: int = 0  # fan-out of the last parallel epoch
    #: Per parallel epoch, the elapsed seconds of each partition task as
    #: measured on the worker pool (sequential epochs contribute
    #: nothing). Elapsed, not CPU: when threads share cores the entries
    #: include interleaved time from sibling partitions, so they bound
    #: skew and stragglers but are not additive work.
    partition_seconds: list = field(default_factory=list)


class ModelAggregate:
    """The shared trainer contract.

    * ``init`` returns a fresh, empty per-partition state.
    * ``transition(state, chunk)`` folds one chunk into a state and
      returns it.  Chunks within a partition arrive in scan order.
    * ``merge(a, b)`` combines two states; ``a`` precedes ``b`` in scan
      order (the driver folds partition states left to right, so
      order-sensitive aggregates see the deterministic layout order).
    * ``finalize(state)`` consumes the merged state for this epoch and
      returns ``True`` when training is complete.  Multi-phase trainers
      (Lloyd iterations, level-wise tree growth, two-pass statistics)
      return ``False`` to request another epoch.
    * ``result()`` returns the fitted model once ``finalize`` returned
      ``True``.
    """

    kind = "MODEL"

    def init(self) -> object:
        raise NotImplementedError

    def transition(self, state: object, chunk: TrainingChunk) -> object:
        raise NotImplementedError

    def merge(self, a: object, b: object) -> object:
        raise NotImplementedError

    def finalize(self, state: object) -> bool:
        raise NotImplementedError

    def result(self) -> object:
        raise NotImplementedError


class TrainingSource:
    """A table-backed stream of :class:`TrainingChunk` batches.

    Captures the statement snapshot (epoch + own-transaction delta) at
    construction so every epoch sees the same rows, exactly like a
    repeated query would under snapshot isolation.  Column existence is
    validated once here; per-chunk NULL/type checks mirror
    ``ProcedureContext.read_matrix`` so the refactored trainers fail
    with byte-identical error messages.
    """

    def __init__(
        self,
        system,
        connection,
        table: str,
        matrix_columns: Sequence[str],
        label_column: Optional[str] = None,
    ) -> None:
        self.system = system
        self.table = table.upper()
        self.matrix_columns = [c.upper() for c in matrix_columns]
        self.label_column = (
            label_column.upper() if label_column is not None else None
        )
        self._engine = system.accelerator
        self._epoch = connection.snapshot_epoch_for_statement()
        self._delta = connection.active_deltas().get(self.table)
        wanted = list(self.matrix_columns)
        if self.label_column is not None and self.label_column not in wanted:
            wanted.append(self.label_column)
        self._columns = wanted
        available = set(
            system.catalog.table(self.table).schema.column_names
        )
        missing = [c for c in wanted if c not in available]
        if missing:
            raise UnknownObjectError(
                f"table {self.table} has no column(s) {', '.join(missing)}"
            )

    @classmethod
    def from_context(
        cls,
        ctx: "ProcedureContext",
        table: str,
        matrix_columns: Sequence[str],
        label_column: Optional[str] = None,
    ) -> "TrainingSource":
        return cls(ctx.system, ctx.connection, table, matrix_columns,
                   label_column)

    # -- scan plans ----------------------------------------------------------

    def partition_plan(self):
        """Parallel chunk-span plan, or ``None`` for sequential.

        Unordered (per-shard) plans are declined: the epoch driver's
        ordered left-to-right merge is part of the trainer contract, and
        shard order is not the single-instance scan order — training must
        stay numerically identical at every shard count, so a sharded
        pool trains over the sequential (layout-ordered) scan instead.
        """
        plan = self._engine.partition_scan(
            self.table, self._epoch, delta=self._delta, columns=self._columns
        )
        if plan is not None and not plan.ordered:
            return None
        return plan

    def sequential_columns(self) -> tuple[dict, int]:
        """The whole visible table as one column frame."""
        __, cols, length = self._engine.scan_snapshot(
            self.table, self._epoch, delta=self._delta, columns=self._columns
        )
        return cols, length

    # -- chunk construction --------------------------------------------------

    def build_chunk(self, columns: dict) -> TrainingChunk:
        arrays = []
        for name in self.matrix_columns:
            column = columns[name]
            if column.mask is not None and column.mask.any():
                raise AnalyticsError(
                    f"column {name} of {self.table} contains NULLs; "
                    "run INZA.IMPUTE first"
                )
            if column.values.dtype.kind not in "ifb":
                raise AnalyticsError(
                    f"column {name} of {self.table} is not numeric"
                )
            arrays.append(column.values.astype(np.float64))
        matrix = np.column_stack(arrays) if arrays else np.empty((0, 0))
        rows = matrix.shape[0]
        labels = None
        if self.label_column is not None:
            items = columns[self.label_column].to_objects()
            if any(value is None for value in items):
                raise AnalyticsError(
                    f"class column {self.label_column} contains NULLs"
                )
            labels = np.array(items, dtype=object)
            rows = len(items)
        return TrainingChunk(matrix=matrix, labels=labels, rows=rows)


# -- epoch driver -------------------------------------------------------------


def train(
    aggregate: ModelAggregate,
    source: TrainingSource,
    *,
    max_epochs: int = 1000,
) -> TrainingReport:
    """Drive ``aggregate`` over ``source`` until ``finalize`` says done.

    Each epoch is one full pass over the snapshot: partition-parallel on
    the scan worker pool when the accelerator offers a plan, sequential
    otherwise.  Epochs are admitted as ANALYTICS-class work and the
    statement budget is checked at every chunk boundary so cancellation
    lands between chunks, never mid-kernel.
    """
    system = source.system
    tracer = system.tracer
    metrics = system.metrics
    wlm = system.wlm
    profiler = system.profiler
    budget = current_budget()

    profile = None
    if profiler is not None and profiler.enabled:
        profile = profiler.begin_manual(
            f"TRAIN:{aggregate.kind}:{source.table}",
            engine="ACCELERATOR",
            generation=system.catalog.generation,
        )

    report = TrainingReport()
    train_started = time.perf_counter()
    failed = None
    with tracer.span(
        "analytics.train", model=aggregate.kind, table=source.table
    ) as train_span:
        try:
            done = False
            last_rows: Optional[int] = None
            while not done:
                if report.epochs >= max_epochs:
                    raise AnalyticsError(
                        f"{aggregate.kind} training on {source.table} did "
                        f"not converge within {max_epochs} epochs"
                    )
                if budget is not None:
                    budget.check()
                report.epochs += 1
                ticket = wlm.admit(
                    "ACCELERATOR",
                    "ANALYTICS",
                    estimated_rows=last_rows,
                    estimated_cost=None,
                    cheap=False,
                    budget=budget,
                )
                epoch_started = time.perf_counter()
                try:
                    with tracer.span(
                        "analytics.epoch",
                        model=aggregate.kind,
                        epoch=report.epochs,
                    ) as span:
                        state, rows, partitions, parallel, splits = (
                            _run_epoch(aggregate, source, budget)
                        )
                        if parallel:
                            report.partition_seconds.append(splits)
                        done = aggregate.finalize(state)
                        span.annotate(
                            rows=rows, partitions=partitions, parallel=parallel
                        )
                finally:
                    wlm.release(ticket)
                elapsed = time.perf_counter() - epoch_started
                last_rows = rows
                report.rows = rows
                report.partitions = partitions
                if parallel:
                    report.parallel_epochs += 1
                metrics.counter("analytics.epochs").inc()
                metrics.histogram("analytics.epoch_seconds").observe(elapsed)
                if profile is not None:
                    stats = OperatorStats(
                        path=f"1.{report.epochs}",
                        depth=1,
                        operator="TrainEpoch",
                        detail=(
                            f"{aggregate.kind} epoch {report.epochs} "
                            f"over {source.table}"
                        ),
                        engine="ACCELERATOR",
                        estimated_rows=rows,
                    )
                    stats.observe(rows, elapsed, rows_in=rows)
                    stats.parallel = parallel
                    stats.batches = max(partitions, 1)
                    profile.operators.append(stats)
            train_span.annotate(
                epochs=report.epochs,
                rows=report.rows,
                parallel_epochs=report.parallel_epochs,
            )
        except BaseException as exc:
            failed = type(exc).__name__
            raise
        finally:
            if profile is not None:
                if failed is not None:
                    profile.error = failed
                profiler.finish(
                    profile, time.perf_counter() - train_started
                )
    return report


def _run_epoch(aggregate, source, budget):
    """One full pass.

    Returns ``(state, rows, partitions, parallel, partition_seconds)``.
    """
    plan = source.partition_plan()
    if plan is not None:

        def partition_fn(row_ids, columns):
            chunk = source.build_chunk(columns)
            return aggregate.transition(aggregate.init(), chunk)

        states, rows, seconds = run_partitioned_aggregate(
            plan, partition_fn, budget=budget
        )
        merged = states[0]
        for state in states[1:]:
            merged = aggregate.merge(merged, state)
        return merged, rows, len(states), True, seconds

    if budget is not None:
        budget.check()
    columns, length = source.sequential_columns()
    chunk = source.build_chunk(columns)
    state = aggregate.transition(aggregate.init(), chunk)
    return state, length, 1, False, []

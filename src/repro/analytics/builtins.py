"""Registration of the built-in INZA-style procedure set."""

from __future__ import annotations

from repro.analytics.association import arule_procedure
from repro.analytics.decision_tree import (
    decision_tree_procedure,
    predict_decision_tree,
)
from repro.analytics.framework import Procedure, ProcedureContext, ProcedureRegistry
from repro.analytics.kmeans import kmeans_procedure, predict_kmeans
from repro.analytics.logistic import logreg_procedure, predict_logreg
from repro.analytics.naive_bayes import (
    naive_bayes_procedure,
    predict_naive_bayes,
)
from repro.analytics.regression import linreg_procedure, predict_linreg
from repro.analytics.transforms import (
    bin_procedure,
    correlation_procedure,
    impute_procedure,
    normalize_procedure,
    sample_procedure,
    split_data_procedure,
    summary_procedure,
)

__all__ = ["register_all", "BUILTIN_PROCEDURES"]


def _list_models(ctx: ProcedureContext) -> str:
    names = ctx.system.models.names()
    for name in names:
        model = ctx.system.models.get(name)
        ctx.log(f"{name} ({model.kind}) metrics={model.metrics}")
    return f"MODELS: {len(names)}"


def _drop_model(ctx: ProcedureContext) -> str:
    name = ctx.require("model")
    ctx.system.models.drop(name)
    return f"DROP_MODEL ok: {name.upper()}"


#: (name, handler, description, input params, output params)
BUILTIN_PROCEDURES: list[tuple] = [
    # Transformations (ELT stages).
    (
        "INZA.NORMALIZE",
        normalize_procedure,
        "z-score / min-max normalisation",
        ("intable",),
        ("outtable",),
    ),
    (
        "INZA.IMPUTE",
        impute_procedure,
        "NULL imputation (mean/median/constant)",
        ("intable",),
        ("outtable",),
    ),
    (
        "INZA.BIN",
        bin_procedure,
        "equal-width binning",
        ("intable",),
        ("outtable",),
    ),
    (
        "INZA.SAMPLE",
        sample_procedure,
        "deterministic random sampling",
        ("intable",),
        ("outtable",),
    ),
    (
        "INZA.SPLIT_DATA",
        split_data_procedure,
        "train/test split",
        ("intable",),
        ("traintable", "testtable"),
    ),
    (
        "INZA.SUMMARY",
        summary_procedure,
        "per-column statistics",
        ("intable",),
        ("outtable",),
    ),
    (
        "INZA.CORRELATION",
        correlation_procedure,
        "pairwise Pearson correlation matrix",
        ("intable",),
        ("outtable",),
    ),
    # Predictive algorithms.
    (
        "INZA.KMEANS",
        kmeans_procedure,
        "k-means clustering (k-means++)",
        ("intable",),
        ("outtable",),
    ),
    (
        "INZA.PREDICT_KMEANS",
        predict_kmeans,
        "score rows with a KMEANS model",
        ("intable",),
        ("outtable",),
    ),
    (
        "INZA.LINEAR_REGRESSION",
        linreg_procedure,
        "ordinary least squares regression",
        ("intable",),
        ("outtable",),
    ),
    (
        "INZA.PREDICT_LINEAR_REGRESSION",
        predict_linreg,
        "score rows with a LINREG model",
        ("intable",),
        ("outtable",),
    ),
    (
        "INZA.LOGISTIC_REGRESSION",
        logreg_procedure,
        "logistic regression (incremental-gradient SGD)",
        ("intable",),
        ("outtable",),
    ),
    (
        "INZA.PREDICT_LOGISTIC_REGRESSION",
        predict_logreg,
        "score rows with a LOGREG model (P of class 1)",
        ("intable",),
        ("outtable",),
    ),
    (
        "INZA.NAIVEBAYES",
        naive_bayes_procedure,
        "Gaussian naive Bayes",
        ("intable",),
        (),
    ),
    (
        "INZA.PREDICT_NAIVEBAYES",
        predict_naive_bayes,
        "score rows with a NAIVEBAYES model",
        ("intable",),
        ("outtable",),
    ),
    (
        "INZA.DECTREE",
        decision_tree_procedure,
        "CART decision tree (Gini)",
        ("intable",),
        (),
    ),
    (
        "INZA.PREDICT_DECTREE",
        predict_decision_tree,
        "score rows with a DECTREE model",
        ("intable",),
        ("outtable",),
    ),
    (
        "INZA.ARULE",
        arule_procedure,
        "Apriori association rules",
        ("intable",),
        ("outtable",),
    ),
    # Model management.
    ("INZA.LIST_MODELS", _list_models, "list stored models", (), ()),
    ("INZA.DROP_MODEL", _drop_model, "drop a stored model", (), ()),
]


def register_all(registry: ProcedureRegistry) -> None:
    """Register every built-in procedure with ``registry``."""
    for name, handler, description, inputs, outputs in BUILTIN_PROCEDURES:
        registry.register(
            Procedure(
                name=name,
                handler=handler,
                description=description,
                input_params=tuple(inputs),
                output_params=tuple(outputs),
            )
        )

"""In-database analytics framework (the paper's Section 3).

Arbitrary analytics operations are packaged as stored procedures invoked
through plain SQL ``CALL`` — completely transparent to applications. DB2
authorises every call (EXECUTE on the procedure, SELECT on the inputs,
INSERT/CREATE on the outputs) *before* delegating execution to the
accelerator, where the algorithms run directly on columnar data and
materialise their results as accelerator-only tables.

The built-in procedure set mirrors the shape of IBM Netezza Analytics
(INZA): data transformations (normalisation, binning, imputation,
sampling, train/test splitting) and predictive algorithms (k-means,
linear regression, naive Bayes, decision trees, association rules), plus
scoring procedures that apply stored models.
"""

from repro.analytics.framework import (
    Procedure,
    ProcedureContext,
    ProcedureRegistry,
    parse_parameter_string,
)

__all__ = [
    "Procedure",
    "ProcedureContext",
    "ProcedureRegistry",
    "parse_parameter_string",
]

"""Counters for the experiments.

The paper's central quantitative claim is about *data movement*: the
legacy ELT flow materialises every pipeline stage in DB2 and re-replicates
it to the accelerator, while AOTs keep intermediate data on the
accelerator. :class:`MovementStats` is the measurement unit the benchmarks
report.
"""

from __future__ import annotations

import datetime
import decimal
import time
from dataclasses import dataclass

__all__ = [
    "MovementStats",
    "ReplicationStats",
    "Timer",
    "estimate_rows_bytes",
    "estimate_value_bytes",
]


@dataclass(frozen=True)
class MovementStats:
    """Bytes and messages crossing the DB2 ↔ accelerator interconnect."""

    bytes_to_accelerator: int = 0
    bytes_from_accelerator: int = 0
    messages: int = 0
    simulated_seconds: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.bytes_to_accelerator + self.bytes_from_accelerator

    def clamped(self) -> "MovementStats":
        """This snapshot with negative fields floored at zero.

        A difference taken across an ``Interconnect.reset()`` would
        otherwise report negative movement.
        """
        return MovementStats(
            bytes_to_accelerator=max(0, self.bytes_to_accelerator),
            bytes_from_accelerator=max(0, self.bytes_from_accelerator),
            messages=max(0, self.messages),
            simulated_seconds=max(0.0, self.simulated_seconds),
        )

    def __sub__(self, other: "MovementStats") -> "MovementStats":
        return MovementStats(
            bytes_to_accelerator=self.bytes_to_accelerator
            - other.bytes_to_accelerator,
            bytes_from_accelerator=self.bytes_from_accelerator
            - other.bytes_from_accelerator,
            messages=self.messages - other.messages,
            simulated_seconds=self.simulated_seconds - other.simulated_seconds,
        )

    def __add__(self, other: "MovementStats") -> "MovementStats":
        return MovementStats(
            bytes_to_accelerator=self.bytes_to_accelerator
            + other.bytes_to_accelerator,
            bytes_from_accelerator=self.bytes_from_accelerator
            + other.bytes_from_accelerator,
            messages=self.messages + other.messages,
            simulated_seconds=self.simulated_seconds + other.simulated_seconds,
        )


@dataclass(frozen=True)
class ReplicationStats:
    """Replication backlog/staleness and resilience counters.

    ``backlog`` is the copy staleness in records (committed changes the
    accelerator has not seen yet); the retry counters describe how hard
    the drain loop has had to work to keep it down.
    """

    backlog: int = 0
    cursor_lsn: int = 1
    head_lsn: int = 1
    records_applied: int = 0
    batches_applied: int = 0
    records_skipped: int = 0
    retries: int = 0
    batches_abandoned: int = 0
    drains_skipped_offline: int = 0
    simulated_backoff_seconds: float = 0.0

    @property
    def staleness_records(self) -> int:
        """Alias for ``backlog`` under its experiment name."""
        return self.backlog


class Timer:
    """Context-manager stopwatch; re-entering accumulates splits."""

    def __init__(self) -> None:
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed += time.perf_counter() - self._start

    def reset(self) -> None:
        self.elapsed = 0.0


def estimate_value_bytes(value) -> int:
    """Serialized-size estimate of one value (schema-free path)."""
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, decimal.Decimal):
        return 16
    if isinstance(value, str):
        return 4 + len(value)
    if isinstance(value, datetime.datetime):
        return 10
    if isinstance(value, datetime.date):
        return 4
    return 16


def estimate_rows_bytes(rows) -> int:
    """Serialized-size estimate of a result set."""
    return sum(
        1 + estimate_value_bytes(value) for row in rows for value in row
    )

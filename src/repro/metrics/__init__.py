"""Instrumentation: movement counters and timing helpers."""

from repro.metrics.counters import MovementStats, Timer, estimate_rows_bytes

__all__ = ["MovementStats", "Timer", "estimate_rows_bytes"]

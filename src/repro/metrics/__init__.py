"""Instrumentation: movement counters and timing helpers."""

from repro.metrics.counters import (
    MovementStats,
    ReplicationStats,
    Timer,
    estimate_rows_bytes,
)

__all__ = ["MovementStats", "ReplicationStats", "Timer", "estimate_rows_bytes"]

"""Synthetic workload generators (deterministic, seeded).

These stand in for the paper's proprietary customer data:

* a retail **star schema** (customers, products, transactions) for the
  OLAP-offload and mixed-workload experiments;
* a **churn** feature table with a learnable signal for the predictive-
  analytics pipelines;
* a **social-media post stream** for the direct-ingestion use case the
  paper calls out ("enrich analytics e.g., with social media data").
"""

from repro.workloads.starschema import (
    StarSchemaData,
    create_star_schema,
    generate_customers,
    generate_products,
    generate_transactions,
)
from repro.workloads.churn import CHURN_COLUMNS, create_churn_table, generate_churn_rows
from repro.workloads.socialmedia import (
    SOCIAL_COLUMNS,
    generate_posts,
    write_posts_jsonl,
)

__all__ = [
    "StarSchemaData",
    "create_star_schema",
    "generate_customers",
    "generate_products",
    "generate_transactions",
    "CHURN_COLUMNS",
    "create_churn_table",
    "generate_churn_rows",
    "SOCIAL_COLUMNS",
    "generate_posts",
    "write_posts_jsonl",
]

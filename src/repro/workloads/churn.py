"""Churn feature table with a learnable signal.

The label is generated from a logistic score over the features plus
noise, so classifiers can realistically beat the base rate and the mining
pipelines have something to find.
"""

from __future__ import annotations

import math
import random

from repro.federation.system import Connection

__all__ = ["CHURN_COLUMNS", "generate_churn_rows", "create_churn_table"]

CHURN_DDL = """
CREATE TABLE CHURN (
    CUST_ID INTEGER NOT NULL PRIMARY KEY,
    TENURE_MONTHS INTEGER NOT NULL,
    MONTHLY_CHARGES DOUBLE NOT NULL,
    TOTAL_CHARGES DOUBLE,
    SUPPORT_CALLS INTEGER NOT NULL,
    CONTRACT_MONTHS INTEGER NOT NULL,
    CHURNED INTEGER NOT NULL
)
"""

CHURN_COLUMNS = (
    "CUST_ID",
    "TENURE_MONTHS",
    "MONTHLY_CHARGES",
    "TOTAL_CHARGES",
    "SUPPORT_CALLS",
    "CONTRACT_MONTHS",
    "CHURNED",
)


def generate_churn_rows(
    count: int, seed: int = 29, null_fraction: float = 0.03
) -> list[tuple]:
    """Rows matching :data:`CHURN_COLUMNS`.

    ``TOTAL_CHARGES`` has a NULL fraction so imputation stages have
    something to do.
    """
    rng = random.Random(seed)
    rows = []
    for cust_id in range(1, count + 1):
        tenure = rng.randint(1, 72)
        monthly = round(rng.uniform(20.0, 120.0), 2)
        support_calls = rng.randint(0, 9)
        contract = rng.choice((1, 12, 24))
        total = round(monthly * tenure * rng.uniform(0.9, 1.1), 2)
        # Churn propensity: short tenure, high charges, many support
        # calls, and month-to-month contracts drive churn.
        score = (
            -0.05 * tenure
            + 0.025 * (monthly - 70.0)
            + 0.45 * support_calls
            - 0.06 * contract
            + rng.gauss(0.0, 0.8)
        )
        churned = 1 if 1.0 / (1.0 + math.exp(-score)) > 0.5 else 0
        rows.append(
            (
                cust_id,
                tenure,
                monthly,
                None if rng.random() < null_fraction else total,
                support_calls,
                contract,
                churned,
            )
        )
    return rows


def create_churn_table(
    connection: Connection,
    count: int = 2000,
    seed: int = 29,
    accelerate: bool = True,
    batch: int = 1000,
) -> int:
    """Create and populate CHURN; optionally add it to the accelerator."""
    connection.execute(CHURN_DDL)
    rows = generate_churn_rows(count, seed)
    for start in range(0, len(rows), batch):
        chunk = rows[start : start + batch]
        values = ", ".join(
            "("
            + ", ".join("NULL" if v is None else repr(v) for v in row)
            + ")"
            for row in chunk
        )
        connection.execute(f"INSERT INTO CHURN VALUES {values}")
    if accelerate:
        connection.system.add_table_to_accelerator("CHURN")
    return len(rows)

"""Social-media post stream — the paper's direct-ingestion use case.

"allowing to ingest data from any other source directly to the
accelerator to enrich analytics e.g., with social media data" (abstract).
Posts are generated as row tuples or a JSON-lines file, mimicking a feed
that never touches the mainframe.
"""

from __future__ import annotations

import datetime
import json
import random
from pathlib import Path
from typing import Iterator, Union

__all__ = ["SOCIAL_COLUMNS", "SOCIAL_DDL", "generate_posts", "write_posts_jsonl"]

SOCIAL_COLUMNS = (
    "POST_ID",
    "HANDLE",
    "REGION",
    "TOPIC",
    "SENTIMENT",
    "LIKES",
    "POSTED_AT",
)

#: AOT DDL for the posts table (note IN ACCELERATOR).
SOCIAL_DDL = """
CREATE TABLE SOCIAL_POSTS (
    POST_ID INTEGER NOT NULL,
    HANDLE VARCHAR(24) NOT NULL,
    REGION VARCHAR(4) NOT NULL,
    TOPIC VARCHAR(16) NOT NULL,
    SENTIMENT DOUBLE NOT NULL,
    LIKES INTEGER NOT NULL,
    POSTED_AT TIMESTAMP NOT NULL
) IN ACCELERATOR
"""

_TOPICS = ("PRICING", "SUPPORT", "OUTAGE", "FEATURE", "PRAISE")
_REGIONS = ("EU", "US", "AP", "LA")


def generate_posts(count: int, seed: int = 41) -> Iterator[tuple]:
    """Yield post rows matching :data:`SOCIAL_COLUMNS`."""
    rng = random.Random(seed)
    base = datetime.datetime(2015, 6, 1, 0, 0, 0)
    for post_id in range(1, count + 1):
        topic = rng.choice(_TOPICS)
        # Sentiment skews by topic: outages are angry, praise is happy.
        center = {"OUTAGE": -0.6, "SUPPORT": -0.2, "PRICING": -0.1,
                  "FEATURE": 0.2, "PRAISE": 0.7}[topic]
        sentiment = max(-1.0, min(1.0, rng.gauss(center, 0.3)))
        yield (
            post_id,
            f"user_{rng.randint(1, max(10, count // 5))}",
            rng.choice(_REGIONS),
            topic,
            round(sentiment, 4),
            max(0, int(rng.expovariate(1 / 20.0))),
            base + datetime.timedelta(minutes=post_id),
        )


def write_posts_jsonl(
    path: Union[str, Path], count: int, seed: int = 41
) -> Path:
    """Write a JSON-lines feed file (for the JsonLinesSource tests)."""
    path = Path(path)
    with open(path, "w") as handle:
        for row in generate_posts(count, seed):
            record = dict(zip((c.lower() for c in SOCIAL_COLUMNS), row))
            record["posted_at"] = row[-1].strftime("%Y-%m-%d %H:%M:%S")
            handle.write(json.dumps(record) + "\n")
    return path

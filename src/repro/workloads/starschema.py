"""Retail star schema: CUSTOMERS, PRODUCTS, TRANSACTIONS."""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass

from repro.federation.system import Connection

__all__ = [
    "StarSchemaData",
    "generate_customers",
    "generate_products",
    "generate_transactions",
    "create_star_schema",
]

_REGIONS = ("EU", "US", "AP", "LA")
_SEGMENTS = ("CONSUMER", "CORPORATE", "SMB")
_CATEGORIES = ("GROCERY", "ELECTRONICS", "CLOTHING", "HOME", "SPORTS")

CUSTOMER_DDL = """
CREATE TABLE CUSTOMERS (
    C_ID INTEGER NOT NULL PRIMARY KEY,
    C_NAME VARCHAR(32) NOT NULL,
    C_REGION VARCHAR(4) NOT NULL,
    C_SEGMENT VARCHAR(16) NOT NULL,
    C_INCOME DOUBLE
)
"""

PRODUCT_DDL = """
CREATE TABLE PRODUCTS (
    P_ID INTEGER NOT NULL PRIMARY KEY,
    P_NAME VARCHAR(32) NOT NULL,
    P_CATEGORY VARCHAR(16) NOT NULL,
    P_PRICE DOUBLE NOT NULL
)
"""

TRANSACTION_DDL = """
CREATE TABLE TRANSACTIONS (
    T_ID INTEGER NOT NULL PRIMARY KEY,
    T_CUSTOMER INTEGER NOT NULL,
    T_PRODUCT INTEGER NOT NULL,
    T_QUANTITY INTEGER NOT NULL,
    T_AMOUNT DOUBLE NOT NULL,
    T_DATE DATE NOT NULL
)
"""


@dataclass
class StarSchemaData:
    customers: int
    products: int
    transactions: int


def generate_customers(count: int, seed: int = 7) -> list[tuple]:
    rng = random.Random(seed)
    rows = []
    for cid in range(1, count + 1):
        rows.append(
            (
                cid,
                f"Customer {cid}",
                rng.choice(_REGIONS),
                rng.choice(_SEGMENTS),
                # ~5% unknown incomes keep the NULL paths honest.
                round(rng.uniform(15_000, 180_000), 2)
                if rng.random() > 0.05
                else None,
            )
        )
    return rows


def generate_products(count: int, seed: int = 11) -> list[tuple]:
    rng = random.Random(seed)
    return [
        (
            pid,
            f"Product {pid}",
            rng.choice(_CATEGORIES),
            round(rng.uniform(1.5, 900.0), 2),
        )
        for pid in range(1, count + 1)
    ]


def generate_transactions(
    count: int,
    customer_count: int,
    product_count: int,
    seed: int = 13,
) -> list[tuple]:
    rng = random.Random(seed)
    base_date = datetime.date(2015, 1, 1)
    rows = []
    for tid in range(1, count + 1):
        quantity = rng.randint(1, 8)
        unit_price = rng.uniform(1.5, 900.0)
        rows.append(
            (
                tid,
                rng.randint(1, customer_count),
                rng.randint(1, product_count),
                quantity,
                round(quantity * unit_price, 2),
                base_date + datetime.timedelta(days=rng.randint(0, 364)),
            )
        )
    return rows


def create_star_schema(
    connection: Connection,
    customers: int = 500,
    products: int = 100,
    transactions: int = 5000,
    seed: int = 7,
    accelerate: bool = True,
    batch: int = 1000,
) -> StarSchemaData:
    """Create and populate the star schema through plain SQL.

    With ``accelerate=True`` all three tables get accelerator copies
    afterwards (the standard IDAA setup for reporting workloads).
    """
    connection.execute(CUSTOMER_DDL)
    connection.execute(PRODUCT_DDL)
    connection.execute(TRANSACTION_DDL)
    _bulk_insert(connection, "CUSTOMERS", generate_customers(customers, seed), batch)
    _bulk_insert(connection, "PRODUCTS", generate_products(products, seed + 1), batch)
    _bulk_insert(
        connection,
        "TRANSACTIONS",
        generate_transactions(transactions, customers, products, seed + 2),
        batch,
    )
    if accelerate:
        system = connection.system
        for table in ("CUSTOMERS", "PRODUCTS", "TRANSACTIONS"):
            system.add_table_to_accelerator(table)
    return StarSchemaData(customers, products, transactions)


def _bulk_insert(
    connection: Connection, table: str, rows: list[tuple], batch: int
) -> None:
    for start in range(0, len(rows), batch):
        chunk = rows[start : start + batch]
        values = ", ".join(_render_row(row) for row in chunk)
        connection.execute(f"INSERT INTO {table} VALUES {values}")


def _render_row(row: tuple) -> str:
    parts = []
    for value in row:
        if value is None:
            parts.append("NULL")
        elif isinstance(value, str):
            escaped = value.replace("'", "''")
            parts.append(f"'{escaped}'")
        elif isinstance(value, datetime.date):
            # DATE columns coerce ISO strings on insert.
            parts.append(f"'{value.isoformat()}'")
        else:
            parts.append(repr(value))
    return "(" + ", ".join(parts) + ")"

"""Privilege management — the DB2 side of the paper's data governance.

Section 3 of the paper requires that delegating analytics to the
accelerator must not bypass DB2's privilege management: DB2 authorises
every statement (including CALLs into the analytics framework) *before*
anything reaches the accelerator. This module is that gate.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable

from repro.errors import AuthorizationError, UnknownObjectError

__all__ = ["Privilege", "PrivilegeManager"]


class Privilege(Enum):
    """Privileges grantable on tables and procedures."""

    SELECT = "SELECT"
    INSERT = "INSERT"
    UPDATE = "UPDATE"
    DELETE = "DELETE"
    EXECUTE = "EXECUTE"
    LOAD = "LOAD"

    @staticmethod
    def from_name(name: str) -> "Privilege":
        try:
            return Privilege(name.upper())
        except ValueError:
            raise UnknownObjectError(f"unknown privilege {name}") from None


#: Privileges implied by GRANT ALL on a table.
TABLE_PRIVILEGES = (
    Privilege.SELECT,
    Privilege.INSERT,
    Privilege.UPDATE,
    Privilege.DELETE,
    Privilege.LOAD,
)


class PrivilegeManager:
    """Tracks grants of (user, privilege, object) triples.

    Objects are identified by ``("TABLE", name)`` or ``("PROCEDURE", name)``
    keys; administrators bypass all checks (SYSADM semantics).
    """

    def __init__(self) -> None:
        self._grants: set[tuple[str, Privilege, tuple[str, str]]] = set()
        self.checks_performed = 0
        self.denials = 0

    def grant(
        self,
        user: str,
        privileges: Iterable[Privilege],
        object_type: str,
        object_name: str,
    ) -> None:
        key = (object_type.upper(), object_name)
        for privilege in privileges:
            self._grants.add((user, privilege, key))

    def revoke(
        self,
        user: str,
        privileges: Iterable[Privilege],
        object_type: str,
        object_name: str,
    ) -> None:
        key = (object_type.upper(), object_name)
        for privilege in privileges:
            self._grants.discard((user, privilege, key))

    def has_privilege(
        self,
        user: str,
        privilege: Privilege,
        object_type: str,
        object_name: str,
        is_admin: bool = False,
    ) -> bool:
        self.checks_performed += 1
        if is_admin:
            return True
        key = (object_type.upper(), object_name)
        return (user, privilege, key) in self._grants

    def check(
        self,
        user: str,
        privilege: Privilege,
        object_type: str,
        object_name: str,
        is_admin: bool = False,
    ) -> None:
        """Raise :class:`AuthorizationError` unless the privilege is held."""
        if not self.has_privilege(user, privilege, object_type, object_name, is_admin):
            self.denials += 1
            raise AuthorizationError(
                f"user {user} lacks {privilege.value} on "
                f"{object_type.upper()} {object_name}"
            )

    def grants_for(self, user: str) -> list[tuple[Privilege, str, str]]:
        """All grants held by ``user`` (privilege, object type, object name)."""
        return sorted(
            (
                (privilege, key[0], key[1])
                for grant_user, privilege, key in self._grants
                if grant_user == user
            ),
            key=lambda grant: (grant[0].value, grant[1], grant[2]),
        )

    def drop_object(self, object_type: str, object_name: str) -> None:
        """Remove all grants on a dropped object."""
        key = (object_type.upper(), object_name)
        self._grants = {g for g in self._grants if g[2] != key}

"""Shared catalog: schemas, table placement, users, and privileges.

In the real system the DB2 catalog is the single source of truth — even an
accelerator-only table exists in DB2 as a proxy ("nickname") that carries
its metadata and routes statements. This package plays that role for the
simulation: one catalog instance is shared by the DB2 engine, the
accelerator, and the federation layer.
"""

from repro.catalog.schema import Column, TableSchema
from repro.catalog.catalog import (
    Catalog,
    TableDescriptor,
    TableLocation,
    User,
    ViewDescriptor,
)
from repro.catalog.privileges import Privilege, PrivilegeManager

__all__ = [
    "Column",
    "TableSchema",
    "Catalog",
    "TableDescriptor",
    "TableLocation",
    "User",
    "ViewDescriptor",
    "Privilege",
    "PrivilegeManager",
]

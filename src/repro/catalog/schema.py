"""Table schemas: ordered, typed, named columns."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import DuplicateObjectError, TypeError_, UnknownObjectError
from repro.sql.types import SqlType

__all__ = ["Column", "TableSchema"]


@dataclass(frozen=True)
class Column:
    """One column of a table schema."""

    name: str
    sql_type: SqlType
    nullable: bool = True
    primary_key: bool = False

    def coerce(self, value):
        """Type-check one value for this column (NULL constraint included)."""
        if value is None:
            if not self.nullable:
                raise TypeError_(f"column {self.name} does not accept NULL")
            return None
        return self.sql_type.coerce(value)


class TableSchema:
    """An ordered list of :class:`Column` with fast name lookup."""

    def __init__(self, columns: Sequence[Column]) -> None:
        if not columns:
            raise TypeError_("a table needs at least one column")
        self.columns = list(columns)
        self._index: dict[str, int] = {}
        for position, column in enumerate(self.columns):
            if column.name in self._index:
                raise DuplicateObjectError(f"duplicate column {column.name}")
            self._index[column.name] = position

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    @property
    def primary_key_columns(self) -> list[str]:
        return [c.name for c in self.columns if c.primary_key]

    def has_column(self, name: str) -> bool:
        return name in self._index

    def position_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise UnknownObjectError(f"unknown column {name}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.position_of(name)]

    def coerce_row(self, values: Sequence[object]) -> tuple:
        """Validate and convert a full-width row."""
        if len(values) != len(self.columns):
            raise TypeError_(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        return tuple(
            column.coerce(value) for column, value in zip(self.columns, values)
        )

    def coerce_partial(
        self, names: Sequence[str], values: Sequence[object]
    ) -> tuple:
        """Build a full-width row from a partial column list.

        Unnamed columns get NULL (and must therefore be nullable).
        """
        if len(names) != len(values):
            raise TypeError_("column list and value list lengths differ")
        row: list[object] = [None] * len(self.columns)
        for name, value in zip(names, values):
            row[self.position_of(name)] = value
        return self.coerce_row(row)

    def row_byte_size(self, row: Sequence[object]) -> int:
        """Estimated serialized size of one row (feeds the network model)."""
        total = 0
        for column, value in zip(self.columns, row):
            total += 1  # null indicator
            if value is not None:
                total += column.sql_type.byte_size(value)
        return total

    def render(self) -> str:
        """DDL-ish rendering, used in error messages and repr."""
        parts = []
        for column in self.columns:
            spec = f"{column.name} {column.sql_type.render()}"
            if not column.nullable:
                spec += " NOT NULL"
            parts.append(spec)
        return "(" + ", ".join(parts) + ")"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TableSchema{self.render()}"

    @staticmethod
    def from_pairs(pairs: Iterable[tuple[str, SqlType]]) -> "TableSchema":
        """Convenience constructor for tests and generators."""
        return TableSchema([Column(name, sql_type) for name, sql_type in pairs])

"""The shared catalog.

Every table known to the federation has exactly one
:class:`TableDescriptor` here, tagged with its placement:

* ``DB2_ONLY`` — data lives only in the DB2 row store;
* ``ACCELERATED`` — system of record in DB2, maintained snapshot copy on
  the accelerator (classic IDAA acceleration);
* ``ACCELERATOR_ONLY`` — the paper's AOT: data lives only on the
  accelerator, DB2 keeps this descriptor as the proxy/nickname.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.catalog.privileges import PrivilegeManager
from repro.catalog.schema import TableSchema
from repro.errors import DuplicateObjectError, UnknownObjectError

__all__ = [
    "TableLocation",
    "TableDescriptor",
    "ViewDescriptor",
    "User",
    "Catalog",
]


class TableLocation(Enum):
    DB2_ONLY = "DB2_ONLY"
    ACCELERATED = "ACCELERATED"
    ACCELERATOR_ONLY = "ACCELERATOR_ONLY"


@dataclass
class TableDescriptor:
    """Catalog entry for a table; doubles as the AOT nickname.

    For ``ACCELERATOR_ONLY`` tables this descriptor *is* the DB2-side proxy
    the paper describes: DB2 stores the metadata and uses the entry to
    delegate any statement on the table to the accelerator.
    """

    name: str
    schema: TableSchema
    location: TableLocation = TableLocation.DB2_ONLY
    distribute_on: Optional[list[str]] = None
    owner: str = "SYSADM"

    @property
    def is_aot(self) -> bool:
        return self.location is TableLocation.ACCELERATOR_ONLY

    @property
    def is_accelerated(self) -> bool:
        """True when the accelerator holds this table's data (copy or AOT)."""
        return self.location in (
            TableLocation.ACCELERATED,
            TableLocation.ACCELERATOR_ONLY,
        )

    @property
    def db2_resident(self) -> bool:
        """True when DB2 holds the data (system of record)."""
        return self.location in (
            TableLocation.DB2_ONLY,
            TableLocation.ACCELERATED,
        )


@dataclass
class ViewDescriptor:
    """A DB2-side view: stored query text + parsed form, no data."""

    name: str
    query: object  # ast.SelectStatement (kept loose to avoid the import)
    owner: str = "SYSADM"


@dataclass
class User:
    """A database user; ``is_admin`` models SYSADM authority."""

    name: str
    is_admin: bool = False


class Catalog:
    """Name → descriptor maps for tables and users, plus privileges."""

    def __init__(self) -> None:
        self._tables: dict[str, TableDescriptor] = {}
        self._views: dict[str, ViewDescriptor] = {}
        self._users: dict[str, User] = {}
        # Accelerator-pool partitioning specs, keyed by table name. Kept
        # opaque here (the catalog layers below repro.shard); the pool
        # interprets them. DB2-side metadata, so a declared DISTRIBUTE BY
        # survives an accelerator crash and drives the rebuilt placement.
        self._partition_specs: dict[str, object] = {}
        self.privileges = PrivilegeManager()
        #: Bumped on any DDL that can change a statement's plan (create/
        #: drop of tables or views, placement moves). Cached plans record
        #: the generation they were compiled under and are discarded when
        #: it no longer matches. Privilege changes do NOT bump it:
        #: authorisation is checked on every execution, cached or not.
        self.generation = 0
        # SYSADM always exists; it owns DDL in examples and tests.
        self.create_user("SYSADM", is_admin=True)

    # -- tables -------------------------------------------------------------

    def create_table(
        self,
        name: str,
        schema: TableSchema,
        location: TableLocation = TableLocation.DB2_ONLY,
        distribute_on: Optional[list[str]] = None,
        owner: str = "SYSADM",
    ) -> TableDescriptor:
        key = name.upper()
        if key in self._tables:
            raise DuplicateObjectError(f"table {key} already exists")
        if key in self._views:
            raise DuplicateObjectError(f"{key} already exists as a view")
        descriptor = TableDescriptor(
            name=key,
            schema=schema,
            location=location,
            distribute_on=distribute_on,
            owner=owner.upper(),
        )
        self._tables[key] = descriptor
        self.generation += 1
        return descriptor

    def drop_table(self, name: str) -> TableDescriptor:
        key = name.upper()
        descriptor = self.table(key)
        del self._tables[key]
        self._partition_specs.pop(key, None)
        self.privileges.drop_object("TABLE", key)
        self.generation += 1
        return descriptor

    def table(self, name: str) -> TableDescriptor:
        key = name.upper()
        try:
            return self._tables[key]
        except KeyError:
            raise UnknownObjectError(f"unknown table {key}") from None

    def has_table(self, name: str) -> bool:
        return name.upper() in self._tables

    def tables(self) -> list[TableDescriptor]:
        return sorted(self._tables.values(), key=lambda d: d.name)

    def set_location(self, name: str, location: TableLocation) -> None:
        self.table(name).location = location
        self.generation += 1

    def set_partition_spec(self, name: str, spec: object) -> None:
        """Record how an accelerated table distributes over pool shards."""
        key = self.table(name).name  # raises for unknown tables
        self._partition_specs[key] = spec
        self.generation += 1  # placement move: cached plans are stale

    def partition_spec(self, name: str) -> Optional[object]:
        return self._partition_specs.get(name.upper())

    # -- views ---------------------------------------------------------------

    def create_view(self, name: str, query, owner: str = "SYSADM"):
        key = name.upper()
        if key in self._views:
            raise DuplicateObjectError(f"view {key} already exists")
        if key in self._tables:
            raise DuplicateObjectError(f"{key} already exists as a table")
        descriptor = ViewDescriptor(name=key, query=query, owner=owner.upper())
        self._views[key] = descriptor
        self.generation += 1
        return descriptor

    def drop_view(self, name: str) -> "ViewDescriptor":
        key = name.upper()
        descriptor = self.view(key)
        del self._views[key]
        self.privileges.drop_object("TABLE", key)  # view grants share the space
        self.generation += 1
        return descriptor

    def view(self, name: str) -> "ViewDescriptor":
        key = name.upper()
        try:
            return self._views[key]
        except KeyError:
            raise UnknownObjectError(f"unknown view {key}") from None

    def has_view(self, name: str) -> bool:
        return name.upper() in self._views

    def views(self) -> list["ViewDescriptor"]:
        return sorted(self._views.values(), key=lambda d: d.name)

    # -- users ---------------------------------------------------------------

    def create_user(self, name: str, is_admin: bool = False) -> User:
        key = name.upper()
        if key in self._users:
            raise DuplicateObjectError(f"user {key} already exists")
        user = User(name=key, is_admin=is_admin)
        self._users[key] = user
        return user

    def user(self, name: str) -> User:
        key = name.upper()
        try:
            return self._users[key]
        except KeyError:
            raise UnknownObjectError(f"unknown user {key}") from None

    def has_user(self, name: str) -> bool:
        return name.upper() in self._users

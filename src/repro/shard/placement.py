"""The placement layer: which shard owns which rows of a table.

Every accelerated table (copy or AOT) in a pool deployment carries a
:class:`PartitionSpec` describing how its rows are spread over the
shards:

* ``HASH(c1, …)`` — rows are placed by a CRC32 hash of the key columns,
  the same hash the column store already uses for slice placement.
  Equality predicates on the full key prune the scan to one shard.
* ``RANGE(c)`` — rows are placed by comparing the single key column
  against an ascending boundary list (computed from data quantiles at
  ``ALTER TABLE … DISTRIBUTE BY`` time). Range predicates prune to the
  overlapping boundary intervals; NULL keys live on shard 0.
* ``RANDOM`` — round-robin by row id; no pruning.

The spec is stored in the shared catalog (it is DB2-side metadata, so it
survives an accelerator crash) and mirrored into the pool's per-table
shard map, whose ``generation`` bumps on every redistribution.

Pruning is advisory in exactly the zone-map sense: it may only drop
shards that cannot contain a matching row. The executor re-applies the
full predicate to whatever the scan returns, so an imprecise (``None``)
answer costs performance, never correctness.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import CatalogError

# Shard placement reuses the column store's row hash so HASH placement
# over the DISTRIBUTE BY columns lines up with slice placement.
from repro.storage.column_store import _hash_key

__all__ = [
    "PartitionSpec",
    "ShardMap",
    "default_spec",
    "range_boundaries",
]

_METHODS = ("HASH", "RANGE", "RANDOM")


@dataclass(frozen=True)
class PartitionSpec:
    """How one table's rows map to shard ids (immutable value object)."""

    method: str
    columns: tuple[str, ...] = ()
    #: RANGE only: strictly ascending split points. ``len(boundaries)+1``
    #: intervals map onto shards ``0 … len(boundaries)``.
    boundaries: tuple = ()

    def __post_init__(self) -> None:
        if self.method not in _METHODS:
            raise CatalogError(f"unknown distribution method {self.method}")
        if self.method == "HASH" and not self.columns:
            raise CatalogError("HASH distribution needs at least one column")
        if self.method == "RANGE" and len(self.columns) != 1:
            raise CatalogError("RANGE distribution takes exactly one column")
        if self.method == "RANDOM" and self.columns:
            raise CatalogError("RANDOM distribution takes no columns")
        if self.boundaries and self.method != "RANGE":
            raise CatalogError(
                f"{self.method} distribution takes no boundaries"
            )
        for a, b in zip(self.boundaries, self.boundaries[1:]):
            if not a < b:
                raise CatalogError("RANGE boundaries must be ascending")

    # -- row routing ---------------------------------------------------------

    def shard_for_row(
        self,
        row: Sequence[object],
        row_id: int,
        key_positions: Sequence[int],
        shards: int,
    ) -> int:
        """The shard that owns ``row`` (``key_positions`` index into it)."""
        if shards <= 1:
            return 0
        if self.method == "RANDOM":
            return int(row_id) % shards
        if self.method == "HASH":
            key = tuple(row[p] for p in key_positions)
            return _hash_key(key) % shards
        value = row[key_positions[0]]
        if value is None:
            # NULL range keys collect on shard 0 (DB2's NULLs-first).
            return 0
        return min(self._interval_of(value), shards - 1)

    def _interval_of(self, value: object) -> int:
        return bisect_right(self.boundaries, value)

    # -- shard pruning -------------------------------------------------------

    def prune(
        self,
        ranges: Optional[dict[str, tuple]],
        shards: int,
        schema,
    ) -> Optional[set[int]]:
        """Candidate shard ids for a scan, or ``None`` for "all shards".

        ``ranges`` is the executor's derived column-bounds dict (the same
        one zone maps consume): ``{column: (low, high)}`` with ``None``
        for an unbounded side. Conservative: any doubt returns ``None``.
        """
        if shards <= 1 or not ranges:
            return None
        if self.method == "HASH":
            key = []
            for name in self.columns:
                bounds = ranges.get(name)
                if bounds is None:
                    return None
                low, high = bounds
                if low is None or high is None:
                    return None
                try:
                    column = schema.column(name)
                    low = column.coerce(low)
                    high = column.coerce(high)
                    if not low == high:
                        return None
                except Exception:
                    return None
                key.append(low)
            return {_hash_key(tuple(key)) % shards}
        if self.method == "RANGE":
            bounds = ranges.get(self.columns[0])
            if bounds is None:
                return None
            low, high = bounds
            try:
                first = 0 if low is None else self._interval_of(low)
                last = (
                    shards - 1 if high is None else self._interval_of(high)
                )
            except TypeError:
                # Bound type incomparable with the boundaries: no pruning.
                return None
            first = min(first, shards - 1)
            last = min(last, shards - 1)
            # A NULL key can never satisfy a range predicate, so shard 0
            # is included only when the interval genuinely reaches it.
            return set(range(first, last + 1))
        return None


@dataclass
class ShardMap:
    """A table's live placement: spec + generation, one per facade.

    The generation bumps on every ``DISTRIBUTE BY`` redistribution so
    monitoring (and any cached placement decision) can tell a rebalanced
    map from the one it was computed against.
    """

    table: str
    spec: PartitionSpec
    generation: int = 1


def default_spec(descriptor) -> PartitionSpec:
    """Placement when no ``DISTRIBUTE BY`` was declared.

    Tables with a ``DISTRIBUTE ON`` clause hash on those columns (the
    natural reading: the declared distribution key governs both slice
    and shard placement); everything else round-robins by row id.
    """
    if descriptor.distribute_on:
        return PartitionSpec(
            "HASH", tuple(c.upper() for c in descriptor.distribute_on)
        )
    return PartitionSpec("RANDOM")


def range_boundaries(values: Sequence[object], shards: int) -> tuple:
    """Quantile split points for RANGE placement over ``values``.

    Positional quantiles (works for strings as well as numbers), with
    duplicates collapsed so the boundary list stays strictly ascending —
    heavily skewed keys simply produce fewer, wider intervals.
    """
    cleaned = sorted(v for v in values if v is not None)
    if not cleaned or shards <= 1:
        return ()
    count = len(cleaned)
    cuts: list = []
    for i in range(1, shards):
        value = cleaned[min(count - 1, (i * count) // shards)]
        value = value.item() if hasattr(value, "item") else value
        if not cuts or cuts[-1] < value:
            cuts.append(value)
    return tuple(cuts)

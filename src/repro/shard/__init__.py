"""Multi-accelerator scale-out: placement, fan-out execution, failover.

One accelerator appliance behind DB2 (the paper's deployment) caps scan
throughput at a single instance. This package generalises the federation
to a *pool* of N accelerator shards behind the same engine interface:

* :mod:`repro.shard.placement` — catalog-backed partitioning specs
  (HASH / RANGE / RANDOM) with shard-map generations and partition-key
  shard pruning;
* :mod:`repro.shard.pool` — :class:`AcceleratorPool`, a drop-in
  :class:`~repro.accelerator.engine.AcceleratorEngine` whose storage
  objects fan scans out per shard and merge them back byte-identically
  to single-instance execution, with a per-shard health circuit,
  interconnect link, and fault site for independent failure.
"""

from repro.shard.placement import (
    PartitionSpec,
    ShardMap,
    default_spec,
    range_boundaries,
)
from repro.shard.pool import (
    AcceleratorPool,
    AcceleratorShard,
    PoolAdmissionHealth,
    ShardedTable,
)

__all__ = [
    "AcceleratorPool",
    "AcceleratorShard",
    "PartitionSpec",
    "PoolAdmissionHealth",
    "ShardMap",
    "ShardedTable",
    "default_spec",
    "range_boundaries",
]

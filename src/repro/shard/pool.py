"""The accelerator pool: N shards behind the single-engine interface.

:class:`AcceleratorPool` subclasses
:class:`~repro.accelerator.engine.AcceleratorEngine` and swaps the
storage objects: instead of one :class:`ColumnStoreTable` per table it
keeps a :class:`ShardedTable` facade that spreads the rows over N
per-shard column stores by the table's
:class:`~repro.shard.placement.PartitionSpec`. Everything above the
storage surface — replication apply, DML, grooming, checkpoint capture,
snapshot scans, the vector executor — runs unchanged.

**Byte identity.** The facade keeps a coordinator-side *layout* table: a
``ColumnStoreTable`` with the same slice/chunk parameters as a
single-instance table but only the partition-key columns materialised.
Every append and delete is mirrored into it, so it assigns exactly the
row ids a single accelerator would and reproduces the single-instance
slice-major scan order. Reads fan out to the shards (with partition-key
shard pruning and per-shard zone maps), then reorder the gathered rows
into the layout order — so every downstream consumer sees the same
bytes at every shard count.

**Resilience.** Each shard owns a health circuit, an interconnect link,
and a fault site (``accelerator.shard<N>``). A failing shard raises
:class:`~repro.errors.ShardUnavailableError` — trip *its* circuit, not
the pool's — so statements over surviving shards keep being offloaded
while affected ones degrade to DB2. Writes fail fast *before* any
mutation, which keeps the replication service's exactly-once pinning
intact: an abandoned batch stays wholly unapplied.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from repro.accelerator.engine import (
    SCAN_ROWS_PER_SECOND,
    AcceleratorEngine,
    GroomStats,
    _partition_chunks,
)
from repro.accelerator.executor import ScanPartitions
from repro.catalog.schema import TableSchema
from repro.errors import ReproError, ShardUnavailableError
from repro.federation.health import HealthMonitor
from repro.federation.network import Interconnect
from repro.shard.placement import PartitionSpec, ShardMap, default_spec
from repro.sql.expressions import VColumn
from repro.storage.column_store import ColumnStoreTable

__all__ = [
    "AcceleratorPool",
    "AcceleratorShard",
    "PoolAdmissionHealth",
    "ShardedTable",
]


class AcceleratorShard:
    """One accelerator instance of the pool.

    Owns its table partitions, its own circuit breaker, its own
    byte-accounting interconnect link, and its own fault site so tests
    and operators can fail instances independently.
    """

    def __init__(
        self,
        shard_id: int,
        health: HealthMonitor,
        interconnect: Interconnect,
    ) -> None:
        self.shard_id = shard_id
        self.fault_site = f"accelerator.shard{shard_id}"
        self.health = health
        self.interconnect = interconnect
        #: False after a kill until the shard is rebuilt; unlike an open
        #: circuit this never half-opens on its own.
        self.alive = True
        self.tables: dict[str, ColumnStoreTable] = {}
        # Instrumentation (surfaced by SYSACCEL.MON_SHARDS).
        self.scans = 0
        self.rows_scanned = 0
        self.rows_written = 0
        self.simulated_busy_seconds = 0.0

    @property
    def row_count(self) -> int:
        return sum(part.row_count for part in self.tables.values())


class ShardedTable:
    """One accelerated table spread over every shard of the pool.

    Presents the exact ``ColumnStoreTable`` surface the engine uses
    (``append_rows`` / ``mark_deleted`` / ``read_visible`` /
    ``iter_chunks`` + the bookkeeping attributes), so the
    single-instance write, replication, groom, and recovery logic runs
    unchanged against a pool. See the module docstring for how the
    layout table makes sharded reads byte-identical.
    """

    def __init__(
        self,
        pool: "AcceleratorPool",
        name: str,
        schema: TableSchema,
        distribute_on: Optional[Sequence[str]],
        layout: ColumnStoreTable,
        parts: list[ColumnStoreTable],
        shard_map: ShardMap,
    ) -> None:
        self._pool = pool
        self.name = name
        self.schema = schema
        self.distribute_on = list(distribute_on or [])
        #: The ordering/visibility oracle (partition-key columns only).
        self.layout = layout
        #: Per-shard data partitions, indexed by shard id.
        self.parts = parts
        self.map = shard_map
        self.slice_count = layout.slice_count
        self.chunk_rows = layout.chunk_rows
        self.zone_maps_enabled = True
        self.last_scan_chunks_skipped = 0
        self.last_scan_chunks_total = 0
        #: Shards whose partition of this table was lost to a kill and
        #: not reloaded yet; scans touching one fail fast.
        self.lost_shards: set[int] = set()
        self._layout_positions = [
            schema.position_of(c.name) for c in layout.schema.columns
        ]
        self._key_positions = [
            schema.position_of(c) for c in shard_map.spec.columns
        ]

    def set_spec(self, spec: PartitionSpec) -> None:
        """Adopt a new placement spec (validates the key columns)."""
        self._key_positions = [
            self.schema.position_of(c) for c in spec.columns
        ]
        self.map.spec = spec
        self.map.generation += 1

    # -- bookkeeping surface -------------------------------------------------

    @property
    def row_count(self) -> int:
        return self.layout.row_count

    @property
    def total_chunk_count(self) -> int:
        return self.layout.total_chunk_count

    @property
    def _next_row_id(self) -> int:
        return self.layout._next_row_id

    def iter_chunks(self) -> Iterator:
        """Data chunks of every shard (order-insensitive consumers only)."""
        for part in self.parts:
            yield from part.iter_chunks()

    def byte_count(self, epoch: Optional[int] = None) -> int:
        return sum(part.byte_count(epoch) for part in self.parts)

    def fetch_rows(self, row_ids: Sequence[int]) -> list[tuple]:
        out = []
        for row_id in row_ids:
            for part in self.parts:
                if int(row_id) in part._locator:
                    out.extend(part.fetch_rows([row_id]))
                    break
            else:
                raise KeyError(int(row_id))
        return out

    # -- write path ----------------------------------------------------------

    def append_rows(
        self,
        rows: Sequence[tuple],
        epoch: int,
        row_ids: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Assign layout row ids, then route each row to its shard.

        The all-shards health check runs *before* any mutation so a dead
        shard aborts the batch atomically — replication's partial-batch
        pinning then redelivers it untouched once the shard is back.
        """
        rows = list(rows)
        pool = self._pool
        pool.require_write(self)
        key_rows = [
            tuple(row[p] for p in self._layout_positions) for row in rows
        ]
        assigned = self.layout.append_rows(key_rows, epoch, row_ids=row_ids)
        if not rows:
            return assigned
        spec = self.map.spec
        positions = self._key_positions
        buckets: dict[int, list[int]] = {}
        for index, row in enumerate(rows):
            shard_id = spec.shard_for_row(
                row, int(assigned[index]), positions, pool.shards
            )
            buckets.setdefault(shard_id, []).append(index)
        for shard_id in sorted(buckets):
            indexes = buckets[shard_id]
            shard = pool.shard(shard_id)
            self.parts[shard_id].append_rows(
                [rows[i] for i in indexes],
                epoch,
                row_ids=assigned[np.array(indexes, dtype=np.int64)],
            )
            shard.rows_written += len(indexes)
            shard.interconnect.send_to_accelerator(
                sum(self.schema.row_byte_size(rows[i]) for i in indexes)
            )
        return assigned

    def mark_deleted(self, row_ids: Sequence[int], epoch: int) -> int:
        """Broadcast the delete; each shard stamps only the ids it owns."""
        pool = self._pool
        pool.require_write(self)
        count = self.layout.mark_deleted(row_ids, epoch)
        for part in self.parts:
            part.mark_deleted(row_ids, epoch)
        return count

    def truncate(self, epoch: int) -> int:
        pool = self._pool
        pool.require_write(self)
        removed = self.layout.truncate(epoch)
        for part in self.parts:
            part.truncate(epoch)
        return removed

    # -- read path -----------------------------------------------------------

    def read_visible(
        self,
        epoch: int,
        columns: Optional[Sequence[str]] = None,
        ranges: Optional[dict[str, tuple]] = None,
    ) -> tuple[np.ndarray, dict[str, VColumn]]:
        """Fan the scan out per shard, merge back in layout order.

        The layout order list is *never* range-pruned (it must be a
        superset of every shard's matches); the per-shard scans get both
        partition-key shard pruning and their own zone maps. The
        intersection is therefore a superset of the predicate's matches
        in single-instance order, and the executor re-applies the full
        predicate — same bytes out at every shard count.
        """
        pool = self._pool
        wanted = (
            list(columns)
            if columns is not None
            else list(self.schema.column_names)
        )
        order_ids, _ = self.layout.read_visible(epoch, columns=[])
        scan_ids = pool.shards_for_ranges(self, ranges)
        gathered: list[tuple[np.ndarray, dict[str, VColumn]]] = []
        skipped = 0
        total = 0
        critical = 0.0
        for shard_id in scan_ids:
            pool.require_shard(shard_id, table=self)
            part = self.parts[shard_id]
            part.zone_maps_enabled = self.zone_maps_enabled
            ids, cols = part.read_visible(epoch, columns=wanted, ranges=ranges)
            skipped += part.last_scan_chunks_skipped
            total += part.last_scan_chunks_total
            shard = pool.shard(shard_id)
            busy = part.row_count / (
                SCAN_ROWS_PER_SECOND * max(1, part.slice_count)
            )
            shard.scans += 1
            shard.rows_scanned += len(ids)
            shard.simulated_busy_seconds += busy
            critical = max(critical, busy)
            if len(ids):
                # Modeled result shipping over the shard's own link.
                shard.interconnect.send_to_db2(8 * len(ids) * max(1, len(wanted)))
                gathered.append((ids, cols))
        self.last_scan_chunks_skipped = skipped
        self.last_scan_chunks_total = total
        pool.simulated_critical_path_seconds += critical
        return self._reorder(order_ids, gathered, wanted)

    def _reorder(
        self,
        order_ids: np.ndarray,
        gathered: list[tuple[np.ndarray, dict[str, VColumn]]],
        wanted: list[str],
    ) -> tuple[np.ndarray, dict[str, VColumn]]:
        if not gathered or not len(order_ids):
            empty = np.empty(0, dtype=np.int64)
            return empty, {
                name: self._empty_column(name) for name in wanted
            }
        merged_ids = np.concatenate([ids for ids, _ in gathered])
        sorter = np.argsort(merged_ids, kind="stable")
        sorted_ids = merged_ids[sorter]
        pos = np.searchsorted(sorted_ids, order_ids)
        pos = np.minimum(pos, len(sorted_ids) - 1)
        valid = sorted_ids[pos] == order_ids
        take = sorter[pos[valid]]
        row_ids = order_ids[valid]
        lengths = [len(ids) for ids, _ in gathered]
        out: dict[str, VColumn] = {}
        for name in wanted:
            values = _concat_arrays(
                [cols[name].values for _, cols in gathered]
            )[take]
            mask = _concat_masks(
                [cols[name].mask for _, cols in gathered], lengths
            )
            if mask is not None:
                mask = mask[take]
                if not mask.any():
                    mask = None
            out[name] = VColumn(values=values, mask=mask)
        return row_ids, out

    def _empty_column(self, name: str) -> VColumn:
        dtype = self.schema.column(name).sql_type.numpy_dtype
        return VColumn(values=np.empty(0, dtype=dtype))


def _concat_arrays(parts: list[np.ndarray]) -> np.ndarray:
    if len(parts) == 1:
        return parts[0]
    if len({p.dtype for p in parts}) == 1:
        return np.concatenate(parts)
    return np.concatenate([p.astype(object) for p in parts])


def _concat_masks(
    masks: list[Optional[np.ndarray]], lengths: list[int]
) -> Optional[np.ndarray]:
    if all(m is None for m in masks):
        return None
    return np.concatenate(
        [
            m if m is not None else np.zeros(n, dtype=bool)
            for m, n in zip(masks, lengths)
        ]
    )


class AcceleratorPool(AcceleratorEngine):
    """N accelerator shards behind the ``AcceleratorEngine`` interface."""

    def __init__(
        self,
        catalog,
        shards: int = 2,
        slice_count: int = 4,
        chunk_rows: int = 65536,
        fault_injector=None,
        tracer=None,
        metrics=None,
        parallel_workers: int = 4,
        failure_threshold: int = 3,
        cooldown_seconds: float = 0.1,
        bandwidth_bytes_per_second: float = 1_000_000_000.0,
        message_latency_seconds: float = 0.0005,
    ) -> None:
        if shards < 1:
            raise ReproError("an accelerator pool needs at least one shard")
        super().__init__(
            catalog,
            slice_count=slice_count,
            chunk_rows=chunk_rows,
            fault_injector=fault_injector,
            tracer=tracer,
            metrics=metrics,
            parallel_workers=parallel_workers,
        )
        self.shards = shards
        self._shard_list = [
            AcceleratorShard(
                shard_id,
                health=HealthMonitor(
                    failure_threshold=failure_threshold,
                    cooldown_seconds=cooldown_seconds,
                ),
                interconnect=Interconnect(
                    bandwidth_bytes_per_second=bandwidth_bytes_per_second,
                    message_latency_seconds=message_latency_seconds,
                    tracer=tracer,
                ),
            )
            for shard_id in range(shards)
        ]
        #: Serialises shard kill/rebuild against in-flight fan-outs.
        self._topology_lock = threading.Lock()
        #: Modeled wall-clock of the scan critical path: every fan-out
        #: adds the *slowest* shard's busy time, not the sum — the
        #: quantity E20 compares across shard counts.
        self.simulated_critical_path_seconds = 0.0
        #: Shard-scans avoided by partition-key pruning / attempted.
        self.shard_scans_pruned = 0
        self.shard_scans_total = 0
        #: Called with the live-shard count after a kill or rebuild so
        #: the WLM can resize the ACCELERATOR admission gate.
        self.capacity_listener: Optional[Callable[[int], None]] = None

    # -- shard access --------------------------------------------------------

    def shard(self, shard_id: int) -> AcceleratorShard:
        if not 0 <= shard_id < self.shards:
            raise ReproError(
                f"no shard {shard_id} (pool has {self.shards} shards)"
            )
        return self._shard_list[shard_id]

    @property
    def shard_list(self) -> list[AcceleratorShard]:
        return list(self._shard_list)

    @property
    def live_shards(self) -> int:
        return sum(1 for shard in self._shard_list if shard.alive)

    def require_shard(self, shard_id: int, table: Optional[ShardedTable] = None) -> None:
        """Admission check for one shard: liveness, circuit, fault site.

        Injected faults for the shard's site are re-raised as
        :class:`ShardUnavailableError` after tripping the *shard's*
        circuit — the pool-wide health monitor never hears about them.
        """
        shard = self.shard(shard_id)
        if table is not None and shard_id in table.lost_shards:
            raise ShardUnavailableError(
                shard_id,
                f"shard {shard_id} lost its partition of {table.name}; "
                "reload the table (ACCEL_CONTROL action=rebuild_shard)",
            )
        if not shard.alive:
            raise ShardUnavailableError(
                shard_id, f"accelerator shard {shard_id} is down"
            )
        if not shard.health.allow_request():
            raise ShardUnavailableError(
                shard_id,
                f"accelerator shard {shard_id} circuit is open",
            )
        if self.fault_injector is not None:
            try:
                self.fault_injector.check(shard.fault_site)
            except Exception as exc:
                shard.health.record_failure()
                raise ShardUnavailableError(shard_id, str(exc)) from exc
        shard.health.record_success()

    def require_write(self, table: ShardedTable) -> None:
        """Writes need every shard: placement may route rows anywhere."""
        if table.lost_shards:
            lost = min(table.lost_shards)
            raise ShardUnavailableError(
                lost,
                f"shard {lost} lost its partition of {table.name}; "
                "reload the table (ACCEL_CONTROL action=rebuild_shard)",
            )
        for shard in self._shard_list:
            self.require_shard(shard.shard_id)

    # -- placement -----------------------------------------------------------

    def _candidate_shards(
        self, table: ShardedTable, ranges: Optional[dict]
    ) -> list[int]:
        candidates = table.map.spec.prune(ranges, self.shards, table.schema)
        if candidates is None:
            return list(range(self.shards))
        return sorted(c for c in candidates if 0 <= c < self.shards)

    def shards_for_ranges(
        self, table: ShardedTable, ranges: Optional[dict]
    ) -> list[int]:
        kept = self._candidate_shards(table, ranges)
        self.shard_scans_total += self.shards
        self.shard_scans_pruned += self.shards - len(kept)
        return kept

    # -- storage / DDL -------------------------------------------------------

    def create_storage(self, descriptor) -> None:
        key = descriptor.name
        if key in self._tables:
            raise ReproError(f"accelerator storage for {key} already exists")
        spec = self.catalog.partition_spec(key)
        if spec is None:
            spec = default_spec(descriptor)
        self._tables[key] = self._build_facade(
            key, descriptor.schema, descriptor.distribute_on, spec
        )

    def drop_storage(self, name: str) -> None:
        super().drop_storage(name)
        for shard in self._shard_list:
            shard.tables.pop(name.upper(), None)

    def _build_facade(
        self,
        name: str,
        schema: TableSchema,
        distribute_on: Optional[Sequence[str]],
        spec: PartitionSpec,
        generation: int = 1,
    ) -> ShardedTable:
        # The layout table mirrors the single-instance table's slicing
        # parameters exactly (that is what makes its row ids and scan
        # order authoritative) but materialises only the partition-key
        # columns; a schema needs at least one column, so key-less
        # tables project their first column.
        if distribute_on:
            layout_columns = [schema.column(c) for c in distribute_on]
        else:
            layout_columns = [schema.columns[0]]
        layout = ColumnStoreTable(
            TableSchema(layout_columns),
            slice_count=self.slice_count,
            distribute_on=distribute_on,
            chunk_rows=self.chunk_rows,
        )
        parts = []
        for shard in self._shard_list:
            part = ColumnStoreTable(
                schema,
                slice_count=self.slice_count,
                distribute_on=distribute_on,
                chunk_rows=self.chunk_rows,
            )
            shard.tables[name] = part
            parts.append(part)
        return ShardedTable(
            self,
            name,
            schema,
            distribute_on,
            layout,
            parts,
            ShardMap(table=name, spec=spec, generation=generation),
        )

    # -- parallel scans ------------------------------------------------------

    def partition_scan(
        self,
        name: str,
        epoch: int,
        ranges: Optional[dict[str, tuple]] = None,
        delta=None,
        columns: Optional[Sequence[str]] = None,
    ) -> Optional[ScanPartitions]:
        """Per-shard (unordered) scan plan for partial aggregates.

        Mirrors the single-engine fallbacks (workers disabled, pending
        delta, armed faults, too small), plus pool-specific ones: a lost
        or unavailable target shard falls back to the sequential path so
        the failure fires deterministically through ``require_shard``.
        """
        if self.parallel_workers < 2:
            return None
        if delta is not None and not delta.is_empty:
            return None
        if self.fault_injector is not None:
            if self.fault_injector.rules("accelerator"):
                return None
            if any(
                self.fault_injector.rules(shard.fault_site)
                for shard in self._shard_list
            ):
                return None
        table = self.storage_for(name)
        if not isinstance(table, ShardedTable):  # pragma: no cover - safety
            return super().partition_scan(
                name, epoch, ranges=ranges, delta=delta, columns=columns
            )
        if table.lost_shards:
            return None
        scan_ids = self._candidate_shards(table, ranges)
        if any(
            not self._shard_list[i].alive
            or not self._shard_list[i].health.available
            for i in scan_ids
        ):
            return None
        wanted = list(columns) if columns is not None else None
        partitions = []
        busy_by_shard: dict[int, float] = {}
        skipped = 0
        total_rows = 0

        def make_gather(part, span_chunks):
            return lambda: part.gather_chunks(span_chunks, epoch, wanted)

        # Each shard's chunks split further into spans so the worker
        # pool stays saturated (and budget checkpoints stay frequent)
        # even when there are fewer shards than workers.
        spans_per_shard = max(1, self.parallel_workers // max(1, len(scan_ids)))
        for shard_id in scan_ids:
            part = table.parts[shard_id]
            part.zone_maps_enabled = self.zone_maps_enabled
            chunks = part.visible_chunks(ranges)
            skipped += part.last_scan_chunks_skipped
            if not chunks:
                continue
            total_rows += sum(len(chunk) for chunk in chunks)
            for span in _partition_chunks(chunks, spans_per_shard):
                partitions.append(make_gather(part, span))
            busy_by_shard[shard_id] = part.row_count / (
                SCAN_ROWS_PER_SECOND * max(1, part.slice_count)
            )
        if len(partitions) < 2:
            return None
        if total_rows < self.parallel_min_rows:
            return None

        def finish(rows_scanned: int) -> None:
            self.rows_scanned += rows_scanned
            self.chunks_skipped += skipped
            self.parallel_scans += 1
            critical = 0.0
            for shard_id, busy in busy_by_shard.items():
                shard = self._shard_list[shard_id]
                shard.scans += 1
                shard.simulated_busy_seconds += busy
                critical = max(critical, busy)
            self.simulated_busy_seconds += critical
            self.simulated_critical_path_seconds += critical

        return ScanPartitions(
            partitions=partitions,
            workers=self.parallel_workers,
            finish=finish,
            ordered=False,
        )

    # -- groom / recovery ----------------------------------------------------

    def _groom_locked(self, key: str, table) -> GroomStats:
        if not isinstance(table, ShardedTable):  # pragma: no cover - safety
            return super()._groom_locked(key, table)
        self._lookup_cache.pop(key, None)
        chunks_before = table.total_chunk_count
        row_ids, columns = table.read_visible(self.current_epoch)
        ordered = [columns[c.name] for c in table.schema.columns]
        object_columns = [col.to_objects() for col in ordered]
        rows = [
            tuple(values[i] for values in object_columns)
            for i in range(len(row_ids))
        ]
        reclaimed = sum(
            len(chunk) for _, chunk in table.layout.iter_chunks()
        ) - len(rows)
        fresh = self._build_facade(
            key,
            table.schema,
            table.distribute_on,
            table.map.spec,
            generation=table.map.generation,
        )
        fresh.layout._next_row_id = table.layout._next_row_id
        # Epoch 0 keeps the live rows visible to every snapshot.
        fresh.append_rows(rows, epoch=0, row_ids=row_ids)
        self._tables[key] = fresh
        return GroomStats(
            rows_reclaimed=reclaimed,
            chunks_before=chunks_before,
            chunks_after=fresh.total_chunk_count,
        )

    def wipe(self) -> None:
        super().wipe()
        for shard in self._shard_list:
            shard.tables.clear()

    def restore_table(
        self,
        descriptor,
        rows: Sequence[tuple],
        applied_lsn: int = 0,
        lineage_epoch: int = 0,
    ) -> int:
        key = descriptor.name
        with self._write_lock:
            self._lookup_cache.pop(key, None)
            spec = self.catalog.partition_spec(key)
            if spec is None:
                spec = default_spec(descriptor)
            facade = self._build_facade(
                key, descriptor.schema, descriptor.distribute_on, spec
            )
            self._tables[key] = facade
            if rows:
                facade.append_rows([tuple(r) for r in rows], epoch=0)
            if applied_lsn:
                self._applied_lsn[key] = applied_lsn
            if lineage_epoch:
                self._lineage[key] = lineage_epoch
        return len(rows)

    # -- shard lifecycle -----------------------------------------------------

    def kill_shard(self, shard_id: int) -> int:
        """Simulate one shard's appliance dying: its partitions are lost.

        Every facade remembers the loss, so any scan or write touching
        the dead shard fails fast with :class:`ShardUnavailableError`
        until the shard is rebuilt and its tables reloaded. Returns the
        number of rows that were resident on the shard.
        """
        shard = self.shard(shard_id)
        with self._write_lock:
            lost_rows = shard.row_count
            shard.alive = False
            shard.health.force_offline()
            for key, facade in self._tables.items():
                part = ColumnStoreTable(
                    facade.schema,
                    slice_count=self.slice_count,
                    distribute_on=facade.distribute_on,
                    chunk_rows=self.chunk_rows,
                )
                facade.parts[shard_id] = part
                facade.lost_shards.add(shard_id)
                shard.tables[key] = part
            self._lookup_cache.clear()
        self._notify_capacity()
        return lost_rows

    def revive_shard(self, shard_id: int) -> None:
        """Bring a killed shard back empty (its tables still need reloads)."""
        shard = self.shard(shard_id)
        shard.alive = True
        shard.health.reset()
        self._notify_capacity()

    def reload_facade(self, name: str) -> None:
        """Clear a table's lost-shard marks after a system-level reload."""
        table = self._tables.get(name.upper())
        if table is not None:
            table.lost_shards.clear()

    def _notify_capacity(self) -> None:
        listener = self.capacity_listener
        if listener is not None:
            listener(self.live_shards)

    # -- redistribution ------------------------------------------------------

    def redistribute(self, name: str, spec: PartitionSpec) -> int:
        """Re-place a table's live rows under a new partition spec.

        The layout table is untouched — row ids and scan order are
        placement-independent — only the per-shard partitions are
        rebuilt, with the same ids at epoch 0 (the groom trick: visible
        to every snapshot). Like GROOM, this must not run while
        transactions hold older snapshot epochs.
        """
        key = name.upper()
        table = self.storage_for(key)
        if not isinstance(table, ShardedTable):  # pragma: no cover - safety
            raise ReproError(f"{key} is not a sharded table")
        with self._write_lock:
            self.require_write(table)
            self._lookup_cache.pop(key, None)
            table.set_spec(spec)
            row_ids, columns = table.read_visible(self.current_epoch)
            ordered = [columns[c.name] for c in table.schema.columns]
            object_columns = [col.to_objects() for col in ordered]
            rows = [
                tuple(values[i] for values in object_columns)
                for i in range(len(row_ids))
            ]
            for shard in self._shard_list:
                part = ColumnStoreTable(
                    table.schema,
                    slice_count=self.slice_count,
                    distribute_on=table.distribute_on,
                    chunk_rows=self.chunk_rows,
                )
                table.parts[shard.shard_id] = part
                shard.tables[key] = part
            positions = table._key_positions
            buckets: dict[int, list[int]] = {}
            for index in range(len(rows)):
                shard_id = spec.shard_for_row(
                    rows[index], int(row_ids[index]), positions, self.shards
                )
                buckets.setdefault(shard_id, []).append(index)
            for shard_id in sorted(buckets):
                indexes = buckets[shard_id]
                table.parts[shard_id].append_rows(
                    [rows[i] for i in indexes],
                    epoch=0,
                    row_ids=row_ids[np.array(indexes, dtype=np.int64)],
                )
                self._shard_list[shard_id].rows_written += len(indexes)
        return len(rows)

    def range_key_values(self, name: str, column: str) -> list:
        """Non-NULL values of one column (boundary computation input)."""
        key = name.upper()
        table = self.storage_for(key)
        _, columns = table.read_visible(self.current_epoch, columns=[column])
        return [v for v in columns[column].to_objects() if v is not None]


class PoolAdmissionHealth:
    """WLM-facing health view over a sharded pool.

    The load shedder's only question is "is queueing accelerator work
    pointless right now?". For a pool the honest answer is per-shard:
    one dead shard must NOT shed statements — surviving shards keep
    serving offloaded work, and pruned scans may never touch the dead
    one — but a pool with *no* usable shard, or a globally open
    circuit, should bounce sheddable classes immediately.
    """

    def __init__(self, health: HealthMonitor, pool: AcceleratorPool) -> None:
        self.global_health = health
        self.pool = pool

    @property
    def available(self) -> bool:
        if not self.global_health.available:
            return False
        return any(
            shard.alive and shard.health.available
            for shard in self.pool.shard_list
        )

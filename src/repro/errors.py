"""Exception hierarchy for the accelerator reproduction.

Every error raised by the public API derives from :class:`ReproError` so
applications can catch one base class. The hierarchy mirrors the error
classes a DB2 + accelerator federation distinguishes: SQL compilation
problems, catalog/DDL problems, authorisation failures, transaction
conflicts, routing restrictions, and analytics-framework failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class LexerError(SqlError):
    """Raised when the input text cannot be tokenised."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SqlError):
    """Raised when a token stream does not form a valid statement."""


class TypeError_(SqlError):
    """Raised when a value cannot be coerced to a column's SQL type.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class CatalogError(ReproError):
    """Base class for catalog and DDL errors."""


class DuplicateObjectError(CatalogError):
    """Raised when creating an object whose name is already in use."""


class UnknownObjectError(CatalogError):
    """Raised when a referenced table, column, user, or procedure is missing."""


class AuthorizationError(ReproError):
    """Raised when a user lacks a privilege required for an operation.

    Data governance is enforced by the DB2 side of the federation (the
    paper's Section 3 requirement); the accelerator never sees a request
    that failed authorisation.
    """


class TransactionError(ReproError):
    """Base class for transaction-related errors."""


class LockTimeoutError(TransactionError):
    """Raised when a lock cannot be acquired within the configured timeout."""


class TransactionStateError(TransactionError):
    """Raised on commit/rollback without a transaction, or use after abort."""


class RoutingError(ReproError):
    """Raised when a statement cannot be routed to a single engine.

    The canonical case from the paper: a query that references both an
    accelerator-only table and a non-accelerated DB2 table has no engine
    that can see all of its inputs.
    """


class ReplicationError(ReproError):
    """Raised by the change-capture / apply pipeline."""


class ChangelogTruncatedError(ReplicationError):
    """Raised when a reader asks for LSNs the change log no longer holds.

    Retention trimming (``ChangeLog.trim``) drops the oldest records; a
    reader whose cursor fell behind the trim point cannot catch up
    incrementally and must fall back to a full table reload.
    """


class RecoveryError(ReproError):
    """Base class for checkpoint/restart-recovery errors."""


class CorruptCheckpointError(RecoveryError):
    """A checkpoint file failed validation (torn write, bad checksum).

    Restore treats a corrupt checkpoint as absent and falls back to the
    previous one (or a full reload) rather than loading damaged state.
    """


class LinkError(ReproError):
    """Raised when the DB2 ↔ accelerator interconnect drops a transfer.

    Link errors are *transient* by nature: the replication service retries
    them with backoff, and the health monitor only opens the circuit after
    a run of consecutive failures.
    """


class AcceleratorCrashError(ReproError):
    """Raised when the accelerator itself fails mid-operation.

    Injected by the fault framework to simulate an appliance crash or
    restart; callers treat it like a link error but it usually persists
    until the simulated outage ends.
    """


class InjectedCrashError(AcceleratorCrashError):
    """An armed *crash point* fired (kill/restart testing).

    Subclasses :class:`AcceleratorCrashError` so every existing failure
    path (retry, circuit breaker, failback) treats it like a real crash;
    the crash-recovery harness additionally uses it as the signal to kill
    the accelerator and drive a restart + resync.
    """


class ShardUnavailableError(AcceleratorCrashError):
    """Raised when one accelerator shard of a pool cannot serve a request.

    Subclasses :class:`AcceleratorCrashError` so the statement-level
    failback machinery reroutes the query to DB2, but the federation
    treats it differently from a whole-appliance crash: the *shard's*
    circuit records the failure while the pool-wide health monitor stays
    closed, so statements that only touch surviving shards keep being
    offloaded.
    """

    def __init__(self, shard_id: int, message: str = "") -> None:
        self.shard_id = shard_id
        super().__init__(
            message or f"accelerator shard {shard_id} is unavailable"
        )


class AcceleratorUnavailableError(ReproError):
    """Raised when a statement needs the accelerator but it is OFFLINE.

    Queries over *accelerated copies* can transparently fail back to DB2
    under ``ENABLE WITH FAILBACK``; accelerator-only tables have no DB2
    copy, so statements touching them fail fast with this error instead.
    """


class WorkloadManagementError(ReproError):
    """Base class for workload-management (admission/budget) errors.

    ``retryable`` tells applications whether resubmitting the statement
    later is a sensible reaction: shed statements were rejected *because
    of load*, so they are; a timeout of the statement's own budget is
    not (resubmitting the same work gets the same budget).
    """

    retryable = False


class StatementTimeoutError(WorkloadManagementError):
    """Raised when a statement exceeds its deadline.

    The deadline comes from the session's service class (or an explicit
    statement attribute); executors observe it cooperatively at
    chunk/row-batch boundaries, so the statement unwinds through the
    normal error path — releasing locks, admission slots, and rolling
    back statement-level work.
    """


class StatementCancelledError(WorkloadManagementError):
    """Raised when a statement's budget was cancelled by the application.

    Like a timeout, cancellation is cooperative: the next budget
    checkpoint raises, and the statement's transactional work is undone
    atomically.
    """


class StatementShedError(WorkloadManagementError):
    """Raised when admission control rejects a statement under load.

    Shedding is a fast, local decision — queue above its high-water
    mark, or the accelerator circuit open for sheddable work — so the
    error is *retryable*: the same statement is expected to succeed
    once pressure clears.
    """

    retryable = True


class AdmissionQueueFullError(StatementShedError):
    """Raised when a service class's admission queue is at capacity."""


class LoaderError(ReproError):
    """Raised by the external-source loader."""


class AnalyticsError(ReproError):
    """Raised by the in-database analytics framework and its algorithms."""


class ProcedureError(AnalyticsError):
    """Raised when a stored procedure is invoked with invalid parameters."""

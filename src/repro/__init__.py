"""repro — reproduction of *Extending Database Accelerators for Data
Transformations and Predictive Analytics* (Stolze, Beier, Martin;
EDBT 2016).

The package simulates the IBM DB2 Analytics Accelerator architecture in
pure Python — a row-store OLTP engine (the DB2 stand-in), a columnar
vectorised engine with snapshot isolation (the Netezza stand-in), and a
federation layer between them — and implements the paper's extensions on
top: accelerator-only tables (``CREATE TABLE ... IN ACCELERATOR``),
DB2-transaction-aware AOT modification, direct external ingestion, and a
governed in-database analytics framework.

Quickstart::

    from repro import AcceleratedDatabase

    db = AcceleratedDatabase()
    conn = db.connect()
    conn.execute("CREATE TABLE STAGE1 (ID INTEGER, V DOUBLE) IN ACCELERATOR")
    conn.execute("INSERT INTO STAGE1 VALUES (1, 0.5), (2, 1.5)")
    print(conn.execute("SELECT COUNT(*) FROM STAGE1").rows)
"""

from repro.errors import (
    AcceleratorCrashError,
    AcceleratorUnavailableError,
    AnalyticsError,
    AuthorizationError,
    CatalogError,
    ChangelogTruncatedError,
    CorruptCheckpointError,
    InjectedCrashError,
    LinkError,
    LoaderError,
    LockTimeoutError,
    ParseError,
    ProcedureError,
    RecoveryError,
    ReplicationError,
    ReproError,
    RoutingError,
    SqlError,
    TransactionError,
)
from repro.federation import (
    AcceleratedDatabase,
    AcceleratorHealthState,
    Connection,
    FaultInjector,
    HealthMonitor,
)
from repro.loader import CsvSource, IdaaLoader, IterableSource, JsonLinesSource
from repro.metrics import MovementStats
from repro.obs import MetricsRegistry, Trace, Tracer
from repro.pipeline import Pipeline, ProcedureStage, TransformStage
from repro.result import Result

__version__ = "1.0.0"

__all__ = [
    "AcceleratedDatabase",
    "Connection",
    "Result",
    "Pipeline",
    "TransformStage",
    "ProcedureStage",
    "IdaaLoader",
    "CsvSource",
    "JsonLinesSource",
    "IterableSource",
    "MovementStats",
    "MetricsRegistry",
    "Trace",
    "Tracer",
    "ReproError",
    "SqlError",
    "ParseError",
    "CatalogError",
    "AuthorizationError",
    "TransactionError",
    "LockTimeoutError",
    "RoutingError",
    "ReplicationError",
    "ChangelogTruncatedError",
    "RecoveryError",
    "CorruptCheckpointError",
    "InjectedCrashError",
    "LinkError",
    "AcceleratorCrashError",
    "AcceleratorUnavailableError",
    "AcceleratorHealthState",
    "FaultInjector",
    "HealthMonitor",
    "LoaderError",
    "AnalyticsError",
    "ProcedureError",
    "__version__",
]

"""The recovery manager: durable checkpoints and restart resync.

:class:`RecoveryManager` is DB2-side machinery (like the change log and
the catalog): it survives an accelerator crash, and everything it needs
to bring the accelerator back lives either in its own structures or in a
durable checkpoint.

**Checkpointing** captures, in one consistent cut: the replication
cursor (read *before* the row images, so replay can only over-read — the
engine's applied-LSN watermarks deduplicate the overlap), the catalog
generation, per-table replication start LSNs, and every accelerator
table's live rows + applied LSN + lineage epoch. The payload is written
through a checkpoint store atomically and checksummed; ``retain`` old
checkpoints are kept so a torn newest frame falls back to the previous
one.

**Restart resync** (:meth:`RecoveryManager.recover`) restores the newest
*valid* checkpoint, re-registers replication, and replays only the
changelog suffix past the checkpointed cursor. A changelog truncated
beyond the cursor (or a missing/corrupt checkpoint) degrades to full
table reloads from DB2 — correct, just expensive. Accelerator-only
tables have no DB2 copy; a DB2-side *lineage journal* (fed by the
engine's write listener) records each AOT's latest lineage epoch, and
any AOT whose restored epoch lags the journal is rebuilt from its
registered source query as BATCH-class work under the workload manager,
so recovery never starves interactive traffic.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.catalog import TableLocation
from repro.errors import ChangelogTruncatedError, CorruptCheckpointError, RecoveryError
from repro.recovery.checkpoint import (
    Checkpoint,
    CheckpointTable,
    open_store,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.system import AcceleratedDatabase

__all__ = [
    "CheckpointResult",
    "RecoveryEvent",
    "RecoveryManager",
    "RecoveryResult",
]


@dataclass(frozen=True)
class CheckpointResult:
    """Outcome of one ``checkpoint()`` call."""

    checkpoint_id: int
    cursor_lsn: int
    tables: int
    rows: int
    bytes_written: int


@dataclass(frozen=True)
class RecoveryResult:
    """Outcome of one ``recover()`` call."""

    #: Checkpoint the restart restored from (None = no valid checkpoint).
    checkpoint_id: Optional[int]
    #: Checkpoints skipped because their frame failed validation.
    corrupt_skipped: int
    tables_restored: int
    rows_restored: int
    #: Changelog records replayed past the checkpointed cursor.
    records_replayed: int
    #: Tables resynchronised by full reload from DB2.
    full_reloads: int
    #: AOTs rebuilt from their registered source query.
    aots_rebuilt: int
    #: AOTs that were lost with no checkpoint image and no source.
    aots_lost: int
    #: Interconnect bytes the checkpoint image saved vs. full reloads.
    resync_bytes_saved: int
    elapsed_seconds: float


@dataclass(frozen=True)
class RecoveryEvent:
    """Monitoring row for SYSACCEL.MON_RECOVERY."""

    event_id: int
    #: ``checkpoint``, ``checkpoint_failed``, ``recover``, ``trim``.
    kind: str
    checkpoint_id: Optional[int]
    cursor_lsn: int
    tables: int
    rows: int
    records_replayed: int
    full_reloads: int
    aots_rebuilt: int
    bytes_saved: int
    detail: str = ""


class RecoveryManager:
    """Checkpoint/restart coordinator for one federation."""

    def __init__(
        self,
        system: "AcceleratedDatabase",
        checkpoint_dir: Optional[str] = None,
        retain: int = 3,
        clock: Callable[[], float] = time.time,
        event_history_limit: int = 256,
    ) -> None:
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self._system = system
        self._store = open_store(checkpoint_dir)
        self.retain = retain
        self._clock = clock
        #: DB2-side lineage journal: last known lineage epoch per table.
        #: Survives accelerator wipe — that is the whole point.
        self.lineage_journal: dict[str, int] = {}
        #: AOT rebuild sources: table -> SELECT statement text.
        self._aot_sources: dict[str, str] = {}
        #: cursor LSN per *retained* checkpoint (feeds the trim guard).
        self._checkpoint_cursors: dict[int, int] = {}
        self._seq = 0
        self._bootstrap_from_store()
        # Lifetime counters (surfaced as recovery.* metrics).
        self.checkpoints_taken = 0
        self.checkpoint_failures = 0
        self.recoveries = 0
        self.records_replayed_total = 0
        self.tables_restored_total = 0
        self.full_reloads_total = 0
        self.aots_rebuilt_total = 0
        self.aots_lost_total = 0
        self.resync_bytes_saved_total = 0
        self.corrupt_checkpoints_skipped = 0
        self.last_checkpoint_at: Optional[float] = None
        self.last_checkpoint_id: Optional[int] = None
        self.last_checkpoint_bytes = 0
        self.last_recovery_seconds = -1.0
        self.events: deque[RecoveryEvent] = deque(maxlen=event_history_limit)
        self._event_seq = 0
        # Hook into the engine (lineage journal) and the changelog (the
        # oldest live checkpoint watermark bounds every trim).
        system.accelerator.write_listener = self._on_accelerator_write
        self._retention_guard = system.db2.change_log.add_retention_guard(
            self.oldest_checkpoint_lsn
        )

    # -- wiring ------------------------------------------------------------------

    def _bootstrap_from_store(self) -> None:
        """Adopt checkpoints already in the store (restarted process)."""
        for checkpoint_id in self._store.ids():
            self._seq = max(self._seq, checkpoint_id)
            try:
                checkpoint = Checkpoint.from_payload(
                    self._store.read(checkpoint_id)
                )
            except CorruptCheckpointError:
                continue
            self._checkpoint_cursors[checkpoint_id] = checkpoint.cursor_lsn

    def _on_accelerator_write(self, table: str, lineage_epoch: int) -> None:
        self.lineage_journal[table] = lineage_epoch

    def register_aot_source(self, name: str, select_sql: str) -> None:
        """Declare how to rebuild an AOT that a crash destroyed.

        ``select_sql`` is the SELECT whose result defines the table (the
        CTAS body, a pipeline stage's transform). Recovery re-executes it
        as ``INSERT INTO <name> <select>`` under the BATCH service class.
        """
        self._aot_sources[name.upper()] = select_sql

    def aot_source(self, name: str) -> Optional[str]:
        return self._aot_sources.get(name.upper())

    def unregister_aot_source(self, name: str) -> None:
        self._aot_sources.pop(name.upper(), None)

    def oldest_checkpoint_lsn(self) -> Optional[int]:
        """Trim guard: the changelog must keep every LSN the *oldest*
        retained checkpoint would need to replay."""
        if not self._checkpoint_cursors:
            return None
        return min(self._checkpoint_cursors.values())

    @property
    def store(self):
        return self._store

    def checkpoint_ids(self) -> list[int]:
        return self._store.ids()

    # -- checkpointing -----------------------------------------------------------

    def checkpoint(self) -> CheckpointResult:
        """Write a durable restart point and prune beyond ``retain``.

        Ordering matters: the replication cursor is read *before* the
        engine's row images are captured, so the checkpointed cursor can
        only lag the images — replay past it may redeliver records that
        are already in the image, and the engine's applied-LSN watermark
        drops them. The reverse order would lose records instead.
        """
        system = self._system
        cursor_lsn = system.replication.cursor_lsn
        table_starts = system.replication.table_starts()
        state = system.accelerator.capture_state()
        self._seq += 1
        checkpoint = Checkpoint(
            checkpoint_id=self._seq,
            created_at=self._clock(),
            catalog_generation=system.catalog.generation,
            cursor_lsn=cursor_lsn,
            table_starts=table_starts,
            tables={
                name: CheckpointTable(
                    rows=rows,
                    applied_lsn=state["applied_lsn"].get(name, 0),
                    lineage_epoch=state["lineage"].get(name, 0),
                )
                for name, rows in state["tables"].items()
            },
        )
        payload = checkpoint.to_payload()
        faults = system.faults
        if faults is not None:
            try:
                faults.crash_point("checkpoint.mid_write")
            except Exception:
                # The crash tore the write: publish a half frame under
                # the final name so restore has real damage to detect.
                self._store.write_torn(checkpoint.checkpoint_id, payload)
                self.checkpoint_failures += 1
                self._record_event(
                    "checkpoint_failed",
                    checkpoint_id=checkpoint.checkpoint_id,
                    cursor_lsn=cursor_lsn,
                    detail="crash mid-write: torn frame published",
                )
                raise
        bytes_written = self._store.write(checkpoint.checkpoint_id, payload)
        self._checkpoint_cursors[checkpoint.checkpoint_id] = cursor_lsn
        self._prune()
        rows = sum(len(entry.rows) for entry in checkpoint.tables.values())
        self.checkpoints_taken += 1
        self.last_checkpoint_at = checkpoint.created_at
        self.last_checkpoint_id = checkpoint.checkpoint_id
        self.last_checkpoint_bytes = bytes_written
        self._record_event(
            "checkpoint",
            checkpoint_id=checkpoint.checkpoint_id,
            cursor_lsn=cursor_lsn,
            tables=len(checkpoint.tables),
            rows=rows,
        )
        if system.metrics is not None:
            system.metrics.counter("recovery.checkpoints").inc()
            system.metrics.gauge("recovery.checkpoint_bytes").set(
                bytes_written
            )
        return CheckpointResult(
            checkpoint_id=checkpoint.checkpoint_id,
            cursor_lsn=cursor_lsn,
            tables=len(checkpoint.tables),
            rows=rows,
            bytes_written=bytes_written,
        )

    def _prune(self) -> None:
        ids = self._store.ids()
        while len(ids) > self.retain:
            oldest = ids.pop(0)
            self._store.delete(oldest)
            self._checkpoint_cursors.pop(oldest, None)

    def trim_changelog(self) -> int:
        """Drop changelog records no retained checkpoint needs.

        Delegates to :meth:`ChangeLog.trim`, which consults every
        retention guard — including this manager's
        :meth:`oldest_checkpoint_lsn` — so the trim can never pass the
        oldest live checkpoint's replay watermark, no matter what other
        readers exist.
        """
        change_log = self._system.db2.change_log
        dropped = change_log.trim()
        self._record_event(
            "trim",
            cursor_lsn=change_log.oldest_lsn,
            rows=dropped,
            detail=f"{dropped} records dropped",
        )
        return dropped

    # -- restart resync ----------------------------------------------------------

    def load_latest_checkpoint(
        self,
    ) -> tuple[Optional[Checkpoint], int]:
        """Newest checkpoint that validates, plus how many were corrupt."""
        corrupt = 0
        for checkpoint_id in sorted(self._store.ids(), reverse=True):
            try:
                return (
                    Checkpoint.from_payload(self._store.read(checkpoint_id)),
                    corrupt,
                )
            except CorruptCheckpointError:
                corrupt += 1
        return None, corrupt

    def recover(self) -> RecoveryResult:
        """Bring a freshly-restarted (empty) accelerator back in sync.

        Phases: (1) restore the newest valid checkpoint's table images
        and watermarks; (2) re-register replication and replay the
        changelog suffix past the checkpointed cursor — incremental,
        idempotent via the restored watermarks; (3) full-reload any
        accelerated table the checkpoint could not cover (or everything,
        when the changelog was truncated past the cursor); (4) rebuild
        AOTs whose lineage lags the DB2-side journal, as BATCH work.
        """
        started = time.perf_counter()
        system = self._system
        catalog = system.catalog
        checkpoint, corrupt = self.load_latest_checkpoint()
        self.corrupt_checkpoints_skipped += corrupt
        tables_restored = 0
        rows_restored = 0
        bytes_saved = 0
        full_reloads = 0
        records_replayed = 0
        details: list[str] = []
        if corrupt:
            details.append(f"{corrupt} corrupt checkpoint(s) skipped")

        # Phase 1: restore checkpointed images for tables still placed on
        # the accelerator. Tables dropped or de-accelerated since the
        # checkpoint are simply not restored — the catalog (DB2-side,
        # crash-surviving) is authoritative.
        restored_names: set[str] = set()
        if checkpoint is not None:
            for name, entry in checkpoint.tables.items():
                if not catalog.has_table(name):
                    continue
                descriptor = catalog.table(name)
                if descriptor.location is TableLocation.DB2_ONLY:
                    continue
                system.accelerator.restore_table(
                    descriptor,
                    entry.rows,
                    applied_lsn=entry.applied_lsn,
                    lineage_epoch=entry.lineage_epoch,
                )
                restored_names.add(name)
                tables_restored += 1
                rows_restored += len(entry.rows)
                if descriptor.location is TableLocation.ACCELERATED:
                    # A full reload would ship the whole DB2 image over
                    # the interconnect; the local restore did not.
                    bytes_saved += system.db2.storage_for(name).byte_count

        # Phase 2: re-register replication and replay the suffix.
        replicated = [
            d
            for d in catalog.tables()
            if d.location is TableLocation.ACCELERATED
        ]
        replay_failed = False
        if checkpoint is not None:
            for descriptor in replicated:
                name = descriptor.name
                if name not in restored_names:
                    continue
                start = checkpoint.table_starts.get(name)
                if start is None:
                    # Accelerated before this checkpoint format knew it;
                    # replay everything past the table's applied LSN.
                    start = checkpoint.tables[name].applied_lsn + 1
                system.replication.register_table(name, start)
            system.replication.restore_cursor(checkpoint.cursor_lsn)
            try:
                records_replayed = system.replication.drain(
                    raise_on_failure=True
                )
            except ChangelogTruncatedError as exc:
                # The log no longer reaches back to the cursor: the
                # incremental path is gone. Reload replicated tables in
                # full; their checkpoint images are discarded.
                replay_failed = True
                details.append(f"incremental replay impossible: {exc}")
                bytes_saved = 0
        if checkpoint is None or replay_failed:
            for descriptor in replicated:
                system.reload_accelerated_table(descriptor.name)
                full_reloads += 1
            system.replication.restore_cursor(
                system.db2.change_log.head_lsn
            )
        else:
            # Accelerated tables the checkpoint did not cover (added
            # after it was taken, or image lost) still need a full copy.
            for descriptor in replicated:
                if descriptor.name in restored_names:
                    continue
                system.reload_accelerated_table(descriptor.name)
                full_reloads += 1

        # Phase 4: AOTs. The changelog cannot rebuild them (they never
        # pass through DB2), so staleness comes from the lineage journal
        # and content from the registered source query.
        aots_rebuilt, aots_lost = self._recover_aots(details)

        elapsed = time.perf_counter() - started
        self.recoveries += 1
        self.records_replayed_total += records_replayed
        self.tables_restored_total += tables_restored
        self.full_reloads_total += full_reloads
        self.aots_rebuilt_total += aots_rebuilt
        self.aots_lost_total += aots_lost
        self.resync_bytes_saved_total += bytes_saved
        self.last_recovery_seconds = elapsed
        self._record_event(
            "recover",
            checkpoint_id=(
                checkpoint.checkpoint_id if checkpoint is not None else None
            ),
            cursor_lsn=(
                checkpoint.cursor_lsn if checkpoint is not None else 0
            ),
            tables=tables_restored,
            rows=rows_restored,
            records_replayed=records_replayed,
            full_reloads=full_reloads,
            aots_rebuilt=aots_rebuilt,
            bytes_saved=bytes_saved,
            detail="; ".join(details),
        )
        if system.metrics is not None:
            system.metrics.counter("recovery.recoveries").inc()
        return RecoveryResult(
            checkpoint_id=(
                checkpoint.checkpoint_id if checkpoint is not None else None
            ),
            corrupt_skipped=corrupt,
            tables_restored=tables_restored,
            rows_restored=rows_restored,
            records_replayed=records_replayed,
            full_reloads=full_reloads,
            aots_rebuilt=aots_rebuilt,
            aots_lost=aots_lost,
            resync_bytes_saved=bytes_saved,
            elapsed_seconds=elapsed,
        )

    def _recover_aots(self, details: list[str]) -> tuple[int, int]:
        system = self._system
        catalog = system.catalog
        rebuilt = 0
        lost = 0
        for descriptor in catalog.tables():
            if descriptor.location is not TableLocation.ACCELERATOR_ONLY:
                continue
            name = descriptor.name
            missing = not system.accelerator.has_storage(name)
            if missing:
                system.accelerator.create_storage(descriptor)
            journal_epoch = self.lineage_journal.get(name, 0)
            current_epoch = system.accelerator.lineage_epoch(name)
            stale = current_epoch < journal_epoch
            source = self._aot_sources.get(name)
            if source is not None:
                # A registered source *defines* the table's content, so a
                # rebuild is always correct; it is only needed when the
                # checkpoint image is stale or absent. A crash mid-build
                # leaves the journal at zero — "missing" catches it.
                if missing or stale:
                    self._rebuild_aot(name, source)
                    rebuilt += 1
                continue
            if (missing and journal_epoch > 0) or stale:
                # Writes happened that no checkpoint captured and nothing
                # can regenerate: the data is gone. Count it honestly.
                lost += 1
                details.append(f"AOT {name} stale/lost (no source registered)")
        return rebuilt, lost

    def _rebuild_aot(self, name: str, source_sql: str) -> None:
        """Repopulate one AOT from its source query as BATCH-class work.

        BATCH is the lowest-priority service class of the PR-5 workload
        manager: while the WLM is enabled, rebuild statements queue
        behind interactive traffic instead of starving it.
        """
        connection = self._system.connect()
        try:
            connection.execute(f"DELETE FROM {name}", service_class="BATCH")
            connection.execute(
                f"INSERT INTO {name} {source_sql}", service_class="BATCH"
            )
        except Exception as exc:
            raise RecoveryError(
                f"rebuilding AOT {name} from its source failed: {exc}"
            ) from exc
        finally:
            connection.close()
        # The rebuild's own writes already advanced the lineage journal
        # through the write listener; pin the journal to the engine's
        # final epoch so the next recovery sees the AOT as current.
        self.lineage_journal[name] = self._system.accelerator.lineage_epoch(
            name
        )

    # -- monitoring --------------------------------------------------------------

    def _record_event(
        self,
        kind: str,
        checkpoint_id: Optional[int] = None,
        cursor_lsn: int = 0,
        tables: int = 0,
        rows: int = 0,
        records_replayed: int = 0,
        full_reloads: int = 0,
        aots_rebuilt: int = 0,
        bytes_saved: int = 0,
        detail: str = "",
    ) -> None:
        self._event_seq += 1
        self.events.append(
            RecoveryEvent(
                event_id=self._event_seq,
                kind=kind,
                checkpoint_id=checkpoint_id,
                cursor_lsn=cursor_lsn,
                tables=tables,
                rows=rows,
                records_replayed=records_replayed,
                full_reloads=full_reloads,
                aots_rebuilt=aots_rebuilt,
                bytes_saved=bytes_saved,
                detail=detail[:512],
            )
        )

    def last_checkpoint_age_seconds(self) -> float:
        """Seconds since the last checkpoint (-1.0 = never checkpointed)."""
        if self.last_checkpoint_at is None:
            return -1.0
        return max(0.0, self._clock() - self.last_checkpoint_at)

    def replay_lag_records(self) -> int:
        """Changelog records a crash-now restart would have to replay."""
        cursor = self.oldest_checkpoint_lsn()
        if cursor is None:
            return self._system.db2.change_log.backlog(
                self._system.db2.change_log.oldest_lsn
            )
        return self._system.db2.change_log.backlog(cursor)

    def status(self) -> dict:
        """``recovery.*`` metrics snapshot (registered as a source)."""
        return {
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoint_failures": self.checkpoint_failures,
            "retained_checkpoints": len(self._store.ids()),
            "last_checkpoint_id": self.last_checkpoint_id or 0,
            "last_checkpoint_bytes": self.last_checkpoint_bytes,
            "last_checkpoint_age_seconds": self.last_checkpoint_age_seconds(),
            "replay_lag_records": self.replay_lag_records(),
            "recoveries": self.recoveries,
            "last_recovery_seconds": self.last_recovery_seconds,
            "records_replayed_total": self.records_replayed_total,
            "tables_restored_total": self.tables_restored_total,
            "full_reloads_total": self.full_reloads_total,
            "aots_rebuilt_total": self.aots_rebuilt_total,
            "aots_lost_total": self.aots_lost_total,
            "resync_bytes_saved_total": self.resync_bytes_saved_total,
            "corrupt_checkpoints_skipped": self.corrupt_checkpoints_skipped,
        }
